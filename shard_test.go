package dblsh

// Public-API coverage of the sharded index: option validation, merge
// correctness against a single-shard layout, compaction, persistence of the
// shard layout and tombstones (the DBLSHv2 format), legacy v1 readability,
// and the concurrent Add/Delete/Search stress that must pass under -race.

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestShardsOptionValidation(t *testing.T) {
	data, _ := clusteredData(50, 8, 11)
	if _, err := New(data, Options{Shards: -1}); err == nil {
		t.Fatal("negative Shards must error")
	}
	if _, err := New(data, Options{CompactFraction: -0.1}); err == nil {
		t.Fatal("negative CompactFraction must error")
	}
	if _, err := New(data, Options{CompactFraction: 1}); err == nil {
		t.Fatal("CompactFraction = 1 must error")
	}
	idx, err := New(data, Options{Shards: 4, CompactFraction: 0.5, K: 4, L: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Shards() != 4 {
		t.Fatalf("Shards = %d", idx.Shards())
	}
	// More shards than points: capped, never empty shards.
	small, err := New(data[:3], Options{Shards: 16, K: 4, L: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if small.Shards() != 3 {
		t.Fatalf("Shards = %d for 3 points, want 3", small.Shards())
	}
	if idxDefault, err := New(data, Options{K: 4, L: 2, Seed: 11}); err != nil || idxDefault.Shards() != 1 {
		t.Fatalf("default Shards = %d (err %v), want 1", idxDefault.Shards(), err)
	}
}

func TestShardedSearchMatchesSingleShard(t *testing.T) {
	data, queries := clusteredData(5000, 24, 12)
	k := 10
	single, err := New(data, Options{K: 8, L: 4, T: 100, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := New(data, Options{K: 8, L: 4, T: 100, Seed: 12, Shards: 6})
	if err != nil {
		t.Fatal(err)
	}
	recall := func(idx *Index) float64 {
		total := 0.0
		for _, q := range queries {
			truth := map[int]bool{}
			type pair struct {
				id int
				d  float64
			}
			best := make([]pair, len(data))
			for i, p := range data {
				best[i] = pair{i, dist(q, p)}
			}
			for i := 0; i < k; i++ {
				minJ := i
				for j := i + 1; j < len(best); j++ {
					if best[j].d < best[minJ].d {
						minJ = j
					}
				}
				best[i], best[minJ] = best[minJ], best[i]
				truth[best[i].id] = true
			}
			hits := idx.Search(q, k)
			if len(hits) != k {
				t.Fatalf("%d hits, want %d", len(hits), k)
			}
			got := 0
			for _, h := range hits {
				if truth[h.ID] {
					got++
				}
			}
			total += float64(got) / float64(k)
		}
		return total / float64(len(queries))
	}
	rs, rm := recall(single), recall(sharded)
	if rm < rs-0.1 || rm < 0.8 {
		t.Fatalf("sharded recall %v vs single-shard %v", rm, rs)
	}
	// Batch and single-query paths agree on the sharded index.
	batch := sharded.SearchBatch(queries, k)
	for i, q := range queries {
		one := sharded.Search(q, k)
		for j := range one {
			if one[j] != batch[i][j] {
				t.Fatalf("batch diverges from single at query %d rank %d", i, j)
			}
		}
	}
}

func TestShardedOptionsPushdown(t *testing.T) {
	data, queries := clusteredData(3000, 16, 13)
	idx, err := New(data, Options{K: 6, L: 3, T: 50, Seed: 13, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Global-id filter applies across every shard.
	var st Stats
	hits, err := idx.SearchOpts(queries[0], 20, WithFilter(func(id int) bool { return id%3 == 0 }), WithStats(&st))
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("filtered sharded search found nothing")
	}
	for _, h := range hits {
		if h.ID%3 != 0 {
			t.Fatalf("filter leaked id %d", h.ID)
		}
	}
	if st.Candidates == 0 || st.Rounds == 0 || st.FinalRadius == 0 {
		t.Fatalf("aggregated stats not populated: %+v", st)
	}
	// A searcher survives adds, deletes and compactions.
	s := idx.NewSearcher()
	if got := s.Search(queries[1], 5); len(got) != 5 {
		t.Fatalf("searcher got %d hits", len(got))
	}
	id, err := idx.Add(append([]float32(nil), queries[1]...))
	if err != nil {
		t.Fatal(err)
	}
	idx.Delete(0)
	if _, err := idx.CompactShard(0); err != nil {
		t.Fatal(err)
	}
	got := s.Search(queries[1], 1)
	if len(got) != 1 || got[0].ID != id || got[0].Dist != 0 {
		t.Fatalf("stale searcher after compaction: %+v", got)
	}
}

func TestCompactPublicAPI(t *testing.T) {
	data, _ := clusteredData(900, 12, 14)
	idx, err := New(data, Options{K: 6, L: 3, T: 30, Seed: 14, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 300; id++ {
		if !idx.Delete(id) {
			t.Fatalf("Delete(%d) failed", id)
		}
	}
	if _, err := idx.CompactShard(5); err == nil {
		t.Fatal("out-of-range CompactShard must error")
	}
	if removed := idx.Compact(); removed != 300 {
		t.Fatalf("Compact reclaimed %d, want 300", removed)
	}
	if idx.Deleted() != 0 || idx.Len() != 600 || idx.NextID() != 900 {
		t.Fatalf("post-compaction deleted=%d len=%d next=%d", idx.Deleted(), idx.Len(), idx.NextID())
	}
	stats := idx.ShardStats()
	if len(stats) != 3 {
		t.Fatalf("%d shard stats", len(stats))
	}
	now := time.Now()
	for _, st := range stats {
		if st.Deleted != 0 || st.Live != st.Size || st.Compactions != 1 {
			t.Fatalf("shard stat %+v", st)
		}
		if st.LastCompaction.IsZero() || now.Sub(st.LastCompaction) > time.Minute {
			t.Fatalf("implausible LastCompaction %v", st.LastCompaction)
		}
	}
}

// TestShardedBudgetIsGlobal pins the coordinated ladder's contract: the
// candidate budget 2tL+k bounds total verification across all shards (to
// within one per-shard remainder), instead of each shard spending the full
// budget against its stripe.
func TestShardedBudgetIsGlobal(t *testing.T) {
	data, queries := clusteredData(4000, 16, 19)
	const shards = 8
	idx, err := New(data, Options{K: 6, L: 3, T: 50, Seed: 19, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	const tt, k = 5, 10
	budget := 2*tt*3 + k // 2·t·L + k = 40
	var st Stats
	for _, q := range queries {
		if _, err := idx.SearchOpts(q, k, WithCandidateBudget(tt), WithStats(&st)); err != nil {
			t.Fatal(err)
		}
		if st.Candidates > budget+shards {
			t.Fatalf("budget %d (+%d shard remainder) exceeded: %d candidates verified",
				budget, shards, st.Candidates)
		}
	}
}

// TestShardedBudgetFollowsSkew pins the waterfall budget: when the live
// data concentrates in one shard, that shard may spend the budget the
// empty shards cannot use, so result quality tracks the single-shard index
// instead of collapsing to 1/S of the budget.
func TestShardedBudgetFollowsSkew(t *testing.T) {
	data, queries := clusteredData(400, 16, 23)
	single, err := New(data, Options{K: 4, L: 2, T: 20, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := New(data, Options{K: 4, L: 2, T: 20, Seed: 23, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 400; g++ {
		if g%4 != 0 {
			single.Delete(g)
			sharded.Delete(g) // shards 1-3 end up fully tombstoned
		}
	}
	const k, tt = 30, 1
	for _, q := range queries {
		a, err := single.SearchOpts(q, k, WithCandidateBudget(tt))
		if err != nil {
			t.Fatal(err)
		}
		b, err := sharded.SearchOpts(q, k, WithCandidateBudget(tt))
		if err != nil {
			t.Fatal(err)
		}
		if len(a) == 0 || len(b) == 0 {
			t.Fatalf("skewed search returned %d/%d results", len(a), len(b))
		}
		worstA, worstB := a[len(a)-1].Dist, b[len(b)-1].Dist
		if worstB > worstA*1.5+1e-9 {
			t.Fatalf("skewed sharded quality collapsed: worst %v vs single-shard %v", worstB, worstA)
		}
	}
}

// TestPersistEmptyCompactedIndex: a fully deleted and compacted index must
// round-trip (its id space and shard layout survive) and stay usable.
func TestPersistEmptyCompactedIndex(t *testing.T) {
	data, _ := clusteredData(300, 8, 24)
	idx, err := New(data, Options{K: 4, L: 2, T: 20, Seed: 24, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 300; g++ {
		idx.Delete(g)
	}
	if got := idx.Compact(); got != 300 {
		t.Fatalf("Compact reclaimed %d", got)
	}
	var buf bytes.Buffer
	n, err := idx.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != n {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatalf("empty compacted index does not round-trip: %v", err)
	}
	if loaded.Len() != 0 || loaded.NextID() != 300 || loaded.Shards() != 3 {
		t.Fatalf("loaded len=%d next=%d shards=%d", loaded.Len(), loaded.NextID(), loaded.Shards())
	}
	if hits := loaded.Search(data[0], 5); len(hits) != 0 {
		t.Fatalf("empty index returned %v", hits)
	}
	// The id space continues where it left off.
	id, err := loaded.Add(data[0])
	if err != nil {
		t.Fatal(err)
	}
	if id != 300 {
		t.Fatalf("post-load Add returned %d, want 300", id)
	}
	if hits := loaded.Search(data[0], 1); len(hits) != 1 || hits[0].ID != 300 {
		t.Fatalf("revived index search: %v", hits)
	}
}

func TestSetCompactFractionOnLoadedIndex(t *testing.T) {
	data, _ := clusteredData(1200, 8, 20)
	idx, err := New(data, Options{K: 4, L: 2, T: 20, Seed: 20, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.SetCompactFraction(1.5); err == nil {
		t.Fatal("out-of-range threshold accepted")
	}
	if err := loaded.SetCompactFraction(0.4); err != nil {
		t.Fatal(err)
	}
	// Crossing the threshold on a loaded index must now auto-compact.
	for g := 0; g < 1200; g += 2 {
		loaded.Delete(g)
	}
	deadline := time.Now().Add(10 * time.Second)
	for loaded.Deleted() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("auto-compaction never ran on loaded index; %d tombstones left", loaded.Deleted())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPersistKeepsTombstones is the regression test for the v1 bug this PR
// fixes: deleted vectors must never resurrect across WriteTo/Read.
func TestPersistKeepsTombstones(t *testing.T) {
	for _, shards := range []int{1, 3} {
		data, _ := clusteredData(600, 12, 15)
		idx, err := New(data, Options{K: 6, L: 3, T: 30, Seed: 15, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		deleted := []int{0, 5, 17, 123, 599}
		for _, id := range deleted {
			if !idx.Delete(id) {
				t.Fatalf("shards=%d: Delete(%d) failed", shards, id)
			}
		}
		var buf bytes.Buffer
		n, err := idx.WriteTo(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if int64(buf.Len()) != n {
			t.Fatalf("shards=%d: WriteTo reported %d bytes, wrote %d", shards, n, buf.Len())
		}
		loaded, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if loaded.Shards() != shards || loaded.Deleted() != len(deleted) || loaded.Len() != 600 {
			t.Fatalf("shards=%d: loaded shards=%d deleted=%d len=%d",
				shards, loaded.Shards(), loaded.Deleted(), loaded.Len())
		}
		for _, id := range deleted {
			hits := loaded.Search(data[id], 3)
			for _, h := range hits {
				if h.ID == id {
					t.Fatalf("shards=%d: tombstoned id %d resurrected after round-trip", shards, id)
				}
			}
			if loaded.Delete(id) {
				t.Fatalf("shards=%d: tombstoned id %d deletable again after round-trip", shards, id)
			}
		}
	}
}

func TestShardedPersistRoundTripDeterministic(t *testing.T) {
	data, queries := clusteredData(1500, 16, 16)
	idx, err := New(data, Options{K: 6, L: 3, T: 40, Seed: 16, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	idx.Delete(3)
	idx.Delete(44)
	if _, err := idx.CompactShard(3 % 4); err != nil { // non-trivial id mapping
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Params() != idx.Params() {
		t.Fatalf("params changed: %+v vs %+v", loaded.Params(), idx.Params())
	}
	if loaded.NextID() != idx.NextID() || loaded.Len() != idx.Len() {
		t.Fatalf("id space changed: next %d/%d len %d/%d",
			loaded.NextID(), idx.NextID(), loaded.Len(), idx.Len())
	}
	for _, q := range queries {
		a := idx.Search(q, 10)
		b := loaded.Search(q, 10)
		if len(a) != len(b) {
			t.Fatalf("result sizes differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("results diverge at rank %d: %+v vs %+v", i, a[i], b[i])
			}
		}
	}
	// Adds continue from the persisted id space.
	v := make([]float32, loaded.Dim())
	for j := range v {
		v[j] = 900
	}
	id, err := loaded.Add(v)
	if err != nil {
		t.Fatal(err)
	}
	if id != idx.NextID() {
		t.Fatalf("post-load Add returned %d, want %d", id, idx.NextID())
	}
}

// writeV1File hand-encodes the legacy DBLSHv1 layout so the reader's
// backward compatibility is tested against the documented format, not
// against whatever the current writer happens to produce.
func writeV1File(data [][]float32, k, l, t uint32, c, w0, r0 float64, seed int64) []byte {
	var body bytes.Buffer
	body.WriteString("DBLSHv1\n")
	binary.Write(&body, binary.LittleEndian, uint64(len(data)))
	binary.Write(&body, binary.LittleEndian, uint32(len(data[0])))
	binary.Write(&body, binary.LittleEndian, k)
	binary.Write(&body, binary.LittleEndian, l)
	binary.Write(&body, binary.LittleEndian, t)
	binary.Write(&body, binary.LittleEndian, c)
	binary.Write(&body, binary.LittleEndian, w0)
	binary.Write(&body, binary.LittleEndian, r0)
	binary.Write(&body, binary.LittleEndian, seed)
	for _, row := range data {
		for _, f := range row {
			binary.Write(&body, binary.LittleEndian, math.Float32bits(f))
		}
	}
	crc := crc32.ChecksumIEEE(body.Bytes())
	binary.Write(&body, binary.LittleEndian, crc)
	return body.Bytes()
}

func TestReadLegacyV1File(t *testing.T) {
	data, queries := clusteredData(400, 8, 17)
	raw := writeV1File(data, 4, 2, 30, 1.5, 9, 0.5, 17)
	loaded, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("v1 file rejected: %v", err)
	}
	if loaded.Len() != 400 || loaded.Dim() != 8 || loaded.Shards() != 1 || loaded.Deleted() != 0 {
		t.Fatalf("v1 load shape: len=%d dim=%d shards=%d deleted=%d",
			loaded.Len(), loaded.Dim(), loaded.Shards(), loaded.Deleted())
	}
	// Must answer like a fresh build with the same parameters and radius.
	fresh, err := New(data, Options{K: 4, L: 2, T: 30, C: 1.5, W0: 9, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	hits := loaded.Search(queries[0], 5)
	want := fresh.Search(queries[0], 5)
	for i := range want {
		// The stored r0 (0.5) may differ from the estimated one, so compare
		// membership of exact self-distances rather than full equality.
		if hits[i].Dist > want[i].Dist*2+1e-9 && i == 0 {
			t.Fatalf("v1 load answers diverge wildly: %+v vs %+v", hits[i], want[i])
		}
	}
	if self := loaded.Search(data[7], 1); len(self) != 1 || self[0].ID != 7 || self[0].Dist != 0 {
		t.Fatalf("v1 self-query: %+v", self)
	}
	// A corrupted v1 payload still fails its checksum.
	bad := append([]byte(nil), raw...)
	bad[len(bad)/2] ^= 0xff
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupted v1 file accepted")
	}
}

// TestConcurrentShardedStress exercises parallel Add/Delete/SearchOpts/
// SearchBatchOpts/Compact against a sharded index through the public API.
// Run under -race (the CI race job does) to catch shard-lock regressions.
func TestConcurrentShardedStress(t *testing.T) {
	data, queries := clusteredData(3000, 12, 18)
	idx, err := New(data, Options{K: 5, L: 3, T: 25, Seed: 18, Shards: 4, CompactFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 128)
	stop := make(chan struct{})

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := idx.NewSearcher()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if i%7 == 0 {
					if _, err := idx.SearchBatchOpts(queries[:4], 5, WithCandidateBudget(10)); err != nil {
						errs <- err
						return
					}
					continue
				}
				hits, err := s.SearchOpts(queries[(i+w)%len(queries)], 5,
					WithFilter(func(id int) bool { return id%2 == 0 }))
				if err != nil {
					errs <- err
					return
				}
				for _, h := range hits {
					if h.ID%2 != 0 {
						errs <- errFiltered
						return
					}
				}
			}
		}(w)
	}

	var mut sync.WaitGroup
	mut.Add(3)
	go func() { // writer
		defer mut.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 300; i++ {
			v := make([]float32, idx.Dim())
			for j := range v {
				v[j] = float32(rng.NormFloat64())
			}
			if _, err := idx.Add(v); err != nil {
				errs <- err
				return
			}
		}
	}()
	go func() { // deleter
		defer mut.Done()
		for g := 0; g < 2000; g += 2 {
			idx.Delete(g)
		}
	}()
	go func() { // compactor
		defer mut.Done()
		for i := 0; i < 3; i++ {
			idx.Compact()
			time.Sleep(10 * time.Millisecond)
		}
	}()

	mut.Wait()
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if idx.NextID() != 3300 {
		t.Fatalf("NextID = %d, want 3300", idx.NextID())
	}
	// Quiesced: a final compact leaves zero debt and searches still work.
	idx.Compact()
	if idx.Deleted() != 0 {
		t.Fatalf("Deleted = %d after final compact", idx.Deleted())
	}
	if hits := idx.Search(queries[0], 10); len(hits) != 10 {
		t.Fatalf("post-stress search returned %d hits", len(hits))
	}
}

var errFiltered = errorString("filter leaked an odd id")

type errorString string

func (e errorString) Error() string { return string(e) }
