package dblsh

import "testing"

func TestDeleteHidesVector(t *testing.T) {
	data, _ := clusteredData(1000, 16, 41)
	idx, err := New(data, Options{K: 6, L: 3, T: 30, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	// Self-query finds id 5 at distance 0.
	hits := idx.Search(data[5], 1)
	if hits[0].ID != 5 {
		t.Fatalf("expected self-hit, got %+v", hits[0])
	}
	if !idx.Delete(5) {
		t.Fatal("Delete(5) returned false")
	}
	if idx.Deleted() != 1 {
		t.Fatalf("Deleted = %d", idx.Deleted())
	}
	hits = idx.Search(data[5], 5)
	for _, h := range hits {
		if h.ID == 5 {
			t.Fatal("deleted vector still returned")
		}
	}
}

func TestDeleteIdempotentAndRangeChecked(t *testing.T) {
	data, _ := clusteredData(100, 8, 42)
	idx, err := New(data, Options{K: 4, L: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Delete(-1) || idx.Delete(100) {
		t.Fatal("out-of-range Delete must return false")
	}
	if !idx.Delete(0) {
		t.Fatal("first Delete must succeed")
	}
	if idx.Delete(0) {
		t.Fatal("second Delete of same id must return false")
	}
}

func TestDeleteAllThenSearch(t *testing.T) {
	data, _ := clusteredData(50, 8, 43)
	idx, err := New(data, Options{K: 4, L: 2, T: 100, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		idx.Delete(i)
	}
	if hits := idx.Search(data[0], 5); len(hits) != 0 {
		t.Fatalf("search over fully-deleted index returned %v", hits)
	}
}

func TestDeleteThenAdd(t *testing.T) {
	data, _ := clusteredData(200, 8, 44)
	idx, err := New(data, Options{K: 4, L: 2, T: 50, Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	idx.Delete(7)
	id, err := idx.Add(data[7])
	if err != nil {
		t.Fatal(err)
	}
	hits := idx.Search(data[7], 1)
	if len(hits) != 1 || hits[0].ID != id || hits[0].Dist != 0 {
		t.Fatalf("re-added vector not found: %+v", hits)
	}
}

func TestEarlyStopFactorTradesRecallForSpeed(t *testing.T) {
	data, queries := clusteredData(8000, 32, 45)
	exact, err := New(data, Options{K: 8, L: 4, T: 100, Seed: 45})
	if err != nil {
		t.Fatal(err)
	}
	eager, err := New(data, Options{K: 8, L: 4, T: 100, Seed: 45, EarlyStopFactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	se, sg := exact.NewSearcher(), eager.NewSearcher()
	var candExact, candEager int
	for _, q := range queries {
		se.Search(q, 10)
		candExact += se.LastStats().Candidates
		sg.Search(q, 10)
		candEager += sg.LastStats().Candidates
	}
	if candEager > candExact {
		t.Fatalf("early stop did not reduce work: %d vs %d candidates", candEager, candExact)
	}
}

func TestEarlyStopFactorValidation(t *testing.T) {
	data, _ := clusteredData(10, 4, 46)
	if _, err := New(data, Options{EarlyStopFactor: 0.5}); err == nil {
		t.Fatal("EarlyStopFactor in (0,1) must error")
	}
	if _, err := New(data, Options{EarlyStopFactor: -1}); err == nil {
		t.Fatal("negative EarlyStopFactor must error")
	}
	if _, err := New(data, Options{EarlyStopFactor: 1}); err != nil {
		t.Fatalf("EarlyStopFactor 1 must be accepted: %v", err)
	}
}
