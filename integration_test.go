package dblsh

import (
	"bytes"
	"testing"
)

// TestLifecycle exercises the full life of an index through the public API:
// build → query → persist → reload → add → delete → batch query, asserting
// consistency at every step. This is the end-to-end path a deploying user
// follows.
func TestLifecycle(t *testing.T) {
	data, queries := clusteredData(5000, 32, 71)
	idx, err := New(data, Options{K: 8, L: 4, T: 60, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}

	// 1. Baseline answers.
	baseline := make([][]Result, len(queries))
	for i, q := range queries {
		baseline[i] = idx.Search(q, 10)
		if len(baseline[i]) != 10 {
			t.Fatalf("query %d: %d results", i, len(baseline[i]))
		}
	}

	// 2. Persist and reload; answers must be identical.
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	idx2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		res := idx2.Search(q, 10)
		for j := range res {
			if res[j] != baseline[i][j] {
				t.Fatalf("reloaded index diverges at query %d rank %d", i, j)
			}
		}
	}

	// 3. Add the queries themselves; each becomes its own nearest neighbor.
	ids := make([]int, len(queries))
	for i, q := range queries {
		id, err := idx2.Add(q)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for i, q := range queries {
		res := idx2.Search(q, 1)
		if res[0].ID != ids[i] || res[0].Dist != 0 {
			t.Fatalf("query %d: added self not found, got %+v", i, res[0])
		}
	}

	// 4. Delete them again; the original baseline top-1 must reappear.
	for _, id := range ids {
		if !idx2.Delete(id) {
			t.Fatalf("Delete(%d) failed", id)
		}
	}
	for i, q := range queries {
		res := idx2.Search(q, 1)
		if res[0] != baseline[i][0] {
			t.Fatalf("query %d: after delete got %+v, want %+v", i, res[0], baseline[i][0])
		}
	}

	// 5. Batch query equals sequential query.
	batch := idx2.SearchBatch(queries, 10)
	for i := range queries {
		for j := range batch[i] {
			if batch[i][j] != baseline[i][j] {
				t.Fatalf("batch diverges at query %d rank %d", i, j)
			}
		}
	}
}

func TestSearchBatchSmall(t *testing.T) {
	data, queries := clusteredData(500, 8, 72)
	idx, err := New(data, Options{K: 4, L: 2, Seed: 72})
	if err != nil {
		t.Fatal(err)
	}
	// Single query (workers <= 1 path).
	out := idx.SearchBatch(queries[:1], 3)
	if len(out) != 1 || len(out[0]) != 3 {
		t.Fatalf("batch of one returned %v", out)
	}
	// Empty batch.
	if out := idx.SearchBatch(nil, 3); len(out) != 0 {
		t.Fatalf("empty batch returned %v", out)
	}
}
