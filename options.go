// Per-query search options. Index construction (Options) fixes the paper's
// structural parameters — K, L, the hash family — but the knobs of the query
// phase (Algorithm 2) are per-query trade-offs between recall and latency.
// SearchOption lets one index instance serve cheap low-recall lookups and
// expensive high-recall lookups side by side, honor request deadlines, and
// push access-control predicates into candidate verification.

package dblsh

import (
	"context"
	"errors"
	"fmt"

	"dblsh/internal/core"
	"dblsh/internal/metric"
)

// SearchOption customizes a single query without touching the index's
// build-time configuration. Options compose left to right; when two options
// set the same knob the last one wins. The zero set of options reproduces
// the plain Search/SearchBatch/SearchRadius behavior exactly.
type SearchOption func(*searchSettings)

// searchSettings is the resolved form of a []SearchOption. Option
// constructors validate eagerly and record the first error here, so the
// *Opts entry points can report it before touching the index.
type searchSettings struct {
	p          core.QueryParams
	stats      *Stats
	batchStats *[]Stats
	err        error
}

func (s *searchSettings) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

func applySearchOptions(opts []SearchOption) (searchSettings, error) {
	var s searchSettings
	for _, o := range opts {
		o(&s)
	}
	return s, s.err
}

// WithCandidateBudget overrides the candidate constant t for this query:
// at most 2·t·L+k exact distances are computed (Algorithm 1's budget).
// Larger values trade latency for accuracy; smaller values answer fast from
// fewer candidates. t must be positive.
func WithCandidateBudget(t int) SearchOption {
	return func(s *searchSettings) {
		if t <= 0 {
			s.fail(fmt.Errorf("dblsh: candidate budget must be positive, got %d", t))
			return
		}
		s.p.T = t
	}
}

// WithEarlyStop loosens the termination test of the radius ladder for this
// query: it stops once the k-th candidate is within factor·C·r of the
// current radius r instead of C·r. factor must be ≥ 1; 1 reproduces the
// paper's Algorithm 2 exactly, larger values stop earlier, trading recall
// for latency.
func WithEarlyStop(factor float64) SearchOption {
	return func(s *searchSettings) {
		if factor < 1 {
			s.fail(fmt.Errorf("dblsh: early-stop factor must be ≥ 1, got %v", factor))
			return
		}
		s.p.EarlyStopFactor = factor
	}
}

// WithMaxRadius caps the radius ladder: rounds whose search radius would
// exceed r are not executed and the query returns whatever candidates it
// found within the cap (possibly none). Use it when hits beyond a known
// distance are worthless, e.g. duplicate detection. r must be positive.
func WithMaxRadius(r float64) SearchOption {
	return func(s *searchSettings) {
		if r <= 0 {
			s.fail(fmt.Errorf("dblsh: max radius must be positive, got %v", r))
			return
		}
		s.p.MaxRadius = r
	}
}

// WithContext attaches a deadline/cancellation context to the query. It is
// polled between radius rounds — the ladder's natural unit of work — so
// cancellation is prompt but never splits a round. A cancelled query returns
// the best candidates found so far together with ctx.Err().
func WithContext(ctx context.Context) SearchOption {
	return func(s *searchSettings) {
		if ctx == nil {
			s.fail(errors.New("dblsh: WithContext requires a non-nil context"))
			return
		}
		s.p.Ctx = ctx
	}
}

// WithFilter restricts results to ids keep accepts — tenant scoping, ACL
// checks, or excluding the query point itself. The predicate is pushed down
// into the verification loop (the same skip path tombstoned points take),
// so rejected points consume none of the candidate budget and no exact
// distance is computed for them. keep must be cheap: it runs once per
// candidate the window queries surface. It must also be safe for
// concurrent use: SearchBatchOpts invokes it from its parallel workers,
// and on a sharded index with parallelism above 1 even a single query
// invokes it concurrently from the per-shard round workers.
func WithFilter(keep func(id int) bool) SearchOption {
	return func(s *searchSettings) {
		if keep == nil {
			s.fail(errors.New("dblsh: WithFilter requires a non-nil predicate"))
			return
		}
		s.p.Filter = keep
	}
}

// WithParallelism overrides the index's shard fan-out setting for this
// query: each ladder round visits up to n shards concurrently, merging
// their candidates in fixed shard order so results are bit-identical to
// the sequential path (n = 1) at every setting. 0 forces the auto policy,
// min(GOMAXPROCS, Shards), regardless of the index-level setting; n is
// clamped to the shard count, and a single-shard index ignores the option.
// n must be non-negative. See Options.Parallelism for how helper workers
// are pooled across concurrent queries.
func WithParallelism(n int) SearchOption {
	return func(s *searchSettings) {
		if n < 0 {
			s.fail(fmt.Errorf("dblsh: parallelism must be non-negative, got %d", n))
			return
		}
		if n == 0 {
			s.p.Parallelism = -1 // the coordinator's "auto, explicitly"
			return
		}
		s.p.Parallelism = n
	}
}

// WithStats records the query's work statistics into st. For batch queries
// the per-query statistics are summed (FinalRadius reports the maximum).
func WithStats(st *Stats) SearchOption {
	return func(s *searchSettings) {
		if st == nil {
			s.fail(errors.New("dblsh: WithStats requires a non-nil *Stats"))
			return
		}
		s.stats = st
	}
}

// WithBatchStats records one Stats per query of a SearchBatchOpts call into
// *sts (resized to the number of queries). It is only valid on
// SearchBatchOpts.
func WithBatchStats(sts *[]Stats) SearchOption {
	return func(s *searchSettings) {
		if sts == nil {
			s.fail(errors.New("dblsh: WithBatchStats requires a non-nil *[]Stats"))
			return
		}
		s.batchStats = sts
	}
}

var errBatchStatsScope = errors.New("dblsh: WithBatchStats applies only to SearchBatchOpts")

func statsFromCore(st core.Stats) Stats {
	return Stats{
		Candidates:     st.Candidates,
		Rounds:         st.Rounds,
		FinalRadius:    st.FinalR,
		NodesVisited:   st.NodesVisited,
		FrontierSize:   st.Frontier,
		QuantPruned:    st.QuantPruned,
		QuantSwept:     st.QuantSwept,
		ParallelRounds: st.ParallelRounds,
		StragglerNanos: st.StragglerNanos,
	}
}

// SearchOpts is Search with per-query options. The error is non-nil when an
// option is invalid or the query's context expires; a context error still
// comes with the best results found before cancellation. Like Search, it
// panics if len(q) != Dim() or k <= 0.
func (idx *Index) SearchOpts(q []float32, k int, opts ...SearchOption) ([]Result, error) {
	set, err := applySearchOptions(opts)
	if err != nil {
		return nil, err
	}
	if set.batchStats != nil {
		return nil, errBatchStatsScope
	}
	if err := idx.internalMaxRadius(q, &set); err != nil {
		return nil, err
	}
	var buf []float32
	nbs, st, err := idx.set.Search(idx.transformQuery(&buf, q), k, set.p)
	if set.stats != nil {
		*set.stats = statsFromCore(st)
	}
	return idx.userResults(q, nbs), err
}

// SearchOpts is Searcher.Search with per-query options; see Index.SearchOpts.
func (s *Searcher) SearchOpts(q []float32, k int, opts ...SearchOption) ([]Result, error) {
	set, err := applySearchOptions(opts)
	if err != nil {
		return nil, err
	}
	if set.batchStats != nil {
		return nil, errBatchStatsScope
	}
	if err := s.idx.internalMaxRadius(q, &set); err != nil {
		return nil, err
	}
	nbs, err := s.inner.Search(s.idx.transformQuery(&s.qbuf, q), k, set.p)
	if set.stats != nil {
		*set.stats = statsFromCore(s.inner.LastStats())
	}
	return s.idx.userResults(q, nbs), err
}

// SearchRadiusOpts is SearchRadius with per-query options. Of the knobs,
// WithCandidateBudget, WithFilter, WithContext and WithStats apply; the
// ladder-shaping options (WithEarlyStop, WithMaxRadius) are ignored because
// a fixed-radius query runs a single round. The radius is in the index's
// metric (Euclidean distance, or cosine distance in [0,2]); under
// InnerProduct a radius has no meaning and an error is returned.
func (s *Searcher) SearchRadiusOpts(q []float32, r float64, opts ...SearchOption) (Result, bool, error) {
	set, err := applySearchOptions(opts)
	if err != nil {
		return Result{}, false, err
	}
	if set.batchStats != nil {
		return Result{}, false, errBatchStatsScope
	}
	ir, err := s.idx.met.InternalRadius(q, r)
	if err != nil {
		return Result{}, false, err
	}
	nb, ok, err := s.inner.SearchRadius(s.idx.transformQuery(&s.qbuf, q), ir, set.p)
	if set.stats != nil {
		*set.stats = statsFromCore(s.inner.LastStats())
	}
	res := Result{ID: nb.ID, Dist: nb.Dist}
	if ok {
		res.Dist = s.idx.met.DistMapper(q)(nb.Dist)
	}
	return res, ok, err
}

// SearchBatchOpts is SearchBatch with per-query options applied uniformly to
// every query in the batch. Queries run in parallel across GOMAXPROCS
// workers, each with its own Searcher; results[i] corresponds to queries[i].
// On context expiry the queries already answered keep their results, the
// rest are nil, and the context's error is returned. It is safe to run
// concurrently with Add and Delete; shard locks are taken per ladder
// round, so mutations interleave between rounds and a query may observe
// vectors added while it runs.
func (idx *Index) SearchBatchOpts(queries [][]float32, k int, opts ...SearchOption) ([][]Result, error) {
	set, err := applySearchOptions(opts)
	if err != nil {
		return nil, err
	}
	if err := idx.internalMaxRadius(nil, &set); err != nil {
		return nil, err
	}
	internal := queries
	if idx.met.Kind() != metric.Euclidean {
		internal = make([][]float32, len(queries))
		for i, q := range queries {
			internal[i] = idx.transformQuery(new([]float32), q)
		}
	}
	nbs, coreStats, firstErr := idx.set.SearchBatch(internal, k, set.p)
	out := make([][]Result, len(queries))
	for i, n := range nbs {
		if n == nil {
			continue // not answered: keep the nil marker
		}
		out[i] = idx.userResults(queries[i], n)
	}

	var per []Stats
	if set.batchStats != nil || set.stats != nil {
		per = make([]Stats, len(queries))
		for i, st := range coreStats {
			per[i] = statsFromCore(st)
		}
	}
	if set.batchStats != nil {
		*set.batchStats = per
	}
	if set.stats != nil {
		var agg Stats
		for _, st := range per {
			agg.Candidates += st.Candidates
			agg.Rounds += st.Rounds
			agg.NodesVisited += st.NodesVisited
			agg.FrontierSize += st.FrontierSize
			agg.QuantPruned += st.QuantPruned
			agg.QuantSwept += st.QuantSwept
			agg.ParallelRounds += st.ParallelRounds
			agg.StragglerNanos += st.StragglerNanos
			if st.FinalRadius > agg.FinalRadius {
				agg.FinalRadius = st.FinalRadius
			}
		}
		*set.stats = agg
	}
	return out, firstErr
}
