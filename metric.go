// Public metric selection. The index machinery is correct only for
// Euclidean distance, so non-Euclidean metrics are implemented as
// reductions *to* Euclidean search (see internal/metric): points and
// queries are transformed once at the boundary, the core radius ladder runs
// pure L2 over the transformed space, and internal scores map back to the
// chosen metric's user-facing distance on the way out.

package dblsh

import (
	"fmt"

	"dblsh/internal/metric"
	"dblsh/internal/vec"
)

// Metric selects the distance an index searches under. The zero value is
// Euclidean, the paper's setting.
type Metric int

const (
	// Euclidean is plain L2 distance; Result.Dist is the Euclidean
	// distance.
	Euclidean Metric = Metric(metric.Euclidean)
	// Cosine searches by angle: vectors are unit-normalized at ingest and
	// Result.Dist is the cosine distance 1−cos θ in [0,2]. The vectors'
	// magnitudes are deliberately ignored; the zero vector cannot be
	// indexed.
	Cosine Metric = Metric(metric.Cosine)
	// InnerProduct searches for maximum inner product (MIPS) via the
	// augmented-dimension reduction: points gain one dimension and are
	// scaled into the unit ball by a norm bound fitted at build time.
	// Result.Dist is the NEGATED inner product −⟨q,x⟩, so the library's
	// ascending-distance order ranks by descending inner product; negate it
	// to recover ⟨q,x⟩. Radius queries (SearchRadius, WithMaxRadius) are
	// not defined under this metric and return an error.
	InnerProduct Metric = Metric(metric.InnerProduct)
)

// String returns the canonical name: "euclidean", "cosine" or "ip".
func (m Metric) String() string { return metric.Kind(m).String() }

// ParseMetric maps a metric name ("euclidean"/"l2", "cosine"/"angular",
// "ip"/"dot"/"inner_product") to its Metric.
func ParseMetric(s string) (Metric, error) {
	k, err := metric.ParseKind(s)
	return Metric(k), err
}

// buildMetric resolves Options.Metric against the dataset: the inner-product
// reduction fits its norm bound from the data unless Options.NormBound
// overrides it.
func buildMetric(opts Options, flat []float32, n, dim int) (metric.Metric, error) {
	kind := metric.Kind(opts.Metric)
	if !kind.Valid() {
		return nil, fmt.Errorf("dblsh: unknown metric %d", opts.Metric)
	}
	if opts.NormBound < 0 {
		return nil, fmt.Errorf("dblsh: NormBound must be non-negative, got %v", opts.NormBound)
	}
	if opts.NormBound > 0 && kind != metric.InnerProduct {
		return nil, fmt.Errorf("dblsh: NormBound only applies to the InnerProduct metric")
	}
	bound := 0.0
	if kind == metric.InnerProduct {
		bound = opts.NormBound
		if bound == 0 {
			bound = metric.FitNormBound(flat, n, dim)
		}
	}
	return metric.New(kind, bound)
}

// transformFlat maps a user dataset into the metric's internal Euclidean
// space, validating every row.
func transformFlat(m metric.Metric, flat []float32, n, dim int) ([]float32, error) {
	out := make([]float32, 0, n*m.InternalDim(dim))
	for i := 0; i < n; i++ {
		row := flat[i*dim : (i+1)*dim]
		if err := m.CheckPoint(row); err != nil {
			return nil, fmt.Errorf("dblsh: row %d: %w", i, err)
		}
		out = m.TransformPoint(out, row)
	}
	return out, nil
}

// checkQueryDim enforces the panic contract against the user-facing
// dimensionality (the internal space may be wider under InnerProduct).
func (idx *Index) checkQueryDim(q []float32) {
	if len(q) != idx.dim {
		panic(fmt.Sprintf("dblsh: query dim %d, index dim %d", len(q), idx.dim))
	}
}

// transformQuery maps a user query into the internal space, reusing buf.
// Under Euclidean it returns q itself — the hot path stays zero-copy.
func (idx *Index) transformQuery(buf *[]float32, q []float32) []float32 {
	idx.checkQueryDim(q)
	if idx.met.Kind() == metric.Euclidean {
		return q
	}
	*buf = idx.met.TransformQuery((*buf)[:0], q)
	return *buf
}

// userResults maps internal-space neighbors to user-facing results: ids are
// shared, distances go through the metric's score mapping (identity for
// Euclidean), with the mapper's per-query state computed once for the whole
// set. Every metric's mapping is monotone in the internal distance, so
// ascending order is preserved.
func (idx *Index) userResults(q []float32, nbs []vec.Neighbor) []Result {
	mapDist := idx.met.DistMapper(q)
	out := make([]Result, len(nbs))
	for i, nb := range nbs {
		out[i] = Result{ID: nb.ID, Dist: mapDist(nb.Dist)}
	}
	return out
}

// internalMaxRadius rewrites a user-facing WithMaxRadius cap into internal
// L2 units in place, erroring for metrics without a radius semantics.
func (idx *Index) internalMaxRadius(q []float32, s *searchSettings) error {
	if s.p.MaxRadius <= 0 {
		return nil
	}
	r, err := idx.met.InternalRadius(q, s.p.MaxRadius)
	if err != nil {
		return err
	}
	s.p.MaxRadius = r
	return nil
}
