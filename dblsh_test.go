package dblsh

import (
	"math"
	"math/rand"
	"testing"
)

func clusteredData(n, d int, seed int64) ([][]float32, [][]float32) {
	rng := rand.New(rand.NewSource(seed))
	const clusters = 20
	centers := make([][]float32, clusters)
	for i := range centers {
		c := make([]float32, d)
		for j := range c {
			c[j] = float32(rng.NormFloat64() * 10)
		}
		centers[i] = c
	}
	mk := func(count int) [][]float32 {
		out := make([][]float32, count)
		for i := range out {
			c := centers[rng.Intn(clusters)]
			p := make([]float32, d)
			for j := range p {
				p[j] = c[j] + float32(rng.NormFloat64())
			}
			out[i] = p
		}
		return out
	}
	return mk(n), mk(10)
}

func dist(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return math.Sqrt(s)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("empty dataset must error")
	}
	if _, err := New([][]float32{{}}, Options{}); err == nil {
		t.Fatal("zero-dim vectors must error")
	}
	if _, err := New([][]float32{{1, 2}, {1}}, Options{}); err == nil {
		t.Fatal("ragged rows must error")
	}
	if _, err := New([][]float32{{1, 2}}, Options{C: 0.5}); err == nil {
		t.Fatal("C ≤ 1 must error")
	}
	if _, err := NewFromFlat([]float32{1, 2, 3}, 2, 2, Options{}); err == nil {
		t.Fatal("flat size mismatch must error")
	}
	if _, err := NewFromFlat([]float32{1, 2}, 0, 2, Options{}); err == nil {
		t.Fatal("n = 0 must error")
	}
}

func TestSearchBasics(t *testing.T) {
	data, queries := clusteredData(3000, 32, 1)
	idx, err := New(data, Options{K: 8, L: 4, T: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 3000 || idx.Dim() != 32 {
		t.Fatalf("Len=%d Dim=%d", idx.Len(), idx.Dim())
	}
	for _, q := range queries {
		hits := idx.Search(q, 5)
		if len(hits) != 5 {
			t.Fatalf("got %d hits", len(hits))
		}
		prev := -1.0
		for _, h := range hits {
			if h.ID < 0 || h.ID >= 3000 {
				t.Fatalf("id %d out of range", h.ID)
			}
			if h.Dist < prev {
				t.Fatal("hits not sorted")
			}
			prev = h.Dist
			// The kernels difference components in float32 (the data's own
			// precision), so agreement with the float64 reference is
			// relative, not exact.
			if got := dist(q, data[h.ID]); math.Abs(got-h.Dist) > 1e-6*(1+got) {
				t.Fatalf("distance mismatch: %v vs %v", h.Dist, got)
			}
		}
	}
}

func TestSearchOne(t *testing.T) {
	data, queries := clusteredData(1000, 16, 2)
	idx, err := New(data, Options{K: 6, L: 3, T: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	r, ok := idx.SearchOne(queries[0])
	if !ok {
		t.Fatal("SearchOne found nothing")
	}
	// Must be close to the true NN (c² guarantee, usually exact).
	best := math.Inf(1)
	for _, p := range data {
		if d := dist(queries[0], p); d < best {
			best = d
		}
	}
	if r.Dist > 2.25*best+1e-9 {
		t.Fatalf("SearchOne dist %v vs true NN %v breaks c² bound", r.Dist, best)
	}
}

func TestSearcherStats(t *testing.T) {
	data, queries := clusteredData(2000, 16, 3)
	idx, err := New(data, Options{K: 8, L: 4, T: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := idx.NewSearcher()
	hits := s.Search(queries[0], 5)
	if len(hits) != 5 {
		t.Fatalf("got %d hits", len(hits))
	}
	st := s.LastStats()
	if st.Candidates <= 0 || st.Rounds <= 0 || st.FinalRadius <= 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
}

func TestParamsDefaulting(t *testing.T) {
	data, _ := clusteredData(500, 8, 4)
	idx, err := New(data, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	p := idx.Params()
	if p.C != 1.5 {
		t.Fatalf("default C = %v", p.C)
	}
	if p.W0 != 9 {
		t.Fatalf("default W0 = %v", p.W0)
	}
	if p.K < 1 || p.L < 1 || p.T < 1 {
		t.Fatalf("underived params %+v", p)
	}
	if idx.IndexSizeBytes() <= 0 {
		t.Fatal("IndexSizeBytes must be positive")
	}
}

func TestNewFromFlatSharesStorage(t *testing.T) {
	flat := make([]float32, 100*8)
	rng := rand.New(rand.NewSource(5))
	for i := range flat {
		flat[i] = float32(rng.NormFloat64())
	}
	idx, err := NewFromFlat(flat, 100, 8, Options{K: 4, L: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	q := flat[:8]
	hits := idx.Search(q, 1)
	if hits[0].ID != 0 || hits[0].Dist != 0 {
		t.Fatalf("self-query returned %+v", hits[0])
	}
}

func TestRecallEndToEnd(t *testing.T) {
	data, queries := clusteredData(8000, 48, 6)
	idx, err := New(data, Options{K: 10, L: 5, T: 100, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	k := 10
	var recall float64
	for _, q := range queries {
		hits := idx.Search(q, k)
		// Brute-force truth.
		type pair struct {
			id int
			d  float64
		}
		best := make([]pair, 0, len(data))
		for i, p := range data {
			best = append(best, pair{i, dist(q, p)})
		}
		for i := 0; i < k; i++ {
			minJ := i
			for j := i + 1; j < len(best); j++ {
				if best[j].d < best[minJ].d {
					minJ = j
				}
			}
			best[i], best[minJ] = best[minJ], best[i]
		}
		truth := map[int]bool{}
		for i := 0; i < k; i++ {
			truth[best[i].id] = true
		}
		hit := 0
		for _, h := range hits {
			if truth[h.ID] {
				hit++
			}
		}
		recall += float64(hit) / float64(k)
	}
	recall /= float64(len(queries))
	if recall < 0.85 {
		t.Fatalf("end-to-end recall %v too low", recall)
	}
}
