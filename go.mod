module dblsh

go 1.24
