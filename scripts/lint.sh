#!/usr/bin/env bash
# lint.sh — build the dblsh-lint vet driver and run the repo's custom
# go/analysis suite (guardedby, detorder, nilrecv, walerr) over every
# package. Any diagnostic is a failure: the annotations in the tree are
# load-bearing documentation, and this script is what keeps them honest.
#
#   scripts/lint.sh               # build bin/dblsh-lint and vet ./...
#   BINDIR=out scripts/lint.sh    # put the driver binary elsewhere
set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

BINDIR="${BINDIR:-bin}"
mkdir -p "$BINDIR"
go build -o "$BINDIR/dblsh-lint" ./cmd/dblsh-lint

# go vet resolves -vettool relative to each package directory, so hand it
# an absolute path.
go vet -vettool="$(pwd)/$BINDIR/dblsh-lint" ./...
echo "dblsh-lint: clean"
