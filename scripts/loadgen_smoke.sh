#!/usr/bin/env bash
# loadgen_smoke.sh — CI smoke test for the serving stack: build the server
# and the load generator, start a durable server on a temp data dir with
# admission control enabled, drive it for ~2 seconds, and assert that
#
#   1. the loadgen summary reports a nonzero success count, and
#   2. a /metrics scrape answers 200 with the core families present.
#
# Designed to finish well under a minute on a CI runner.
set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

PORT="${PORT:-18081}"
BINDIR="$(mktemp -d)"
DATADIR="$(mktemp -d)"
SUMMARY="$(mktemp)"
SCRAPE="$(mktemp)"
SERVER_PID=""

# stop_server: TERM the server, give it up to 5s to exit, then KILL it.
# Every step tolerates an already-dead or never-started server — under
# `set -e` a bare failing && chain inside the EXIT trap would abort the
# handler before the temp dirs are removed.
stop_server() {
    [ -n "${SERVER_PID:-}" ] || return 0
    kill "$SERVER_PID" 2>/dev/null || true
    for _ in $(seq 1 50); do
        kill -0 "$SERVER_PID" 2>/dev/null || break
        sleep 0.1
    done
    kill -9 "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
    SERVER_PID=""
}
cleanup() {
    stop_server
    rm -rf "$BINDIR" "$DATADIR" "$SUMMARY" "$SCRAPE" || true
}
trap cleanup EXIT

go build -o "$BINDIR/dblsh-server" ./cmd/dblsh-server
go build -o "$BINDIR/dblsh-loadgen" ./cmd/dblsh-loadgen

"$BINDIR/dblsh-server" -addr "localhost:$PORT" -data-dir "$DATADIR" \
    -demo-n 2000 -demo-dim 16 \
    -max-inflight 8 -max-queue 32 -slow-query-threshold 250ms &
SERVER_PID=$!

# dblsh-loadgen polls /stats itself until the server is ready.
"$BINDIR/dblsh-loadgen" -addr "http://localhost:$PORT" \
    -duration 2s -concurrency 4 -write-fraction 0.2 -k 5 | tee "$SUMMARY"

successes="$(grep -o '"successes": *[0-9]*' "$SUMMARY" | grep -o '[0-9]*$')"
if [ -z "$successes" ] || [ "$successes" -eq 0 ]; then
    echo "loadgen smoke: zero successful requests" >&2
    exit 1
fi
echo "loadgen smoke: $successes successful requests"

curl -fsS "http://localhost:$PORT/metrics" > "$SCRAPE"
for family in dblsh_http_requests_total dblsh_http_request_seconds_bucket \
              dblsh_query_nodes_visited dblsh_wal_fsync_seconds \
              dblsh_vectors_resident; do
    if ! grep -q "$family" "$SCRAPE"; then
        echo "loadgen smoke: /metrics missing $family" >&2
        exit 1
    fi
done
echo "loadgen smoke: /metrics scrape OK ($(wc -l < "$SCRAPE") lines)"
