#!/usr/bin/env bash
# bench.sh — run the query-path benchmark suite plus a short end-to-end
# loadgen run, and emit BENCH_PR10.json:
#
#   {
#     "environment": { kernel, kernel_source, cpu_features },
#     "benchmarks":  { name -> {ns_per_op, allocs_per_op} },
#     "loadgen":     { qps, latency percentiles, success/shed/error tallies }
#   }
#
#   COUNT=5 scripts/bench.sh              # -count per benchmark (default 3)
#   OUT=out.json scripts/bench.sh         # output path (default BENCH_PR10.json)
#   LOADGEN_DURATION=5s scripts/bench.sh  # loadgen run length (default 2s)
#
# The benchmark half covers the Table 4 headline query benchmark, the
# distance-kernel microbenchmarks (including the quantized pre-filter
# variants), the sequential-vs-parallel sharded search matrix
# (BenchmarkSearchSharded's shards × {seq,par} grid), the traversal-only
# allocation benchmark, and the cursor-vs-rescan ladder head-to-head. The
# loadgen half builds dblsh-server and dblsh-loadgen, starts a durable
# 8-shard server on a temp data dir, and drives it closed-loop — so the
# recorded numbers include HTTP, admission and WAL overhead, not just the
# in-process query path, and the summary carries the observed quant_pruned
# fraction plus the intra-query fan-out counters (parallel_rounds,
# straggler_ns). The environment block (dblsh-loadgen -cpuinfo) records the
# auto-selected distance kernel and detected CPU features, so per-kernel
# benchmark rows can be read against the hardware that produced them.
set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

COUNT="${COUNT:-3}"
OUT="${OUT:-BENCH_PR10.json}"
LOADGEN_DURATION="${LOADGEN_DURATION:-2s}"
TMP="$(mktemp)"
BENCH_JSON="$(mktemp)"
LOADGEN_JSON="$(mktemp)"
ENV_JSON="$(mktemp)"
BINDIR="$(mktemp -d)"
DATADIR="$(mktemp -d)"
SERVER_PID=""

# stop_server: TERM the server, give it up to 5s to exit, then KILL it.
# Every step tolerates an already-dead or never-started server — under
# `set -e` a bare failing && chain inside the EXIT trap would abort the
# handler before the temp dirs are removed.
stop_server() {
    [ -n "${SERVER_PID:-}" ] || return 0
    kill "$SERVER_PID" 2>/dev/null || true
    for _ in $(seq 1 50); do
        kill -0 "$SERVER_PID" 2>/dev/null || break
        sleep 0.1
    done
    kill -9 "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
    SERVER_PID=""
}
cleanup() {
    stop_server
    rm -rf "$TMP" "$BENCH_JSON" "$LOADGEN_JSON" "$ENV_JSON" "$BINDIR" "$DATADIR" || true
}
trap cleanup EXIT

run() { go test -run '^$' -bench "$1" -benchmem -count "$COUNT" "$2" | tee -a "$TMP"; }

run 'BenchmarkTable4QueryDBLSH$|BenchmarkSearchSharded|BenchmarkLadderAllocs$' .
run 'BenchmarkDistKernels|BenchmarkQuantKernels' ./internal/vec
run 'BenchmarkLadderModes' ./internal/core

awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)        # strip the GOMAXPROCS suffix
    ns[name] += $3; cnt[name]++
    for (i = 4; i < NF; i++) if ($(i+1) == "allocs/op") alloc[name] += $i
}
END {
    n = 0
    for (name in ns) keys[++n] = name
    for (i = 2; i <= n; i++) {       # insertion sort: portable across awks
        v = keys[i]
        for (j = i - 1; j >= 1 && keys[j] > v; j--) keys[j+1] = keys[j]
        keys[j+1] = v
    }
    printf "{\n"
    for (k = 1; k <= n; k++) {
        name = keys[k]
        printf "    \"%s\": {\"ns_per_op\": %.1f, \"allocs_per_op\": %.1f}%s\n", \
            name, ns[name]/cnt[name], alloc[name]/cnt[name], (k < n) ? "," : ""
    }
    printf "  }"
}' "$TMP" > "$BENCH_JSON"

# --- end-to-end loadgen run against a local durable server ---------------
echo "building server + loadgen..."
go build -o "$BINDIR/dblsh-server" ./cmd/dblsh-server
go build -o "$BINDIR/dblsh-loadgen" ./cmd/dblsh-loadgen

# Stamp the artifact with the kernel/CPU the benchmarks actually ran under.
"$BINDIR/dblsh-loadgen" -cpuinfo > "$ENV_JSON"

PORT="${PORT:-18080}"
# -parallelism 8 forces the per-round fan-out even where the auto policy
# would pick 1 (single-core CI runners), so the recorded parallel_rounds /
# straggler_ns counters always reflect the parallel path end to end.
"$BINDIR/dblsh-server" -addr "localhost:$PORT" -data-dir "$DATADIR" \
    -demo-n 5000 -demo-dim 32 -shards 8 -parallelism 8 \
    -max-inflight 16 -max-queue 64 &
SERVER_PID=$!

# dblsh-loadgen polls /stats itself until the server is ready.
"$BINDIR/dblsh-loadgen" -addr "http://localhost:$PORT" \
    -duration "$LOADGEN_DURATION" -concurrency 4 -write-fraction 0.1 -k 10 \
    > "$LOADGEN_JSON"

stop_server

{
    printf '{\n  "environment": '
    cat "$ENV_JSON"
    printf ',\n  "benchmarks": '
    cat "$BENCH_JSON"
    printf ',\n  "loadgen": '
    cat "$LOADGEN_JSON"
    printf '}\n'
} > "$OUT"

echo "wrote $OUT:"
cat "$OUT"
