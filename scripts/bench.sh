#!/usr/bin/env bash
# bench.sh — run the query-path benchmark suite and emit BENCH_PR5.json,
# a machine-readable map of benchmark name → {ns_per_op, allocs_per_op}.
#
#   COUNT=5 scripts/bench.sh          # -count per benchmark (default 3)
#   OUT=out.json scripts/bench.sh     # output path (default BENCH_PR5.json)
#
# Covers the Table 4 headline query benchmark, the distance-kernel
# microbenchmarks, the sharded search benchmarks, the traversal-only
# allocation benchmark, and the cursor-vs-rescan ladder head-to-head.
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${COUNT:-3}"
OUT="${OUT:-BENCH_PR5.json}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

run() { go test -run '^$' -bench "$1" -benchmem -count "$COUNT" "$2" | tee -a "$TMP"; }

run 'BenchmarkTable4QueryDBLSH$|BenchmarkSearchSharded|BenchmarkLadderAllocs$' .
run 'BenchmarkDistKernels' ./internal/vec
run 'BenchmarkLadderModes' ./internal/core

awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)        # strip the GOMAXPROCS suffix
    ns[name] += $3; cnt[name]++
    for (i = 4; i < NF; i++) if ($(i+1) == "allocs/op") alloc[name] += $i
}
END {
    n = 0
    for (name in ns) keys[++n] = name
    for (i = 2; i <= n; i++) {       # insertion sort: portable across awks
        v = keys[i]
        for (j = i - 1; j >= 1 && keys[j] > v; j--) keys[j+1] = keys[j]
        keys[j+1] = v
    }
    printf "{\n"
    for (k = 1; k <= n; k++) {
        name = keys[k]
        printf "  \"%s\": {\"ns_per_op\": %.1f, \"allocs_per_op\": %.1f}%s\n", \
            name, ns[name]/cnt[name], alloc[name]/cnt[name], (k < n) ? "," : ""
    }
    printf "}\n"
}' "$TMP" > "$OUT"

echo "wrote $OUT:"
cat "$OUT"
