package dblsh

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"dblsh/internal/core"
	"dblsh/internal/metric"
	"dblsh/internal/shard"
)

// Index persistence.
//
// A DB-LSH index is fully determined by (data, parameters, seed): the hash
// family is sampled from the seed and the R*-trees are bulk-loaded
// deterministically. The on-disk format therefore stores the vectors and the
// configuration and rebuilds the structures on load — the file stays compact
// (4 bytes per coordinate plus per-row bookkeeping) and loading costs one
// STR bulk load per shard, which is the fastest construction path anyway
// (Table IV's indexing-time column).
//
// Version 3 adds the metric subsystem's state to the v2 shard layout: the
// metric id and the norm bound of the inner-product reduction. The stored
// vectors are the *internal* (transformed) representation — unit-normalized
// under Cosine, norm-bound-scaled and augmented by one dimension under
// InnerProduct — so a load rebuilds the exact search structures without
// re-deriving any per-point norms; the norm bound is all the state the
// boundary transform needs to keep accepting Adds and mapping scores after
// a round-trip.
//
// v3 layout (little-endian), followed by a CRC-32 (IEEE) of everything
// before it:
//
//	magic   [8]byte  "DBLSHv3\n"
//	shards  uint32
//	nextID  uint64   global-id-space bound (ids ≥ nextID never allocated)
//	dim     uint32   internal dimensionality (user dim + 1 under ip)
//	metric  uint32   0 euclidean, 1 cosine, 2 inner product
//	bound   float64  inner-product norm bound M; 0 otherwise
//	K, L, T uint32
//	C, W0   float64
//	seed    int64    base seed (shard i hashes with seed+i)
//	then per shard:
//	  rows    uint64
//	  r0      float64
//	  globals rows × uint64   local id → global id
//	  deleted ⌈rows/8⌉ bytes  tombstone bitmap, LSB-first
//	  data    rows·dim × float32
//	crc     uint32
//
// v2 files ("DBLSHv2\n": the same layout without the metric and bound
// fields) and v1 files ("DBLSHv1\n": n, dim, K, L, T, C, W0, r0, seed,
// data, crc) are still readable; both predate the metric subsystem, so they
// load as Euclidean indexes, exactly as they were written.

var (
	magicV1 = [8]byte{'D', 'B', 'L', 'S', 'H', 'v', '1', '\n'}
	magicV2 = [8]byte{'D', 'B', 'L', 'S', 'H', 'v', '2', '\n'}
	magicV3 = [8]byte{'D', 'B', 'L', 'S', 'H', 'v', '3', '\n'}
)

// crcWriter checksums every byte on its way to w.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p)
	return c.w.Write(p)
}

// countWriter counts the bytes the underlying writer actually accepted.
// WriteTo wraps the caller's writer with it *below* the bufio layer, so the
// count reflects bytes flushed to the destination — the io.WriterTo
// contract — not bytes merely parked in the 1 MiB buffer, which on an error
// path may never reach w at all.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

type crcReader struct {
	r   io.Reader
	crc uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

// WriteTo serializes the index in the v3 format, including the metric, the
// tombstones and the shard layout. It implements io.WriterTo and is safe to call while the
// index serves concurrent traffic: the id space is pinned once up front and
// each shard is then copied under its own read lock, briefly, before being
// serialized with no locks held — searches and mutations proceed
// throughout, and the file is a consistent cut of the id space at entry
// (rows added after the call starts are excluded; tombstones laid while it
// runs are included best-effort).
func (idx *Index) WriteTo(w io.Writer) (int64, error) {
	fw := &countWriter{w: w}
	bw := bufio.NewWriterSize(fw, 1<<20)
	cw := &crcWriter{w: bw}
	cfg := idx.set.Params()
	nextID := idx.set.NextID()

	if _, err := cw.Write(magicV3[:]); err != nil {
		return fw.n, fmt.Errorf("dblsh: write header: %w", err)
	}
	hdr := []interface{}{
		uint32(idx.set.Shards()),
		uint64(nextID),
		uint32(idx.set.Dim()), // internal dim: the stored rows are transformed
		uint32(cfg.Metric),
		cfg.MetricNormBound,
		uint32(cfg.K), uint32(cfg.L), uint32(cfg.T),
		cfg.C, cfg.W0,
		cfg.Seed,
	}
	for _, v := range hdr {
		if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
			return fw.n, fmt.Errorf("dblsh: write header: %w", err)
		}
	}
	idim := idx.set.Dim()
	rowBuf := make([]byte, idim*4)
	for s := 0; s < idx.set.Shards(); s++ {
		// One shard resident at a time: the copy holds only this shard's
		// read lock, and the disk writes below hold no lock at all.
		part := idx.set.SnapshotShard(s, nextID)
		if err := binary.Write(cw, binary.LittleEndian, uint64(part.Rows)); err != nil {
			return fw.n, fmt.Errorf("dblsh: write shard header: %w", err)
		}
		if err := binary.Write(cw, binary.LittleEndian, part.R0); err != nil {
			return fw.n, fmt.Errorf("dblsh: write shard header: %w", err)
		}
		var idBuf [8]byte
		for _, g := range part.Globals {
			binary.LittleEndian.PutUint64(idBuf[:], uint64(g))
			if _, err := cw.Write(idBuf[:]); err != nil {
				return fw.n, fmt.Errorf("dblsh: write id map: %w", err)
			}
		}
		bitmap := make([]byte, (part.Rows+7)/8)
		for i, dead := range part.Deleted {
			if dead && i < part.Rows {
				bitmap[i/8] |= 1 << (i % 8)
			}
		}
		if _, err := cw.Write(bitmap); err != nil {
			return fw.n, fmt.Errorf("dblsh: write tombstones: %w", err)
		}
		// Vectors row by row through a reused buffer.
		for i := 0; i < part.Rows; i++ {
			row := part.Flat[i*idim : (i+1)*idim]
			for j, f := range row {
				binary.LittleEndian.PutUint32(rowBuf[j*4:], math.Float32bits(f))
			}
			if _, err := cw.Write(rowBuf); err != nil {
				return fw.n, fmt.Errorf("dblsh: write vectors: %w", err)
			}
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, cw.crc); err != nil {
		return fw.n, fmt.Errorf("dblsh: write checksum: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fw.n, fmt.Errorf("dblsh: flush: %w", err)
	}
	return fw.n, nil // everything, CRC trailer included, has reached w
}

// Read deserializes an index previously written with WriteTo, rebuilding the
// projections and trees deterministically from the stored seed. It accepts
// the current v3 format (metric state, shard layout and tombstones
// restored), v2 files (shard layout and tombstones, always Euclidean) and
// legacy v1 files (single shard, no tombstones).
func Read(r io.Reader) (*Index, error) {
	cr := &crcReader{r: bufio.NewReaderSize(r, 1<<20)}

	var gotMagic [8]byte
	if _, err := io.ReadFull(cr, gotMagic[:]); err != nil {
		return nil, fmt.Errorf("dblsh: read header: %w", err)
	}
	switch gotMagic {
	case magicV1:
		return readV1(cr)
	case magicV2:
		return readV2(cr)
	case magicV3:
		return readV3(cr)
	}
	return nil, fmt.Errorf("dblsh: bad magic %q (not a DB-LSH index file?)", gotMagic)
}

const (
	maxVectors = 1 << 40
	maxDim     = 1 << 20
	maxShards  = 1 << 16
)

// readHeader reads a sequence of fixed-size little-endian values.
func readHeader(cr *crcReader, vs ...interface{}) error {
	for _, v := range vs {
		if err := binary.Read(cr, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("dblsh: read header: %w", err)
		}
	}
	return nil
}

// readRows reads n rows of dim float32s into a fresh flat slice.
func readRows(cr *crcReader, n uint64, dim uint32) ([]float32, error) {
	flat := make([]float32, n*uint64(dim))
	buf := make([]byte, int(dim)*4)
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(cr, buf); err != nil {
			return nil, fmt.Errorf("dblsh: read vectors: %w", err)
		}
		base := i * uint64(dim)
		for j := uint32(0); j < dim; j++ {
			flat[base+uint64(j)] = math.Float32frombits(binary.LittleEndian.Uint32(buf[j*4:]))
		}
	}
	return flat, nil
}

// checkCRC verifies the trailing checksum against the bytes read so far.
func checkCRC(cr *crcReader) error {
	wantCRC := cr.crc
	var gotCRC uint32
	if err := binary.Read(cr.r, binary.LittleEndian, &gotCRC); err != nil {
		return fmt.Errorf("dblsh: read checksum: %w", err)
	}
	if gotCRC != wantCRC {
		return fmt.Errorf("dblsh: checksum mismatch (file corrupted): got %08x want %08x", gotCRC, wantCRC)
	}
	return nil
}

func readV1(cr *crcReader) (*Index, error) {
	var (
		n       uint64
		dim     uint32
		k, l, t uint32
		c, w0   float64
		r0      float64
		seed    int64
	)
	if err := readHeader(cr, &n, &dim, &k, &l, &t, &c, &w0, &r0, &seed); err != nil {
		return nil, err
	}
	if n == 0 || dim == 0 || n > maxVectors || dim > maxDim {
		return nil, fmt.Errorf("dblsh: implausible shape %d×%d", n, dim)
	}
	flat, err := readRows(cr, n, dim)
	if err != nil {
		return nil, err
	}
	if err := checkCRC(cr); err != nil {
		return nil, err
	}
	set := shard.Build(flat, int(n), int(dim), 1, 0, core.Config{
		C: c, W0: w0, K: int(k), L: int(l), T: int(t),
		Seed: seed, InitialRadius: r0,
	})
	met, _ := metric.New(metric.Euclidean, 0)
	return &Index{set: set, dim: int(dim), met: met}, nil
}

// readV2 loads a pre-metric-subsystem file: the same shard layout as v3,
// always Euclidean.
func readV2(cr *crcReader) (*Index, error) {
	var (
		shards  uint32
		nextID  uint64
		dim     uint32
		k, l, t uint32
		c, w0   float64
		seed    int64
	)
	if err := readHeader(cr, &shards, &nextID, &dim, &k, &l, &t, &c, &w0, &seed); err != nil {
		return nil, err
	}
	cfg := core.Config{C: c, W0: w0, K: int(k), L: int(l), T: int(t), Seed: seed}
	return readShards(cr, shards, nextID, dim, cfg)
}

// readV3 loads the current format: v2 plus the metric id and norm bound.
func readV3(cr *crcReader) (*Index, error) {
	var (
		shards  uint32
		nextID  uint64
		dim     uint32
		mk      uint32
		bound   float64
		k, l, t uint32
		c, w0   float64
		seed    int64
	)
	if err := readHeader(cr, &shards, &nextID, &dim, &mk, &bound, &k, &l, &t, &c, &w0, &seed); err != nil {
		return nil, err
	}
	if !metric.Kind(mk).Valid() {
		return nil, fmt.Errorf("dblsh: unknown metric id %d (file from a newer version?)", mk)
	}
	cfg := core.Config{
		C: c, W0: w0, K: int(k), L: int(l), T: int(t), Seed: seed,
		Metric: metric.Kind(mk), MetricNormBound: bound,
	}
	return readShards(cr, shards, nextID, dim, cfg)
}

// readShards reads the per-shard payloads shared by v2 and v3, verifies the
// checksum and rebuilds the index. dim is the internal dimensionality; the
// metric in cfg determines the user-facing one.
func readShards(cr *crcReader, shards uint32, nextID uint64, dim uint32, cfg core.Config) (*Index, error) {
	if shards == 0 || shards > maxShards || dim == 0 || dim > maxDim || nextID > maxVectors {
		return nil, fmt.Errorf("dblsh: implausible layout: %d shards, %d ids, dim %d", shards, nextID, dim)
	}
	met, err := metric.New(cfg.Metric, cfg.MetricNormBound)
	if err != nil {
		return nil, fmt.Errorf("dblsh: bad metric state: %w", err)
	}
	udim := met.UserDim(int(dim))
	if udim <= 0 {
		return nil, fmt.Errorf("dblsh: internal dim %d leaves no user dimensions under %s", dim, cfg.Metric)
	}
	parts := make([]shard.Part, shards)
	var total uint64
	for i := range parts {
		var rows uint64
		var r0 float64
		if err := readHeader(cr, &rows, &r0); err != nil {
			return nil, err
		}
		total += rows
		if total > nextID {
			return nil, fmt.Errorf("dblsh: shard rows exceed the id space (%d > %d)", total, nextID)
		}
		globals := make([]int, rows)
		var idBuf [8]byte
		seen := make(map[int]struct{}, rows)
		for j := range globals {
			if _, err := io.ReadFull(cr, idBuf[:]); err != nil {
				return nil, fmt.Errorf("dblsh: read id map: %w", err)
			}
			g := binary.LittleEndian.Uint64(idBuf[:])
			if g >= nextID {
				return nil, fmt.Errorf("dblsh: global id %d outside the id space %d", g, nextID)
			}
			// Every id must route to the shard that holds it (g mod S ==
			// shard; Delete depends on it) and appear once. Routing makes
			// ids unique across shards, the per-shard set catches the
			// rest, so a crafted file cannot yield undeletable vectors or
			// duplicate result ids.
			if int(g)%int(shards) != i {
				return nil, fmt.Errorf("dblsh: global id %d does not route to shard %d of %d", g, i, shards)
			}
			if _, dup := seen[int(g)]; dup {
				return nil, fmt.Errorf("dblsh: duplicate global id %d in shard %d", g, i)
			}
			seen[int(g)] = struct{}{}
			globals[j] = int(g)
		}
		bitmap := make([]byte, (rows+7)/8)
		if _, err := io.ReadFull(cr, bitmap); err != nil {
			return nil, fmt.Errorf("dblsh: read tombstones: %w", err)
		}
		deleted := make([]bool, rows)
		anyDead := false
		for j := range deleted {
			if bitmap[j/8]&(1<<(j%8)) != 0 {
				deleted[j] = true
				anyDead = true
			}
		}
		if !anyDead {
			deleted = nil
		}
		flat, err := readRows(cr, rows, dim)
		if err != nil {
			return nil, err
		}
		parts[i] = shard.Part{
			Flat: flat, Rows: int(rows), Globals: globals, Deleted: deleted, R0: r0,
		}
	}
	if err := checkCRC(cr); err != nil {
		return nil, err
	}
	// total == 0 is legitimate: an index whose every vector was deleted and
	// compacted away still round-trips (its id space and layout survive).
	set := shard.Restore(int(dim), int(nextID), 0, cfg, parts)
	return &Index{set: set, dim: udim, met: met}, nil
}
