package dblsh

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"dblsh/internal/core"
	"dblsh/internal/vec"
)

// Index persistence.
//
// A DB-LSH index is fully determined by (data, parameters, seed): the hash
// family is sampled from the seed and the R*-trees are bulk-loaded
// deterministically. The on-disk format therefore stores the vectors and the
// configuration and rebuilds the structures on load — the file stays compact
// (4 bytes per coordinate plus a fixed header) and loading costs one STR
// bulk load, which is the fastest construction path anyway (Table IV's
// indexing-time column).
//
// Layout (little-endian), followed by a CRC-32 (IEEE) of everything before
// it:
//
//	magic   [8]byte  "DBLSHv1\n"
//	n       uint64
//	dim     uint32
//	K, L, T uint32
//	C, W0   float64
//	r0      float64
//	seed    int64
//	data    n·dim × float32
//	crc     uint32

var magic = [8]byte{'D', 'B', 'L', 'S', 'H', 'v', '1', '\n'}

type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p)
	return c.w.Write(p)
}

type crcReader struct {
	r   io.Reader
	crc uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

// WriteTo serializes the index. It implements io.WriterTo.
func (idx *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	cw := &crcWriter{w: bw}

	cfg := idx.inner.Params()
	data := idx.inner.Data()
	if _, err := cw.Write(magic[:]); err != nil {
		return 0, fmt.Errorf("dblsh: write header: %w", err)
	}
	hdr := []interface{}{
		uint64(data.Rows()),
		uint32(data.Dim()),
		uint32(cfg.K), uint32(cfg.L), uint32(cfg.T),
		cfg.C, cfg.W0,
		idx.inner.InitialRadius(),
		cfg.Seed,
	}
	for _, v := range hdr {
		if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
			return 0, fmt.Errorf("dblsh: write header: %w", err)
		}
	}
	// Vectors row by row through a reused buffer: no n·dim temporary.
	buf := make([]byte, data.Dim()*4)
	for i := 0; i < data.Rows(); i++ {
		row := data.Row(i)
		for j, f := range row {
			binary.LittleEndian.PutUint32(buf[j*4:], math.Float32bits(f))
		}
		if _, err := cw.Write(buf); err != nil {
			return 0, fmt.Errorf("dblsh: write vectors: %w", err)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, cw.crc); err != nil {
		return 0, fmt.Errorf("dblsh: write checksum: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return 0, fmt.Errorf("dblsh: flush: %w", err)
	}
	total := int64(8) + 8 + 4 + 4 + 4 + 4 + 8 + 8 + 8 + 8 +
		int64(data.Rows())*int64(data.Dim())*4 + 4
	return total, nil
}

// Read deserializes an index previously written with WriteTo, rebuilding the
// projections and trees deterministically from the stored seed.
func Read(r io.Reader) (*Index, error) {
	cr := &crcReader{r: bufio.NewReaderSize(r, 1<<20)}

	var gotMagic [8]byte
	if _, err := io.ReadFull(cr, gotMagic[:]); err != nil {
		return nil, fmt.Errorf("dblsh: read header: %w", err)
	}
	if gotMagic != magic {
		return nil, fmt.Errorf("dblsh: bad magic %q (not a DB-LSH index file?)", gotMagic)
	}
	var (
		n       uint64
		dim     uint32
		k, l, t uint32
		c, w0   float64
		r0      float64
		seed    int64
	)
	for _, v := range []interface{}{&n, &dim, &k, &l, &t, &c, &w0, &r0, &seed} {
		if err := binary.Read(cr, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("dblsh: read header: %w", err)
		}
	}
	const maxVectors = 1 << 40
	if n == 0 || dim == 0 || n > maxVectors || uint64(dim) > 1<<20 {
		return nil, fmt.Errorf("dblsh: implausible shape %d×%d", n, dim)
	}
	flat := make([]float32, n*uint64(dim))
	buf := make([]byte, int(dim)*4)
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(cr, buf); err != nil {
			return nil, fmt.Errorf("dblsh: read vectors: %w", err)
		}
		base := i * uint64(dim)
		for j := uint32(0); j < dim; j++ {
			flat[base+uint64(j)] = math.Float32frombits(binary.LittleEndian.Uint32(buf[j*4:]))
		}
	}
	wantCRC := cr.crc
	var gotCRC uint32
	if err := binary.Read(cr.r, binary.LittleEndian, &gotCRC); err != nil {
		return nil, fmt.Errorf("dblsh: read checksum: %w", err)
	}
	if gotCRC != wantCRC {
		return nil, fmt.Errorf("dblsh: checksum mismatch (file corrupted): got %08x want %08x", gotCRC, wantCRC)
	}

	m := vec.WrapMatrix(flat, int(n), int(dim))
	inner := core.Build(m, core.Config{
		C: c, W0: w0, K: int(k), L: int(l), T: int(t),
		Seed: seed, InitialRadius: r0,
	})
	return &Index{inner: inner, dim: int(dim)}, nil
}
