package dblsh

import (
	"testing"
)

// TestQuantizeOnOffIdentity is the public-API result-identity contract for
// the quantized pre-filter: the same index built with Quantize "on" and
// "off" returns byte-identical hits for every query, under Euclidean and
// under a metric reduction (cosine transforms rows at ingest, so the
// mirror quantizes transformed coordinates — identity must survive that
// too).
func TestQuantizeOnOffIdentity(t *testing.T) {
	for _, metric := range []Metric{Euclidean, Cosine} {
		data, queries := clusteredData(2000, 24, 9)
		base := Options{K: 8, L: 4, T: 60, Seed: 9, Metric: metric}

		on := base
		on.Quantize = "on"
		off := base
		off.Quantize = "off"
		idxOn, err := New(data, on)
		if err != nil {
			t.Fatal(err)
		}
		idxOff, err := New(data, off)
		if err != nil {
			t.Fatal(err)
		}
		if got := idxOn.Params().Quantize; got != "on" {
			t.Fatalf("metric %v: Params().Quantize = %q", metric, got)
		}
		if got := idxOff.Params().Quantize; got != "off" {
			t.Fatalf("metric %v: Params().Quantize = %q", metric, got)
		}

		compare := func(stage string) {
			t.Helper()
			for qi, q := range queries {
				a := idxOn.Search(q, 10)
				b := idxOff.Search(q, 10)
				if len(a) != len(b) {
					t.Fatalf("metric %v %s query %d: %d vs %d hits", metric, stage, qi, len(a), len(b))
				}
				for i := range a {
					if a[i].ID != b[i].ID || a[i].Dist != b[i].Dist {
						t.Fatalf("metric %v %s query %d hit %d: %+v vs %+v",
							metric, stage, qi, i, a[i], b[i])
					}
				}
			}
		}
		compare("built")

		// The live toggle must land on the same results from either side.
		if err := idxOn.SetQuantize("off"); err != nil {
			t.Fatal(err)
		}
		if err := idxOff.SetQuantize("on"); err != nil {
			t.Fatal(err)
		}
		compare("toggled")
		if err := idxOn.SetQuantize("on"); err != nil {
			t.Fatal(err)
		}
		if err := idxOff.SetQuantize("off"); err != nil {
			t.Fatal(err)
		}
		compare("restored")
	}
}

// TestQuantizeValidation pins the accepted settings.
func TestQuantizeValidation(t *testing.T) {
	data, _ := clusteredData(50, 8, 3)
	if _, err := New(data, Options{Quantize: "maybe"}); err == nil {
		t.Fatal("invalid Quantize setting must error at build")
	}
	idx, err := New(data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.SetQuantize("sometimes"); err == nil {
		t.Fatal("invalid Quantize setting must error at SetQuantize")
	}
	if err := idx.SetQuantize(""); err != nil {
		t.Fatalf("empty setting (default on) rejected: %v", err)
	}
}
