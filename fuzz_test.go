package dblsh

import (
	"bytes"
	"testing"
)

// FuzzRead hardens the index-file parser: arbitrary bytes must produce an
// error, never a panic or a runaway allocation. Run with
// `go test -fuzz=FuzzRead`; without -fuzz the seed corpus below runs as a
// regular test.
func FuzzRead(f *testing.F) {
	// Seed corpus: a valid file, a truncation, a bit flip, and junk.
	data, _ := clusteredData(50, 4, 91)
	idx, err := New(data, Options{K: 4, L: 2, Seed: 91})
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if _, err := idx.WriteTo(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:40])
	flipped := append([]byte(nil), valid.Bytes()...)
	flipped[20] ^= 0x40
	f.Add(flipped)
	f.Add([]byte("DBLSHv1\n garbage"))
	f.Add([]byte("DBLSHv2\n garbage"))
	f.Add([]byte{})
	// A sharded index with tombstones exercises the v2 id-map and bitmap
	// sections, and a legacy v1 file exercises the compatibility path.
	sharded, err := New(data, Options{K: 4, L: 2, Seed: 91, Shards: 3})
	if err != nil {
		f.Fatal(err)
	}
	sharded.Delete(1)
	var validSharded bytes.Buffer
	if _, err := sharded.WriteTo(&validSharded); err != nil {
		f.Fatal(err)
	}
	f.Add(validSharded.Bytes())
	f.Add(writeV1File(data, 4, 2, 10, 1.5, 9, 1, 91))

	f.Fuzz(func(t *testing.T, raw []byte) {
		loaded, err := Read(bytes.NewReader(raw))
		if err != nil {
			return
		}
		// Anything the parser accepts must be a usable index. Len 0 is
		// legitimate for a v2 file (fully deleted and compacted), but the
		// index must still answer queries without panicking.
		if loaded.Len() < 0 || loaded.Dim() <= 0 {
			t.Fatalf("accepted index with shape %d×%d", loaded.Len(), loaded.Dim())
		}
		q := make([]float32, loaded.Dim())
		live := loaded.Len() - loaded.Deleted()
		res := loaded.Search(q, 1)
		if live > 0 && len(res) != 1 {
			t.Fatalf("accepted index with %d live points cannot answer queries", live)
		}
		if live <= 0 && len(res) != 0 {
			t.Fatalf("index with no live points returned %d results", len(res))
		}
	})
}

// FuzzSearch hardens the public query path against arbitrary (well-shaped)
// vectors, including extreme values.
func FuzzSearch(f *testing.F) {
	data, _ := clusteredData(200, 4, 92)
	idx, err := New(data, Options{K: 4, L: 2, T: 10, Seed: 92})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(float32(0), float32(0), float32(0), float32(0))
	f.Add(float32(1e30), float32(-1e30), float32(1e-30), float32(0))
	f.Fuzz(func(t *testing.T, a, b, c, d float32) {
		if a != a || b != b || c != c || d != d {
			t.Skip("NaN queries are out of contract")
		}
		res := idx.Search([]float32{a, b, c, d}, 3)
		if len(res) == 0 || len(res) > 3 {
			t.Fatalf("got %d results", len(res))
		}
	})
}
