package dblsh

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func buildSmall(t *testing.T) (*Index, [][]float32, [][]float32) {
	t.Helper()
	data, queries := clusteredData(2000, 24, 31)
	idx, err := New(data, Options{K: 8, L: 4, T: 40, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	return idx, data, queries
}

func TestPersistRoundTrip(t *testing.T) {
	idx, _, queries := buildSmall(t)
	var buf bytes.Buffer
	n, err := idx.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != n {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}

	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != idx.Len() || loaded.Dim() != idx.Dim() {
		t.Fatalf("shape changed: %d×%d vs %d×%d", loaded.Len(), loaded.Dim(), idx.Len(), idx.Dim())
	}
	if loaded.Params() != idx.Params() {
		t.Fatalf("params changed: %+v vs %+v", loaded.Params(), idx.Params())
	}
	// Determinism: the reloaded index must answer identically.
	for _, q := range queries {
		a := idx.Search(q, 10)
		b := loaded.Search(q, 10)
		if len(a) != len(b) {
			t.Fatalf("result sizes differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("results diverge at rank %d: %+v vs %+v", i, a[i], b[i])
			}
		}
	}
}

func TestPersistRejectsCorruption(t *testing.T) {
	idx, _, _ := buildSmall(t)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Flip one byte in the vector payload.
	corrupted := append([]byte(nil), raw...)
	corrupted[len(corrupted)/2] ^= 0xff
	if _, err := Read(bytes.NewReader(corrupted)); err == nil {
		t.Fatal("corrupted payload must fail the checksum")
	} else if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("unexpected error: %v", err)
	}

	// Wrong magic.
	wrongMagic := append([]byte(nil), raw...)
	wrongMagic[0] = 'X'
	if _, err := Read(bytes.NewReader(wrongMagic)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic must be rejected, got %v", err)
	}

	// Truncated file.
	if _, err := Read(bytes.NewReader(raw[:len(raw)/3])); err == nil {
		t.Fatal("truncated file must fail")
	}
}

func TestPersistEmptyReaderFails(t *testing.T) {
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty reader must fail")
	}
}

func TestAddThenSearch(t *testing.T) {
	idx, data, _ := buildSmall(t)
	before := idx.Len()

	// Add a point far from everything, then query next to it.
	novel := make([]float32, idx.Dim())
	for j := range novel {
		novel[j] = 500
	}
	id, err := idx.Add(novel)
	if err != nil {
		t.Fatal(err)
	}
	if id != before {
		t.Fatalf("Add returned id %d, want %d", id, before)
	}
	if idx.Len() != before+1 {
		t.Fatalf("Len = %d", idx.Len())
	}
	hits := idx.Search(novel, 1)
	if len(hits) != 1 || hits[0].ID != id || hits[0].Dist != 0 {
		t.Fatalf("search for added point returned %+v", hits)
	}

	// Old points still found.
	hits = idx.Search(data[0], 1)
	if len(hits) != 1 || hits[0].Dist != 0 {
		t.Fatalf("pre-existing point lost after Add: %+v", hits)
	}

	// Dim mismatch errors.
	if _, err := idx.Add(novel[:3]); err == nil {
		t.Fatal("Add with wrong dim must error")
	}
}

func TestAddManyKeepsTreeInvariants(t *testing.T) {
	data, _ := clusteredData(500, 16, 33)
	idx, err := New(data, Options{K: 6, L: 3, T: 20, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-existing searcher must survive index growth.
	s := idx.NewSearcher()
	for i := 0; i < 500; i++ {
		v := make([]float32, 16)
		for j := range v {
			v[j] = data[i%500][j] + 0.01
		}
		if _, err := idx.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	if idx.Len() != 1000 {
		t.Fatalf("Len = %d", idx.Len())
	}
	res := s.Search(data[0], 5)
	if len(res) != 5 {
		t.Fatalf("stale searcher returned %d results", len(res))
	}
	if res[0].Dist != 0 {
		t.Fatalf("nearest to data[0] should be itself, got %+v", res[0])
	}
}

// failingWriter errors after n bytes, for write-path failure injection.
type failingWriter struct {
	n int
}

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errWriteFailed
	}
	if len(p) > f.n {
		n := f.n
		f.n = 0
		return n, errWriteFailed
	}
	f.n -= len(p)
	return len(p), nil
}

var errWriteFailed = errors.New("injected write failure")

func TestWriteToSurfacesWriterErrors(t *testing.T) {
	idx, _, _ := buildSmall(t)
	for _, budget := range []int{0, 4, 100, 5000} {
		if _, err := idx.WriteTo(&failingWriter{n: budget}); err == nil {
			t.Fatalf("budget %d: expected an error from a failing writer", budget)
		}
	}
}

// countingFailWriter accepts up to limit bytes, then errors, and records
// exactly how many bytes it accepted.
type countingFailWriter struct {
	limit    int
	accepted int
}

func (w *countingFailWriter) Write(p []byte) (int, error) {
	if w.accepted+len(p) > w.limit {
		n := w.limit - w.accepted
		w.accepted = w.limit
		return n, errWriteFailed
	}
	w.accepted += len(p)
	return len(p), nil
}

// TestWriteToReportsFlushedBytes pins the io.WriterTo contract on failure:
// the returned count must be the bytes the destination actually accepted,
// not bytes parked in WriteTo's internal 1 MiB buffer that never reached
// the writer.
func TestWriteToReportsFlushedBytes(t *testing.T) {
	idx, _, _ := buildSmall(t)
	var full bytes.Buffer
	total, err := idx.WriteTo(&full)
	if err != nil {
		t.Fatal(err)
	}
	if total != int64(full.Len()) {
		t.Fatalf("success path reported %d bytes, wrote %d", total, full.Len())
	}
	for _, limit := range []int{0, 1, 37, 4096} {
		w := &countingFailWriter{limit: limit}
		n, err := idx.WriteTo(w)
		if err == nil {
			t.Fatalf("limit %d: expected an error", limit)
		}
		if n != int64(w.accepted) {
			t.Fatalf("limit %d: WriteTo reported %d bytes, destination accepted %d", limit, n, w.accepted)
		}
	}
}

// slowReader returns one byte at a time, exercising partial-read handling in
// the load path.
type slowReader struct {
	data []byte
	pos  int
}

func (s *slowReader) Read(p []byte) (int, error) {
	if s.pos >= len(s.data) {
		return 0, io.EOF
	}
	p[0] = s.data[s.pos]
	s.pos++
	return 1, nil
}

func TestReadHandlesPartialReads(t *testing.T) {
	idx, _, queries := buildSmall(t)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&slowReader{data: buf.Bytes()})
	if err != nil {
		t.Fatal(err)
	}
	a := idx.Search(queries[0], 5)
	b := loaded.Search(queries[0], 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("byte-at-a-time load diverges")
		}
	}
}
