// Benchmarks regenerating the paper's tables and figures (one bench per
// artifact; see DESIGN.md's experiment index) plus ablations of the design
// choices DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// The workload is a scaled-down profile so the suite completes in minutes;
// use cmd/dblsh-bench for the full-size tables.
package dblsh_test

import (
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dblsh"
	"dblsh/internal/baseline/e2lsh"
	"dblsh/internal/baseline/fblsh"
	"dblsh/internal/baseline/lsb"
	"dblsh/internal/baseline/pmlsh"
	"dblsh/internal/baseline/qalsh"
	"dblsh/internal/baseline/scan"
	"dblsh/internal/core"
	"dblsh/internal/dataset"
	"dblsh/internal/harness"
	"dblsh/internal/lsh"
	"dblsh/internal/mathx"
	"dblsh/internal/rstar"
	"dblsh/internal/vec"
)

// benchProfile is the corpus every query benchmark shares. The cardinality
// is the "SIFT10M-small" scale from dataset.Small.
var benchProfile = dataset.Profile{
	Name: "bench", N: 20_000, Dim: 128, Queries: 50,
	Clusters: 50, Std: 1, Spread: 11, SubClusters: 20, Seed: 13,
}

var (
	benchOnce sync.Once
	benchData *dataset.Dataset
)

func benchDS() *dataset.Dataset {
	benchOnce.Do(func() { benchData = dataset.Generate(benchProfile) })
	return benchData
}

func benchParams() harness.Params {
	p := harness.DefaultParams()
	p.K = 10
	p.L = 5
	p.T = 100
	return p
}

// --- Figure 4: ρ* vs ρ curves -----------------------------------------------

func BenchmarkFig4Rho(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for c := 1.05; c <= 4.0; c += 0.05 {
			_ = mathx.Rho(c, 4*c*c)
			_ = mathx.RhoStatic(c, 4*c*c)
			_ = mathx.Alpha(2)
		}
	}
}

// --- Table IV: per-algorithm query cost --------------------------------------

// benchQueries measures steady-state (c,k)-ANN query latency for one
// algorithm, k = 50 as in Table IV.
func benchQueries(b *testing.B, search harness.SearchFunc) {
	ds := benchDS()
	const k = 50
	// Warm lazily-built structures before timing.
	for qi := 0; qi < ds.Queries.Rows(); qi++ {
		search(ds.Queries.Row(qi), k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		search(ds.Queries.Row(i%ds.Queries.Rows()), k)
	}
}

func BenchmarkTable4QueryDBLSH(b *testing.B) {
	p := benchParams()
	idx := core.Build(benchDS().Data, core.Config{C: p.C, W0: p.W0, K: p.K, L: p.L, T: p.T, Seed: p.Seed})
	s := idx.NewSearcher()
	benchQueries(b, func(q []float32, k int) []vec.Neighbor { return s.KANN(q, k) })
}

func BenchmarkTable4QueryFBLSH(b *testing.B) {
	p := benchParams()
	idx := fblsh.Build(benchDS().Data, fblsh.Config{C: p.C, W0: p.W0, K: p.K, L: p.L, T: p.T, Seed: p.Seed})
	benchQueries(b, idx.KANN)
}

func BenchmarkTable4QueryE2LSH(b *testing.B) {
	p := benchParams()
	idx := e2lsh.Build(benchDS().Data, e2lsh.Config{C: p.C, W0: p.W0, K: p.K, L: p.L, T: p.T, Seed: p.Seed})
	benchQueries(b, idx.KANN)
}

func BenchmarkTable4QueryQALSH(b *testing.B) {
	p := benchParams()
	beta := float64(2*p.T*p.L) / float64(benchProfile.N)
	idx := qalsh.Build(benchDS().Data, qalsh.Config{C: p.C, Beta: beta, Seed: p.Seed})
	benchQueries(b, idx.KANN)
}

func BenchmarkTable4QueryPMLSH(b *testing.B) {
	p := benchParams()
	beta := float64(2*p.T*p.L) / float64(benchProfile.N)
	idx := pmlsh.Build(benchDS().Data, pmlsh.Config{M: 15, Beta: beta, C: p.C, Seed: p.Seed})
	benchQueries(b, idx.KANN)
}

func BenchmarkTable4QueryLSBForest(b *testing.B) {
	p := benchParams()
	idx := lsb.Build(benchDS().Data, lsb.Config{K: p.K, L: p.L, T: p.T, Seed: p.Seed})
	benchQueries(b, idx.KANN)
}

func BenchmarkTable4QueryScan(b *testing.B) {
	idx := scan.Build(benchDS().Data)
	benchQueries(b, idx.KANN)
}

// --- Table IV: indexing time --------------------------------------------------

func BenchmarkTable4IndexingDBLSH(b *testing.B) {
	p := benchParams()
	ds := benchDS()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.Build(ds.Data, core.Config{C: p.C, W0: p.W0, K: p.K, L: p.L, T: p.T, Seed: p.Seed})
	}
}

func BenchmarkTable4IndexingQALSH(b *testing.B) {
	ds := benchDS()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = qalsh.Build(ds.Data, qalsh.Config{C: 1.5, Seed: 1})
	}
}

func BenchmarkTable4IndexingPMLSH(b *testing.B) {
	ds := benchDS()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pmlsh.Build(ds.Data, pmlsh.Config{M: 15, Seed: 1})
	}
}

func BenchmarkTable4IndexingLSBForest(b *testing.B) {
	ds := benchDS()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = lsb.Build(ds.Data, lsb.Config{K: 10, L: 5, Seed: 1})
	}
}

// --- Figures 5–7: query cost vs n --------------------------------------------

func BenchmarkFig5QueryTimeVsN(b *testing.B) {
	p := benchParams()
	for _, frac := range []float64{0.2, 0.6, 1.0} {
		frac := frac
		b.Run(benchProfile.Scaled(frac).Name, func(b *testing.B) {
			ds := dataset.Generate(benchProfile.Scaled(frac))
			idx := core.Build(ds.Data, core.Config{C: p.C, W0: p.W0, K: p.K, L: p.L, T: p.T, Seed: p.Seed})
			s := idx.NewSearcher()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.KANN(ds.Queries.Row(i%ds.Queries.Rows()), 50)
			}
		})
	}
}

// --- Figure 8: query cost vs k ------------------------------------------------

func BenchmarkFig8VaryK(b *testing.B) {
	p := benchParams()
	ds := benchDS()
	idx := core.Build(ds.Data, core.Config{C: p.C, W0: p.W0, K: p.K, L: p.L, T: p.T, Seed: p.Seed})
	for _, k := range []int{1, 20, 50, 100} {
		k := k
		b.Run(benchName("k", k), func(b *testing.B) {
			s := idx.NewSearcher()
			for i := 0; i < b.N; i++ {
				s.KANN(ds.Queries.Row(i%ds.Queries.Rows()), k)
			}
		})
	}
}

// --- Figures 9–10: accuracy/time trade-off via c -------------------------------

func BenchmarkFig9TradeoffC(b *testing.B) {
	ds := benchDS()
	for _, c := range []float64{1.2, 1.5, 2.0, 3.0} {
		c := c
		b.Run(benchName("c10x", int(c*10)), func(b *testing.B) {
			idx := core.Build(ds.Data, core.Config{C: c, W0: 4 * c * c, K: 10, L: 5, T: 100, Seed: 13})
			s := idx.NewSearcher()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.KANN(ds.Queries.Row(i%ds.Queries.Rows()), 50)
			}
		})
	}
}

// --- Table I: empirical growth exponents ---------------------------------------

func BenchmarkTable1Exponents(b *testing.B) {
	if testing.Short() {
		b.Skip("runs the full vary-n matrix")
	}
	p := benchParams()
	small := benchProfile
	small.N = 8000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		harness.Table1(io.Discard, small, []float64{0.25, 0.5, 1.0}, p, 10)
	}
}

// --- Ablations (DESIGN.md "Design choices") ------------------------------------

// Dynamic query-centric buckets (DB-LSH) vs fixed grid buckets (FB-LSH) at
// identical K, L, t — the paper's Section VI-B1 comparison.
func BenchmarkAblationBucketing(b *testing.B) {
	p := benchParams()
	ds := benchDS()
	b.Run("dynamic", func(b *testing.B) {
		idx := core.Build(ds.Data, core.Config{C: p.C, W0: p.W0, K: p.K, L: p.L, T: p.T, Seed: p.Seed})
		s := idx.NewSearcher()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.KANN(ds.Queries.Row(i%ds.Queries.Rows()), 50)
		}
	})
	b.Run("fixed", func(b *testing.B) {
		idx := fblsh.Build(ds.Data, fblsh.Config{C: p.C, W0: p.W0, K: p.K, L: p.L, T: p.T, Seed: p.Seed})
		for qi := 0; qi < ds.Queries.Rows(); qi++ {
			idx.KANN(ds.Queries.Row(qi), 50) // materialize grids untimed
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			idx.KANN(ds.Queries.Row(i%ds.Queries.Rows()), 50)
		}
	})
}

// STR bulk loading vs one-by-one R* insertion — the indexing-time edge the
// paper attributes to bulk loading (Section VI-B2).
func BenchmarkAblationBulkLoad(b *testing.B) {
	ds := benchDS()
	proj := projectedSpace(ds)
	b.Run("str", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = rstar.BulkLoad(proj, rstar.Options{})
		}
	})
	b.Run("insert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := rstar.New(proj, rstar.Options{})
			for id := 0; id < proj.Rows(); id++ {
				tr.Insert(id)
			}
		}
	})
}

// projectedSpace builds one 10-dimensional LSH projection of the corpus —
// the input both tree-construction strategies index.
func projectedSpace(ds *dataset.Dataset) *vec.Matrix {
	g := lsh.NewCompound(10, ds.Data.Dim(), rand.New(rand.NewSource(3)))
	return g.Project(ds.Data)
}

// Candidate constant t: more candidates per index, better accuracy (Remark 2).
func BenchmarkAblationT(b *testing.B) {
	ds := benchDS()
	for _, t := range []int{10, 100, 400} {
		t := t
		b.Run(benchName("t", t), func(b *testing.B) {
			idx := core.Build(ds.Data, core.Config{C: 1.5, K: 10, L: 5, T: t, Seed: 13})
			s := idx.NewSearcher()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.KANN(ds.Queries.Row(i%ds.Queries.Rows()), 50)
			}
		})
	}
}

// Initial width w0 = 2γc²: γ drives the bound α = ξ(γ) (Lemma 3).
func BenchmarkAblationW0(b *testing.B) {
	ds := benchDS()
	c := 1.5
	for _, gamma := range []float64{0.5, 1, 2, 3} {
		gamma := gamma
		b.Run(benchName("gamma10x", int(gamma*10)), func(b *testing.B) {
			idx := core.Build(ds.Data, core.Config{C: c, W0: 2 * gamma * c * c, K: 10, L: 5, T: 100, Seed: 13})
			s := idx.NewSearcher()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.KANN(ds.Queries.Row(i%ds.Queries.Rows()), 50)
			}
		})
	}
}

// Number of projected spaces L.
func BenchmarkAblationL(b *testing.B) {
	ds := benchDS()
	for _, l := range []int{1, 5, 10} {
		l := l
		b.Run(benchName("L", l), func(b *testing.B) {
			idx := core.Build(ds.Data, core.Config{C: 1.5, K: 10, L: l, T: 100, Seed: 13})
			s := idx.NewSearcher()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.KANN(ds.Queries.Row(i%ds.Queries.Rows()), 50)
			}
		})
	}
}

// --- Per-query options API (public surface) ------------------------------------

// benchIndex builds a public dblsh.Index over the shared bench corpus.
func benchIndex(b *testing.B) *dblsh.Index {
	b.Helper()
	p := benchParams()
	ds := benchDS()
	idx, err := dblsh.NewFromFlat(ds.Data.Data(), ds.Data.Rows(), ds.Data.Dim(),
		dblsh.Options{C: p.C, W0: p.W0, K: p.K, L: p.L, T: p.T, Seed: p.Seed})
	if err != nil {
		b.Fatal(err)
	}
	return idx
}

// Filter pushdown: a tenant predicate admitting half the corpus, evaluated
// inside the verification loop before any exact distance computation.
func BenchmarkSearchFiltered(b *testing.B) {
	idx := benchIndex(b)
	ds := benchDS()
	s := idx.NewSearcher()
	tenant := dblsh.WithFilter(func(id int) bool { return id%2 == 0 })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SearchOpts(ds.Queries.Row(i%ds.Queries.Rows()), 50, tenant); err != nil {
			b.Fatal(err)
		}
	}
}

// Batch fan-out through the options path, with per-query stats collected —
// the shape of a POST /search_batch request.
func BenchmarkSearchBatchOpts(b *testing.B) {
	idx := benchIndex(b)
	ds := benchDS()
	queries := make([][]float32, ds.Queries.Rows())
	for i := range queries {
		queries[i] = ds.Queries.Row(i)
	}
	var per []dblsh.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.SearchBatchOpts(queries, 50, dblsh.WithBatchStats(&per)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchIndexSharded builds a public index over the bench corpus with the
// given shard count.
func benchIndexSharded(b *testing.B, shards int) *dblsh.Index {
	b.Helper()
	p := benchParams()
	ds := benchDS()
	idx, err := dblsh.NewFromFlat(ds.Data.Data(), ds.Data.Rows(), ds.Data.Dim(),
		dblsh.Options{C: p.C, W0: p.W0, K: p.K, L: p.L, T: p.T, Seed: p.Seed, Shards: shards})
	if err != nil {
		b.Fatal(err)
	}
	return idx
}

// Search latency as shard count grows, sequential versus parallel: "seq"
// forces the one-goroutine reference ladder (WithParallelism(1)), "par"
// fans every round out across all shards (WithParallelism(shards)); both
// return bit-identical results, so the delta is pure execution cost. On a
// single-core host "par" measures the fan-out machinery's overhead
// (goroutines, arenas, the deferred merge); the speedup needs cores to
// spread the per-shard gathers across.
func BenchmarkSearchSharded(b *testing.B) {
	ds := benchDS()
	for _, shards := range []int{1, 4, 8} {
		idx := benchIndexSharded(b, shards)
		for _, mode := range []struct {
			name string
			par  int
		}{{"seq", 1}, {"par", shards}} {
			mode := mode
			b.Run(benchName("shards", shards)+"/"+mode.name, func(b *testing.B) {
				s := idx.NewSearcher()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.SearchOpts(ds.Queries.Row(i%ds.Queries.Rows()), 10,
						dblsh.WithParallelism(mode.par))
				}
			})
		}
	}
}

// Search throughput while a writer mutates the index at a steady rate —
// the scenario that motivated sharding. With one shard every Add
// write-locks the whole index and stalls every in-flight search; with S
// shards an Add stalls only the sub-queries of one shard while the other
// S−1 keep streaming. The writer's insert rate is fixed so both layouts
// face identical write pressure and only the locking differs.
func BenchmarkAddWhileSearching(b *testing.B) {
	ds := benchDS()
	dim := ds.Data.Dim()
	for _, shards := range []int{1, 8} {
		shards := shards
		b.Run(benchName("shards", shards), func(b *testing.B) {
			idx := benchIndexSharded(b, shards)
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() { // steady writer: ~250 inserts/second
				defer wg.Done()
				v := make([]float32, dim)
				tick := time.NewTicker(4 * time.Millisecond)
				defer tick.Stop()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					case <-tick.C:
					}
					v[0] = float32(i)
					if _, err := idx.Add(v); err != nil {
						return
					}
				}
			}()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				s := idx.NewSearcher()
				i := 0
				for pb.Next() {
					s.Search(ds.Queries.Row(i%ds.Queries.Rows()), 10)
					i++
				}
			})
			b.StopTimer()
			close(stop)
			wg.Wait()
		})
	}
}

// BenchmarkLadderAllocs measures the steady-state cost of the traversal
// alone — the round-coordinated Begin/RunRound/Covers primitives the
// incremental frontier cursors back — with verification reduced to a no-op
// sink. The pooling contract says allocs/op must be 0 once the searcher is
// warm (TestTraversalZeroAllocs in internal/core asserts it; this reports
// it alongside the latency).
func BenchmarkLadderAllocs(b *testing.B) {
	p := benchParams()
	ds := benchDS()
	idx := core.Build(ds.Data, core.Config{C: p.C, W0: p.W0, K: p.K, L: p.L, T: p.T, Seed: p.Seed})
	s := idx.NewSearcher()
	emit := func(ids []int, dists []float64) (int, bool) { return len(ids), false }
	cfg := idx.Params()
	query := func(q []float32) {
		s.Begin(q)
		r := idx.InitialRadius()
		for round := 0; round < 8; round++ {
			s.RunRound(q, r, nil, nil, emit)
			if s.Covers(r) {
				break
			}
			r *= cfg.C
		}
	}
	// Warm the searcher's buffers with full queries before timing, so a
	// short -benchtime run doesn't charge the one-time buffer growth of
	// deep rounds to the steady state being measured.
	for qi := 0; qi < ds.Queries.Rows(); qi++ {
		query(ds.Queries.Row(qi))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		query(ds.Queries.Row(i % ds.Queries.Rows()))
	}
}

func benchName(prefix string, v int) string {
	// Stable sub-benchmark names without fmt in the hot path.
	digits := [20]byte{}
	i := len(digits)
	if v == 0 {
		i--
		digits[i] = '0'
	}
	for v > 0 {
		i--
		digits[i] = byte('0' + v%10)
		v /= 10
	}
	return prefix + "=" + string(digits[i:])
}
