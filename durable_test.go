package dblsh

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dblsh/internal/wal"
)

// randVecs returns n deterministic random vectors of dimension d. With
// continuous coordinates every vector is its own unique nearest neighbor at
// distance 0, so recovery checks can assert exact hits. The ×10 scale keeps
// inter-point distances far above the radius ladder's first-round
// termination threshold (a store grown from empty starts at r0 = 1), so an
// exact-match query always verifies its own point before any other
// candidate can stop the round.
func randVecs(n, d int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float32, n)
	for i := range out {
		v := make([]float32, d)
		for j := range v {
			v[j] = float32(rng.NormFloat64() * 10)
		}
		out[i] = v
	}
	return out
}

// serialize snapshots an index's full persisted state for byte-level
// equality checks between a pre-crash index and its recovered twin.
func serialize(t *testing.T, idx *Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func mustOpen(t *testing.T, dir string, opts Options) *Index {
	t.Helper()
	idx, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

// expectHit asserts that vector v is indexed under id: its exact-match
// query must return it at distance 0.
func expectHit(t *testing.T, idx *Index, id int, v []float32) {
	t.Helper()
	res := idx.Search(v, 1)
	if len(res) != 1 || res[0].ID != id || res[0].Dist != 0 {
		t.Fatalf("vector of id %d: got %+v, want exact hit at distance 0", id, res)
	}
}

// TestCrashRecoveryWithTornTail is the acceptance scenario: a store
// mutated (Add + Delete) and killed without Close reopens with every synced
// mutation present and none duplicated, and a corrupted/truncated log tail
// drops exactly the torn record while keeping everything before it.
func TestCrashRecoveryWithTornTail(t *testing.T) {
	dir := t.TempDir()
	idx := mustOpen(t, dir, Options{Dim: 8, Seed: 7})
	vecs := randVecs(50, 8, 7)
	for i, v := range vecs {
		id, err := idx.Add(v)
		if err != nil {
			t.Fatal(err)
		}
		if id != i {
			t.Fatalf("id %d for insert %d", id, i)
		}
	}
	for _, id := range []int{3, 17, 41} {
		if !idx.Delete(id) {
			t.Fatalf("delete %d failed", id)
		}
	}
	want := serialize(t, idx)
	// Crash: the index is abandoned without Close. The op log file already
	// holds every synced record.

	re := mustOpen(t, dir, Options{})
	if got := serialize(t, re); !bytes.Equal(got, want) {
		t.Fatal("recovered index state diverges from the pre-crash index")
	}
	if re.Len() != 50 || re.NextID() != 50 || re.Deleted() != 3 {
		t.Fatalf("recovered shape: Len=%d NextID=%d Deleted=%d", re.Len(), re.NextID(), re.Deleted())
	}
	expectHit(t, re, 5, vecs[5])
	if res := re.Search(vecs[17], 1); len(res) == 1 && res[0].ID == 17 {
		t.Fatal("deleted id 17 resurrected by replay")
	}
	// Replay must be idempotent: reopening again (the log was not
	// checkpointed away) changes nothing and duplicates nothing.
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2 := mustOpen(t, dir, Options{})
	if got := serialize(t, re2); !bytes.Equal(got, want) {
		t.Fatal("second replay is not idempotent")
	}
	if err := re2.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the log tail mid-record: the final op (the Delete of 41) loses
	// its last bytes. Recovery must drop exactly that record.
	walPath := filepath.Join(dir, "wal.log")
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	torn := mustOpen(t, dir, Options{})
	defer torn.Close()
	if torn.Len() != 50 || torn.Deleted() != 2 {
		t.Fatalf("after torn tail: Len=%d Deleted=%d, want 50/2", torn.Len(), torn.Deleted())
	}
	if res := torn.Search(vecs[41], 1); len(res) != 1 || res[0].ID != 41 {
		t.Fatal("the torn Delete of id 41 should have been dropped, leaving it live")
	}
	if res := torn.Search(vecs[17], 1); len(res) == 1 && res[0].ID == 17 {
		t.Fatal("intact Delete of id 17 lost alongside the torn tail")
	}
	// The torn tail was physically truncated at open, so new mutations
	// append cleanly after the intact prefix.
	if _, err := torn.Add(vecs[0]); err != nil {
		t.Fatal(err)
	}
}

// TestReplayIdempotentOverCheckpointBoundary pins the rotation race: a
// record whose mutation is already contained in the checkpoint (apply
// happened before the snapshot cut, append landed after rotation) must
// replay as a no-op.
func TestReplayIdempotentOverCheckpointBoundary(t *testing.T) {
	dir := t.TempDir()
	idx := mustOpen(t, dir, Options{Dim: 6, Seed: 8})
	vecs := randVecs(20, 6, 8)
	for _, v := range vecs {
		if _, err := idx.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	idx.Delete(4)
	if err := idx.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := serialize(t, idx)
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the race: re-append records the checkpoint already covers
	// (Adds of resident ids, a Delete of an already-tombstoned id) into the
	// post-rotation log.
	w, err := wal.OpenWriter(filepath.Join(dir, "wal.log"), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{2, 4, 7} {
		if err := w.Append(wal.Record{Op: wal.OpAdd, ID: uint64(id), Row: vecs[id]}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Append(wal.Record{Op: wal.OpDelete, ID: 4}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, dir, Options{})
	defer re.Close()
	if re.Len() != 20 || re.NextID() != 20 || re.Deleted() != 1 {
		t.Fatalf("replayed duplicates: Len=%d NextID=%d Deleted=%d", re.Len(), re.NextID(), re.Deleted())
	}
	if got := serialize(t, re); !bytes.Equal(got, want) {
		t.Fatal("duplicate replay changed the index state")
	}
}

// TestCrashMidCheckpointRecoversRotatedSegment simulates dying between log
// rotation and checkpoint completion: the rotated-out segment must be
// replayed at open and then absorbed by a completed checkpoint.
func TestCrashMidCheckpointRecoversRotatedSegment(t *testing.T) {
	dir := t.TempDir()
	idx := mustOpen(t, dir, Options{Dim: 5, Seed: 9})
	vecs := randVecs(15, 5, 9)
	for _, v := range vecs {
		if _, err := idx.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	idx.Delete(1)
	want := serialize(t, idx)
	// Crash exactly between rotation and the snapshot: the active log
	// becomes a rotated segment, a fresh empty log appears, and the
	// checkpoint on disk is still the initial empty one.
	if err := os.Rename(filepath.Join(dir, "wal.log"), filepath.Join(dir, "wal.00000000.old")); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, dir, Options{})
	defer re.Close()
	if got := serialize(t, re); !bytes.Equal(got, want) {
		t.Fatal("rotated segment not recovered")
	}
	// Open finished the interrupted checkpoint: the segment is retired and
	// the replayed history is inside the snapshot.
	if olds, _ := filepath.Glob(filepath.Join(dir, "wal.*.old")); len(olds) != 0 {
		t.Fatalf("rotated segments not retired: %v", olds)
	}
	st, ok := re.Durability()
	if !ok || st.OpsSinceCheckpoint != 0 || st.LogBytes != 0 {
		t.Fatalf("post-recovery stats: %+v", st)
	}
}

// TestDeleteCompactCrashReplayKeepsIDs: a Delete followed by a compaction
// that reclaims the row, then a crash, must replay to the same live set
// under the same global ids.
func TestDeleteCompactCrashReplayKeepsIDs(t *testing.T) {
	dir := t.TempDir()
	idx := mustOpen(t, dir, Options{Dim: 8, Seed: 10, Shards: 3})
	vecs := randVecs(90, 8, 10)
	for _, v := range vecs {
		if _, err := idx.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	deleted := map[int]bool{}
	for id := 0; id < 90; id += 7 {
		if !idx.Delete(id) {
			t.Fatalf("delete %d", id)
		}
		deleted[id] = true
	}
	if got := idx.Compact(); got != len(deleted) {
		t.Fatalf("compacted %d, want %d", got, len(deleted))
	}
	// Crash without checkpoint: the log still describes the full history.
	re := mustOpen(t, dir, Options{})
	defer re.Close()
	if re.NextID() != 90 {
		t.Fatalf("NextID %d, want 90", re.NextID())
	}
	for id, v := range vecs {
		res := re.Search(v, 1)
		if deleted[id] {
			if len(res) == 1 && res[0].ID == id {
				t.Fatalf("deleted id %d resurrected", id)
			}
		} else if len(res) != 1 || res[0].ID != id || res[0].Dist != 0 {
			t.Fatalf("id %d: got %+v, want exact hit", id, res)
		}
	}
	// New ids keep allocating past the stable ceiling.
	id, err := re.Add(vecs[0])
	if err != nil || id != 90 {
		t.Fatalf("Add after recovery: id=%d err=%v", id, err)
	}
}

func TestCloseGracefulReopenAndClosedMutations(t *testing.T) {
	dir := t.TempDir()
	idx := mustOpen(t, dir, Options{Dim: 4, Seed: 11, Sync: SyncNever})
	vecs := randVecs(10, 4, 11)
	for _, v := range vecs {
		if _, err := idx.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	want := serialize(t, idx)
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}
	if err := idx.Close(); err != nil {
		t.Fatal("second Close should be a no-op, got", err)
	}
	if _, err := idx.Add(vecs[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("Add after Close: %v, want ErrClosed", err)
	}
	if idx.Delete(0) {
		t.Fatal("Delete after Close mutated the index")
	}
	// Still searchable after Close.
	expectHit(t, idx, 2, vecs[2])

	re := mustOpen(t, dir, Options{})
	defer re.Close()
	if got := serialize(t, re); !bytes.Equal(got, want) {
		t.Fatal("graceful close lost state")
	}
}

func TestCheckpointTruncatesLogAndStats(t *testing.T) {
	dir := t.TempDir()
	idx := mustOpen(t, dir, Options{Dim: 4, Seed: 12})
	defer idx.Close()
	vecs := randVecs(8, 4, 12)
	for _, v := range vecs {
		if _, err := idx.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	// A no-op delete (unknown id) must not reach the log.
	if idx.Delete(999) {
		t.Fatal("delete of an unallocated id succeeded")
	}
	st, ok := idx.Durability()
	if !ok {
		t.Fatal("durable index reports not durable")
	}
	if st.OpsSinceCheckpoint != 8 || st.LogBytes == 0 {
		t.Fatalf("pre-checkpoint stats: %+v", st)
	}
	if st.Checkpoints != 1 { // the initial checkpoint of the fresh directory
		t.Fatalf("Checkpoints = %d, want 1", st.Checkpoints)
	}
	if err := idx.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st, _ = idx.Durability()
	if st.OpsSinceCheckpoint != 0 || st.LogBytes != 0 || st.Checkpoints != 2 || st.LastCheckpoint.IsZero() {
		t.Fatalf("post-checkpoint stats: %+v", st)
	}
	// A checkpoint with nothing new is a no-op.
	if err := idx.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st2, _ := idx.Durability(); st2.Checkpoints != 2 {
		t.Fatalf("idle checkpoint ran: %+v", st2)
	}
	// The checkpointed state must round-trip through a reopen with an
	// empty log.
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}
	re := mustOpen(t, dir, Options{})
	defer re.Close()
	if re.Len() != 8 {
		t.Fatalf("Len %d after checkpointed reopen", re.Len())
	}
	expectHit(t, re, 3, vecs[3])
}

func TestBackgroundCheckpointer(t *testing.T) {
	dir := t.TempDir()
	idx := mustOpen(t, dir, Options{Dim: 4, Seed: 13, Sync: SyncNever, CheckpointEvery: 20 * time.Millisecond})
	defer idx.Close()
	for _, v := range randVecs(5, 4, 13) {
		if _, err := idx.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, _ := idx.Durability()
		if st.OpsSinceCheckpoint == 0 && st.Checkpoints >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background checkpointer never absorbed the log: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSaveBridgesInMemoryToDurable(t *testing.T) {
	dir := t.TempDir()
	data, _ := clusteredData(200, 8, 14)
	mem, err := New(data, Options{Seed: 14, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Close(); err != nil {
		t.Fatal("Close on an in-memory index should be a no-op, got", err)
	}
	if err := mem.Checkpoint(); !errors.Is(err, errNotDurable) {
		t.Fatalf("Checkpoint on an in-memory index: %v, want errNotDurable", err)
	}
	if err := mem.Save(dir); err != nil {
		t.Fatal(err)
	}
	idx := mustOpen(t, dir, Options{})
	defer idx.Close()
	if idx.Len() != 200 || idx.Shards() != 2 {
		t.Fatalf("opened store: Len=%d Shards=%d", idx.Len(), idx.Shards())
	}
	// Mutations are durable from here on.
	id, err := idx.Add(data[0])
	if err != nil || id != 200 {
		t.Fatalf("Add: id=%d err=%v", id, err)
	}
	re := mustOpen(t, dir, Options{}) // crash-reopen without Close
	defer re.Close()
	if re.Len() != 201 {
		t.Fatalf("Len %d after reopen, want 201", re.Len())
	}
}

func TestDurableCosineReplaysWithoutRederivation(t *testing.T) {
	dir := t.TempDir()
	idx := mustOpen(t, dir, Options{Dim: 8, Seed: 15, Metric: Cosine})
	vecs := randVecs(30, 8, 15)
	for i, v := range vecs {
		if _, err := idx.Add(v); err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
	}
	q := vecs[12]
	want := idx.Search(q, 5)

	re := mustOpen(t, dir, Options{}) // crash-reopen
	defer re.Close()
	if re.Metric() != Cosine {
		t.Fatalf("metric %s after reopen", re.Metric())
	}
	got := re.Search(q, 5)
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestDurableConcurrentMutationsAndCheckpoints races Adds, Deletes,
// searches and checkpoints against each other, then crash-reopens and
// demands byte-identical state: mutations are serialized by the log mutex,
// so the recovered index must replay to exactly the pre-crash one no
// matter where the checkpoints cut the stream.
func TestDurableConcurrentMutationsAndCheckpoints(t *testing.T) {
	dir := t.TempDir()
	idx := mustOpen(t, dir, Options{Dim: 8, Seed: 20, Shards: 4, Sync: SyncNever})
	const (
		adders  = 4
		perG    = 60
		total   = adders * perG
		deletes = 40
	)
	vecs := randVecs(total, 8, 20)
	var wg sync.WaitGroup
	ids := make([][]int, adders)
	for g := 0; g < adders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				id, err := idx.Add(vecs[g*perG+i])
				if err != nil {
					t.Errorf("add: %v", err)
					return
				}
				ids[g] = append(ids[g], id)
			}
		}(g)
	}
	wg.Add(2)
	go func() { // deleter: racing ids that may not exist yet is fine
		defer wg.Done()
		for i := 0; i < deletes; i++ {
			idx.Delete(i * 3)
		}
	}()
	go func() { // checkpointer: cut the log at arbitrary points mid-stream
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := idx.Checkpoint(); err != nil {
				t.Errorf("checkpoint: %v", err)
			}
		}
	}()
	for i := 0; i < 20; i++ {
		idx.Search(vecs[i], 3)
	}
	wg.Wait()
	if idx.Len() != total || idx.NextID() != total {
		t.Fatalf("pre-crash shape: Len=%d NextID=%d, want %d", idx.Len(), idx.NextID(), total)
	}
	want := serialize(t, idx)

	re := mustOpen(t, dir, Options{}) // crash-reopen, no Close
	defer re.Close()
	if got := serialize(t, re); !bytes.Equal(got, want) {
		t.Fatal("recovered index diverges from the pre-crash index")
	}
}

func TestOpenValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open of an empty directory without Dim must fail")
	}
	if _, err := Open(dir, Options{Dim: 4, Metric: InnerProduct}); err == nil {
		t.Fatal("empty InnerProduct store without NormBound must fail")
	}
	idx := mustOpen(t, dir, Options{Dim: 4, Seed: 16})
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Dim: 9}); err == nil {
		t.Fatal("Dim mismatch with the stored checkpoint must fail")
	}
	if _, err := Open(dir, Options{Metric: Cosine}); err == nil {
		t.Fatal("Metric mismatch with the stored checkpoint must fail")
	}
}
