// Observability: Index.Instrument wires every layer of an index — shard
// set, compaction, and (on a durable index) the WAL and checkpointer —
// into an obs.Registry, so a serving process exposes the library's
// operational state on its /metrics endpoint. The metric catalog lives in
// the README's "Operations" section; names and bucket layouts are stable
// across PRs (see the internal/obs package doc).

package dblsh

import (
	"dblsh/internal/obs"
	"dblsh/internal/shard"
	"dblsh/internal/wal"
)

// Instrument registers the index's operational metrics on reg and starts
// reporting into them. It registers a fixed catalog of dblsh_* families
// (so calling it twice on one registry panics, as does mixing two
// instrumented indexes into one registry), samples index shape at scrape
// time, and counts WAL/checkpoint/compaction activity as it happens.
// Durability families are only registered when the index is durable (built
// with Open).
//
// The obs package is internal, so Instrument is callable from this
// module's binaries (dblsh-server) but not from external importers — the
// exposition endpoint, not the registry, is the public surface.
func (idx *Index) Instrument(reg *obs.Registry) {
	reg.GaugeFunc("dblsh_vectors_resident",
		"Resident vectors across all shards, live plus tombstoned.",
		func() float64 { return float64(idx.set.Len()) })
	reg.GaugeFunc("dblsh_vectors_deleted",
		"Tombstoned vectors a compaction would reclaim.",
		func() float64 { return float64(idx.set.Deleted()) })
	reg.GaugeFunc("dblsh_index_bytes",
		"Estimated memory held by projections and trees, excluding raw vectors.",
		func() float64 { return float64(idx.set.IndexSizeBytes()) })
	reg.GaugeFunc("dblsh_shards",
		"Number of independently locked index shards.",
		func() float64 { return float64(idx.set.Shards()) })

	idx.set.SetMetrics(shard.Metrics{
		CompactionRuns: reg.Counter("dblsh_compactions_total",
			"Completed shard compactions (manual, API and auto-triggered)."),
		CompactionSeconds: reg.Histogram("dblsh_compaction_seconds",
			"Duration of completed shard compactions.", obs.LatencyBuckets()),
	})

	d := idx.dur
	if d == nil {
		return
	}
	d.setMetrics(wal.Metrics{
		Appends: reg.Counter("dblsh_wal_appends_total",
			"Records appended to the write-ahead op log."),
		AppendBytes: reg.Counter("dblsh_wal_append_bytes_total",
			"Framed bytes appended to the write-ahead op log."),
		Fsyncs: reg.Counter("dblsh_wal_fsyncs_total",
			"Physical fsyncs of the op log (no-op syncs excluded)."),
		FsyncSeconds: reg.Histogram("dblsh_wal_fsync_seconds",
			"Op-log fsync latency.", obs.LatencyBuckets()),
	}, reg.Histogram("dblsh_checkpoint_seconds",
		"Duration of completed checkpoints (rotation through segment retirement).",
		obs.LatencyBuckets()))

	reg.CounterFunc("dblsh_checkpoints_total",
		"Checkpoints completed since Open.",
		func() float64 {
			st, _ := idx.Durability()
			return float64(st.Checkpoints)
		})
	reg.GaugeFunc("dblsh_wal_bytes",
		"Op-log bytes not yet absorbed by a checkpoint (active plus rotated segments).",
		func() float64 {
			st, _ := idx.Durability()
			return float64(st.LogBytes)
		})
	reg.GaugeFunc("dblsh_wal_ops_since_checkpoint",
		"Logged mutations a reopen would replay on top of the newest checkpoint.",
		func() float64 {
			st, _ := idx.Durability()
			return float64(st.OpsSinceCheckpoint)
		})
	reg.GaugeFunc("dblsh_wal_segments",
		"Live op-log segments: the active segment plus rotated ones awaiting retirement.",
		func() float64 {
			d.mu.Lock()
			n := 1 + len(d.oldPaths)
			d.mu.Unlock()
			return float64(n)
		})
	// The replay facts of this process's Open, frozen for the lifetime of
	// the index: how much history recovery had to re-apply.
	reg.GaugeFunc("dblsh_wal_replay_segments",
		"Log segments replayed by this process's Open.",
		func() float64 { return float64(d.replaySegments) })
	reg.GaugeFunc("dblsh_wal_replay_records",
		"Log records re-applied on top of the checkpoint by this process's Open.",
		func() float64 { return float64(d.replayRecords) })
	reg.GaugeFunc("dblsh_wal_replay_torn_segments",
		"Replayed segments whose torn tail (crash mid-append) was dropped at Open.",
		func() float64 { return float64(d.replayTorn) })
}
