package main

import "testing"

func TestResolveProfilesSets(t *testing.T) {
	small, err := resolveProfiles("small")
	if err != nil || len(small) == 0 {
		t.Fatalf("small: %v (%d profiles)", err, len(small))
	}
	full, err := resolveProfiles("full")
	if err != nil || len(full) != 10 {
		t.Fatalf("full: %v (%d profiles)", err, len(full))
	}
}

func TestResolveProfilesByName(t *testing.T) {
	ps, err := resolveProfiles("gist, Audio")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 || ps[0].Name != "Gist" || ps[1].Name != "Audio" {
		t.Fatalf("resolved %+v", ps)
	}
}

func TestResolveProfilesUnknown(t *testing.T) {
	if _, err := resolveProfiles("nope"); err == nil {
		t.Fatal("unknown profile must error")
	}
	if _, err := resolveProfiles(""); err == nil {
		t.Fatal("empty set must error")
	}
}

func TestFirstTwo(t *testing.T) {
	full, _ := resolveProfiles("full")
	if got := firstTwo(full); len(got) != 2 {
		t.Fatalf("firstTwo returned %d", len(got))
	}
	one, _ := resolveProfiles("gist")
	if got := firstTwo(one); len(got) != 1 {
		t.Fatalf("firstTwo on single profile returned %d", len(got))
	}
}
