// Command dblsh-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	dblsh-bench [flags] <experiment> [experiment...]
//
// Experiments: fig4, table1, table4, fig5 (alias fig6, fig7), fig8,
// fig9 (alias fig10), all.
//
// Flags select the dataset profile set and the workload size; the defaults
// match the paper's settings at the scaled-down cardinalities documented in
// DESIGN.md. Example:
//
//	dblsh-bench -profiles small table4
//	dblsh-bench -k 50 fig8
//	dblsh-bench all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dblsh/internal/dataset"
	"dblsh/internal/harness"
)

func main() {
	var (
		profileSet = flag.String("profiles", "small", `profile set: "small" (fast), "full" (all ten Table III analogues), or a comma-separated list of profile names`)
		k          = flag.Int("k", 50, "number of neighbors per query (the paper's default is 50)")
		kl         = flag.String("kl", "10x5", "K and L as KxL (the paper uses 10-12 x 5)")
		t          = flag.Int("t", 100, "candidate constant t (budget 2tL+k)")
		c          = flag.Float64("c", 1.5, "approximation ratio")
		seed       = flag.Int64("seed", 42, "hash and data seed")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: dblsh-bench [flags] <fig4|table1|table4|fig5|fig8|fig9|equalrecall|all>")
		flag.PrintDefaults()
		os.Exit(2)
	}

	params := harness.Params{C: *c, W0: 4 * *c * *c, T: *t, Seed: *seed}
	if _, err := fmt.Sscanf(*kl, "%dx%d", &params.K, &params.L); err != nil {
		fmt.Fprintf(os.Stderr, "dblsh-bench: bad -kl %q: %v\n", *kl, err)
		os.Exit(2)
	}

	profiles, err := resolveProfiles(*profileSet)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dblsh-bench: %v\n", err)
		os.Exit(2)
	}

	for _, exp := range flag.Args() {
		start := time.Now()
		switch strings.ToLower(exp) {
		case "fig4":
			harness.Fig4(os.Stdout)
		case "table1":
			harness.Table1(os.Stdout, profiles[0], []float64{0.2, 0.4, 0.6, 0.8, 1.0}, params, *k)
		case "table4":
			harness.Table4(os.Stdout, profiles, params, *k)
		case "fig5", "fig6", "fig7":
			fractions := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
			for _, p := range firstTwo(profiles) {
				series := harness.VaryN(os.Stdout, p, fractions, params, *k)
				if err := harness.PlotVaryN(os.Stdout, "query time vs n — "+p.Name, fractions, series); err != nil {
					fmt.Fprintf(os.Stderr, "dblsh-bench: plot: %v\n", err)
				}
			}
		case "fig8":
			for _, p := range firstTwo(profiles) {
				harness.VaryK(os.Stdout, p, []int{1, 10, 20, 40, 60, 80, 100}, params)
			}
		case "fig9", "fig10":
			for _, p := range firstTwo(profiles) {
				series := harness.Tradeoff(os.Stdout, p, []float64{1.2, 1.5, 2.0, 2.5, 3.0}, params, *k)
				if err := harness.PlotTradeoff(os.Stdout, "recall vs time — "+p.Name, series); err != nil {
					fmt.Fprintf(os.Stderr, "dblsh-bench: plot: %v\n", err)
				}
			}
		case "equalrecall":
			for _, p := range firstTwo(profiles) {
				harness.EqualAccuracy(os.Stdout, p, params, *k, 0.9)
			}
		case "all":
			harness.Fig4(os.Stdout)
			harness.Table4(os.Stdout, profiles, params, *k)
			for _, p := range firstTwo(profiles) {
				harness.VaryN(os.Stdout, p, []float64{0.2, 0.4, 0.6, 0.8, 1.0}, params, *k)
				harness.VaryK(os.Stdout, p, []int{1, 10, 20, 40, 60, 80, 100}, params)
				harness.Tradeoff(os.Stdout, p, []float64{1.2, 1.5, 2.0, 2.5, 3.0}, params, *k)
			}
			harness.Table1(os.Stdout, profiles[0], []float64{0.2, 0.4, 0.6, 0.8, 1.0}, params, *k)
		default:
			fmt.Fprintf(os.Stderr, "dblsh-bench: unknown experiment %q\n", exp)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stdout, "\n[%s completed in %v]\n\n", exp, time.Since(start).Round(time.Millisecond))
	}
}

func resolveProfiles(set string) ([]dataset.Profile, error) {
	switch set {
	case "small":
		return dataset.Small(), nil
	case "full":
		return dataset.All(), nil
	}
	byName := make(map[string]dataset.Profile)
	for _, p := range dataset.All() {
		byName[strings.ToLower(p.Name)] = p
	}
	var out []dataset.Profile
	for _, name := range strings.Split(set, ",") {
		p, ok := byName[strings.ToLower(strings.TrimSpace(name))]
		if !ok {
			return nil, fmt.Errorf("unknown profile %q", name)
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no profiles in %q", set)
	}
	return out, nil
}

func firstTwo(ps []dataset.Profile) []dataset.Profile {
	if len(ps) > 2 {
		return ps[:2]
	}
	return ps
}
