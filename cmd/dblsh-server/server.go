package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"dblsh"
)

// server wraps an index with the locking the HTTP surface needs: searches
// run concurrently under RLock; Add (which mutates the trees) takes the
// write lock.
type server struct {
	mu  sync.RWMutex
	idx *dblsh.Index

	searchers sync.Pool
}

func newServer(idx *dblsh.Index) *server {
	s := &server{idx: idx}
	s.searchers.New = func() interface{} { return idx.NewSearcher() }
	return s
}

// handler returns the HTTP routing table:
//
//	GET  /healthz         liveness probe
//	GET  /stats           index shape and parameters
//	POST /search          {"vector": [...], "k": 10}
//	POST /search_radius   {"vector": [...], "radius": 1.5}
//	POST /vectors         {"vector": [...]} — appends, returns its id
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/search", s.handleSearch)
	mux.HandleFunc("/search_radius", s.handleSearchRadius)
	mux.HandleFunc("/vectors", s.handleAdd)
	return mux
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

type statsResponse struct {
	Vectors        int     `json:"vectors"`
	Dim            int     `json:"dim"`
	K              int     `json:"k"`
	L              int     `json:"l"`
	T              int     `json:"t"`
	C              float64 `json:"c"`
	W0             float64 `json:"w0"`
	IndexSizeBytes int64   `json:"index_size_bytes"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	s.mu.RLock()
	p := s.idx.Params()
	resp := statsResponse{
		Vectors:        s.idx.Len(),
		Dim:            s.idx.Dim(),
		K:              p.K,
		L:              p.L,
		T:              p.T,
		C:              p.C,
		W0:             p.W0,
		IndexSizeBytes: s.idx.IndexSizeBytes(),
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, resp)
}

type searchRequest struct {
	Vector []float32 `json:"vector"`
	K      int       `json:"k"`
	Radius float64   `json:"radius"`
}

type searchHit struct {
	ID   int     `json:"id"`
	Dist float64 `json:"dist"`
}

type searchResponse struct {
	Results []searchHit `json:"results"`
}

func (s *server) decodeVector(w http.ResponseWriter, r *http.Request) (searchRequest, bool) {
	var req searchRequest
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return req, false
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return req, false
	}
	if len(req.Vector) != s.idx.Dim() {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("vector has dim %d, index expects %d", len(req.Vector), s.idx.Dim()))
		return req, false
	}
	return req, true
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeVector(w, r)
	if !ok {
		return
	}
	if req.K <= 0 {
		req.K = 10
	}
	if req.K > 10_000 {
		httpError(w, http.StatusBadRequest, "k too large (max 10000)")
		return
	}
	s.mu.RLock()
	searcher := s.searchers.Get().(*dblsh.Searcher)
	hits := searcher.Search(req.Vector, req.K)
	s.searchers.Put(searcher)
	s.mu.RUnlock()

	resp := searchResponse{Results: make([]searchHit, len(hits))}
	for i, h := range hits {
		resp.Results[i] = searchHit{ID: h.ID, Dist: h.Dist}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleSearchRadius(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeVector(w, r)
	if !ok {
		return
	}
	if req.Radius <= 0 {
		httpError(w, http.StatusBadRequest, "radius must be positive")
		return
	}
	s.mu.RLock()
	searcher := s.searchers.Get().(*dblsh.Searcher)
	hit, found := searcher.SearchRadius(req.Vector, req.Radius)
	s.searchers.Put(searcher)
	s.mu.RUnlock()

	resp := searchResponse{}
	if found {
		resp.Results = []searchHit{{ID: hit.ID, Dist: hit.Dist}}
	} else {
		resp.Results = []searchHit{}
	}
	writeJSON(w, http.StatusOK, resp)
}

type addResponse struct {
	ID int `json:"id"`
}

func (s *server) handleAdd(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeVector(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	id, err := s.idx.Add(req.Vector)
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, addResponse{ID: id})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Too late to change the status; nothing more to do.
		return
	}
}

type errorResponse struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}
