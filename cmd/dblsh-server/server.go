package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"dblsh"
	"dblsh/internal/obs"
	"dblsh/internal/vec"
	"dblsh/internal/vec/cpu"
)

// server routes HTTP requests straight into the index with no lock of its
// own: dblsh.Index is internally sharded and synchronized, so /search,
// /search_batch, /vectors, /delete and /compact all run concurrently — a
// mutation write-locks one shard while the others keep answering, instead
// of the whole-index RWMutex this server used to take.
//
// Every request passes through the wrap middleware (middleware.go): the
// expensive endpoints sit behind the admission limiter, every endpoint
// reports into the metrics registry exposed at /metrics, and requests over
// the slow-query threshold are logged with their work counters.
type server struct {
	idx *dblsh.Index
	cfg serverConfig
	reg *obs.Registry
	m   *httpMetrics
	lim *limiter

	searchers sync.Pool
}

func newServer(idx *dblsh.Index, cfg serverConfig) *server {
	s := &server{idx: idx, cfg: cfg, reg: obs.NewRegistry()}
	s.searchers.New = func() interface{} { return idx.NewSearcher() }
	idx.Instrument(s.reg)
	s.m = newHTTPMetrics(s.reg)
	s.lim = newLimiter(cfg.maxInflight, cfg.maxQueue)
	if s.lim != nil {
		s.reg.GaugeFunc("dblsh_admission_inflight",
			"Admission slots currently held by executing requests.",
			func() float64 { return float64(s.lim.inflight()) })
		s.reg.GaugeFunc("dblsh_admission_queue_depth",
			"Requests waiting for an admission slot.",
			func() float64 { return float64(s.lim.queued()) })
	}
	return s
}

// handler returns the HTTP routing table:
//
//	GET  /healthz         liveness probe
//	GET  /stats           index shape, parameters, and per-shard state
//	POST /search          {"vector": [...], "k": 10, "t": 25, "early_stop": 1.5, "max_radius": 8.0, "filter_ids": [...]}
//	POST /search_batch    {"vectors": [[...], ...], "k": 10, ...same per-request knobs}
//	POST /search_radius   {"vector": [...], "radius": 1.5, "t": 25, "filter_ids": [...]}
//	POST /vectors         {"vector": [...]} — appends, returns its id
//	POST /delete          {"id": 7} — tombstones a vector
//	POST /compact         {"shard": 2} — rebuild one shard (omit for all), dropping tombstones
//	POST /checkpoint      — rewrite the durable snapshot and truncate the op log (requires -data-dir)
//
// The per-request knobs t, early_stop, max_radius, filter_ids and
// parallelism are all optional and default to the index's (or server's)
// configuration; filter_ids, when present, is an allowlist — only those ids
// may be returned, and parallelism bounds how many shards the query visits
// concurrently per ladder round (0 forces auto; results are identical at
// every setting). Search responses echo the work statistics of the query.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	// Probe and scrape endpoints skip admission so they keep answering
	// while the serving endpoints shed load.
	mux.HandleFunc("/healthz", s.wrap("/healthz", false, s.handleHealthz))
	mux.HandleFunc("/stats", s.wrap("/stats", false, s.handleStats))
	mux.HandleFunc("/metrics", s.wrap("/metrics", false, s.handleMetrics))
	mux.HandleFunc("/search", s.wrap("/search", true, s.handleSearch))
	mux.HandleFunc("/search_batch", s.wrap("/search_batch", true, s.handleSearchBatch))
	mux.HandleFunc("/search_radius", s.wrap("/search_radius", true, s.handleSearchRadius))
	mux.HandleFunc("/vectors", s.wrap("/vectors", true, s.handleAdd))
	mux.HandleFunc("/delete", s.wrap("/delete", true, s.handleDelete))
	mux.HandleFunc("/compact", s.wrap("/compact", true, s.handleCompact))
	mux.HandleFunc("/checkpoint", s.wrap("/checkpoint", true, s.handleCheckpoint))
	return mux
}

// allowMethod enforces an endpoint's single allowed method. A mismatch
// answers 405 with the Allow header set, as RFC 9110 requires, and the
// same JSON error shape as every other API error.
func allowMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method == method {
		return true
	}
	w.Header().Set("Allow", method)
	httpError(w, http.StatusMethodNotAllowed, "use "+method)
	return false
}

// handleMetrics serves the Prometheus text exposition of every registered
// metric: serving-layer request/latency/in-flight series, per-query work
// histograms, and the library's WAL/checkpoint/compaction families.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodGet) {
		return
	}
	s.reg.ServeHTTP(w, r)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodGet) {
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

type shardStatsJSON struct {
	Shard          int    `json:"shard"`
	Size           int    `json:"size"`
	Live           int    `json:"live"`
	Deleted        int    `json:"deleted"`
	Compactions    int    `json:"compactions"`
	LastCompaction string `json:"last_compaction,omitempty"` // RFC 3339; absent if never
	IndexSizeBytes int64  `json:"index_size_bytes"`
}

// durabilityJSON reports a durable server's recovery state; absent from
// /stats when the server runs without -data-dir.
type durabilityJSON struct {
	LogBytes           int64  `json:"log_bytes"`
	OpsSinceCheckpoint int64  `json:"ops_since_checkpoint"`
	Checkpoints        int64  `json:"checkpoints"`
	LastCheckpoint     string `json:"last_checkpoint,omitempty"` // RFC 3339; absent if never
}

type statsResponse struct {
	Vectors        int              `json:"vectors"`
	Deleted        int              `json:"deleted"`
	Dim            int              `json:"dim"`
	Metric         string           `json:"metric"`
	NormBound      float64          `json:"norm_bound,omitempty"` // inner-product reduction only
	K              int              `json:"k"`
	L              int              `json:"l"`
	T              int              `json:"t"`
	C              float64          `json:"c"`
	W0             float64          `json:"w0"`
	Quantize       string           `json:"quantize"`
	Parallelism    int              `json:"parallelism"`   // effective per-query shard fan-out
	Kernel         string           `json:"kernel"`        // active distance kernel
	KernelSource   string           `json:"kernel_source"` // auto | env | forced
	KernelNames    []string         `json:"kernel_names"`  // kernels this build/CPU registered
	CPUFeatures    []string         `json:"cpu_features,omitempty"`
	IndexSizeBytes int64            `json:"index_size_bytes"`
	ShardCount     int              `json:"shard_count"`
	Shards         []shardStatsJSON `json:"shards"`
	Durability     *durabilityJSON  `json:"durability,omitempty"`
}

func durabilityStats(idx *dblsh.Index) *durabilityJSON {
	st, ok := idx.Durability()
	if !ok {
		return nil
	}
	js := &durabilityJSON{
		LogBytes:           st.LogBytes,
		OpsSinceCheckpoint: st.OpsSinceCheckpoint,
		Checkpoints:        st.Checkpoints,
	}
	if !st.LastCheckpoint.IsZero() {
		js.LastCheckpoint = st.LastCheckpoint.Format(time.RFC3339)
	}
	return js
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodGet) {
		return
	}
	p := s.idx.Params()
	resp := statsResponse{
		Dim:          s.idx.Dim(),
		Metric:       s.idx.Metric().String(),
		NormBound:    p.NormBound,
		K:            p.K,
		L:            p.L,
		T:            p.T,
		C:            p.C,
		W0:           p.W0,
		Quantize:     p.Quantize,
		Parallelism:  s.idx.Parallelism(),
		Kernel:       vec.KernelName(),
		KernelSource: vec.KernelSource(),
		KernelNames:  vec.KernelNames(),
		CPUFeatures:  cpu.Detect().List(),
		ShardCount:   s.idx.Shards(),
		Durability:   durabilityStats(s.idx),
	}
	// Derive the totals from the same per-shard snapshot the response
	// shows, so vectors/deleted always agree with the shard breakdown even
	// while mutations are in flight.
	for _, st := range s.idx.ShardStats() {
		js := shardStatsJSON{
			Shard:          st.Shard,
			Size:           st.Size,
			Live:           st.Live,
			Deleted:        st.Deleted,
			Compactions:    st.Compactions,
			IndexSizeBytes: st.IndexSizeBytes,
		}
		if !st.LastCompaction.IsZero() {
			js.LastCompaction = st.LastCompaction.Format(time.RFC3339)
		}
		resp.Shards = append(resp.Shards, js)
		resp.Vectors += st.Size
		resp.Deleted += st.Deleted
		resp.IndexSizeBytes += st.IndexSizeBytes
	}
	writeJSON(w, http.StatusOK, resp)
}

// queryOptions are the per-request knobs shared by every search endpoint,
// mirroring the library's SearchOption set.
type queryOptions struct {
	T         int     `json:"t"`
	EarlyStop float64 `json:"early_stop"`
	MaxRadius float64 `json:"max_radius"`
	FilterIDs []int   `json:"filter_ids"`
	// Parallelism is a pointer so an explicit 0 ("auto, regardless of the
	// server's -parallelism") is distinguishable from the field being
	// absent (use the server's setting).
	Parallelism *int `json:"parallelism"`
}

// searchOptions converts the request knobs into library options. The
// request context rides along so client disconnects and deadlines cancel
// the radius ladder. Zero values mean "unset"; out-of-range values are
// passed through so the library's own validation produces the error, which
// searchError maps to a 400 — one set of rules, no drift. The exception is
// a negative t, which zero-means-unset gating would otherwise silently
// swallow.
func (o queryOptions) searchOptions(ctx context.Context) ([]dblsh.SearchOption, error) {
	opts := []dblsh.SearchOption{dblsh.WithContext(ctx)}
	if o.T < 0 {
		return nil, errors.New("t must be non-negative")
	}
	if o.T > 0 {
		opts = append(opts, dblsh.WithCandidateBudget(o.T))
	}
	if o.EarlyStop != 0 {
		opts = append(opts, dblsh.WithEarlyStop(o.EarlyStop))
	}
	if o.MaxRadius != 0 {
		opts = append(opts, dblsh.WithMaxRadius(o.MaxRadius))
	}
	if len(o.FilterIDs) > 0 {
		allow := make(map[int]bool, len(o.FilterIDs))
		for _, id := range o.FilterIDs {
			allow[id] = true
		}
		opts = append(opts, dblsh.WithFilter(func(id int) bool { return allow[id] }))
	}
	if o.Parallelism != nil {
		opts = append(opts, dblsh.WithParallelism(*o.Parallelism))
	}
	return opts, nil
}

type searchRequest struct {
	Vector []float32 `json:"vector"`
	K      int       `json:"k"`
	Radius float64   `json:"radius"`
	queryOptions
}

type searchHit struct {
	ID   int     `json:"id"`
	Dist float64 `json:"dist"`
}

type queryStats struct {
	Candidates   int     `json:"candidates"`
	Rounds       int     `json:"rounds"`
	FinalRadius  float64 `json:"final_radius"`
	NodesVisited int     `json:"nodes_visited"`
	FrontierSize int     `json:"frontier_size"`
	QuantPruned  int     `json:"quant_pruned"`
	QuantSwept   int     `json:"quant_swept"`
	// Fan-out activity: rounds that ran shards concurrently and the summed
	// wall time of each such round's slowest shard. Absent when the query
	// ran the sequential path.
	ParallelRounds int   `json:"parallel_rounds,omitempty"`
	StragglerNs    int64 `json:"straggler_ns,omitempty"`
}

type searchResponse struct {
	Results []searchHit `json:"results"`
	Stats   *queryStats `json:"stats,omitempty"`
}

func toHits(results []dblsh.Result) []searchHit {
	hits := make([]searchHit, len(results))
	for i, h := range results {
		hits[i] = searchHit{ID: h.ID, Dist: h.Dist}
	}
	return hits
}

func toStats(st dblsh.Stats) *queryStats {
	return &queryStats{
		Candidates:     st.Candidates,
		Rounds:         st.Rounds,
		FinalRadius:    st.FinalRadius,
		NodesVisited:   st.NodesVisited,
		FrontierSize:   st.FrontierSize,
		QuantPruned:    st.QuantPruned,
		QuantSwept:     st.QuantSwept,
		ParallelRounds: st.ParallelRounds,
		StragglerNs:    st.StragglerNanos,
	}
}

func (s *server) decodeVector(w http.ResponseWriter, r *http.Request) (searchRequest, bool) {
	var req searchRequest
	if !allowMethod(w, r, http.MethodPost) {
		return req, false
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return req, false
	}
	if dim := s.idx.Dim(); len(req.Vector) != dim {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("vector has dim %d, index expects %d", len(req.Vector), dim))
		return req, false
	}
	return req, true
}

// searchError maps a SearchOpts error to an HTTP status: context expiry
// (client gone or deadline hit) versus invalid options.
func searchError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		httpError(w, http.StatusRequestTimeout, err.Error())
		return
	}
	httpError(w, http.StatusBadRequest, err.Error())
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeVector(w, r)
	if !ok {
		return
	}
	if req.K <= 0 {
		req.K = 10
	}
	if req.K > 10_000 {
		httpError(w, http.StatusBadRequest, "k too large (max 10000)")
		return
	}
	opts, err := req.searchOptions(r.Context())
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	var st dblsh.Stats
	opts = append(opts, dblsh.WithStats(&st))

	searcher := s.searchers.Get().(*dblsh.Searcher)
	hits, err := searcher.SearchOpts(req.Vector, req.K, opts...)
	s.searchers.Put(searcher)
	if err != nil {
		searchError(w, err)
		return
	}
	s.noteQuery(w, req.K, st)
	writeJSON(w, http.StatusOK, searchResponse{Results: toHits(hits), Stats: toStats(st)})
}

type batchRequest struct {
	Vectors [][]float32 `json:"vectors"`
	K       int         `json:"k"`
	queryOptions
}

type batchResponse struct {
	Results [][]searchHit `json:"results"`
	Stats   []queryStats  `json:"stats"`
}

func (s *server) handleSearchBatch(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodPost) {
		return
	}
	var req batchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 256<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if len(req.Vectors) == 0 {
		httpError(w, http.StatusBadRequest, "vectors must be non-empty")
		return
	}
	if len(req.Vectors) > 10_000 {
		httpError(w, http.StatusBadRequest, "too many vectors (max 10000)")
		return
	}
	dim := s.idx.Dim()
	for i, v := range req.Vectors {
		if len(v) != dim {
			httpError(w, http.StatusBadRequest,
				fmt.Sprintf("vector %d has dim %d, index expects %d", i, len(v), dim))
			return
		}
	}
	if req.K <= 0 {
		req.K = 10
	}
	if req.K > 10_000 {
		httpError(w, http.StatusBadRequest, "k too large (max 10000)")
		return
	}
	opts, err := req.searchOptions(r.Context())
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	var per []dblsh.Stats
	opts = append(opts, dblsh.WithBatchStats(&per))

	// No server-side lock: the index is internally sharded, so a batch no
	// longer delays writers — shard locks are held per ladder round, and
	// mutations interleave between rounds and queries.
	results, err := s.idx.SearchBatchOpts(req.Vectors, req.K, opts...)
	if err != nil {
		searchError(w, err)
		return
	}
	resp := batchResponse{
		Results: make([][]searchHit, len(results)),
		Stats:   make([]queryStats, len(per)),
	}
	for i, hits := range results {
		resp.Results[i] = toHits(hits)
	}
	for i, st := range per {
		resp.Stats[i] = *toStats(st)
		s.noteQuery(w, req.K, st)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleSearchRadius(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeVector(w, r)
	if !ok {
		return
	}
	if req.Radius <= 0 {
		httpError(w, http.StatusBadRequest, "radius must be positive")
		return
	}
	// A fixed-radius query runs a single sequential round: the
	// ladder-shaping knobs and the per-round fan-out have nothing to act
	// on, so reject them rather than silently ignore.
	if req.EarlyStop != 0 || req.MaxRadius != 0 || req.Parallelism != nil {
		httpError(w, http.StatusBadRequest, "early_stop, max_radius and parallelism do not apply to fixed-radius queries")
		return
	}
	opts, err := req.searchOptions(r.Context())
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	var st dblsh.Stats
	opts = append(opts, dblsh.WithStats(&st))

	searcher := s.searchers.Get().(*dblsh.Searcher)
	hit, found, err := searcher.SearchRadiusOpts(req.Vector, req.Radius, opts...)
	s.searchers.Put(searcher)
	if err != nil {
		searchError(w, err)
		return
	}
	s.noteQuery(w, 1, st)
	resp := searchResponse{Results: []searchHit{}, Stats: toStats(st)}
	if found {
		resp.Results = []searchHit{{ID: hit.ID, Dist: hit.Dist}}
	}
	writeJSON(w, http.StatusOK, resp)
}

type addResponse struct {
	ID int `json:"id"`
}

func (s *server) handleAdd(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeVector(w, r)
	if !ok {
		return
	}
	id, err := s.idx.Add(req.Vector)
	if err != nil {
		// Only a rejected vector is the client's fault. A durable-write
		// failure is a server-side fault (nothing was applied — retrying is
		// safe), and a closed index means the server is shutting down.
		switch {
		case errors.Is(err, dblsh.ErrClosed):
			httpError(w, http.StatusServiceUnavailable, err.Error())
		case errors.Is(err, dblsh.ErrDurability):
			httpError(w, http.StatusInternalServerError, err.Error())
		default:
			httpError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	writeJSON(w, http.StatusOK, addResponse{ID: id})
}

type deleteRequest struct {
	// ID is a pointer so a request that omits the field is distinguishable
	// from a legitimate {"id": 0}.
	ID *int `json:"id"`
}

type deleteResponse struct {
	Deleted bool `json:"deleted"`
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodPost) {
		return
	}
	var req deleteRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.ID == nil {
		httpError(w, http.StatusBadRequest, "missing id")
		return
	}
	// Deleting an unknown or already-deleted id is not an error — the
	// response reports whether this request removed it — but a durable-log
	// failure must not masquerade as "not found": the vector is still live
	// and the fault is the server's.
	deleted, err := s.idx.DeleteWithError(*req.ID)
	if err != nil {
		if errors.Is(err, dblsh.ErrClosed) {
			httpError(w, http.StatusServiceUnavailable, err.Error())
		} else {
			httpError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	writeJSON(w, http.StatusOK, deleteResponse{Deleted: deleted})
}

type compactRequest struct {
	// Shard selects one shard to compact; omit (or null) to compact all.
	Shard *int `json:"shard"`
}

type compactResponse struct {
	Removed int `json:"removed"`
}

func (s *server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodPost) {
		return
	}
	var req compactRequest
	// An empty body means "compact everything".
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.Shard == nil {
		writeJSON(w, http.StatusOK, compactResponse{Removed: s.idx.Compact()})
		return
	}
	removed, err := s.idx.CompactShard(*req.Shard)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, compactResponse{Removed: removed})
}

// handleCheckpoint rewrites the durable snapshot and truncates the op log
// on demand — before a planned restart, after a bulk load, or from a cron
// job when -checkpoint-every is disabled. The index keeps serving
// throughout (the snapshot streams shard by shard under per-shard read
// locks). The response reports the post-checkpoint durability state.
func (s *server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodPost) {
		return
	}
	if _, durable := s.idx.Durability(); !durable {
		httpError(w, http.StatusBadRequest, "server is not durable (start it with -data-dir)")
		return
	}
	if err := s.idx.Checkpoint(); err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, durabilityStats(s.idx))
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Too late to change the status; nothing more to do.
		return
	}
}

type errorResponse struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}
