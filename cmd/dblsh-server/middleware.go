package main

import (
	"context"
	"errors"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"dblsh"
	"dblsh/internal/obs"
)

// serverConfig carries the server's operational knobs: admission control,
// the default per-request deadline, and the slow-query log. The zero value
// is a fully open server — no limits, no deadline, no slow log — which is
// what the tests that aren't about operations use.
type serverConfig struct {
	// maxInflight caps concurrently executing requests on the expensive
	// endpoints (searches and mutations); 0 means unlimited. maxQueue is
	// the wait-queue budget beyond those slots: a request that finds every
	// slot busy waits if fewer than maxQueue others already are, and is
	// shed with 429 + Retry-After otherwise.
	maxInflight int
	maxQueue    int
	// defaultDeadline is applied to requests that arrive without one; the
	// existing WithContext polling turns it into cancellation inside the
	// radius ladder. 0 means none.
	defaultDeadline time.Duration
	// slowLog receives requests slower than its threshold; nil disables.
	slowLog *obs.SlowLog
}

// httpMetrics is the serving-layer metric set, registered once per server.
type httpMetrics struct {
	requests *obs.CounterVec   // by endpoint, status
	latency  *obs.HistogramVec // by endpoint
	inflight *obs.GaugeVec     // by endpoint
	shed     *obs.Counter

	queryK          *obs.Histogram
	queryCandidates *obs.Histogram
	queryNodes      *obs.Histogram
	queryFrontier   *obs.Histogram
}

func newHTTPMetrics(reg *obs.Registry) *httpMetrics {
	return &httpMetrics{
		requests: reg.CounterVec("dblsh_http_requests_total",
			"HTTP requests served, by endpoint and status code.",
			"endpoint", "status"),
		latency: reg.HistogramVec("dblsh_http_request_seconds",
			"Request latency (including admission queue wait), by endpoint.",
			obs.LatencyBuckets(), "endpoint"),
		inflight: reg.GaugeVec("dblsh_http_inflight_requests",
			"Requests currently inside the server (queued or executing), by endpoint.",
			"endpoint"),
		shed: reg.Counter("dblsh_http_shed_total",
			"Requests refused with 429 because the admission queue was at budget."),
		queryK: reg.Histogram("dblsh_query_k",
			"Requested k per search.", obs.CountBuckets()),
		queryCandidates: reg.Histogram("dblsh_query_candidates",
			"Exact distance computations per search.", obs.CountBuckets()),
		queryNodes: reg.Histogram("dblsh_query_nodes_visited",
			"R*-tree nodes examined per search, across trees, shards and rounds.",
			obs.CountBuckets()),
		queryFrontier: reg.Histogram("dblsh_query_frontier_size",
			"Items left parked in the traversal cursors when a search finished.",
			obs.CountBuckets()),
	}
}

// responseState observes what a handler did to the response — the status
// code for metrics, plus any slog attributes the handler attached for the
// slow-query log.
type responseState struct {
	http.ResponseWriter
	status int
	wrote  bool
	attrs  []slog.Attr
}

func (r *responseState) WriteHeader(code int) {
	if !r.wrote {
		r.status = code
		r.wrote = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *responseState) Write(b []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(b)
}

// noteAttrs attaches structured detail (query shape, work counters) to the
// request's slow-log record, if this request is being observed.
func noteAttrs(w http.ResponseWriter, attrs ...slog.Attr) {
	if rs, ok := w.(*responseState); ok {
		rs.attrs = append(rs.attrs, attrs...)
	}
}

// noteQuery records one executed search into the per-query work histograms
// and attaches its shape to the slow log.
func (s *server) noteQuery(w http.ResponseWriter, k int, st dblsh.Stats) {
	s.m.queryK.Observe(float64(k))
	s.m.queryCandidates.Observe(float64(st.Candidates))
	s.m.queryNodes.Observe(float64(st.NodesVisited))
	s.m.queryFrontier.Observe(float64(st.FrontierSize))
	noteAttrs(w,
		slog.Int("k", k),
		slog.Int("candidates", st.Candidates),
		slog.Int("rounds", st.Rounds),
		slog.Int("nodes_visited", st.NodesVisited))
}

// wrap is the per-endpoint middleware: in-flight accounting, the default
// deadline, admission control (when admit is set), then request count,
// latency and slow-log observation of whatever the handler produced.
// Probe/scrape endpoints pass admit=false so liveness checks and metric
// scrapes keep answering while the serving endpoints shed load.
func (s *server) wrap(endpoint string, admit bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		infl := s.m.inflight.With(endpoint)
		infl.Inc()
		defer infl.Dec()
		rec := &responseState{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			elapsed := time.Since(start)
			s.m.requests.With(endpoint, strconv.Itoa(rec.status)).Inc()
			s.m.latency.With(endpoint).Observe(elapsed.Seconds())
			s.cfg.slowLog.Observe(endpoint, rec.status, elapsed, rec.attrs...)
		}()

		// The deadline starts before admission so time spent queued counts
		// against it: a request cannot wait its way past its budget.
		if d := s.cfg.defaultDeadline; d > 0 {
			if _, has := r.Context().Deadline(); !has {
				ctx, cancel := context.WithTimeout(r.Context(), d)
				defer cancel()
				r = r.WithContext(ctx)
			}
		}

		if admit {
			switch err := s.lim.acquire(r.Context()); {
			case errors.Is(err, errShed):
				s.m.shed.Inc()
				rec.Header().Set("Retry-After", "1")
				httpError(rec, http.StatusTooManyRequests, "server overloaded; retry later")
				return
			case err != nil:
				// Deadline or disconnect while queued.
				httpError(rec, http.StatusRequestTimeout, "expired while queued for admission: "+err.Error())
				return
			}
			defer s.lim.release()
		}
		h(rec, r)
	}
}
