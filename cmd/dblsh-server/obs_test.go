package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dblsh"
	"dblsh/internal/obs"
)

// scrape fetches /metrics and returns the exposition text.
func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q, want text exposition v0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestMetricsExposition is the scrape-format golden test: after real
// traffic on a durable server, /metrics must be valid exposition text (as
// checked by the obs scrape checker) and cover the acceptance families —
// query latency by endpoint, per-query work, in-flight, WAL fsync latency
// and checkpoint duration.
func TestMetricsExposition(t *testing.T) {
	dir := t.TempDir()
	idx, err := dblsh.Open(dir, dblsh.Options{Dim: 16, K: 6, L: 3, T: 20, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { idx.Close() })
	ts := httptest.NewServer(newServer(idx, serverConfig{maxInflight: 4, maxQueue: 4}).handler())
	t.Cleanup(ts.Close)

	vec := make([]float32, 16)
	for i := 0; i < 20; i++ {
		vec[0] = float32(i)
		resp := postJSON(t, ts.URL+"/vectors", map[string]interface{}{"vector": vec})
		resp.Body.Close()
	}
	resp := postJSON(t, ts.URL+"/search", map[string]interface{}{"vector": vec, "k": 5})
	resp.Body.Close()
	resp = postJSON(t, ts.URL+"/checkpoint", nil)
	resp.Body.Close()

	out := scrape(t, ts)
	if err := obs.CheckExposition(out); err != nil {
		t.Fatalf("scrape checker rejects /metrics: %v\n%s", err, out)
	}
	for _, want := range []string{
		`dblsh_http_requests_total{endpoint="/search",status="200"} 1`,
		`dblsh_http_requests_total{endpoint="/vectors",status="200"} 20`,
		`dblsh_http_request_seconds_bucket{endpoint="/search",le="+Inf"} 1`,
		`dblsh_http_inflight_requests{endpoint="/metrics"} 1`, // the scrape itself
		`dblsh_query_k_count 1`,
		`dblsh_query_nodes_visited_count 1`,
		`dblsh_query_frontier_size_count 1`,
		`dblsh_wal_appends_total 20`,
		`dblsh_checkpoint_seconds_count`,
		`dblsh_wal_fsync_seconds_bucket`,
		`dblsh_admission_inflight`,
		`dblsh_admission_queue_depth 0`,
		`dblsh_vectors_resident 20`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// SyncAlways fsyncs every append, and the on-demand checkpoint must
	// have been counted.
	if !strings.Contains(out, "dblsh_wal_fsyncs_total 2") && !strings.Contains(out, "dblsh_wal_fsyncs_total 20") {
		// At least the appends' fsyncs happened; exact count depends on
		// checkpoint rotation. Assert nonzero instead of a brittle value.
		if strings.Contains(out, "dblsh_wal_fsyncs_total 0\n") {
			t.Error("dblsh_wal_fsyncs_total is 0 after 20 SyncAlways appends")
		}
	}
}

// TestMethodNotAllowed is the regression test for 405 handling: GET-only
// and POST-only endpoints must set Allow and answer with the same JSON
// error shape as the rest of the API.
func TestMethodNotAllowed(t *testing.T) {
	ts, _ := testServer(t)
	cases := []struct {
		endpoint, method, allow string
	}{
		{"/healthz", http.MethodPost, http.MethodGet},
		{"/stats", http.MethodPost, http.MethodGet},
		{"/metrics", http.MethodPost, http.MethodGet},
		{"/search", http.MethodGet, http.MethodPost},
		{"/vectors", http.MethodGet, http.MethodPost},
		{"/delete", http.MethodGet, http.MethodPost},
		{"/compact", http.MethodGet, http.MethodPost},
		{"/checkpoint", http.MethodGet, http.MethodPost},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, ts.URL+c.endpoint, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status = %d, want 405", c.method, c.endpoint, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != c.allow {
			t.Errorf("%s %s: Allow = %q, want %q", c.method, c.endpoint, got, c.allow)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s %s: Content-Type = %q, want application/json", c.method, c.endpoint, ct)
		}
		var e struct {
			Error string `json:"error"`
		}
		decode(t, resp, &e)
		if e.Error == "" {
			t.Errorf("%s %s: empty JSON error body", c.method, c.endpoint)
		}
	}
}

func TestLimiter(t *testing.T) {
	l := newLimiter(2, 1)
	ctx := context.Background()
	if err := l.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := l.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	// Slots full, queue empty: a third caller with an expired context
	// queues, then fails with the context error.
	expired, cancel := context.WithCancel(ctx)
	cancel()
	if err := l.acquire(expired); err != context.Canceled {
		t.Fatalf("queued acquire with cancelled ctx = %v, want context.Canceled", err)
	}
	// Fill the queue with a real waiter, then the next caller is shed.
	got := make(chan error, 1)
	go func() {
		err := l.acquire(ctx)
		if err == nil {
			l.release()
		}
		got <- err
	}()
	// Wait for the goroutine to be parked in the queue.
	deadline := time.Now().Add(2 * time.Second)
	for l.queued() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if err := l.acquire(ctx); err != errShed {
		t.Fatalf("acquire with full queue = %v, want errShed", err)
	}
	l.release() // frees the queued waiter
	if err := <-got; err != nil {
		t.Fatalf("queued waiter = %v, want success", err)
	}
	l.release()

	if newLimiter(0, 5) != nil {
		t.Fatal("maxInflight 0 must mean unlimited (nil limiter)")
	}
	var unlimited *limiter
	if err := unlimited.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	unlimited.release()
}

// TestAdmissionControl holds the server's only execution slot and verifies
// that overflow is shed with 429 + Retry-After while probe endpoints keep
// answering, that an in-budget queued request completes once the slot
// frees, and that service resumes afterwards.
func TestAdmissionControl(t *testing.T) {
	idx := testIndex(t)
	srv := newServer(idx, serverConfig{maxInflight: 1, maxQueue: 1})
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)

	query := map[string]interface{}{"vector": make([]float32, 16), "k": 3}

	// Occupy the single slot directly through the limiter — deterministic,
	// unlike racing a fast search.
	if err := srv.lim.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	// One request fits the queue budget and will complete after release.
	queuedDone := make(chan int, 1)
	go func() {
		resp := postJSON(t, ts.URL+"/search", query)
		resp.Body.Close()
		queuedDone <- resp.StatusCode
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.lim.queued() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue is now at budget: further searches are shed immediately.
	for i := 0; i < 3; i++ {
		resp := postJSON(t, ts.URL+"/search", query)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("overload search status = %d, want 429", resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("429 without Retry-After")
		}
		var e struct {
			Error string `json:"error"`
		}
		decode(t, resp, &e)
		if e.Error == "" {
			t.Fatal("429 without JSON error body")
		}
	}

	// Probes and scrapes bypass admission.
	for _, p := range []string{"/healthz", "/stats", "/metrics"} {
		resp, err := http.Get(ts.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s under overload = %d, want 200", p, resp.StatusCode)
		}
	}

	// Release the held slot: the queued request completes, and new
	// requests are admitted again.
	srv.lim.release()
	if status := <-queuedDone; status != http.StatusOK {
		t.Fatalf("queued request completed with %d, want 200", status)
	}
	resp := postJSON(t, ts.URL+"/search", query)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-overload search = %d, want 200", resp.StatusCode)
	}

	out := scrape(t, ts)
	if !strings.Contains(out, "dblsh_http_shed_total 3") {
		t.Errorf("shed counter not 3:\n%s", grepLines(out, "shed"))
	}
	if !strings.Contains(out, `dblsh_http_requests_total{endpoint="/search",status="429"} 3`) {
		t.Errorf("429s not counted by endpoint/status:\n%s", grepLines(out, "requests_total"))
	}
}

func grepLines(text, substr string) string {
	var b strings.Builder
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, substr) {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// TestDefaultDeadline verifies -default-deadline reaches the query path:
// an impossible deadline expires inside (or before) the radius ladder and
// surfaces as the 408 that searchError maps deadline errors to.
func TestDefaultDeadline(t *testing.T) {
	idx := testIndex(t)
	ts := httptest.NewServer(newServer(idx, serverConfig{defaultDeadline: time.Nanosecond}).handler())
	t.Cleanup(ts.Close)

	resp := postJSON(t, ts.URL+"/search", map[string]interface{}{"vector": make([]float32, 16), "k": 3})
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("status = %d, want 408", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	decode(t, resp, &e)
	if !strings.Contains(e.Error, "deadline") {
		t.Fatalf("error = %q, want a deadline error", e.Error)
	}
	// Probe endpoints are unaffected: they never consult the context.
	r2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("/healthz with default deadline = %d", r2.StatusCode)
	}
}

// TestSlowQueryLog verifies the slow log emits one JSON line per
// above-threshold request, carrying the query's work counters.
func TestSlowQueryLog(t *testing.T) {
	idx := testIndex(t)
	var buf syncBuffer
	cfg := serverConfig{slowLog: obs.NewSlowLog(slog.NewJSONHandler(&buf, nil), time.Nanosecond)}
	ts := httptest.NewServer(newServer(idx, cfg).handler())
	t.Cleanup(ts.Close)

	resp := postJSON(t, ts.URL+"/search", map[string]interface{}{"vector": make([]float32, 16), "k": 3})
	resp.Body.Close()

	line := buf.String()
	var rec map[string]interface{}
	if err := json.Unmarshal([]byte(strings.SplitN(line, "\n", 2)[0]), &rec); err != nil {
		t.Fatalf("slow log line is not JSON: %v\n%s", err, line)
	}
	if rec["msg"] != "slow_query" || rec["endpoint"] != "/search" {
		t.Fatalf("unexpected slow log record: %s", line)
	}
	for _, key := range []string{"duration_ms", "status", "k", "candidates", "rounds", "nodes_visited"} {
		if _, ok := rec[key]; !ok {
			t.Errorf("slow log record missing %q: %s", key, line)
		}
	}
}

// syncBuffer is a bytes.Buffer safe for the handler goroutines slog may
// write from.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestGracefulDrainFlushes verifies the shutdown ordering an admission-
// controlled durable server relies on: mutations acknowledged before Close
// survive a reopen, and mutations after Close are refused with 503, not
// silently dropped.
func TestGracefulDrainFlushes(t *testing.T) {
	dir := t.TempDir()
	idx, err := dblsh.Open(dir, dblsh.Options{Dim: 8, K: 4, L: 2, T: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(idx, serverConfig{maxInflight: 2, maxQueue: 2}).handler())
	t.Cleanup(ts.Close)

	vec := make([]float32, 8)
	var lastID int
	for i := 0; i < 5; i++ {
		vec[0] = float32(i)
		resp := postJSON(t, ts.URL+"/vectors", map[string]interface{}{"vector": vec})
		var add addResponse
		decode(t, resp, &add)
		lastID = add.ID
	}

	// Drain: like main's shutdown path, Close after in-flight requests are
	// done. Everything acknowledged must now be on disk.
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, ts.URL+"/vectors", map[string]interface{}{"vector": vec})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("add after Close = %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	re, err := dblsh.Open(dir, dblsh.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 5 {
		t.Fatalf("reopened index holds %d vectors, want 5", re.Len())
	}
	found := false
	for _, r := range re.Search(vec, 5) {
		if r.ID == lastID {
			found = true
		}
	}
	if !found {
		t.Fatalf("last acknowledged vector (id %d) lost after reopen", lastID)
	}
}
