package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"dblsh"
)

func testIndex(t *testing.T) *dblsh.Index {
	t.Helper()
	rng := rand.New(rand.NewSource(4))
	data := make([][]float32, 1000)
	for i := range data {
		v := make([]float32, 16)
		for j := range v {
			v[j] = float32(rng.NormFloat64() * 5)
		}
		data[i] = v
	}
	idx, err := dblsh.New(data, dblsh.Options{K: 6, L: 3, T: 20, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func testServer(t *testing.T) (*httptest.Server, *dblsh.Index) {
	idx := testIndex(t)
	ts := httptest.NewServer(newServer(idx).handler())
	t.Cleanup(ts.Close)
	return ts, idx
}

func postJSON(t *testing.T, url string, body interface{}) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode(t *testing.T, resp *http.Response, v interface{}) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := testServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestStats(t *testing.T) {
	ts, idx := testServer(t)
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	decode(t, resp, &st)
	if st.Vectors != idx.Len() || st.Dim != 16 || st.L != 3 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSearch(t *testing.T) {
	ts, idx := testServer(t)
	q := make([]float32, idx.Dim())
	resp := postJSON(t, ts.URL+"/search", searchRequest{Vector: q, K: 7})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var sr searchResponse
	decode(t, resp, &sr)
	if len(sr.Results) != 7 {
		t.Fatalf("got %d results", len(sr.Results))
	}
	prev := -1.0
	for _, h := range sr.Results {
		if h.Dist < prev {
			t.Fatal("results not sorted")
		}
		prev = h.Dist
	}
}

func TestSearchDefaultK(t *testing.T) {
	ts, idx := testServer(t)
	resp := postJSON(t, ts.URL+"/search", searchRequest{Vector: make([]float32, idx.Dim())})
	var sr searchResponse
	decode(t, resp, &sr)
	if len(sr.Results) != 10 {
		t.Fatalf("default k gave %d results", len(sr.Results))
	}
}

func TestSearchValidation(t *testing.T) {
	ts, _ := testServer(t)
	// Wrong dimension.
	resp := postJSON(t, ts.URL+"/search", searchRequest{Vector: []float32{1, 2}, K: 3})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong-dim status %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Bad JSON.
	r2, err := http.Post(ts.URL+"/search", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-json status %d", r2.StatusCode)
	}
	r2.Body.Close()
	// Wrong method.
	r3, err := http.Get(ts.URL + "/search")
	if err != nil {
		t.Fatal(err)
	}
	if r3.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /search status %d", r3.StatusCode)
	}
	r3.Body.Close()
	// Oversized k.
	r4 := postJSON(t, ts.URL+"/search", searchRequest{Vector: make([]float32, 16), K: 1_000_000})
	if r4.StatusCode != http.StatusBadRequest {
		t.Fatalf("huge-k status %d", r4.StatusCode)
	}
	r4.Body.Close()
}

func TestSearchRadius(t *testing.T) {
	ts, idx := testServer(t)
	q := make([]float32, idx.Dim())
	// Huge radius: must find something.
	resp := postJSON(t, ts.URL+"/search_radius", searchRequest{Vector: q, Radius: 1e6})
	var sr searchResponse
	decode(t, resp, &sr)
	if len(sr.Results) != 1 {
		t.Fatalf("huge radius found %d results", len(sr.Results))
	}
	// Nonpositive radius rejected.
	r2 := postJSON(t, ts.URL+"/search_radius", searchRequest{Vector: q, Radius: 0})
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("zero radius status %d", r2.StatusCode)
	}
	r2.Body.Close()
}

func TestAddEndpoint(t *testing.T) {
	ts, idx := testServer(t)
	before := idx.Len()
	v := make([]float32, idx.Dim())
	for j := range v {
		v[j] = 999
	}
	resp := postJSON(t, ts.URL+"/vectors", searchRequest{Vector: v})
	var ar addResponse
	decode(t, resp, &ar)
	if ar.ID != before {
		t.Fatalf("added id %d, want %d", ar.ID, before)
	}
	// The added vector is immediately searchable.
	r2 := postJSON(t, ts.URL+"/search", searchRequest{Vector: v, K: 1})
	var sr searchResponse
	decode(t, r2, &sr)
	if len(sr.Results) != 1 || sr.Results[0].ID != ar.ID || sr.Results[0].Dist != 0 {
		t.Fatalf("added vector not found: %+v", sr.Results)
	}
}

func TestConcurrentSearchAndAdd(t *testing.T) {
	ts, idx := testServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if g%2 == 0 {
					resp := postJSONQuiet(ts.URL+"/search", searchRequest{Vector: make([]float32, idx.Dim()), K: 3})
					if resp != http.StatusOK {
						errs <- fmt.Errorf("search status %d", resp)
					}
				} else {
					v := make([]float32, idx.Dim())
					v[0] = float32(g*100 + i)
					resp := postJSONQuiet(ts.URL+"/vectors", searchRequest{Vector: v})
					if resp != http.StatusOK {
						errs <- fmt.Errorf("add status %d", resp)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func postJSONQuiet(url string, body interface{}) int {
	b, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return -1
	}
	resp.Body.Close()
	return resp.StatusCode
}

func TestLoadIndexFromFile(t *testing.T) {
	idx := testIndex(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "test.dblsh")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	loaded, err := loadIndex(path, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != idx.Len() || loaded.Dim() != idx.Dim() {
		t.Fatalf("loaded shape %d×%d", loaded.Len(), loaded.Dim())
	}
}

func TestLoadIndexDemo(t *testing.T) {
	idx, err := loadIndex("", 500, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 500 || idx.Dim() != 8 {
		t.Fatalf("demo shape %d×%d", idx.Len(), idx.Dim())
	}
}

func TestLoadIndexMissingFile(t *testing.T) {
	if _, err := loadIndex("/nonexistent/path.dblsh", 0, 0, 0); err == nil {
		t.Fatal("missing file must error")
	}
}
