package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"dblsh"
	"dblsh/internal/vec"
)

func testIndex(t *testing.T) *dblsh.Index {
	t.Helper()
	return testIndexSharded(t, 1)
}

func testIndexSharded(t *testing.T, shards int) *dblsh.Index {
	t.Helper()
	rng := rand.New(rand.NewSource(4))
	data := make([][]float32, 1000)
	for i := range data {
		v := make([]float32, 16)
		for j := range v {
			v[j] = float32(rng.NormFloat64() * 5)
		}
		data[i] = v
	}
	idx, err := dblsh.New(data, dblsh.Options{K: 6, L: 3, T: 20, Seed: 4, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func testServer(t *testing.T) (*httptest.Server, *dblsh.Index) {
	idx := testIndex(t)
	ts := httptest.NewServer(newServer(idx, serverConfig{}).handler())
	t.Cleanup(ts.Close)
	return ts, idx
}

func testServerSharded(t *testing.T, shards int) (*httptest.Server, *dblsh.Index) {
	idx := testIndexSharded(t, shards)
	ts := httptest.NewServer(newServer(idx, serverConfig{}).handler())
	t.Cleanup(ts.Close)
	return ts, idx
}

func postJSON(t *testing.T, url string, body interface{}) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode(t *testing.T, resp *http.Response, v interface{}) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := testServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestStats(t *testing.T) {
	ts, idx := testServer(t)
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	decode(t, resp, &st)
	if st.Vectors != idx.Len() || st.Dim != 16 || st.L != 3 {
		t.Fatalf("stats %+v", st)
	}
	if st.Metric != "euclidean" || st.NormBound != 0 {
		t.Fatalf("metric stats %+v", st)
	}
	// The kernel echo must report the live dispatch state: the active
	// kernel is one of the registered names and the provenance is one of
	// the three documented sources.
	if st.Kernel != vec.KernelName() {
		t.Fatalf("stats kernel %q, active kernel %q", st.Kernel, vec.KernelName())
	}
	found := false
	for _, n := range st.KernelNames {
		if n == st.Kernel {
			found = true
		}
	}
	if !found {
		t.Fatalf("active kernel %q not among registered %v", st.Kernel, st.KernelNames)
	}
	switch st.KernelSource {
	case "auto", "env", "forced":
	default:
		t.Fatalf("kernel_source %q", st.KernelSource)
	}
}

// TestMetricServer runs the search and stats paths over a cosine index and
// an inner-product index: /stats reports the metric, /search returns
// metric-space distances, and the radius knobs reject metrics they are
// undefined for.
func TestMetricServer(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	data := make([][]float32, 600)
	for i := range data {
		v := make([]float32, 12)
		for j := range v {
			v[j] = float32(rng.NormFloat64() + 0.5)
		}
		data[i] = v
	}

	t.Run("cosine", func(t *testing.T) {
		idx, err := dblsh.New(data, dblsh.Options{Seed: 9, Metric: dblsh.Cosine})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(newServer(idx, serverConfig{}).handler())
		t.Cleanup(ts.Close)

		var st statsResponse
		resp, err := http.Get(ts.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		decode(t, resp, &st)
		if st.Metric != "cosine" {
			t.Fatalf("stats metric %q, want cosine", st.Metric)
		}

		var sr searchResponse
		resp = postJSON(t, ts.URL+"/search", searchRequest{Vector: data[0], K: 3})
		decode(t, resp, &sr)
		if len(sr.Results) != 3 {
			t.Fatalf("got %d results", len(sr.Results))
		}
		// The query is an indexed vector: its own cosine distance is ~0.
		if sr.Results[0].Dist > 1e-5 {
			t.Fatalf("self-distance %v, want ~0", sr.Results[0].Dist)
		}
	})

	t.Run("ip", func(t *testing.T) {
		idx, err := dblsh.New(data, dblsh.Options{Seed: 9, Metric: dblsh.InnerProduct})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(newServer(idx, serverConfig{}).handler())
		t.Cleanup(ts.Close)

		var st statsResponse
		resp, err := http.Get(ts.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		decode(t, resp, &st)
		if st.Metric != "ip" || st.NormBound <= 0 {
			t.Fatalf("stats %+v, want ip metric with a positive norm bound", st)
		}

		// max_radius has no meaning under inner product: 400, not a hang.
		resp = postJSON(t, ts.URL+"/search", searchRequest{
			Vector: data[0], K: 3,
			queryOptions: queryOptions{MaxRadius: 1},
		})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("max_radius under ip: status %d, want 400", resp.StatusCode)
		}
		resp.Body.Close()

		resp = postJSON(t, ts.URL+"/search_radius", searchRequest{Vector: data[0], Radius: 1})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("search_radius under ip: status %d, want 400", resp.StatusCode)
		}
		resp.Body.Close()
	})
}

func TestSearch(t *testing.T) {
	ts, idx := testServer(t)
	q := make([]float32, idx.Dim())
	resp := postJSON(t, ts.URL+"/search", searchRequest{Vector: q, K: 7})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var sr searchResponse
	decode(t, resp, &sr)
	if len(sr.Results) != 7 {
		t.Fatalf("got %d results", len(sr.Results))
	}
	prev := -1.0
	for _, h := range sr.Results {
		if h.Dist < prev {
			t.Fatal("results not sorted")
		}
		prev = h.Dist
	}
}

func TestSearchDefaultK(t *testing.T) {
	ts, idx := testServer(t)
	resp := postJSON(t, ts.URL+"/search", searchRequest{Vector: make([]float32, idx.Dim())})
	var sr searchResponse
	decode(t, resp, &sr)
	if len(sr.Results) != 10 {
		t.Fatalf("default k gave %d results", len(sr.Results))
	}
}

func TestSearchValidation(t *testing.T) {
	ts, _ := testServer(t)
	// Wrong dimension.
	resp := postJSON(t, ts.URL+"/search", searchRequest{Vector: []float32{1, 2}, K: 3})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong-dim status %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Bad JSON.
	r2, err := http.Post(ts.URL+"/search", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-json status %d", r2.StatusCode)
	}
	r2.Body.Close()
	// Wrong method.
	r3, err := http.Get(ts.URL + "/search")
	if err != nil {
		t.Fatal(err)
	}
	if r3.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /search status %d", r3.StatusCode)
	}
	r3.Body.Close()
	// Oversized k.
	r4 := postJSON(t, ts.URL+"/search", searchRequest{Vector: make([]float32, 16), K: 1_000_000})
	if r4.StatusCode != http.StatusBadRequest {
		t.Fatalf("huge-k status %d", r4.StatusCode)
	}
	r4.Body.Close()
}

func TestSearchRadius(t *testing.T) {
	ts, idx := testServer(t)
	q := make([]float32, idx.Dim())
	// Huge radius: must find something.
	resp := postJSON(t, ts.URL+"/search_radius", searchRequest{Vector: q, Radius: 1e6})
	var sr searchResponse
	decode(t, resp, &sr)
	if len(sr.Results) != 1 {
		t.Fatalf("huge radius found %d results", len(sr.Results))
	}
	// Nonpositive radius rejected.
	r2 := postJSON(t, ts.URL+"/search_radius", searchRequest{Vector: q, Radius: 0})
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("zero radius status %d", r2.StatusCode)
	}
	r2.Body.Close()
	// Ladder-shaping knobs don't apply to a single fixed-radius round and
	// are rejected rather than silently ignored.
	r3 := postJSON(t, ts.URL+"/search_radius",
		searchRequest{Vector: q, Radius: 1, queryOptions: queryOptions{MaxRadius: 0.1}})
	if r3.StatusCode != http.StatusBadRequest {
		t.Fatalf("max_radius on /search_radius status %d", r3.StatusCode)
	}
	r3.Body.Close()
	r4 := postJSON(t, ts.URL+"/search_radius",
		searchRequest{Vector: q, Radius: 1, queryOptions: queryOptions{EarlyStop: 2}})
	if r4.StatusCode != http.StatusBadRequest {
		t.Fatalf("early_stop on /search_radius status %d", r4.StatusCode)
	}
	r4.Body.Close()
}

func TestAddEndpoint(t *testing.T) {
	ts, idx := testServer(t)
	before := idx.Len()
	v := make([]float32, idx.Dim())
	for j := range v {
		v[j] = 999
	}
	resp := postJSON(t, ts.URL+"/vectors", searchRequest{Vector: v})
	var ar addResponse
	decode(t, resp, &ar)
	if ar.ID != before {
		t.Fatalf("added id %d, want %d", ar.ID, before)
	}
	// The added vector is immediately searchable.
	r2 := postJSON(t, ts.URL+"/search", searchRequest{Vector: v, K: 1})
	var sr searchResponse
	decode(t, r2, &sr)
	if len(sr.Results) != 1 || sr.Results[0].ID != ar.ID || sr.Results[0].Dist != 0 {
		t.Fatalf("added vector not found: %+v", sr.Results)
	}
}

func TestConcurrentSearchAndAdd(t *testing.T) {
	ts, idx := testServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if g%2 == 0 {
					resp := postJSONQuiet(ts.URL+"/search", searchRequest{Vector: make([]float32, idx.Dim()), K: 3})
					if resp != http.StatusOK {
						errs <- fmt.Errorf("search status %d", resp)
					}
				} else {
					v := make([]float32, idx.Dim())
					v[0] = float32(g*100 + i)
					resp := postJSONQuiet(ts.URL+"/vectors", searchRequest{Vector: v})
					if resp != http.StatusOK {
						errs <- fmt.Errorf("add status %d", resp)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func postJSONQuiet(url string, body interface{}) int {
	b, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return -1
	}
	resp.Body.Close()
	return resp.StatusCode
}

func TestStatsDeletedCount(t *testing.T) {
	ts, idx := testServer(t)
	if !idx.Delete(3) || !idx.Delete(4) {
		t.Fatal("delete failed")
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	decode(t, resp, &st)
	if st.Deleted != 2 {
		t.Fatalf("deleted = %d, want 2", st.Deleted)
	}
}

func TestSearchStatsEchoed(t *testing.T) {
	ts, idx := testServer(t)
	resp := postJSON(t, ts.URL+"/search", searchRequest{Vector: make([]float32, idx.Dim()), K: 3})
	var sr searchResponse
	decode(t, resp, &sr)
	if sr.Stats == nil {
		t.Fatal("no stats in search response")
	}
	if sr.Stats.Candidates == 0 || sr.Stats.Rounds == 0 || sr.Stats.FinalRadius == 0 {
		t.Fatalf("empty stats %+v", *sr.Stats)
	}
}

func TestSearchPerRequestOptions(t *testing.T) {
	ts, idx := testServer(t)
	q := make([]float32, idx.Dim())
	search := func(opts queryOptions) searchResponse {
		t.Helper()
		resp := postJSON(t, ts.URL+"/search", searchRequest{Vector: q, K: 5, queryOptions: opts})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var sr searchResponse
		decode(t, resp, &sr)
		return sr
	}
	// Per-request t overrides the build-time candidate constant: budget
	// 2·t·L+k with t=1, L=3, k=5 caps verification at 11 candidates.
	small := search(queryOptions{T: 1})
	large := search(queryOptions{T: 200})
	if small.Stats.Candidates > 11 {
		t.Fatalf("t=1 verified %d candidates, cap is 11", small.Stats.Candidates)
	}
	if small.Stats.Candidates >= large.Stats.Candidates {
		t.Fatalf("t=1 vs t=200 candidates: %d vs %d",
			small.Stats.Candidates, large.Stats.Candidates)
	}
	// early_stop and max_radius round-trip.
	loose := search(queryOptions{T: 200, EarlyStop: 4})
	if loose.Stats.Candidates > large.Stats.Candidates {
		t.Fatalf("early_stop did more work: %d vs %d",
			loose.Stats.Candidates, large.Stats.Candidates)
	}
	capped := search(queryOptions{MaxRadius: 1e-12})
	if len(capped.Results) != 0 || capped.Stats.Rounds != 0 {
		t.Fatalf("tiny max_radius: %d results, %d rounds",
			len(capped.Results), capped.Stats.Rounds)
	}
	// Invalid knobs are rejected.
	resp := postJSON(t, ts.URL+"/search",
		searchRequest{Vector: q, K: 5, queryOptions: queryOptions{EarlyStop: 0.5}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("early_stop=0.5 status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestSearchFilterIDs(t *testing.T) {
	ts, idx := testServer(t)
	q := make([]float32, idx.Dim())
	allow := []int{11, 22, 33}
	resp := postJSON(t, ts.URL+"/search",
		searchRequest{Vector: q, K: 10, queryOptions: queryOptions{FilterIDs: allow}})
	var sr searchResponse
	decode(t, resp, &sr)
	if len(sr.Results) != len(allow) {
		t.Fatalf("allowlist of %d ids returned %d results", len(allow), len(sr.Results))
	}
	allowed := map[int]bool{11: true, 22: true, 33: true}
	for _, h := range sr.Results {
		if !allowed[h.ID] {
			t.Fatalf("filter_ids leaked id %d", h.ID)
		}
	}
}

func TestSearchBatchEndpoint(t *testing.T) {
	ts, idx := testServer(t)
	queries := make([][]float32, 5)
	for i := range queries {
		v := make([]float32, idx.Dim())
		v[0] = float32(i)
		queries[i] = v
	}
	resp := postJSON(t, ts.URL+"/search_batch",
		batchRequest{Vectors: queries, K: 4, queryOptions: queryOptions{T: 50}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var br batchResponse
	decode(t, resp, &br)
	if len(br.Results) != len(queries) || len(br.Stats) != len(queries) {
		t.Fatalf("%d queries gave %d results, %d stats",
			len(queries), len(br.Results), len(br.Stats))
	}
	for i, hits := range br.Results {
		if len(hits) != 4 {
			t.Fatalf("query %d: %d hits, want 4", i, len(hits))
		}
		prev := -1.0
		for _, h := range hits {
			if h.Dist < prev {
				t.Fatalf("query %d results not sorted", i)
			}
			prev = h.Dist
		}
		if br.Stats[i].Candidates == 0 {
			t.Fatalf("query %d has empty stats", i)
		}
	}
}

func TestSearchBatchValidation(t *testing.T) {
	ts, idx := testServer(t)
	// Empty batch.
	resp := postJSON(t, ts.URL+"/search_batch", batchRequest{K: 3})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch status %d", resp.StatusCode)
	}
	resp.Body.Close()
	// One vector of the wrong dimension poisons the batch.
	r2 := postJSON(t, ts.URL+"/search_batch", batchRequest{
		Vectors: [][]float32{make([]float32, idx.Dim()), {1, 2}}, K: 3})
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-dim batch status %d", r2.StatusCode)
	}
	r2.Body.Close()
	// Wrong method.
	r3, err := http.Get(ts.URL + "/search_batch")
	if err != nil {
		t.Fatal(err)
	}
	if r3.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /search_batch status %d", r3.StatusCode)
	}
	r3.Body.Close()
}

func TestDeleteEndpoint(t *testing.T) {
	ts, _ := testServerSharded(t, 3)
	id := 7
	resp := postJSON(t, ts.URL+"/delete", deleteRequest{ID: &id})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var dr deleteResponse
	decode(t, resp, &dr)
	if !dr.Deleted {
		t.Fatal("first delete of id 7 reported deleted=false")
	}
	// Second delete of the same id is a no-op, not an error.
	r2 := postJSON(t, ts.URL+"/delete", deleteRequest{ID: &id})
	decode(t, r2, &dr)
	if dr.Deleted {
		t.Fatal("second delete of id 7 reported deleted=true")
	}
	// The deleted id no longer appears in searches.
	r3 := postJSON(t, ts.URL+"/search", searchRequest{Vector: make([]float32, 16), K: 1000})
	var sr searchResponse
	decode(t, r3, &sr)
	for _, h := range sr.Results {
		if h.ID == id {
			t.Fatal("deleted id still returned by /search")
		}
	}
	// Missing id field is a 400.
	r4 := postJSON(t, ts.URL+"/delete", struct{}{})
	if r4.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing-id status %d", r4.StatusCode)
	}
	r4.Body.Close()
}

func TestCompactEndpoint(t *testing.T) {
	ts, idx := testServerSharded(t, 3)
	for id := 0; id < 90; id++ {
		idx.Delete(id)
	}
	// Compact a single shard: only its tombstones are reclaimed.
	shardNo := 0
	resp := postJSON(t, ts.URL+"/compact", compactRequest{Shard: &shardNo})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var cr compactResponse
	decode(t, resp, &cr)
	if cr.Removed != 30 {
		t.Fatalf("compacting shard 0 removed %d, want 30", cr.Removed)
	}
	// Compact the rest.
	r2 := postJSON(t, ts.URL+"/compact", compactRequest{})
	decode(t, r2, &cr)
	if cr.Removed != 60 {
		t.Fatalf("compacting all removed %d, want 60", cr.Removed)
	}
	if idx.Deleted() != 0 {
		t.Fatalf("deleted = %d after full compaction", idx.Deleted())
	}
	// Out-of-range shard is a 400.
	bad := 99
	r3 := postJSON(t, ts.URL+"/compact", compactRequest{Shard: &bad})
	if r3.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad shard status %d", r3.StatusCode)
	}
	r3.Body.Close()
}

func TestStatsPerShard(t *testing.T) {
	ts, idx := testServerSharded(t, 4)
	idx.Delete(0) // routes to shard 0
	if _, err := idx.CompactShard(0); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	decode(t, resp, &st)
	if st.ShardCount != 4 || len(st.Shards) != 4 {
		t.Fatalf("shard count %d / %d entries", st.ShardCount, len(st.Shards))
	}
	sum := 0
	for i, sh := range st.Shards {
		if sh.Shard != i {
			t.Fatalf("shard %d reported as %d", i, sh.Shard)
		}
		sum += sh.Size
	}
	if sum != st.Vectors || st.Vectors != 999 {
		t.Fatalf("shard sizes sum to %d, total says %d", sum, st.Vectors)
	}
	if st.Shards[0].Compactions != 1 || st.Shards[0].LastCompaction == "" {
		t.Fatalf("shard 0 compaction not reported: %+v", st.Shards[0])
	}
	if st.Shards[1].Compactions != 0 || st.Shards[1].LastCompaction != "" {
		t.Fatalf("shard 1 reports a compaction it never had: %+v", st.Shards[1])
	}
}

// TestConcurrentMixedTraffic hammers a sharded server with every mutating
// and searching endpoint at once; under -race this is the regression net
// for the lock-free routing.
func TestConcurrentMixedTraffic(t *testing.T) {
	ts, idx := testServerSharded(t, 4)
	var wg sync.WaitGroup
	errs := make(chan error, 256)
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				switch g % 4 {
				case 0:
					if st := postJSONQuiet(ts.URL+"/search", searchRequest{Vector: make([]float32, idx.Dim()), K: 3}); st != http.StatusOK {
						errs <- fmt.Errorf("search status %d", st)
					}
				case 1:
					v := make([]float32, idx.Dim())
					v[0] = float32(g*100 + i)
					if st := postJSONQuiet(ts.URL+"/vectors", searchRequest{Vector: v}); st != http.StatusOK {
						errs <- fmt.Errorf("add status %d", st)
					}
				case 2:
					id := g*37 + i
					if st := postJSONQuiet(ts.URL+"/delete", deleteRequest{ID: &id}); st != http.StatusOK {
						errs <- fmt.Errorf("delete status %d", st)
					}
				case 3:
					if st := postJSONQuiet(ts.URL+"/compact", compactRequest{}); st != http.StatusOK {
						errs <- fmt.Errorf("compact status %d", st)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestLoadIndexFromFile(t *testing.T) {
	idx := testIndex(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "test.dblsh")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	loaded, err := loadIndex(config{indexFile: path, shards: 1, metric: dblsh.Euclidean})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != idx.Len() || loaded.Dim() != idx.Dim() {
		t.Fatalf("loaded shape %d×%d", loaded.Len(), loaded.Dim())
	}
}

func TestLoadIndexDemo(t *testing.T) {
	idx, err := loadIndex(config{demoN: 500, demoDim: 8, seed: 3, shards: 4, metric: dblsh.Euclidean})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 500 || idx.Dim() != 8 {
		t.Fatalf("demo shape %d×%d", idx.Len(), idx.Dim())
	}
	if idx.Shards() != 4 {
		t.Fatalf("demo shards = %d, want 4", idx.Shards())
	}
}

func TestLoadIndexMissingFile(t *testing.T) {
	if _, err := loadIndex(config{indexFile: "/nonexistent/path.dblsh", shards: 1, metric: dblsh.Euclidean}); err == nil {
		t.Fatal("missing file must error")
	}
}

// TestCheckpointEndpoint drives POST /checkpoint and the /stats durability
// block against a durable index: mutations show up as pending ops, a
// checkpoint absorbs them, and a non-durable server rejects the endpoint.
func TestCheckpointEndpoint(t *testing.T) {
	dir := t.TempDir()
	idx, err := dblsh.Open(dir, dblsh.Options{Dim: 16, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { idx.Close() })
	ts := httptest.NewServer(newServer(idx, serverConfig{}).handler())
	t.Cleanup(ts.Close)

	resp := postJSON(t, ts.URL+"/vectors", searchRequest{Vector: make([]float32, 16)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add status %d", resp.StatusCode)
	}
	resp.Body.Close()

	var stats statsResponse
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	decode(t, sresp, &stats)
	if stats.Durability == nil || stats.Durability.OpsSinceCheckpoint != 1 || stats.Durability.LogBytes == 0 {
		t.Fatalf("pre-checkpoint durability stats: %+v", stats.Durability)
	}

	var after durabilityJSON
	decode(t, postJSON(t, ts.URL+"/checkpoint", nil), &after)
	if after.OpsSinceCheckpoint != 0 || after.LogBytes != 0 || after.LastCheckpoint == "" {
		t.Fatalf("post-checkpoint response: %+v", after)
	}

	// GET is not allowed.
	gresp, err := http.Get(ts.URL + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /checkpoint status %d", gresp.StatusCode)
	}

	// After Close the server is shutting down: an add is a 503, not a 400.
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}
	cresp := postJSON(t, ts.URL+"/vectors", searchRequest{Vector: make([]float32, 16)})
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("add on closed index: status %d, want 503", cresp.StatusCode)
	}

	// A non-durable server rejects the endpoint and omits the stats block.
	mem, _ := testServer(t)
	mresp := postJSON(t, mem.URL+"/checkpoint", nil)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-durable /checkpoint status %d", mresp.StatusCode)
	}
	var memStats statsResponse
	msresp, err := http.Get(mem.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	decode(t, msresp, &memStats)
	if memStats.Durability != nil {
		t.Fatalf("non-durable /stats carries durability block: %+v", memStats.Durability)
	}
}

// TestLoadIndexDurableLifecycle drives the -data-dir path end to end: a
// fresh directory is seeded from the demo corpus, mutations stick across a
// close-and-reopen, and the second open resumes from the directory rather
// than rebuilding the demo corpus.
func TestLoadIndexDurableLifecycle(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	cfg := config{
		dataDir: dir, demoN: 300, demoDim: 8, seed: 5, shards: 2,
		sync: dblsh.SyncNever, metric: dblsh.Euclidean,
	}
	idx, err := loadIndex(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 300 || idx.Shards() != 2 {
		t.Fatalf("seeded store shape: Len=%d Shards=%d", idx.Len(), idx.Shards())
	}
	if _, ok := idx.Durability(); !ok {
		t.Fatal("store opened without durability")
	}
	v := make([]float32, 8)
	id, err := idx.Add(v)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with a smaller demo config: the directory must win.
	cfg.demoN = 10
	re, err := loadIndex(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 301 || re.NextID() != id+1 {
		t.Fatalf("reopened store: Len=%d NextID=%d, want 301/%d", re.Len(), re.NextID(), id+1)
	}
}
