// Command dblsh-server serves approximate nearest neighbor queries over HTTP
// with a DB-LSH index.
//
// The index comes from one of three places: a durable data directory
// (-data-dir, recommended — mutations survive restarts and crashes), a file
// previously written with Index.WriteTo (-index), or a demo corpus built at
// startup (-demo-n / -demo-dim) when neither is given.
//
//	dblsh-server -addr :8080 -data-dir /var/lib/dblsh -sync 100ms -checkpoint-every 1m
//	dblsh-server -addr :8080 -index vectors.dblsh
//	dblsh-server -addr :8080 -demo-n 100000 -demo-dim 128
//
// With -data-dir the server opens the directory's checkpoint, replays its
// write-ahead op log, and logs every subsequent mutation: a crash loses at
// most what the -sync policy ("always", "never", or a flush interval like
// "100ms") had not yet fsynced. -checkpoint-every rewrites the snapshot and
// truncates the log in the background; POST /checkpoint does it on demand.
// A fresh (empty) data directory is seeded from -index when given, from the
// demo corpus otherwise. On SIGINT/SIGTERM the server drains in-flight
// requests and flushes the log before exiting.
//
// Endpoints:
//
//	GET  /healthz
//	GET  /stats
//	GET  /metrics
//	POST /search          {"vector": [...], "k": 10}
//	POST /search_batch    {"vectors": [[...], ...], "k": 10}
//	POST /search_radius   {"vector": [...], "radius": 1.5}
//	POST /vectors         {"vector": [...]}
//	POST /delete          {"id": 7}
//	POST /compact         {"shard": 2} (omit shard to compact all)
//	POST /checkpoint      rewrite the durable snapshot, truncate the op log
//
// Search endpoints accept optional per-request knobs — "t" (candidate
// budget), "early_stop" (termination factor ≥ 1), "max_radius" (radius
// ladder cap), "filter_ids" (allowlist of returnable ids) and "parallelism"
// (shards visited concurrently per ladder round) — and echo the query's
// work statistics ("candidates", "rounds", "final_radius") in the
// response, so one running server can serve low-latency and high-recall
// traffic side by side. /search_radius runs a single fixed-radius round, so
// it takes only "t" and "filter_ids" and rejects the ladder-shaping knobs.
//
// With -shards S the index is partitioned across S independently locked
// shards, so /vectors and /delete stall only 1/S of search capacity and
// /compact rebuilds one shard while the rest serve; /stats reports the
// per-shard breakdown plus, under -data-dir, the durability state (log
// bytes, ops since checkpoint, last checkpoint time). -compact-fraction
// enables automatic background compaction once a shard's tombstoned
// fraction crosses the threshold. -parallelism sets how many shards a
// single query visits concurrently within each ladder round (0 = auto,
// min(GOMAXPROCS, shards); 1 = sequential; results are identical either
// way), overridable per request.
//
// With -pprof ADDR the server exposes Go's net/http/pprof profiling
// endpoints (/debug/pprof/...) on a separate listener, so CPU and heap
// profiles can be captured from a loaded server without mixing profiling
// traffic into the serving port:
//
//	dblsh-server -addr :8080 -pprof localhost:6060
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
//
// GET /metrics exposes the server's operational state in the Prometheus
// text format: request count/latency/in-flight by endpoint, per-query work
// histograms (k, nodes visited, frontier size), WAL append/fsync activity,
// checkpoint and compaction durations — the full catalog is in the README's
// "Operations" section. -slow-query-threshold additionally logs every
// request at least that slow as one JSON line on stderr, carrying the
// query's work counters.
//
// Admission control says no before overload says it worse: -max-inflight
// caps concurrently executing search/mutation requests, -max-queue bounds
// how many may wait for a slot, and anything beyond that is shed
// immediately with 429 + Retry-After — probes (/healthz, /stats) and
// scrapes (/metrics) bypass admission so operators can still see in.
// -default-deadline gives deadline-less requests one, enforced by the
// query path's context polling; expiry answers 408.
//
//	dblsh-server -addr :8080 -max-inflight 64 -max-queue 128 \
//	    -default-deadline 2s -slow-query-threshold 100ms
//
// With -metric the demo corpus is indexed under a non-Euclidean metric
// ("cosine" or "ip"); an -index file or data directory carries its own
// metric. /stats reports the active metric, search responses carry
// distances in that metric (cosine distance, or negated inner product under
// ip), and the radius knobs are rejected where the metric leaves them
// undefined.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dblsh"
	"dblsh/internal/obs"
	"dblsh/internal/vec"
	"dblsh/internal/vec/cpu"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		indexFile   = flag.String("index", "", "index file written by Index.WriteTo (empty: build demo corpus)")
		dataDir     = flag.String("data-dir", "", "durable data directory: checkpoint + write-ahead op log (empty: in-memory only)")
		syncFlag    = flag.String("sync", "always", `op-log sync policy: "always", "never", or a flush interval like "100ms"`)
		ckptEvery   = flag.Duration("checkpoint-every", time.Minute, "background checkpoint cadence under -data-dir (0 disables)")
		demoN       = flag.Int("demo-n", 50_000, "demo corpus size when -index is not given")
		demoDim     = flag.Int("demo-dim", 64, "demo corpus dimensionality")
		seed        = flag.Int64("seed", 1, "demo corpus / hashing seed")
		shards      = flag.Int("shards", 1, "index shards for the demo corpus (an -index file carries its own layout)")
		compactFrac = flag.Float64("compact-fraction", 0, "auto-compact a shard when its tombstoned fraction reaches this (0 disables)")
		metricName  = flag.String("metric", "euclidean", "distance metric for the demo corpus: euclidean, cosine or ip (an -index file carries its own metric)")
		quantize    = flag.String("quantize", "on", `int8 quantized verification pre-filter: "on" or "off" (results are identical either way; the flag is operational and applies to loaded indexes too)`)
		parallelism = flag.Int("parallelism", 0, "shards a single query visits concurrently per ladder round: 0 picks min(GOMAXPROCS, shards) per query, 1 forces the sequential path (results are identical either way; operational, applies to loaded indexes too)")
		kernel      = flag.String("kernel", "", "distance kernel by name (see /stats kernel_names); empty keeps the auto-detected (or DBLSH_KERNEL-selected) kernel. Unlike the env override, an unknown name here is fatal")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this separate address (e.g. localhost:6060; empty disables)")

		maxInflight = flag.Int("max-inflight", 0, "admission control: max concurrently executing search/mutation requests (0 = unlimited)")
		maxQueue    = flag.Int("max-queue", 0, "admission control: requests allowed to wait for a slot before overflow is shed with 429 (with -max-inflight; 0 = shed immediately when all slots are busy)")
		defDeadline = flag.Duration("default-deadline", 0, "deadline applied to requests that arrive without one; expiry cancels the radius ladder and answers 408 (0 disables)")
		slowQuery   = flag.Duration("slow-query-threshold", 0, "log requests at least this slow as JSON slow-log lines on stderr (0 disables)")
	)
	flag.Parse()

	// Kernel selection happens before the index is built or any query runs:
	// SetKernel must not race with traffic, and a mid-process change would
	// break the dispatch table's startup-frozen contract. The flag fails
	// fast — a typo in an operator-provided name should refuse to serve,
	// unlike the DBLSH_KERNEL env override, which warns and keeps the
	// auto-detected kernel so a stale environment cannot take a node down.
	if *kernel != "" {
		if err := vec.SetKernel(*kernel); err != nil {
			log.Fatalf("dblsh-server: -kernel: %v", err)
		}
	}
	log.Printf("distance kernel %s (%s; cpu features: %v)",
		vec.KernelName(), vec.KernelSource(), cpu.Detect().List())

	if *pprofAddr != "" {
		go servePprof(*pprofAddr)
	}

	met, err := dblsh.ParseMetric(*metricName)
	if err != nil {
		log.Fatalf("dblsh-server: %v", err)
	}
	syncPolicy, syncEvery, err := parseSyncFlag(*syncFlag)
	if err != nil {
		log.Fatalf("dblsh-server: %v", err)
	}
	idx, err := loadIndex(config{
		indexFile: *indexFile, dataDir: *dataDir,
		sync: syncPolicy, syncEvery: syncEvery, checkpointEvery: *ckptEvery,
		demoN: *demoN, demoDim: *demoDim, seed: *seed,
		shards: *shards, compactFrac: *compactFrac, metric: met,
		quantize: *quantize, parallelism: *parallelism,
	})
	if err != nil {
		log.Fatalf("dblsh-server: %v", err)
	}
	if _, durable := idx.Durability(); durable {
		log.Printf("durable store %s: sync=%s checkpoint-every=%v", *dataDir, *syncFlag, *ckptEvery)
	}
	log.Printf("serving %d vectors of dim %d (%s metric) across %d shard(s) on %s",
		idx.Len(), idx.Dim(), idx.Metric(), idx.Shards(), *addr)
	if *maxInflight > 0 {
		log.Printf("admission control: %d slots, %d queued; overflow shed with 429", *maxInflight, *maxQueue)
	}

	srv := &http.Server{
		Addr: *addr,
		Handler: newServer(idx, serverConfig{
			maxInflight:     *maxInflight,
			maxQueue:        *maxQueue,
			defaultDeadline: *defDeadline,
			slowLog:         obs.NewSlowLog(slog.NewJSONHandler(os.Stderr, nil), *slowQuery),
		}).handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Graceful shutdown: stop accepting, drain in-flight requests, then
	// flush and close the durable state so no acknowledged mutation rides
	// only in memory.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Printf("dblsh-server: shutdown: %v", err)
	}
	if err := idx.Close(); err != nil {
		log.Fatalf("dblsh-server: close index: %v", err)
	}
}

// servePprof exposes the net/http/pprof profiling handlers on their own
// listener, so profiling traffic never shares the serving mux (or its
// port, which may be exposed) with query traffic. Explicit registration
// keeps the handlers off http.DefaultServeMux.
func servePprof(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	log.Printf("pprof listening on %s", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		log.Printf("dblsh-server: pprof listener: %v", err)
	}
}

// parseSyncFlag maps the -sync flag to a policy: "always", "never", or a
// duration meaning interval flushing at that cadence.
func parseSyncFlag(s string) (dblsh.SyncPolicy, time.Duration, error) {
	switch s {
	case "always":
		return dblsh.SyncAlways, 0, nil
	case "never":
		return dblsh.SyncNever, 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return 0, 0, fmt.Errorf(`-sync must be "always", "never" or a positive duration, got %q`, s)
	}
	return dblsh.SyncInterval, d, nil
}

type config struct {
	indexFile, dataDir         string
	sync                       dblsh.SyncPolicy
	syncEvery, checkpointEvery time.Duration
	demoN, demoDim             int
	seed                       int64
	shards                     int
	compactFrac                float64
	metric                     dblsh.Metric
	quantize                   string
	parallelism                int
}

func loadIndex(c config) (*dblsh.Index, error) {
	if c.dataDir == "" {
		return loadEphemeral(c)
	}
	opts := dblsh.Options{
		Sync: c.sync, SyncEvery: c.syncEvery, CheckpointEvery: c.checkpointEvery,
		CompactFraction: c.compactFrac, Quantize: c.quantize, Parallelism: c.parallelism,
	}
	// A directory that already holds a checkpoint resumes from it; a fresh
	// one is seeded (from -index or the demo corpus) and then reopened
	// durably.
	if !dblsh.IsStore(c.dataDir) {
		seedIdx, err := loadEphemeral(c)
		if err != nil {
			return nil, err
		}
		log.Printf("seeding fresh data directory %s with %d vectors", c.dataDir, seedIdx.Len())
		if err := seedIdx.Save(c.dataDir); err != nil {
			return nil, err
		}
	}
	start := time.Now()
	idx, err := dblsh.Open(c.dataDir, opts)
	if err != nil {
		return nil, fmt.Errorf("open %s: %w", c.dataDir, err)
	}
	log.Printf("opened %s in %v", c.dataDir, time.Since(start).Round(time.Millisecond))
	return idx, nil
}

// loadEphemeral builds the in-memory index: from -index when given, from
// the demo corpus otherwise.
func loadEphemeral(c config) (*dblsh.Index, error) {
	if c.indexFile != "" {
		f, err := os.Open(c.indexFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		start := time.Now()
		idx, err := dblsh.Read(f)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", c.indexFile, err)
		}
		// The shard layout travels with the file; the compaction policy, the
		// pre-filter flag and the query fan-out setting are operational and
		// apply to loaded indexes too.
		if err := idx.SetCompactFraction(c.compactFrac); err != nil {
			return nil, err
		}
		if err := idx.SetQuantize(c.quantize); err != nil {
			return nil, err
		}
		if err := idx.SetParallelism(c.parallelism); err != nil {
			return nil, err
		}
		log.Printf("loaded %s in %v", c.indexFile, time.Since(start).Round(time.Millisecond))
		return idx, nil
	}
	log.Printf("no -index given; building a %d×%d demo corpus", c.demoN, c.demoDim)
	rng := rand.New(rand.NewSource(c.seed))
	flat := make([]float32, c.demoN*c.demoDim)
	// Clustered demo data: 100 Gaussian blobs.
	centers := make([][]float32, 100)
	for i := range centers {
		ctr := make([]float32, c.demoDim)
		for j := range ctr {
			ctr[j] = float32(rng.NormFloat64() * 10)
		}
		centers[i] = ctr
	}
	for i := 0; i < c.demoN; i++ {
		ctr := centers[rng.Intn(len(centers))]
		row := flat[i*c.demoDim : (i+1)*c.demoDim]
		for j := range row {
			row[j] = ctr[j] + float32(rng.NormFloat64())
		}
	}
	return dblsh.NewFromFlat(flat, c.demoN, c.demoDim, dblsh.Options{
		Seed: c.seed, Shards: c.shards, CompactFraction: c.compactFrac, Metric: c.metric,
		Quantize: c.quantize, Parallelism: c.parallelism,
	})
}
