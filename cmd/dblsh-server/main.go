// Command dblsh-server serves approximate nearest neighbor queries over HTTP
// with a DB-LSH index.
//
// The index is loaded from a file previously written with Index.WriteTo
// (-index), or built at startup from a demo corpus (-demo-n / -demo-dim)
// when no file is given.
//
//	dblsh-server -addr :8080 -index vectors.dblsh
//	dblsh-server -addr :8080 -demo-n 100000 -demo-dim 128
//
// Endpoints:
//
//	GET  /healthz
//	GET  /stats
//	POST /search          {"vector": [...], "k": 10}
//	POST /search_batch    {"vectors": [[...], ...], "k": 10}
//	POST /search_radius   {"vector": [...], "radius": 1.5}
//	POST /vectors         {"vector": [...]}
//	POST /delete          {"id": 7}
//	POST /compact         {"shard": 2} (omit shard to compact all)
//
// Search endpoints accept optional per-request knobs — "t" (candidate
// budget), "early_stop" (termination factor ≥ 1), "max_radius" (radius
// ladder cap) and "filter_ids" (allowlist of returnable ids) — and echo the
// query's work statistics ("candidates", "rounds", "final_radius") in the
// response, so one running server can serve low-latency and high-recall
// traffic side by side. /search_radius runs a single fixed-radius round, so
// it takes only "t" and "filter_ids" and rejects the ladder-shaping knobs.
//
// With -shards S the index is partitioned across S independently locked
// shards, so /vectors and /delete stall only 1/S of search capacity and
// /compact rebuilds one shard while the rest serve; /stats reports the
// per-shard breakdown. -compact-fraction enables automatic background
// compaction once a shard's tombstoned fraction crosses the threshold.
//
// With -metric the demo corpus is indexed under a non-Euclidean metric
// ("cosine" or "ip"); an -index file carries its own metric. /stats reports
// the active metric, search responses carry distances in that metric
// (cosine distance, or negated inner product under ip), and the radius
// knobs are rejected where the metric leaves them undefined.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"time"

	"dblsh"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		indexFile   = flag.String("index", "", "index file written by Index.WriteTo (empty: build demo corpus)")
		demoN       = flag.Int("demo-n", 50_000, "demo corpus size when -index is not given")
		demoDim     = flag.Int("demo-dim", 64, "demo corpus dimensionality")
		seed        = flag.Int64("seed", 1, "demo corpus / hashing seed")
		shards      = flag.Int("shards", 1, "index shards for the demo corpus (an -index file carries its own layout)")
		compactFrac = flag.Float64("compact-fraction", 0, "auto-compact a shard when its tombstoned fraction reaches this (0 disables)")
		metricName  = flag.String("metric", "euclidean", "distance metric for the demo corpus: euclidean, cosine or ip (an -index file carries its own metric)")
	)
	flag.Parse()

	met, err := dblsh.ParseMetric(*metricName)
	if err != nil {
		log.Fatalf("dblsh-server: %v", err)
	}
	idx, err := loadIndex(*indexFile, *demoN, *demoDim, *seed, *shards, *compactFrac, met)
	if err != nil {
		log.Fatalf("dblsh-server: %v", err)
	}
	log.Printf("serving %d vectors of dim %d (%s metric) across %d shard(s) on %s",
		idx.Len(), idx.Dim(), idx.Metric(), idx.Shards(), *addr)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServer(idx).handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Fatal(srv.ListenAndServe())
}

func loadIndex(path string, demoN, demoDim int, seed int64, shards int, compactFrac float64, met dblsh.Metric) (*dblsh.Index, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		start := time.Now()
		idx, err := dblsh.Read(f)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", path, err)
		}
		// The shard layout travels with the file; the compaction policy is
		// operational and applies to loaded indexes too.
		if err := idx.SetCompactFraction(compactFrac); err != nil {
			return nil, err
		}
		log.Printf("loaded %s in %v", path, time.Since(start).Round(time.Millisecond))
		return idx, nil
	}
	log.Printf("no -index given; building a %d×%d demo corpus", demoN, demoDim)
	rng := rand.New(rand.NewSource(seed))
	flat := make([]float32, demoN*demoDim)
	// Clustered demo data: 100 Gaussian blobs.
	centers := make([][]float32, 100)
	for i := range centers {
		c := make([]float32, demoDim)
		for j := range c {
			c[j] = float32(rng.NormFloat64() * 10)
		}
		centers[i] = c
	}
	for i := 0; i < demoN; i++ {
		c := centers[rng.Intn(len(centers))]
		row := flat[i*demoDim : (i+1)*demoDim]
		for j := range row {
			row[j] = c[j] + float32(rng.NormFloat64())
		}
	}
	return dblsh.NewFromFlat(flat, demoN, demoDim, dblsh.Options{
		Seed: seed, Shards: shards, CompactFraction: compactFrac, Metric: met,
	})
}
