package main

import (
	"context"
	"errors"
)

// errShed reports that a request was refused at admission: every execution
// slot is busy and the wait queue is at budget. The caller answers 429
// with Retry-After rather than letting unbounded waiters pile up — under
// sustained overload the queue would otherwise grow without bound and
// every request would eventually time out, in-budget ones included.
var errShed = errors.New("server overloaded")

// limiter is the admission controller: a semaphore of maxInflight
// execution slots plus a bounded wait queue. A request that finds a free
// slot proceeds; one that would wait joins the queue if it is under
// budget, or is shed immediately. A nil limiter admits everything.
type limiter struct {
	slots    chan struct{}
	maxQueue int
	queue    chan struct{} // capacity maxQueue; a token held while waiting
}

// newLimiter returns a limiter with maxInflight execution slots and a
// maxQueue-deep wait queue, or nil (unlimited) when maxInflight is 0.
func newLimiter(maxInflight, maxQueue int) *limiter {
	if maxInflight <= 0 {
		return nil
	}
	return &limiter{
		slots:    make(chan struct{}, maxInflight),
		maxQueue: maxQueue,
		queue:    make(chan struct{}, maxQueue),
	}
}

// acquire takes an execution slot, waiting in the bounded queue if none is
// free. It returns errShed when the queue is at budget, or ctx.Err() when
// the caller's context expires while queued. A nil error means the caller
// holds a slot and must release it.
func (l *limiter) acquire(ctx context.Context) error {
	if l == nil {
		return nil
	}
	select {
	case l.slots <- struct{}{}:
		return nil
	default:
	}
	// No free slot: join the wait queue if it has room.
	select {
	case l.queue <- struct{}{}:
	default:
		return errShed
	}
	defer func() { <-l.queue }()
	select {
	case l.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns an execution slot taken by a successful acquire.
func (l *limiter) release() {
	if l == nil {
		return
	}
	<-l.slots
}

// queued reports how many requests are currently waiting for a slot.
func (l *limiter) queued() int {
	if l == nil {
		return 0
	}
	return len(l.queue)
}

// inflight reports how many execution slots are currently held.
func (l *limiter) inflight() int {
	if l == nil {
		return 0
	}
	return len(l.slots)
}
