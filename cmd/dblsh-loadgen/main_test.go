package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestPercentile(t *testing.T) {
	ds := []time.Duration{4, 1, 3, 2, 5} // unsorted on purpose
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{50, 3},
		{95, 5},
		{99, 5},
		{100, 5},
		{0, 1},
	}
	for _, c := range cases {
		if got := percentile(ds, c.p); got != c.want {
			t.Errorf("percentile(%v) = %d, want %d", c.p, got, c.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("percentile(empty) = %d, want 0", got)
	}
	if got := mean(ds); got != 3 {
		t.Errorf("mean = %d, want 3", got)
	}
	if got := mean(nil); got != 0 {
		t.Errorf("mean(empty) = %d, want 0", got)
	}
}

// TestRunAgainstStub drives run() at a stub server and checks the tallies:
// every request lands in exactly one of successes/shed/errors, reads and
// writes both occur, and the percentiles come out of the success set.
func TestRunAgainstStub(t *testing.T) {
	var searches, adds, served atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]interface{}{
			"dim":           8,
			"kernel":        "avx2",
			"kernel_source": "auto",
			"cpu_features":  []string{"avx", "avx2", "fma"},
		})
	})
	mux.HandleFunc("/search", func(w http.ResponseWriter, r *http.Request) {
		searches.Add(1)
		// Shed every fourth request so the 429 path is exercised.
		if served.Add(1)%4 == 0 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"overloaded"}`, http.StatusTooManyRequests)
			return
		}
		var req struct {
			Vector []float32 `json:"vector"`
			K      int       `json:"k"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.Vector) != 8 || req.K != 7 {
			http.Error(w, `{"error":"bad request"}`, http.StatusBadRequest)
			return
		}
		json.NewEncoder(w).Encode(map[string]interface{}{"results": []interface{}{}})
	})
	mux.HandleFunc("/vectors", func(w http.ResponseWriter, r *http.Request) {
		adds.Add(1)
		json.NewEncoder(w).Encode(map[string]interface{}{"id": 1})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	sum, err := run(config{
		addr:          ts.URL,
		concurrency:   3,
		duration:      300 * time.Millisecond,
		writeFraction: 0.3,
		k:             7,
		seed:          42,
		timeout:       2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Successes == 0 {
		t.Fatal("no successful requests against a live stub")
	}
	if sum.Reads == 0 || sum.Writes == 0 {
		t.Fatalf("expected both reads and writes, got %d/%d", sum.Reads, sum.Writes)
	}
	if sum.Requests != sum.Successes+sum.Shed+sum.Errors {
		t.Fatalf("tally mismatch: %d requests vs %d+%d+%d", sum.Requests, sum.Successes, sum.Shed, sum.Errors)
	}
	if sum.Shed == 0 {
		t.Fatal("stub sheds every 4th search but summary counted none")
	}
	if sum.Errors != 0 {
		t.Fatalf("unexpected errors: %d", sum.Errors)
	}
	if sum.QPS <= 0 {
		t.Fatalf("QPS = %v, want > 0", sum.QPS)
	}
	if sum.LatencyP50Ms <= 0 || sum.LatencyP99Ms < sum.LatencyP50Ms || sum.LatencyMaxMs < sum.LatencyP99Ms {
		t.Fatalf("implausible percentiles: p50=%v p99=%v max=%v",
			sum.LatencyP50Ms, sum.LatencyP99Ms, sum.LatencyMaxMs)
	}
	if int64(sum.Reads) != searches.Load() || int64(sum.Writes) != adds.Load() {
		t.Fatalf("client tallies (%d reads, %d writes) disagree with server (%d, %d)",
			sum.Reads, sum.Writes, searches.Load(), adds.Load())
	}
	if sum.ServerKernel != "avx2" || sum.ServerKernelSource != "auto" || len(sum.ServerCPUFeatures) != 3 {
		t.Fatalf("stats kernel fields not echoed: kernel=%q source=%q features=%v",
			sum.ServerKernel, sum.ServerKernelSource, sum.ServerCPUFeatures)
	}
}

// TestRunQPSCap checks the shared pacer actually bounds the aggregate rate.
func TestRunQPSCap(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]interface{}{"dim": 4})
	})
	mux.HandleFunc("/search", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]interface{}{"results": []interface{}{}})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	sum, err := run(config{
		addr:        ts.URL,
		qps:         50,
		concurrency: 4,
		duration:    500 * time.Millisecond,
		k:           3,
		seed:        1,
		timeout:     time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 50 QPS over 0.5s is ~25 requests; allow slack for ticker phase but a
	// closed loop with 4 workers against a stub would do thousands.
	if sum.Requests > 40 {
		t.Fatalf("pacer did not bound the rate: %d requests in %.1fs at 50 QPS",
			sum.Requests, sum.DurationSeconds)
	}
	if sum.Successes == 0 {
		t.Fatal("no successes under QPS cap")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := run(config{concurrency: 0}); err == nil {
		t.Error("concurrency 0 accepted")
	}
	if _, err := run(config{concurrency: 1, writeFraction: 1.5}); err == nil {
		t.Error("write-fraction 1.5 accepted")
	}
}
