// Command dblsh-loadgen drives a running dblsh-server with a closed-loop
// read/write workload and prints a JSON summary of what it measured.
//
// Each of -concurrency workers loops for -duration: it draws a random
// vector, flips a -write-fraction coin, and either POSTs /search (with -k)
// or POSTs /vectors. With -qps > 0 a shared pacer bounds the aggregate
// request rate; with -qps 0 the loop is closed — each worker fires its
// next request as soon as the previous one returns, which is the usual way
// to find the server's saturation throughput.
//
// The summary distinguishes successes, sheds (429, the admission
// controller refusing work) and errors (everything else, including
// transport failures), and reports achieved QPS plus mean/p50/p95/p99/max
// latency over successful requests only — shed responses return in
// microseconds and would flatter the percentiles.
//
// The vector dimension — and, when the server reports them, the active
// distance kernel, its selection source, and the server's CPU features —
// are discovered from GET /stats, retried for a few seconds so the tool
// can be started alongside a server that is still replaying its WAL:
//
//	dblsh-loadgen -addr http://localhost:8080 -duration 10s \
//	    -concurrency 8 -write-fraction 0.1 -k 10
//
// With -cpuinfo the tool skips the workload entirely and prints the LOCAL
// process's kernel selection and detected CPU features as JSON — the hook
// scripts/bench.sh uses to stamp benchmark artifacts with the hardware
// they ran on.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"dblsh/internal/vec"
	"dblsh/internal/vec/cpu"
)

type config struct {
	addr          string
	qps           float64
	concurrency   int
	duration      time.Duration
	writeFraction float64
	k             int
	seed          int64
	timeout       time.Duration
}

// summary is the JSON report printed on stdout.
type summary struct {
	DurationSeconds float64 `json:"duration_seconds"`
	Concurrency     int     `json:"concurrency"`
	Requests        int     `json:"requests"`
	Successes       int     `json:"successes"`
	Shed            int     `json:"shed"`
	Errors          int     `json:"errors"`
	Reads           int     `json:"reads"`
	Writes          int     `json:"writes"`
	QPS             float64 `json:"qps"`
	LatencyMeanMs   float64 `json:"latency_mean_ms"`
	LatencyP50Ms    float64 `json:"latency_p50_ms"`
	LatencyP95Ms    float64 `json:"latency_p95_ms"`
	LatencyP99Ms    float64 `json:"latency_p99_ms"`
	LatencyMaxMs    float64 `json:"latency_max_ms"`
	// Quantized pre-filter activity summed from the search responses'
	// stats: how many candidates the int8 pre-filter swept and rejected.
	// The fraction is pruned/swept (0 when the pre-filter is off or the
	// adaptive gate kept it closed).
	QuantPruned         int     `json:"quant_pruned"`
	QuantSwept          int     `json:"quant_swept"`
	QuantPrunedFraction float64 `json:"quant_pruned_fraction"`
	// Intra-query fan-out activity summed from the search responses' stats:
	// ladder rounds that visited shards concurrently, and the total wall
	// time of those rounds' slowest shard gathers. Zero against a
	// single-shard or sequentially-configured server.
	ParallelRounds int   `json:"parallel_rounds"`
	StragglerNs    int64 `json:"straggler_ns"`
	// What /stats said the server was running: the active distance kernel,
	// how it was selected (auto/env/forced), and the CPU features the
	// server detected. Empty against servers predating the fields.
	ServerKernel       string   `json:"server_kernel,omitempty"`
	ServerKernelSource string   `json:"server_kernel_source,omitempty"`
	ServerCPUFeatures  []string `json:"server_cpu_features,omitempty"`
}

// cpuinfo is the -cpuinfo report: the LOCAL process's kernel selection and
// feature detection, same field names the server exposes in /stats.
type cpuinfo struct {
	Kernel       string   `json:"kernel"`
	KernelSource string   `json:"kernel_source"`
	CPUFeatures  []string `json:"cpu_features"`
}

func main() {
	cfg := config{}
	flag.StringVar(&cfg.addr, "addr", "http://localhost:8080", "base URL of the dblsh-server to drive")
	flag.Float64Var(&cfg.qps, "qps", 0, "aggregate request rate cap; 0 runs closed-loop at full speed")
	flag.IntVar(&cfg.concurrency, "concurrency", 4, "concurrent workers")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "how long to drive load")
	flag.Float64Var(&cfg.writeFraction, "write-fraction", 0.1, "fraction of requests that are adds (0..1); the rest are searches")
	flag.IntVar(&cfg.k, "k", 10, "neighbors requested per search")
	flag.Int64Var(&cfg.seed, "seed", 1, "PRNG seed for the workload")
	flag.DurationVar(&cfg.timeout, "timeout", 5*time.Second, "per-request client timeout")
	cpuinfoMode := flag.Bool("cpuinfo", false, "print this machine's kernel selection and CPU features as JSON and exit")
	flag.Parse()

	if *cpuinfoMode {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cpuinfo{
			Kernel:       vec.KernelName(),
			KernelSource: vec.KernelSource(),
			CPUFeatures:  cpu.Detect().List(),
		}); err != nil {
			fmt.Fprintln(os.Stderr, "dblsh-loadgen:", err)
			os.Exit(1)
		}
		return
	}

	sum, err := run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dblsh-loadgen:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		fmt.Fprintln(os.Stderr, "dblsh-loadgen:", err)
		os.Exit(1)
	}
}

// serverStats is the slice of GET /stats the load generator cares about:
// the index dimension (required — it shapes the workload) plus the
// kernel/CPU fields newer servers report, echoed into the summary.
type serverStats struct {
	Dim          int      `json:"dim"`
	Kernel       string   `json:"kernel"`
	KernelSource string   `json:"kernel_source"`
	CPUFeatures  []string `json:"cpu_features"`
}

// fetchStats asks GET /stats for the index dimension and kernel info,
// retrying while the server comes up (WAL replay can take a while on a
// large store). Only a missing or non-positive dim is an error; the kernel
// fields are optional so older servers still work.
func fetchStats(client *http.Client, addr string, patience time.Duration) (serverStats, error) {
	deadline := time.Now().Add(patience)
	var lastErr error
	for {
		st, err := func() (serverStats, error) {
			resp, err := client.Get(addr + "/stats")
			if err != nil {
				return serverStats{}, err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				io.Copy(io.Discard, resp.Body)
				return serverStats{}, fmt.Errorf("/stats returned %s", resp.Status)
			}
			var stats serverStats
			if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
				return serverStats{}, err
			}
			if stats.Dim <= 0 {
				return serverStats{}, fmt.Errorf("/stats reported dim %d", stats.Dim)
			}
			return stats, nil
		}()
		if err == nil {
			return st, nil
		}
		lastErr = err
		if time.Now().After(deadline) {
			return serverStats{}, fmt.Errorf("server at %s not ready: %w", addr, lastErr)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// workerResult is one worker's tally, merged after the run.
type workerResult struct {
	successes, shed, errors int
	reads, writes           int
	quantPruned, quantSwept int
	parallelRounds          int
	stragglerNs             int64
	latencies               []time.Duration
}

func run(cfg config) (summary, error) {
	if cfg.concurrency <= 0 {
		return summary{}, fmt.Errorf("concurrency must be positive")
	}
	if cfg.writeFraction < 0 || cfg.writeFraction > 1 {
		return summary{}, fmt.Errorf("write-fraction must be in [0,1]")
	}
	client := &http.Client{Timeout: cfg.timeout}
	stats, err := fetchStats(client, cfg.addr, 10*time.Second)
	if err != nil {
		return summary{}, err
	}
	dim := stats.Dim

	// The pacer hands out at most qps tokens per second, shared across
	// workers. A nil channel (qps 0) never blocks reception via the
	// select-default below... it cannot: nil receives block forever, so
	// instead workers skip the pacer entirely when it is nil.
	var pace <-chan time.Time
	var pacer *time.Ticker
	if cfg.qps > 0 {
		pacer = time.NewTicker(time.Duration(float64(time.Second) / cfg.qps))
		defer pacer.Stop()
		pace = pacer.C
	}

	stop := time.Now().Add(cfg.duration)
	results := make([]workerResult, cfg.concurrency)
	var wg sync.WaitGroup
	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(w)*7919))
			res := &results[w]
			vec := make([]float32, dim)
			for time.Now().Before(stop) {
				if pace != nil {
					select {
					case <-pace:
					case <-time.After(time.Until(stop)):
						return
					}
				}
				for i := range vec {
					vec[i] = rng.Float32()
				}
				isWrite := rng.Float64() < cfg.writeFraction
				var url string
				var body interface{}
				if isWrite {
					url = cfg.addr + "/vectors"
					body = map[string]interface{}{"vector": vec}
					res.writes++
				} else {
					url = cfg.addr + "/search"
					body = map[string]interface{}{"vector": vec, "k": cfg.k}
					res.reads++
				}
				payload, err := json.Marshal(body)
				if err != nil {
					res.errors++
					continue
				}
				start := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(payload))
				elapsed := time.Since(start)
				if err != nil {
					res.errors++
					continue
				}
				if !isWrite && resp.StatusCode == http.StatusOK {
					// Fold the response's pre-filter counters into the
					// run summary; a decode failure only loses the tally.
					var sr struct {
						Stats struct {
							QuantPruned    int   `json:"quant_pruned"`
							QuantSwept     int   `json:"quant_swept"`
							ParallelRounds int   `json:"parallel_rounds"`
							StragglerNs    int64 `json:"straggler_ns"`
						} `json:"stats"`
					}
					if err := json.NewDecoder(resp.Body).Decode(&sr); err == nil {
						res.quantPruned += sr.Stats.QuantPruned
						res.quantSwept += sr.Stats.QuantSwept
						res.parallelRounds += sr.Stats.ParallelRounds
						res.stragglerNs += sr.Stats.StragglerNs
					}
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
					res.successes++
					res.latencies = append(res.latencies, elapsed)
				case resp.StatusCode == http.StatusTooManyRequests:
					res.shed++
				default:
					res.errors++
				}
			}
		}(w)
	}
	started := time.Now()
	wg.Wait()
	elapsed := time.Since(started)
	if elapsed < cfg.duration {
		elapsed = cfg.duration
	}

	var all []time.Duration
	sum := summary{
		Concurrency:        cfg.concurrency,
		DurationSeconds:    elapsed.Seconds(),
		ServerKernel:       stats.Kernel,
		ServerKernelSource: stats.KernelSource,
		ServerCPUFeatures:  stats.CPUFeatures,
	}
	for i := range results {
		r := &results[i]
		sum.Successes += r.successes
		sum.Shed += r.shed
		sum.Errors += r.errors
		sum.Reads += r.reads
		sum.Writes += r.writes
		sum.QuantPruned += r.quantPruned
		sum.QuantSwept += r.quantSwept
		sum.ParallelRounds += r.parallelRounds
		sum.StragglerNs += r.stragglerNs
		all = append(all, r.latencies...)
	}
	sum.Requests = sum.Successes + sum.Shed + sum.Errors
	if sum.QuantSwept > 0 {
		sum.QuantPrunedFraction = float64(sum.QuantPruned) / float64(sum.QuantSwept)
	}
	sum.QPS = float64(sum.Successes) / elapsed.Seconds()
	sum.LatencyMeanMs = ms(mean(all))
	sum.LatencyP50Ms = ms(percentile(all, 50))
	sum.LatencyP95Ms = ms(percentile(all, 95))
	sum.LatencyP99Ms = ms(percentile(all, 99))
	sum.LatencyMaxMs = ms(percentile(all, 100))
	return sum, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func mean(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range ds {
		total += d
	}
	return total / time.Duration(len(ds))
}

// percentile returns the p-th percentile (nearest-rank) of ds, sorting a
// copy; p=100 is the maximum. Zero for an empty slice.
func percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
