// Command dblsh-lint is the vet driver for dblsh's project-specific
// analyzer suite (internal/analysis). Build it once, then run it over the
// tree through the vet front end:
//
//	go build -o bin/dblsh-lint ./cmd/dblsh-lint
//	go vet -vettool=$(pwd)/bin/dblsh-lint ./...
//
// scripts/lint.sh wraps exactly that invocation; CI runs the same script.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"dblsh/internal/analysis"
)

func main() {
	unitchecker.Main(analysis.All()...)
}
