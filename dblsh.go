// Package dblsh provides fast high-dimensional approximate nearest neighbor
// (ANN) search with probabilistic quality guarantees, implementing DB-LSH
// ("DB-LSH: Locality-Sensitive Hashing with Query-based Dynamic Bucketing",
// Tian, Zhao, Zhou — ICDE 2022).
//
// DB-LSH hashes every point into L low-dimensional projected spaces with
// 2-stable random projections and indexes each projected space with an
// R*-tree. Queries build *query-centric* hypercubic buckets on the fly —
// window queries whose width grows geometrically with the search radius —
// which removes the hash-boundary problem of classical LSH while keeping
// sub-linear query cost: O(n^ρ* d log n) with ρ* ≤ 1/c^4.746 at the default
// bucket width (Lemma 3 / Theorem 2 of the paper).
//
// # Quick start
//
//	data := [][]float32{...}            // your vectors, all the same length
//	idx, err := dblsh.New(data, dblsh.Options{})
//	if err != nil { ... }
//	hits := idx.Search(query, 10)       // 10 approximate nearest neighbors
//	for _, h := range hits {
//	    fmt.Println(h.ID, h.Dist)       // index into data, Euclidean distance
//	}
//
// The zero Options give the paper's defaults: approximation ratio c = 1.5,
// initial bucket width w0 = 4c², L = 5 projected spaces, and K derived from
// the dataset size. All randomness is seeded, so the same Options and data
// always produce the same index and the same answers.
//
// # Per-query options
//
// Options freezes only the index's structural parameters. The query-phase
// knobs — candidate budget, early-stop factor, radius cap — are per-query
// trade-offs, set with functional SearchOption values on the *Opts entry
// points so one index can serve heterogeneous traffic:
//
//	var st dblsh.Stats
//	hits, err := idx.SearchOpts(query, 10,
//	    dblsh.WithCandidateBudget(25),          // cheap: verify few candidates
//	    dblsh.WithEarlyStop(1.5),               // stop the radius ladder early
//	    dblsh.WithContext(ctx),                 // honor the request deadline
//	    dblsh.WithFilter(func(id int) bool {    // ACL pushdown: skip before
//	        return acl.Allowed(tenant, id)      // the distance computation
//	    }),
//	    dblsh.WithStats(&st),                   // observe the work done
//	)
//
// Search, SearchBatch and SearchRadius are wrappers over the same machinery
// with no options applied.
package dblsh

import (
	"errors"
	"fmt"

	"dblsh/internal/core"
	"dblsh/internal/vec"
)

// Result is one retrieved neighbor: the index of the point in the data the
// index was built over, and its Euclidean distance to the query.
type Result struct {
	ID   int
	Dist float64
}

// Options configures index construction. The zero value is ready to use and
// mirrors the paper's experimental defaults.
type Options struct {
	// C is the approximation ratio (> 1): returned points are c²-approximate
	// nearest neighbors with constant probability (Theorem 1). Smaller C
	// means better accuracy and more work per query. Default 1.5.
	C float64

	// W0 overrides the initial bucket width. Default 4C² (γ = 2), the
	// operating point with bound exponent α = 4.746.
	W0 float64

	// K is the number of hash functions per projected space; 0 uses the
	// paper's experimental setting (10, or 12 for datasets of 1M+ points).
	K int

	// L is the number of projected spaces (and R*-trees); 0 uses the
	// paper's setting of 5.
	L int

	// T is the candidate constant: a (c,k)-ANN query verifies at most
	// 2·T·L + k exact distances. Larger T trades time for accuracy.
	// Default 100.
	T int

	// Seed makes hashing reproducible. The default 0 is a valid seed.
	Seed int64

	// EarlyStopFactor loosens the query-termination test: a query stops once
	// its k-th candidate is within EarlyStopFactor·C·r of the current search
	// radius r instead of C·r. Values above 1 stop earlier, trading recall
	// for latency. 0 (or 1) reproduces the paper's Algorithm 2 exactly.
	EarlyStopFactor float64
}

// Index answers approximate nearest neighbor queries over a fixed dataset.
// It is safe for concurrent use.
type Index struct {
	inner *core.Index
	dim   int
}

// New builds an index over data, copying the vectors into an internal
// contiguous layout. All rows must have the same nonzero length.
func New(data [][]float32, opts Options) (*Index, error) {
	if len(data) == 0 {
		return nil, errors.New("dblsh: empty dataset")
	}
	dim := len(data[0])
	if dim == 0 {
		return nil, errors.New("dblsh: zero-dimensional vectors")
	}
	m := vec.NewMatrix(len(data), dim)
	for i, row := range data {
		if len(row) != dim {
			return nil, fmt.Errorf("dblsh: row %d has dimension %d, want %d", i, len(row), dim)
		}
		m.SetRow(i, row)
	}
	return NewFromFlat(m.Data(), len(data), dim, opts)
}

// NewFromFlat builds an index over n vectors of dimension dim stored
// row-major in flat. The slice is used directly without copying; the caller
// must not mutate it while the index is alive. len(flat) must equal n*dim.
func NewFromFlat(flat []float32, n, dim int, opts Options) (*Index, error) {
	if n <= 0 || dim <= 0 {
		return nil, fmt.Errorf("dblsh: invalid shape %d×%d", n, dim)
	}
	if len(flat) != n*dim {
		return nil, fmt.Errorf("dblsh: flat data has %d values, want %d×%d = %d", len(flat), n, dim, n*dim)
	}
	if opts.C != 0 && opts.C <= 1 {
		return nil, fmt.Errorf("dblsh: approximation ratio C must exceed 1, got %v", opts.C)
	}
	if opts.K < 0 || opts.L < 0 || opts.T < 0 {
		return nil, errors.New("dblsh: K, L and T must be non-negative")
	}
	if opts.EarlyStopFactor < 0 || (opts.EarlyStopFactor > 0 && opts.EarlyStopFactor < 1) {
		return nil, fmt.Errorf("dblsh: EarlyStopFactor must be ≥ 1 (or 0 for the default), got %v", opts.EarlyStopFactor)
	}
	m := vec.WrapMatrix(flat, n, dim)
	inner := core.Build(m, core.Config{
		C:               opts.C,
		W0:              opts.W0,
		K:               opts.K,
		L:               opts.L,
		T:               opts.T,
		Seed:            opts.Seed,
		EarlyStopFactor: opts.EarlyStopFactor,
	})
	return &Index{inner: inner, dim: dim}, nil
}

// Len returns the number of indexed vectors.
func (idx *Index) Len() int { return idx.inner.Size() }

// Dim returns the vector dimensionality.
func (idx *Index) Dim() int { return idx.dim }

// Search returns the k approximate nearest neighbors of q, sorted by
// ascending distance. Fewer than k results are returned only when the
// dataset is smaller than k. It panics if len(q) != Dim() or k <= 0,
// mirroring slice-indexing semantics for programmer errors. It is
// SearchOpts with no options.
func (idx *Index) Search(q []float32, k int) []Result {
	out, _ := idx.SearchOpts(q, k)
	return out
}

// SearchOne returns the single approximate nearest neighbor of q.
func (idx *Index) SearchOne(q []float32) (Result, bool) {
	nb, ok := idx.inner.ANN(q)
	return Result{ID: nb.ID, Dist: nb.Dist}, ok
}

// Searcher is a reusable per-goroutine query context. For query-heavy loops
// it avoids the internal pool round-trip of Index.Search and exposes query
// statistics.
type Searcher struct {
	inner *core.Searcher
}

// NewSearcher returns a searcher bound to the index. A Searcher must only be
// used from one goroutine at a time.
func (idx *Index) NewSearcher() *Searcher {
	return &Searcher{inner: idx.inner.NewSearcher()}
}

// Search behaves like Index.Search on the bound index. It is SearchOpts
// with no options.
func (s *Searcher) Search(q []float32, k int) []Result {
	out, _ := s.SearchOpts(q, k)
	return out
}

// Stats describes the work done by the searcher's most recent query.
type Stats struct {
	// Candidates is the number of exact distance computations performed.
	Candidates int
	// Rounds is the number of (r,c)-NN radius levels visited (Algorithm 2).
	Rounds int
	// FinalRadius is the search radius at which the query terminated.
	FinalRadius float64
}

// LastStats reports statistics for the most recent query on this searcher.
func (s *Searcher) LastStats() Stats {
	return statsFromCore(s.inner.LastStats())
}

// Params reports the effective index parameters after defaulting and
// derivation.
type Params struct {
	C, W0 float64
	K, L  int
	T     int
}

// Params returns the parameters the index was built with.
func (idx *Index) Params() Params {
	cfg := idx.inner.Params()
	return Params{C: cfg.C, W0: cfg.W0, K: cfg.K, L: cfg.L, T: cfg.T}
}

// IndexSizeBytes estimates the memory held by the projections and trees,
// excluding the original vectors.
func (idx *Index) IndexSizeBytes() int64 { return idx.inner.IndexSizeBytes() }

// Add inserts a vector into the index and returns its id (the next row
// number). Add must not be called concurrently with searches or other Adds;
// quiesce queries first. Searchers created before an Add remain valid.
func (idx *Index) Add(v []float32) (int, error) {
	if len(v) != idx.dim {
		return 0, fmt.Errorf("dblsh: vector dim %d, index dim %d", len(v), idx.dim)
	}
	return idx.inner.Insert(v), nil
}

// SearchBatch answers many queries in parallel across GOMAXPROCS workers,
// each with its own Searcher. results[i] corresponds to queries[i]. It must
// not run concurrently with Add or Delete. It is SearchBatchOpts with no
// options.
func (idx *Index) SearchBatch(queries [][]float32, k int) [][]Result {
	out, _ := idx.SearchBatchOpts(queries, k)
	return out
}

// Delete removes vector id from future search results. The underlying
// storage is tombstoned, not reclaimed — rebuild the index (New over the
// surviving vectors) when Deleted() grows to a large fraction of Len().
// Delete must not run concurrently with searches or mutations. It returns
// false when id is out of range or already deleted.
func (idx *Index) Delete(id int) bool { return idx.inner.Delete(id) }

// Deleted returns the number of tombstoned vectors.
func (idx *Index) Deleted() int { return idx.inner.Deleted() }

// SearchRadius answers a single (r,c)-NN query (Algorithm 1 of the paper):
// if some indexed point lies within distance r of q, it returns a point
// within c·r with constant probability; if no point lies within c·r it
// returns ok = false. It is the primitive Search's radius ladder is built
// from, exposed for callers that know their target radius. It is
// SearchRadiusOpts with no options.
func (s *Searcher) SearchRadius(q []float32, r float64) (Result, bool) {
	nb, ok, _ := s.SearchRadiusOpts(q, r)
	return nb, ok
}
