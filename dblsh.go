// Package dblsh provides fast high-dimensional approximate nearest neighbor
// (ANN) search with probabilistic quality guarantees, implementing DB-LSH
// ("DB-LSH: Locality-Sensitive Hashing with Query-based Dynamic Bucketing",
// Tian, Zhao, Zhou — ICDE 2022).
//
// DB-LSH hashes every point into L low-dimensional projected spaces with
// 2-stable random projections and indexes each projected space with an
// R*-tree. Queries build *query-centric* hypercubic buckets on the fly —
// window queries whose width grows geometrically with the search radius —
// which removes the hash-boundary problem of classical LSH while keeping
// sub-linear query cost: O(n^ρ* d log n) with ρ* ≤ 1/c^4.746 at the default
// bucket width (Lemma 3 / Theorem 2 of the paper).
//
// # Quick start
//
//	data := [][]float32{...}            // your vectors, all the same length
//	idx, err := dblsh.New(data, dblsh.Options{})
//	if err != nil { ... }
//	hits := idx.Search(query, 10)       // 10 approximate nearest neighbors
//	for _, h := range hits {
//	    fmt.Println(h.ID, h.Dist)       // index into data, Euclidean distance
//	}
//
// The zero Options give the paper's defaults: approximation ratio c = 1.5,
// initial bucket width w0 = 4c², L = 5 projected spaces, and K derived from
// the dataset size. All randomness is seeded, so the same Options and data
// always produce the same index and the same answers.
//
// # Per-query options
//
// Options freezes only the index's structural parameters. The query-phase
// knobs — candidate budget, early-stop factor, radius cap — are per-query
// trade-offs, set with functional SearchOption values on the *Opts entry
// points so one index can serve heterogeneous traffic:
//
//	var st dblsh.Stats
//	hits, err := idx.SearchOpts(query, 10,
//	    dblsh.WithCandidateBudget(25),          // cheap: verify few candidates
//	    dblsh.WithEarlyStop(1.5),               // stop the radius ladder early
//	    dblsh.WithContext(ctx),                 // honor the request deadline
//	    dblsh.WithFilter(func(id int) bool {    // ACL pushdown: skip before
//	        return acl.Allowed(tenant, id)      // the distance computation
//	    }),
//	    dblsh.WithStats(&st),                   // observe the work done
//	)
//
// Search, SearchBatch and SearchRadius are wrappers over the same machinery
// with no options applied.
//
// # Metrics
//
// Options.Metric selects the distance the index searches under. The paper's
// machinery is correct only for Euclidean distance, so non-Euclidean
// metrics are implemented as reductions to Euclidean search: Cosine
// unit-normalizes vectors at ingest (for unit vectors L2 order is angular
// order; Result.Dist is the cosine distance 1−cos θ), and InnerProduct
// applies the augmented-dimension MIPS reduction (Result.Dist is the
// negated inner product, so ascending order ranks by descending ⟨q,x⟩):
//
//	idx, err := dblsh.New(embeddings, dblsh.Options{Metric: dblsh.Cosine})
//	hits := idx.Search(queryEmbedding, 10)   // hits[i].Dist = 1 − cos θ
//
// The radius ladder itself always runs in the internal L2 space, staying
// faithful to Algorithm 2; only the boundary speaks the chosen metric.
//
// # Concurrency and sharding
//
// An Index is safe for fully concurrent use: searches, Add, Delete,
// compaction and WriteTo may all overlap. Internally the dataset is
// partitioned across Options.Shards independent shards (default 1), each a
// complete DB-LSH index over its stripe guarded by its own read-write lock.
// A search runs the radius ladder round-synchronized across all shards
// under per-round read locks, merging candidates into one global top-k
// with one budget and one termination test — the same work profile as a
// monolithic index, partitioned. An Add or Delete write-locks exactly one
// shard, so with S shards a mutation stalls at most one round of one
// shard's sub-queries instead of the whole index:
//
//	idx, err := dblsh.New(data, dblsh.Options{Shards: 8})
//	go func() { idx.Add(v) }()          // locks one shard briefly
//	hits := idx.Search(q, 10)           // the other 7 keep answering
//
// Delete only tombstones; CompactShard rebuilds one shard from its live
// vectors — dropping the tombstone debt — while every shard, including the
// one being compacted, keeps serving (the rebuild holds no lock; only a
// short swap does). Options.CompactFraction automates this per shard in
// the background. Global ids are stable across all of it.
//
// # Durability
//
// Open turns the index into a durable store backed by a directory: a v3
// snapshot (the WriteTo format) plus a write-ahead op log of every Add and
// Delete since that snapshot. A process killed without Close reopens with
// every mutation the sync policy had fsynced, under the same ids; a
// truncated final log record (a crash mid-append) is detected and dropped:
//
//	idx, err := dblsh.Open(dir, dblsh.Options{
//	    Dim:             768,                  // required when dir is empty
//	    Sync:            dblsh.SyncAlways,     // fsync before acknowledging
//	    CheckpointEvery: time.Minute,          // absorb the log in background
//	})
//	defer idx.Close()
//	id, err := idx.Add(v)                      // durable once Add returns
//
// Checkpoint (or the background checkpointer) rewrites the snapshot shard
// by shard under per-shard read locks and truncates the log, bounding both
// recovery time and disk growth while the store keeps serving. Save bridges
// the other way: it writes any in-memory index as the checkpoint of a fresh
// directory.
package dblsh

import (
	"errors"
	"fmt"
	"time"

	"dblsh/internal/core"
	"dblsh/internal/metric"
	"dblsh/internal/shard"
	"dblsh/internal/vec"
)

// Result is one retrieved neighbor: the index of the point in the data the
// index was built over, and its distance to the query in the index's
// metric — Euclidean distance by default, cosine distance under Cosine,
// and the negated inner product −⟨q,x⟩ under InnerProduct (so ascending
// order always means "best first").
type Result struct {
	ID   int
	Dist float64
}

// Options configures index construction. The zero value is ready to use and
// mirrors the paper's experimental defaults.
type Options struct {
	// C is the approximation ratio (> 1): returned points are c²-approximate
	// nearest neighbors with constant probability (Theorem 1). Smaller C
	// means better accuracy and more work per query. Default 1.5.
	C float64

	// W0 overrides the initial bucket width. Default 4C² (γ = 2), the
	// operating point with bound exponent α = 4.746.
	W0 float64

	// K is the number of hash functions per projected space; 0 uses the
	// paper's experimental setting (10, or 12 for datasets of 1M+ points).
	K int

	// L is the number of projected spaces (and R*-trees); 0 uses the
	// paper's setting of 5.
	L int

	// T is the candidate constant: a (c,k)-ANN query verifies at most
	// 2·T·L + k exact distances. Larger T trades time for accuracy.
	// Default 100.
	T int

	// Seed makes hashing reproducible. The default 0 is a valid seed.
	Seed int64

	// EarlyStopFactor loosens the query-termination test: a query stops once
	// its k-th candidate is within EarlyStopFactor·C·r of the current search
	// radius r instead of C·r. Values above 1 stop earlier, trading recall
	// for latency. 0 (or 1) reproduces the paper's Algorithm 2 exactly.
	EarlyStopFactor float64

	// Shards partitions the dataset across that many independent shards,
	// each with its own lock, so a mutation write-locks 1/Shards of the
	// index and compaction runs per shard. 0 or 1 keeps the classic
	// single-shard index. A query runs one radius ladder round-synchronized
	// across all shards — one merged top-k, one candidate budget, one
	// termination test — so total verification work matches the
	// single-shard index; the residual cost is S tree traversals per
	// round. Writes and compaction gain availability. With more than one
	// shard NewFromFlat copies the data into per-shard layouts instead of
	// adopting the caller's slice.
	Shards int

	// CompactFraction, when positive, enables automatic background
	// compaction: a Delete that pushes a shard's tombstoned fraction to the
	// threshold schedules a rebuild of that shard from its live vectors.
	// Must be below 1. 0 disables; reclaim manually with CompactShard.
	CompactFraction float64

	// Parallelism bounds how many shards a single query visits
	// concurrently within each ladder round. 0 (the default) picks
	// min(GOMAXPROCS, Shards) per query; 1 forces the sequential
	// reference path; n > 1 uses up to n workers per round. Results are
	// bit-identical at every setting — the fan-out changes only how the
	// round's work is scheduled, never what the merge consumes. Helper
	// workers come from one pool sized to GOMAXPROCS and shared by all
	// concurrent queries of the index, so raising this cannot oversubscribe
	// the machine under concurrent load; it matters most for
	// latency-sensitive single queries on otherwise idle cores. Override
	// per query with WithParallelism, or at runtime with SetParallelism.
	Parallelism int

	// Metric selects the distance the index searches under: Euclidean (the
	// default), Cosine, or InnerProduct. Non-Euclidean metrics transform
	// vectors at the boundary (which forces a copy of the input data) and
	// run the paper's machinery unchanged over the transformed space; see
	// the Metric constants for what Result.Dist means under each.
	Metric Metric

	// NormBound overrides the inner-product reduction's norm bound M, which
	// otherwise is fitted as the maximum vector norm of the build dataset.
	// Every vector ever ingested must satisfy ‖v‖ ≤ M, so set a bound with
	// headroom when Adds may exceed the build-time maximum. Only valid with
	// Metric == InnerProduct.
	NormBound float64

	// Quantize controls the int8 quantized pre-filter on the verification
	// path: "" or "on" (the default) maintains an int8 scalar-quantized
	// mirror of the dataset (and of every R*-tree leaf) and uses it to
	// prune candidates through a provable lower bound before any exact
	// float32 distance work; "off" restores the exact single-stage path.
	// The pre-filter never changes results — a candidate is pruned only
	// when its quantized lower bound already exceeds the current k-th best
	// distance, which the exact kernel would reject too — it only changes
	// how much float32 work rejection costs. The setting is not persisted:
	// an index reopened from a durable store uses the Options passed to
	// Open (default on), and the mirrors are rebuilt from the restored
	// vectors.
	Quantize string

	// The fields below configure the durability subsystem and apply only to
	// indexes opened with Open; New and NewFromFlat build purely in-memory
	// indexes and ignore them.

	// Dim is the vector dimensionality of a durable store created in an
	// empty directory (there is no dataset to infer it from). Once the
	// directory holds a checkpoint the stored dimensionality wins, and a
	// non-zero Dim that disagrees with it is an error.
	Dim int

	// Sync selects when logged mutations are fsynced to stable storage:
	// SyncAlways (the zero value — every mutation, before it is
	// acknowledged), SyncInterval (a background flush every SyncEvery), or
	// SyncNever (the OS decides). See the SyncPolicy constants for the loss
	// window each policy bounds.
	Sync SyncPolicy

	// SyncEvery is the background fsync cadence under SyncInterval.
	// 0 defaults to 100ms. Ignored under the other policies.
	SyncEvery time.Duration

	// CheckpointEvery, when positive, runs a background checkpoint at that
	// cadence (skipped while no mutations are pending): the v3 snapshot is
	// rewritten shard by shard and the op log truncated, bounding both
	// recovery time and log growth. 0 leaves checkpointing to explicit
	// Checkpoint calls.
	CheckpointEvery time.Duration
}

// Index answers approximate nearest neighbor queries. It is safe for fully
// concurrent use, including searches overlapping Add, Delete, compaction
// and WriteTo.
type Index struct {
	set *shard.Set
	dim int // user-facing dimensionality; the internal space may be wider
	met metric.Metric
	dur *durable // non-nil only for indexes opened with Open
}

// New builds an index over data, copying the vectors into an internal
// contiguous layout. All rows must have the same nonzero length.
func New(data [][]float32, opts Options) (*Index, error) {
	if len(data) == 0 {
		return nil, errors.New("dblsh: empty dataset")
	}
	dim := len(data[0])
	if dim == 0 {
		return nil, errors.New("dblsh: zero-dimensional vectors")
	}
	m := vec.NewMatrix(len(data), dim)
	for i, row := range data {
		if len(row) != dim {
			return nil, fmt.Errorf("dblsh: row %d has dimension %d, want %d", i, len(row), dim)
		}
		m.SetRow(i, row)
	}
	return NewFromFlat(m.Data(), len(data), dim, opts)
}

// NewFromFlat builds an index over n vectors of dimension dim stored
// row-major in flat. Under the default Euclidean metric with one shard the
// slice is used directly without copying, and the caller must not mutate it
// while the index is alive; sharded or non-Euclidean indexes copy (and
// transform) the data into internal layouts. len(flat) must equal n*dim.
func NewFromFlat(flat []float32, n, dim int, opts Options) (*Index, error) {
	if n <= 0 || dim <= 0 {
		return nil, fmt.Errorf("dblsh: invalid shape %d×%d", n, dim)
	}
	if len(flat) != n*dim {
		return nil, fmt.Errorf("dblsh: flat data has %d values, want %d×%d = %d", len(flat), n, dim, n*dim)
	}
	return newIndex(flat, n, dim, opts)
}

// newIndex validates opts and builds an index over n ≥ 0 rows. It is
// NewFromFlat without the non-empty requirement: Open starts a fresh
// durable store from an empty index and grows it by WAL replay.
func newIndex(flat []float32, n, dim int, opts Options) (*Index, error) {
	if opts.C != 0 && opts.C <= 1 {
		return nil, fmt.Errorf("dblsh: approximation ratio C must exceed 1, got %v", opts.C)
	}
	if opts.K < 0 || opts.L < 0 || opts.T < 0 {
		return nil, errors.New("dblsh: K, L and T must be non-negative")
	}
	if opts.EarlyStopFactor < 0 || (opts.EarlyStopFactor > 0 && opts.EarlyStopFactor < 1) {
		return nil, fmt.Errorf("dblsh: EarlyStopFactor must be ≥ 1 (or 0 for the default), got %v", opts.EarlyStopFactor)
	}
	if opts.Shards < 0 {
		return nil, fmt.Errorf("dblsh: Shards must be non-negative, got %d", opts.Shards)
	}
	if opts.CompactFraction < 0 || opts.CompactFraction >= 1 {
		return nil, fmt.Errorf("dblsh: CompactFraction must be in [0,1), got %v", opts.CompactFraction)
	}
	if opts.Parallelism < 0 {
		return nil, fmt.Errorf("dblsh: Parallelism must be non-negative, got %d", opts.Parallelism)
	}
	switch opts.Quantize {
	case "", "on", "off":
	default:
		return nil, fmt.Errorf(`dblsh: Quantize must be "on" or "off", got %q`, opts.Quantize)
	}
	met, err := buildMetric(opts, flat, n, dim)
	if err != nil {
		return nil, err
	}
	iflat, idim := flat, dim
	if met.Kind() != metric.Euclidean {
		idim = met.InternalDim(dim)
		if iflat, err = transformFlat(met, flat, n, dim); err != nil {
			return nil, err
		}
	}
	set := shard.Build(iflat, n, idim, opts.Shards, opts.CompactFraction, core.Config{
		C:               opts.C,
		W0:              opts.W0,
		K:               opts.K,
		L:               opts.L,
		T:               opts.T,
		Seed:            opts.Seed,
		EarlyStopFactor: opts.EarlyStopFactor,
		Metric:          met.Kind(),
		MetricNormBound: met.NormBound(),
		Quantize:        opts.Quantize,
	})
	set.SetParallelism(opts.Parallelism)
	return &Index{set: set, dim: dim, met: met}, nil
}

// Len returns the number of resident vectors, live plus tombstoned. It
// shrinks when a compaction reclaims tombstones; ids, however, are never
// reused — see NextID for the id-space bound.
func (idx *Index) Len() int { return idx.set.Len() }

// NextID returns the exclusive upper bound of the id space: every id ever
// returned by Add (and every build-time id) is below it, whether or not the
// vector is still live.
func (idx *Index) NextID() int { return idx.set.NextID() }

// Dim returns the vector dimensionality callers ingest and query with. (The
// internal search space is one dimension wider under InnerProduct; callers
// never see it.)
func (idx *Index) Dim() int { return idx.dim }

// Metric returns the distance metric the index was built with.
func (idx *Index) Metric() Metric { return Metric(idx.met.Kind()) }

// Shards returns the number of index shards (1 unless Options.Shards
// requested more).
func (idx *Index) Shards() int { return idx.set.Shards() }

// Search returns the k approximate nearest neighbors of q, sorted by
// ascending distance. Fewer than k results are returned only when the
// dataset is smaller than k. It panics if len(q) != Dim() or k <= 0,
// mirroring slice-indexing semantics for programmer errors. It is
// SearchOpts with no options.
func (idx *Index) Search(q []float32, k int) []Result {
	out, _ := idx.SearchOpts(q, k)
	return out
}

// SearchOne returns the single approximate nearest neighbor of q.
func (idx *Index) SearchOne(q []float32) (Result, bool) {
	var buf []float32
	nbs, _, _ := idx.set.Search(idx.transformQuery(&buf, q), 1, core.QueryParams{})
	if len(nbs) == 0 {
		return Result{}, false
	}
	return idx.userResults(q, nbs)[0], true
}

// Searcher is a reusable per-goroutine query context. For query-heavy loops
// it avoids the internal pool round-trip of Index.Search and exposes query
// statistics. It holds one core searcher per shard; on a sharded index a
// query coordinates one radius ladder across all of them.
type Searcher struct {
	idx   *Index
	inner *shard.Searcher
	qbuf  []float32 // reused query-transform scratch for non-Euclidean metrics
}

// NewSearcher returns a searcher bound to the index. A Searcher must only be
// used from one goroutine at a time; it remains valid across Add, Delete
// and compaction.
func (idx *Index) NewSearcher() *Searcher {
	return &Searcher{idx: idx, inner: idx.set.NewSearcher()}
}

// Search behaves like Index.Search on the bound index. It is SearchOpts
// with no options.
func (s *Searcher) Search(q []float32, k int) []Result {
	out, _ := s.SearchOpts(q, k)
	return out
}

// Stats describes the work done by the searcher's most recent query.
type Stats struct {
	// Candidates is the number of exact distance computations performed.
	Candidates int
	// Rounds is the number of (r,c)-NN radius levels visited (Algorithm 2).
	Rounds int
	// FinalRadius is the search radius at which the query terminated.
	FinalRadius float64
	// NodesVisited counts R*-tree nodes examined by the query's traversal,
	// across all projected spaces, shards and rounds. The incremental
	// frontier cursors visit interior nodes at most once per query; only
	// leaves straddling the growing window boundary are revisited, so this
	// stays far below rounds × tree size.
	NodesVisited int
	// FrontierSize is the number of items still parked in the traversal
	// cursors when the query finished — the residual work the incremental
	// ladder never had to touch. (For batch queries the per-query values
	// are summed, like the other counters.)
	FrontierSize int
	// QuantPruned is the number of candidates the int8 quantized
	// pre-filter rejected before any exact float32 distance work — a
	// subset of Candidates (pruned rows still consume budget, exactly like
	// early-abandoned rows). Zero with Options.Quantize "off".
	QuantPruned int
	// QuantSwept is QuantPruned's denominator: the candidates the
	// pre-filter actually examined. The adaptive gate stops sweeping (and
	// QuantSwept stops growing) while the observed prune rate is too low
	// to pay for the sweep, so QuantSwept may trail Candidates.
	QuantSwept int
	// ParallelRounds counts the ladder rounds (including a final covering
	// sweep) whose shard visits fanned out concurrently. Zero on a
	// single-shard index and whenever the query ran with parallelism 1.
	ParallelRounds int
	// StragglerNanos sums, over the parallel rounds, the wall time of each
	// round's slowest shard gather — the fan-out's critical path, lock
	// wait included. Comparing it to the query's total latency shows how
	// much of the query was spent inside the per-round barrier.
	StragglerNanos int64
}

// LastStats reports statistics for the most recent query on this searcher.
func (s *Searcher) LastStats() Stats {
	return statsFromCore(s.inner.LastStats())
}

// Params reports the effective index parameters after defaulting and
// derivation.
type Params struct {
	C, W0 float64
	K, L  int
	T     int
	// Metric is the distance metric the index searches under.
	Metric Metric
	// NormBound is the inner-product reduction's fitted norm bound M; 0
	// under the other metrics.
	NormBound float64
	// Quantize is the effective pre-filter setting, normalized to "on" or
	// "off".
	Quantize string
	// Parallelism is the configured per-query shard fan-out setting
	// (Options.Parallelism / SetParallelism): 0 means auto
	// (min(GOMAXPROCS, Shards), resolved per query).
	Parallelism int
}

// Params returns the parameters the index was built with.
func (idx *Index) Params() Params {
	cfg := idx.set.Params()
	quant := "on"
	if cfg.Quantize == "off" {
		quant = "off"
	}
	return Params{
		C: cfg.C, W0: cfg.W0, K: cfg.K, L: cfg.L, T: cfg.T,
		Metric: Metric(cfg.Metric), NormBound: cfg.MetricNormBound,
		Quantize: quant, Parallelism: idx.set.Parallelism(),
	}
}

// Parallelism reports the effective per-query shard fan-out width a query
// with no WithParallelism override would use right now: the configured
// setting, or min(GOMAXPROCS, Shards) under the auto policy. Always 1 on a
// single-shard index.
func (idx *Index) Parallelism() int { return idx.set.EffectiveParallelism() }

// IndexSizeBytes estimates the memory held by the projections and trees,
// excluding the original vectors.
func (idx *Index) IndexSizeBytes() int64 { return idx.set.IndexSizeBytes() }

// Add inserts a vector and returns its id. Ids are allocated sequentially
// and never reused. Add is safe to call concurrently with searches and
// other mutations: it write-locks only the shard the new vector routes to,
// so on a sharded index the other shards keep answering. Searchers created
// before an Add remain valid. Under a non-Euclidean metric the vector must
// satisfy the metric's ingest contract (nonzero under Cosine, ‖v‖ within
// the norm bound under InnerProduct) or an error is returned.
//
// On a durable index (see Open) the mutation is write-ahead: the op log
// record is appended — and, under SyncAlways, fsynced — before the vector
// enters the index. A logging failure therefore applies nothing and
// returns an error wrapping ErrDurability (safe to retry); after Close,
// Add applies nothing and returns ErrClosed.
func (idx *Index) Add(v []float32) (int, error) {
	if len(v) != idx.dim {
		return 0, fmt.Errorf("dblsh: vector dim %d, index dim %d", len(v), idx.dim)
	}
	row := v
	if idx.met.Kind() != metric.Euclidean {
		if err := idx.met.CheckPoint(v); err != nil {
			return 0, err
		}
		row = idx.met.TransformPoint(nil, v)
	}
	if idx.dur != nil {
		return idx.dur.add(idx, row)
	}
	return idx.set.Add(row), nil
}

// SearchBatch answers many queries in parallel across GOMAXPROCS workers,
// each with its own Searcher. results[i] corresponds to queries[i]. It is
// safe to run concurrently with Add and Delete. It is SearchBatchOpts with
// no options.
func (idx *Index) SearchBatch(queries [][]float32, k int) [][]Result {
	out, _ := idx.SearchBatchOpts(queries, k)
	return out
}

// Delete removes vector id from future search results. The underlying
// storage is tombstoned, not reclaimed — reclaim with CompactShard/Compact,
// or set Options.CompactFraction to automate it. Delete is safe to call
// concurrently with searches and mutations: it write-locks only the shard
// that owns id. It returns false when id was never allocated, is already
// deleted, or was reclaimed by a compaction.
//
// On a durable index (see Open) the tombstone is write-ahead: the op log
// record is appended — and, under SyncAlways, fsynced — before the
// tombstone is laid, so a true return means the delete is as durable as
// the sync policy promises. A logging failure applies nothing and returns
// false, indistinguishable here from "not found" — callers that must tell
// a server fault apart (the cause is otherwise only surfaced by Close) use
// DeleteWithError. After Close, Delete applies nothing and returns false.
func (idx *Index) Delete(id int) bool {
	ok, _ := idx.DeleteWithError(id)
	return ok
}

// DeleteWithError is Delete with durable failures surfaced instead of
// folded into the boolean: err is non-nil when a durable index could not
// log the tombstone (wrapping ErrDurability; nothing was applied, retrying
// is safe) or when the index is closed (ErrClosed). ok keeps Delete's
// meaning. On a purely in-memory index err is always nil.
func (idx *Index) DeleteWithError(id int) (ok bool, err error) {
	if idx.dur != nil {
		return idx.dur.delete(idx, id)
	}
	return idx.set.Delete(id), nil
}

// Deleted returns the number of tombstoned vectors.
func (idx *Index) Deleted() int { return idx.set.Deleted() }

// CompactShard rebuilds shard s from its live vectors, dropping its
// tombstones while every other shard keeps serving searches and mutations.
// Global ids are preserved. It returns the number of tombstones reclaimed.
func (idx *Index) CompactShard(s int) (int, error) {
	if s < 0 || s >= idx.set.Shards() {
		return 0, fmt.Errorf("dblsh: shard %d out of range [0,%d)", s, idx.set.Shards())
	}
	return idx.set.CompactShard(s), nil
}

// Compact compacts every shard in turn (at most one shard is rebuilding at
// any moment, and even it keeps serving) and returns the total number of
// tombstones reclaimed.
func (idx *Index) Compact() int { return idx.set.Compact() }

// SetCompactFraction replaces the auto-compaction threshold at runtime —
// see Options.CompactFraction. The threshold is an operational policy, not
// part of the persisted index state, so an index loaded with Read starts
// with auto-compaction disabled; use this to enable it.
func (idx *Index) SetCompactFraction(f float64) error {
	if f < 0 || f >= 1 {
		return fmt.Errorf("dblsh: CompactFraction must be in [0,1), got %v", f)
	}
	idx.set.SetCompactFraction(f)
	return nil
}

// SetParallelism replaces the per-query shard fan-out setting at runtime —
// see Options.Parallelism. 0 restores the auto policy. Like the compaction
// threshold it is operational, not persisted. Safe to call at any time;
// in-flight queries keep the width they resolved at entry, and results are
// identical at every setting.
func (idx *Index) SetParallelism(n int) error {
	if n < 0 {
		return fmt.Errorf("dblsh: Parallelism must be non-negative, got %d", n)
	}
	idx.set.SetParallelism(n)
	return nil
}

// SetQuantize switches the int8 quantized verification pre-filter on or
// off — see Options.Quantize. Like the compaction threshold it is
// operational, not persisted: an index loaded with Read starts with the
// pre-filter on; use this to disable it. Enabling builds the int8 mirrors
// (one pass over the data), disabling frees them. Results are identical
// either way. Safe to call under concurrent searches, mutations and
// compactions: each shard's mirror flips under that shard's write lock,
// and a compaction racing the change installs the latest setting at swap
// time.
func (idx *Index) SetQuantize(setting string) error {
	switch setting {
	case "", "on", "off":
	default:
		return fmt.Errorf(`dblsh: Quantize must be "on" or "off", got %q`, setting)
	}
	idx.set.SetQuantize(setting)
	return nil
}

// ShardStat describes one shard's current state.
type ShardStat struct {
	// Shard is the shard's index in [0, Shards()).
	Shard int
	// Size is the number of resident vectors, live plus tombstoned.
	Size int
	// Live is the number of vectors searches can still return.
	Live int
	// Deleted is the tombstone count a compaction would reclaim.
	Deleted int
	// Compactions counts completed compactions of this shard.
	Compactions int
	// LastCompaction is when the most recent compaction finished; zero if
	// the shard has never been compacted.
	LastCompaction time.Time
	// IndexSizeBytes estimates the shard's projection and tree footprint.
	IndexSizeBytes int64
}

// ShardStats reports per-shard statistics, in shard order.
func (idx *Index) ShardStats() []ShardStat {
	infos := idx.set.Infos()
	out := make([]ShardStat, len(infos))
	for i, in := range infos {
		out[i] = ShardStat{
			Shard:          in.Shard,
			Size:           in.Size,
			Live:           in.Live,
			Deleted:        in.Deleted,
			Compactions:    in.Compactions,
			LastCompaction: in.LastCompaction,
			IndexSizeBytes: in.IndexSizeBytes,
		}
	}
	return out
}

// SearchRadius answers a single (r,c)-NN query (Algorithm 1 of the paper):
// if some indexed point lies within distance r of q, it returns a point
// within c·r with constant probability; if no point lies within c·r it
// returns ok = false. It is the primitive Search's radius ladder is built
// from, exposed for callers that know their target radius. The radius is in
// the index's metric: Euclidean distance, or cosine distance in [0,2].
//
// This legacy wrapper has no error return, so on an index where the radius
// itself is invalid — any radius under InnerProduct, r > 2 under Cosine —
// it reports ok = false, indistinguishable from "nothing found". Under a
// non-Euclidean metric prefer SearchRadiusOpts, which surfaces those cases
// as errors. It is SearchRadiusOpts with no options.
func (s *Searcher) SearchRadius(q []float32, r float64) (Result, bool) {
	nb, ok, _ := s.SearchRadiusOpts(q, r)
	return nb, ok
}
