package dblsh_test

import (
	"bytes"
	"fmt"
	"log"

	"dblsh"
)

// Build an index over a toy dataset and retrieve the nearest neighbors of a
// query vector.
func ExampleNew() {
	data := [][]float32{
		{0, 0}, {1, 0}, {0, 1},
		{10, 10}, {11, 10}, {10, 11},
	}
	idx, err := dblsh.New(data, dblsh.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	hits := idx.Search([]float32{10.2, 10.1}, 3)
	for _, h := range hits {
		fmt.Println(h.ID)
	}
	// Output:
	// 3
	// 4
	// 5
}

// Persist an index to a buffer (or file) and reload it; the reloaded index
// answers identically because construction is deterministic in the seed.
func ExampleIndex_WriteTo() {
	data := [][]float32{{0, 0}, {5, 5}, {9, 9}}
	idx, err := dblsh.New(data, dblsh.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		log.Fatal(err)
	}
	loaded, err := dblsh.Read(&buf)
	if err != nil {
		log.Fatal(err)
	}
	hit, _ := loaded.SearchOne([]float32{4.8, 5.1})
	fmt.Println(hit.ID)
	// Output:
	// 1
}

// Grow and shrink a live index.
func ExampleIndex_Add() {
	data := [][]float32{{0, 0}, {100, 100}}
	// A tight approximation ratio makes the toy answers exact.
	idx, err := dblsh.New(data, dblsh.Options{C: 1.05, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	id, err := idx.Add([]float32{50, 50})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("added id:", id)

	hit, _ := idx.SearchOne([]float32{30, 30})
	fmt.Println("nearest:", hit.ID)

	idx.Delete(id)
	hit, _ = idx.SearchOne([]float32{30, 30})
	fmt.Println("after delete:", hit.ID)
	// Output:
	// added id: 2
	// nearest: 2
	// after delete: 0
}
