// Package rstar implements an in-memory R*-tree over low-dimensional points,
// the multi-dimensional index substrate of DB-LSH (Section IV-B of the
// paper). It supports STR bulk loading, incremental insertion with forced
// reinsertion, window (hyper-rectangle) queries with early termination, and
// best-first k-nearest-neighbor search.
//
// The tree indexes points only (no extended objects): each entry is an id
// into a caller-owned row-major matrix of projected coordinates. Dimensions
// are expected to be small (DB-LSH uses K ≈ 10–12).
//
// Traversal and visit order feed the candidate stream directly, so the
// package is determinism-critical and patrolled by dblsh-lint's detorder
// analyzer.
//
// dblsh:deterministic
package rstar

import "fmt"

// Rect is an axis-aligned hyper-rectangle. Min and Max have the tree's
// dimensionality and Min[i] ≤ Max[i] for all i.
type Rect struct {
	Min, Max []float32
}

// NewRect returns a rectangle with the given corners. It panics if the
// corners disagree in length or are inverted.
func NewRect(min, max []float32) Rect {
	if len(min) != len(max) {
		panic(fmt.Sprintf("rstar: corner dims differ: %d vs %d", len(min), len(max)))
	}
	for i := range min {
		if min[i] > max[i] {
			panic(fmt.Sprintf("rstar: inverted rect on dim %d: %v > %v", i, min[i], max[i]))
		}
	}
	return Rect{Min: min, Max: max}
}

// PointRect returns the degenerate rectangle covering a single point.
func PointRect(p []float32) Rect {
	min := make([]float32, len(p))
	max := make([]float32, len(p))
	copy(min, p)
	copy(max, p)
	return Rect{Min: min, Max: max}
}

// WindowRect returns the hypercubic window of width w centred at c — the
// query-centric bucket W(G(q), w) of Eq. 8.
func WindowRect(center []float32, w float64) Rect {
	half := float32(w / 2)
	min := make([]float32, len(center))
	max := make([]float32, len(center))
	for i, v := range center {
		min[i] = v - half
		max[i] = v + half
	}
	return Rect{Min: min, Max: max}
}

// Dim returns the rectangle's dimensionality.
func (r Rect) Dim() int { return len(r.Min) }

// Area returns the d-dimensional volume of r.
func (r Rect) Area() float64 {
	a := 1.0
	for i := range r.Min {
		a *= float64(r.Max[i] - r.Min[i])
	}
	return a
}

// Margin returns the sum of edge lengths of r (the R*-split "margin").
func (r Rect) Margin() float64 {
	var m float64
	for i := range r.Min {
		m += float64(r.Max[i] - r.Min[i])
	}
	return m
}

// Contains reports whether p lies inside r (inclusive on both faces).
func (r Rect) Contains(p []float32) bool {
	for i, v := range p {
		if v < r.Min[i] || v > r.Max[i] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether s is fully inside r.
func (r Rect) ContainsRect(s Rect) bool {
	for i := range r.Min {
		if s.Min[i] < r.Min[i] || s.Max[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and s share any point.
func (r Rect) Intersects(s Rect) bool {
	for i := range r.Min {
		if r.Min[i] > s.Max[i] || r.Max[i] < s.Min[i] {
			return false
		}
	}
	return true
}

// OverlapArea returns the volume of the intersection of r and s.
func (r Rect) OverlapArea(s Rect) float64 {
	a := 1.0
	for i := range r.Min {
		lo := r.Min[i]
		if s.Min[i] > lo {
			lo = s.Min[i]
		}
		hi := r.Max[i]
		if s.Max[i] < hi {
			hi = s.Max[i]
		}
		if hi <= lo {
			return 0
		}
		a *= float64(hi - lo)
	}
	return a
}

// Enlarged returns a copy of r grown to include s.
func (r Rect) Enlarged(s Rect) Rect {
	min := make([]float32, len(r.Min))
	max := make([]float32, len(r.Max))
	for i := range r.Min {
		min[i] = r.Min[i]
		if s.Min[i] < min[i] {
			min[i] = s.Min[i]
		}
		max[i] = r.Max[i]
		if s.Max[i] > max[i] {
			max[i] = s.Max[i]
		}
	}
	return Rect{Min: min, Max: max}
}

// ExpandInPlace grows r to include s, reusing r's storage.
func (r *Rect) ExpandInPlace(s Rect) {
	for i := range r.Min {
		if s.Min[i] < r.Min[i] {
			r.Min[i] = s.Min[i]
		}
		if s.Max[i] > r.Max[i] {
			r.Max[i] = s.Max[i]
		}
	}
}

// ExpandPoint grows r to include point p, reusing r's storage.
func (r *Rect) ExpandPoint(p []float32) {
	for i, v := range p {
		if v < r.Min[i] {
			r.Min[i] = v
		}
		if v > r.Max[i] {
			r.Max[i] = v
		}
	}
}

// EnlargementArea returns how much r's volume grows when enlarged to cover s.
func (r Rect) EnlargementArea(s Rect) float64 {
	return r.Enlarged(s).Area() - r.Area()
}

// Center writes the rectangle's centroid into dst and returns it; pass nil
// to allocate.
func (r Rect) Center(dst []float32) []float32 {
	if dst == nil {
		dst = make([]float32, len(r.Min))
	}
	for i := range r.Min {
		dst[i] = (r.Min[i] + r.Max[i]) / 2
	}
	return dst
}

// MinDistSq returns the squared Euclidean distance from point p to the
// nearest face of r; zero when p is inside. Used by best-first k-NN.
func (r Rect) MinDistSq(p []float32) float64 {
	var s float64
	for i, v := range p {
		var d float64
		if v < r.Min[i] {
			d = float64(r.Min[i] - v)
		} else if v > r.Max[i] {
			d = float64(v - r.Max[i])
		}
		s += d * d
	}
	return s
}

// CenterDistSq returns the squared distance between the centroids of r and s.
func (r Rect) CenterDistSq(s Rect) float64 {
	var out float64
	for i := range r.Min {
		d := float64(r.Min[i]+r.Max[i])/2 - float64(s.Min[i]+s.Max[i])/2
		out += d * d
	}
	return out
}

func (r Rect) clone() Rect {
	min := make([]float32, len(r.Min))
	max := make([]float32, len(r.Max))
	copy(min, r.Min)
	copy(max, r.Max)
	return Rect{Min: min, Max: max}
}
