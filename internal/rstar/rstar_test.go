package rstar

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"dblsh/internal/vec"
)

func randomMatrix(n, d int, seed int64) *vec.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			m.Row(i)[j] = float32(rng.NormFloat64() * 10)
		}
	}
	return m
}

func bruteWindow(data *vec.Matrix, w Rect) []int {
	var out []int
	for i := 0; i < data.Rows(); i++ {
		if w.Contains(data.Row(i)) {
			out = append(out, i)
		}
	}
	return out
}

func sortedEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	sort.Ints(a)
	sort.Ints(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRectBasics(t *testing.T) {
	r := NewRect([]float32{0, 0}, []float32{2, 3})
	if r.Area() != 6 {
		t.Fatalf("Area = %v", r.Area())
	}
	if r.Margin() != 5 {
		t.Fatalf("Margin = %v", r.Margin())
	}
	if !r.Contains([]float32{2, 3}) || !r.Contains([]float32{0, 0}) {
		t.Fatal("faces must be inclusive")
	}
	if r.Contains([]float32{2.001, 1}) {
		t.Fatal("outside point contained")
	}
}

func TestRectOverlap(t *testing.T) {
	a := NewRect([]float32{0, 0}, []float32{2, 2})
	b := NewRect([]float32{1, 1}, []float32{3, 3})
	if got := a.OverlapArea(b); got != 1 {
		t.Fatalf("OverlapArea = %v, want 1", got)
	}
	c := NewRect([]float32{5, 5}, []float32{6, 6})
	if a.Intersects(c) || a.OverlapArea(c) != 0 {
		t.Fatal("disjoint rects must not overlap")
	}
	// Touching faces intersect with zero volume.
	d := NewRect([]float32{2, 0}, []float32{3, 2})
	if !a.Intersects(d) {
		t.Fatal("touching rects must intersect")
	}
	if a.OverlapArea(d) != 0 {
		t.Fatal("touching rects overlap area must be 0")
	}
}

func TestRectEnlarged(t *testing.T) {
	a := NewRect([]float32{0, 0}, []float32{1, 1})
	b := NewRect([]float32{2, -1}, []float32{3, 0.5})
	e := a.Enlarged(b)
	if e.Min[0] != 0 || e.Min[1] != -1 || e.Max[0] != 3 || e.Max[1] != 1 {
		t.Fatalf("Enlarged = %+v", e)
	}
	// Original unchanged.
	if a.Max[0] != 1 {
		t.Fatal("Enlarged mutated receiver")
	}
}

func TestRectMinDistSq(t *testing.T) {
	r := NewRect([]float32{0, 0}, []float32{1, 1})
	if d := r.MinDistSq([]float32{0.5, 0.5}); d != 0 {
		t.Fatalf("inside point dist = %v", d)
	}
	if d := r.MinDistSq([]float32{2, 1}); d != 1 {
		t.Fatalf("dist = %v, want 1", d)
	}
	if d := r.MinDistSq([]float32{2, 2}); d != 2 {
		t.Fatalf("corner dist = %v, want 2", d)
	}
}

func TestWindowRect(t *testing.T) {
	w := WindowRect([]float32{1, 2}, 4)
	if w.Min[0] != -1 || w.Max[0] != 3 || w.Min[1] != 0 || w.Max[1] != 4 {
		t.Fatalf("WindowRect = %+v", w)
	}
}

func TestNewRectPanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRect([]float32{1}, []float32{0})
}

func TestEmptyTree(t *testing.T) {
	data := vec.NewMatrix(0, 3)
	tr := New(data, Options{})
	if tr.Size() != 0 || tr.Height() != 1 {
		t.Fatalf("empty tree size=%d height=%d", tr.Size(), tr.Height())
	}
	got := tr.WindowAll(NewRect([]float32{-1, -1, -1}, []float32{1, 1, 1}))
	if len(got) != 0 {
		t.Fatalf("window on empty tree returned %v", got)
	}
	if ids := tr.NearestK([]float32{0, 0, 0}, 5); len(ids) != 0 {
		t.Fatalf("NearestK on empty tree returned %v", ids)
	}
}

func TestInsertSmall(t *testing.T) {
	data := randomMatrix(10, 2, 1)
	tr := New(data, Options{MaxEntries: 4})
	for i := 0; i < 10; i++ {
		tr.Insert(i)
	}
	if tr.Size() != 10 {
		t.Fatalf("size = %d", tr.Size())
	}
	if msg := tr.CheckInvariants(); msg != "" {
		t.Fatalf("invariant violated: %s", msg)
	}
	all := tr.WindowAll(tr.Bounds())
	want := make([]int, 10)
	for i := range want {
		want[i] = i
	}
	if !sortedEqual(all, want) {
		t.Fatalf("full-bounds window returned %v", all)
	}
}

func TestInsertManyInvariants(t *testing.T) {
	for _, n := range []int{50, 500, 3000} {
		data := randomMatrix(n, 4, int64(n))
		tr := New(data, Options{MaxEntries: 16})
		for i := 0; i < n; i++ {
			tr.Insert(i)
		}
		if msg := tr.CheckInvariants(); msg != "" {
			t.Fatalf("n=%d: invariant violated: %s", n, msg)
		}
		if tr.Size() != n {
			t.Fatalf("n=%d: size=%d", n, tr.Size())
		}
	}
}

func TestBulkLoadInvariants(t *testing.T) {
	for _, n := range []int{1, 7, 32, 33, 1000, 20000} {
		data := randomMatrix(n, 6, int64(n)+7)
		tr := BulkLoad(data, Options{})
		if tr.Size() != n {
			t.Fatalf("n=%d: size=%d", n, tr.Size())
		}
		if msg := tr.CheckInvariants(); msg != "" {
			t.Fatalf("n=%d: invariant violated: %s", n, msg)
		}
	}
}

func TestBulkLoadIDsSubset(t *testing.T) {
	data := randomMatrix(100, 3, 5)
	ids := []int{3, 14, 15, 92, 65, 35}
	tr := BulkLoadIDs(data, ids, Options{})
	if tr.Size() != len(ids) {
		t.Fatalf("size = %d", tr.Size())
	}
	got := tr.WindowAll(tr.Bounds())
	if !sortedEqual(got, append([]int(nil), ids...)) {
		t.Fatalf("window = %v, want %v", got, ids)
	}
}

func TestWindowMatchesBruteForce(t *testing.T) {
	data := randomMatrix(5000, 5, 99)
	tr := BulkLoad(data, Options{})
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 50; trial++ {
		c := make([]float32, 5)
		for i := range c {
			c[i] = float32(rng.NormFloat64() * 10)
		}
		w := WindowRect(c, 5+rng.Float64()*20)
		got := tr.WindowAll(w)
		want := bruteWindow(data, w)
		if !sortedEqual(got, want) {
			t.Fatalf("trial %d: window mismatch: got %d ids, want %d", trial, len(got), len(want))
		}
	}
}

func TestWindowMatchesBruteForceAfterInserts(t *testing.T) {
	data := randomMatrix(3000, 4, 17)
	tr := New(data, Options{MaxEntries: 8})
	for i := 0; i < 3000; i++ {
		tr.Insert(i)
	}
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		c := make([]float32, 4)
		for i := range c {
			c[i] = float32(rng.NormFloat64() * 10)
		}
		w := WindowRect(c, 8+rng.Float64()*15)
		if !sortedEqual(tr.WindowAll(w), bruteWindow(data, w)) {
			t.Fatalf("trial %d: mismatch", trial)
		}
	}
}

func TestWindowEarlyTermination(t *testing.T) {
	data := randomMatrix(1000, 3, 3)
	tr := BulkLoad(data, Options{})
	count := 0
	tr.Window(tr.Bounds(), func(id int) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("visited %d, want early stop at 10", count)
	}
}

func TestNearestKMatchesBruteForce(t *testing.T) {
	data := randomMatrix(2000, 4, 77)
	tr := BulkLoad(data, Options{})
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 20; trial++ {
		q := make([]float32, 4)
		for i := range q {
			q[i] = float32(rng.NormFloat64() * 10)
		}
		k := 1 + rng.Intn(20)
		got := tr.NearestK(q, k)
		// Brute force.
		type pair struct {
			id int
			d  float64
		}
		all := make([]pair, data.Rows())
		for i := range all {
			all[i] = pair{i, vec.SquaredDist(q, data.Row(i))}
		}
		sort.Slice(all, func(a, b int) bool { return all[a].d < all[b].d })
		if len(got) != k {
			t.Fatalf("NearestK returned %d ids, want %d", len(got), k)
		}
		for i := 0; i < k; i++ {
			// Compare distances (ids may differ under exact ties).
			if gd := vec.SquaredDist(q, data.Row(got[i])); gd != all[i].d {
				t.Fatalf("trial %d: rank %d dist %v, want %v", trial, i, gd, all[i].d)
			}
		}
	}
}

func TestNearestVisitOrdered(t *testing.T) {
	data := randomMatrix(500, 3, 13)
	tr := BulkLoad(data, Options{})
	q := []float32{0, 0, 0}
	prev := -1.0
	n := 0
	tr.NearestVisit(q, func(id int, distSq float64) bool {
		if distSq < prev {
			t.Fatalf("NearestVisit out of order: %v after %v", distSq, prev)
		}
		prev = distSq
		n++
		return true
	})
	if n != 500 {
		t.Fatalf("visited %d, want 500", n)
	}
}

func TestMixedBulkThenInsert(t *testing.T) {
	data := randomMatrix(1000, 4, 42)
	tr := BulkLoad(data.Slice(0, 800), Options{MaxEntries: 16})
	// Appending rows 800..999 via Insert on a tree whose matrix view must
	// cover them: rebuild tree over the full matrix but only bulk rows.
	ids := make([]int, 800)
	for i := range ids {
		ids[i] = i
	}
	tr = BulkLoadIDs(data, ids, Options{MaxEntries: 16})
	for i := 800; i < 1000; i++ {
		tr.Insert(i)
	}
	if tr.Size() != 1000 {
		t.Fatalf("size = %d", tr.Size())
	}
	if msg := tr.CheckInvariants(); msg != "" {
		t.Fatalf("invariant violated: %s", msg)
	}
	if !sortedEqual(tr.WindowAll(tr.Bounds()), bruteWindow(data, tr.Bounds())) {
		t.Fatal("window after mixed build mismatch")
	}
}

// Property test: for random point sets and windows, tree results always match
// brute force.
func TestWindowProperty(t *testing.T) {
	f := func(seed int64, widthRaw uint8) bool {
		n := 200
		data := randomMatrix(n, 3, seed)
		tr := BulkLoad(data, Options{MaxEntries: 8})
		w := WindowRect([]float32{0, 0, 0}, 1+float64(widthRaw)/4)
		return sortedEqual(tr.WindowAll(w), bruteWindow(data, w))
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicatePoints(t *testing.T) {
	// All points identical: tree must still hold them all and return them.
	data := vec.NewMatrix(100, 2)
	for i := 0; i < 100; i++ {
		data.SetRow(i, []float32{1, 1})
	}
	tr := New(data, Options{MaxEntries: 8})
	for i := 0; i < 100; i++ {
		tr.Insert(i)
	}
	got := tr.WindowAll(WindowRect([]float32{1, 1}, 0.1))
	if len(got) != 100 {
		t.Fatalf("duplicate window returned %d ids", len(got))
	}
	if msg := tr.CheckInvariants(); msg != "" {
		t.Fatalf("invariant violated: %s", msg)
	}
}

func TestComputeStats(t *testing.T) {
	data := randomMatrix(5000, 4, 8)
	tr := BulkLoad(data, Options{})
	s := tr.ComputeStats()
	if s.Entries != 5000 {
		t.Fatalf("stats entries = %d", s.Entries)
	}
	if s.Leaves == 0 || s.Nodes < s.Leaves || s.Height < 2 {
		t.Fatalf("implausible stats %+v", s)
	}
	if s.AvgFill < 0.5 {
		t.Fatalf("bulk-loaded fill too low: %v", s.AvgFill)
	}
}

func TestInsertOutOfRangePanics(t *testing.T) {
	data := randomMatrix(5, 2, 1)
	tr := New(data, Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Insert(5)
}

func BenchmarkBulkLoad100k(b *testing.B) {
	data := randomMatrix(100_000, 10, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BulkLoad(data, Options{})
	}
}

func BenchmarkInsert(b *testing.B) {
	data := randomMatrix(100_000, 10, 1)
	tr := New(data, Options{})
	b.ResetTimer()
	for i := 0; i < b.N && i < data.Rows(); i++ {
		tr.Insert(i)
	}
}

func BenchmarkWindow(b *testing.B) {
	data := randomMatrix(100_000, 10, 1)
	tr := BulkLoad(data, Options{})
	w := WindowRect(make([]float32, 10), 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Count(w)
	}
}
