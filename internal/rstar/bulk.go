package rstar

import (
	"math"
	"sort"

	"dblsh/internal/vec"
)

// BulkLoad builds an R*-tree over all rows of data using Sort-Tile-Recursive
// (STR) packing. This is the "bulk-loading strategy" the paper credits for
// DB-LSH's small indexing time: packing produces near-100% leaf fill and
// never triggers splits or reinsertions.
//
// The returned tree supports subsequent Insert calls for rows appended to
// data after loading.
func BulkLoad(data *vec.Matrix, opts Options) *Tree {
	t := New(data, opts)
	n := data.Rows()
	if n == 0 {
		return t
	}
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	leaves := t.packLeaves(ids)
	t.root = t.packUpward(leaves)
	t.size = n
	return t
}

// BulkLoadIDs builds a tree over a subset of data's rows.
func BulkLoadIDs(data *vec.Matrix, ids []int, opts Options) *Tree {
	t := New(data, opts)
	if len(ids) == 0 {
		return t
	}
	ids32 := make([]int32, len(ids))
	for i, id := range ids {
		ids32[i] = int32(id)
	}
	leaves := t.packLeaves(ids32)
	t.root = t.packUpward(leaves)
	t.size = len(ids)
	return t
}

// packLeaves tiles the id set into leaf nodes with STR.
func (t *Tree) packLeaves(ids []int32) []*node {
	cap := t.opts.MaxEntries
	var leaves []*node
	t.strTile(ids, 0, cap, func(chunk []int32) {
		leaf := &node{leaf: true, level: 0, ids: append([]int32(nil), chunk...)}
		t.recomputeLeafRect(leaf)
		t.finalizeLeaf(leaf)
		leaves = append(leaves, leaf)
	})
	return leaves
}

// strTile recursively sorts ids by successive axes and partitions them into
// slabs so that the final chunks have at most chunkSize entries (classic STR:
// with P pages and k remaining dims, use ⌈P^(1/k)⌉ slabs per axis).
func (t *Tree) strTile(ids []int32, axis, chunkSize int, emit func([]int32)) {
	if len(ids) <= chunkSize {
		emit(ids)
		return
	}
	remDims := t.dim - axis
	if remDims <= 1 {
		// Last axis: sort and emit fixed-size runs.
		t.sortIDsByAxis(ids, axis)
		for lo := 0; lo < len(ids); lo += chunkSize {
			hi := lo + chunkSize
			if hi > len(ids) {
				hi = len(ids)
			}
			emit(ids[lo:hi])
		}
		return
	}
	pages := (len(ids) + chunkSize - 1) / chunkSize
	slabs := int(math.Ceil(math.Pow(float64(pages), 1/float64(remDims))))
	if slabs < 1 {
		slabs = 1
	}
	perSlab := (len(ids) + slabs - 1) / slabs
	// Round the slab size to a multiple of chunkSize so inner tiles fill.
	if rem := perSlab % chunkSize; rem != 0 {
		perSlab += chunkSize - rem
	}
	t.sortIDsByAxis(ids, axis)
	for lo := 0; lo < len(ids); lo += perSlab {
		hi := lo + perSlab
		if hi > len(ids) {
			hi = len(ids)
		}
		t.strTile(ids[lo:hi], axis+1, chunkSize, emit)
	}
}

// packUpward builds internal levels over the given nodes until one root
// remains, grouping nodes by STR on their centre points.
func (t *Tree) packUpward(nodes []*node) *node {
	level := 1
	for len(nodes) > 1 {
		nodes = t.packLevel(nodes, level)
		level++
	}
	return nodes[0]
}

func (t *Tree) packLevel(nodes []*node, level int) []*node {
	cap := t.opts.MaxEntries
	centers := make([][]float32, len(nodes))
	for i, n := range nodes {
		centers[i] = n.rect.Center(nil)
	}
	order := make([]int, len(nodes))
	for i := range order {
		order[i] = i
	}
	var groups [][]int
	t.strTileGeneric(order, centers, 0, cap, func(chunk []int) {
		groups = append(groups, append([]int(nil), chunk...))
	})
	out := make([]*node, 0, len(groups))
	for _, g := range groups {
		parent := &node{level: level, children: make([]*node, 0, len(g))}
		for _, idx := range g {
			parent.children = append(parent.children, nodes[idx])
		}
		recomputeRect(parent)
		out = append(out, parent)
	}
	return out
}

func (t *Tree) strTileGeneric(order []int, centers [][]float32, axis, chunkSize int, emit func([]int)) {
	if len(order) <= chunkSize {
		emit(order)
		return
	}
	remDims := t.dim - axis
	if remDims <= 1 {
		sort.Slice(order, func(a, b int) bool {
			return centers[order[a]][axis] < centers[order[b]][axis]
		})
		for lo := 0; lo < len(order); lo += chunkSize {
			hi := lo + chunkSize
			if hi > len(order) {
				hi = len(order)
			}
			emit(order[lo:hi])
		}
		return
	}
	pages := (len(order) + chunkSize - 1) / chunkSize
	slabs := int(math.Ceil(math.Pow(float64(pages), 1/float64(remDims))))
	if slabs < 1 {
		slabs = 1
	}
	perSlab := (len(order) + slabs - 1) / slabs
	if rem := perSlab % chunkSize; rem != 0 {
		perSlab += chunkSize - rem
	}
	sort.Slice(order, func(a, b int) bool {
		return centers[order[a]][axis] < centers[order[b]][axis]
	})
	for lo := 0; lo < len(order); lo += perSlab {
		hi := lo + perSlab
		if hi > len(order) {
			hi = len(order)
		}
		t.strTileGeneric(order[lo:hi], centers, axis+1, chunkSize, emit)
	}
}
