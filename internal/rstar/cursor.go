package rstar

import "math/bits"

// Cursor is a persistent incremental frontier over one tree for one query
// center. DB-LSH's radius ladder runs the same window query W(G(q), w0·r)
// at geometrically growing widths; re-running each window from the root
// re-walks the entire already-covered region every round — re-testing
// every covered point against the window — just to find the thin
// newly-exposed shell. A Cursor instead keeps the not-yet-exhausted
// remainder of the tree as a frontier: a depth-first-ordered list of
// subtrees, each carrying an activation threshold (a certain lower bound
// on the window half-width that could surface anything new from it) and,
// for leaves, a bitmask of already-reported entries. Each round walks the
// list; an item below its threshold costs one float compare, an interior
// node is entered at most once per query, a reported point is never
// re-examined (its mask bit skips it), and only the leaves straddling the
// window boundary are re-scanned — against their cache-contiguous
// coordinate mirrors, axis-of-last-exclusion first, so a re-test usually
// costs one compare too.
//
// Equivalence with Window: a round at half-width half uses the exact
// float32 window rectangle WindowRect(center, 2·half) builds — descent
// prunes by the same Intersects comparisons, membership by the same
// Contains comparisons — and the frontier list is maintained in
// depth-first tree order, so a round's emissions stream in exactly the
// order a Window re-scan over the same rectangle would visit them, except
// that already-reported points are not re-reported. Callers deduplicate
// re-reports with a visited set anyway (the re-scan ladder relies on it),
// so the caller-observable candidate stream of a ladder of rounds is
// identical to the window re-scan ladder's, point for point and in order —
// the property the query layer's differential tests pin down. Emission is
// pull-based and batched (NextBatch), so a caller that stops mid-round
// pays nothing for the part of the window it never asked for, exactly
// like an aborted re-scan.
//
// A round is: BeginRound(half), then NextBatch until it reports 0 or the
// caller decides to stop, then EndRound — or Abandon when the query is
// over and the frontier's future is irrelevant.
//
// A Cursor pins the tree's node graph as of its last Reset/ReArm. Inserts
// rearrange nodes (splits, forced reinsertion), so after any mutation the
// cursor must be re-armed before the next round: Synced reports staleness
// and ReArm re-seeds the frontier at the root, after which the next round
// re-reports everything inside its window — including points inserted
// since the original seed — and the caller's visited set restores
// incrementality. Cursors are not safe for concurrent use.
type Cursor struct {
	t      *Tree
	center []float32
	k      int       // len(center)
	h      float32   // current round's half-width, as the window rect rounds it
	wlo    []float32 // current round's window bounds, exactly as WindowRect
	whi    []float32 // would build them: center[d] ∓ h in float32

	cur   []cItem // the frontier, in depth-first tree order
	next  []cItem // the frontier being rebuilt by the current round's walk
	stack []frame // in-progress descents of the current round
	pos   int     // walk position in cur

	// Emission log of the current round, for Unpop. Valid until the next
	// BeginRound/Reset/ReArm.
	emitted  []emitRec
	returned []int32 // ascending emission ordinals handed back by Unpop

	// Per-entry activation bounds of straddling leaves. When a leaf entry
	// fails its window test, the failing axis yields a certain lower bound
	// on the half-width any window needs before the entry can pass
	// (activationLB); storing it lets later rounds skip the entry with one
	// contiguous float compare instead of re-running the multi-axis test —
	// the single hottest saving of the traversal, since a straddling leaf
	// is revisited once per round and most of its entries activate rounds
	// later. Blocks of lbStride float32s are handed out by lbAlloc (handle
	// = 1-based block index; 0 means none) and ride along in cItem/frame;
	// the arena is reset wholesale on seed, so stale bounds cannot leak
	// across queries or re-arms.
	lbArena  []float32
	lbFree   []int32
	lbStride int

	// Quantized pre-test scratch: the current round's window bounds and
	// center mapped into the code space of the straddling leaf being
	// visited (valid only while that leaf's frame is on top of the stack,
	// which is exactly when the per-entry loop runs). qlo/qhi are padded
	// outward by quantGuardCode, so a code outside them is certainly
	// outside the exact float32 window — the only direction the pre-test
	// ever decides; everything else falls through to the exact test.
	qlo, qhi, quc []float32

	version   uint64 // tree version the frontier was seeded against
	nodes     int    // nodes entered since Reset/ReArm
	abandoned bool   // round discarded mid-walk; frontier no longer coherent
}

// cItem is one frontier element: a subtree the rounds so far have not
// exhausted. For leaves, mask bit j set means entry j has been reported.
// thresh is a certain lower bound on the half-width at which the subtree
// could surface anything new — the window-rectangle gap of the MBR's last
// failing axis (dim, where the next test resumes), or the smallest gap
// over a scanned leaf's unreported entries (dim == k: the MBR is known to
// be reached, only entries need re-testing). The bound is an accelerator
// only; everything observable is decided by the genuine window-rectangle
// comparisons.
type cItem struct {
	n      *node
	mask   uint64
	thresh float32
	lbs    int32 // per-entry activation-bound block handle (0: none)
	dim    uint16
}

// frame is one level of an in-progress descent. Internal nodes walk
// children by idx. Leaves walk their unreported entries through rem (the
// complement of mask, consumed bit by bit in ascending — depth-first —
// order), fold the smallest failing-entry gap into minLB, and remember at
// pos where in the frontier the leaf parks (or would splice back into).
// hint is the axis that most recently excluded something here: the next
// exclusion almost always happens on the same axis, so tests start there
// and usually exit after one compare. contained records that the window
// contains the node's whole MBR — every unreported point below is a
// member with no per-point test at all.
type frame struct {
	n         *node
	idx       int
	rem       uint64
	mask      uint64
	minLB     float32
	hint      int
	pos       int32
	lbs       int32 // leaf's activation-bound block handle (0: none yet)
	contained bool
	spanned   bool // leaf sort-axis span already cut out of rem this visit
	quant     bool // cursor's code-space scratch is valid for this leaf visit
}

// emitRec records one emission: the leaf, the entry's index within it,
// and the leaf's frontier position, so Unpop can clear the mask bit — in
// place if the leaf survived, through a splice if it was dropped.
type emitRec struct {
	n   *node
	pos int32
	idx uint16
}

const maxFloat32 = 3.4028234663852886e38

// fullMask returns the mask with the low n bits set (n ≤ 64).
func fullMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(n) - 1
}

// NewCursor returns an unseeded cursor over t. The cursor requires the
// tree's node capacity to fit the per-leaf bitmask (MaxEntries ≤ 64, far
// above the default of 32). Call Reset with a query center before the
// first round.
func NewCursor(t *Tree) *Cursor {
	if t.opts.MaxEntries > 64 {
		panic("rstar: cursor requires MaxEntries ≤ 64")
	}
	return &Cursor{t: t, lbStride: t.opts.MaxEntries}
}

// lbAlloc hands out a zeroed per-entry activation-bound block and returns
// its 1-based handle (0 is "no block"). A zero bound never skips anything,
// so a fresh block is always sound.
func (c *Cursor) lbAlloc() int32 {
	if n := len(c.lbFree); n > 0 {
		h := c.lbFree[n-1]
		c.lbFree = c.lbFree[:n-1]
		blk := c.lbBlock(h)
		for i := range blk {
			blk[i] = 0
		}
		return h
	}
	// Growing by re-slice + explicit clear rather than append(make(...)...):
	// the compiler's extendslice optimization is off under -race, where the
	// temporary make would heap-allocate on every call and break the
	// traversal's zero-alloc guarantee in the race CI job.
	off := len(c.lbArena)
	need := off + c.lbStride
	if cap(c.lbArena) >= need {
		c.lbArena = c.lbArena[:need]
		blk := c.lbArena[off:need]
		for i := range blk {
			blk[i] = 0
		}
	} else {
		c.lbArena = append(c.lbArena, make([]float32, c.lbStride)...)
	}
	return int32(need / c.lbStride)
}

// lbBlock resolves a handle from lbAlloc to its block.
func (c *Cursor) lbBlock(h int32) []float32 {
	off := int(h-1) * c.lbStride
	return c.lbArena[off : off+c.lbStride : off+c.lbStride]
}

// lbFreeBlock returns a block to the free list (when its leaf is fully
// reported and leaves the frontier).
func (c *Cursor) lbFreeBlock(h int32) {
	if h != 0 {
		c.lbFree = append(c.lbFree, h)
	}
}

// Reset seeds the frontier for a new query center, discarding all prior
// state. It is O(1) plus the center copy: traversal happens lazily as
// rounds advance. The cursor reuses its internal buffers, so steady-state
// queries through a pooled searcher allocate nothing.
func (c *Cursor) Reset(center []float32) {
	c.center = append(c.center[:0], center...)
	c.k = len(center)
	c.seed()
}

// seed arms the frontier at the root against the tree's current version.
func (c *Cursor) seed() {
	c.cur = c.cur[:0]
	c.next = c.next[:0]
	c.stack = c.stack[:0]
	c.emitted = c.emitted[:0]
	c.returned = c.returned[:0]
	c.pos = 0
	c.nodes = 0
	c.version = c.t.version
	c.abandoned = false
	c.lbArena = c.lbArena[:0]
	c.lbFree = c.lbFree[:0]
	if c.t.size == 0 {
		return
	}
	c.cur = append(c.cur, cItem{n: c.t.root})
}

// Synced reports whether the frontier is still coherent: the tree is
// structurally unchanged since it was seeded and no round was abandoned
// mid-walk. A false return means the caller must ReArm before the next
// round.
func (c *Cursor) Synced() bool { return c.version == c.t.version && !c.abandoned }

// ReArm re-seeds the frontier at the root for the same center — the
// explicit recovery primitive for mutations that land mid-query.
func (c *Cursor) ReArm() { c.seed() }

// BeginRound opens a round over the window of half-width half centred at
// the cursor's center — the float32 rectangle WindowRect(center, 2·half)
// builds. Subsequent NextBatch calls stream the window's not-yet-reported
// points in depth-first tree order. Entries handed back by Unpop since the
// previous round rejoin the frontier here.
func (c *Cursor) BeginRound(half float64) {
	c.mergeReturned()
	h := float32(half)
	c.h = h
	c.wlo = c.wlo[:0]
	c.whi = c.whi[:0]
	for _, v := range c.center {
		c.wlo = append(c.wlo, v-h)
		c.whi = append(c.whi, v+h)
	}
	c.pos = 0
}

// NextBatch fills buf with the next not-yet-reported points inside the
// current round's window, in depth-first tree order, and returns how many
// it wrote. Zero means the round is exhausted. The walk is lazy: stopping
// early (calling EndRound or Abandon without draining) costs nothing for
// the unseen remainder, and a caller that consumed too far hands the
// excess back with Unpop.
func (c *Cursor) NextBatch(buf []int32) int {
	out := 0
	for {
		// The descent stack holds subtrees the walk has entered but not
		// finished; their remaining items precede everything at cur[pos:].
		for len(c.stack) > 0 {
			f := &c.stack[len(c.stack)-1]
			n := f.n
			if n.leaf {
				if !f.contained && !f.spanned && f.rem != 0 {
					// The leaf's entries are sorted by its sort axis, so the
					// window test on that axis is a positional span: two
					// binary searches with the exact membership comparisons
					// bound the entries that can possibly be inside, and
					// everything outside certainly fails with no per-entry
					// work. The nearest out-of-span entry on each side gives
					// the smallest axis gap of all entries it excludes
					// (sorted order), so folding just the two boundary gaps
					// into minLB parks the leaf no later than per-entry
					// testing would. Out-of-span entries are never reported
					// (mask stays clear), so a wider round re-tests them.
					f.spanned = true
					ax := int(n.sortAxis)
					wlo, whi := c.wlo[ax], c.whi[ax]
					keys := n.keys
					i, j := 0, len(keys)
					for i < j {
						h := int(uint(i+j) >> 1)
						if keys[h] < wlo {
							i = h + 1
						} else {
							j = h
						}
					}
					lo := i
					j = len(keys)
					for i < j {
						h := int(uint(i+j) >> 1)
						if keys[h] <= whi {
							i = h + 1
						} else {
							j = h
						}
					}
					hi := i
					if lo > 0 {
						v := keys[lo-1]
						if g := activationLB(c.center[ax]-v, v); g < f.minLB {
							f.minLB = g
						}
						f.rem &^= fullMask(lo)
					}
					if hi < len(keys) {
						v := keys[hi]
						if g := activationLB(v-c.center[ax], v); g < f.minLB {
							f.minLB = g
						}
						f.rem &= fullMask(hi)
					}
					if f.rem != 0 && c.t.opts.Quantize && n.qscale > 0 {
						// Map the window and center into this leaf's code
						// space once per visit; the per-entry pre-test then
						// reads only the entry's own int8 code — a quarter
						// of the coordinate mirror's cache footprint.
						f.quant = true
						if cap(c.qlo) < c.k {
							c.qlo = make([]float32, c.k)
							c.qhi = make([]float32, c.k)
							c.quc = make([]float32, c.k)
						}
						c.qlo, c.qhi, c.quc = c.qlo[:c.k], c.qhi[:c.k], c.quc[:c.k]
						inv := 1 / n.qscale
						for d := 0; d < c.k; d++ {
							c.qlo[d] = (c.wlo[d]-n.qoff)*inv - quantGuardCode
							c.qhi[d] = (c.whi[d]-n.qoff)*inv + quantGuardCode
							c.quc[d] = (c.center[d] - n.qoff) * inv
						}
					}
				}
				var lbs []float32
				if f.lbs != 0 {
					lbs = c.lbBlock(f.lbs)
				}
				for f.rem != 0 {
					j := bits.TrailingZeros64(f.rem)
					bit := uint64(1) << uint(j)
					f.rem &^= bit
					if !f.contained {
						// An entry that failed in an earlier round recorded a
						// certain lower bound on the half-width it needs; one
						// contiguous compare skips it while the window is
						// still provably short (the bound is per-axis and
						// round-independent, so it stays valid as the window
						// grows).
						if lbs != nil {
							if lb := lbs[j]; lb > c.h {
								if lb < f.minLB {
									f.minLB = lb
								}
								continue
							}
						}
						// Quantized certain-exclusion pre-test on the hint
						// axis: a code outside the guard-padded code-space
						// window proves the exact float32 test would fail on
						// the same axis, without touching the float32 row.
						// The quantized activation bound is weaker than the
						// exact one (guards shave it), which at worst re-tests
						// the entry a round early — never a missed emission.
						if f.quant {
							d := f.hint
							if cd := float32(n.qcoords[j*c.k+d]); cd < c.qlo[d] || cd > c.qhi[d] {
								tc := cd - c.quc[d]
								if tc < 0 {
									tc = -tc
								}
								lb := quantLB(tc, n.qscale, c.center[d])
								if lb < f.minLB {
									f.minLB = lb
								}
								if lbs == nil {
									f.lbs = c.lbAlloc()
									lbs = c.lbBlock(f.lbs)
								}
								if lb > lbs[j] {
									lbs[j] = lb
								}
								continue
							}
						}
						// Window membership, hint axis first, against the
						// leaf's contiguous coordinate block — the single
						// hottest loop of the traversal.
						p := n.coords[j*c.k : j*c.k+c.k]
						d := f.hint
						in := true
						for t := 0; t < c.k; t++ {
							if v := p[d]; v < c.wlo[d] || v > c.whi[d] {
								in = false
								break
							}
							d++
							if d == c.k {
								d = 0
							}
						}
						if !in {
							f.hint = d
							var lb float32
							if p[d] > c.whi[d] {
								lb = activationLB(p[d]-c.center[d], p[d])
							} else {
								lb = activationLB(c.center[d]-p[d], p[d])
							}
							if lb < f.minLB {
								f.minLB = lb
							}
							if lbs == nil {
								f.lbs = c.lbAlloc()
								lbs = c.lbBlock(f.lbs)
							}
							lbs[j] = lb
							continue
						}
					}
					f.mask |= bit
					c.emitted = append(c.emitted, emitRec{n: n, pos: f.pos, idx: uint16(j)})
					buf[out] = n.ids[j]
					out++
					if out == len(buf) {
						return out
					}
				}
				// Leaf exhausted for this round: drop it once every entry
				// has been reported, else park it with the smallest gap
				// its unreported entries need.
				if f.mask != fullMask(len(n.ids)) {
					c.next = append(c.next, cItem{n: n, thresh: f.minLB, dim: uint16(c.k), mask: f.mask, lbs: f.lbs})
				} else {
					c.lbFreeBlock(f.lbs)
				}
				c.stack = c.stack[:len(c.stack)-1]
				continue
			}
			if f.idx >= len(n.children) {
				c.stack = c.stack[:len(c.stack)-1]
				continue
			}
			ch := n.children[f.idx]
			f.idx++
			if f.contained {
				c.pushFrame(cItem{n: ch}, true)
				continue
			}
			d, lb, in := c.reaches(ch.rect.Min, ch.rect.Max, f.hint)
			if in {
				c.pushFrame(cItem{n: ch}, c.contains(ch.rect))
			} else {
				f.hint = int(d)
				c.next = append(c.next, cItem{n: ch, thresh: lb, dim: d})
			}
		}
		if c.pos >= len(c.cur) {
			return out
		}
		it := c.cur[c.pos]
		c.pos++
		if it.thresh > c.h {
			c.next = append(c.next, it) // certainly out of reach: one compare
			continue
		}
		if int(it.dim) < c.k {
			// The MBR's reach is not yet established: resume its window
			// test at the last failing axis.
			d, lb, in := c.reaches(it.n.rect.Min, it.n.rect.Max, int(it.dim))
			if !in {
				it.thresh, it.dim = lb, d
				c.next = append(c.next, it)
				continue
			}
		}
		c.pushFrame(it, c.contains(it.n.rect))
	}
}

// pushFrame enters a subtree: interior nodes walk children, leaves walk
// their unreported entries.
func (c *Cursor) pushFrame(it cItem, contained bool) {
	c.nodes++
	f := frame{
		n:         it.n,
		mask:      it.mask,
		minLB:     maxFloat32,
		hint:      int(it.dim) % c.k,
		pos:       int32(len(c.next)),
		lbs:       it.lbs,
		contained: contained,
	}
	if it.n.leaf {
		f.rem = fullMask(len(it.n.ids)) &^ it.mask
	}
	c.stack = append(c.stack, f)
}

// reaches reports whether the current round's window reaches the box
// [lo, hi] on every axis — exactly Rect.Intersects against the round's
// window rectangle, comparison for comparison (the axes are scanned
// starting at hint and wrapping, which changes nothing about the
// conjunction but lets the caller aim at the axis most likely to
// exclude). On failure it returns the failing axis and a certain lower
// bound on the half-width any window needs to pass that axis.
func (c *Cursor) reaches(lo, hi []float32, hint int) (uint16, float32, bool) {
	d := hint
	if d >= c.k {
		d = 0
	}
	for j := 0; j < c.k; j++ {
		if lo[d] > c.whi[d] {
			return uint16(d), activationLB(lo[d]-c.center[d], lo[d]), false
		}
		if hi[d] < c.wlo[d] {
			return uint16(d), activationLB(c.center[d]-hi[d], hi[d]), false
		}
		d++
		if d == c.k {
			d = 0
		}
	}
	return uint16(c.k), 0, true
}

// contains reports whether the current round's window contains the whole
// rectangle — every point inside it is then a window member by
// construction, with no per-point test needed.
func (c *Cursor) contains(r Rect) bool {
	for d := 0; d < c.k; d++ {
		if r.Min[d] < c.wlo[d] || r.Max[d] > c.whi[d] {
			return false
		}
	}
	return true
}

// activationLB returns a half-width certainly below every h whose window
// crosses an axis gap of t (computed in float32 between the item bound m
// and the center): the true crossover is within a couple of ulps of t —
// one from the gap subtraction, one from the window-bound rounding at the
// magnitude of m — so shaving two ulps of both scales (plus a denormal
// guard) is safe. The bound only defers the next real window test; it
// never decides reachability.
func activationLB(t, m float32) float32 {
	if m < 0 {
		m = -m
	}
	const eps = 2.4e-7 // 2 × 2⁻²³
	g := t - (t+m)*eps - 3e-44
	if g < 0 {
		return 0
	}
	return g
}

// quantGuardCode pads the code-space window by the quantized twin's total
// uncertainty, in code units: quantGuard (0.51) of round-to-nearest error
// plus 0.01 absorbing the float32 roundings of the window-to-code-space
// mapping itself, which at the only magnitudes where the comparison can be
// borderline (|code| ≤ 127) are ~10⁻⁵ code units. A code outside the padded
// window therefore certainly dequantizes outside the exact window.
const quantGuardCode = 0.52

// quantLB is activationLB for a gap measured in code units: tc codes of
// separation between an entry and the center certainly require a half-width
// of (tc − quantGuardCode)·scale before the entry can enter any window. The
// wider eps absorbs the extra dequantization and code-space-mapping
// roundings on top of activationLB's two.
func quantLB(tc, scale, m float32) float32 {
	if m < 0 {
		m = -m
	}
	const eps = 1e-6 // ~8 × 2⁻²³
	g := (tc - quantGuardCode) * scale
	g = g - (g+m)*eps - 3e-44
	if g < 0 {
		return 0
	}
	return g
}

// EndRound closes the current round, whether drained or abandoned early:
// in-progress descents unwind into the frontier (their unexamined
// remainders, in depth-first order) followed by the unexamined tail of
// the old frontier, so an early stop leaves every unreported point
// discoverable by the next round — exactly the state an aborted window
// re-scan leaves.
func (c *Cursor) EndRound() {
	for i := len(c.stack) - 1; i >= 0; i-- {
		f := c.stack[i]
		if f.n.leaf {
			// Unexamined entries remain (rem); entries that failed this
			// round's test stay unreported too. Re-test everything
			// unreported next round (stored per-entry bounds keep the
			// re-tests cheap).
			if f.mask != fullMask(len(f.n.ids)) {
				c.next = append(c.next, cItem{n: f.n, dim: uint16(c.k), mask: f.mask, lbs: f.lbs})
			} else {
				c.lbFreeBlock(f.lbs)
			}
			continue
		}
		for _, ch := range f.n.children[f.idx:] {
			c.next = append(c.next, cItem{n: ch})
		}
	}
	c.stack = c.stack[:0]
	c.next = append(c.next, c.cur[c.pos:]...)
	c.cur, c.next = c.next, c.cur[:0]
	c.pos = len(c.cur) // no further NextBatch until BeginRound
}

// Abandon discards the current round without rebuilding the frontier — the
// O(1) exit for a query that stops mid-round and will not advance this
// cursor again. It leaves the frontier incoherent, so Synced reports false
// and the next round (if any caller does continue) re-arms from the root,
// which the caller's visited set absorbs exactly like a mutation re-arm.
func (c *Cursor) Abandon() {
	c.stack = c.stack[:0]
	c.emitted = c.emitted[:0]
	c.returned = c.returned[:0]
	c.abandoned = true
	c.pos = len(c.cur) // no further NextBatch
}

// Unpop hands the i-th point emitted by the current round (0-based
// emission ordinal) back to the frontier; a later round reports it again,
// at its depth-first position. The query layer uses it for candidates
// that were gathered into a verification block but not consumed before a
// stop condition fired: those must remain discoverable, exactly as an
// aborted window re-scan leaves them unvisited. Valid until the next
// BeginRound/Reset/ReArm; each ordinal at most once.
func (c *Cursor) Unpop(i int) { c.returned = append(c.returned, int32(i)) }

// mergeReturned reconciles the entries handed back by Unpop with the
// frontier, in one pass over both (returned ordinals are ascending, so
// their frontier positions are non-decreasing): an entry whose leaf is
// still on the frontier gets its mask bit cleared in place — the leaf's
// next scan re-reports it, at its depth-first position among the leaf's
// entries — and an entry whose leaf was dropped as fully reported has the
// leaf spliced back in at its old position with exactly the handed-back
// bits clear.
func (c *Cursor) mergeReturned() {
	if len(c.returned) == 0 {
		c.emitted = c.emitted[:0]
		return
	}
	out := c.next[:0]
	prev := 0
	for gi := 0; gi < len(c.returned); {
		first := c.emitted[c.returned[gi]]
		p, n := int(first.pos), first.n
		var clear uint64
		for gi < len(c.returned) {
			rec := c.emitted[c.returned[gi]]
			if int(rec.pos) != p || rec.n != n {
				break
			}
			clear |= uint64(1) << uint(rec.idx)
			gi++
		}
		out = append(out, c.cur[prev:p]...)
		if p < len(c.cur) && c.cur[p].n == n {
			it := c.cur[p]
			it.mask &^= clear
			it.thresh = 0 // the cleared entries are in-window already
			out = append(out, it)
			prev = p + 1
		} else {
			out = append(out, cItem{n: n, dim: uint16(c.k), mask: fullMask(len(n.ids)) &^ clear})
			prev = p
		}
	}
	out = append(out, c.cur[prev:]...)
	c.cur, c.next = out, c.cur[:0]
	c.emitted = c.emitted[:0]
	c.returned = c.returned[:0]
}

// FrontierLen returns the number of frontier items (parked subtrees), the
// residual-traversal gauge surfaced in query statistics. Meaningful
// between rounds.
func (c *Cursor) FrontierLen() int { return len(c.cur) }

// NodesVisited returns the number of node visits since Reset/ReArm.
// Interior nodes are visited once per query; leaves straddling the window
// boundary are revisited once per round until every entry is reported.
func (c *Cursor) NodesVisited() int { return c.nodes }

// Exhausted reports whether the frontier is empty: every indexed point
// has been reported by some completed round (and none handed back).
// Meaningful between rounds.
func (c *Cursor) Exhausted() bool { return len(c.cur) == 0 && len(c.returned) == 0 }
