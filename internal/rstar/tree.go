package rstar

import (
	"fmt"
	"math"
	"sort"

	"dblsh/internal/vec"
)

// Default node capacities. 32 entries per node is a good fit for in-memory
// trees over 10–12 dimensional points.
const (
	DefaultMaxEntries = 32
	reinsertFraction  = 0.3 // R* "p": share of entries force-reinserted on first overflow
)

// Options configures a Tree.
type Options struct {
	// MaxEntries is the node capacity M (≥ 4). Defaults to DefaultMaxEntries.
	MaxEntries int
	// MinEntries is the minimum fill m (2 ≤ m ≤ M/2). Defaults to 40% of M,
	// the value recommended in the R*-tree paper.
	MinEntries int
	// Quantize maintains an int8 affine-quantized twin of every leaf's
	// coordinate mirror (node.qcoords), refitted per leaf against its own
	// value range on every leaf mutation. The cursor uses it as a
	// certain-exclusion pre-test: an entry whose quantized coordinate is
	// provably outside the window even after the quantization error bound
	// is skipped without touching its float32 coordinates, and everything
	// else falls through to the exact test — the emitted stream is
	// identical either way.
	Quantize bool
}

func (o Options) withDefaults() Options {
	if o.MaxEntries == 0 {
		o.MaxEntries = DefaultMaxEntries
	}
	if o.MaxEntries < 4 {
		o.MaxEntries = 4
	}
	if o.MinEntries == 0 {
		o.MinEntries = o.MaxEntries * 2 / 5
	}
	if o.MinEntries < 2 {
		o.MinEntries = 2
	}
	if o.MinEntries > o.MaxEntries/2 {
		o.MinEntries = o.MaxEntries / 2
	}
	return o
}

type node struct {
	rect     Rect
	children []*node // internal nodes only
	ids      []int32 // leaf entries: row indices into the tree's data matrix
	// coords mirrors the leaf entries' coordinates contiguously (entry j is
	// coords[j*dim : (j+1)*dim]), so a leaf scan reads ~len(ids)·dim·4
	// sequential bytes instead of chasing len(ids) random matrix rows —
	// the traversal's dominant cache cost. Maintained by every leaf
	// mutation; always non-nil in the sense that len(coords) == len(ids)·dim.
	coords []float32
	leaf   bool
	level  int // 0 = leaf
	// sortAxis is the axis the leaf's entries are kept sorted by (ascending,
	// ties by id) — chosen as the leaf rect's widest axis whenever the id set
	// is rebuilt wholesale, and preserved by in-place sorted insertion. The
	// cursor exploits the order to turn the window test on this axis into a
	// positional span (see Cursor.NextBatch).
	sortAxis uint16
	// keys duplicates the sort-axis coordinate of each entry contiguously
	// (keys[j] == coords[j*dim+sortAxis]), so the span binary search touches
	// two or three cache lines instead of one strided line per probe.
	keys []float32
	// qcoords is the int8 affine-quantized twin of coords (same layout, ¼
	// the bytes: a whole leaf's codes fit in a couple of cache lines), with
	// coords[i] ≈ qoff + qscale·qcoords[i] to within qscale/2 plus float
	// rounding. Present only when Options.Quantize is set; nil otherwise.
	// Aliasing contract: qcoords never aliases coords or the tree's data
	// matrix — it is refitted wholesale (quantizeLeaf) by every mutation
	// that touches coords, so within any span where the tree is unmutated
	// the twin is consistent with the mirror (CheckInvariants verifies the
	// error bound). qscale == 0 means the leaf's values span no range (or
	// the leaf is empty) and the twin carries no information.
	qcoords []int8
	qscale  float32
	qoff    float32
}

// entry returns the coordinates of the leaf's j-th entry from the
// cache-contiguous mirror.
func (n *node) entry(j, dim int) []float32 {
	return n.coords[j*dim : (j+1)*dim]
}

func (n *node) entryCount() int {
	if n.leaf {
		return len(n.ids)
	}
	return len(n.children)
}

// Tree is an R*-tree over the rows of a point matrix. The matrix is owned by
// the caller and must not shrink while the tree is alive; rows appended after
// construction can be indexed with Insert.
//
// Tree is not safe for concurrent mutation; concurrent read-only queries are
// safe.
type Tree struct {
	data *vec.Matrix
	opts Options
	root *node
	size int
	dim  int

	// version counts structural mutations. Cursors pin a traversal snapshot
	// of the node graph; they compare versions to detect that the snapshot
	// went stale and must be re-armed (see Cursor.Synced).
	version uint64

	// reinsertedAtLevel tracks which levels already did a forced reinsert
	// during the current insertion (R* performs at most one per level).
	reinsertedAtLevel map[int]bool
}

// New creates an empty R*-tree over data's rows. No rows are indexed yet;
// call Insert per row, or use BulkLoad to build a populated tree directly.
func New(data *vec.Matrix, opts Options) *Tree {
	if data.Dim() < 1 {
		panic("rstar: data must have at least one dimension")
	}
	return &Tree{
		data: data,
		opts: opts.withDefaults(),
		dim:  data.Dim(),
		root: &node{leaf: true, rect: emptyRect(data.Dim())},
	}
}

func emptyRect(dim int) Rect {
	return Rect{Min: make([]float32, dim), Max: make([]float32, dim)}
}

// Size returns the number of indexed points.
func (t *Tree) Size() int { return t.size }

// Dim returns the dimensionality of indexed points.
func (t *Tree) Dim() int { return t.dim }

// Height returns the number of levels (1 for a tree that is just a leaf).
func (t *Tree) Height() int { return t.root.level + 1 }

// Bounds returns the minimum bounding rectangle of all indexed points.
// For an empty tree the zero rectangle at the origin is returned.
func (t *Tree) Bounds() Rect { return t.root.rect.clone() }

// point returns the coordinates of entry id.
func (t *Tree) point(id int32) []float32 { return t.data.Row(int(id)) }

// Insert indexes row id of the data matrix using R* insertion with forced
// reinsertion.
func (t *Tree) Insert(id int) {
	if id < 0 || id >= t.data.Rows() {
		panic(fmt.Sprintf("rstar: insert id %d out of range [0,%d)", id, t.data.Rows()))
	}
	t.reinsertedAtLevel = map[int]bool{}
	t.insertPoint(int32(id))
	t.size++
	t.version++
}

// Version returns the tree's structural mutation counter. It changes on
// every Insert (splits and reinsertions rearrange nodes a cursor may hold),
// so a cursor created at one version must be re-armed before advancing once
// the versions disagree.
func (t *Tree) Version() uint64 { return t.version }

func (t *Tree) insertPoint(id int32) {
	p := t.point(id)
	r := PointRect(p)
	path := t.descend(r, 0)
	leafN := path[len(path)-1]
	wasEmpty := len(leafN.ids) == 0

	// Insert at the position that keeps the leaf sorted by its sort axis
	// (ties after equals, then by id — any stable deterministic rule works;
	// the cursor only needs the stored order to be non-decreasing).
	ax := int(leafN.sortAxis)
	v := p[ax]
	i, j := 0, len(leafN.ids)
	for i < j {
		h := int(uint(i+j) >> 1)
		if w := leafN.keys[h]; w < v || (w == v && leafN.ids[h] < id) {
			i = h + 1
		} else {
			j = h
		}
	}
	pos := i
	leafN.ids = append(leafN.ids, 0)
	copy(leafN.ids[pos+1:], leafN.ids[pos:])
	leafN.ids[pos] = id
	leafN.keys = append(leafN.keys, 0)
	copy(leafN.keys[pos+1:], leafN.keys[pos:])
	leafN.keys[pos] = v
	leafN.coords = append(leafN.coords, p...)
	copy(leafN.coords[(pos+1)*t.dim:], leafN.coords[pos*t.dim:len(leafN.coords)-t.dim])
	copy(leafN.coords[pos*t.dim:(pos+1)*t.dim], p)
	t.quantizeLeaf(leafN)

	t.expandPath(path, r, wasEmpty)
	t.handleOverflow(path)
}

// finalizeLeaf (re)establishes the leaf scan layout after its id set changed
// wholesale: the sort axis is re-chosen as the widest axis of the leaf's
// rect (which callers must have recomputed tightly first), the ids are
// sorted by that axis (ties by id), and the contiguous coordinate mirror is
// rebuilt to match.
func (t *Tree) finalizeLeaf(n *node) {
	axis := 0
	if len(n.ids) > 0 {
		widest := n.rect.Max[0] - n.rect.Min[0]
		for d := 1; d < t.dim; d++ {
			if e := n.rect.Max[d] - n.rect.Min[d]; e > widest {
				widest, axis = e, d
			}
		}
	}
	n.sortAxis = uint16(axis)
	sort.Slice(n.ids, func(a, b int) bool {
		va, vb := t.point(n.ids[a])[axis], t.point(n.ids[b])[axis]
		if va != vb {
			return va < vb
		}
		return n.ids[a] < n.ids[b]
	})
	t.rebuildLeafCoords(n)
}

// rebuildLeafCoords refreshes a leaf's contiguous coordinate mirror after
// its id set was reordered or cut.
func (t *Tree) rebuildLeafCoords(n *node) {
	n.coords = n.coords[:0]
	n.keys = n.keys[:0]
	ax := int(n.sortAxis)
	for _, id := range n.ids {
		p := t.point(id)
		n.coords = append(n.coords, p...)
		n.keys = append(n.keys, p[ax])
	}
	t.quantizeLeaf(n)
}

// quantGuard is the certain error allowance of the leaf twin in code units:
// 0.5 of nearest-integer rounding plus generous headroom for every float32
// rounding in the affine map and its consumers. Consumers treat a code as
// "true value within qscale·quantGuard of its dequantization"; widening the
// guard only weakens the accelerator, never correctness.
const quantGuard = 0.51

// quantizeLeaf refits a leaf's int8 twin from its coordinate mirror: one
// affine map per leaf, fitted to the leaf's own min/max across all axes.
// Refitting wholesale on every mutation keeps the twin trivially consistent
// (a leaf holds ≤ MaxEntries+1 entries, so the refit is a few hundred
// multiply-rounds at most).
func (t *Tree) quantizeLeaf(n *node) {
	if !t.opts.Quantize {
		return
	}
	if cap(n.qcoords) < len(n.coords) {
		n.qcoords = make([]int8, len(n.coords))
	}
	n.qcoords = n.qcoords[:len(n.coords)]
	if len(n.coords) == 0 {
		n.qscale, n.qoff = 0, 0
		return
	}
	lo, hi := n.coords[0], n.coords[0]
	for _, v := range n.coords[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if !(hi > lo) {
		n.qscale, n.qoff = 0, lo
		for i := range n.qcoords {
			n.qcoords[i] = 0
		}
		return
	}
	scale := (hi - lo) / 254
	off := lo + (hi-lo)/2
	n.qscale, n.qoff = scale, off
	inv := 1 / float64(scale)
	for i, v := range n.coords {
		u := math.Round((float64(v) - float64(off)) * inv)
		if u > 127 {
			u = 127
		} else if u < -127 {
			u = -127
		}
		n.qcoords[i] = int8(u)
	}
}

// SetQuantize enables or disables the leaf twins on a built tree — the
// operational toggle for restore paths, since Options.Quantize itself is
// not persisted. Enabling refits every leaf; disabling drops the twins.
// Not safe concurrently with queries or mutations; live cursors observe a
// version bump and re-arm.
func (t *Tree) SetQuantize(on bool) {
	if t.opts.Quantize == on {
		return
	}
	t.opts.Quantize = on
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			if on {
				t.quantizeLeaf(n)
			} else {
				n.qcoords, n.qscale, n.qoff = nil, 0, 0
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	t.version++
}

func (t *Tree) insertSubtree(sub *node) {
	path := t.descend(sub.rect, sub.level+1)
	n := path[len(path)-1]
	wasEmpty := len(n.children) == 0
	n.children = append(n.children, sub)
	t.expandPath(path, sub.rect, wasEmpty)
	t.handleOverflow(path)
}

// descend walks from the root to a node at targetLevel, choosing children by
// the R* ChooseSubtree criteria, and returns the root-to-target path.
func (t *Tree) descend(r Rect, targetLevel int) []*node {
	n := t.root
	path := make([]*node, 1, n.level+1)
	path[0] = n
	for n.level > targetLevel {
		n = t.bestChild(n, r)
		path = append(path, n)
	}
	return path
}

// expandPath grows the rectangles along an insertion path to include r. When
// the target node was empty before the insert, its rectangle is reset to r
// rather than expanded (the zero rect of an empty node must not leak in).
func (t *Tree) expandPath(path []*node, r Rect, targetWasEmpty bool) {
	last := len(path) - 1
	if targetWasEmpty {
		path[last].rect = r.clone()
	} else {
		path[last].rect.ExpandInPlace(r)
	}
	for i := last - 1; i >= 0; i-- {
		path[i].rect.ExpandInPlace(r)
	}
}

// handleOverflow applies R* overflow treatment bottom-up along the insertion
// path: forced reinsertion once per level, splits afterwards.
func (t *Tree) handleOverflow(path []*node) {
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		if n.entryCount() <= t.opts.MaxEntries {
			return
		}
		if n != t.root && !t.reinsertedAtLevel[n.level] {
			t.reinsertedAtLevel[n.level] = true
			t.forceReinsert(n, path[:i+1])
			return
		}
		sibling := t.performSplit(n)
		if n == t.root {
			newRoot := &node{
				level:    n.level + 1,
				children: []*node{n, sibling},
			}
			recomputeRect(newRoot)
			t.root = newRoot
			return
		}
		parent := path[i-1]
		parent.children = append(parent.children, sibling)
		recomputeRect(parent)
	}
}

// forceReinsert evicts the entries of n farthest from its centre, tightens
// the rectangles along the path, and re-inserts the evicted entries from the
// top (R* forced reinsertion).
func (t *Tree) forceReinsert(n *node, path []*node) {
	p := int(float64(t.opts.MaxEntries+1)*reinsertFraction + 0.5)
	if p < 1 {
		p = 1
	}
	center := n.rect.Center(nil)
	centerRect := Rect{Min: center, Max: center}

	if n.leaf {
		ids := n.ids
		sort.Slice(ids, func(a, b int) bool {
			return pointDistSq(center, t.point(ids[a])) > pointDistSq(center, t.point(ids[b]))
		})
		evicted := append([]int32(nil), ids[:p]...)
		n.ids = ids[p:]
		t.recomputeLeafRect(n)
		t.finalizeLeaf(n)
		tightenPath(path)
		// Close reinsert: nearest evictions first.
		for i := len(evicted) - 1; i >= 0; i-- {
			t.insertPoint(evicted[i])
		}
		return
	}

	children := n.children
	sort.Slice(children, func(a, b int) bool {
		return children[a].rect.CenterDistSq(centerRect) > children[b].rect.CenterDistSq(centerRect)
	})
	evicted := append([]*node(nil), children[:p]...)
	n.children = children[p:]
	recomputeRect(n)
	tightenPath(path)
	for i := len(evicted) - 1; i >= 0; i-- {
		t.insertSubtree(evicted[i])
	}
}

// tightenPath recomputes the rectangles of the interior nodes on a
// root-to-target path after entries were removed from the target.
func tightenPath(path []*node) {
	for i := len(path) - 2; i >= 0; i-- {
		recomputeRect(path[i])
	}
}

func recomputeRect(n *node) {
	if n.leaf || len(n.children) == 0 {
		return
	}
	n.rect = n.children[0].rect.clone()
	for _, c := range n.children[1:] {
		n.rect.ExpandInPlace(c.rect)
	}
}

func (t *Tree) recomputeLeafRect(n *node) {
	if len(n.ids) == 0 {
		n.rect = emptyRect(t.dim)
		return
	}
	n.rect = PointRect(t.point(n.ids[0]))
	for _, id := range n.ids[1:] {
		n.rect.ExpandPoint(t.point(id))
	}
}

// bestChild picks the child of n to descend into when inserting rect r.
// For nodes whose children are leaves, R* minimizes overlap enlargement;
// higher up it minimizes area enlargement. Ties break by smaller area.
func (t *Tree) bestChild(n *node, r Rect) *node {
	children := n.children
	if len(children) == 0 {
		panic("rstar: bestChild on node without children")
	}
	if children[0].leaf {
		best := children[0]
		bestOverlap := overlapEnlargement(children, 0, r)
		bestEnl := children[0].rect.EnlargementArea(r)
		bestArea := children[0].rect.Area()
		for i := 1; i < len(children); i++ {
			c := children[i]
			ov := overlapEnlargement(children, i, r)
			if ov > bestOverlap {
				continue
			}
			enl := c.rect.EnlargementArea(r)
			area := c.rect.Area()
			if ov < bestOverlap ||
				(enl < bestEnl) ||
				(enl == bestEnl && area < bestArea) {
				best, bestOverlap, bestEnl, bestArea = c, ov, enl, area
			}
		}
		return best
	}
	best := children[0]
	bestEnl := children[0].rect.EnlargementArea(r)
	bestArea := children[0].rect.Area()
	for i := 1; i < len(children); i++ {
		c := children[i]
		enl := c.rect.EnlargementArea(r)
		area := c.rect.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = c, enl, area
		}
	}
	return best
}

// overlapEnlargement computes how much the overlap between children[i] and
// its siblings grows if children[i] is enlarged to cover r.
func overlapEnlargement(children []*node, i int, r Rect) float64 {
	enlarged := children[i].rect.Enlarged(r)
	var delta float64
	for j, c := range children {
		if j == i {
			continue
		}
		delta += enlarged.OverlapArea(c.rect) - children[i].rect.OverlapArea(c.rect)
	}
	return delta
}

func pointDistSq(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return s
}

// Stats describes the shape of a tree, used by tests and the benchmark
// harness to report index size.
type Stats struct {
	Height      int
	Nodes       int
	Leaves      int
	Entries     int
	AvgFill     float64 // mean entries per node / MaxEntries
	BytesApprox int64   // rough in-memory footprint of the tree structure
}

// ComputeStats walks the tree and returns shape statistics.
func (t *Tree) ComputeStats() Stats {
	var s Stats
	s.Height = t.Height()
	var totalFill float64
	var walk func(n *node)
	walk = func(n *node) {
		s.Nodes++
		totalFill += float64(n.entryCount()) / float64(t.opts.MaxEntries)
		s.BytesApprox += int64(len(n.rect.Min)+len(n.rect.Max))*4 + 64
		if n.leaf {
			s.Leaves++
			s.Entries += len(n.ids)
			s.BytesApprox += int64(len(n.ids))*4 + int64(len(n.coords))*4 + int64(len(n.keys))*4 + int64(len(n.qcoords))
			return
		}
		s.BytesApprox += int64(len(n.children)) * 8
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	if s.Nodes > 0 {
		s.AvgFill = totalFill / float64(s.Nodes)
	}
	return s
}
