package rstar

import (
	"fmt"
	"sort"

	"dblsh/internal/vec"
)

// Default node capacities. 32 entries per node is a good fit for in-memory
// trees over 10–12 dimensional points.
const (
	DefaultMaxEntries = 32
	reinsertFraction  = 0.3 // R* "p": share of entries force-reinserted on first overflow
)

// Options configures a Tree.
type Options struct {
	// MaxEntries is the node capacity M (≥ 4). Defaults to DefaultMaxEntries.
	MaxEntries int
	// MinEntries is the minimum fill m (2 ≤ m ≤ M/2). Defaults to 40% of M,
	// the value recommended in the R*-tree paper.
	MinEntries int
}

func (o Options) withDefaults() Options {
	if o.MaxEntries == 0 {
		o.MaxEntries = DefaultMaxEntries
	}
	if o.MaxEntries < 4 {
		o.MaxEntries = 4
	}
	if o.MinEntries == 0 {
		o.MinEntries = o.MaxEntries * 2 / 5
	}
	if o.MinEntries < 2 {
		o.MinEntries = 2
	}
	if o.MinEntries > o.MaxEntries/2 {
		o.MinEntries = o.MaxEntries / 2
	}
	return o
}

type node struct {
	rect     Rect
	children []*node // internal nodes only
	ids      []int32 // leaf entries: row indices into the tree's data matrix
	// coords mirrors the leaf entries' coordinates contiguously (entry j is
	// coords[j*dim : (j+1)*dim]), so a leaf scan reads ~len(ids)·dim·4
	// sequential bytes instead of chasing len(ids) random matrix rows —
	// the traversal's dominant cache cost. Maintained by every leaf
	// mutation; always non-nil in the sense that len(coords) == len(ids)·dim.
	coords []float32
	leaf   bool
	level  int // 0 = leaf
}

// entry returns the coordinates of the leaf's j-th entry from the
// cache-contiguous mirror.
func (n *node) entry(j, dim int) []float32 {
	return n.coords[j*dim : (j+1)*dim]
}

func (n *node) entryCount() int {
	if n.leaf {
		return len(n.ids)
	}
	return len(n.children)
}

// Tree is an R*-tree over the rows of a point matrix. The matrix is owned by
// the caller and must not shrink while the tree is alive; rows appended after
// construction can be indexed with Insert.
//
// Tree is not safe for concurrent mutation; concurrent read-only queries are
// safe.
type Tree struct {
	data *vec.Matrix
	opts Options
	root *node
	size int
	dim  int

	// version counts structural mutations. Cursors pin a traversal snapshot
	// of the node graph; they compare versions to detect that the snapshot
	// went stale and must be re-armed (see Cursor.Synced).
	version uint64

	// reinsertedAtLevel tracks which levels already did a forced reinsert
	// during the current insertion (R* performs at most one per level).
	reinsertedAtLevel map[int]bool
}

// New creates an empty R*-tree over data's rows. No rows are indexed yet;
// call Insert per row, or use BulkLoad to build a populated tree directly.
func New(data *vec.Matrix, opts Options) *Tree {
	if data.Dim() < 1 {
		panic("rstar: data must have at least one dimension")
	}
	return &Tree{
		data: data,
		opts: opts.withDefaults(),
		dim:  data.Dim(),
		root: &node{leaf: true, rect: emptyRect(data.Dim())},
	}
}

func emptyRect(dim int) Rect {
	return Rect{Min: make([]float32, dim), Max: make([]float32, dim)}
}

// Size returns the number of indexed points.
func (t *Tree) Size() int { return t.size }

// Dim returns the dimensionality of indexed points.
func (t *Tree) Dim() int { return t.dim }

// Height returns the number of levels (1 for a tree that is just a leaf).
func (t *Tree) Height() int { return t.root.level + 1 }

// Bounds returns the minimum bounding rectangle of all indexed points.
// For an empty tree the zero rectangle at the origin is returned.
func (t *Tree) Bounds() Rect { return t.root.rect.clone() }

// point returns the coordinates of entry id.
func (t *Tree) point(id int32) []float32 { return t.data.Row(int(id)) }

// Insert indexes row id of the data matrix using R* insertion with forced
// reinsertion.
func (t *Tree) Insert(id int) {
	if id < 0 || id >= t.data.Rows() {
		panic(fmt.Sprintf("rstar: insert id %d out of range [0,%d)", id, t.data.Rows()))
	}
	t.reinsertedAtLevel = map[int]bool{}
	t.insertPoint(int32(id))
	t.size++
	t.version++
}

// Version returns the tree's structural mutation counter. It changes on
// every Insert (splits and reinsertions rearrange nodes a cursor may hold),
// so a cursor created at one version must be re-armed before advancing once
// the versions disagree.
func (t *Tree) Version() uint64 { return t.version }

func (t *Tree) insertPoint(id int32) {
	r := PointRect(t.point(id))
	path := t.descend(r, 0)
	leafN := path[len(path)-1]
	wasEmpty := len(leafN.ids) == 0
	leafN.ids = append(leafN.ids, id)
	leafN.coords = append(leafN.coords, t.point(id)...)
	t.expandPath(path, r, wasEmpty)
	t.handleOverflow(path)
}

// rebuildLeafCoords refreshes a leaf's contiguous coordinate mirror after
// its id set was reordered or cut.
func (t *Tree) rebuildLeafCoords(n *node) {
	n.coords = n.coords[:0]
	for _, id := range n.ids {
		n.coords = append(n.coords, t.point(id)...)
	}
}

func (t *Tree) insertSubtree(sub *node) {
	path := t.descend(sub.rect, sub.level+1)
	n := path[len(path)-1]
	wasEmpty := len(n.children) == 0
	n.children = append(n.children, sub)
	t.expandPath(path, sub.rect, wasEmpty)
	t.handleOverflow(path)
}

// descend walks from the root to a node at targetLevel, choosing children by
// the R* ChooseSubtree criteria, and returns the root-to-target path.
func (t *Tree) descend(r Rect, targetLevel int) []*node {
	n := t.root
	path := make([]*node, 1, n.level+1)
	path[0] = n
	for n.level > targetLevel {
		n = t.bestChild(n, r)
		path = append(path, n)
	}
	return path
}

// expandPath grows the rectangles along an insertion path to include r. When
// the target node was empty before the insert, its rectangle is reset to r
// rather than expanded (the zero rect of an empty node must not leak in).
func (t *Tree) expandPath(path []*node, r Rect, targetWasEmpty bool) {
	last := len(path) - 1
	if targetWasEmpty {
		path[last].rect = r.clone()
	} else {
		path[last].rect.ExpandInPlace(r)
	}
	for i := last - 1; i >= 0; i-- {
		path[i].rect.ExpandInPlace(r)
	}
}

// handleOverflow applies R* overflow treatment bottom-up along the insertion
// path: forced reinsertion once per level, splits afterwards.
func (t *Tree) handleOverflow(path []*node) {
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		if n.entryCount() <= t.opts.MaxEntries {
			return
		}
		if n != t.root && !t.reinsertedAtLevel[n.level] {
			t.reinsertedAtLevel[n.level] = true
			t.forceReinsert(n, path[:i+1])
			return
		}
		sibling := t.performSplit(n)
		if n == t.root {
			newRoot := &node{
				level:    n.level + 1,
				children: []*node{n, sibling},
			}
			recomputeRect(newRoot)
			t.root = newRoot
			return
		}
		parent := path[i-1]
		parent.children = append(parent.children, sibling)
		recomputeRect(parent)
	}
}

// forceReinsert evicts the entries of n farthest from its centre, tightens
// the rectangles along the path, and re-inserts the evicted entries from the
// top (R* forced reinsertion).
func (t *Tree) forceReinsert(n *node, path []*node) {
	p := int(float64(t.opts.MaxEntries+1)*reinsertFraction + 0.5)
	if p < 1 {
		p = 1
	}
	center := n.rect.Center(nil)
	centerRect := Rect{Min: center, Max: center}

	if n.leaf {
		ids := n.ids
		sort.Slice(ids, func(a, b int) bool {
			return pointDistSq(center, t.point(ids[a])) > pointDistSq(center, t.point(ids[b]))
		})
		evicted := append([]int32(nil), ids[:p]...)
		n.ids = ids[p:]
		t.rebuildLeafCoords(n)
		t.recomputeLeafRect(n)
		tightenPath(path)
		// Close reinsert: nearest evictions first.
		for i := len(evicted) - 1; i >= 0; i-- {
			t.insertPoint(evicted[i])
		}
		return
	}

	children := n.children
	sort.Slice(children, func(a, b int) bool {
		return children[a].rect.CenterDistSq(centerRect) > children[b].rect.CenterDistSq(centerRect)
	})
	evicted := append([]*node(nil), children[:p]...)
	n.children = children[p:]
	recomputeRect(n)
	tightenPath(path)
	for i := len(evicted) - 1; i >= 0; i-- {
		t.insertSubtree(evicted[i])
	}
}

// tightenPath recomputes the rectangles of the interior nodes on a
// root-to-target path after entries were removed from the target.
func tightenPath(path []*node) {
	for i := len(path) - 2; i >= 0; i-- {
		recomputeRect(path[i])
	}
}

func recomputeRect(n *node) {
	if n.leaf || len(n.children) == 0 {
		return
	}
	n.rect = n.children[0].rect.clone()
	for _, c := range n.children[1:] {
		n.rect.ExpandInPlace(c.rect)
	}
}

func (t *Tree) recomputeLeafRect(n *node) {
	if len(n.ids) == 0 {
		n.rect = emptyRect(t.dim)
		return
	}
	n.rect = PointRect(t.point(n.ids[0]))
	for _, id := range n.ids[1:] {
		n.rect.ExpandPoint(t.point(id))
	}
}

// bestChild picks the child of n to descend into when inserting rect r.
// For nodes whose children are leaves, R* minimizes overlap enlargement;
// higher up it minimizes area enlargement. Ties break by smaller area.
func (t *Tree) bestChild(n *node, r Rect) *node {
	children := n.children
	if len(children) == 0 {
		panic("rstar: bestChild on node without children")
	}
	if children[0].leaf {
		best := children[0]
		bestOverlap := overlapEnlargement(children, 0, r)
		bestEnl := children[0].rect.EnlargementArea(r)
		bestArea := children[0].rect.Area()
		for i := 1; i < len(children); i++ {
			c := children[i]
			ov := overlapEnlargement(children, i, r)
			if ov > bestOverlap {
				continue
			}
			enl := c.rect.EnlargementArea(r)
			area := c.rect.Area()
			if ov < bestOverlap ||
				(enl < bestEnl) ||
				(enl == bestEnl && area < bestArea) {
				best, bestOverlap, bestEnl, bestArea = c, ov, enl, area
			}
		}
		return best
	}
	best := children[0]
	bestEnl := children[0].rect.EnlargementArea(r)
	bestArea := children[0].rect.Area()
	for i := 1; i < len(children); i++ {
		c := children[i]
		enl := c.rect.EnlargementArea(r)
		area := c.rect.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = c, enl, area
		}
	}
	return best
}

// overlapEnlargement computes how much the overlap between children[i] and
// its siblings grows if children[i] is enlarged to cover r.
func overlapEnlargement(children []*node, i int, r Rect) float64 {
	enlarged := children[i].rect.Enlarged(r)
	var delta float64
	for j, c := range children {
		if j == i {
			continue
		}
		delta += enlarged.OverlapArea(c.rect) - children[i].rect.OverlapArea(c.rect)
	}
	return delta
}

func pointDistSq(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return s
}

// Stats describes the shape of a tree, used by tests and the benchmark
// harness to report index size.
type Stats struct {
	Height      int
	Nodes       int
	Leaves      int
	Entries     int
	AvgFill     float64 // mean entries per node / MaxEntries
	BytesApprox int64   // rough in-memory footprint of the tree structure
}

// ComputeStats walks the tree and returns shape statistics.
func (t *Tree) ComputeStats() Stats {
	var s Stats
	s.Height = t.Height()
	var totalFill float64
	var walk func(n *node)
	walk = func(n *node) {
		s.Nodes++
		totalFill += float64(n.entryCount()) / float64(t.opts.MaxEntries)
		s.BytesApprox += int64(len(n.rect.Min)+len(n.rect.Max))*4 + 64
		if n.leaf {
			s.Leaves++
			s.Entries += len(n.ids)
			s.BytesApprox += int64(len(n.ids))*4 + int64(len(n.coords))*4
			return
		}
		s.BytesApprox += int64(len(n.children)) * 8
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	if s.Nodes > 0 {
		s.AvgFill = totalFill / float64(s.Nodes)
	}
	return s
}
