package rstar

import "sort"

// performSplit splits an overflowing node using the R*-tree topological
// split: choose the split axis by minimum total margin over all candidate
// distributions, then the distribution on that axis with minimum overlap
// (ties by minimum combined area). The node keeps the first group; the
// returned sibling holds the second.
func (t *Tree) performSplit(n *node) *node {
	if n.leaf {
		return t.splitLeaf(n)
	}
	return t.splitInternal(n)
}

// splitCandidate is one way of cutting a sorted entry sequence in two.
type splitCandidate struct {
	axis     int
	useUpper bool // sort by upper face instead of lower (internal nodes)
	cut      int  // first group is entries[:cut]
	overlap  float64
	area     float64
}

func (t *Tree) splitLeaf(n *node) *node {
	m := t.opts.MinEntries
	ids := n.ids
	total := len(ids)

	bestAxis := -1
	var bestMargin float64
	// Choose axis: minimize the sum of margins over all distributions.
	for axis := 0; axis < t.dim; axis++ {
		t.sortIDsByAxis(ids, axis)
		margin := 0.0
		for cut := m; cut <= total-m; cut++ {
			r1 := t.rectOfIDs(ids[:cut])
			r2 := t.rectOfIDs(ids[cut:])
			margin += r1.Margin() + r2.Margin()
		}
		if bestAxis == -1 || margin < bestMargin {
			bestAxis, bestMargin = axis, margin
		}
	}

	// Choose index on the best axis: minimize overlap, ties by area.
	t.sortIDsByAxis(ids, bestAxis)
	bestCut := -1
	var bestOverlap, bestArea float64
	for cut := m; cut <= total-m; cut++ {
		r1 := t.rectOfIDs(ids[:cut])
		r2 := t.rectOfIDs(ids[cut:])
		ov := r1.OverlapArea(r2)
		area := r1.Area() + r2.Area()
		if bestCut == -1 || ov < bestOverlap || (ov == bestOverlap && area < bestArea) {
			bestCut, bestOverlap, bestArea = cut, ov, area
		}
	}

	siblingIDs := append([]int32(nil), ids[bestCut:]...)
	n.ids = ids[:bestCut]
	t.recomputeLeafRect(n)
	t.finalizeLeaf(n)
	sibling := &node{leaf: true, level: 0, ids: siblingIDs}
	t.recomputeLeafRect(sibling)
	t.finalizeLeaf(sibling)
	return sibling
}

func (t *Tree) splitInternal(n *node) *node {
	m := t.opts.MinEntries
	children := n.children
	total := len(children)

	bestAxis, bestUpper := -1, false
	var bestMargin float64
	for axis := 0; axis < t.dim; axis++ {
		for _, upper := range []bool{false, true} {
			sortNodesByAxis(children, axis, upper)
			margin := 0.0
			for cut := m; cut <= total-m; cut++ {
				r1 := rectOfNodes(children[:cut])
				r2 := rectOfNodes(children[cut:])
				margin += r1.Margin() + r2.Margin()
			}
			if bestAxis == -1 || margin < bestMargin {
				bestAxis, bestUpper, bestMargin = axis, upper, margin
			}
		}
	}

	sortNodesByAxis(children, bestAxis, bestUpper)
	bestCut := -1
	var bestOverlap, bestArea float64
	for cut := m; cut <= total-m; cut++ {
		r1 := rectOfNodes(children[:cut])
		r2 := rectOfNodes(children[cut:])
		ov := r1.OverlapArea(r2)
		area := r1.Area() + r2.Area()
		if bestCut == -1 || ov < bestOverlap || (ov == bestOverlap && area < bestArea) {
			bestCut, bestOverlap, bestArea = cut, ov, area
		}
	}

	siblingChildren := append([]*node(nil), children[bestCut:]...)
	n.children = children[:bestCut]
	recomputeRect(n)
	sibling := &node{leaf: false, level: n.level, children: siblingChildren}
	recomputeRect(sibling)
	return sibling
}

func (t *Tree) sortIDsByAxis(ids []int32, axis int) {
	sort.Slice(ids, func(a, b int) bool {
		return t.point(ids[a])[axis] < t.point(ids[b])[axis]
	})
}

func sortNodesByAxis(ns []*node, axis int, upper bool) {
	sort.Slice(ns, func(a, b int) bool {
		if upper {
			return ns[a].rect.Max[axis] < ns[b].rect.Max[axis]
		}
		return ns[a].rect.Min[axis] < ns[b].rect.Min[axis]
	})
}

func (t *Tree) rectOfIDs(ids []int32) Rect {
	r := PointRect(t.point(ids[0]))
	for _, id := range ids[1:] {
		r.ExpandPoint(t.point(id))
	}
	return r
}

func rectOfNodes(ns []*node) Rect {
	r := ns[0].rect.clone()
	for _, c := range ns[1:] {
		r.ExpandInPlace(c.rect)
	}
	return r
}
