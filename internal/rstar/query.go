package rstar

import "container/heap"

// Window invokes visit for every indexed point inside rect w (faces
// inclusive). Traversal stops early when visit returns false. The visit order
// is deterministic for a given tree but otherwise unspecified.
//
// This is the index-based window query of the paper's Section IV-C: DB-LSH
// materializes a query-centric bucket W(G(q), w0·r) as a window query on the
// projected space.
func (t *Tree) Window(w Rect, visit func(id int) bool) {
	t.WindowVisits(w, visit)
}

// WindowVisits is Window, additionally returning the number of tree nodes
// examined — the traversal-cost figure the query layer surfaces in its
// statistics.
func (t *Tree) WindowVisits(w Rect, visit func(id int) bool) int {
	if t.size == 0 {
		return 0
	}
	nodes, _ := t.window(t.root, w, visit)
	return nodes
}

func (t *Tree) window(n *node, w Rect, visit func(id int) bool) (int, bool) {
	nodes := 1
	if n.leaf {
		for j, id := range n.ids {
			if w.Contains(n.entry(j, t.dim)) {
				if !visit(int(id)) {
					return nodes, false
				}
			}
		}
		return nodes, true
	}
	for _, c := range n.children {
		if !w.Intersects(c.rect) {
			continue
		}
		sub, ok := t.window(c, w, visit)
		nodes += sub
		if !ok {
			return nodes, false
		}
	}
	return nodes, true
}

// Covered reports whether the window of half-width half centred at center
// (the float32 rectangle WindowRect(center, 2·half) builds) contains the
// tree's entire bounding box — the ladder's natural end. An empty tree is
// trivially covered; its zero-rect bounds would otherwise pin the window
// to the origin. Allocation-free, unlike testing against Bounds.
func (t *Tree) Covered(center []float32, half float64) bool {
	if t.size == 0 {
		return true
	}
	h := float32(half)
	b := t.root.rect
	for j, c := range center {
		if b.Min[j] < c-h || b.Max[j] > c+h {
			return false
		}
	}
	return true
}

// WindowAll returns every id inside w. Convenience wrapper over Window.
func (t *Tree) WindowAll(w Rect) []int {
	var out []int
	t.Window(w, func(id int) bool {
		out = append(out, id)
		return true
	})
	return out
}

// Count returns the number of indexed points inside w.
func (t *Tree) Count(w Rect) int {
	n := 0
	t.Window(w, func(int) bool {
		n++
		return true
	})
	return n
}

// nnItem is a heap entry for best-first search: either a node or a point.
type nnItem struct {
	distSq float64
	n      *node
	id     int32
	point  bool
}

type nnHeap []nnItem

func (h nnHeap) Len() int            { return len(h) }
func (h nnHeap) Less(i, j int) bool  { return h[i].distSq < h[j].distSq }
func (h nnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nnHeap) Push(x interface{}) { *h = append(*h, x.(nnItem)) }
func (h *nnHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// NearestK returns the ids of the k nearest indexed points to q in the
// tree's (projected) space, nearest first, using best-first traversal with
// MINDIST pruning. Fewer than k ids are returned when the tree is smaller
// than k.
func (t *Tree) NearestK(q []float32, k int) []int {
	out := make([]int, 0, k)
	t.NearestVisit(q, func(id int, distSq float64) bool {
		out = append(out, id)
		return len(out) < k
	})
	return out
}

// NearestVisit streams indexed points in ascending distance-from-q order,
// calling visit with each id and its squared distance, until visit returns
// false or the tree is exhausted. This incremental form is what the PM-LSH
// baseline uses for metric queries in the projected space.
func (t *Tree) NearestVisit(q []float32, visit func(id int, distSq float64) bool) {
	if t.size == 0 {
		return
	}
	h := &nnHeap{{distSq: t.root.rect.MinDistSq(q), n: t.root}}
	for h.Len() > 0 {
		it := heap.Pop(h).(nnItem)
		if it.point {
			if !visit(int(it.id), it.distSq) {
				return
			}
			continue
		}
		n := it.n
		if n.leaf {
			for _, id := range n.ids {
				heap.Push(h, nnItem{distSq: pointDistSq(q, t.point(id)), id: id, point: true})
			}
			continue
		}
		for _, c := range n.children {
			heap.Push(h, nnItem{distSq: c.rect.MinDistSq(q), n: c})
		}
	}
}

// CheckInvariants validates structural invariants and returns a description
// of the first violation found, or "" when the tree is consistent:
//
//   - every node's rect tightly bounds its entries,
//   - every non-root node has between MinEntries and MaxEntries entries
//     (leaves packed by bulk loading may be under-filled only at the tail),
//   - all leaves are at level 0 and levels decrease by one per step,
//   - Size() equals the number of leaf entries.
//
// Intended for tests and debugging; it walks the whole tree.
func (t *Tree) CheckInvariants() string {
	total := 0
	var check func(n *node, isRoot bool) string
	var checkRect func(n *node) string
	checkRect = func(n *node) string {
		if n.leaf {
			if len(n.ids) == 0 {
				return ""
			}
			want := PointRect(t.point(n.ids[0]))
			for _, id := range n.ids[1:] {
				want.ExpandPoint(t.point(id))
			}
			for i := range want.Min {
				if want.Min[i] != n.rect.Min[i] || want.Max[i] != n.rect.Max[i] {
					return "leaf rect is not tight"
				}
			}
			return ""
		}
		want := n.children[0].rect.clone()
		for _, c := range n.children[1:] {
			want.ExpandInPlace(c.rect)
		}
		for i := range want.Min {
			if want.Min[i] != n.rect.Min[i] || want.Max[i] != n.rect.Max[i] {
				return "internal rect is not tight"
			}
		}
		return ""
	}
	check = func(n *node, isRoot bool) string {
		if n.leaf {
			total += len(n.ids)
			if n.level != 0 {
				return "leaf not at level 0"
			}
			if len(n.coords) != len(n.ids)*t.dim {
				return "leaf coords mirror out of sync"
			}
			for j, id := range n.ids {
				for d, v := range n.entry(j, t.dim) {
					if v != t.point(id)[d] {
						return "leaf coords mirror stale"
					}
				}
			}
			if int(n.sortAxis) >= t.dim {
				return "leaf sort axis out of range"
			}
			if len(n.keys) != len(n.ids) {
				return "leaf keys mirror out of sync"
			}
			for j := range n.keys {
				if n.keys[j] != n.coords[j*t.dim+int(n.sortAxis)] {
					return "leaf keys mirror stale"
				}
			}
			for j := 1; j < len(n.ids); j++ {
				ax := int(n.sortAxis)
				va, vb := n.coords[(j-1)*t.dim+ax], n.coords[j*t.dim+ax]
				if va > vb || (va == vb && n.ids[j-1] > n.ids[j]) {
					return "leaf entries not sorted by sort axis"
				}
			}
			if t.opts.Quantize {
				if len(n.qcoords) != len(n.coords) {
					return "leaf quantized twin out of sync"
				}
				for i, v := range n.coords {
					approx := float64(n.qoff) + float64(n.qscale)*float64(n.qcoords[i])
					tol := float64(n.qscale) * quantGuard
					if n.qscale == 0 {
						if float64(v) != float64(n.qoff) {
							return "leaf quantized twin degenerate but values differ"
						}
						continue
					}
					if diff := float64(v) - approx; diff > tol || diff < -tol {
						return "leaf quantized twin outside error bound"
					}
				}
			} else if n.qcoords != nil {
				return "leaf quantized twin present without Options.Quantize"
			}
		} else {
			if len(n.children) == 0 {
				return "internal node with no children"
			}
			for _, c := range n.children {
				if c.level != n.level-1 {
					return "child level mismatch"
				}
				if !n.rect.ContainsRect(c.rect) {
					return "child rect outside parent"
				}
				if msg := check(c, false); msg != "" {
					return msg
				}
			}
		}
		if !isRoot {
			if n.entryCount() > t.opts.MaxEntries {
				return "node over capacity"
			}
			if n.entryCount() < t.opts.MinEntries {
				// Bulk loading can leave one trailing under-filled node per
				// level; tolerate under-fill but not emptiness.
				if n.entryCount() == 0 {
					return "empty non-root node"
				}
			}
		}
		if msg := checkRect(n); msg != "" {
			return msg
		}
		return ""
	}
	if msg := check(t.root, true); msg != "" {
		return msg
	}
	if total != t.size {
		return "size mismatch"
	}
	return ""
}
