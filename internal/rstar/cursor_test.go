package rstar

import (
	"math"
	"math/rand"
	"testing"

	"dblsh/internal/vec"
)

// cursorTree builds a random tree for cursor tests: n points in dim
// dimensions, bulk-loaded, plus extra inserted points when insert > 0.
func cursorTree(t *testing.T, seed int64, n, dim, insert int) (*Tree, *vec.Matrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := vec.NewMatrix(n, dim)
	for i := 0; i < n; i++ {
		for j := 0; j < dim; j++ {
			m.Row(i)[j] = float32(rng.NormFloat64() * 10)
		}
	}
	tr := BulkLoad(m, Options{})
	for i := 0; i < insert; i++ {
		p := make([]float32, dim)
		for j := range p {
			p[j] = float32(rng.NormFloat64() * 10)
		}
		tr.Insert(m.Append(p))
	}
	if msg := tr.CheckInvariants(); msg != "" {
		t.Fatalf("invariants: %s", msg)
	}
	return tr, m
}

// drainRound pulls a whole round out of the cursor through NextBatch.
func drainRound(c *Cursor, half float64) []int32 {
	c.BeginRound(half)
	var out []int32
	buf := make([]int32, 7) // odd size: exercises batch-boundary resume
	for {
		m := c.NextBatch(buf)
		if m == 0 {
			break
		}
		out = append(out, buf[:m]...)
	}
	c.EndRound()
	return out
}

// oracleRound runs the same round as a Window re-scan, returning the
// depth-first ordered ids the cursor should newly report: window members
// not in reported.
func oracleRound(tr *Tree, center []float32, half float64, reported map[int32]bool) []int32 {
	w := WindowRect(center, 2*half)
	var out []int32
	tr.Window(w, func(id int) bool {
		if !reported[int32(id)] {
			out = append(out, int32(id))
		}
		return true
	})
	return out
}

// TestCursorLadderMatchesWindowRescan is the rstar-level differential
// test: across random trees, centers and geometric half-width ladders,
// every round's cursor emissions must equal the window re-scan's
// unreported members, id for id and in depth-first order.
func TestCursorLadderMatchesWindowRescan(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		tr, m := cursorTree(t, seed, 300+int(seed)*50, 4, 0)
		rng := rand.New(rand.NewSource(seed ^ 0x9e37))
		center := make([]float32, m.Dim())
		for j := range center {
			center[j] = float32(rng.NormFloat64() * 10)
		}
		cur := NewCursor(tr)
		cur.Reset(center)
		reported := map[int32]bool{}
		half := 0.5
		for round := 0; round < 14; round++ {
			want := oracleRound(tr, center, half, reported)
			got := drainRound(cur, half)
			if len(got) != len(want) {
				t.Fatalf("seed %d round %d: cursor emitted %d, window re-scan %d", seed, round, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d round %d: emission %d = %d, want %d (order mismatch)", seed, round, i, got[i], want[i])
				}
				reported[got[i]] = true
			}
			half *= 1.5
		}
		if !cur.Exhausted() && len(reported) == tr.Size() {
			t.Fatalf("seed %d: all points reported but frontier not exhausted", seed)
		}
	}
}

// TestCursorUnpopRediscovery hands back a suffix of a round's emissions
// and checks the next round re-reports exactly those points, in the
// oracle's depth-first order.
func TestCursorUnpopRediscovery(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		tr, m := cursorTree(t, seed, 400, 4, 0)
		rng := rand.New(rand.NewSource(seed ^ 0x51))
		center := make([]float32, m.Dim())
		for j := range center {
			center[j] = float32(rng.NormFloat64() * 10)
		}
		cur := NewCursor(tr)
		cur.Reset(center)
		reported := map[int32]bool{}

		half := 2.0
		got := drainRound(cur, half)
		if len(got) < 4 {
			continue // window too small to exercise the hand-back
		}
		// Consume a prefix; hand back the rest (as a stop mid-round would).
		cut := len(got) / 2
		for _, id := range got[:cut] {
			reported[id] = true
		}
		for i := cut; i < len(got); i++ {
			cur.Unpop(i)
		}

		want := oracleRound(tr, center, half*1.5, reported)
		next := drainRound(cur, half*1.5)
		if len(next) != len(want) {
			t.Fatalf("seed %d: after unpop got %d emissions, want %d", seed, len(next), len(want))
		}
		for i := range next {
			if next[i] != want[i] {
				t.Fatalf("seed %d: emission %d = %d, want %d after unpop", seed, i, next[i], want[i])
			}
		}
	}
}

// TestCursorReArmOnInsert checks the mutation contract: an Insert makes
// the cursor stale, ReArm re-seeds it, and the following round reports
// the new point (and everything else unreported) exactly like a re-scan.
func TestCursorReArmOnInsert(t *testing.T) {
	tr, m := cursorTree(t, 7, 500, 4, 0)
	cur := NewCursor(tr)
	center := make([]float32, m.Dim())
	cur.Reset(center)

	reported := map[int32]bool{}
	for _, id := range drainRound(cur, 5) {
		reported[id] = true
	}
	if !cur.Synced() {
		t.Fatal("cursor stale before any mutation")
	}

	// Insert a point right at the center: the next window must report it.
	id := m.Append(make([]float32, m.Dim()))
	tr.Insert(id)
	if cur.Synced() {
		t.Fatal("cursor still synced after Insert")
	}
	cur.ReArm()

	want := oracleRound(tr, center, 7.5, reported)
	got := drainRound(cur, 7.5)
	// After a re-arm the cursor re-reports everything in the window; the
	// caller's visited set dedups. Filter the re-reports out first.
	fresh := got[:0]
	for _, g := range got {
		if !reported[g] {
			fresh = append(fresh, g)
		}
	}
	if len(fresh) != len(want) {
		t.Fatalf("after re-arm: %d fresh emissions, want %d", len(fresh), len(want))
	}
	found := false
	for i := range fresh {
		if fresh[i] != want[i] {
			t.Fatalf("after re-arm: emission %d = %d, want %d", i, fresh[i], want[i])
		}
		if int(fresh[i]) == id {
			found = true
		}
	}
	if !found {
		t.Fatal("inserted point not reported after re-arm")
	}
}

// TestCursorAbandon checks that abandoning a round mid-walk marks the
// cursor stale and that a re-arm recovers every unreported point.
func TestCursorAbandon(t *testing.T) {
	tr, m := cursorTree(t, 9, 400, 3, 0)
	cur := NewCursor(tr)
	center := make([]float32, m.Dim())
	cur.Reset(center)

	cur.BeginRound(4)
	buf := make([]int32, 3)
	n := cur.NextBatch(buf)
	reported := map[int32]bool{}
	for _, id := range buf[:n] {
		reported[id] = true
	}
	cur.Abandon()
	if cur.Synced() {
		t.Fatal("cursor synced after Abandon")
	}
	cur.ReArm()

	want := oracleRound(tr, center, 6, reported)
	got := drainRound(cur, 6)
	fresh := got[:0]
	for _, g := range got {
		if !reported[g] {
			fresh = append(fresh, g)
		}
	}
	if len(fresh) != len(want) {
		t.Fatalf("after abandon+rearm: %d fresh emissions, want %d", len(fresh), len(want))
	}
}

// TestCursorDrainReportsAll checks that an unbounded round drains every
// point exactly once across rounds and leaves the frontier exhausted.
func TestCursorDrainReportsAll(t *testing.T) {
	tr, m := cursorTree(t, 11, 600, 5, 40)
	cur := NewCursor(tr)
	center := make([]float32, m.Dim())
	cur.Reset(center)

	seen := map[int32]bool{}
	for _, id := range drainRound(cur, 3) {
		if seen[id] {
			t.Fatalf("id %d reported twice", id)
		}
		seen[id] = true
	}
	for _, id := range drainRound(cur, math.Inf(1)) {
		if seen[id] {
			t.Fatalf("id %d reported twice", id)
		}
		seen[id] = true
	}
	if len(seen) != tr.Size() {
		t.Fatalf("drained %d points, tree holds %d", len(seen), tr.Size())
	}
	if !cur.Exhausted() {
		t.Fatal("frontier not exhausted after full drain")
	}
}

// TestCursorInsertedTreeEquivalence runs the ladder differential on trees
// grown by Insert (splits and forced reinsertion exercised), not just
// bulk loading.
func TestCursorInsertedTreeEquivalence(t *testing.T) {
	tr, m := cursorTree(t, 13, 200, 4, 300)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5; trial++ {
		center := make([]float32, m.Dim())
		for j := range center {
			center[j] = float32(rng.NormFloat64() * 10)
		}
		cur := NewCursor(tr)
		cur.Reset(center)
		reported := map[int32]bool{}
		half := 1.0
		for round := 0; round < 10; round++ {
			want := oracleRound(tr, center, half, reported)
			got := drainRound(cur, half)
			if len(got) != len(want) {
				t.Fatalf("trial %d round %d: %d vs %d emissions", trial, round, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d round %d: emission %d = %d, want %d", trial, round, i, got[i], want[i])
				}
				reported[got[i]] = true
			}
			half *= 1.4
		}
	}
}

// quantTree is cursorTree with the int8 leaf twin enabled.
func quantTree(t *testing.T, seed int64, n, dim, insert int) (*Tree, *vec.Matrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := vec.NewMatrix(n, dim)
	for i := 0; i < n; i++ {
		for j := 0; j < dim; j++ {
			m.Row(i)[j] = float32(rng.NormFloat64() * 10)
		}
	}
	tr := BulkLoad(m, Options{Quantize: true})
	for i := 0; i < insert; i++ {
		p := make([]float32, dim)
		for j := range p {
			p[j] = float32(rng.NormFloat64() * 10)
		}
		tr.Insert(m.Append(p))
	}
	if msg := tr.CheckInvariants(); msg != "" {
		t.Fatalf("invariants: %s", msg)
	}
	return tr, m
}

// TestCursorQuantizedLadderEquivalence re-runs the rstar-level differential
// test with the int8 leaf twin enabled: the quantized certain-exclusion
// pre-test must leave every round's emission stream identical to the window
// re-scan's, id for id and in depth-first order — the twin may only skip
// entries the exact test would also reject.
func TestCursorQuantizedLadderEquivalence(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		tr, m := quantTree(t, seed, 300+int(seed)*50, 4, 120)
		rng := rand.New(rand.NewSource(seed ^ 0x9e37))
		center := make([]float32, m.Dim())
		for j := range center {
			center[j] = float32(rng.NormFloat64() * 10)
		}
		cur := NewCursor(tr)
		cur.Reset(center)
		reported := map[int32]bool{}
		half := 0.5
		for round := 0; round < 14; round++ {
			want := oracleRound(tr, center, half, reported)
			got := drainRound(cur, half)
			if len(got) != len(want) {
				t.Fatalf("seed %d round %d: cursor emitted %d, window re-scan %d", seed, round, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d round %d: emission %d = %d, want %d (order mismatch)", seed, round, i, got[i], want[i])
				}
				reported[got[i]] = true
			}
			half *= 1.5
		}
	}
}

// TestQuantizedTwinTracksMutation pins the twin's maintenance contract:
// every leaf mutation (sorted inserts, splits, forced reinsertion,
// compaction-style rebuilds) must refit the leaf's int8 twin so each code
// dequantizes to within qscale·quantGuard of its float32 coordinate —
// the error bound CheckInvariants enforces per element.
func TestQuantizedTwinTracksMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	m := vec.NewMatrix(150, 6)
	for i := 0; i < 150; i++ {
		for j := 0; j < 6; j++ {
			m.Row(i)[j] = float32(rng.NormFloat64() * 10)
		}
	}
	tr := BulkLoad(m, Options{Quantize: true})
	for i := 0; i < 600; i++ {
		p := make([]float32, 6)
		for j := range p {
			p[j] = float32(rng.NormFloat64() * 10)
		}
		tr.Insert(m.Append(p))
		if i%40 == 0 {
			if msg := tr.CheckInvariants(); msg != "" {
				t.Fatalf("after insert %d: %s", i, msg)
			}
		}
	}
	if msg := tr.CheckInvariants(); msg != "" {
		t.Fatalf("final: %s", msg)
	}
	// Degenerate leaves: identical points give qscale == 0 twins.
	dm := vec.NewMatrix(40, 3)
	for i := 0; i < 40; i++ {
		copy(dm.Row(i), []float32{1, 2, 3})
	}
	dt := BulkLoad(dm, Options{Quantize: true})
	if msg := dt.CheckInvariants(); msg != "" {
		t.Fatalf("degenerate: %s", msg)
	}
	got := dt.WindowAll(WindowRect([]float32{1, 2, 3}, 0.5))
	if len(got) != 40 {
		t.Fatalf("degenerate window: got %d of 40", len(got))
	}
}
