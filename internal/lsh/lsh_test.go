package lsh

import (
	"math"
	"math/rand"
	"testing"

	"dblsh/internal/mathx"
	"dblsh/internal/vec"
)

func TestProjectionLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := NewProjection(8, rng)
	a := make([]float32, 8)
	b := make([]float32, 8)
	for i := range a {
		a[i] = float32(rng.NormFloat64())
		b[i] = float32(rng.NormFloat64())
	}
	sum := make([]float32, 8)
	copy(sum, a)
	vec.Add(sum, b)
	if got, want := p.Hash(sum), p.Hash(a)+p.Hash(b); math.Abs(got-want) > 1e-4 {
		t.Fatalf("projection not linear: %v vs %v", got, want)
	}
}

func TestProjectionDeterministicBySeed(t *testing.T) {
	p1 := NewProjection(16, rand.New(rand.NewSource(99)))
	p2 := NewProjection(16, rand.New(rand.NewSource(99)))
	x := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	if p1.Hash(x) != p2.Hash(x) {
		t.Fatal("same seed must give same projection")
	}
}

func TestBucketedFloor(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := NewBucketed(4, 4, rng)
	// The bucket of o and of o shifted by exactly w along the projection
	// direction differ by 1 — check via two points whose projections differ.
	o := []float32{1, 0, 0, 0}
	b1 := h.Hash(o)
	// A point far away should usually land in a different bucket; at minimum
	// the function must be deterministic.
	if h.Hash(o) != b1 {
		t.Fatal("Bucketed.Hash must be deterministic")
	}
}

func TestBucketedNegativeFloor(t *testing.T) {
	// Construct a Bucketed by hand to verify floor semantics for negatives.
	h := Bucketed{proj: Projection{a: []float32{1}}, b: 0, w: 1}
	if got := h.Hash([]float32{-0.5}); got != -1 {
		t.Fatalf("floor(-0.5) bucket = %d, want -1", got)
	}
	if got := h.Hash([]float32{0.5}); got != 0 {
		t.Fatalf("floor(0.5) bucket = %d, want 0", got)
	}
	if got := h.Hash([]float32{-1}); got != -1 {
		t.Fatalf("floor(-1.0) bucket = %d, want -1", got)
	}
}

func TestCompoundHashShape(t *testing.T) {
	g := NewCompound(6, 10, rand.New(rand.NewSource(5)))
	o := make([]float32, 10)
	for i := range o {
		o[i] = float32(i)
	}
	hv := g.Hash(nil, o)
	if len(hv) != 6 {
		t.Fatalf("hash length = %d, want 6", len(hv))
	}
}

func TestCompoundProjectMatchesHash(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := NewCompound(4, 8, rng)
	data := vec.NewMatrix(20, 8)
	for i := 0; i < 20; i++ {
		for j := 0; j < 8; j++ {
			data.Row(i)[j] = float32(rng.NormFloat64())
		}
	}
	proj := g.Project(data)
	if proj.Rows() != 20 || proj.Dim() != 4 {
		t.Fatalf("projected shape %d×%d", proj.Rows(), proj.Dim())
	}
	for i := 0; i < 20; i++ {
		want := g.Hash(nil, data.Row(i))
		got := proj.Row(i)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("row %d mismatch: %v vs %v", i, got, want)
			}
		}
	}
}

func TestFamilyIndependence(t *testing.T) {
	f := NewFamily(3, 2, 4, 11)
	o := []float32{1, 2, 3, 4}
	h0 := f.Compound(0).Hash(nil, o)
	h1 := f.Compound(1).Hash(nil, o)
	same := true
	for i := range h0 {
		if h0[i] != h1[i] {
			same = false
		}
	}
	if same {
		t.Fatal("independent compounds produced identical hashes")
	}
	if f.L() != 3 || f.K() != 2 || f.Dim() != 4 {
		t.Fatalf("family shape L=%d K=%d d=%d", f.L(), f.K(), f.Dim())
	}
}

func TestFamilyReproducible(t *testing.T) {
	f1 := NewFamily(2, 3, 5, 1234)
	f2 := NewFamily(2, 3, 5, 1234)
	o := []float32{0.1, -0.2, 0.3, -0.4, 0.5}
	for i := 0; i < 2; i++ {
		a := f1.Compound(i).Hash(nil, o)
		b := f2.Compound(i).Hash(nil, o)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("compound %d differs between identically seeded families", i)
			}
		}
	}
}

// TestDistancePreservation is the statistical heart of LSH: for a 2-stable
// projection, (h(o1)-h(o2)) ~ N(0, ‖o1,o2‖²), so the empirical collision
// rate over many projections must track CollisionProbDynamic.
func TestDistancePreservation(t *testing.T) {
	const (
		d      = 32
		trials = 4000
		w      = 4.0
	)
	rng := rand.New(rand.NewSource(21))
	for _, tau := range []float64{0.5, 1, 2, 4} {
		o1 := make([]float32, d)
		o2 := make([]float32, d)
		for i := range o1 {
			o1[i] = float32(rng.NormFloat64())
		}
		copy(o2, o1)
		// Displace o2 by tau along a random unit direction.
		dir := make([]float32, d)
		var norm float64
		for i := range dir {
			dir[i] = float32(rng.NormFloat64())
			norm += float64(dir[i]) * float64(dir[i])
		}
		norm = math.Sqrt(norm)
		for i := range dir {
			o2[i] += float32(tau * float64(dir[i]) / norm)
		}

		collisions := 0
		for trial := 0; trial < trials; trial++ {
			p := NewProjection(d, rng)
			if math.Abs(p.Hash(o1)-p.Hash(o2)) <= w/2 {
				collisions++
			}
		}
		got := float64(collisions) / trials
		want := mathx.CollisionProbDynamic(tau, w)
		if math.Abs(got-want) > 0.03 {
			t.Errorf("τ=%v: empirical collision rate %.3f, theory %.3f", tau, got, want)
		}
	}
}

func TestCompoundPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for K=0")
		}
	}()
	NewCompound(0, 4, rand.New(rand.NewSource(1)))
}

func TestCompoundHashDimPanic(t *testing.T) {
	g := NewCompound(2, 4, rand.New(rand.NewSource(1)))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong dim")
		}
	}()
	g.Hash(nil, []float32{1, 2})
}

func BenchmarkCompoundHashK12D128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := NewCompound(12, 128, rng)
	o := make([]float32, 128)
	for i := range o {
		o[i] = float32(rng.NormFloat64())
	}
	buf := make([]float32, 0, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.Hash(buf[:0], o)
	}
}
