// Package lsh implements the p-stable locality-sensitive hash families used
// by DB-LSH and its baselines.
//
// Two families are provided:
//
//   - Projection — the dynamic family h(o) = a·o of Eq. 3, where a is drawn
//     from the standard (2-stable) normal distribution. Two points collide
//     when their projections differ by at most w/2; the bucket is chosen at
//     query time, which is what makes DB-LSH's query-centric bucketing
//     possible.
//   - Bucketed — the static E2LSH family h(o) = ⌊(a·o+b)/w⌋ of Eq. 1 with a
//     fixed width w and a random offset b ∈ [0,w).
//
// A Compound bundles K independent projections into one K-dimensional hash
// G(o) = (h1(o),…,hK(o)) (Eq. 6); a Family holds L independent compounds
// (Eq. 7). All randomness is drawn from a caller-seeded source so index
// construction is reproducible.
package lsh

import (
	"fmt"
	"math/rand"

	"dblsh/internal/vec"
)

// Projection is a single dynamic LSH function h(o) = a·o.
type Projection struct {
	a []float32
}

// NewProjection draws a projection vector of dimension d with entries from
// N(0,1) using rng.
func NewProjection(d int, rng *rand.Rand) Projection {
	a := make([]float32, d)
	for i := range a {
		a[i] = float32(rng.NormFloat64())
	}
	return Projection{a: a}
}

// Dim returns the input dimensionality.
func (p Projection) Dim() int { return len(p.a) }

// Hash returns h(o) = a·o.
func (p Projection) Hash(o []float32) float64 { return vec.Dot(p.a, o) }

// Bucketed is a static E2LSH function h(o) = ⌊(a·o+b)/w⌋.
type Bucketed struct {
	proj Projection
	b    float64
	w    float64
}

// NewBucketed draws a static hash function for dimension d and width w.
func NewBucketed(d int, w float64, rng *rand.Rand) Bucketed {
	if w <= 0 {
		panic(fmt.Sprintf("lsh: bucket width must be positive, got %v", w))
	}
	return Bucketed{proj: NewProjection(d, rng), b: rng.Float64() * w, w: w}
}

// Hash returns the bucket index of o.
func (h Bucketed) Hash(o []float32) int64 {
	v := (h.proj.Hash(o) + h.b) / h.w
	// Floor toward −∞ for negatives.
	iv := int64(v)
	if v < 0 && float64(iv) != v {
		iv--
	}
	return iv
}

// Width returns the bucket width w.
func (h Bucketed) Width() float64 { return h.w }

// Compound is a K-dimensional compound hash G(o) = (h1(o),…,hK(o)) over the
// dynamic family. The projection vectors are stored contiguously so hashing
// one point touches one cache-friendly block.
type Compound struct {
	k, d int
	a    []float32 // k rows of d entries each
}

// NewCompound draws K independent projections of dimension d.
func NewCompound(k, d int, rng *rand.Rand) *Compound {
	if k <= 0 || d <= 0 {
		panic(fmt.Sprintf("lsh: invalid compound shape K=%d d=%d", k, d))
	}
	a := make([]float32, k*d)
	for i := range a {
		a[i] = float32(rng.NormFloat64())
	}
	return &Compound{k: k, d: d, a: a}
}

// K returns the number of component hash functions.
func (g *Compound) K() int { return g.k }

// Dim returns the input dimensionality.
func (g *Compound) Dim() int { return g.d }

// Hash computes G(o), appending the K projected coordinates to dst and
// returning the extended slice. Pass dst = nil to allocate.
func (g *Compound) Hash(dst []float32, o []float32) []float32 {
	if len(o) != g.d {
		panic(fmt.Sprintf("lsh: point dim %d, compound expects %d", len(o), g.d))
	}
	for i := 0; i < g.k; i++ {
		row := g.a[i*g.d : (i+1)*g.d]
		dst = append(dst, float32(vec.Dot(row, o)))
	}
	return dst
}

// Project maps an entire dataset into this compound's K-dimensional space,
// returning an n×K matrix.
func (g *Compound) Project(data *vec.Matrix) *vec.Matrix {
	if data.Dim() != g.d {
		panic(fmt.Sprintf("lsh: data dim %d, compound expects %d", data.Dim(), g.d))
	}
	n := data.Rows()
	out := vec.NewMatrix(n, g.k)
	for i := 0; i < n; i++ {
		row := out.Row(i)[:0]
		g.Hash(row, data.Row(i))
	}
	return out
}

// Family is L independent compound hashes G1,…,GL (Eq. 7).
type Family struct {
	compounds []*Compound
}

// NewFamily draws L independent compounds with K functions of dimension d,
// all from the given seed. The same seed always yields the same family.
func NewFamily(l, k, d int, seed int64) *Family {
	if l <= 0 {
		panic(fmt.Sprintf("lsh: family needs L ≥ 1, got %d", l))
	}
	rng := rand.New(rand.NewSource(seed))
	cs := make([]*Compound, l)
	for i := range cs {
		cs[i] = NewCompound(k, d, rng)
	}
	return &Family{compounds: cs}
}

// L returns the number of compounds.
func (f *Family) L() int { return len(f.compounds) }

// K returns the per-compound hash count.
func (f *Family) K() int { return f.compounds[0].k }

// Dim returns the input dimensionality.
func (f *Family) Dim() int { return f.compounds[0].d }

// Compound returns the i-th compound hash Gi.
func (f *Family) Compound(i int) *Compound { return f.compounds[i] }
