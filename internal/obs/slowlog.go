package obs

import (
	"context"
	"log/slog"
	"time"
)

// SlowLog is a structured slow-query log: requests whose duration meets a
// threshold are emitted as one JSON line each through log/slog, so an
// operator can tail production for outliers without per-request log
// volume. A nil *SlowLog is a valid no-op logger, which is how a server
// runs with slow logging disabled.
//
// dblsh:nilsafe
type SlowLog struct {
	threshold time.Duration
	logger    *slog.Logger
}

// NewSlowLog returns a slow log writing JSON lines to handler's stream for
// every observation at or above threshold. A non-positive threshold
// returns nil — the disabled (no-op) logger.
func NewSlowLog(h slog.Handler, threshold time.Duration) *SlowLog {
	if threshold <= 0 {
		return nil
	}
	return &SlowLog{threshold: threshold, logger: slog.New(h)}
}

// Threshold returns the logging threshold (0 for the disabled logger).
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Observe logs one request if its duration reaches the threshold. The
// emitted record carries msg "slow_query" plus endpoint, status,
// duration_ms and whatever extra attributes the caller attached (query
// shape, work counters).
func (l *SlowLog) Observe(endpoint string, status int, d time.Duration, attrs ...slog.Attr) {
	if l == nil || d < l.threshold {
		return
	}
	base := []slog.Attr{
		slog.String("endpoint", endpoint),
		slog.Int("status", status),
		slog.Float64("duration_ms", float64(d)/float64(time.Millisecond)),
	}
	l.logger.LogAttrs(context.Background(), slog.LevelWarn, "slow_query",
		append(base, attrs...)...)
}
