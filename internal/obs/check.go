package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// CheckExposition validates text in the Prometheus exposition format
// v0.0.4 the way a scraper would: every sample line must parse, belong to
// a family declared by a preceding # TYPE line, and histogram series must
// be internally consistent (cumulative, monotone buckets; _count equal to
// the +Inf bucket). It exists so tests can assert "a real scraper would
// accept this" without a Prometheus dependency; it checks structure, not
// values.
func CheckExposition(text string) error {
	types := make(map[string]string) // family name -> TYPE
	// histogram series state, keyed by family + non-le labels
	type histSeries struct {
		last     float64
		lastLe   float64
		hasInf   bool
		infCount float64
	}
	hists := make(map[string]*histSeries)
	counts := make(map[string]float64)

	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			name, typ := fields[2], fields[3]
			if typ != "counter" && typ != "gauge" && typ != "histogram" && typ != "summary" && typ != "untyped" {
				return fmt.Errorf("line %d: unknown type %q", lineNo, typ)
			}
			if _, dup := types[name]; dup {
				return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // HELP or comment
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		family, suffix := name, ""
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, s)
			if base != name && types[base] == "histogram" {
				family, suffix = base, s
				break
			}
		}
		typ, ok := types[family]
		if !ok {
			return fmt.Errorf("line %d: sample %s has no preceding TYPE", lineNo, name)
		}
		if typ == "histogram" && suffix == "" {
			return fmt.Errorf("line %d: bare sample %s of histogram family", lineNo, name)
		}
		if (typ == "counter" || suffix == "_bucket" || suffix == "_count") && value < 0 {
			return fmt.Errorf("line %d: negative count %v for %s", lineNo, value, name)
		}

		if suffix == "_bucket" {
			le, ok := labels["le"]
			if !ok {
				return fmt.Errorf("line %d: bucket sample %s without le label", lineNo, name)
			}
			key := family + "|" + labelKeyWithout(labels, "le")
			h, ok := hists[key]
			if !ok {
				h = &histSeries{lastLe: float64(-1 << 62)}
				hists[key] = h
			}
			if le == "+Inf" {
				h.hasInf = true
				h.infCount = value
			} else {
				bound, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("line %d: bad le %q", lineNo, le)
				}
				if bound <= h.lastLe {
					return fmt.Errorf("line %d: bucket bounds not increasing in %s", lineNo, family)
				}
				h.lastLe = bound
			}
			if value < h.last {
				return fmt.Errorf("line %d: bucket counts not cumulative in %s", lineNo, family)
			}
			h.last = value
		}
		if suffix == "_count" {
			counts[family+"|"+labelKeyWithout(labels, "le")] = value
		}
	}

	for key, h := range hists {
		family := key[:strings.Index(key, "|")]
		if !h.hasInf {
			return fmt.Errorf("histogram %s has no +Inf bucket", family)
		}
		if c, ok := counts[key]; ok && c != h.infCount {
			return fmt.Errorf("histogram %s: _count %v != +Inf bucket %v", family, c, h.infCount)
		}
	}
	return nil
}

// parseSample splits `name{l="v",...} value` into its parts.
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	labels = make(map[string]string)
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	} else {
		name = rest[:i]
		rest = rest[i:]
	}
	if !validName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.LastIndex(rest, "}")
		if end < 0 {
			return "", nil, 0, fmt.Errorf("unterminated labels in %q", line)
		}
		body, tail := rest[1:end], rest[end+1:]
		for _, pair := range splitLabelPairs(body) {
			eq := strings.Index(pair, "=")
			if eq < 0 || !strings.HasPrefix(pair[eq+1:], `"`) || !strings.HasSuffix(pair, `"`) {
				return "", nil, 0, fmt.Errorf("malformed label pair %q", pair)
			}
			labels[pair[:eq]] = unescapeLabel(pair[eq+2 : len(pair)-1])
		}
		rest = tail
	}
	rest = strings.TrimSpace(rest)
	// A timestamp may follow the value; this module never emits one, so a
	// second field is rejected as unexpected.
	if strings.ContainsAny(rest, " \t") {
		return "", nil, 0, fmt.Errorf("unexpected trailing fields in %q", line)
	}
	value, err = parseValue(rest)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value in %q: %w", line, err)
	}
	return name, labels, value, nil
}

// splitLabelPairs splits `a="x",b="y"` on commas outside quotes.
func splitLabelPairs(body string) []string {
	if body == "" {
		return nil
	}
	var out []string
	var b strings.Builder
	inQuote, escaped := false, false
	for _, r := range body {
		switch {
		case escaped:
			escaped = false
		case r == '\\' && inQuote:
			escaped = true
		case r == '"':
			inQuote = !inQuote
		case r == ',' && !inQuote:
			out = append(out, b.String())
			b.Reset()
			continue
		}
		b.WriteRune(r)
	}
	out = append(out, b.String())
	return out
}

func unescapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\"`, `"`)
	s = strings.ReplaceAll(s, `\n`, "\n")
	return strings.ReplaceAll(s, `\\`, `\`)
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// labelKeyWithout renders labels (minus one name) as a stable map key.
func labelKeyWithout(labels map[string]string, drop string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != drop {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
		b.WriteByte(';')
	}
	return b.String()
}
