package obs

import (
	"bytes"
	"log/slog"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	g := r.Gauge("g", "a gauge")
	c.Inc()
	c.Add(41)
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Add(-2)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var cv *CounterVec
	var gv *GaugeVec
	var hv *HistogramVec
	var sl *SlowLog
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Dec()
	h.Observe(1)
	cv.With("x").Inc()
	gv.With("x").Set(2)
	hv.With("x").Observe(1)
	sl.Observe("/search", 200, time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || sl.Threshold() != 0 {
		t.Fatal("nil metrics must read as zero")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "hist", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 10, 11, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+5+10+11+1000; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	var buf bytes.Buffer
	r.WriteTo(&buf)
	out := buf.String()
	// Upper bounds are inclusive and the rendered counts cumulative.
	for _, want := range []string{
		`h_bucket{le="1"} 2`,
		`h_bucket{le="10"} 4`,
		`h_bucket{le="100"} 5`,
		`h_bucket{le="+Inf"} 6`,
		`h_count 6`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("req_total", `requests by "endpoint"`, "endpoint", "status")
	c.With("/search", "200").Add(3)
	c.With("/search", "400").Add(1)
	r.GaugeFunc("live", "sampled\nvalue", func() float64 { return 12.5 })
	g := r.GaugeVec("inflight", "by endpoint", "endpoint")
	g.With(`a\b"c`).Set(2)

	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP req_total requests by \"endpoint\"\n",
		"# TYPE req_total counter\n",
		`req_total{endpoint="/search",status="200"} 3` + "\n",
		`req_total{endpoint="/search",status="400"} 1` + "\n",
		"# HELP live sampled\\nvalue\n",
		"# TYPE live gauge\n",
		"live 12.5\n",
		`inflight{endpoint="a\\b\"c"} 2` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := CheckExposition(out); err != nil {
		t.Fatalf("self-check rejects own output: %v", err)
	}
}

func TestCheckExpositionRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"no_type_declared 1\n",
		"# TYPE x counter\nx notanumber\n",
		"# TYPE x counter\n# TYPE x counter\nx 1\n",
		"# TYPE x histogram\nx_bucket{le=\"1\"} 5\nx_bucket{le=\"+Inf\"} 3\nx_sum 1\nx_count 3\n", // non-monotonic
	} {
		if err := CheckExposition(bad); err == nil {
			t.Errorf("CheckExposition accepted %q", bad)
		}
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate registration")
		}
	}()
	r.Gauge("dup", "")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid metric name")
		}
	}()
	r.Counter("0bad name", "")
}

func TestWrongLabelCardinalityPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("c_total", "", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong label cardinality")
		}
	}()
	v.With("only-one")
}

func TestBucketHelpers(t *testing.T) {
	lat := LatencyBuckets()
	if lat[0] != 0.0001 || lat[len(lat)-1] != 10 {
		t.Fatalf("latency buckets span %v..%v, want 100µs..10s", lat[0], lat[len(lat)-1])
	}
	cnt := CountBuckets()
	if cnt[0] != 1 || cnt[len(cnt)-1] != 65536 {
		t.Fatalf("count buckets span %v..%v, want 1..65536", cnt[0], cnt[len(cnt)-1])
	}
	for i := 1; i < len(cnt); i++ {
		if cnt[i] != 2*cnt[i-1] {
			t.Fatalf("count buckets not powers of two at %d: %v", i, cnt)
		}
	}
	for i := 1; i < len(lat); i++ {
		if lat[i] <= lat[i-1] {
			t.Fatalf("latency buckets not increasing at %d: %v", i, lat)
		}
	}
}

// TestConcurrentUpdatesAndScrapes is the -race net for the lock-free
// update paths racing WriteTo.
func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", LatencyBuckets())
	v := r.CounterVec("v_total", "", "worker")
	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := string(rune('a' + w))
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i) * 1e-4)
				v.With(lbl).Inc()
				if i%100 == 0 {
					var buf bytes.Buffer
					r.WriteTo(&buf)
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*iters {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*iters)
	}
	if h.Count() != workers*iters {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*iters)
	}
	var buf bytes.Buffer
	r.WriteTo(&buf)
	if err := CheckExposition(buf.String()); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramSumAccumulatesUnderContention(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if math.Abs(h.Sum()-2000) > 1e-9 {
		t.Fatalf("sum = %v, want 2000", h.Sum())
	}
}

func TestSlowLog(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowLog(slog.NewJSONHandler(&buf, nil), 10*time.Millisecond)
	l.Observe("/search", 200, time.Millisecond) // below threshold: dropped
	if buf.Len() != 0 {
		t.Fatalf("fast query logged: %s", buf.String())
	}
	l.Observe("/search", 200, 25*time.Millisecond, slog.Int("k", 10))
	line := buf.String()
	for _, want := range []string{
		`"msg":"slow_query"`,
		`"endpoint":"/search"`,
		`"status":200`,
		`"duration_ms":25`,
		`"k":10`,
	} {
		if !strings.Contains(line, want) {
			t.Errorf("slow log line missing %s: %s", want, line)
		}
	}
	if NewSlowLog(slog.NewJSONHandler(&buf, nil), 0) != nil {
		t.Fatal("zero threshold must return the disabled (nil) logger")
	}
}
