// Package obs is the observability layer: a dependency-free metrics
// registry (counters, gauges, fixed-bucket histograms, with optional
// labels) exposed in the Prometheus text exposition format v0.0.4, plus a
// structured slow-query log built on log/slog (see slowlog.go). It exists
// so every layer of the module — the WAL, the durability path, the shard
// set, the HTTP server — can report operational state through one scrape
// endpoint without pulling a client library into the module's (empty)
// dependency set.
//
// # Concurrency
//
// A Registry and every metric it hands out are safe for concurrent use.
// Updates (Inc/Add/Set/Observe) are lock-free atomics on the hot path;
// registration and label-child creation take a mutex and are expected at
// startup, not per request. All metric update methods are nil-receiver
// safe no-ops, so instrumented code paths never need to guard "is anyone
// listening?" — an un-instrumented layer pays one nil check.
//
// # Bucket conventions
//
// Histogram bucket layouts are chosen once, here, so dashboards stay
// stable across PRs:
//
//   - LatencyBuckets: 100µs to 10s, log-spaced on a 1–2.5–5 decade grid
//     (0.0001, 0.00025, 0.0005, 0.001, …, 5, 10 seconds, 16 buckets).
//     Every duration histogram in the module (request latency, WAL fsync,
//     checkpoint and compaction duration) uses these.
//   - CountBuckets: powers of two from 1 to 65536 (17 buckets). Every
//     work-counter histogram (per-query k, nodes visited, frontier size)
//     uses these.
//
// Callers needing a different layout pass explicit bounds to Histogram;
// within this module, don't — stick to the two standard layouts.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// LatencyBuckets returns the standard duration bucket upper bounds, in
// seconds: 100µs..10s log-spaced on a 1–2.5–5 grid. See the package doc.
func LatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005,
		0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05,
		0.1, 0.25, 0.5,
		1, 2.5, 5, 10,
	}
}

// CountBuckets returns the standard work-counter bucket upper bounds:
// powers of two from 1 to 65536. See the package doc.
func CountBuckets() []float64 {
	out := make([]float64, 0, 17)
	for v := 1.0; v <= 65536; v *= 2 {
		out = append(out, v)
	}
	return out
}

// Counter is a monotonically increasing integer metric.
//
// dblsh:nilsafe
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n, which must be non-negative.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an integer metric that can go up and down.
//
// dblsh:nilsafe
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution metric. Bucket upper bounds are
// set at registration and never change; observations are lock-free.
//
// dblsh:nilsafe
type Histogram struct {
	uppers []float64       // sorted upper bounds; +Inf is implicit
	counts []atomic.Uint64 // len(uppers)+1, last is the +Inf overflow
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
}

func newHistogram(uppers []float64) *Histogram {
	u := append([]float64(nil), uppers...)
	sort.Float64s(u)
	return &Histogram{uppers: u, counts: make([]atomic.Uint64, len(u)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose upper bound contains v; the +Inf overflow
	// otherwise.
	i := sort.SearchFloat64s(h.uppers, v)
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// metricKind is the exposition TYPE of a family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// child is one labeled instance of a family.
type child struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
	fn          func() float64 // counter/gauge funcs, sampled at scrape
}

// family is one registered metric name: its metadata plus all label
// children (a single unlabeled child for plain metrics).
type family struct {
	name, help string
	kind       metricKind
	labels     []string
	uppers     []float64 // histograms only

	mu       sync.Mutex
	children map[string]*child // dblsh:guardedby mu
	order    []string          // dblsh:guardedby mu — child keys in creation order, for stable output
}

func (f *family) child(labelValues []string) *child {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s has %d labels, got %d values",
			f.name, len(f.labels), len(labelValues)))
	}
	key := strings.Join(labelValues, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := &child{labelValues: append([]string(nil), labelValues...)}
	switch f.kind {
	case kindCounter:
		c.counter = &Counter{}
	case kindGauge:
		c.gauge = &Gauge{}
	case kindHistogram:
		c.hist = newHistogram(f.uppers)
	}
	f.children[key] = c
	f.order = append(f.order, key)
	return c
}

// Registry holds a set of metric families and renders them in the
// Prometheus text exposition format v0.0.4. The zero value is not usable;
// call NewRegistry.
type Registry struct {
	mu     sync.Mutex
	fams   []*family          // dblsh:guardedby mu
	byName map[string]*family // dblsh:guardedby mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// register creates a family, panicking on a duplicate or invalid name —
// metric registration is startup code and a collision is a programming
// error, not a runtime condition.
func (r *Registry) register(name, help string, kind metricKind, uppers []float64, labelNames []string) *family {
	if !validName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	for _, l := range labelNames {
		if !validName(l) || strings.Contains(l, ":") {
			panic("obs: invalid label name " + strconv.Quote(l))
		}
	}
	if kind == kindHistogram && len(uppers) == 0 {
		panic("obs: histogram " + name + " needs at least one bucket")
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels:   append([]string(nil), labelNames...),
		uppers:   append([]float64(nil), uppers...),
		children: make(map[string]*child),
	}
	sort.Float64s(f.uppers)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic("obs: duplicate metric " + name)
	}
	r.byName[name] = f
	r.fams = append(r.fams, f)
	return f
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, nil, nil).child(nil).counter
}

// CounterVec registers a counter family with the given label names.
//
// dblsh:nilsafe
type CounterVec struct{ f *family }

// CounterVec registers and returns a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.register(name, help, kindCounter, nil, labelNames)}
}

// With returns the counter for the given label values, creating it on
// first use.
func (v *CounterVec) With(labelValues ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.child(labelValues).counter
}

// CounterFunc registers a counter whose value is sampled from fn at scrape
// time — for monotonic values another subsystem already maintains.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, kindCounter, nil, nil).child(nil).fn = fn
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, nil, nil).child(nil).gauge
}

// GaugeVec is a labeled gauge family.
//
// dblsh:nilsafe
type GaugeVec struct{ f *family }

// GaugeVec registers and returns a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, kindGauge, nil, labelNames)}
}

// With returns the gauge for the given label values, creating it on first
// use.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.child(labelValues).gauge
}

// GaugeFunc registers a gauge whose value is sampled from fn at scrape
// time — for state another subsystem already tracks (queue depths, sizes).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, kindGauge, nil, nil).child(nil).fn = fn
}

// Histogram registers and returns a histogram with the given bucket upper
// bounds (+Inf is implicit). Use LatencyBuckets or CountBuckets unless
// there is a strong reason not to.
func (r *Registry) Histogram(name, help string, uppers []float64) *Histogram {
	return r.register(name, help, kindHistogram, uppers, nil).child(nil).hist
}

// HistogramVec is a labeled histogram family.
//
// dblsh:nilsafe
type HistogramVec struct{ f *family }

// HistogramVec registers and returns a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, uppers []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, kindHistogram, uppers, labelNames)}
}

// With returns the histogram for the given label values, creating it on
// first use.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.child(labelValues).hist
}

// formatValue renders a sample value the way Prometheus expects: shortest
// round-trip representation, +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// labelString renders {k1="v1",k2="v2"}; extra appends one more pair (the
// histogram "le" label). Empty when there are no labels at all.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// WriteTo renders every family in registration order (children in creation
// order) in the text exposition format v0.0.4.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		f.mu.Lock()
		children := make([]*child, 0, len(f.order))
		for _, key := range f.order {
			children = append(children, f.children[key])
		}
		f.mu.Unlock()
		for _, c := range children {
			ls := labelString(f.labels, c.labelValues, "", "")
			switch {
			case c.fn != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, ls, formatValue(c.fn()))
			case c.counter != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, ls, c.counter.Value())
			case c.gauge != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, ls, c.gauge.Value())
			case c.hist != nil:
				// Cumulative bucket counts; each bucket read is atomic but
				// the scrape as a whole is a best-effort snapshot, like any
				// Prometheus client.
				var cum uint64
				for i, upper := range c.hist.uppers {
					cum += c.hist.counts[i].Load()
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
						labelString(f.labels, c.labelValues, "le", formatValue(upper)), cum)
				}
				cum += c.hist.counts[len(c.hist.uppers)].Load()
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
					labelString(f.labels, c.labelValues, "le", "+Inf"), cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, ls, formatValue(c.hist.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, ls, cum)
			}
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// ServeHTTP exposes the registry as a Prometheus scrape endpoint.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	r.WriteTo(w)
}
