// Package bptree implements an in-memory B+-tree over (float64 key, int32
// value) pairs with linked leaves and bidirectional iterators.
//
// It is the substrate for the QALSH-style collision-counting baseline
// (Huang et al., PVLDB 2015): each of the K projected dimensions keeps a
// B+-tree over projection values so a query can expand a query-centric 1-D
// bucket outward from its own projection — exactly the "dynamic C2" access
// pattern the DB-LSH paper compares against.
//
// Duplicate keys are allowed.
package bptree

import "sort"

const (
	// order is the fan-out of internal nodes; leafCap the entries per leaf.
	order   = 64
	leafCap = 64
)

// Pair is a key/value entry.
type Pair struct {
	Key float64
	Val int32
}

type leaf struct {
	keys []float64
	vals []int32
	next *leaf
	prev *leaf
}

type internal struct {
	// keys[i] is the smallest key of subtree children[i+1].
	keys     []float64
	children []interface{} // *internal or *leaf
}

// Tree is an in-memory B+-tree. The zero value is an empty tree ready to use.
// Not safe for concurrent mutation.
type Tree struct {
	root interface{} // *internal, *leaf, or nil
	size int
	head *leaf // leftmost leaf, for full scans
}

// New returns an empty tree.
func New() *Tree { return &Tree{} }

// Bulk builds a tree from pairs in one pass. The input is sorted in place by
// key. Bulk building packs leaves full and is the preferred construction for
// the QALSH baseline's static dataset.
func Bulk(pairs []Pair) *Tree {
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Key < pairs[j].Key })
	t := &Tree{}
	if len(pairs) == 0 {
		return t
	}
	// Pack leaves.
	var leaves []*leaf
	for lo := 0; lo < len(pairs); lo += leafCap {
		hi := lo + leafCap
		if hi > len(pairs) {
			hi = len(pairs)
		}
		lf := &leaf{
			keys: make([]float64, hi-lo),
			vals: make([]int32, hi-lo),
		}
		for i := lo; i < hi; i++ {
			lf.keys[i-lo] = pairs[i].Key
			lf.vals[i-lo] = pairs[i].Val
		}
		if len(leaves) > 0 {
			leaves[len(leaves)-1].next = lf
			lf.prev = leaves[len(leaves)-1]
		}
		leaves = append(leaves, lf)
	}
	t.head = leaves[0]
	t.size = len(pairs)

	// Pack internal levels.
	nodes := make([]interface{}, len(leaves))
	firstKeys := make([]float64, len(leaves))
	for i, lf := range leaves {
		nodes[i] = lf
		firstKeys[i] = lf.keys[0]
	}
	for len(nodes) > 1 {
		var parents []interface{}
		var parentFirst []float64
		for lo := 0; lo < len(nodes); lo += order {
			hi := lo + order
			if hi > len(nodes) {
				hi = len(nodes)
			}
			in := &internal{
				children: append([]interface{}(nil), nodes[lo:hi]...),
				keys:     append([]float64(nil), firstKeys[lo+1:hi]...),
			}
			parents = append(parents, in)
			parentFirst = append(parentFirst, firstKeys[lo])
		}
		nodes, firstKeys = parents, parentFirst
	}
	t.root = nodes[0]
	return t
}

// Len returns the number of stored pairs.
func (t *Tree) Len() int { return t.size }

// Insert adds a (key, val) pair, keeping duplicates.
func (t *Tree) Insert(key float64, val int32) {
	t.size++
	if t.root == nil {
		lf := &leaf{keys: []float64{key}, vals: []int32{val}}
		t.root = lf
		t.head = lf
		return
	}
	splitKey, splitNode := t.insert(t.root, key, val)
	if splitNode != nil {
		t.root = &internal{
			keys:     []float64{splitKey},
			children: []interface{}{t.root, splitNode},
		}
	}
}

// insert descends, returning a (key, node) pair when the child split.
func (t *Tree) insert(n interface{}, key float64, val int32) (float64, interface{}) {
	switch n := n.(type) {
	case *leaf:
		i := sort.SearchFloat64s(n.keys, key)
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.vals = append(n.vals, 0)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = val
		if len(n.keys) <= leafCap {
			return 0, nil
		}
		mid := len(n.keys) / 2
		right := &leaf{
			keys: append([]float64(nil), n.keys[mid:]...),
			vals: append([]int32(nil), n.vals[mid:]...),
			next: n.next,
			prev: n,
		}
		if n.next != nil {
			n.next.prev = right
		}
		n.keys = n.keys[:mid]
		n.vals = n.vals[:mid]
		n.next = right
		return right.keys[0], right
	case *internal:
		// Descend into the leftmost child whose key range admits key; equal
		// keys go left so duplicates cluster but never violate separators.
		ci := sort.SearchFloat64s(n.keys, key)
		sk, sn := t.insert(n.children[ci], key, val)
		if sn == nil {
			return 0, nil
		}
		n.keys = append(n.keys, 0)
		copy(n.keys[ci+1:], n.keys[ci:])
		n.keys[ci] = sk
		n.children = append(n.children, nil)
		copy(n.children[ci+2:], n.children[ci+1:])
		n.children[ci+1] = sn
		if len(n.children) <= order {
			return 0, nil
		}
		mid := len(n.children) / 2
		promote := n.keys[mid-1]
		right := &internal{
			keys:     append([]float64(nil), n.keys[mid:]...),
			children: append([]interface{}(nil), n.children[mid:]...),
		}
		n.keys = n.keys[:mid-1]
		n.children = n.children[:mid]
		return promote, right
	}
	panic("bptree: unknown node type")
}

// Iterator walks pairs in key order in either direction.
type Iterator struct {
	lf  *leaf
	idx int
}

// Seek returns an iterator positioned at the first pair with key ≥ x.
// Valid() is false when every key is < x.
func (t *Tree) Seek(x float64) Iterator {
	n := t.root
	for {
		switch v := n.(type) {
		case nil:
			return Iterator{}
		case *leaf:
			i := sort.SearchFloat64s(v.keys, x)
			it := Iterator{lf: v, idx: i}
			if i == len(v.keys) {
				it.lf, it.idx = v.next, 0
				if it.lf != nil && len(it.lf.keys) == 0 {
					it.lf = nil
				}
			}
			return it
		case *internal:
			n = v.children[sort.SearchFloat64s(v.keys, x)]
		default:
			return Iterator{}
		}
	}
}

// SeekBefore returns an iterator positioned at the last pair with key < x,
// for walking toward smaller keys with Prev. Valid() is false when every key
// is ≥ x.
func (t *Tree) SeekBefore(x float64) Iterator {
	n := t.root
	for {
		switch v := n.(type) {
		case nil:
			return Iterator{}
		case *leaf:
			i := sort.SearchFloat64s(v.keys, x) // first ≥ x
			it := Iterator{lf: v, idx: i - 1}
			if i == 0 {
				it = Iterator{lf: v, idx: 0}.Prev()
			}
			return it
		case *internal:
			n = v.children[sort.SearchFloat64s(v.keys, x)]
		default:
			return Iterator{}
		}
	}
}

// Max returns an iterator at the largest key.
func (t *Tree) Max() Iterator {
	n := t.root
	for {
		switch v := n.(type) {
		case nil:
			return Iterator{}
		case *leaf:
			return Iterator{lf: v, idx: len(v.keys) - 1}
		case *internal:
			n = v.children[len(v.children)-1]
		default:
			return Iterator{}
		}
	}
}

// Min returns an iterator at the smallest key.
func (t *Tree) Min() Iterator {
	if t.head == nil {
		return Iterator{}
	}
	return Iterator{lf: t.head, idx: 0}
}

// Valid reports whether the iterator references a pair.
func (it Iterator) Valid() bool { return it.lf != nil && it.idx >= 0 && it.idx < len(it.lf.keys) }

// Key returns the current key. The iterator must be Valid.
func (it Iterator) Key() float64 { return it.lf.keys[it.idx] }

// Val returns the current value. The iterator must be Valid.
func (it Iterator) Val() int32 { return it.lf.vals[it.idx] }

// Next advances toward larger keys and returns the advanced iterator.
func (it Iterator) Next() Iterator {
	if it.lf == nil {
		return it
	}
	it.idx++
	for it.lf != nil && it.idx >= len(it.lf.keys) {
		it.lf = it.lf.next
		it.idx = 0
	}
	return it
}

// Prev steps toward smaller keys and returns the stepped iterator.
func (it Iterator) Prev() Iterator {
	if it.lf == nil {
		return it
	}
	it.idx--
	for it.lf != nil && it.idx < 0 {
		it.lf = it.lf.prev
		if it.lf != nil {
			it.idx = len(it.lf.keys) - 1
		}
	}
	return it
}

// Range calls visit for every pair with lo ≤ key ≤ hi in ascending order,
// stopping early when visit returns false.
func (t *Tree) Range(lo, hi float64, visit func(key float64, val int32) bool) {
	for it := t.Seek(lo); it.Valid() && it.Key() <= hi; it = it.Next() {
		if !visit(it.Key(), it.Val()) {
			return
		}
	}
}

// Count returns the number of pairs with lo ≤ key ≤ hi.
func (t *Tree) Count(lo, hi float64) int {
	n := 0
	t.Range(lo, hi, func(float64, int32) bool { n++; return true })
	return n
}
