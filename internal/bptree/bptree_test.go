package bptree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func collect(t *Tree) []Pair {
	var out []Pair
	for it := t.Min(); it.Valid(); it = it.Next() {
		out = append(out, Pair{it.Key(), it.Val()})
	}
	return out
}

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Min().Valid() || tr.Max().Valid() || tr.Seek(0).Valid() || tr.SeekBefore(0).Valid() {
		t.Fatal("iterators on empty tree must be invalid")
	}
}

func TestInsertAndScan(t *testing.T) {
	tr := New()
	keys := []float64{5, 3, 8, 1, 9, 2, 7, 4, 6, 0}
	for i, k := range keys {
		tr.Insert(k, int32(i))
	}
	got := collect(tr)
	if len(got) != 10 {
		t.Fatalf("len = %d", len(got))
	}
	for i, p := range got {
		if p.Key != float64(i) {
			t.Fatalf("got[%d].Key = %v", i, p.Key)
		}
	}
}

func TestBulkMatchesInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 10_000
	pairs := make([]Pair, n)
	tr := New()
	for i := range pairs {
		k := rng.NormFloat64() * 100
		pairs[i] = Pair{k, int32(i)}
		tr.Insert(k, int32(i))
	}
	bulk := Bulk(append([]Pair(nil), pairs...))
	a, b := collect(tr), collect(bulk)
	if len(a) != n || len(b) != n {
		t.Fatalf("lens %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key != b[i].Key {
			t.Fatalf("key order differs at %d: %v vs %v", i, a[i].Key, b[i].Key)
		}
	}
}

func TestSeek(t *testing.T) {
	tr := Bulk([]Pair{{1, 1}, {3, 3}, {5, 5}, {7, 7}})
	cases := []struct {
		x    float64
		want float64
		ok   bool
	}{
		{0, 1, true}, {1, 1, true}, {2, 3, true}, {5, 5, true},
		{6, 7, true}, {7, 7, true}, {8, 0, false},
	}
	for _, c := range cases {
		it := tr.Seek(c.x)
		if it.Valid() != c.ok {
			t.Fatalf("Seek(%v).Valid = %v", c.x, it.Valid())
		}
		if c.ok && it.Key() != c.want {
			t.Fatalf("Seek(%v) = %v, want %v", c.x, it.Key(), c.want)
		}
	}
}

func TestSeekBefore(t *testing.T) {
	tr := Bulk([]Pair{{1, 1}, {3, 3}, {5, 5}, {7, 7}})
	cases := []struct {
		x    float64
		want float64
		ok   bool
	}{
		{1, 0, false}, {2, 1, true}, {3, 1, true}, {5.5, 5, true},
		{100, 7, true}, {0.5, 0, false},
	}
	for _, c := range cases {
		it := tr.SeekBefore(c.x)
		if it.Valid() != c.ok {
			t.Fatalf("SeekBefore(%v).Valid = %v, want %v", c.x, it.Valid(), c.ok)
		}
		if c.ok && it.Key() != c.want {
			t.Fatalf("SeekBefore(%v) = %v, want %v", c.x, it.Key(), c.want)
		}
	}
}

func TestSeekOnLargeTree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 50_000
	keys := make([]float64, n)
	tr := New()
	for i := range keys {
		keys[i] = rng.Float64() * 1000
		tr.Insert(keys[i], int32(i))
	}
	sort.Float64s(keys)
	for trial := 0; trial < 200; trial++ {
		x := rng.Float64() * 1000
		i := sort.SearchFloat64s(keys, x)
		it := tr.Seek(x)
		if i == n {
			if it.Valid() {
				t.Fatalf("Seek(%v) should be invalid", x)
			}
			continue
		}
		if !it.Valid() || it.Key() != keys[i] {
			t.Fatalf("Seek(%v) = %v, want %v", x, it.Key(), keys[i])
		}
	}
}

func TestBidirectionalIteration(t *testing.T) {
	tr := Bulk([]Pair{{1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 5}})
	it := tr.Seek(3)
	if it.Key() != 3 {
		t.Fatalf("Seek(3) = %v", it.Key())
	}
	it = it.Next()
	if it.Key() != 4 {
		t.Fatalf("Next = %v", it.Key())
	}
	it = it.Prev().Prev()
	if it.Key() != 2 {
		t.Fatalf("Prev.Prev = %v", it.Key())
	}
}

func TestPrevFromMinInvalid(t *testing.T) {
	tr := Bulk([]Pair{{1, 1}, {2, 2}})
	it := tr.Min().Prev()
	if it.Valid() {
		t.Fatal("Prev from Min must be invalid")
	}
}

func TestDuplicateKeys(t *testing.T) {
	tr := New()
	for i := 0; i < 500; i++ {
		tr.Insert(42, int32(i))
	}
	tr.Insert(41, -1)
	tr.Insert(43, -2)
	if got := tr.Count(42, 42); got != 500 {
		t.Fatalf("Count(42,42) = %d", got)
	}
	it := tr.Seek(42)
	if !it.Valid() || it.Key() != 42 {
		t.Fatalf("Seek into duplicates failed: %v", it.Key())
	}
	if it := tr.SeekBefore(42); !it.Valid() || it.Key() != 41 {
		t.Fatalf("SeekBefore(42) = %v", it.Key())
	}
	// All 500 values present exactly once.
	seen := map[int32]bool{}
	tr.Range(42, 42, func(_ float64, v int32) bool {
		if seen[v] {
			t.Fatalf("duplicate value %d", v)
		}
		seen[v] = true
		return true
	})
	if len(seen) != 500 {
		t.Fatalf("found %d values", len(seen))
	}
}

func TestRangeEarlyStop(t *testing.T) {
	tr := Bulk([]Pair{{1, 1}, {2, 2}, {3, 3}, {4, 4}})
	n := 0
	tr.Range(0, 10, func(float64, int32) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("visited %d", n)
	}
}

func TestCountMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	keys := make([]float64, 5000)
	tr := New()
	for i := range keys {
		keys[i] = rng.NormFloat64() * 50
		tr.Insert(keys[i], int32(i))
	}
	for trial := 0; trial < 50; trial++ {
		lo := rng.NormFloat64() * 50
		hi := lo + rng.Float64()*40
		want := 0
		for _, k := range keys {
			if k >= lo && k <= hi {
				want++
			}
		}
		if got := tr.Count(lo, hi); got != want {
			t.Fatalf("Count(%v,%v) = %d, want %d", lo, hi, got, want)
		}
	}
}

// Property: tree iteration is always sorted and complete.
func TestSortedIterationProperty(t *testing.T) {
	f := func(raw []float64) bool {
		tr := New()
		for i, k := range raw {
			tr.Insert(k, int32(i))
		}
		got := collect(tr)
		if len(got) != len(raw) {
			return false
		}
		sorted := append([]float64(nil), raw...)
		sort.Float64s(sorted)
		for i := range got {
			if got[i].Key != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMax(t *testing.T) {
	tr := Bulk([]Pair{{3, 3}, {1, 1}, {2, 2}})
	if it := tr.Max(); !it.Valid() || it.Key() != 3 {
		t.Fatalf("Max = %v", it.Key())
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(rng.Float64(), int32(i))
	}
}

func BenchmarkSeek(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pairs := make([]Pair, 1_000_000)
	for i := range pairs {
		pairs[i] = Pair{rng.Float64(), int32(i)}
	}
	tr := Bulk(pairs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.Seek(rng.Float64())
	}
}
