package mtree

import (
	"math/rand"
	"sort"
	"testing"

	"dblsh/internal/vec"
)

func randomMatrix(n, d int, seed int64) *vec.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			m.Row(i)[j] = float32(rng.NormFloat64() * 5)
		}
	}
	return m
}

func TestEmpty(t *testing.T) {
	tr := Build(vec.NewMatrix(0, 3))
	if tr.Size() != 0 {
		t.Fatalf("Size = %d", tr.Size())
	}
	if ids := tr.NearestK([]float32{0, 0, 0}, 3); len(ids) != 0 {
		t.Fatalf("NearestK = %v", ids)
	}
	if msg := tr.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

func TestSinglePoint(t *testing.T) {
	data := vec.NewMatrix(1, 2)
	data.SetRow(0, []float32{1, 2})
	tr := Build(data)
	if ids := tr.NearestK([]float32{0, 0}, 5); len(ids) != 1 || ids[0] != 0 {
		t.Fatalf("NearestK = %v", ids)
	}
}

func TestInvariants(t *testing.T) {
	for _, n := range []int{1, 10, 100, 5000} {
		tr := Build(randomMatrix(n, 4, int64(n)))
		if msg := tr.CheckInvariants(); msg != "" {
			t.Fatalf("n=%d: %s", n, msg)
		}
	}
}

func TestNearestKMatchesBruteForce(t *testing.T) {
	data := randomMatrix(3000, 5, 11)
	tr := Build(data)
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 25; trial++ {
		q := make([]float32, 5)
		for i := range q {
			q[i] = float32(rng.NormFloat64() * 5)
		}
		k := 1 + rng.Intn(25)
		got := tr.NearestK(q, k)
		type pair struct {
			id int
			d  float64
		}
		all := make([]pair, data.Rows())
		for i := range all {
			all[i] = pair{i, vec.Dist(q, data.Row(i))}
		}
		sort.Slice(all, func(a, b int) bool { return all[a].d < all[b].d })
		if len(got) != k {
			t.Fatalf("got %d ids, want %d", len(got), k)
		}
		for i := 0; i < k; i++ {
			if gd := vec.Dist(q, data.Row(got[i])); gd != all[i].d {
				t.Fatalf("trial %d rank %d: dist %v, want %v", trial, i, gd, all[i].d)
			}
		}
	}
}

func TestNearestVisitOrdered(t *testing.T) {
	data := randomMatrix(1000, 3, 7)
	tr := Build(data)
	prev := -1.0
	visited := 0
	tr.NearestVisit([]float32{0, 0, 0}, func(id int, dist float64) bool {
		if dist < prev {
			t.Fatalf("out of order: %v after %v", dist, prev)
		}
		prev = dist
		visited++
		return true
	})
	if visited != 1000 {
		t.Fatalf("visited %d", visited)
	}
}

func TestNearestVisitEarlyStop(t *testing.T) {
	data := randomMatrix(1000, 3, 7)
	tr := Build(data)
	visited := 0
	tr.NearestVisit([]float32{0, 0, 0}, func(int, float64) bool {
		visited++
		return visited < 7
	})
	if visited != 7 {
		t.Fatalf("visited %d", visited)
	}
}

func TestRangeSearchMatchesBruteForce(t *testing.T) {
	data := randomMatrix(2000, 4, 13)
	tr := Build(data)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		q := make([]float32, 4)
		for i := range q {
			q[i] = float32(rng.NormFloat64() * 5)
		}
		r := 2 + rng.Float64()*6
		var got []int
		tr.RangeSearch(q, r, func(id int, _ float64) bool {
			got = append(got, id)
			return true
		})
		var want []int
		for i := 0; i < data.Rows(); i++ {
			if vec.Dist(q, data.Row(i)) <= r {
				want = append(want, i)
			}
		}
		sort.Ints(got)
		sort.Ints(want)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: mismatch at %d", trial, i)
			}
		}
	}
}

func TestDuplicatePoints(t *testing.T) {
	data := vec.NewMatrix(200, 2)
	for i := 0; i < 200; i++ {
		data.SetRow(i, []float32{3, 4})
	}
	tr := Build(data)
	if msg := tr.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
	if got := tr.NearestK([]float32{0, 0}, 200); len(got) != 200 {
		t.Fatalf("got %d ids", len(got))
	}
}

func BenchmarkBuild100k(b *testing.B) {
	data := randomMatrix(100_000, 15, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Build(data)
	}
}

func BenchmarkNearest100(b *testing.B) {
	data := randomMatrix(100_000, 15, 1)
	tr := Build(data)
	q := make([]float32, 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.NearestK(q, 100)
	}
}
