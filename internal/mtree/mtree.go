// Package mtree implements an in-memory ball tree (a metric tree in the
// M-tree family) over low-dimensional points. It is the substrate for the
// PM-LSH baseline: PM-LSH indexes the m-dimensional projected points with a
// PM-tree and answers c-ANN by streaming projected-space nearest neighbors
// and verifying them in the original space. This package provides the same
// incremental nearest-neighbor code path; see DESIGN.md for the
// PM-tree → ball-tree substitution rationale.
package mtree

import (
	"container/heap"
	"math"
	"sort"

	"dblsh/internal/vec"
)

// LeafSize is the maximum number of points in a leaf ball.
const LeafSize = 32

type ball struct {
	center []float32
	radius float64
	left   *ball
	right  *ball
	ids    []int32 // leaf only
}

// Tree is a ball tree over the rows of a point matrix. The matrix is owned by
// the caller and must not be mutated while the tree is alive. Concurrent
// read-only queries are safe.
type Tree struct {
	data *vec.Matrix
	root *ball
	size int
}

// Build constructs a ball tree over all rows of data by recursive
// farthest-pair splitting.
func Build(data *vec.Matrix) *Tree {
	n := data.Rows()
	t := &Tree{data: data, size: n}
	if n == 0 {
		return t
	}
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	t.root = t.build(ids)
	return t
}

func (t *Tree) build(ids []int32) *ball {
	b := &ball{}
	b.center = t.centroid(ids)
	b.radius = t.maxDist(b.center, ids)
	if len(ids) <= LeafSize {
		b.ids = ids
		return b
	}
	// Farthest-pair style split: pick the point farthest from the centroid
	// as pivot A, then the point farthest from A as pivot B, and partition
	// by nearer-pivot. This approximates the optimal split at O(n) cost.
	a := t.farthestFrom(b.center, ids)
	pb := t.farthestFrom(t.data.Row(int(a)), ids)
	pa, pbv := t.data.Row(int(a)), t.data.Row(int(pb))

	// Partition by projection onto the A→B axis for balance robustness when
	// many points are equidistant.
	type proj struct {
		id int32
		v  float64
	}
	ps := make([]proj, len(ids))
	axis := make([]float32, len(pa))
	for i := range axis {
		axis[i] = pbv[i] - pa[i]
	}
	for i, id := range ids {
		ps[i] = proj{id, vec.Dot(axis, t.data.Row(int(id)))}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].v < ps[j].v })
	mid := len(ps) / 2
	leftIDs := make([]int32, mid)
	rightIDs := make([]int32, len(ps)-mid)
	for i := 0; i < mid; i++ {
		leftIDs[i] = ps[i].id
	}
	for i := mid; i < len(ps); i++ {
		rightIDs[i-mid] = ps[i].id
	}
	b.left = t.build(leftIDs)
	b.right = t.build(rightIDs)
	return b
}

func (t *Tree) centroid(ids []int32) []float32 {
	d := t.data.Dim()
	sum := make([]float64, d)
	for _, id := range ids {
		row := t.data.Row(int(id))
		for j := 0; j < d; j++ {
			sum[j] += float64(row[j])
		}
	}
	c := make([]float32, d)
	for j := 0; j < d; j++ {
		c[j] = float32(sum[j] / float64(len(ids)))
	}
	return c
}

func (t *Tree) maxDist(center []float32, ids []int32) float64 {
	var m float64
	for _, id := range ids {
		if d := vec.SquaredDist(center, t.data.Row(int(id))); d > m {
			m = d
		}
	}
	return math.Sqrt(m)
}

func (t *Tree) farthestFrom(p []float32, ids []int32) int32 {
	best, bestD := ids[0], -1.0
	for _, id := range ids {
		if d := vec.SquaredDist(p, t.data.Row(int(id))); d > bestD {
			best, bestD = id, d
		}
	}
	return best
}

// Size returns the number of indexed points.
func (t *Tree) Size() int { return t.size }

type item struct {
	dist  float64 // lower bound for balls, exact for points
	b     *ball
	id    int32
	point bool
}

type pq []item

func (h pq) Len() int            { return len(h) }
func (h pq) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h pq) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pq) Push(x interface{}) { *h = append(*h, x.(item)) }
func (h *pq) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// NearestVisit streams indexed points in ascending distance-from-q order,
// calling visit with each id and its exact distance, until visit returns
// false or the tree is exhausted.
func (t *Tree) NearestVisit(q []float32, visit func(id int, dist float64) bool) {
	if t.size == 0 {
		return
	}
	h := &pq{{dist: ballMinDist(t.root, q), b: t.root}}
	for h.Len() > 0 {
		it := heap.Pop(h).(item)
		if it.point {
			if !visit(int(it.id), it.dist) {
				return
			}
			continue
		}
		b := it.b
		if b.ids != nil {
			for _, id := range b.ids {
				heap.Push(h, item{dist: vec.Dist(q, t.data.Row(int(id))), id: id, point: true})
			}
			continue
		}
		heap.Push(h, item{dist: ballMinDist(b.left, q), b: b.left})
		heap.Push(h, item{dist: ballMinDist(b.right, q), b: b.right})
	}
}

// NearestK returns the ids of the k nearest points to q, nearest first.
func (t *Tree) NearestK(q []float32, k int) []int {
	out := make([]int, 0, k)
	t.NearestVisit(q, func(id int, _ float64) bool {
		out = append(out, id)
		return len(out) < k
	})
	return out
}

// RangeSearch calls visit for every point within distance r of q.
func (t *Tree) RangeSearch(q []float32, r float64, visit func(id int, dist float64) bool) {
	t.NearestVisit(q, func(id int, dist float64) bool {
		if dist > r {
			return false
		}
		return visit(id, dist)
	})
}

func ballMinDist(b *ball, q []float32) float64 {
	d := vec.Dist(q, b.center) - b.radius
	if d < 0 {
		return 0
	}
	return d
}

// CheckInvariants validates that every leaf point is inside its ancestors'
// balls and returns a description of the first violation, or "".
func (t *Tree) CheckInvariants() string {
	if t.root == nil {
		if t.size != 0 {
			return "nil root with nonzero size"
		}
		return ""
	}
	count := 0
	var walk func(b *ball, ancestors []*ball) string
	walk = func(b *ball, ancestors []*ball) string {
		anc := append(ancestors, b)
		if b.ids != nil {
			count += len(b.ids)
			for _, id := range b.ids {
				p := t.data.Row(int(id))
				for _, a := range anc {
					if vec.Dist(p, a.center) > a.radius+1e-4 {
						return "point escapes ancestor ball"
					}
				}
			}
			return ""
		}
		if b.left == nil || b.right == nil {
			return "internal ball missing a child"
		}
		if msg := walk(b.left, anc); msg != "" {
			return msg
		}
		return walk(b.right, anc)
	}
	if msg := walk(t.root, nil); msg != "" {
		return msg
	}
	if count != t.size {
		return "size mismatch"
	}
	return ""
}
