package harness

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"

	"dblsh/internal/dataset"
)

func smallProfile() dataset.Profile {
	return dataset.Profile{
		Name: "harness", N: 4000, Dim: 32, Queries: 10,
		Clusters: 8, Std: 1, Spread: 10, SubClusters: 25, Seed: 9,
	}
}

func smallParams() Params {
	p := DefaultParams()
	p.K = 8
	p.T = 50
	return p
}

func TestStandardAlgosComplete(t *testing.T) {
	algos := StandardAlgos(DefaultParams())
	want := []string{"DB-LSH", "FB-LSH", "E2LSH", "QALSH", "R2LSH", "VHP", "PM-LSH", "LSB-Forest"}
	if len(algos) != len(want) {
		t.Fatalf("got %d algorithms, want %d", len(algos), len(want))
	}
	for i, a := range algos {
		if a.Name != want[i] {
			t.Fatalf("algos[%d] = %s, want %s", i, a.Name, want[i])
		}
	}
	withScan := WithScan(algos)
	if withScan[len(withScan)-1].Name != "Scan" {
		t.Fatal("WithScan did not append Scan")
	}
}

func TestRunProfileProducesSaneRows(t *testing.T) {
	rs := RunProfile(smallProfile(), StandardAlgos(smallParams()), 10)
	if len(rs) != 8 {
		t.Fatalf("got %d results", len(rs))
	}
	var dblsh Result
	for _, r := range rs {
		if r.Agg.Queries != 10 {
			t.Fatalf("%s: %d queries", r.Algo, r.Agg.Queries)
		}
		if r.Agg.AvgRecall < 0 || r.Agg.AvgRecall > 1 {
			t.Fatalf("%s: recall %v", r.Algo, r.Agg.AvgRecall)
		}
		if r.Agg.AvgRatio < 1-1e-9 {
			t.Fatalf("%s: ratio %v below 1", r.Algo, r.Agg.AvgRatio)
		}
		if r.Agg.AvgTime <= 0 || r.BuildTime <= 0 {
			t.Fatalf("%s: non-positive timings %+v", r.Algo, r)
		}
		if r.Algo == "DB-LSH" {
			dblsh = r
		}
	}
	// The headline claim at small scale: DB-LSH's recall is competitive
	// (within 5% of the best) — at full scale it wins outright (see
	// EXPERIMENTS.md).
	best := 0.0
	for _, r := range rs {
		if r.Agg.AvgRecall > best {
			best = r.Agg.AvgRecall
		}
	}
	if dblsh.Agg.AvgRecall < best-0.05 {
		t.Errorf("DB-LSH recall %.3f not within 0.05 of best %.3f", dblsh.Agg.AvgRecall, best)
	}
}

func TestFig4Output(t *testing.T) {
	var buf bytes.Buffer
	Fig4(&buf)
	out := buf.String()
	if !strings.Contains(out, "rho*") || !strings.Contains(out, "4.0c²") {
		t.Fatalf("unexpected Fig4 output:\n%s", out)
	}
	// At γ=2 the header must show α ≈ 4.746.
	if !strings.Contains(out, "4.746") {
		t.Fatalf("Fig4 must surface the paper's α=4.746 constant:\n%s", out)
	}
}

func TestVaryNSeries(t *testing.T) {
	series := VaryN(io.Discard, smallProfile(), []float64{0.5, 1.0}, smallParams(), 5)
	if len(series) != 8 {
		t.Fatalf("series for %d algorithms", len(series))
	}
	for algo, rs := range series {
		if len(rs) != 2 {
			t.Fatalf("%s: %d points", algo, len(rs))
		}
	}
}

func TestVaryKRuns(t *testing.T) {
	var buf bytes.Buffer
	VaryK(&buf, smallProfile(), []int{1, 10}, smallParams())
	if !strings.Contains(buf.String(), "DB-LSH") {
		t.Fatal("VaryK produced no rows")
	}
}

func TestTradeoffRuns(t *testing.T) {
	out := Tradeoff(io.Discard, smallProfile(), []float64{1.5, 2.5}, smallParams(), 5)
	for algo, pts := range out {
		if len(pts) != 2 {
			t.Fatalf("%s: %d tradeoff points", algo, len(pts))
		}
	}
}

func TestTable1Exponents(t *testing.T) {
	exps := Table1(io.Discard, smallProfile(), []float64{0.25, 0.5, 1.0}, smallParams(), 5)
	if len(exps) != 8 {
		t.Fatalf("exponents for %d algorithms", len(exps))
	}
	// At this tiny scale per-query latencies are microseconds and the fit is
	// dominated by timer noise, so only check the values are finite numbers;
	// the meaningful exponent comparison happens at full scale (see
	// EXPERIMENTS.md).
	for algo, e := range exps {
		if math.IsNaN(e) || math.IsInf(e, 0) {
			t.Fatalf("%s: non-finite exponent %v", algo, e)
		}
	}
}

func TestSlope(t *testing.T) {
	// y = 2x + 1 exactly.
	if s := slope([]float64{0, 1, 2}, []float64{1, 3, 5}); s != 2 {
		t.Fatalf("slope = %v", s)
	}
	if s := slope([]float64{1}, []float64{1}); s != 0 {
		t.Fatalf("degenerate slope = %v", s)
	}
}

func TestTable4SmokeTest(t *testing.T) {
	if testing.Short() {
		t.Skip("table4 on even a small profile is slow")
	}
	var buf bytes.Buffer
	p := smallProfile()
	p.N = 2000
	Table4(&buf, []dataset.Profile{p}, smallParams(), 5)
	out := buf.String()
	for _, name := range []string{"DB-LSH", "FB-LSH", "E2LSH", "QALSH", "R2LSH", "VHP", "PM-LSH", "LSB-Forest"} {
		if !strings.Contains(out, name) {
			t.Fatalf("Table4 output missing %s:\n%s", name, out)
		}
	}
}

func TestEqualAccuracy(t *testing.T) {
	var buf bytes.Buffer
	rows := EqualAccuracy(&buf, smallProfile(), smallParams(), 10, 0.6)
	if len(rows) != 8 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Budget == 0 || r.AvgTime <= 0 {
			t.Fatalf("%s: empty row %+v", r.Algo, r)
		}
		if r.Reached && r.Recall < 0.6 {
			t.Fatalf("%s: reached but recall %v", r.Algo, r.Recall)
		}
		if r.Algo == "DB-LSH" && !r.Reached {
			t.Errorf("DB-LSH failed to reach recall 0.6 at any budget")
		}
	}
	if !strings.Contains(buf.String(), "Equal-accuracy") {
		t.Fatal("missing header")
	}
}
