package harness

import (
	"fmt"
	"io"

	"dblsh/internal/plot"
)

// PlotVaryN renders the Fig. 5 series (query time vs dataset fraction) as an
// ASCII chart: one line per algorithm, log-scale time.
func PlotVaryN(w io.Writer, title string, fractions []float64, series map[string][]Result) error {
	c := plot.Chart{
		Title:  title,
		XLabel: "fraction of n",
		YLabel: "avg query time (ms)",
		LogY:   true,
	}
	for _, a := range algoOrder(series) {
		rs := series[a]
		if len(rs) != len(fractions) {
			return fmt.Errorf("harness: series %q has %d points for %d fractions", a, len(rs), len(fractions))
		}
		ys := make([]float64, len(rs))
		for i, r := range rs {
			ys[i] = float64(r.Agg.AvgTime.Microseconds()) / 1000
			if ys[i] <= 0 {
				ys[i] = 0.001
			}
		}
		if err := c.Add(a, fractions, ys); err != nil {
			return err
		}
	}
	return c.Render(w)
}

// PlotTradeoff renders the Fig. 9 recall–time curves: x = query time (ms,
// log), y = recall. The up-and-left-most curve wins.
func PlotTradeoff(w io.Writer, title string, series map[string][]TradeoffPoint) error {
	c := plot.Chart{
		Title:  title,
		XLabel: "avg query time (ms)",
		YLabel: "recall",
	}
	for _, a := range algoOrder2(series) {
		pts := series[a]
		xs := make([]float64, len(pts))
		ys := make([]float64, len(pts))
		for i, p := range pts {
			xs[i] = float64(p.Time.Microseconds()) / 1000
			ys[i] = p.Recall
		}
		if err := c.Add(a, xs, ys); err != nil {
			return err
		}
	}
	return c.Render(w)
}

// algoOrder returns the map's keys in the canonical StandardAlgos order;
// names outside the canonical set are not plotted.
func algoOrder(m map[string][]Result) []string {
	return orderKeys(func(name string) bool { _, ok := m[name]; return ok }, len(m))
}

func algoOrder2(m map[string][]TradeoffPoint) []string {
	return orderKeys(func(name string) bool { _, ok := m[name]; return ok }, len(m))
}

func orderKeys(has func(string) bool, n int) []string {
	canonical := []string{"DB-LSH", "FB-LSH", "E2LSH", "QALSH", "R2LSH", "VHP", "PM-LSH", "LSB-Forest", "Scan"}
	out := make([]string, 0, n)
	for _, name := range canonical {
		if has(name) {
			out = append(out, name)
		}
	}
	return out
}
