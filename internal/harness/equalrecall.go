package harness

import (
	"fmt"
	"io"
	"time"

	"dblsh/internal/baseline/e2lsh"
	"dblsh/internal/baseline/fblsh"
	"dblsh/internal/baseline/lsb"
	"dblsh/internal/baseline/pmlsh"
	"dblsh/internal/baseline/qalsh"
	"dblsh/internal/baseline/r2lsh"
	"dblsh/internal/baseline/vhp"
	"dblsh/internal/core"
	"dblsh/internal/dataset"
	"dblsh/internal/vec"
)

// EqualAccuracyRow is one algorithm's cheapest configuration that reaches
// the target recall.
type EqualAccuracyRow struct {
	Algo     string
	Reached  bool
	Recall   float64
	Budget   int // candidate constant t at which the target was reached
	AvgTime  time.Duration
	AvgRatio float64
}

// budgetedAlgo builds an algorithm at a given candidate constant t (the
// QALSH/PM-LSH β is derived from t so every method verifies ≈ 2tL+k points).
type budgetedAlgo struct {
	name  string
	build func(data *vec.Matrix, p Params, t int) SearchFunc
}

func budgetedAlgos() []budgetedAlgo {
	beta := func(data *vec.Matrix, p Params, t int) float64 {
		if n := data.Rows(); n > 0 {
			return float64(2*t*p.L) / float64(n)
		}
		return 0.1
	}
	return []budgetedAlgo{
		{"DB-LSH", func(data *vec.Matrix, p Params, t int) SearchFunc {
			idx := core.Build(data, core.Config{C: p.C, W0: p.W0, K: p.K, L: p.L, T: t, Seed: p.Seed})
			return func(q []float32, k int) []vec.Neighbor { return idx.KANN(q, k) }
		}},
		{"FB-LSH", func(data *vec.Matrix, p Params, t int) SearchFunc {
			return fblsh.Build(data, fblsh.Config{C: p.C, W0: p.W0, K: p.K, L: p.L, T: t, Seed: p.Seed}).KANN
		}},
		{"E2LSH", func(data *vec.Matrix, p Params, t int) SearchFunc {
			return e2lsh.Build(data, e2lsh.Config{C: p.C, W0: p.W0, K: p.K, L: p.L, T: t, Seed: p.Seed}).KANN
		}},
		{"QALSH", func(data *vec.Matrix, p Params, t int) SearchFunc {
			return qalsh.Build(data, qalsh.Config{C: p.C, Beta: beta(data, p, t), Seed: p.Seed}).KANN
		}},
		{"R2LSH", func(data *vec.Matrix, p Params, t int) SearchFunc {
			return r2lsh.Build(data, r2lsh.Config{C: p.C, Beta: beta(data, p, t), Seed: p.Seed}).KANN
		}},
		{"VHP", func(data *vec.Matrix, p Params, t int) SearchFunc {
			return vhp.Build(data, vhp.Config{C: p.C, Beta: beta(data, p, t), Seed: p.Seed}).KANN
		}},
		{"PM-LSH", func(data *vec.Matrix, p Params, t int) SearchFunc {
			return pmlsh.Build(data, pmlsh.Config{M: 15, Beta: beta(data, p, t), C: p.C, Seed: p.Seed}).KANN
		}},
		{"LSB-Forest", func(data *vec.Matrix, p Params, t int) SearchFunc {
			return lsb.Build(data, lsb.Config{K: p.K, L: p.L, T: t, Seed: p.Seed}).KANN
		}},
	}
}

// defaultBudgetLadder is the sequence of candidate constants tried in order.
var defaultBudgetLadder = []int{5, 10, 25, 50, 100, 200, 400, 800}

// EqualAccuracy reproduces the paper's headline comparison directly: for
// each algorithm it walks a budget ladder until the average recall reaches
// target, then reports the query time at that first sufficient budget. The
// paper's "DB-LSH reduces query time by an average of 40% over the second
// best competitor" is a statement about exactly this table.
func EqualAccuracy(w io.Writer, p dataset.Profile, params Params, k int, target float64) []EqualAccuracyRow {
	ds := dataset.Generate(p)
	truth := dataset.GroundTruth(ds.Data, ds.Queries, k)

	fmt.Fprintf(w, "Equal-accuracy comparison on %s — time to reach recall ≥ %.2f (k=%d)\n", p.Name, target, k)
	fmt.Fprintf(w, "  %-12s %8s %8s %14s %12s\n", "Algorithm", "t", "recall", "QueryTime", "OverallRatio")

	var rows []EqualAccuracyRow
	for _, ba := range budgetedAlgos() {
		row := EqualAccuracyRow{Algo: ba.name}
		for _, t := range defaultBudgetLadder {
			r := RunWorkload(Algo{Name: ba.name, Build: func(data *vec.Matrix) SearchFunc {
				return ba.build(data, params, t)
			}}, ds, truth, k)
			row.Recall = r.Agg.AvgRecall
			row.Budget = t
			row.AvgTime = r.Agg.AvgTime
			row.AvgRatio = r.Agg.AvgRatio
			if r.Agg.AvgRecall >= target {
				row.Reached = true
				break
			}
		}
		rows = append(rows, row)
		mark := ""
		if !row.Reached {
			mark = "  (target not reached at max budget)"
		}
		fmt.Fprintf(w, "  %-12s %8d %8.4f %14v %12.4f%s\n",
			row.Algo, row.Budget, row.Recall, row.AvgTime.Round(time.Microsecond), row.AvgRatio, mark)
	}
	return rows
}
