package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dblsh/internal/eval"
)

func fakeSeries() map[string][]Result {
	mk := func(times ...time.Duration) []Result {
		out := make([]Result, len(times))
		for i, tm := range times {
			out[i] = Result{Agg: eval.Aggregate{AvgTime: tm, AvgRecall: 0.9}}
		}
		return out
	}
	return map[string][]Result{
		"DB-LSH": mk(1*time.Millisecond, 2*time.Millisecond, 3*time.Millisecond),
		"QALSH":  mk(10*time.Millisecond, 30*time.Millisecond, 90*time.Millisecond),
	}
}

func TestPlotVaryN(t *testing.T) {
	var buf bytes.Buffer
	err := PlotVaryN(&buf, "fig5", []float64{0.2, 0.6, 1.0}, fakeSeries())
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fig5", "DB-LSH", "QALSH", "fraction of n", "log scale"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestPlotVaryNLengthMismatch(t *testing.T) {
	err := PlotVaryN(&bytes.Buffer{}, "fig5", []float64{0.5}, fakeSeries())
	if err == nil {
		t.Fatal("fraction/series length mismatch must error")
	}
}

func TestPlotTradeoff(t *testing.T) {
	series := map[string][]TradeoffPoint{
		"DB-LSH": {
			{C: 1.2, Time: 3 * time.Millisecond, Recall: 0.95},
			{C: 2.0, Time: 1 * time.Millisecond, Recall: 0.7},
		},
		"PM-LSH": {
			{C: 1.2, Time: 9 * time.Millisecond, Recall: 0.9},
			{C: 2.0, Time: 4 * time.Millisecond, Recall: 0.6},
		},
	}
	var buf bytes.Buffer
	if err := PlotTradeoff(&buf, "fig9", series); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "recall") || !strings.Contains(out, "PM-LSH") {
		t.Fatalf("unexpected plot:\n%s", out)
	}
}

func TestAlgoOrderCanonical(t *testing.T) {
	got := algoOrder(map[string][]Result{"QALSH": nil, "DB-LSH": nil})
	if len(got) != 2 || got[0] != "DB-LSH" || got[1] != "QALSH" {
		t.Fatalf("order = %v", got)
	}
}
