// Package harness runs the paper's experiments end to end: it builds every
// algorithm on a dataset profile, replays the query workload, and renders
// the same rows and series the paper's Tables and Figures report. One
// exported runner exists per experiment id (see DESIGN.md's experiment
// index); the dblsh-bench command and the repository-level benchmarks are
// thin wrappers over these runners.
package harness

import (
	"fmt"
	"io"
	"math"
	"time"

	"dblsh/internal/baseline/e2lsh"
	"dblsh/internal/baseline/fblsh"
	"dblsh/internal/baseline/lsb"
	"dblsh/internal/baseline/pmlsh"
	"dblsh/internal/baseline/qalsh"
	"dblsh/internal/baseline/r2lsh"
	"dblsh/internal/baseline/scan"
	"dblsh/internal/baseline/vhp"
	"dblsh/internal/core"
	"dblsh/internal/dataset"
	"dblsh/internal/eval"
	"dblsh/internal/mathx"
	"dblsh/internal/vec"
)

// SearchFunc answers a (c,k)-ANN query.
type SearchFunc func(q []float32, k int) []vec.Neighbor

// Algo couples an algorithm name with its builder. Note carries the
// index-size accounting of Table IV (index size = n × #hash functions for
// every method here, so the hash-function count is the comparison).
type Algo struct {
	Name  string
	Note  string
	Build func(data *vec.Matrix) SearchFunc
}

// Params carries the paper's default experimental settings (Section VI-A):
// c = 1.5, w = 4c², L = 5, K = 10–12, k = 50, and the candidate constant t.
type Params struct {
	C    float64
	W0   float64
	K    int
	L    int
	T    int
	Seed int64
}

// DefaultParams mirrors the paper's defaults at our dataset scale.
func DefaultParams() Params {
	c := 1.5
	return Params{C: c, W0: 4 * c * c, K: 10, L: 5, T: 100, Seed: 42}
}

// StandardAlgos returns the algorithm set of Table IV. The shared candidate
// budget 2tL+k is propagated into each method's own budget knob so every
// algorithm verifies a comparable number of points (the paper tunes each
// competitor to "comparable query accuracy" the same way).
func StandardAlgos(p Params) []Algo {
	budget := 2 * p.T * p.L
	return []Algo{
		{Name: "DB-LSH", Note: fmt.Sprintf("K·L=%d", p.K*p.L), Build: func(data *vec.Matrix) SearchFunc {
			idx := core.Build(data, core.Config{C: p.C, W0: p.W0, K: p.K, L: p.L, T: p.T, Seed: p.Seed})
			return func(q []float32, k int) []vec.Neighbor {
				return idx.KANN(q, k)
			}
		}},
		{Name: "FB-LSH", Note: fmt.Sprintf("K·L=%d per level", p.K*p.L), Build: func(data *vec.Matrix) SearchFunc {
			idx := fblsh.Build(data, fblsh.Config{C: p.C, W0: p.W0, K: p.K, L: p.L, T: p.T, Seed: p.Seed})
			return idx.KANN
		}},
		{Name: "E2LSH", Note: fmt.Sprintf("K·L=%d per level", p.K*p.L), Build: func(data *vec.Matrix) SearchFunc {
			idx := e2lsh.Build(data, e2lsh.Config{C: p.C, W0: p.W0, K: p.K, L: p.L, T: p.T, Seed: p.Seed})
			return idx.KANN
		}},
		{Name: "QALSH", Note: "m=O(log n)", Build: func(data *vec.Matrix) SearchFunc {
			beta := 0.1
			if n := data.Rows(); n > 0 {
				beta = float64(budget) / float64(n)
			}
			idx := qalsh.Build(data, qalsh.Config{C: p.C, Beta: beta, Seed: p.Seed})
			return idx.KANN
		}},
		{Name: "R2LSH", Note: "m 2-D spaces", Build: func(data *vec.Matrix) SearchFunc {
			beta := 0.1
			if n := data.Rows(); n > 0 {
				beta = float64(budget) / float64(n)
			}
			idx := r2lsh.Build(data, r2lsh.Config{C: p.C, Beta: beta, Seed: p.Seed})
			return idx.KANN
		}},
		{Name: "VHP", Note: "m=O(log n)", Build: func(data *vec.Matrix) SearchFunc {
			beta := 0.1
			if n := data.Rows(); n > 0 {
				beta = float64(budget) / float64(n)
			}
			idx := vhp.Build(data, vhp.Config{C: p.C, Beta: beta, Seed: p.Seed})
			return idx.KANN
		}},
		{Name: "PM-LSH", Note: "m=15", Build: func(data *vec.Matrix) SearchFunc {
			beta := 0.1
			if n := data.Rows(); n > 0 {
				beta = float64(budget) / float64(n)
			}
			idx := pmlsh.Build(data, pmlsh.Config{M: 15, Beta: beta, C: p.C, Seed: p.Seed})
			return idx.KANN
		}},
		{Name: "LSB-Forest", Note: fmt.Sprintf("K·L=%d", p.K*p.L), Build: func(data *vec.Matrix) SearchFunc {
			idx := lsb.Build(data, lsb.Config{K: p.K, L: p.L, T: p.T, Seed: p.Seed})
			return idx.KANN
		}},
	}
}

// WithScan appends the exact linear-scan yardstick.
func WithScan(algos []Algo) []Algo {
	return append(algos, Algo{Name: "Scan", Build: func(data *vec.Matrix) SearchFunc {
		return scan.Build(data).KANN
	}})
}

// Result is one algorithm's measured row.
type Result struct {
	Algo      string
	BuildTime time.Duration
	Agg       eval.Aggregate
}

// RunWorkload builds an algorithm, replays the workload once untimed (to
// warm lazily-built structures the way a long-lived serving process would),
// then measures every query against the provided ground truth.
func RunWorkload(a Algo, ds *dataset.Dataset, truth [][]vec.Neighbor, k int) Result {
	start := time.Now()
	search := a.Build(ds.Data)
	buildTime := time.Since(start)

	nq := ds.Queries.Rows()
	for qi := 0; qi < nq; qi++ { // warm pass
		search(ds.Queries.Row(qi), k)
	}
	results := make([]eval.QueryResult, nq)
	for qi := 0; qi < nq; qi++ {
		q := ds.Queries.Row(qi)
		t0 := time.Now()
		res := search(q, k)
		elapsed := time.Since(t0)
		results[qi] = eval.QueryResult{
			Time:   elapsed,
			Recall: eval.Recall(res, truth[qi]),
			Ratio:  eval.OverallRatio(res, truth[qi]),
		}
	}
	return Result{Algo: a.Name, BuildTime: buildTime, Agg: eval.Summarize(results)}
}

// RunProfile generates a profile, computes ground truth, and measures every
// algorithm on it.
func RunProfile(p dataset.Profile, algos []Algo, k int) []Result {
	ds := dataset.Generate(p)
	truth := dataset.GroundTruth(ds.Data, ds.Queries, k)
	out := make([]Result, 0, len(algos))
	for _, a := range algos {
		out = append(out, RunWorkload(a, ds, truth, k))
	}
	return out
}

// Table4 reproduces Table IV: per-dataset query time, overall ratio, recall
// and indexing time for every algorithm.
func Table4(w io.Writer, profiles []dataset.Profile, params Params, k int) {
	algos := StandardAlgos(params)
	fmt.Fprintf(w, "Table IV — Performance Overview (k=%d, c=%.2f, w0=%.2f, K=%d, L=%d, t=%d)\n",
		k, params.C, params.W0, params.K, params.L, params.T)
	notes := make(map[string]string, len(algos))
	for _, a := range algos {
		notes[a.Name] = a.Note
	}
	for _, p := range profiles {
		fmt.Fprintf(w, "\n%s (n=%d, d=%d)\n", p.Name, p.N, p.Dim)
		fmt.Fprintf(w, "  %-12s %14s %12s %8s %14s  %s\n", "Algorithm", "QueryTime", "OverallRatio", "Recall", "IndexingTime", "IndexSize")
		for _, r := range RunProfile(p, algos, k) {
			fmt.Fprintf(w, "  %-12s %14v %12.4f %8.4f %14v  %s\n",
				r.Algo, r.Agg.AvgTime.Round(time.Microsecond), r.Agg.AvgRatio, r.Agg.AvgRecall,
				r.BuildTime.Round(time.Millisecond), notes[r.Algo])
		}
	}
}

// Fig4 reproduces Figure 4: ρ* versus the static ρ and the bounds 1/c and
// 1/c^α for w = 0.4c² (a) and w = 4c² (b), over c ∈ [1.05, 4].
func Fig4(w io.Writer) {
	for _, gamma := range []float64{0.2, 2.0} {
		fmt.Fprintf(w, "Figure 4 — w0 = %.1fc² (γ=%.1f, α=ξ(γ)=%.4f)\n", 2*gamma, gamma, xi(gamma))
		fmt.Fprintf(w, "  %6s %10s %10s %10s %10s\n", "c", "rho*", "rho(static)", "1/c", "1/c^alpha")
		alpha := xi(gamma)
		for c := 1.05; c <= 4.001; c += 0.25 {
			w0 := 2 * gamma * c * c
			fmt.Fprintf(w, "  %6.2f %10.4f %10.4f %10.4f %10.4f\n",
				c, rhoDyn(c, w0), rhoStatic(c, w0), 1/c, math.Pow(c, -alpha))
		}
		fmt.Fprintln(w)
	}
}

// VaryN runs the Fig. 5–7 experiment: algorithms over scaled-down copies of
// a profile, reporting time, recall and ratio per fraction.
func VaryN(w io.Writer, p dataset.Profile, fractions []float64, params Params, k int) map[string][]Result {
	algos := StandardAlgos(params)
	series := make(map[string][]Result)
	fmt.Fprintf(w, "Figures 5-7 — varying n on %s (k=%d)\n", p.Name, k)
	fmt.Fprintf(w, "  %-12s %8s %14s %8s %12s\n", "Algorithm", "n-frac", "QueryTime", "Recall", "OverallRatio")
	for _, f := range fractions {
		for _, r := range RunProfile(p.Scaled(f), algos, k) {
			series[r.Algo] = append(series[r.Algo], r)
			fmt.Fprintf(w, "  %-12s %8.1f %14v %8.4f %12.4f\n",
				r.Algo, f, r.Agg.AvgTime.Round(time.Microsecond), r.Agg.AvgRecall, r.Agg.AvgRatio)
		}
	}
	return series
}

// VaryK runs the Fig. 8 experiment: recall and overall ratio as k grows.
func VaryK(w io.Writer, p dataset.Profile, ks []int, params Params) {
	algos := StandardAlgos(params)
	ds := dataset.Generate(p)
	maxK := 0
	for _, k := range ks {
		if k > maxK {
			maxK = k
		}
	}
	truth := dataset.GroundTruth(ds.Data, ds.Queries, maxK)
	fmt.Fprintf(w, "Figure 8 — varying k on %s\n", p.Name)
	fmt.Fprintf(w, "  %-12s %6s %8s %12s\n", "Algorithm", "k", "Recall", "OverallRatio")
	for _, a := range algos {
		search := a.Build(ds.Data)
		for _, k := range ks {
			kTruth := make([][]vec.Neighbor, len(truth))
			for i := range truth {
				kTruth[i] = truth[i][:k]
			}
			results := make([]eval.QueryResult, ds.Queries.Rows())
			for qi := 0; qi < ds.Queries.Rows(); qi++ {
				res := search(ds.Queries.Row(qi), k)
				results[qi] = eval.QueryResult{
					Recall: eval.Recall(res, kTruth[qi]),
					Ratio:  eval.OverallRatio(res, kTruth[qi]),
				}
			}
			agg := eval.Summarize(results)
			fmt.Fprintf(w, "  %-12s %6d %8.4f %12.4f\n", a.Name, k, agg.AvgRecall, agg.AvgRatio)
		}
	}
}

// TradeoffPoint is one (time, recall, ratio) sample of the Fig. 9/10 curves.
type TradeoffPoint struct {
	C      float64
	Time   time.Duration
	Recall float64
	Ratio  float64
}

// Tradeoff runs the Fig. 9/10 experiment: recall–time and ratio–time curves
// obtained by varying the approximation ratio c.
func Tradeoff(w io.Writer, p dataset.Profile, cs []float64, params Params, k int) map[string][]TradeoffPoint {
	ds := dataset.Generate(p)
	truth := dataset.GroundTruth(ds.Data, ds.Queries, k)
	out := make(map[string][]TradeoffPoint)
	fmt.Fprintf(w, "Figures 9-10 — recall/ratio vs time on %s (k=%d), varying c\n", p.Name, k)
	fmt.Fprintf(w, "  %-12s %6s %14s %8s %12s\n", "Algorithm", "c", "QueryTime", "Recall", "OverallRatio")
	for _, c := range cs {
		pp := params
		pp.C = c
		pp.W0 = 4 * c * c
		for _, a := range StandardAlgos(pp) {
			r := RunWorkload(a, ds, truth, k)
			pt := TradeoffPoint{C: c, Time: r.Agg.AvgTime, Recall: r.Agg.AvgRecall, Ratio: r.Agg.AvgRatio}
			out[a.Name] = append(out[a.Name], pt)
			fmt.Fprintf(w, "  %-12s %6.2f %14v %8.4f %12.4f\n",
				a.Name, c, pt.Time.Round(time.Microsecond), pt.Recall, pt.Ratio)
		}
	}
	return out
}

// Table1 estimates each algorithm's empirical query-cost exponent: the slope
// of log(query time) against log(n) over scaled datasets — the measurable
// counterpart of Table I's O(n^ρ) column. Sub-linear methods show slope < 1.
func Table1(w io.Writer, p dataset.Profile, fractions []float64, params Params, k int) map[string]float64 {
	series := VaryN(io.Discard, p, fractions, params, k)
	out := make(map[string]float64, len(series))
	fmt.Fprintf(w, "Table I (empirical) — query-time growth exponents on %s\n", p.Name)
	fmt.Fprintf(w, "  %-12s %10s\n", "Algorithm", "exponent")
	for algo, rs := range series {
		var xs, ys []float64
		for i, r := range rs {
			xs = append(xs, math.Log(float64(p.N)*fractions[i]))
			ys = append(ys, math.Log(float64(r.Agg.AvgTime.Nanoseconds())))
		}
		out[algo] = slope(xs, ys)
	}
	// Stable output order: the order of StandardAlgos.
	for _, a := range StandardAlgos(params) {
		if v, ok := out[a.Name]; ok {
			fmt.Fprintf(w, "  %-12s %10.3f\n", a.Name, v)
		}
	}
	return out
}

// Thin aliases over mathx keep the figure code readable.
func xi(gamma float64) float64        { return mathx.Xi(gamma) }
func rhoDyn(c, w0 float64) float64    { return mathx.Rho(c, w0) }
func rhoStatic(c, w0 float64) float64 { return mathx.RhoStatic(c, w0) }

func slope(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}
