// Package wal implements the on-disk write-ahead op log of the durability
// subsystem: an append-only sequence of Add/Delete records that captures
// every mutation applied to an index since its last checkpoint, so a crash
// loses at most the records the active sync policy had not yet fsynced.
//
// # Format
//
// A log file is a sequence of frames, each little-endian:
//
//	length  uint32   payload length in bytes
//	crc     uint32   CRC-32 (IEEE) of the payload
//	payload length bytes
//
// and each payload is one record:
//
//	op      byte     1 = add, 2 = delete
//	id      uint64   global id of the vector
//	count   uint32   (add only) number of float32 components
//	row     count × float32   (add only) the vector, in the index's
//	                 *internal* (metric-transformed) representation, so
//	                 replay re-inserts rows verbatim with no metric
//	                 re-derivation
//
// The framing makes the log torn-tail tolerant: a crash mid-append leaves a
// final frame that is short, fails its checksum, or was zero-filled by the
// filesystem, which Replay detects and drops — every complete frame before
// it is intact and replayed. A damaged frame is only accepted as the torn
// tail when nothing but zero bytes follows it: a crash can damage only the
// unsynced suffix of the file, so intact data *after* a bad frame is media
// corruption or version skew, and Replay reports it as ErrCorrupt (as it
// does a frame whose checksum verifies but whose payload is structurally
// invalid) rather than silently dropping acknowledged mutations.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"time"

	"dblsh/internal/obs"
)

// Op identifies a record's mutation type.
type Op byte

const (
	// OpAdd records an insertion: ID plus the internal-space row.
	OpAdd Op = 1
	// OpDelete records a tombstone: ID only.
	OpDelete Op = 2
)

// Record is one logged mutation.
type Record struct {
	Op  Op
	ID  uint64
	Row []float32 // internal (transformed) row for OpAdd; nil for OpDelete
}

// frameHeaderSize is the length+crc prefix of every frame.
const frameHeaderSize = 8

// payload sizes: op byte + id, plus count for adds.
const (
	deletePayloadSize    = 1 + 8
	addPayloadHeaderSize = 1 + 8 + 4
)

// ErrCorrupt reports a frame whose checksum verified but whose payload is
// not a valid record — version skew or real corruption, never a torn tail —
// so callers fail loudly instead of dropping acknowledged mutations.
var ErrCorrupt = errors.New("wal: corrupt record")

// AppendRecord appends rec's frame encoding to dst and returns the extended
// slice. The encoding is canonical: equal records always produce equal
// bytes.
func AppendRecord(dst []byte, rec Record) []byte {
	plen := deletePayloadSize
	if rec.Op == OpAdd {
		plen = addPayloadHeaderSize + 4*len(rec.Row)
	}
	start := len(dst)
	dst = append(dst, make([]byte, frameHeaderSize+plen)...)
	payload := dst[start+frameHeaderSize:]
	payload[0] = byte(rec.Op)
	binary.LittleEndian.PutUint64(payload[1:], rec.ID)
	if rec.Op == OpAdd {
		binary.LittleEndian.PutUint32(payload[9:], uint32(len(rec.Row)))
		for i, f := range rec.Row {
			binary.LittleEndian.PutUint32(payload[13+4*i:], math.Float32bits(f))
		}
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(plen))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.ChecksumIEEE(payload))
	return dst
}

// decodePayload parses a checksum-verified payload. maxFloats bounds an add
// row's length (the index dimensionality at the call site).
func decodePayload(payload []byte, maxFloats int) (Record, error) {
	if len(payload) < deletePayloadSize {
		return Record{}, fmt.Errorf("%w: payload of %d bytes", ErrCorrupt, len(payload))
	}
	rec := Record{Op: Op(payload[0]), ID: binary.LittleEndian.Uint64(payload[1:])}
	switch rec.Op {
	case OpDelete:
		if len(payload) != deletePayloadSize {
			return Record{}, fmt.Errorf("%w: delete payload of %d bytes", ErrCorrupt, len(payload))
		}
		return rec, nil
	case OpAdd:
		if len(payload) < addPayloadHeaderSize {
			return Record{}, fmt.Errorf("%w: add payload of %d bytes", ErrCorrupt, len(payload))
		}
		count := int(binary.LittleEndian.Uint32(payload[9:]))
		if count > maxFloats || len(payload) != addPayloadHeaderSize+4*count {
			return Record{}, fmt.Errorf("%w: add row of %d floats in %d bytes", ErrCorrupt, count, len(payload))
		}
		rec.Row = make([]float32, count)
		for i := range rec.Row {
			rec.Row[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[13+4*i:]))
		}
		return rec, nil
	}
	return Record{}, fmt.Errorf("%w: unknown op %d", ErrCorrupt, payload[0])
}

// ReplayResult summarizes one Replay pass.
type ReplayResult struct {
	// Records is the number of complete, verified records delivered.
	Records int
	// GoodOffset is the byte offset just past the last verified frame:
	// truncating the file here removes the torn tail without touching any
	// intact record.
	GoodOffset int64
	// Torn reports that the scan stopped at an incomplete or
	// checksum-failing final frame (which was dropped) rather than at a
	// clean end of file.
	Torn bool
}

// Replay streams every intact record of the log at path to fn, in append
// order. maxFloats bounds an add record's row length — anything longer is
// corruption, not data. A torn tail — a truncated, checksum-failing or
// zero-filled trailing frame, the signature of a crash mid-append — stops
// the scan and is reported via ReplayResult.Torn, not as an error;
// everything before it is delivered. A damaged frame followed by anything
// other than zero bytes is not a crash artifact but mid-file corruption,
// and aborts with ErrCorrupt instead of silently dropping the records
// after it; a checksum-verified but structurally invalid record aborts the
// same way, and an error from fn aborts with that error. In every abort
// case the result still describes the records delivered so far.
func Replay(path string, maxFloats int, fn func(Record) error) (ReplayResult, error) {
	var res ReplayResult
	f, err := os.Open(path)
	if err != nil {
		return res, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)

	// tail decides what a damaged frame was: the torn tail of a crashed
	// append (only the frame's own debris — at most zero-fill — remains) or
	// mid-file corruption (intact data follows).
	tail := func() (ReplayResult, error) {
		for {
			b, err := br.ReadByte()
			if err != nil {
				break
			}
			if b != 0 {
				return res, fmt.Errorf("%w: data follows a damaged frame at offset %d", ErrCorrupt, res.GoodOffset)
			}
		}
		res.Torn = true
		return res, nil
	}

	maxPayload := addPayloadHeaderSize + 4*maxFloats
	var hdr [frameHeaderSize]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if errors.Is(err, io.ErrUnexpectedEOF) {
				res.Torn = true
			} else if !errors.Is(err, io.EOF) {
				return res, fmt.Errorf("wal: read %s: %w", path, err)
			}
			return res, nil
		}
		plen := int(binary.LittleEndian.Uint32(hdr[:4]))
		if plen < deletePayloadSize || plen > maxPayload {
			// A garbage length leaves no way to even locate the frame's
			// end; everything from the header on is the artifact.
			return tail()
		}
		if cap(payload) < plen {
			payload = make([]byte, maxPayload)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(br, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				res.Torn = true
				return res, nil
			}
			return res, fmt.Errorf("wal: read %s: %w", path, err)
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:]) {
			return tail()
		}
		rec, err := decodePayload(payload, maxFloats)
		if err != nil {
			return res, err
		}
		if err := fn(rec); err != nil {
			return res, err
		}
		res.Records++
		res.GoodOffset += int64(frameHeaderSize + plen)
	}
}

// ErrWriterFailed latches a Writer after a failure it could not roll back:
// the segment's tail state is unknown, so acknowledging further appends
// (or claiming a successful sync) would be a lie. The segment stays
// readable; recovery goes through Replay.
var ErrWriterFailed = errors.New("wal: writer failed; segment tail state unknown")

// Metrics is the writer's observability hook set. Every field is optional
// (the obs metric types are nil-safe), so an uninstrumented writer pays a
// nil check per event. The metrics outlive any one segment: the durability
// layer carries one Metrics value across log rotations.
type Metrics struct {
	// Appends counts records appended; AppendBytes their framed bytes.
	Appends     *obs.Counter
	AppendBytes *obs.Counter
	// Fsyncs counts physical fsyncs (Sync calls that found dirty frames);
	// FsyncSeconds is their latency distribution.
	Fsyncs       *obs.Counter
	FsyncSeconds *obs.Histogram
}

// Writer appends records to one log segment. It is not internally
// synchronized: callers serialize Append/Sync/Close (the durability layer
// holds its log mutex across them).
type Writer struct {
	f      *os.File // dblsh:guardedby caller
	buf    []byte   // dblsh:guardedby caller
	size   int64    // dblsh:guardedby caller
	dirty  bool     // dblsh:guardedby caller — bytes written since the last Sync
	failed bool     // dblsh:guardedby caller — see ErrWriterFailed

	// M is set (before first use) by callers that want the segment's
	// append/fsync activity reported.
	M Metrics
}

// OpenWriter opens (or creates) the segment at path for appending,
// truncating it to size first — the caller passes Replay's GoodOffset so a
// torn tail left by a crash is physically removed before new frames land
// after it.
func OpenWriter(path string, size int64) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &Writer{f: f, size: size}, nil
}

// Append writes rec's frame to the segment. A failed write that left a
// partial frame is rolled back (truncate to the pre-append length), so a
// transient error — a full disk, say — never strands garbage mid-file for
// later frames to land behind, where replay would stop at the garbage and
// silently drop them. If the rollback itself fails the writer latches into
// ErrWriterFailed and refuses further appends.
func (w *Writer) Append(rec Record) error {
	if w.failed {
		return ErrWriterFailed
	}
	w.buf = AppendRecord(w.buf[:0], rec)
	n, err := w.f.Write(w.buf)
	if err == nil {
		w.size += int64(n)
		w.dirty = true
		w.M.Appends.Inc()
		w.M.AppendBytes.Add(int64(n))
		return nil
	}
	if n > 0 {
		if w.f.Truncate(w.size) != nil {
			w.failed = true
			w.size += int64(n)
			return err
		}
		if _, serr := w.f.Seek(w.size, io.SeekStart); serr != nil {
			w.failed = true
			return err
		}
		w.dirty = true // the rolled-back bytes may still be in the page cache
	}
	return err
}

// Sync fsyncs appended frames to stable storage. It is a no-op when nothing
// was appended since the last Sync. A failed fsync latches the writer: the
// kernel may have dropped the dirty pages, so no later Sync could honestly
// claim to cover these frames (and no later append may be acknowledged on
// top of them).
func (w *Writer) Sync() error {
	if w.failed {
		return ErrWriterFailed
	}
	if !w.dirty {
		return nil
	}
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		w.failed = true
		return err
	}
	w.M.Fsyncs.Inc()
	w.M.FsyncSeconds.Observe(time.Since(start).Seconds())
	w.dirty = false
	return nil
}

// Size returns the segment's current length in bytes (including any bytes
// not yet fsynced).
func (w *Writer) Size() int64 { return w.size }

// Close syncs (unless the writer is latched failed) and closes the segment
// file.
func (w *Writer) Close() error {
	var err error
	if w.failed {
		err = ErrWriterFailed
	} else {
		err = w.Sync()
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}
