package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleRecords() []Record {
	return []Record{
		{Op: OpAdd, ID: 0, Row: []float32{1, 2, 3, 4}},
		{Op: OpAdd, ID: 1, Row: []float32{-1.5, 0, 2.25, 1e30}},
		{Op: OpDelete, ID: 0},
		{Op: OpAdd, ID: 2, Row: []float32{0, 0, 0, 0}},
		{Op: OpDelete, ID: 2},
	}
}

func writeLog(t *testing.T, path string, recs []Record) {
	t.Helper()
	w, err := OpenWriter(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func replayAll(t *testing.T, path string, maxFloats int) ([]Record, ReplayResult) {
	t.Helper()
	var got []Record
	res, err := Replay(path, maxFloats, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got, res
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	recs := sampleRecords()
	writeLog(t, path, recs)
	got, res := replayAll(t, path, 4)
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", got, recs)
	}
	if res.Torn {
		t.Fatal("clean log reported a torn tail")
	}
	fi, _ := os.Stat(path)
	if res.GoodOffset != fi.Size() {
		t.Fatalf("GoodOffset %d, file size %d", res.GoodOffset, fi.Size())
	}
}

// TestTornTailEveryTruncation truncates a valid log at every possible byte
// length: replay must always return the records wholly before the cut, flag
// the tail torn unless the cut lands exactly on a frame boundary, and never
// error.
func TestTornTailEveryTruncation(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.log")
	recs := sampleRecords()
	writeLog(t, full, recs)
	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	// Frame boundaries, for computing how many records survive a cut.
	var bounds []int64
	var enc []byte
	off := int64(0)
	bounds = append(bounds, 0)
	for _, r := range recs {
		enc = AppendRecord(enc[:0], r)
		off += int64(len(enc))
		bounds = append(bounds, off)
	}

	for cut := 0; cut <= len(raw); cut++ {
		path := filepath.Join(dir, "cut.log")
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, res := replayAll(t, path, 4)
		want := 0
		exact := false
		for i, b := range bounds {
			if int64(cut) >= b {
				want = i
				exact = int64(cut) == b
			}
		}
		if len(got) != want {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, len(got), want)
		}
		if want > 0 && !reflect.DeepEqual(got, recs[:want]) {
			t.Fatalf("cut %d: wrong record prefix", cut)
		}
		if res.Torn == exact {
			t.Fatalf("cut %d: Torn=%v, boundary=%v", cut, res.Torn, exact)
		}
		if res.GoodOffset != bounds[want] {
			t.Fatalf("cut %d: GoodOffset %d, want %d", cut, res.GoodOffset, bounds[want])
		}
	}
}

// TestCorruptTailBitFlip flips one bit in the final record: replay must
// drop exactly that record and report the tail torn.
func TestCorruptTailBitFlip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	recs := sampleRecords()
	writeLog(t, path, recs)
	raw, _ := os.ReadFile(path)

	var enc []byte
	lastStart := 0
	for _, r := range recs[:len(recs)-1] {
		enc = AppendRecord(enc[:0], r)
		lastStart += len(enc)
	}
	// Flip a payload bit of the final record (past its 8-byte frame header).
	raw[lastStart+frameHeaderSize] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got, res := replayAll(t, path, 4)
	if len(got) != len(recs)-1 || !res.Torn {
		t.Fatalf("got %d records, torn=%v; want %d records, torn", len(got), res.Torn, len(recs)-1)
	}
}

// TestTruncateAndAppend reopens a torn log at its good offset and appends:
// the new record must replace the torn tail cleanly.
func TestTruncateAndAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	recs := sampleRecords()
	writeLog(t, path, recs)
	raw, _ := os.ReadFile(path)
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil { // tear the tail
		t.Fatal(err)
	}
	_, res := replayAll(t, path, 4)
	if !res.Torn {
		t.Fatal("expected a torn tail")
	}
	w, err := OpenWriter(path, res.GoodOffset)
	if err != nil {
		t.Fatal(err)
	}
	extra := Record{Op: OpAdd, ID: 9, Row: []float32{7, 7, 7, 7}}
	if err := w.Append(extra); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, res2 := replayAll(t, path, 4)
	want := append(append([]Record(nil), recs[:len(recs)-1]...), extra)
	if !reflect.DeepEqual(got, want) || res2.Torn {
		t.Fatalf("after truncate+append: got %v (torn=%v), want %v", got, res2.Torn, want)
	}
}

// TestOversizedRowRejected pins the allocation bound: a frame advertising a
// row longer than maxFloats must stop the scan without allocating. The
// frame's intact (non-zero) payload follows its header, so it reads as
// corruption, not as a torn tail.
func TestOversizedRowRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	enc := AppendRecord(nil, Record{Op: OpAdd, ID: 1, Row: make([]float32, 64)})
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Replay(path, 4, func(Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized row: got %v, want ErrCorrupt", err)
	}
}

// TestZeroFillTornTail covers the filesystem crash artifact a plain
// truncation cannot: the unsynced tail comes back as zero bytes. Replay
// must treat the zero-filled region as the torn tail and keep everything
// before it.
func TestZeroFillTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	recs := sampleRecords()
	writeLog(t, path, recs)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, res := replayAll(t, path, 4)
	if len(got) != len(recs) || !res.Torn {
		t.Fatalf("zero-filled tail: got %d records, torn=%v; want %d, torn", len(got), res.Torn, len(recs))
	}
}

// TestCorruptMidFileErrors pins the loss-prevention rule: a damaged frame
// with intact frames after it is media corruption, not a crash artifact —
// silently truncating there would drop the acknowledged records that
// follow, so Replay must fail loudly instead.
func TestCorruptMidFileErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	recs := sampleRecords()
	writeLog(t, path, recs)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[frameHeaderSize+1] ^= 0x04 // damage the first record's payload
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rerr := Replay(path, 4, func(Record) error { return nil })
	if !errors.Is(rerr, ErrCorrupt) {
		t.Fatalf("mid-file corruption: got %v, want ErrCorrupt", rerr)
	}
}

// TestStructurallyInvalidRecordErrors pins the corruption/torn distinction:
// a frame whose checksum verifies but whose payload is invalid must surface
// ErrCorrupt, not be silently dropped.
func TestStructurallyInvalidRecordErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	enc := AppendRecord(nil, Record{Op: Op(7), ID: 1}) // bogus op, valid CRC
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Replay(path, 4, func(Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

func TestFnErrorAborts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	writeLog(t, path, sampleRecords())
	boom := errors.New("boom")
	n := 0
	res, err := Replay(path, 4, func(Record) error {
		n++
		if n == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || res.Records != 1 {
		t.Fatalf("got err=%v records=%d, want boom after 1 record", err, res.Records)
	}
}

// FuzzWALReplay hardens the log parser: arbitrary bytes must replay without
// panicking or over-allocating, every delivered record must be structurally
// valid, and — because the encoding is canonical — re-encoding the
// delivered records must reproduce exactly the consumed prefix of the
// input.
func FuzzWALReplay(f *testing.F) {
	const maxFloats = 8
	var seed []byte
	for _, r := range []Record{
		{Op: OpAdd, ID: 0, Row: []float32{1, 2, 3}},
		{Op: OpDelete, ID: 0},
		{Op: OpAdd, ID: 1, Row: make([]float32, maxFloats)},
	} {
		seed = AppendRecord(seed, r)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-5])
	flipped := append([]byte(nil), seed...)
	flipped[9] ^= 0x10
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4, 5, 6, 7, 8})

	f.Fuzz(func(t *testing.T, raw []byte) {
		path := filepath.Join(t.TempDir(), "wal.log")
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		var reenc []byte
		res, err := Replay(path, maxFloats, func(r Record) error {
			if r.Op != OpAdd && r.Op != OpDelete {
				t.Fatalf("delivered record with invalid op %d", r.Op)
			}
			if r.Op == OpAdd && len(r.Row) > maxFloats {
				t.Fatalf("delivered row of %d floats, max %d", len(r.Row), maxFloats)
			}
			if r.Op == OpDelete && r.Row != nil {
				t.Fatalf("delete record carries a row")
			}
			reenc = AppendRecord(reenc, r)
			return nil
		})
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if res.GoodOffset > int64(len(raw)) {
			t.Fatalf("GoodOffset %d past input length %d", res.GoodOffset, len(raw))
		}
		if int64(len(reenc)) != res.GoodOffset || !bytes.Equal(reenc, raw[:res.GoodOffset]) {
			t.Fatalf("canonical re-encoding diverges from consumed prefix (%d vs %d bytes)", len(reenc), res.GoodOffset)
		}
	})
}
