package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// NilRecv checks that pointer-receiver methods on types annotated
// `// dblsh:nilsafe` start with a nil-receiver guard before touching any
// receiver field, so a nil metric handle stays a cheap no-op instead of a
// panic.
var NilRecv = &analysis.Analyzer{
	Name: "dblshnilrecv",
	Doc: "pointer-receiver methods on dblsh:nilsafe types must begin with " +
		"a nil-receiver guard before any receiver field access",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runNilRecv,
}

func runNilRecv(pass *analysis.Pass) (interface{}, error) {
	nilsafe := nilSafeTypes(pass)
	if len(nilsafe) == 0 {
		return nil, nil
	}
	in := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	in.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Body == nil || isTestFile(pass, fd.Pos()) {
			return
		}
		recvField := fd.Recv.List[0]
		if len(recvField.Names) == 0 || recvField.Names[0].Name == "_" {
			return // unnamed receiver cannot access fields
		}
		recvObj := pass.TypesInfo.Defs[recvField.Names[0]]
		if recvObj == nil {
			return
		}
		ptr, ok := recvObj.Type().(*types.Pointer)
		if !ok {
			return // value receivers copy; a nil pointer never reaches them
		}
		named, ok := ptr.Elem().(*types.Named)
		if !ok || !nilsafe[named.Obj()] {
			return
		}
		if !accessesRecvField(pass, fd.Body, recvObj) {
			return // method only forwards to other methods; their guards apply
		}
		if hasNilGuard(pass, fd.Body, recvObj) {
			return
		}
		pass.Reportf(fd.Name.Pos(),
			"method %s on dblsh:nilsafe type %s accesses receiver fields without a leading `if %s == nil` guard",
			fd.Name.Name, named.Obj().Name(), recvField.Names[0].Name)
	})
	return nil, nil
}

// nilSafeTypes collects the type-name objects of every type whose
// declaration carries `// dblsh:nilsafe`.
func nilSafeTypes(pass *analysis.Pass) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			declAnnots := parseAnnots(gd.Doc)
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				as := append(parseAnnots(ts.Doc, ts.Comment), declAnnots...)
				if !hasVerb(as, verbNilSafe) {
					continue
				}
				if obj := pass.TypesInfo.Defs[ts.Name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	return out
}

// accessesRecvField reports whether body contains a field selection rooted
// at the receiver object (method calls on the receiver don't count — the
// callee performs its own guard).
func accessesRecvField(pass *analysis.Pass, body *ast.BlockStmt, recv types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := pass.TypesInfo.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		if id := rootIdent(sel.X); id != nil && pass.TypesInfo.Uses[id] == recv {
			found = true
			return false
		}
		return true
	})
	return found
}

// hasNilGuard reports whether the first statement of body is
//
//	if recv == nil { ... return ... }
//
// or `if recv == nil || <more> { ... return ... }` with the nil check as the
// leftmost term of the || chain, so it is evaluated before anything that
// could dereference the receiver.
func hasNilGuard(pass *analysis.Pass, body *ast.BlockStmt, recv types.Object) bool {
	if len(body.List) == 0 {
		return false
	}
	ifStmt, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifStmt.Init != nil {
		return false
	}
	cond := ifStmt.Cond
	for {
		bin, ok := cond.(*ast.BinaryExpr)
		if !ok {
			return false
		}
		if bin.Op == token.LOR {
			cond = bin.X
			continue
		}
		if bin.Op != token.EQL {
			return false
		}
		if !isNilCheck(pass, bin, recv) {
			return false
		}
		break
	}
	return endsInReturn(ifStmt.Body)
}

// isNilCheck reports whether bin is `recv == nil` or `nil == recv`.
func isNilCheck(pass *analysis.Pass, bin *ast.BinaryExpr, recv types.Object) bool {
	isRecv := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == recv
	}
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		if !ok {
			return false
		}
		_, isBuiltinNil := pass.TypesInfo.Uses[id].(*types.Nil)
		return isBuiltinNil
	}
	return (isRecv(bin.X) && isNil(bin.Y)) || (isNil(bin.X) && isRecv(bin.Y))
}

// endsInReturn reports whether the block's last statement bails out of the
// method (return or panic).
func endsInReturn(block *ast.BlockStmt) bool {
	if len(block.List) == 0 {
		return false
	}
	switch last := block.List[len(block.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}
