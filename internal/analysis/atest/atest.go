// Package atest is a minimal analysistest replacement: it loads a fixture
// package from testdata/src, type-checks it against the real standard
// library plus any sibling fixture packages, runs an analyzer (resolving
// its Requires graph), and matches the reported diagnostics against
// `// want "regex"` comments, analysistest-style.
//
// It exists because the module vendors only the x/tools subset shipped
// inside the Go distribution (the toolchain's own vendored copy), which
// does not include go/analysis/analysistest. The harness supports exactly
// what the dblsh analyzer fixtures need: no facts, no suggested-fix
// application, single-package loads with intra-testdata imports.
package atest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads testdata/src/<pkgPath> (relative to the test's working
// directory), applies a, and asserts the diagnostics equal the fixture's
// `// want` expectations.
func Run(t *testing.T, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	ld := newLoader("testdata/src")
	pkg, files, info, err := ld.load(pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       ld.fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   make(map[*analysis.Analyzer]interface{}),
		Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := runWithRequires(pass, a); err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgPath, err)
	}
	checkWants(t, ld.fset, files, diags)
}

// runWithRequires runs a's Requires (results feeding pass.ResultOf), then a
// itself. Dependency analyzers report through a discarding func: only the
// analyzer under test gets to fail the fixture.
func runWithRequires(pass *analysis.Pass, a *analysis.Analyzer) error {
	for _, req := range a.Requires {
		if _, done := pass.ResultOf[req]; done {
			continue
		}
		sub := *pass
		sub.Analyzer = req
		sub.Report = func(analysis.Diagnostic) {}
		if err := runWithRequires(&sub, req); err != nil {
			return err
		}
		res, err := req.Run(&sub)
		if err != nil {
			return fmt.Errorf("requirement %s: %w", req.Name, err)
		}
		pass.ResultOf[req] = res
	}
	_, err := a.Run(pass)
	return err
}

// loader type-checks fixture packages, resolving imports first against
// sibling directories under root (so fixtures can fake internal packages
// like dblsh/internal/wal), then against the installed standard library via
// the source importer.
type loader struct {
	fset  *token.FileSet
	root  string
	std   types.Importer
	cache map[string]*loaded
}

type loaded struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

func newLoader(root string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:  fset,
		root:  root,
		std:   importer.ForCompiler(fset, "source", nil),
		cache: make(map[string]*loaded),
	}
}

// Import makes the loader usable as the fixture packages' importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	dir := filepath.Join(ld.root, filepath.FromSlash(path))
	if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
		pkg, _, _, err := ld.load(path)
		return pkg, err
	}
	return ld.std.Import(path)
}

func (ld *loader) load(path string) (*types.Package, []*ast.File, *types.Info, error) {
	if c, ok := ld.cache[path]; ok {
		return c.pkg, c.files, c.info, nil
	}
	dir := filepath.Join(ld.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: ld}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	ld.cache[path] = &loaded{pkg: pkg, files: files, info: info}
	return pkg, files, info, nil
}

// want is one expectation: a diagnostic on a given file line whose message
// matches the regexp.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// wantRE accepts both the standalone `// want "..."` form and a want
// clause trailing other comment text (used when the diagnostic anchors to
// an annotation comment itself).
var wantRE = regexp.MustCompile(`//(?:.*?[\s])?want\s+(.*)`)
var wantArgRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// checkWants cross-matches diagnostics against the fixtures' want comments
// and fails the test on any mismatch in either direction.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
					raw := arg[1]
					if raw == "" {
						raw = arg[2]
						if unq, err := unquote(raw); err == nil {
							raw = unq
						}
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// unquote reverses the escaping inside a double-quoted want argument.
func unquote(s string) (string, error) {
	r := strings.NewReplacer(`\"`, `"`, `\\`, `\`)
	return r.Replace(s), nil
}
