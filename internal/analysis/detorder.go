package analysis

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// DetOrder checks determinism discipline in packages whose package comment
// carries `dblsh:deterministic`: candidate streams must not depend on map
// iteration order, select-race winners, or runtime-value kernel choices made
// outside the blessed dispatch sites.
var DetOrder = &analysis.Analyzer{
	Name: "dblshdetorder",
	Doc: "in dblsh:deterministic packages, flag map ranges, multi-send selects, " +
		"and kernel-implementation references outside dispatch sites",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runDetOrder,
}

func runDetOrder(pass *analysis.Pass) (interface{}, error) {
	if !packageMarked(pass, verbDeterministic) {
		return nil, nil
	}
	orderInv := newLineAnnots(pass, verbOrderInvariant)
	annots := funcAnnots(pass)
	kernels := kernelImplObjects(pass, annots)
	in := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	nodes := []ast.Node{
		(*ast.RangeStmt)(nil),
		(*ast.SelectStmt)(nil),
		(*ast.Ident)(nil),
	}
	in.WithStack(nodes, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push || isTestFile(pass, n.Pos()) {
			return true
		}
		switch n := n.(type) {
		case *ast.RangeStmt:
			checkMapRange(pass, n, orderInv)
		case *ast.SelectStmt:
			checkMultiSendSelect(pass, n)
		case *ast.Ident:
			checkKernelRef(pass, n, kernels, stack, annots)
		}
		return true
	})
	return nil, nil
}

// kernelImplObjects maps each dblsh:kernelimpl-annotated function to its
// type-checker object so references can be resolved by identity.
func kernelImplObjects(pass *analysis.Pass, annots map[*ast.FuncDecl][]annot) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for fd, as := range annots {
		if hasVerb(as, verbKernelImpl) {
			if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// checkMapRange flags `for ... := range m` when m is a map, unless the
// statement is annotated `// dblsh:orderinvariant <why>` (the body must then
// be genuinely order-insensitive, e.g. collect-then-sort).
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, orderInv *lineAnnots) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if orderInv.at(rng.Pos()) {
		return
	}
	pass.Reportf(rng.Pos(),
		"range over a map in a dblsh:deterministic package: iteration order is random; sort first, or annotate the statement // dblsh:orderinvariant <why> if the body is order-insensitive")
}

// checkMultiSendSelect flags a select with two or more send cases: when more
// than one is ready the runtime picks pseudo-randomly, so downstream
// consumers observe a nondeterministic interleaving.
func checkMultiSendSelect(pass *analysis.Pass, sel *ast.SelectStmt) {
	sends := 0
	for _, clause := range sel.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		if _, ok := cc.Comm.(*ast.SendStmt); ok {
			sends++
		}
	}
	if sends >= 2 {
		pass.Reportf(sel.Pos(),
			"select with %d send cases in a dblsh:deterministic package: the runtime picks a ready case pseudo-randomly, so result interleaving is nondeterministic", sends)
	}
}

// checkKernelRef flags a reference to a dblsh:kernelimpl function from
// anywhere but a dispatch site: the dispatch table itself (a var declaration
// annotated dblsh:dispatch), a function annotated dblsh:dispatch, or another
// kernel implementation. Everywhere else must go through the table, so a
// runtime value can never silently select a different summation order.
func checkKernelRef(pass *analysis.Pass, id *ast.Ident, kernels map[types.Object]bool, stack []ast.Node, annots map[*ast.FuncDecl][]annot) {
	if len(kernels) == 0 {
		return
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil || !kernels[obj] {
		return
	}
	for _, n := range stack {
		switch n := n.(type) {
		case *ast.FuncDecl:
			as := annots[n]
			if hasVerb(as, verbDispatch) || hasVerb(as, verbKernelImpl) {
				return
			}
		case *ast.GenDecl:
			if hasVerb(parseAnnots(n.Doc), verbDispatch) {
				return
			}
		case *ast.ValueSpec:
			if hasVerb(parseAnnots(n.Doc, n.Comment), verbDispatch) {
				return
			}
		}
	}
	pass.Reportf(id.Pos(),
		"reference to kernel implementation %s outside a dblsh:dispatch site: choosing kernels on runtime values changes summation order; route the call through the dispatch table", id.Name)
}
