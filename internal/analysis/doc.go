// Package analysis is dblsh's project-specific static-analysis suite: four
// golang.org/x/tools/go/analysis analyzers that machine-check the invariants
// the library's correctness argument leans on, so they are enforced by `go
// vet -vettool` in CI instead of by reviewer memory. The cmd/dblsh-lint
// binary wires them into the vet driver; scripts/lint.sh runs them exactly
// as CI does.
//
// # Analyzers
//
//   - guardedby: struct fields annotated `// dblsh:guardedby <mutex>` must
//     only be read or written while that sibling mutex is held (a
//     Lock/RLock on the same receiver in an enclosing function), via
//     sync/atomic, or in functions annotated `// dblsh:locked <mutex>` /
//     `// dblsh:exclusive`. Fields annotated `// dblsh:guardedby caller`
//     are externally serialized: they may not be touched from inside a
//     `go func` literal (spawning concurrency around caller-serialized
//     state is exactly the bug class) unless the enclosing function is
//     annotated exclusive. The PR 8 SetQuantize data race — a plain field
//     written by a setter that never took the guarding lock — is the
//     analyzer's regression fixture.
//
//   - detorder: in packages whose package comment carries
//     `dblsh:deterministic`, flag the constructs that make candidate
//     streams depend on runtime accidents: ranging over a map (unless the
//     statement is annotated `// dblsh:orderinvariant <why>`), a select
//     with two or more send cases, and any reference to a distance-kernel
//     implementation (`// dblsh:kernelimpl`) outside the dispatch table or
//     a function annotated `// dblsh:dispatch`. The PR 8 +Inf fast path —
//     a bound-dependent branch selecting a different-summation-order
//     kernel — is the regression fixture.
//
//   - nilrecv: pointer-receiver methods on types annotated
//     `// dblsh:nilsafe` (the obs metric types) must begin with a
//     nil-receiver guard before any receiver field access, preserving the
//     "uninstrumented layers pay one nil check" contract.
//
//   - walerr: error results from calls into internal/wal, from os.Rename,
//     and from (*os.File).Sync must not be discarded (`_ =`, bare call
//     statement, go/defer) — dropping one silently converts a durability
//     failure into data loss. `// dblsh:ignore-err <why>` on the statement
//     suppresses a deliberate discard.
//
// All four analyzers skip _test.go files: tests exercise single-threaded
// white-box states where the invariants deliberately do not apply.
//
// The full annotation grammar is documented in CONTRIBUTING.md.
package analysis
