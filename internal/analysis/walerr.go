package analysis

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// WalErr checks that errors from the durability path are never discarded:
// calls into internal/wal, os.Rename, and (*os.File).Sync. Dropping one
// turns an I/O failure into silent data loss at the next crash.
var WalErr = &analysis.Analyzer{
	Name: "dblshwalerr",
	Doc: "errors from internal/wal calls, os.Rename, and (*os.File).Sync " +
		"must not be discarded",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runWalErr,
}

func runWalErr(pass *analysis.Pass) (interface{}, error) {
	ignore := newLineAnnots(pass, verbIgnoreErr)
	in := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	in.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		call := n.(*ast.CallExpr)
		if isTestFile(pass, call.Pos()) {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || !isDurabilityCall(fn) {
			return true
		}
		errIdx := errorResultIndex(fn)
		if errIdx < 0 {
			return true
		}
		if !discardsError(call, stack, errIdx) {
			return true
		}
		if ignore.at(call.Pos()) {
			return true
		}
		pass.Reportf(call.Pos(),
			"error from %s is discarded: durability failures must be handled or the statement annotated // dblsh:ignore-err <why>",
			fn.Name())
		return true
	})
	return nil, nil
}

// calleeFunc resolves a call's callee to its *types.Func, or nil for
// indirect calls through plain function values.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// isDurabilityCall reports whether fn is part of the durability surface:
// anything exported by internal/wal, os.Rename, or the Sync method of
// *os.File.
func isDurabilityCall(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	if strings.HasSuffix(pkg.Path(), "internal/wal") {
		return true
	}
	if pkg.Path() != "os" {
		return false
	}
	if fn.Name() == "Rename" {
		return true
	}
	if fn.Name() != "Sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	ptr, ok := sig.Recv().Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "File"
}

// errorResultIndex returns the index of fn's error result, or -1 when fn
// returns no error.
func errorResultIndex(fn *types.Func) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	res := sig.Results()
	for i := res.Len() - 1; i >= 0; i-- {
		if isErrorType(res.At(i).Type()) {
			return i
		}
	}
	return -1
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	o := named.Obj()
	return o.Name() == "error" && o.Pkg() == nil
}

// discardsError reports whether the call's error result at errIdx is
// dropped: a bare call statement, a go/defer statement, or assignment of
// the error position to the blank identifier.
func discardsError(call *ast.CallExpr, stack []ast.Node, errIdx int) bool {
	if len(stack) < 2 {
		return false
	}
	switch parent := stack[len(stack)-2].(type) {
	case *ast.ExprStmt:
		return true
	case *ast.GoStmt:
		return parent.Call == call
	case *ast.DeferStmt:
		return parent.Call == call
	case *ast.AssignStmt:
		if len(parent.Rhs) == 1 && parent.Rhs[0] == call {
			// Multi-value form: the Lhs position matching the error result.
			if errIdx < len(parent.Lhs) {
				return isBlank(parent.Lhs[errIdx])
			}
			return false
		}
		// Tuple form a, b = f(), g(): the call yields one value.
		for i, rhs := range parent.Rhs {
			if rhs == call && i < len(parent.Lhs) {
				return isBlank(parent.Lhs[i])
			}
		}
	}
	return false
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
