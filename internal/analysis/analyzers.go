package analysis

import "golang.org/x/tools/go/analysis"

// All returns the full dblsh analyzer suite in a stable order; this is what
// cmd/dblsh-lint registers with the vet driver.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		GuardedBy,
		DetOrder,
		NilRecv,
		WalErr,
	}
}
