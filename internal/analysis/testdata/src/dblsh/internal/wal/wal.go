// Package wal is a fixture stand-in for dblsh/internal/wal: just enough
// surface for the walerr analyzer to recognize durability calls by package
// path suffix.
package wal

// Writer is a minimal WAL handle.
type Writer struct{}

// Append appends one record.
func (w *Writer) Append(rec []byte) error { return nil }

// Sync flushes buffered records to stable storage.
func (w *Writer) Sync() error { return nil }

// Rotate seals the current segment and starts a new one.
func (w *Writer) Rotate() (string, error) { return "", nil }

// Open opens a writer on dir.
func Open(dir string) (*Writer, error) { return &Writer{}, nil }

// Size reports the current segment size; no error to discard.
func (w *Writer) Size() int64 { return 0 }
