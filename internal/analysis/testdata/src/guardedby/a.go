// Package guardedby fixtures: the dblsh:guardedby locking discipline.
package guardedby

import (
	"sync"
	"sync/atomic"
)

// Set mirrors the shape of internal/shard.Set around the PR 8 SetQuantize
// bug: a plain string field documented as lock-guarded, with a setter that
// never took the lock.
type Set struct {
	mu       sync.RWMutex
	quantize string // dblsh:guardedby mu
	count    int    // dblsh:guardedby mu
	par      atomic.Int64
	flat     int64 // dblsh:guardedby mu — accessed via sync/atomic below
}

// SetQuantize is the PR 8 regression: writing a guarded field without the
// guarding mutex (the shipped fix made the field an atomic).
func (s *Set) SetQuantize(q string) {
	s.quantize = q // want `field quantize is guarded by "mu" but accessed without holding it`
}

// SetQuantizeLocked is the corrected pattern.
func (s *Set) SetQuantizeLocked(q string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.quantize = q
}

// Quantize reads under the read lock.
func (s *Set) Quantize() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.quantize
}

// quantizeLocked relies on its callers' lock, and says so.
//
// dblsh:locked mu
func (s *Set) quantizeLocked() string { return s.quantize }

// wrongLockAnnotation names a different mutex, so it does not excuse mu.
//
// dblsh:locked other
func (s *Set) wrongLockAnnotation() string {
	return s.quantize // want `field quantize is guarded by "mu" but accessed without holding it`
}

// Par uses the atomic field: type-level atomics are exempt.
func (s *Set) Par() int64 { return s.par.Load() }

// Flat goes through sync/atomic on the plain field: also exempt.
func (s *Set) Flat() int64 { return atomic.LoadInt64(&s.flat) }

// FlatRaw reads the same field directly, which is a race.
func (s *Set) FlatRaw() int64 {
	return s.flat // want `field flat is guarded by "mu" but accessed without holding it`
}

// otherLock locks the right mutex name on the WRONG receiver: no excuse.
func (s *Set) otherLock(t *Set) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return s.count // want `field count is guarded by "mu" but accessed without holding it`
}

// closureUnderLock accesses a guarded field from a closure while an
// enclosing frame holds the lock — allowed (the emit-closure pattern of
// the shard coordinator).
func (s *Set) closureUnderLock(visit func(int)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	emit := func() { visit(s.count) }
	emit()
}

// goroutineLocksItself takes the lock inside the spawned goroutine.
func (s *Set) goroutineLocksItself() {
	go func() {
		s.mu.Lock()
		s.count++
		s.mu.Unlock()
	}()
}

// badAnnotation names a mutex the struct does not have.
type badAnnotation struct {
	n int // dblsh:guardedby missing — want `dblsh:guardedby names "missing", but the struct has no sync.Mutex/RWMutex field of that name`
}

var _ = badAnnotation{}

// Writer mirrors internal/wal.Writer: caller-serialized state.
type Writer struct {
	size  int64 // dblsh:guardedby caller
	dirty bool  // dblsh:guardedby caller
}

// Append touches caller-serialized fields synchronously: fine.
func (w *Writer) Append(n int64) {
	w.size += n
	w.dirty = true
}

// leak spawns a goroutine around caller-serialized state: the caller's
// serialization cannot cover it.
func (w *Writer) leak() {
	go func() {
		w.dirty = false // want `field dirty is caller-serialized \(dblsh:guardedby caller\) but accessed from a go statement`
	}()
}

// build is construction-time fan-out with exclusive access, like
// core.Build / shard.Build.
//
// dblsh:exclusive the writer is unpublished during build
func build() *Writer {
	w := &Writer{}
	done := make(chan struct{})
	go func() {
		w.size = 1
		close(done)
	}()
	<-done
	return w
}
