// Package walerr fixtures: durability-path errors must not be discarded.
package walerr

import (
	"log"
	"os"

	"dblsh/internal/wal"
)

// bareSync drops the flush error on the floor.
func bareSync(w *wal.Writer) {
	w.Sync() // want `error from Sync is discarded`
}

// blankSync discards it explicitly, which is just as lossy.
func blankSync(w *wal.Writer) {
	_ = w.Sync() // want `error from Sync is discarded`
}

// deferSync defers the flush with no way to observe its error.
func deferSync(w *wal.Writer) {
	defer w.Sync() // want `error from Sync is discarded`
}

// goAppend fires the append into the void.
func goAppend(w *wal.Writer, rec []byte) {
	go w.Append(rec) // want `error from Append is discarded`
}

// handled checks the error: fine.
func handled(w *wal.Writer, rec []byte) error {
	if err := w.Append(rec); err != nil {
		return err
	}
	return w.Sync()
}

// blankRotate keeps the segment name but blanks the error.
func blankRotate(w *wal.Writer) string {
	name, _ := w.Rotate() // want `error from Rotate is discarded`
	return name
}

// rotateHandled keeps both results.
func rotateHandled(w *wal.Writer) (string, error) {
	return w.Rotate()
}

// bareRename drops the checkpoint-publish error.
func bareRename(tmp, final string) {
	os.Rename(tmp, final) // want `error from Rename is discarded`
}

// fileSync drops an *os.File fsync.
func fileSync(f *os.File) {
	f.Sync() // want `error from Sync is discarded`
}

// noErrorResult returns no error: nothing to discard.
func noErrorResult(w *wal.Writer) int64 {
	return w.Size()
}

// acknowledged documents why the error is dropped, which the annotation
// permits.
func acknowledged(w *wal.Writer) {
	// dblsh:ignore-err best-effort flush on shutdown; close path re-syncs
	w.Sync()
}

// acknowledgedSameLine uses the trailing-comment form.
func acknowledgedSameLine(tmp, final string) {
	os.Rename(tmp, final) // dblsh:ignore-err stale temp cleanup only
}

// logged consumes the error without returning it: still handled.
func logged(w *wal.Writer) {
	if err := w.Sync(); err != nil {
		log.Printf("wal sync: %v", err)
	}
}

// notDurability calls os functions outside the durability surface.
func notDurability(path string) {
	os.Remove(path)
}
