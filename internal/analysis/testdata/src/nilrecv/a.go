// Package nilrecv fixtures: nil-receiver guards on dblsh:nilsafe types.
package nilrecv

import "time"

// Counter mirrors internal/obs.Counter: a nil *Counter must be a usable
// no-op handle.
//
// dblsh:nilsafe
type Counter struct {
	v    int64
	name string
}

// Add has the canonical guard.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v += n
}

// Value forgets the guard before reading a field.
func (c *Counter) Value() int64 { // want `method Value on dblsh:nilsafe type Counter accesses receiver fields without a leading`
	return c.v
}

// Name guards with a compound condition whose leftmost term is the nil
// check: allowed (the SlowLog.Observe pattern).
func (c *Counter) Name(fallback string) string {
	if c == nil || c.name == "" {
		return fallback
	}
	return c.name
}

// guardAfterWork does the nil check too late.
func (c *Counter) guardAfterWork() int64 { // want `method guardAfterWork on dblsh:nilsafe type Counter accesses receiver fields without a leading`
	v := c.v
	if c == nil {
		return 0
	}
	return v
}

// panicGuard ends its guard in panic instead of return: also allowed.
func (c *Counter) panicGuard() int64 {
	if c == nil {
		panic("nil Counter")
	}
	return c.v
}

// Inc only delegates to another method, which carries its own guard: no
// field access, no guard needed.
func (c *Counter) Inc() { c.Add(1) }

// wrongOrderGuard checks nil on the right of the ||, so evaluation of the
// left term can still dereference nil.
func (c *Counter) wrongOrderGuard() int64 { // want `method wrongOrderGuard on dblsh:nilsafe type Counter accesses receiver fields without a leading`
	if c.v == 0 || c == nil {
		return 0
	}
	return c.v
}

// Plain is not annotated: its methods are out of scope.
type Plain struct {
	d time.Duration
}

// D accesses a field with no guard, but Plain is not dblsh:nilsafe.
func (p *Plain) D() time.Duration { return p.d }

// ByValue has a value receiver on a nilsafe type: value receivers cannot
// be nil, so no guard is required.
//
// dblsh:nilsafe
type ByValue struct{ n int }

func (b ByValue) N() int { return b.n }

var _ = []interface{}{
	(*Counter).Value, (*Counter).guardAfterWork, (*Counter).panicGuard,
	(*Counter).wrongOrderGuard, (*Plain).D, ByValue.N,
}
