// Package detorder fixtures: determinism discipline in marked packages.
//
// dblsh:deterministic
package detorder

import "math"

// collectNames ranges over a map feeding ordered output: flagged.
func collectNames(m map[string]int) []string {
	var out []string
	for k := range m { // want `range over a map in a dblsh:deterministic package`
		out = append(out, k)
	}
	return out
}

// countValues ranges over a map but is genuinely order-insensitive, and
// says so.
func countValues(m map[string]int) int {
	total := 0
	// dblsh:orderinvariant summing is commutative
	for _, v := range m {
		total += v
	}
	return total
}

// sliceRange is not a map range: fine.
func sliceRange(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}

// raceSends has two ready sends: the runtime picks pseudo-randomly.
func raceSends(a, b chan int, v int) {
	select { // want `select with 2 send cases in a dblsh:deterministic package`
	case a <- v:
	case b <- v:
	}
}

// oneSend is a send with a default: a single send case is fine.
func oneSend(a chan int, v int) {
	select {
	case a <- v:
	default:
	}
}

// recvSelect only receives: receives don't reorder result streams.
func recvSelect(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// distSlow is a kernel implementation: one summation order.
//
// dblsh:kernelimpl
func distSlow(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// distFast is another kernel implementation with a different summation
// order.
//
// dblsh:kernelimpl
func distFast(a, b []float64) float64 {
	var s0, s1 float64
	i := 0
	for ; i+2 <= len(a); i += 2 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		s0 += d0 * d0
		s1 += d1 * d1
	}
	s := s0 + s1
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// kernelTable is the blessed dispatch site.
//
// dblsh:dispatch
var kernelTable = map[string]func(a, b []float64) float64{
	"slow": distSlow,
	"fast": distFast,
}

var active = kernelTable["slow"]

// Dist routes through the table: fine.
func Dist(a, b []float64) float64 { return active(a, b) }

// DistBounded is the PR 8 +Inf fast-path regression shape: a
// bound-dependent branch selects a kernel with a different summation
// order, so the same row's distance differs by ulps depending on the bound.
func DistBounded(a, b []float64, bound float64) float64 {
	if math.IsInf(bound, 1) {
		return distFast(a, b) // want `reference to kernel implementation distFast outside a dblsh:dispatch site`
	}
	return active(a, b)
}

// pickKernel is an annotated dispatch helper: allowed to name kernels.
//
// dblsh:dispatch
func pickKernel(name string) func(a, b []float64) float64 {
	if name == "fast" {
		return distFast
	}
	return distSlow
}

// distPair is itself a kernel implementation, so it may build on another.
//
// dblsh:kernelimpl
func distPair(a, b, c []float64) (float64, float64) {
	return distSlow(a, b), distSlow(a, c)
}

// distAsm is the PR 10 shape: a bodyless declaration stub for an assembly
// kernel, the annotation sharing one comment group with the compiler
// directive. The analyzer must track it exactly like a Go-bodied kernel —
// the FuncDecl's doc group carries the verb whether or not a body follows.
//
// dblsh:kernelimpl
//
//go:noescape
func distAsm(a, b []float64) float64

// registerArchRows is an annotated registration function — the dispatch
// site that installs hardware rows at init. It may name the stub.
//
// dblsh:dispatch
func registerArchRows() {
	kernelTable["asm"] = distAsm
}

// callAsmDirectly bypasses the table: flagged exactly like a Go kernel.
func callAsmDirectly(a, b []float64) float64 {
	return distAsm(a, b) // want `reference to kernel implementation distAsm outside a dblsh:dispatch site`
}
