package analysis_test

import (
	"testing"

	"dblsh/internal/analysis"
	"dblsh/internal/analysis/atest"
)

func TestGuardedBy(t *testing.T) { atest.Run(t, analysis.GuardedBy, "guardedby") }

func TestDetOrder(t *testing.T) { atest.Run(t, analysis.DetOrder, "detorder") }

func TestNilRecv(t *testing.T) { atest.Run(t, analysis.NilRecv, "nilrecv") }

func TestWalErr(t *testing.T) { atest.Run(t, analysis.WalErr, "walerr") }

// TestAll makes sure the vet driver registers every analyzer exactly once.
func TestAll(t *testing.T) {
	all := analysis.All()
	if len(all) != 4 {
		t.Fatalf("All() returned %d analyzers, want 4", len(all))
	}
	seen := make(map[string]bool)
	for _, a := range all {
		if seen[a.Name] {
			t.Errorf("duplicate analyzer %s", a.Name)
		}
		seen[a.Name] = true
	}
	for _, name := range []string{"dblshguardedby", "dblshdetorder", "dblshnilrecv", "dblshwalerr"} {
		if !seen[name] {
			t.Errorf("missing analyzer %s", name)
		}
	}
}
