package analysis

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// GuardedBy checks the per-field locking discipline declared by
// `// dblsh:guardedby <mutex>` annotations. See the package doc for the
// rules and CONTRIBUTING.md for the grammar.
var GuardedBy = &analysis.Analyzer{
	Name: "dblshguardedby",
	Doc: "check that fields annotated dblsh:guardedby are only accessed " +
		"under their mutex, via sync/atomic, or in dblsh:locked/exclusive functions",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runGuardedBy,
}

// guardSpec is one annotated field's contract.
type guardSpec struct {
	mutex  string // sibling mutex field name, or "" when caller-serialized
	caller bool   // `guardedby caller`: externally serialized
}

func runGuardedBy(pass *analysis.Pass) (interface{}, error) {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil, nil
	}
	annots := funcAnnots(pass)
	in := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	in.WithStack([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		sel := n.(*ast.SelectorExpr)
		if isTestFile(pass, sel.Pos()) {
			return true
		}
		s, ok := pass.TypesInfo.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		obj, ok := s.Obj().(*types.Var)
		if !ok {
			return true
		}
		spec, guarded := guards[obj]
		if !guarded {
			return true
		}
		if isAtomicType(obj.Type()) || isAtomicArg(sel, stack, pass) {
			return true // accessed via sync/atomic: always safe
		}
		if spec.caller {
			checkCallerSerialized(pass, sel, obj, spec, stack, annots)
		} else {
			checkMutexGuarded(pass, sel, obj, spec, stack, annots)
		}
		return true
	})
	return nil, nil
}

// collectGuards finds every dblsh:guardedby-annotated struct field and
// validates its annotation against the declaring struct.
func collectGuards(pass *analysis.Pass) map[*types.Var]guardSpec {
	guards := make(map[*types.Var]guardSpec)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, a := range parseAnnots(field.Doc, field.Comment) {
					if a.verb != verbGuardedBy {
						continue
					}
					if len(a.args) == 0 {
						pass.Reportf(a.pos, "dblsh:guardedby wants an argument (a sibling mutex field or \"caller\")")
						continue
					}
					var spec guardSpec
					if a.args[0] == "caller" {
						spec.caller = true
					} else {
						spec.mutex = a.args[0]
						if !structHasMutex(pass, st, spec.mutex) {
							pass.Reportf(a.pos, "dblsh:guardedby names %q, but the struct has no sync.Mutex/RWMutex field of that name", spec.mutex)
							continue
						}
					}
					for _, name := range field.Names {
						if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
							guards[v] = spec
						}
					}
				}
			}
			return true
		})
	}
	return guards
}

// structHasMutex reports whether st declares a field named name whose type
// is sync.Mutex or sync.RWMutex (possibly behind a pointer).
func structHasMutex(pass *analysis.Pass, st *ast.StructType, name string) bool {
	for _, field := range st.Fields.List {
		for _, id := range field.Names {
			if id.Name != name {
				continue
			}
			t := pass.TypesInfo.TypeOf(field.Type)
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				return false
			}
			o := named.Obj()
			return o.Pkg() != nil && o.Pkg().Path() == "sync" &&
				(o.Name() == "Mutex" || o.Name() == "RWMutex")
		}
	}
	return false
}

// isAtomicType reports whether t is one of sync/atomic's type-level atomics
// (atomic.Int64, atomic.Pointer[T], ...): every access to such a field goes
// through its methods and is safe by construction.
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	o := named.Obj()
	return o.Pkg() != nil && o.Pkg().Path() == "sync/atomic"
}

// isAtomicArg reports whether sel appears as &sel in an argument to a
// sync/atomic function call (atomic.LoadInt64(&s.n) and friends).
func isAtomicArg(sel *ast.SelectorExpr, stack []ast.Node, pass *analysis.Pass) bool {
	if len(stack) < 3 {
		return false
	}
	unary, ok := stack[len(stack)-2].(*ast.UnaryExpr)
	if !ok || unary.X != sel {
		return false
	}
	call, ok := stack[len(stack)-3].(*ast.CallExpr)
	if !ok {
		return false
	}
	if fn, ok := pass.TypesInfo.Uses[calleeIdent(call)].(*types.Func); ok {
		return fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
	}
	return false
}

// calleeIdent returns the rightmost identifier of a call's callee
// expression (atomic.LoadInt64 -> LoadInt64).
func calleeIdent(call *ast.CallExpr) *ast.Ident {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn
	case *ast.SelectorExpr:
		return fn.Sel
	}
	return nil
}

// checkMutexGuarded enforces the `guardedby <mutex>` rule: some enclosing
// function must lock <mutex> on the same receiver value, or carry a
// dblsh:locked/exclusive annotation.
func checkMutexGuarded(pass *analysis.Pass, sel *ast.SelectorExpr, obj *types.Var, spec guardSpec, stack []ast.Node, annots map[*ast.FuncDecl][]annot) {
	root := rootObj(pass, sel.X)
	for _, fn := range enclosingFuncs(stack) {
		if fd, ok := fn.(*ast.FuncDecl); ok {
			for _, a := range annots[fd] {
				if a.verb == verbExclusive {
					return
				}
				if a.verb == verbLocked && len(a.args) > 0 && a.args[0] == spec.mutex {
					return
				}
			}
		}
		if body := funcBody(fn); body != nil && frameLocks(pass, body, spec.mutex, root) {
			return
		}
	}
	pass.Reportf(sel.Sel.Pos(),
		"field %s is guarded by %q but accessed without holding it (lock it in this function, or annotate the function // dblsh:locked %s)",
		obj.Name(), spec.mutex, spec.mutex)
}

// checkCallerSerialized enforces the `guardedby caller` rule: the field's
// owner is serialized by its callers, so touching it from a `go func`
// literal introduces concurrency nobody serializes — unless an enclosing
// function is annotated dblsh:exclusive (construction before publication)
// or dblsh:locked (the caller's lock covers the spawned work).
func checkCallerSerialized(pass *analysis.Pass, sel *ast.SelectorExpr, obj *types.Var, spec guardSpec, stack []ast.Node, annots map[*ast.FuncDecl][]annot) {
	inGoroutine := false
	for i := 2; i < len(stack); i++ {
		lit, ok := stack[i].(*ast.FuncLit)
		if !ok {
			continue
		}
		// In `go func(){...}()` the literal's parent is the CallExpr and the
		// GoStmt is one frame further out; an immediately-invoked literal has
		// the same CallExpr parent but no GoStmt above it and runs inline.
		call, ok := stack[i-1].(*ast.CallExpr)
		if !ok || call.Fun != lit {
			continue
		}
		if g, ok := stack[i-2].(*ast.GoStmt); ok && g.Call == call {
			inGoroutine = true
		}
	}
	if !inGoroutine {
		return
	}
	for _, fn := range enclosingFuncs(stack) {
		fd, ok := fn.(*ast.FuncDecl)
		if !ok {
			continue
		}
		for _, a := range annots[fd] {
			if a.verb == verbExclusive || a.verb == verbLocked {
				return
			}
		}
	}
	pass.Reportf(sel.Sel.Pos(),
		"field %s is caller-serialized (dblsh:guardedby caller) but accessed from a go statement; annotate the spawning function // dblsh:exclusive if it has sole access",
		obj.Name())
}

// rootObj resolves the base identifier of a selector chain to its object.
func rootObj(pass *analysis.Pass, e ast.Expr) types.Object {
	id := rootIdent(e)
	if id == nil {
		return nil
	}
	if o := pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Defs[id]
}

// frameLocks reports whether body (not descending into nested function
// literals) contains a call <base>.<mutex>.Lock() or <base>.<mutex>.RLock()
// whose base resolves to root. When root is unresolvable the receiver text
// is not compared and any lock of that mutex name in the frame counts.
func frameLocks(pass *analysis.Pass, body *ast.BlockStmt, mutex string, root types.Object) bool {
	found := false
	inspectShallow(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (fn.Sel.Name != "Lock" && fn.Sel.Name != "RLock") {
			return true
		}
		recv, ok := fn.X.(*ast.SelectorExpr)
		if !ok || recv.Sel.Name != mutex {
			return true
		}
		if root != nil {
			if lockRoot := rootObj(pass, recv.X); lockRoot != nil && lockRoot != root {
				return true
			}
		}
		found = true
		return false
	})
	return found
}
