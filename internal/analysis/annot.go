package analysis

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Annotation verbs. An annotation is a comment line of the form
//
//	// dblsh:<verb> [args...]
//
// attached to the declaration it governs (field line or doc comment, func
// doc, type doc, package doc) or, for statement-level verbs, written on the
// statement's line or the line directly above it.
const (
	verbGuardedBy      = "guardedby"
	verbLocked         = "locked"
	verbExclusive      = "exclusive"
	verbDeterministic  = "deterministic"
	verbOrderInvariant = "orderinvariant"
	verbKernelImpl     = "kernelimpl"
	verbDispatch       = "dispatch"
	verbNilSafe        = "nilsafe"
	verbIgnoreErr      = "ignore-err"
)

// annot is one parsed dblsh: directive.
type annot struct {
	verb string
	args []string
	pos  token.Pos
}

// parseAnnots extracts every dblsh: directive from a comment group.
func parseAnnots(groups ...*ast.CommentGroup) []annot {
	var out []annot
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimPrefix(text, "/*")
			text = strings.TrimSuffix(text, "*/")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "dblsh:") {
				continue
			}
			fields := strings.Fields(strings.TrimPrefix(text, "dblsh:"))
			if len(fields) == 0 {
				continue
			}
			out = append(out, annot{verb: fields[0], args: fields[1:], pos: c.Pos()})
		}
	}
	return out
}

// hasVerb reports whether any annotation in the list carries the verb.
func hasVerb(annots []annot, verb string) bool {
	for _, a := range annots {
		if a.verb == verb {
			return true
		}
	}
	return false
}

// isTestFile reports whether the file containing pos is a _test.go file.
// The suite's invariants are about concurrent production state; tests
// routinely poke at single-threaded white-box snapshots of it.
func isTestFile(pass *analysis.Pass, pos token.Pos) bool {
	f := pass.Fset.File(pos)
	return f == nil || strings.HasSuffix(f.Name(), "_test.go")
}

// packageMarked reports whether any file's package comment in pass carries
// the given verb (e.g. dblsh:deterministic).
func packageMarked(pass *analysis.Pass, verb string) bool {
	for _, f := range pass.Files {
		if hasVerb(parseAnnots(f.Doc), verb) {
			return true
		}
	}
	return false
}

// lineAnnots indexes statement-level annotations by file and line so a
// check at statement S can ask "is there a dblsh:<verb> on S's line or the
// line above it?".
type lineAnnots struct {
	fset  *token.FileSet
	verbs map[string]map[int]bool // filename -> line -> annotated
}

// newLineAnnots scans every comment in the files for the given verb.
func newLineAnnots(pass *analysis.Pass, verb string) *lineAnnots {
	la := &lineAnnots{fset: pass.Fset, verbs: make(map[string]map[int]bool)}
	for _, f := range pass.Files {
		for _, g := range f.Comments {
			for _, a := range parseAnnots(g) {
				if a.verb != verb {
					continue
				}
				p := pass.Fset.Position(a.pos)
				m := la.verbs[p.Filename]
				if m == nil {
					m = make(map[int]bool)
					la.verbs[p.Filename] = m
				}
				m[p.Line] = true
			}
		}
	}
	return la
}

// at reports whether the annotation appears on pos's line or the line
// directly above it.
func (la *lineAnnots) at(pos token.Pos) bool {
	p := la.fset.Position(pos)
	m := la.verbs[p.Filename]
	return m != nil && (m[p.Line] || m[p.Line-1])
}

// funcAnnots collects the dblsh: directives of every FuncDecl in the
// package, keyed by the *ast.FuncDecl node.
func funcAnnots(pass *analysis.Pass) map[*ast.FuncDecl][]annot {
	out := make(map[*ast.FuncDecl][]annot)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if as := parseAnnots(fd.Doc); len(as) > 0 {
					out[fd] = as
				}
			}
		}
	}
	return out
}

// enclosingFuncs returns the function nodes (FuncLit or FuncDecl) in the
// stack, innermost first. The stack is as delivered by inspector.WithStack
// (outermost first), so the result is reversed.
func enclosingFuncs(stack []ast.Node) []ast.Node {
	var out []ast.Node
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncLit, *ast.FuncDecl:
			out = append(out, stack[i])
		}
	}
	return out
}

// funcBody returns the body of a FuncLit or FuncDecl node.
func funcBody(n ast.Node) *ast.BlockStmt {
	switch fn := n.(type) {
	case *ast.FuncLit:
		return fn.Body
	case *ast.FuncDecl:
		return fn.Body
	}
	return nil
}

// inspectShallow walks body, calling fn on every node but not descending
// into nested function literals — a lock taken inside a nested goroutine
// does not protect the enclosing frame.
func inspectShallow(body ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != body {
			return false
		}
		return fn(n)
	})
}

// rootIdent descends a selector/index/paren/star chain to its base
// identifier: rootIdent(sr.set.shards[i].idx) == sr. Returns nil when the
// base is not a plain identifier (e.g. a call result).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
