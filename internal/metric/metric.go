// Package metric makes the DB-LSH stack metric-aware without touching its
// mathematical core. The index machinery — 2-stable projections, R*-trees,
// the radius ladder of Algorithm 2 — is correct only for Euclidean distance,
// so instead of parameterizing the ladder, each Metric owns a reduction *to*
// Euclidean space:
//
//   - a point transform applied once at ingest,
//   - a query transform applied once per query, and
//   - a mapping from the internal L2 score back to the metric's user-facing
//     distance.
//
// The core then runs pure L2 over the transformed (internal) vectors and
// stays faithful to the paper, while the boundary speaks the caller's
// metric:
//
//   - Euclidean is the identity.
//   - Cosine unit-normalizes points and queries; for unit vectors
//     ‖x−q‖² = 2(1−cos θ), so the internal L2 ladder ranks exactly by
//     cosine similarity and the reported distance is the cosine distance
//     1−cos θ.
//   - InnerProduct applies the classic augmented-dimension MIPS reduction
//     (Bachrach et al., RecSys 2014): points are scaled into the unit ball
//     by a norm bound M and given the extra coordinate √(1−‖x/M‖²), queries
//     are unit-normalized with a 0 appended; then ‖x̂−q̂‖² = 2 − 2⟨q,x⟩/(M‖q‖),
//     so nearest-in-L2 is exactly maximum inner product.
package metric

import (
	"fmt"
	"math"

	"dblsh/internal/vec"
)

// Kind identifies a metric. The numeric values are part of the persistence
// format (DBLSHv3) and must never be renumbered.
type Kind uint32

const (
	// Euclidean is plain L2 distance, the paper's setting and the default.
	Euclidean Kind = iota
	// Cosine is cosine distance 1−cos θ over unit-normalized vectors.
	Cosine
	// InnerProduct is maximum inner-product search via the augmented-
	// dimension reduction; reported distances are negated inner products so
	// ascending order means descending ⟨q,x⟩.
	InnerProduct

	numKinds
)

// String returns the canonical lower-case name, also accepted by ParseKind.
func (k Kind) String() string {
	switch k {
	case Euclidean:
		return "euclidean"
	case Cosine:
		return "cosine"
	case InnerProduct:
		return "ip"
	}
	return fmt.Sprintf("metric(%d)", uint32(k))
}

// Valid reports whether k names a known metric.
func (k Kind) Valid() bool { return k < numKinds }

// ParseKind maps a metric name to its Kind. It accepts the String() forms
// plus common aliases ("l2", "angular", "dot", "inner_product").
func ParseKind(s string) (Kind, error) {
	switch s {
	case "euclidean", "l2", "":
		return Euclidean, nil
	case "cosine", "angular":
		return Cosine, nil
	case "ip", "dot", "inner_product", "mips":
		return InnerProduct, nil
	}
	return Euclidean, fmt.Errorf("metric: unknown metric %q (want euclidean, cosine or ip)", s)
}

// Metric reduces one distance measure to internal Euclidean search. A Metric
// is immutable and safe for concurrent use.
type Metric interface {
	// Kind identifies the metric for persistence and stats.
	Kind() Kind

	// InternalDim returns the dimensionality of the internal Euclidean
	// space for user vectors of dimension d (d+1 for the MIPS reduction).
	InternalDim(d int) int

	// UserDim inverts InternalDim.
	UserDim(internal int) int

	// CheckPoint validates a user point before ingest: cosine rejects the
	// zero vector (no direction), inner product rejects points whose norm
	// exceeds the reduction's norm bound.
	CheckPoint(p []float32) error

	// TransformPoint appends the internal representation of user point p to
	// dst and returns the extended slice. p must have passed CheckPoint.
	TransformPoint(dst, p []float32) []float32

	// TransformQuery appends the internal representation of query q to dst.
	// Unlike points, any query is acceptable (a zero query is answered with
	// an arbitrary but deterministic ranking).
	TransformQuery(dst, q []float32) []float32

	// DistMapper returns the mapping from internal L2 distances (between
	// the transformed q and transformed points) back to the metric's
	// user-facing distance — L2 itself, cosine distance 1−cos θ, or the
	// negated inner product −⟨q,x⟩. q is the untransformed query; any
	// per-query state (the inner-product reduction's M·‖q‖ factor) is
	// computed once here, so mapping a whole top-k costs one norm pass,
	// not k.
	DistMapper(q []float32) func(internal float64) float64

	// InternalRadius maps a user-facing radius to internal L2 units for
	// fixed-radius queries and radius caps. Inner product has no meaningful
	// radius and returns an error.
	InternalRadius(q []float32, r float64) (float64, error)

	// NormBound returns the fitted norm bound M of the MIPS reduction and 0
	// for the other metrics. It is the parameter DBLSHv3 persists.
	NormBound() float64
}

// New constructs the metric for k. normBound is only meaningful for
// InnerProduct: it is the reduction's norm bound M (every ingested point
// must satisfy ‖p‖ ≤ M). FitNormBound derives it from a dataset.
func New(k Kind, normBound float64) (Metric, error) {
	switch k {
	case Euclidean:
		return euclidean{}, nil
	case Cosine:
		return cosine{}, nil
	case InnerProduct:
		if normBound <= 0 || math.IsInf(normBound, 1) || math.IsNaN(normBound) {
			return nil, fmt.Errorf("metric: inner product needs a positive finite norm bound, got %v", normBound)
		}
		return innerProduct{m: normBound}, nil
	}
	return nil, fmt.Errorf("metric: unknown kind %d", k)
}

// FitNormBound returns the MIPS norm bound for a dataset stored row-major in
// flat (n rows of dim): the maximum row norm, or 1 when the dataset is empty
// or all-zero so the reduction stays well-defined.
func FitNormBound(flat []float32, n, dim int) float64 {
	bound := 0.0
	for i := 0; i < n; i++ {
		if nm := vec.Norm(flat[i*dim : (i+1)*dim]); nm > bound {
			bound = nm
		}
	}
	if bound <= 0 {
		return 1
	}
	return bound
}

// --- Euclidean ---------------------------------------------------------------

type euclidean struct{}

func (euclidean) Kind() Kind                 { return Euclidean }
func (euclidean) InternalDim(d int) int      { return d }
func (euclidean) UserDim(internal int) int   { return internal }
func (euclidean) CheckPoint([]float32) error { return nil }
func (euclidean) NormBound() float64         { return 0 }

func (euclidean) TransformPoint(dst, p []float32) []float32 { return append(dst, p...) }
func (euclidean) TransformQuery(dst, q []float32) []float32 { return append(dst, q...) }

func (euclidean) DistMapper([]float32) func(float64) float64 {
	return func(internal float64) float64 { return internal }
}

func (euclidean) InternalRadius(_ []float32, r float64) (float64, error) { return r, nil }

// --- Cosine ------------------------------------------------------------------

type cosine struct{}

func (cosine) Kind() Kind               { return Cosine }
func (cosine) InternalDim(d int) int    { return d }
func (cosine) UserDim(internal int) int { return internal }
func (cosine) NormBound() float64       { return 0 }

func (cosine) CheckPoint(p []float32) error {
	if vec.Norm(p) == 0 {
		return fmt.Errorf("metric: cosine cannot index the zero vector (no direction)")
	}
	return nil
}

func appendNormalized(dst, p []float32) []float32 {
	n := vec.Norm(p)
	if n == 0 {
		return append(dst, p...)
	}
	inv := float32(1 / n)
	for _, x := range p {
		dst = append(dst, x*inv)
	}
	return dst
}

func (cosine) TransformPoint(dst, p []float32) []float32 { return appendNormalized(dst, p) }
func (cosine) TransformQuery(dst, q []float32) []float32 { return appendNormalized(dst, q) }

// DistMapper: for unit vectors ‖x−q‖² = 2(1−cos θ), so cosine distance is
// d²/2.
func (cosine) DistMapper([]float32) func(float64) float64 {
	return func(internal float64) float64 { return internal * internal / 2 }
}

// InternalRadius inverts UserDist: a cosine-distance radius r (in [0,2])
// corresponds to internal L2 radius √(2r).
func (cosine) InternalRadius(_ []float32, r float64) (float64, error) {
	if r < 0 || r > 2 {
		return 0, fmt.Errorf("metric: cosine distance radius must be in [0,2], got %v", r)
	}
	return math.Sqrt(2 * r), nil
}

// --- Inner product -----------------------------------------------------------

type innerProduct struct {
	m float64 // norm bound M: every indexed point satisfies ‖p‖ ≤ M
}

func (innerProduct) Kind() Kind               { return InnerProduct }
func (innerProduct) InternalDim(d int) int    { return d + 1 }
func (innerProduct) UserDim(internal int) int { return internal - 1 }
func (ip innerProduct) NormBound() float64    { return ip.m }

func (ip innerProduct) CheckPoint(p []float32) error {
	// A float32 round-trip of a boundary norm can land an ulp above M; the
	// relative slack forgives that without admitting genuinely larger points.
	if n := vec.Norm(p); n > ip.m*(1+1e-6) {
		return fmt.Errorf("metric: point norm %v exceeds the inner-product norm bound %v (rebuild the index with a larger bound)", n, ip.m)
	}
	return nil
}

// TransformPoint scales p into the unit ball and appends √(1−‖p/M‖²), making
// every stored vector a unit vector.
func (ip innerProduct) TransformPoint(dst, p []float32) []float32 {
	inv := float32(1 / ip.m)
	var s float64
	for _, x := range p {
		y := x * inv
		s += float64(y) * float64(y)
		dst = append(dst, y)
	}
	extra := 1 - s
	if extra < 0 {
		extra = 0 // ‖p‖ within rounding of M
	}
	return append(dst, float32(math.Sqrt(extra)))
}

// TransformQuery unit-normalizes q and appends 0: the augmented coordinate
// never contributes to ⟨q̂,x̂⟩, so d² = 2 − 2⟨q,x⟩/(M‖q‖).
func (ip innerProduct) TransformQuery(dst, q []float32) []float32 {
	return append(appendNormalized(dst, q), 0)
}

// DistMapper recovers −⟨q,x⟩ = −M·‖q‖·(2−d²)/2. The sign makes ascending
// "distance" order rank by descending inner product, matching the library's
// sorted-results contract. ‖q‖ is computed once for the whole result set.
func (ip innerProduct) DistMapper(q []float32) func(float64) float64 {
	scale := ip.m * vec.Norm(q)
	return func(internal float64) float64 {
		return -scale * (2 - internal*internal) / 2
	}
}

func (innerProduct) InternalRadius([]float32, float64) (float64, error) {
	return 0, fmt.Errorf("metric: radius queries are not defined for inner-product search")
}
