package metric

import (
	"math"
	"math/rand"
	"testing"

	"dblsh/internal/vec"
)

func TestParseKind(t *testing.T) {
	cases := []struct {
		in   string
		want Kind
		err  bool
	}{
		{"euclidean", Euclidean, false},
		{"l2", Euclidean, false},
		{"", Euclidean, false},
		{"cosine", Cosine, false},
		{"angular", Cosine, false},
		{"ip", InnerProduct, false},
		{"dot", InnerProduct, false},
		{"inner_product", InnerProduct, false},
		{"manhattan", Euclidean, true},
	}
	for _, c := range cases {
		got, err := ParseKind(c.in)
		if (err != nil) != c.err {
			t.Fatalf("ParseKind(%q) err = %v, want err=%v", c.in, err, c.err)
		}
		if err == nil && got != c.want {
			t.Fatalf("ParseKind(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for k := Kind(0); k.Valid(); k++ {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v; want %v", k.String(), got, err, k)
		}
	}
}

func TestEuclideanIdentity(t *testing.T) {
	m, err := New(Euclidean, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := []float32{1, -2, 3}
	if got := m.TransformPoint(nil, p); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("TransformPoint = %v", got)
	}
	if d := m.DistMapper(p)(7.5); d != 7.5 {
		t.Fatalf("DistMapper = %v, want 7.5", d)
	}
	if m.InternalDim(5) != 5 || m.UserDim(5) != 5 {
		t.Fatal("Euclidean must not change dimensionality")
	}
}

// TestCosineAgreesWithExplicit checks the whole reduction: the internal L2
// distance between transformed vectors maps back to 1−cos θ.
func TestCosineAgreesWithExplicit(t *testing.T) {
	m, err := New(Cosine, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		d := 1 + rng.Intn(48)
		p, q := make([]float32, d), make([]float32, d)
		for i := range p {
			p[i] = float32(rng.NormFloat64() * 3)
			q[i] = float32(rng.NormFloat64() * 3)
		}
		if vec.Norm(p) == 0 || vec.Norm(q) == 0 {
			continue
		}
		tp := m.TransformPoint(nil, p)
		tq := m.TransformQuery(nil, q)
		got := m.DistMapper(q)(vec.Dist(tq, tp))
		want := 1 - vec.Dot(p, q)/(vec.Norm(p)*vec.Norm(q))
		if math.Abs(got-want) > 1e-5 {
			t.Fatalf("trial %d: cosine distance = %v, want %v", trial, got, want)
		}
	}
}

func TestCosineRejectsZero(t *testing.T) {
	m, _ := New(Cosine, 0)
	if err := m.CheckPoint([]float32{0, 0, 0}); err == nil {
		t.Fatal("CheckPoint should reject the zero vector under cosine")
	}
	if err := m.CheckPoint([]float32{0, 1}); err != nil {
		t.Fatalf("CheckPoint rejected a unit direction: %v", err)
	}
}

func TestCosineInternalRadius(t *testing.T) {
	m, _ := New(Cosine, 0)
	r, err := m.InternalRadius(nil, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 { // √(2·0.5) = 1
		t.Fatalf("InternalRadius(0.5) = %v, want 1", r)
	}
	if _, err := m.InternalRadius(nil, 3); err == nil {
		t.Fatal("cosine radius above 2 should be rejected")
	}
}

// TestInnerProductRecoversDot checks the MIPS reduction end to end: the
// internal L2 distance between the augmented vectors maps back to −⟨q,p⟩.
func TestInnerProductRecoversDot(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		d := 1 + rng.Intn(48)
		n := 1 + rng.Intn(20)
		flat := make([]float32, n*d)
		for i := range flat {
			flat[i] = float32(rng.NormFloat64() * 2)
		}
		bound := FitNormBound(flat, n, d)
		m, err := New(InnerProduct, bound)
		if err != nil {
			t.Fatal(err)
		}
		q := make([]float32, d)
		for i := range q {
			q[i] = float32(rng.NormFloat64() * 2)
		}
		tq := m.TransformQuery(nil, q)
		if len(tq) != d+1 {
			t.Fatalf("query dim %d, want %d", len(tq), d+1)
		}
		for i := 0; i < n; i++ {
			p := flat[i*d : (i+1)*d]
			if err := m.CheckPoint(p); err != nil {
				t.Fatalf("CheckPoint rejected an in-bound point: %v", err)
			}
			tp := m.TransformPoint(nil, p)
			if math.Abs(vec.Norm(tp)-1) > 1e-5 {
				t.Fatalf("augmented point norm = %v, want 1", vec.Norm(tp))
			}
			got := m.DistMapper(q)(vec.Dist(tq, tp))
			want := -vec.Dot(q, p)
			if math.Abs(got-want) > 1e-3*(1+math.Abs(want)) {
				t.Fatalf("trial %d point %d: UserDist = %v, want %v", trial, i, got, want)
			}
		}
	}
}

func TestInnerProductCheckPoint(t *testing.T) {
	m, err := New(InnerProduct, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckPoint([]float32{3, 4}); err != nil { // norm 5 == bound
		t.Fatalf("boundary-norm point rejected: %v", err)
	}
	if err := m.CheckPoint([]float32{6, 0}); err == nil {
		t.Fatal("point above the norm bound should be rejected")
	}
	if _, err := m.InternalRadius(nil, 1); err == nil {
		t.Fatal("inner product must reject radius queries")
	}
}

func TestInnerProductZeroQuery(t *testing.T) {
	m, _ := New(InnerProduct, 2)
	q := []float32{0, 0}
	tq := m.TransformQuery(nil, q)
	tp := m.TransformPoint(nil, []float32{1, 1})
	if got := m.DistMapper(q)(vec.Dist(tq, tp)); got != 0 {
		t.Fatalf("zero query UserDist = %v, want 0", got)
	}
}

func TestFitNormBound(t *testing.T) {
	flat := []float32{3, 4, 0, 1, 0, 0}
	if b := FitNormBound(flat, 3, 2); b != 5 {
		t.Fatalf("FitNormBound = %v, want 5", b)
	}
	if b := FitNormBound(nil, 0, 2); b != 1 {
		t.Fatalf("empty FitNormBound = %v, want 1", b)
	}
	if b := FitNormBound(make([]float32, 4), 2, 2); b != 1 {
		t.Fatalf("all-zero FitNormBound = %v, want 1", b)
	}
}

func TestNewRejectsBadBound(t *testing.T) {
	if _, err := New(InnerProduct, 0); err == nil {
		t.Fatal("New should reject a zero norm bound for inner product")
	}
	if _, err := New(Kind(99), 0); err == nil {
		t.Fatal("New should reject an unknown kind")
	}
}
