package qalsh

import (
	"math"
	"math/rand"
	"testing"

	"dblsh/internal/mathx"
	"dblsh/internal/vec"
)

func clustered(n, d int, seed int64) *vec.Matrix {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float32, 8)
	for i := range centers {
		c := make([]float32, d)
		for j := range c {
			c[j] = float32(rng.NormFloat64() * 10)
		}
		centers[i] = c
	}
	m := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		c := centers[rng.Intn(8)]
		for j := 0; j < d; j++ {
			m.Row(i)[j] = c[j] + float32(rng.NormFloat64())
		}
	}
	return m
}

func TestDerivedThreshold(t *testing.T) {
	data := clustered(5000, 16, 1)
	idx := Build(data, Config{C: 1.5, Seed: 1})
	// ℓ = ⌈α·m⌉ with α = (p1+p2)/2 for the default w = 2.719.
	p1 := mathx.CollisionProbDynamic(1, 2.719)
	p2 := mathx.CollisionProbDynamic(1.5, 2.719)
	want := int(math.Ceil((p1 + p2) / 2 * float64(idx.M())))
	if idx.Threshold() != want {
		t.Fatalf("ℓ = %d, want %d", idx.Threshold(), want)
	}
	// m ≈ 8·ln n.
	if idx.M() < 60 || idx.M() > 80 {
		t.Fatalf("derived m = %d outside the expected band", idx.M())
	}
}

func TestSelfQueryPerfect(t *testing.T) {
	data := clustered(3000, 16, 2)
	idx := Build(data, Config{C: 1.5, Beta: 0.1, Seed: 2})
	res := idx.KANN(data.Row(7), 1)
	if len(res) != 1 || res[0].Dist != 0 {
		t.Fatalf("self-query result %+v", res)
	}
}

func TestBudgetCapsVerification(t *testing.T) {
	data := clustered(4000, 16, 3)
	idx := Build(data, Config{C: 1.5, Beta: 0.005, Seed: 3}) // budget 20+k
	res := idx.KANN(data.Row(0), 5)
	if len(res) == 0 {
		t.Fatal("no results under tight budget")
	}
}

func TestExhaustsOnTinyData(t *testing.T) {
	data := clustered(30, 8, 4)
	idx := Build(data, Config{C: 1.5, Beta: 1, Seed: 4})
	res := idx.KANN(data.Row(0), 50)
	if len(res) > 30 {
		t.Fatalf("returned %d results from 30 points", len(res))
	}
	if len(res) < 20 {
		t.Fatalf("with β=1 nearly all points should be returned, got %d", len(res))
	}
}

func TestDuplicatePoints(t *testing.T) {
	data := vec.NewMatrix(200, 8)
	for i := 0; i < 200; i++ {
		for j := 0; j < 8; j++ {
			data.Row(i)[j] = 1
		}
	}
	idx := Build(data, Config{C: 1.5, Beta: 1, Seed: 5})
	res := idx.KANN(data.Row(0), 10)
	if len(res) != 10 {
		t.Fatalf("got %d results", len(res))
	}
	for _, nb := range res {
		if nb.Dist != 0 {
			t.Fatalf("duplicate at dist %v", nb.Dist)
		}
	}
}

func TestQueryDimPanics(t *testing.T) {
	data := clustered(100, 8, 6)
	idx := Build(data, Config{Seed: 6})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	idx.KANN(make([]float32, 4), 1)
}

func TestEmptyData(t *testing.T) {
	idx := Build(vec.NewMatrix(0, 8), Config{Seed: 7})
	if res := idx.KANN(make([]float32, 8), 5); len(res) != 0 {
		t.Fatalf("empty data returned %v", res)
	}
}
