// Package qalsh implements QALSH (Huang et al., PVLDB 2015), the
// representative of the collision-counting (C2) family the DB-LSH paper
// compares against (QALSH / R2LSH / VHP share this access pattern).
//
// Indexing: M independent 1-D projections h_j(o) = a_j·o, each indexed by a
// B+-tree over (projection value, id).
//
// Query ("virtual rehashing"): rounds with radius R = r0, c·r0, c²·r0, …
// In a round, each dimension's query-centric 1-D bucket
// [h_j(q) − wR/2, h_j(q) + wR/2] is expanded by walking the B+-tree outward
// from h_j(q); every point seen increments a collision counter, and a point
// whose counter reaches the threshold ℓ becomes a candidate and is verified
// with an exact distance. The search region is a cross-like union of slabs —
// unbounded in the other dimensions — which is exactly the cost DB-LSH's
// Figure 2 criticizes.
package qalsh

import (
	"fmt"
	"math"
	"math/rand"

	"dblsh/internal/bptree"
	"dblsh/internal/lsh"
	"dblsh/internal/mathx"
	"dblsh/internal/vec"
)

// Config parameterizes QALSH.
type Config struct {
	// C is the approximation ratio (> 1). Default 1.5.
	C float64
	// W is the bucket width of the 1-D query-aware buckets. Default 2.719,
	// the w* the QALSH paper recommends for c = 2-ish regimes.
	W float64
	// M is the number of hash functions (projections). 0 derives
	// m = O(log n) following the QALSH error-bound setup.
	M int
	// Beta scales the candidate budget: βn + k candidates are verified.
	// Default 100/n (i.e. 100 + k candidates), QALSH's usual setting.
	Beta float64
	// Seed drives projection sampling.
	Seed int64
	// InitialRadius is the ladder start; 0 estimates from data.
	InitialRadius float64
}

// Index is a QALSH index.
type Index struct {
	data  *vec.Matrix
	cfg   Config
	projs []lsh.Projection
	trees []*bptree.Tree
	ell   int // collision threshold ℓ
	r0    float64
}

// Build projects the dataset M times and builds one B+-tree per projection.
func Build(data *vec.Matrix, cfg Config) *Index {
	n := data.Rows()
	if cfg.C <= 1 {
		cfg.C = 1.5
	}
	if cfg.W <= 0 {
		cfg.W = 2.719
	}
	if cfg.M <= 0 {
		// QALSH sets m from Chernoff bounds; m ≈ ⌈8 ln n⌉ lands in the
		// 60–90 range the paper uses for million-scale data.
		m := int(math.Ceil(8 * math.Log(float64(n)+2)))
		if m < 8 {
			m = 8
		}
		cfg.M = m
	}
	if cfg.Beta <= 0 {
		if n > 0 {
			cfg.Beta = 100 / float64(n)
		} else {
			cfg.Beta = 0.01
		}
	}
	idx := &Index{data: data, cfg: cfg}

	// Collision threshold ℓ = α·m with α between p2 and p1 (QALSH §4.2:
	// α = (p1+p2)/2 balances false positives and negatives).
	p1 := mathx.CollisionProbDynamic(1, cfg.W)
	p2 := mathx.CollisionProbDynamic(cfg.C, cfg.W)
	alpha := (p1 + p2) / 2
	idx.ell = int(math.Ceil(alpha * float64(cfg.M)))
	if idx.ell < 1 {
		idx.ell = 1
	}
	if idx.ell > cfg.M {
		idx.ell = cfg.M
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	idx.projs = make([]lsh.Projection, cfg.M)
	idx.trees = make([]*bptree.Tree, cfg.M)
	for j := 0; j < cfg.M; j++ {
		idx.projs[j] = lsh.NewProjection(data.Dim(), rng)
		pairs := make([]bptree.Pair, n)
		for i := 0; i < n; i++ {
			pairs[i] = bptree.Pair{Key: idx.projs[j].Hash(data.Row(i)), Val: int32(i)}
		}
		idx.trees[j] = bptree.Bulk(pairs)
	}

	idx.r0 = cfg.InitialRadius
	if idx.r0 <= 0 {
		idx.r0 = estimateRadius(data, cfg.Seed)
	}
	return idx
}

func estimateRadius(data *vec.Matrix, seed int64) float64 {
	n := data.Rows()
	if n < 2 {
		return 1
	}
	rng := rand.New(rand.NewSource(seed ^ 0x11d4f2a7))
	best := math.Inf(1)
	for s := 0; s < 24; s++ {
		qi := rng.Intn(n)
		nn := math.Inf(1)
		for p := 0; p < 512; p++ {
			oi := rng.Intn(n)
			if oi == qi {
				continue
			}
			if d := vec.SquaredDist(data.Row(qi), data.Row(oi)); d < nn {
				nn = d
			}
		}
		if nn < best {
			best = nn
		}
	}
	r := math.Sqrt(best) / 4
	if r <= 0 || math.IsInf(r, 1) {
		return 1
	}
	return r
}

// Size returns the number of indexed points.
func (idx *Index) Size() int { return idx.data.Rows() }

// Threshold returns the collision threshold ℓ.
func (idx *Index) Threshold() int { return idx.ell }

// M returns the number of projections.
func (idx *Index) M() int { return idx.cfg.M }

// KANN answers a (c,k)-ANN query with collision counting and virtual
// rehashing. Safe for concurrent use (all state is per-call).
func (idx *Index) KANN(q []float32, k int) []vec.Neighbor {
	if len(q) != idx.data.Dim() {
		panic(fmt.Sprintf("qalsh: query dim %d, index dim %d", len(q), idx.data.Dim()))
	}
	if k <= 0 {
		panic("qalsh: k must be positive")
	}
	n := idx.data.Rows()
	if n == 0 {
		return nil
	}

	qh := make([]float64, idx.cfg.M)
	left := make([]bptree.Iterator, idx.cfg.M)
	right := make([]bptree.Iterator, idx.cfg.M)
	for j := range qh {
		qh[j] = idx.projs[j].Hash(q)
		left[j] = idx.trees[j].SeekBefore(qh[j])
		right[j] = idx.trees[j].Seek(qh[j])
	}

	counts := make(map[int32]int, 1024)
	verified := make(map[int32]struct{}, 256)
	cand := vec.NewTopK(k)
	budget := int(idx.cfg.Beta*float64(n)) + k
	if budget < k {
		budget = k
	}
	cnt := 0
	c := idx.cfg.C
	R := idx.r0

	// bump registers one collision. The distance test ("T2": k-th candidate
	// within c·R) is evaluated at round boundaries, as in QALSH's Algorithm 2
	// — checking it mid-round would truncate exactly the round in which the
	// true neighbors cross the collision threshold. Only the candidate
	// budget ("T1") aborts a round eagerly.
	bump := func(id int32) bool {
		counts[id]++
		if counts[id] != idx.ell {
			return true
		}
		if _, done := verified[id]; done {
			return true
		}
		verified[id] = struct{}{}
		cand.Push(int(id), vec.Dist(q, idx.data.Row(int(id))))
		cnt++
		return cnt < budget
	}

	const maxRounds = 64
	for round := 0; round < maxRounds; round++ {
		half := idx.cfg.W * R / 2
		stop := false
		for j := 0; j < idx.cfg.M && !stop; j++ {
			// Expand right: keys in (q_j, q_j + half].
			for right[j].Valid() && right[j].Key() <= qh[j]+half {
				if !bump(right[j].Val()) {
					stop = true
					break
				}
				right[j] = right[j].Next()
			}
			if stop {
				break
			}
			// Expand left: keys in [q_j − half, q_j).
			for left[j].Valid() && left[j].Key() >= qh[j]-half {
				if !bump(left[j].Val()) {
					stop = true
					break
				}
				left[j] = left[j].Prev()
			}
		}
		if stop {
			break
		}
		if worst, full := cand.Worst(); full && worst <= c*R {
			break
		}
		if len(verified) >= n {
			break
		}
		// All iterators exhausted means every point collided everywhere.
		allDone := true
		for j := range left {
			if left[j].Valid() || right[j].Valid() {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}
		R *= c
	}

	// If collision counting starved the candidate set (fewer than k points
	// ever reached ℓ collisions), pad from the most-collided points.
	if cand.Len() < k && cand.Len() < n {
		for id, ct := range counts {
			if ct >= idx.ell {
				continue
			}
			if _, done := verified[id]; done {
				continue
			}
			cand.Push(int(id), vec.Dist(q, idx.data.Row(int(id))))
			if cand.Len() >= k {
				break
			}
		}
	}
	return cand.Results()
}
