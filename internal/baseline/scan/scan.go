// Package scan implements exact k-NN by linear scan. It provides the ground
// truth for quality metrics and the "linear query time" yardstick the paper
// compares sub-linear methods against (e.g. VHP degenerating to scan speed
// on TinyImages80M in Table IV).
package scan

import (
	"dblsh/internal/vec"
)

// Index is a trivial "index": the data itself.
type Index struct {
	data *vec.Matrix
}

// Build wraps data for scanning. It does no work, mirroring a zero
// indexing-time baseline.
func Build(data *vec.Matrix) *Index { return &Index{data: data} }

// Size returns the number of points.
func (idx *Index) Size() int { return idx.data.Rows() }

// KANN returns the exact k nearest neighbors of q, sorted ascending.
func (idx *Index) KANN(q []float32, k int) []vec.Neighbor {
	tk := vec.NewTopK(k)
	for i := 0; i < idx.data.Rows(); i++ {
		tk.Push(i, vec.Dist(q, idx.data.Row(i)))
	}
	return tk.Results()
}
