package scan

import (
	"math/rand"
	"sort"
	"testing"

	"dblsh/internal/vec"
)

func TestKANNExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := vec.NewMatrix(500, 8)
	for i := 0; i < 500; i++ {
		for j := 0; j < 8; j++ {
			data.Row(i)[j] = float32(rng.NormFloat64())
		}
	}
	idx := Build(data)
	if idx.Size() != 500 {
		t.Fatalf("Size = %d", idx.Size())
	}
	q := make([]float32, 8)
	res := idx.KANN(q, 10)
	dists := make([]float64, 500)
	for i := range dists {
		dists[i] = vec.Dist(q, data.Row(i))
	}
	sort.Float64s(dists)
	for i, nb := range res {
		if nb.Dist != dists[i] {
			t.Fatalf("rank %d: %v, want %v", i, nb.Dist, dists[i])
		}
	}
}

func TestKANNEmptyAndOversized(t *testing.T) {
	idx := Build(vec.NewMatrix(0, 4))
	if res := idx.KANN(make([]float32, 4), 3); len(res) != 0 {
		t.Fatalf("empty scan returned %v", res)
	}
	data := vec.NewMatrix(3, 2)
	idx = Build(data)
	if res := idx.KANN([]float32{0, 0}, 10); len(res) != 3 {
		t.Fatalf("got %d results from 3 points", len(res))
	}
}
