// Package vhp implements VHP (Lu, Wang, Wang & Kudo, PVLDB 2020), the
// C2-family competitor that treats QALSH's 1-D buckets as hyperplane slabs
// and admits a candidate only when it lies inside a *virtual hypersphere*
// in the m-dimensional projected space.
//
// QALSH's admission test (ℓ of m slab collisions) approximates "close in
// projected space" by counting; VHP replaces the count with the real thing:
// once a point has been seen in enough slabs to be worth testing, its exact
// projected distance to the query is compared with the hypersphere radius
// t0·(w/2)·R·√m. The hypersphere is strictly contained in the union of
// slabs, so VHP verifies fewer, better candidates per round — at the price
// of storing all m projections and re-testing borderline points as R grows,
// which is how the DP-LSH paper's Table IV shows VHP falling behind on very
// large datasets.
package vhp

import (
	"fmt"
	"math"
	"math/rand"

	"dblsh/internal/bptree"
	"dblsh/internal/lsh"
	"dblsh/internal/mathx"
	"dblsh/internal/vec"
)

// Config parameterizes VHP.
type Config struct {
	// C is the approximation ratio. Default 1.5.
	C float64
	// W is the slab width. Default 2.719.
	W float64
	// M is the number of projections. 0 derives m = O(log n).
	M int
	// T0 scales the virtual hypersphere radius relative to the slab
	// half-width (the VHP paper's t0; its experiments use 1.4).
	T0 float64
	// Beta scales the verification budget βn + k. Default 100/n.
	Beta float64
	// Seed drives projection sampling.
	Seed int64
	// InitialRadius is the ladder start; 0 estimates from data.
	InitialRadius float64
}

// Index is a VHP index.
type Index struct {
	data  *vec.Matrix
	cfg   Config
	projs []lsh.Projection
	proj  *vec.Matrix // n×m projected coordinates (float32)
	trees []*bptree.Tree
	ell   int
	r0    float64
}

// Build projects the dataset M times, keeps the full projection matrix for
// hypersphere tests, and builds one B+-tree per projection for slab
// expansion.
func Build(data *vec.Matrix, cfg Config) *Index {
	n := data.Rows()
	if cfg.C <= 1 {
		cfg.C = 1.5
	}
	if cfg.W <= 0 {
		cfg.W = 2.719
	}
	if cfg.T0 <= 0 {
		cfg.T0 = 1.4
	}
	if cfg.M <= 0 {
		m := int(math.Ceil(6 * math.Log(float64(n)+2)))
		if m < 8 {
			m = 8
		}
		cfg.M = m
	}
	if cfg.Beta <= 0 {
		if n > 0 {
			cfg.Beta = 100 / float64(n)
		} else {
			cfg.Beta = 0.01
		}
	}
	idx := &Index{data: data, cfg: cfg}

	p1 := mathx.CollisionProbDynamic(1, cfg.W)
	p2 := mathx.CollisionProbDynamic(cfg.C, cfg.W)
	idx.ell = int(math.Ceil((p1 + p2) / 2 * float64(cfg.M)))
	if idx.ell < 1 {
		idx.ell = 1
	}
	if idx.ell > cfg.M {
		idx.ell = cfg.M
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	idx.projs = make([]lsh.Projection, cfg.M)
	idx.proj = vec.NewMatrix(n, cfg.M)
	idx.trees = make([]*bptree.Tree, cfg.M)
	for j := 0; j < cfg.M; j++ {
		idx.projs[j] = lsh.NewProjection(data.Dim(), rng)
		pairs := make([]bptree.Pair, n)
		for i := 0; i < n; i++ {
			h := idx.projs[j].Hash(data.Row(i))
			idx.proj.Row(i)[j] = float32(h)
			pairs[i] = bptree.Pair{Key: h, Val: int32(i)}
		}
		idx.trees[j] = bptree.Bulk(pairs)
	}

	idx.r0 = cfg.InitialRadius
	if idx.r0 <= 0 {
		idx.r0 = estimateRadius(data, cfg.Seed)
	}
	return idx
}

func estimateRadius(data *vec.Matrix, seed int64) float64 {
	n := data.Rows()
	if n < 2 {
		return 1
	}
	rng := rand.New(rand.NewSource(seed ^ 0x62d5a1))
	best := math.Inf(1)
	for s := 0; s < 24; s++ {
		qi := rng.Intn(n)
		nn := math.Inf(1)
		for p := 0; p < 512; p++ {
			oi := rng.Intn(n)
			if oi == qi {
				continue
			}
			if d := vec.SquaredDist(data.Row(qi), data.Row(oi)); d < nn {
				nn = d
			}
		}
		if nn < best {
			best = nn
		}
	}
	r := math.Sqrt(best) / 4
	if r <= 0 || math.IsInf(r, 1) {
		return 1
	}
	return r
}

// Size returns the number of indexed points.
func (idx *Index) Size() int { return idx.data.Rows() }

// M returns the number of projections.
func (idx *Index) M() int { return idx.cfg.M }

// Threshold returns the slab-collision threshold ℓ that triggers the
// hypersphere test.
func (idx *Index) Threshold() int { return idx.ell }

// KANN answers a (c,k)-ANN query. Safe for concurrent use.
func (idx *Index) KANN(q []float32, k int) []vec.Neighbor {
	if len(q) != idx.data.Dim() {
		panic(fmt.Sprintf("vhp: query dim %d, index dim %d", len(q), idx.data.Dim()))
	}
	if k <= 0 {
		panic("vhp: k must be positive")
	}
	n := idx.data.Rows()
	if n == 0 {
		return nil
	}

	m := idx.cfg.M
	qp := make([]float32, m)
	left := make([]bptree.Iterator, m)
	right := make([]bptree.Iterator, m)
	for j := 0; j < m; j++ {
		h := idx.projs[j].Hash(q)
		qp[j] = float32(h)
		left[j] = idx.trees[j].SeekBefore(h)
		right[j] = idx.trees[j].Seek(h)
	}

	counts := make(map[int32]int, 1024)
	pending := make(map[int32]struct{}, 256) // crossed ℓ, failed the sphere so far
	verified := make(map[int32]struct{}, 256)
	cand := vec.NewTopK(k)
	budget := int(idx.cfg.Beta*float64(n)) + k
	if budget < k {
		budget = k
	}
	cnt := 0
	c := idx.cfg.C
	R := idx.r0

	sphereTest := func(id int32, radius2 float64) bool {
		return vec.SquaredDist(qp, idx.proj.Row(int(id))) <= radius2
	}
	admit := func(id int32) bool { // returns false when the budget is gone
		verified[id] = struct{}{}
		delete(pending, id)
		cand.Push(int(id), vec.Dist(q, idx.data.Row(int(id))))
		cnt++
		return cnt < budget
	}

	const maxRounds = 64
	for round := 0; round < maxRounds; round++ {
		half := idx.cfg.W * R / 2
		sphereR := idx.cfg.T0 * half * math.Sqrt(float64(m))
		sphereR2 := sphereR * sphereR
		stop := false

		// Re-test borderline points at the grown hypersphere.
		for id := range pending {
			if sphereTest(id, sphereR2) {
				if !admit(id) {
					stop = true
					break
				}
			}
		}

		bump := func(id int32) bool {
			counts[id]++
			if counts[id] != idx.ell {
				return true
			}
			if _, done := verified[id]; done {
				return true
			}
			if sphereTest(id, sphereR2) {
				return admit(id)
			}
			pending[id] = struct{}{}
			return true
		}
		for j := 0; j < m && !stop; j++ {
			for right[j].Valid() && float32(right[j].Key()) <= qp[j]+float32(half) {
				if !bump(right[j].Val()) {
					stop = true
					break
				}
				right[j] = right[j].Next()
			}
			if stop {
				break
			}
			for left[j].Valid() && float32(left[j].Key()) >= qp[j]-float32(half) {
				if !bump(left[j].Val()) {
					stop = true
					break
				}
				left[j] = left[j].Prev()
			}
		}
		if stop {
			break
		}
		if worst, full := cand.Worst(); full && worst <= c*R {
			break
		}
		if len(verified) >= n {
			break
		}
		allDone := true
		for j := range left {
			if left[j].Valid() || right[j].Valid() {
				allDone = false
				break
			}
		}
		if allDone && len(pending) == 0 {
			break
		}
		R *= c
	}

	// Pad from pending/most-collided points if the sphere starved the set.
	if cand.Len() < k && cand.Len() < n {
		for id := range pending {
			if _, done := verified[id]; done {
				continue
			}
			cand.Push(int(id), vec.Dist(q, idx.data.Row(int(id))))
			if cand.Len() >= k {
				break
			}
		}
		for id := range counts {
			if cand.Len() >= k {
				break
			}
			if _, done := verified[id]; done {
				continue
			}
			cand.Push(int(id), vec.Dist(q, idx.data.Row(int(id))))
		}
	}
	return cand.Results()
}
