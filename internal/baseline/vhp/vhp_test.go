package vhp

import (
	"math/rand"
	"testing"

	"dblsh/internal/vec"
)

func clustered(n, d int, seed int64) *vec.Matrix {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float32, 8)
	for i := range centers {
		c := make([]float32, d)
		for j := range c {
			c[j] = float32(rng.NormFloat64() * 10)
		}
		centers[i] = c
	}
	m := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		c := centers[rng.Intn(8)]
		for j := 0; j < d; j++ {
			m.Row(i)[j] = c[j] + float32(rng.NormFloat64())
		}
	}
	return m
}

func TestDerivedParams(t *testing.T) {
	idx := Build(clustered(5000, 16, 1), Config{C: 1.5, Seed: 1})
	if idx.M() < 8 {
		t.Fatalf("derived M = %d", idx.M())
	}
	if idx.Threshold() < 1 || idx.Threshold() > idx.M() {
		t.Fatalf("ℓ = %d out of [1,%d]", idx.Threshold(), idx.M())
	}
	if idx.cfg.T0 != 1.4 {
		t.Fatalf("default t0 = %v", idx.cfg.T0)
	}
}

func TestSelfQuery(t *testing.T) {
	data := clustered(3000, 16, 2)
	idx := Build(data, Config{C: 1.5, Beta: 0.1, Seed: 2})
	res := idx.KANN(data.Row(5), 1)
	if len(res) != 1 || res[0].Dist != 0 {
		t.Fatalf("self-query result %+v", res)
	}
}

func TestResultContract(t *testing.T) {
	data := clustered(2000, 16, 3)
	idx := Build(data, Config{C: 1.5, Beta: 0.3, Seed: 3})
	q := data.Row(7)
	res := idx.KANN(q, 10)
	if len(res) == 0 {
		t.Fatal("empty result")
	}
	seen := map[int]bool{}
	prev := -1.0
	for _, nb := range res {
		if seen[nb.ID] {
			t.Fatalf("duplicate id %d", nb.ID)
		}
		seen[nb.ID] = true
		if nb.Dist < prev {
			t.Fatal("results not sorted")
		}
		prev = nb.Dist
	}
}

func TestTinyDataExhaustion(t *testing.T) {
	data := clustered(25, 8, 4)
	idx := Build(data, Config{C: 1.5, Beta: 1, Seed: 4})
	res := idx.KANN(data.Row(0), 50)
	if len(res) > 25 {
		t.Fatalf("returned %d from 25 points", len(res))
	}
}

func TestEmptyAndPanics(t *testing.T) {
	idx := Build(vec.NewMatrix(0, 8), Config{Seed: 5})
	if res := idx.KANN(make([]float32, 8), 3); len(res) != 0 {
		t.Fatalf("empty data returned %v", res)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k=0")
		}
	}()
	idx2 := Build(clustered(50, 8, 6), Config{Seed: 6})
	idx2.KANN(make([]float32, 8), 0)
}
