// Package r2lsh implements R2LSH (Lu & Kudo, ICDE 2020), the C2-family
// competitor that improves QALSH by mapping data into m *two-dimensional*
// projected spaces instead of m one-dimensional ones.
//
// In each 2D space the query grows a query-centric disk of radius w·R/2; a
// point "collides" in that space when its 2D projection falls inside the
// disk. Compared to QALSH's 1-D slab, the disk is a strictly tighter region
// (a slab admits points arbitrarily far along the other axis), so collisions
// carry more signal and fewer counting rounds are wasted — the improvement
// the DB-LSH paper credits R2LSH with, while still inheriting the C2
// family's unbounded union-of-slabs scan cost.
//
// Implementation: per space, a B+-tree over the first coordinate provides
// the incremental slab expansion; the second coordinate is checked against
// the disk before counting. Collision counting and virtual rehashing follow
// QALSH.
package r2lsh

import (
	"fmt"
	"math"
	"math/rand"

	"dblsh/internal/bptree"
	"dblsh/internal/lsh"
	"dblsh/internal/mathx"
	"dblsh/internal/vec"
)

// Config parameterizes R2LSH.
type Config struct {
	// C is the approximation ratio. Default 1.5.
	C float64
	// W is the per-space bucket diameter. Default 2.719 (as in QALSH; the
	// R2LSH paper tunes an equivalent λ).
	W float64
	// M is the number of 2D projected spaces. 0 derives m = O(log n)/2
	// (each space carries two projections' worth of signal).
	M int
	// Beta scales the verification budget βn + k. Default 100/n.
	Beta float64
	// Seed drives projection sampling.
	Seed int64
	// InitialRadius is the ladder start; 0 estimates from data.
	InitialRadius float64
}

type space struct {
	px, py lsh.Projection
	xs, ys []float64 // projected coordinates per id
	tree   *bptree.Tree
}

// Index is an R2LSH index.
type Index struct {
	data   *vec.Matrix
	cfg    Config
	spaces []space
	ell    int
	r0     float64
}

// Build projects the dataset into M 2D spaces and builds one B+-tree per
// space over the first coordinate.
func Build(data *vec.Matrix, cfg Config) *Index {
	n := data.Rows()
	if cfg.C <= 1 {
		cfg.C = 1.5
	}
	if cfg.W <= 0 {
		cfg.W = 2.719
	}
	if cfg.M <= 0 {
		m := int(math.Ceil(4 * math.Log(float64(n)+2)))
		if m < 6 {
			m = 6
		}
		cfg.M = m
	}
	if cfg.Beta <= 0 {
		if n > 0 {
			cfg.Beta = 100 / float64(n)
		} else {
			cfg.Beta = 0.01
		}
	}
	idx := &Index{data: data, cfg: cfg}

	// Collision threshold ℓ = α·m, α between the disk-membership
	// probabilities at distances 1 and c. For a 2D 2-stable projection the
	// disk-collision probability is bounded by the product of two 1-D
	// window probabilities; the (p1+p2)/2 midpoint works as in QALSH.
	p1 := mathx.CollisionProbDynamic(1, cfg.W)
	p2 := mathx.CollisionProbDynamic(cfg.C, cfg.W)
	alpha := (p1*p1 + p2*p2) / 2
	idx.ell = int(math.Ceil(alpha * float64(cfg.M)))
	if idx.ell < 1 {
		idx.ell = 1
	}
	if idx.ell > cfg.M {
		idx.ell = cfg.M
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	idx.spaces = make([]space, cfg.M)
	for s := range idx.spaces {
		sp := space{
			px: lsh.NewProjection(data.Dim(), rng),
			py: lsh.NewProjection(data.Dim(), rng),
			xs: make([]float64, n),
			ys: make([]float64, n),
		}
		pairs := make([]bptree.Pair, n)
		for i := 0; i < n; i++ {
			sp.xs[i] = sp.px.Hash(data.Row(i))
			sp.ys[i] = sp.py.Hash(data.Row(i))
			pairs[i] = bptree.Pair{Key: sp.xs[i], Val: int32(i)}
		}
		sp.tree = bptree.Bulk(pairs)
		idx.spaces[s] = sp
	}

	idx.r0 = cfg.InitialRadius
	if idx.r0 <= 0 {
		idx.r0 = estimateRadius(data, cfg.Seed)
	}
	return idx
}

func estimateRadius(data *vec.Matrix, seed int64) float64 {
	n := data.Rows()
	if n < 2 {
		return 1
	}
	rng := rand.New(rand.NewSource(seed ^ 0x3fb117))
	best := math.Inf(1)
	for s := 0; s < 24; s++ {
		qi := rng.Intn(n)
		nn := math.Inf(1)
		for p := 0; p < 512; p++ {
			oi := rng.Intn(n)
			if oi == qi {
				continue
			}
			if d := vec.SquaredDist(data.Row(qi), data.Row(oi)); d < nn {
				nn = d
			}
		}
		if nn < best {
			best = nn
		}
	}
	r := math.Sqrt(best) / 4
	if r <= 0 || math.IsInf(r, 1) {
		return 1
	}
	return r
}

// Size returns the number of indexed points.
func (idx *Index) Size() int { return idx.data.Rows() }

// M returns the number of 2D projected spaces.
func (idx *Index) M() int { return idx.cfg.M }

// Threshold returns the collision threshold ℓ.
func (idx *Index) Threshold() int { return idx.ell }

// KANN answers a (c,k)-ANN query via 2D disk collision counting with
// virtual rehashing. Safe for concurrent use.
func (idx *Index) KANN(q []float32, k int) []vec.Neighbor {
	if len(q) != idx.data.Dim() {
		panic(fmt.Sprintf("r2lsh: query dim %d, index dim %d", len(q), idx.data.Dim()))
	}
	if k <= 0 {
		panic("r2lsh: k must be positive")
	}
	n := idx.data.Rows()
	if n == 0 {
		return nil
	}

	m := idx.cfg.M
	qx := make([]float64, m)
	qy := make([]float64, m)
	left := make([]bptree.Iterator, m)
	right := make([]bptree.Iterator, m)
	for s := range idx.spaces {
		qx[s] = idx.spaces[s].px.Hash(q)
		qy[s] = idx.spaces[s].py.Hash(q)
		left[s] = idx.spaces[s].tree.SeekBefore(qx[s])
		right[s] = idx.spaces[s].tree.Seek(qx[s])
	}

	counts := make(map[int32]int, 1024)
	verified := make(map[int32]struct{}, 256)
	cand := vec.NewTopK(k)
	budget := int(idx.cfg.Beta*float64(n)) + k
	if budget < k {
		budget = k
	}
	cnt := 0
	c := idx.cfg.C
	R := idx.r0

	// bump counts a 2D disk collision; the distance-based stop (T2) is
	// checked at round boundaries as in QALSH.
	bump := func(id int32) bool {
		counts[id]++
		if counts[id] != idx.ell {
			return true
		}
		if _, done := verified[id]; done {
			return true
		}
		verified[id] = struct{}{}
		cand.Push(int(id), vec.Dist(q, idx.data.Row(int(id))))
		cnt++
		return cnt < budget
	}

	const maxRounds = 64
	for round := 0; round < maxRounds; round++ {
		radius := idx.cfg.W * R / 2
		r2 := radius * radius
		stop := false
		for s := 0; s < m && !stop; s++ {
			sp := &idx.spaces[s]
			// Expand the x-slab; admit only points inside the 2D disk.
			for right[s].Valid() && right[s].Key() <= qx[s]+radius {
				id := right[s].Val()
				dx := sp.xs[id] - qx[s]
				dy := sp.ys[id] - qy[s]
				if dx*dx+dy*dy <= r2 {
					if !bump(id) {
						stop = true
						break
					}
				}
				right[s] = right[s].Next()
			}
			if stop {
				break
			}
			for left[s].Valid() && left[s].Key() >= qx[s]-radius {
				id := left[s].Val()
				dx := sp.xs[id] - qx[s]
				dy := sp.ys[id] - qy[s]
				if dx*dx+dy*dy <= r2 {
					if !bump(id) {
						stop = true
						break
					}
				}
				left[s] = left[s].Prev()
			}
		}
		if stop {
			break
		}
		if worst, full := cand.Worst(); full && worst <= c*R {
			break
		}
		if len(verified) >= n {
			break
		}
		allDone := true
		for s := range left {
			if left[s].Valid() || right[s].Valid() {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}
		// Restart the slab iterators each round: the disk radius grew, so
		// points skipped for failing the y-test must be reconsidered.
		R *= c
		for s := range idx.spaces {
			left[s] = idx.spaces[s].tree.SeekBefore(qx[s])
			right[s] = idx.spaces[s].tree.Seek(qx[s])
		}
		for id := range counts {
			delete(counts, id)
		}
	}

	if cand.Len() < k && cand.Len() < n {
		for id := range counts {
			if _, done := verified[id]; done {
				continue
			}
			cand.Push(int(id), vec.Dist(q, idx.data.Row(int(id))))
			if cand.Len() >= k {
				break
			}
		}
	}
	return cand.Results()
}
