package r2lsh

import (
	"math/rand"
	"testing"

	"dblsh/internal/vec"
)

func clustered(n, d int, seed int64) *vec.Matrix {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float32, 8)
	for i := range centers {
		c := make([]float32, d)
		for j := range c {
			c[j] = float32(rng.NormFloat64() * 10)
		}
		centers[i] = c
	}
	m := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		c := centers[rng.Intn(8)]
		for j := 0; j < d; j++ {
			m.Row(i)[j] = c[j] + float32(rng.NormFloat64())
		}
	}
	return m
}

func TestDerivedParams(t *testing.T) {
	idx := Build(clustered(5000, 16, 1), Config{C: 1.5, Seed: 1})
	if idx.M() < 6 {
		t.Fatalf("derived M = %d", idx.M())
	}
	if idx.Threshold() < 1 || idx.Threshold() > idx.M() {
		t.Fatalf("ℓ = %d out of [1,%d]", idx.Threshold(), idx.M())
	}
}

func TestSelfQuery(t *testing.T) {
	data := clustered(3000, 16, 2)
	idx := Build(data, Config{C: 1.5, Beta: 0.1, Seed: 2})
	res := idx.KANN(data.Row(3), 1)
	if len(res) != 1 || res[0].Dist != 0 {
		t.Fatalf("self-query result %+v", res)
	}
}

func TestDiskTighterThanSlab(t *testing.T) {
	// A point far along the y-axis of a 2D space must not be counted even
	// though its x-coordinate matches the query's: construct directly.
	data := clustered(1000, 16, 3)
	idx := Build(data, Config{C: 1.5, Beta: 0.5, Seed: 3})
	// Indirect check: results carry genuine distances and are sorted.
	res := idx.KANN(data.Row(0), 10)
	prev := -1.0
	for _, nb := range res {
		if nb.Dist < prev {
			t.Fatal("results not sorted")
		}
		prev = nb.Dist
		if got := vec.Dist(data.Row(0), data.Row(nb.ID)); got != nb.Dist {
			t.Fatalf("stored %v, recomputed %v", nb.Dist, got)
		}
	}
}

func TestEmptyAndPanics(t *testing.T) {
	idx := Build(vec.NewMatrix(0, 8), Config{Seed: 4})
	if res := idx.KANN(make([]float32, 8), 3); len(res) != 0 {
		t.Fatalf("empty data returned %v", res)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong dim")
		}
	}()
	idx2 := Build(clustered(50, 8, 5), Config{Seed: 5})
	idx2.KANN(make([]float32, 4), 1)
}
