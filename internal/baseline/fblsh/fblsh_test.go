package fblsh

import (
	"math/rand"
	"testing"

	"dblsh/internal/vec"
)

func clustered(n, d int, seed int64) *vec.Matrix {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float32, 10)
	for i := range centers {
		c := make([]float32, d)
		for j := range c {
			c[j] = float32(rng.NormFloat64() * 10)
		}
		centers[i] = c
	}
	m := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		c := centers[rng.Intn(10)]
		for j := 0; j < d; j++ {
			m.Row(i)[j] = c[j] + float32(rng.NormFloat64())
		}
	}
	return m
}

func TestCellOfConsistency(t *testing.T) {
	p := []float32{1.2, -3.4, 5.6}
	if cellOf(p, 2) != cellOf(p, 2) {
		t.Fatal("cellOf not deterministic")
	}
	// Points in the same grid cell share a key.
	a := []float32{0.1, 0.1}
	b := []float32{0.9, 0.9}
	if cellOf(a, 1) != cellOf(b, 1) {
		t.Fatal("points in the same cell must share a key")
	}
	// Shifting by one cell width changes the key.
	c := []float32{1.1, 0.1}
	if cellOf(a, 1) == cellOf(c, 1) {
		t.Fatal("adjacent cells should (overwhelmingly) differ")
	}
	// Negative coordinates floor toward −∞: −0.5 and +0.5 differ at w=1.
	if cellOf([]float32{-0.5}, 1) == cellOf([]float32{0.5}, 1) {
		t.Fatal("negative floor must separate cells around 0")
	}
}

func TestGridLazyCaching(t *testing.T) {
	data := clustered(500, 8, 1)
	idx := Build(data, Config{C: 1.5, K: 4, L: 2, T: 10, Seed: 1})
	if len(idx.levels) != 0 {
		t.Fatalf("grids before query: %d", len(idx.levels))
	}
	idx.KANN(data.Row(0), 3)
	if len(idx.levels) == 0 {
		t.Fatal("query did not materialize any grid level")
	}
	before := len(idx.levels)
	idx.KANN(data.Row(1), 3)
	// A second similar query should mostly reuse cached levels.
	if len(idx.levels) > 4*before+4 {
		t.Fatalf("levels grew unexpectedly: %d -> %d", before, len(idx.levels))
	}
}

func TestKANNFindsPlantedNeighbor(t *testing.T) {
	data := clustered(2000, 16, 2)
	idx := Build(data, Config{C: 1.5, K: 6, L: 4, T: 50, Seed: 2})
	// Query exactly at a data point: FB-LSH must find it (distance 0 means
	// identical hashes, so it is in the query's own cell at every level).
	res := idx.KANN(data.Row(42), 1)
	if len(res) != 1 || res[0].Dist != 0 {
		t.Fatalf("self-query result %+v", res)
	}
}

func TestBuildPanicsWithoutKL(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build(vec.NewMatrix(1, 2), Config{})
}

func TestQueryPanics(t *testing.T) {
	data := clustered(50, 8, 3)
	idx := Build(data, Config{K: 4, L: 2, Seed: 3})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong dim")
		}
	}()
	idx.KANN(make([]float32, 4), 1)
}
