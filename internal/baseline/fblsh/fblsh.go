// Package fblsh implements FB-LSH, the paper's ablation baseline (Section
// VI-A): the same single (K,L)-suite of 2-stable projections as DB-LSH, but
// with *fixed* bucketing — at each radius r of the query ladder, the L
// projected spaces are partitioned into a static grid of cells with side
// w0·r, and a query inspects only the one cell its own hash falls in. The
// difference to DB-LSH is exactly the hash-boundary problem: near neighbors
// that land across a grid line are missed, whereas DB-LSH's query-centric
// window always covers them.
//
// Grids for each radius level are built lazily on first use and cached, so a
// query workload pays each level's O(nK) quantization once.
package fblsh

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"dblsh/internal/lsh"
	"dblsh/internal/vec"
)

// Config mirrors core.Config for the shared parameters.
type Config struct {
	C             float64 // approximation ratio, default 1.5
	W0            float64 // initial bucket width, default 4c²
	T             int     // candidate constant, default 100
	K             int     // hash functions per space (required)
	L             int     // number of spaces (required)
	Seed          int64
	InitialRadius float64 // 0 estimates from data
}

// Index is an FB-LSH index.
type Index struct {
	data      *vec.Matrix
	cfg       Config
	family    *lsh.Family
	projected []*vec.Matrix
	r0        float64

	mu     sync.Mutex
	levels map[levelKey]map[cellKey][]int32
}

type levelKey struct {
	space int
	level int
}

// cellKey is the hash of a K-dim grid cell.
type cellKey uint64

// Build projects the data into L K-dimensional spaces. Grid levels
// materialize lazily at query time.
func Build(data *vec.Matrix, cfg Config) *Index {
	if cfg.C <= 1 {
		cfg.C = 1.5
	}
	if cfg.W0 <= 0 {
		cfg.W0 = 4 * cfg.C * cfg.C
	}
	if cfg.T <= 0 {
		cfg.T = 100
	}
	if cfg.K <= 0 || cfg.L <= 0 {
		panic(fmt.Sprintf("fblsh: K and L required, got K=%d L=%d", cfg.K, cfg.L))
	}
	idx := &Index{
		data:   data,
		cfg:    cfg,
		family: lsh.NewFamily(cfg.L, cfg.K, data.Dim(), cfg.Seed),
		levels: make(map[levelKey]map[cellKey][]int32),
	}
	idx.projected = make([]*vec.Matrix, cfg.L)
	for i := 0; i < cfg.L; i++ {
		idx.projected[i] = idx.family.Compound(i).Project(data)
	}
	idx.r0 = cfg.InitialRadius
	if idx.r0 <= 0 {
		idx.r0 = estimateRadius(data, cfg.Seed)
	}
	return idx
}

func estimateRadius(data *vec.Matrix, seed int64) float64 {
	n := data.Rows()
	if n < 2 {
		return 1
	}
	rng := rand.New(rand.NewSource(seed ^ 0x2c9277b5))
	best := math.Inf(1)
	for s := 0; s < 24; s++ {
		qi := rng.Intn(n)
		nn := math.Inf(1)
		for p := 0; p < 512; p++ {
			oi := rng.Intn(n)
			if oi == qi {
				continue
			}
			if d := vec.SquaredDist(data.Row(qi), data.Row(oi)); d < nn {
				nn = d
			}
		}
		if nn < best {
			best = nn
		}
	}
	r := math.Sqrt(best) / 4
	if r <= 0 || math.IsInf(r, 1) {
		return 1
	}
	return r
}

// Size returns the number of indexed points.
func (idx *Index) Size() int { return idx.data.Rows() }

// grid returns the cell map for (space, level), building it on first use.
func (idx *Index) grid(space, level int, w float64) map[cellKey][]int32 {
	key := levelKey{space, level}
	idx.mu.Lock()
	defer idx.mu.Unlock()
	if g, ok := idx.levels[key]; ok {
		return g
	}
	proj := idx.projected[space]
	g := make(map[cellKey][]int32, proj.Rows()/4+1)
	for i := 0; i < proj.Rows(); i++ {
		ck := cellOf(proj.Row(i), w)
		g[ck] = append(g[ck], int32(i))
	}
	idx.levels[key] = g
	return g
}

// cellOf maps a projected point to its grid cell at width w using an
// FNV-style hash of the floor coordinates.
func cellOf(p []float32, w float64) cellKey {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, v := range p {
		c := int64(math.Floor(float64(v) / w))
		u := uint64(c)
		for s := 0; s < 64; s += 8 {
			h ^= (u >> uint(s)) & 0xff
			h *= prime
		}
	}
	return cellKey(h)
}

// KANN answers (c,k)-ANN with the same radius ladder and candidate budget as
// DB-LSH, but looking up one fixed grid cell per space per level instead of
// a query-centric window.
func (idx *Index) KANN(q []float32, k int) []vec.Neighbor {
	if len(q) != idx.data.Dim() {
		panic(fmt.Sprintf("fblsh: query dim %d, index dim %d", len(q), idx.data.Dim()))
	}
	if k <= 0 {
		panic("fblsh: k must be positive")
	}
	n := idx.data.Rows()
	if n == 0 {
		return nil
	}
	visited := make(map[int32]struct{}, 4*k)
	qhash := make([][]float32, idx.cfg.L)
	for i := range qhash {
		qhash[i] = idx.family.Compound(i).Hash(nil, q)
	}

	cand := vec.NewTopK(k)
	budget := 2*idx.cfg.T*idx.cfg.L + k
	cnt := 0
	c := idx.cfg.C
	r := idx.r0
	const maxLevels = 64 // ladder safety bound; windows reach dataset scale long before
	for level := 0; level < maxLevels; level++ {
		w := idx.cfg.W0 * r
		done := false
		for i := 0; i < idx.cfg.L && !done; i++ {
			cell := idx.grid(i, level, w)[cellOf(qhash[i], w)]
			for _, id := range cell {
				if _, seen := visited[id]; seen {
					continue
				}
				visited[id] = struct{}{}
				dist := vec.Dist(q, idx.data.Row(int(id)))
				cand.Push(int(id), dist)
				cnt++
				if cnt >= budget {
					done = true
					break
				}
				if worst, full := cand.Worst(); full && worst <= c*r {
					done = true
					break
				}
			}
		}
		if done {
			break
		}
		if worst, full := cand.Worst(); full && worst <= c*r {
			break
		}
		if cnt >= n {
			break
		}
		r *= c
	}
	return cand.Results()
}
