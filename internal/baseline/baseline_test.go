// Package baseline_test exercises every competitor algorithm through the
// same contract: build on a clustered corpus, answer (c,k)-ANN queries, and
// meet a method-appropriate quality bar against exact ground truth.
package baseline_test

import (
	"testing"

	"dblsh/internal/baseline/e2lsh"
	"dblsh/internal/baseline/fblsh"
	"dblsh/internal/baseline/lsb"
	"dblsh/internal/baseline/pmlsh"
	"dblsh/internal/baseline/qalsh"
	"dblsh/internal/baseline/r2lsh"
	"dblsh/internal/baseline/scan"
	"dblsh/internal/baseline/vhp"
	"dblsh/internal/dataset"
	"dblsh/internal/eval"
	"dblsh/internal/vec"
)

type algo struct {
	name  string
	build func(data *vec.Matrix) interface {
		KANN(q []float32, k int) []vec.Neighbor
	}
	minRecall float64
	maxRatio  float64
}

func algos() []algo {
	return []algo{
		{
			name: "scan",
			build: func(d *vec.Matrix) interface {
				KANN(q []float32, k int) []vec.Neighbor
			} {
				return scan.Build(d)
			},
			minRecall: 1.0, maxRatio: 1.0,
		},
		{
			name: "fblsh",
			build: func(d *vec.Matrix) interface {
				KANN(q []float32, k int) []vec.Neighbor
			} {
				return fblsh.Build(d, fblsh.Config{C: 1.5, K: 8, L: 5, T: 100, Seed: 7})
			},
			minRecall: 0.5, maxRatio: 1.25,
		},
		{
			name: "e2lsh",
			build: func(d *vec.Matrix) interface {
				KANN(q []float32, k int) []vec.Neighbor
			} {
				return e2lsh.Build(d, e2lsh.Config{C: 1.5, K: 8, L: 5, T: 100, Seed: 7})
			},
			minRecall: 0.5, maxRatio: 1.25,
		},
		{
			name: "qalsh",
			build: func(d *vec.Matrix) interface {
				KANN(q []float32, k int) []vec.Neighbor
			} {
				// Beta chosen so the verification budget βn+k matches the
				// 2tL+k ≈ 1000 budget of the (K,L)-index methods.
				return qalsh.Build(d, qalsh.Config{C: 1.5, Beta: 0.12, Seed: 7})
			},
			minRecall: 0.6, maxRatio: 1.2,
		},
		{
			name: "r2lsh",
			build: func(d *vec.Matrix) interface {
				KANN(q []float32, k int) []vec.Neighbor
			} {
				return r2lsh.Build(d, r2lsh.Config{C: 1.5, Beta: 0.12, Seed: 7})
			},
			minRecall: 0.6, maxRatio: 1.2,
		},
		{
			name: "vhp",
			build: func(d *vec.Matrix) interface {
				KANN(q []float32, k int) []vec.Neighbor
			} {
				return vhp.Build(d, vhp.Config{C: 1.5, Beta: 0.12, Seed: 7})
			},
			minRecall: 0.6, maxRatio: 1.2,
		},
		{
			name: "pmlsh",
			build: func(d *vec.Matrix) interface {
				KANN(q []float32, k int) []vec.Neighbor
			} {
				return pmlsh.Build(d, pmlsh.Config{M: 15, Beta: 0.08, C: 1.5, Seed: 7})
			},
			minRecall: 0.6, maxRatio: 1.2,
		},
		{
			name: "lsb",
			build: func(d *vec.Matrix) interface {
				KANN(q []float32, k int) []vec.Neighbor
			} {
				return lsb.Build(d, lsb.Config{K: 10, L: 5, T: 100, Seed: 7})
			},
			minRecall: 0.3, maxRatio: 1.4,
		},
	}
}

func testCorpus() (*dataset.Dataset, [][]vec.Neighbor) {
	ds := dataset.Generate(dataset.Profile{
		Name: "baseline", N: 8000, Dim: 48, Queries: 15,
		Clusters: 10, Std: 1, Spread: 10, SubClusters: 40, Seed: 77,
	})
	return ds, dataset.GroundTruth(ds.Data, ds.Queries, 10)
}

func TestAllBaselinesQuality(t *testing.T) {
	ds, truth := testCorpus()
	for _, a := range algos() {
		a := a
		t.Run(a.name, func(t *testing.T) {
			idx := a.build(ds.Data)
			var recall, ratio float64
			for qi := 0; qi < ds.Queries.Rows(); qi++ {
				res := idx.KANN(ds.Queries.Row(qi), 10)
				if len(res) == 0 {
					t.Fatalf("query %d: empty result", qi)
				}
				recall += eval.Recall(res, truth[qi])
				ratio += eval.OverallRatio(res, truth[qi])
			}
			nq := float64(ds.Queries.Rows())
			recall /= nq
			ratio /= nq
			if recall < a.minRecall {
				t.Errorf("recall = %.3f, want ≥ %.2f", recall, a.minRecall)
			}
			if ratio > a.maxRatio {
				t.Errorf("ratio = %.4f, want ≤ %.2f", ratio, a.maxRatio)
			}
		})
	}
}

func TestAllBaselinesResultContract(t *testing.T) {
	ds, _ := testCorpus()
	for _, a := range algos() {
		a := a
		t.Run(a.name, func(t *testing.T) {
			idx := a.build(ds.Data)
			q := ds.Queries.Row(0)
			res := idx.KANN(q, 7)
			if len(res) == 0 || len(res) > 7 {
				t.Fatalf("result size %d", len(res))
			}
			seen := map[int]bool{}
			prev := -1.0
			for _, nb := range res {
				if seen[nb.ID] {
					t.Fatalf("duplicate id %d", nb.ID)
				}
				seen[nb.ID] = true
				if nb.Dist < prev {
					t.Fatal("results not sorted")
				}
				prev = nb.Dist
				if got := vec.Dist(q, ds.Data.Row(nb.ID)); got != nb.Dist {
					t.Fatalf("stored dist %v != recomputed %v", nb.Dist, got)
				}
			}
		})
	}
}

func TestAllBaselinesEmptyData(t *testing.T) {
	empty := vec.NewMatrix(0, 16)
	q := make([]float32, 16)
	for _, a := range algos() {
		a := a
		t.Run(a.name, func(t *testing.T) {
			idx := a.build(empty)
			if res := idx.KANN(q, 3); len(res) != 0 {
				t.Fatalf("empty data returned %v", res)
			}
		})
	}
}

func TestAllBaselinesKLargerThanN(t *testing.T) {
	ds := dataset.Generate(dataset.Profile{
		Name: "tiny", N: 20, Dim: 8, Queries: 3, Clusters: 2, Std: 1, Spread: 5, Seed: 5,
	})
	for _, a := range algos() {
		a := a
		t.Run(a.name, func(t *testing.T) {
			idx := a.build(ds.Data)
			res := idx.KANN(ds.Queries.Row(0), 50)
			if len(res) > 20 {
				t.Fatalf("returned %d results from 20 points", len(res))
			}
		})
	}
}

func TestScanExactness(t *testing.T) {
	ds, truth := testCorpus()
	idx := scan.Build(ds.Data)
	for qi := 0; qi < ds.Queries.Rows(); qi++ {
		res := idx.KANN(ds.Queries.Row(qi), 10)
		for i := range res {
			if res[i].Dist != truth[qi][i].Dist {
				t.Fatalf("query %d rank %d: scan %v vs truth %v", qi, i, res[i].Dist, truth[qi][i].Dist)
			}
		}
	}
}

func TestQALSHParameters(t *testing.T) {
	ds, _ := testCorpus()
	idx := qalsh.Build(ds.Data, qalsh.Config{C: 1.5, Seed: 1})
	if idx.M() < 8 {
		t.Fatalf("derived M = %d too small", idx.M())
	}
	if idx.Threshold() < 1 || idx.Threshold() > idx.M() {
		t.Fatalf("threshold %d out of [1,%d]", idx.Threshold(), idx.M())
	}
}

func TestE2LSHLevelsGrowLazily(t *testing.T) {
	ds, _ := testCorpus()
	idx := e2lsh.Build(ds.Data, e2lsh.Config{C: 1.5, K: 8, L: 3, T: 50, Seed: 2})
	if idx.Levels() != 0 {
		t.Fatalf("levels before first query = %d", idx.Levels())
	}
	idx.KANN(ds.Queries.Row(0), 5)
	if idx.Levels() == 0 {
		t.Fatal("no levels materialized by a query")
	}
}

func TestPMLSHCandidateBudget(t *testing.T) {
	ds, _ := testCorpus()
	idx := pmlsh.Build(ds.Data, pmlsh.Config{M: 15, Beta: 0.05, Seed: 3})
	want := int(0.05*float64(ds.Data.Rows())) + 10
	if got := idx.Candidates(10); got != want {
		t.Fatalf("Candidates = %d, want %d", got, want)
	}
}
