// Package pmlsh implements the PM-LSH scheme (Zheng et al., PVLDB 2020),
// the representative of the dynamic metric-query (MQ) family the DB-LSH
// paper compares against (SRS shares the design with a different tree).
//
// Indexing: project the dataset into an m-dimensional space with m 2-stable
// projections (m ≈ 15 in the PM-LSH paper) and index the projected points
// with a metric tree (PM-tree in the paper; a ball tree here — see DESIGN.md
// for the substitution).
//
// Query: stream the projected-space nearest neighbors of the projected
// query in ascending order and verify each in the original space, stopping
// after βn + k verifications. Projected distance concentrates around
// (original distance)·√m for 2-stable projections, so projected-NN order is
// a good candidate order; the linear βn verification term is the cost the
// DB-LSH paper criticizes in Table I.
package pmlsh

import (
	"fmt"
	"math"
	"math/rand"

	"dblsh/internal/lsh"
	"dblsh/internal/mtree"
	"dblsh/internal/vec"
)

// Config parameterizes PM-LSH.
type Config struct {
	// M is the projected dimensionality. Default 15 (the PM-LSH paper's m).
	M int
	// Beta scales the candidate budget βn. Default 0.08 (the paper's
	// Table IV setting for PM-LSH).
	Beta float64
	// C is the approximation ratio used by the early-termination radius
	// test. Default 1.5.
	C float64
	// Seed drives projection sampling.
	Seed int64
}

// Index is a PM-LSH index.
type Index struct {
	data      *vec.Matrix
	cfg       Config
	compound  *lsh.Compound
	projected *vec.Matrix
	tree      *mtree.Tree
	scale     float64 // E[projected dist / original dist] = √m
}

// Build projects the dataset and builds the metric tree.
func Build(data *vec.Matrix, cfg Config) *Index {
	if cfg.M <= 0 {
		cfg.M = 15
	}
	if cfg.Beta <= 0 {
		cfg.Beta = 0.08
	}
	if cfg.C <= 1 {
		cfg.C = 1.5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	idx := &Index{
		data:     data,
		cfg:      cfg,
		compound: lsh.NewCompound(cfg.M, data.Dim(), rng),
		scale:    math.Sqrt(float64(cfg.M)),
	}
	idx.projected = idx.compound.Project(data)
	idx.tree = mtree.Build(idx.projected)
	return idx
}

// Size returns the number of indexed points.
func (idx *Index) Size() int { return idx.data.Rows() }

// KANN answers a (c,k)-ANN query. Safe for concurrent use.
func (idx *Index) KANN(q []float32, k int) []vec.Neighbor {
	if len(q) != idx.data.Dim() {
		panic(fmt.Sprintf("pmlsh: query dim %d, index dim %d", len(q), idx.data.Dim()))
	}
	if k <= 0 {
		panic("pmlsh: k must be positive")
	}
	n := idx.data.Rows()
	if n == 0 {
		return nil
	}
	qp := idx.compound.Hash(nil, q)
	budget := int(idx.cfg.Beta*float64(n)) + k
	if budget < k {
		budget = k
	}
	cand := vec.NewTopK(k)
	cnt := 0
	idx.tree.NearestVisit(qp, func(id int, projDist float64) bool {
		cand.Push(id, vec.Dist(q, idx.data.Row(id)))
		cnt++
		if cnt >= budget {
			return false
		}
		// Early termination (PM-LSH Lemma 4 flavour): when the k-th true
		// distance so far is below the original-space distance the current
		// projected frontier corresponds to (divided by c), later projected
		// points are unlikely to improve the result.
		if worst, full := cand.Worst(); full && projDist > 0 {
			estimated := projDist / idx.scale
			if worst*idx.cfg.C <= estimated {
				return false
			}
		}
		return true
	})
	return cand.Results()
}

// Candidates reports the verification budget βn + k for a given k — the
// linear-cost term of Table I.
func (idx *Index) Candidates(k int) int {
	return int(idx.cfg.Beta*float64(idx.data.Rows())) + k
}
