package pmlsh

import (
	"math/rand"
	"sort"
	"testing"

	"dblsh/internal/vec"
)

func clustered(n, d int, seed int64) *vec.Matrix {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float32, 8)
	for i := range centers {
		c := make([]float32, d)
		for j := range c {
			c[j] = float32(rng.NormFloat64() * 10)
		}
		centers[i] = c
	}
	m := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		c := centers[rng.Intn(8)]
		for j := 0; j < d; j++ {
			m.Row(i)[j] = c[j] + float32(rng.NormFloat64())
		}
	}
	return m
}

func TestBetaOneIsNearExact(t *testing.T) {
	// With β = 1 every point is verified, so results equal exact k-NN.
	data := clustered(1000, 16, 1)
	idx := Build(data, Config{M: 15, Beta: 1, Seed: 1})
	q := data.Row(3)
	res := idx.KANN(q, 10)

	dists := make([]float64, data.Rows())
	for i := range dists {
		dists[i] = vec.Dist(q, data.Row(i))
	}
	sort.Float64s(dists)
	for i, nb := range res {
		if nb.Dist != dists[i] {
			t.Fatalf("rank %d: %v, want %v", i, nb.Dist, dists[i])
		}
	}
}

func TestProjectedOrderIsGoodCandidateOrder(t *testing.T) {
	// With a small β, PM-LSH must still place the exact NN first for a
	// self-query (projected distance 0 is visited first).
	data := clustered(5000, 32, 2)
	idx := Build(data, Config{M: 15, Beta: 0.02, Seed: 2})
	res := idx.KANN(data.Row(11), 1)
	if len(res) != 1 || res[0].ID != 11 || res[0].Dist != 0 {
		t.Fatalf("self-query result %+v", res)
	}
}

func TestCandidatesFormula(t *testing.T) {
	data := clustered(2000, 8, 3)
	idx := Build(data, Config{M: 10, Beta: 0.25, Seed: 3})
	if got := idx.Candidates(7); got != 500+7 {
		t.Fatalf("Candidates = %d", got)
	}
	if idx.Size() != 2000 {
		t.Fatalf("Size = %d", idx.Size())
	}
}

func TestDefaults(t *testing.T) {
	data := clustered(100, 8, 4)
	idx := Build(data, Config{Seed: 4})
	if idx.cfg.M != 15 || idx.cfg.Beta != 0.08 || idx.cfg.C != 1.5 {
		t.Fatalf("defaults not applied: %+v", idx.cfg)
	}
}

func TestEmptyAndPanics(t *testing.T) {
	idx := Build(vec.NewMatrix(0, 8), Config{Seed: 5})
	if res := idx.KANN(make([]float32, 8), 3); len(res) != 0 {
		t.Fatalf("empty data returned %v", res)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k=0")
		}
	}()
	idx.KANN(make([]float32, 8), 0)
}
