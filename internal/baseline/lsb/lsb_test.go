package lsb

import (
	"math/rand"
	"testing"

	"dblsh/internal/vec"
	"dblsh/internal/zorder"
)

func clustered(n, d int, seed int64) *vec.Matrix {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float32, 8)
	for i := range centers {
		c := make([]float32, d)
		for j := range c {
			c[j] = float32(rng.NormFloat64() * 10)
		}
		centers[i] = c
	}
	m := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		c := centers[rng.Intn(8)]
		for j := 0; j < d; j++ {
			m.Row(i)[j] = c[j] + float32(rng.NormFloat64())
		}
	}
	return m
}

func TestCodesSorted(t *testing.T) {
	data := clustered(3000, 16, 1)
	idx := Build(data, Config{K: 8, L: 3, T: 20, Seed: 1})
	for ti, tr := range idx.trees {
		for i := 1; i < len(tr.codes); i++ {
			if zorder.Compare(tr.codes[i-1], tr.codes[i]) > 0 {
				t.Fatalf("tree %d: codes out of order at %d", ti, i)
			}
		}
		if len(tr.ids) != data.Rows() {
			t.Fatalf("tree %d: %d ids", ti, len(tr.ids))
		}
	}
}

func TestSelfQueryFindsSelf(t *testing.T) {
	data := clustered(2000, 16, 2)
	idx := Build(data, Config{K: 8, L: 3, T: 50, Seed: 2})
	res := idx.KANN(data.Row(77), 1)
	if len(res) != 1 || res[0].Dist != 0 {
		t.Fatalf("self-query result %+v", res)
	}
}

func TestOutOfRangeQueryClamped(t *testing.T) {
	// A query far outside the data range must not panic and must still
	// return budget-many candidates (coordinates clamp to the grid edge).
	data := clustered(500, 8, 3)
	idx := Build(data, Config{K: 6, L: 2, T: 10, Seed: 3})
	q := make([]float32, 8)
	for j := range q {
		q[j] = 1e6
	}
	res := idx.KANN(q, 5)
	if len(res) != 5 {
		t.Fatalf("got %d results", len(res))
	}
}

func TestBudgetExpansion(t *testing.T) {
	data := clustered(5000, 16, 4)
	small := Build(data, Config{K: 8, L: 3, T: 2, Seed: 4})
	large := Build(data, Config{K: 8, L: 3, T: 200, Seed: 4})
	q := clustered(1, 16, 5).Row(0)
	rs := small.KANN(q, 10)
	rl := large.KANN(q, 10)
	if len(rs) == 0 || len(rl) == 0 {
		t.Fatal("empty results")
	}
	// The larger budget can only improve (or tie) the k-th distance.
	if rl[len(rl)-1].Dist > rs[len(rs)-1].Dist+1e-9 {
		t.Fatalf("larger budget produced worse k-th distance: %v vs %v",
			rl[len(rl)-1].Dist, rs[len(rs)-1].Dist)
	}
}

func TestDefaults(t *testing.T) {
	data := clustered(100, 8, 6)
	idx := Build(data, Config{Seed: 6})
	if idx.cfg.K != 12 || idx.cfg.L != 5 || idx.cfg.W != 16 || idx.cfg.C != 2 {
		t.Fatalf("defaults not applied: %+v", idx.cfg)
	}
	if idx.Size() != 100 {
		t.Fatalf("Size = %d", idx.Size())
	}
}

func TestEmptyData(t *testing.T) {
	idx := Build(vec.NewMatrix(0, 8), Config{Seed: 7})
	if res := idx.KANN(make([]float32, 8), 3); len(res) != 0 {
		t.Fatalf("empty data returned %v", res)
	}
}
