// Package lsb implements an LSB-Forest baseline (Tao et al., SIGMOD 2009),
// the static query-oblivious (K,L)-index the DB-LSH paper compares against.
//
// Each of the L LSB-trees hashes every point with K bucketed 2-stable hashes
// (Eq. 1), quantizes the K bucket numbers to a non-negative grid, interleaves
// them into a Z-order code, and keeps the dataset sorted by that code. A
// query locates its own Z-order position in each tree by binary search and
// expands bidirectionally, always stepping to the side whose next code shares
// the longer common prefix (LLCP) with the query's code — LSB's proxy for
// bucket proximity. Candidates are verified in the original space under a
// shared budget.
//
// Simplification vs. the paper: LSB-Forest's termination rule converts the
// LLCP level to a search radius and stops when the k-th candidate beats it;
// we keep that test but bound work with the same 2tL+k budget used by the
// other baselines so all methods are compared at equal candidate cost.
package lsb

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dblsh/internal/lsh"
	"dblsh/internal/vec"
	"dblsh/internal/zorder"
)

// Config parameterizes the forest.
type Config struct {
	// K is the number of bucketed hashes per tree. Default 12.
	K int
	// L is the number of trees. Default 5.
	L int
	// W is the bucket width of each hash. Default 16 (w = 4c² at c = 2,
	// the LSB paper's setting).
	W float64
	// T is the candidate constant: at most 2tL+k points are verified.
	// Default 100.
	T int
	// C is the approximation ratio for the early-termination test. LSB
	// requires c ≥ 2; default 2.
	C float64
	// Seed drives hash sampling.
	Seed int64
}

type tree struct {
	fns   []lsh.Bucketed
	codes []zorder.Code // sorted ascending
	ids   []int32       // ids aligned with codes
	mins  []int64       // per-dim minimum bucket number, for quantization
	enc   *zorder.Encoder
}

// Index is an LSB-Forest.
type Index struct {
	data  *vec.Matrix
	cfg   Config
	trees []*tree
}

// Build constructs the forest: L independent Z-order-sorted hash files.
func Build(data *vec.Matrix, cfg Config) *Index {
	if cfg.K <= 0 {
		cfg.K = 12
	}
	if cfg.L <= 0 {
		cfg.L = 5
	}
	if cfg.W <= 0 {
		cfg.W = 16
	}
	if cfg.T <= 0 {
		cfg.T = 100
	}
	if cfg.C < 2 {
		cfg.C = 2
	}
	idx := &Index{data: data, cfg: cfg}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := data.Rows()
	for t := 0; t < cfg.L; t++ {
		tr := &tree{fns: make([]lsh.Bucketed, cfg.K), mins: make([]int64, cfg.K)}
		for j := range tr.fns {
			tr.fns[j] = lsh.NewBucketed(data.Dim(), cfg.W, rng)
		}
		// First pass: bucket numbers and per-dim ranges.
		buckets := make([][]int64, n)
		maxRange := int64(0)
		for j := 0; j < cfg.K; j++ {
			tr.mins[j] = math.MaxInt64
		}
		for i := 0; i < n; i++ {
			bs := make([]int64, cfg.K)
			for j := 0; j < cfg.K; j++ {
				bs[j] = tr.fns[j].Hash(data.Row(i))
				if bs[j] < tr.mins[j] {
					tr.mins[j] = bs[j]
				}
			}
			buckets[i] = bs
		}
		if n == 0 {
			for j := range tr.mins {
				tr.mins[j] = 0
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < cfg.K; j++ {
				if r := buckets[i][j] - tr.mins[j]; r > maxRange {
					maxRange = r
				}
			}
		}
		bits := 1
		for (int64(1) << uint(bits)) <= maxRange {
			bits++
		}
		if bits > 30 {
			bits = 30
		}
		tr.enc = zorder.NewEncoder(cfg.K, bits)

		// Second pass: encode and sort.
		tr.codes = make([]zorder.Code, n)
		tr.ids = make([]int32, n)
		coords := make([]uint32, cfg.K)
		limit := (int64(1) << uint(bits)) - 1
		for i := 0; i < n; i++ {
			tr.coordsInto(coords, buckets[i], limit)
			tr.codes[i] = tr.enc.Encode(coords)
			tr.ids[i] = int32(i)
		}
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return zorder.Compare(tr.codes[order[a]], tr.codes[order[b]]) < 0
		})
		codes := make([]zorder.Code, n)
		ids := make([]int32, n)
		for pos, i := range order {
			codes[pos] = tr.codes[i]
			ids[pos] = tr.ids[i]
		}
		tr.codes, tr.ids = codes, ids
		idx.trees = append(idx.trees, tr)
	}
	return idx
}

// coordsInto quantizes bucket numbers into the encoder's grid, clamping to
// the grid bounds (relevant only for query points outside the data range).
func (tr *tree) coordsInto(dst []uint32, buckets []int64, limit int64) {
	for j := range dst {
		v := buckets[j] - tr.mins[j]
		if v < 0 {
			v = 0
		}
		if v > limit {
			v = limit
		}
		dst[j] = uint32(v)
	}
}

// Size returns the number of indexed points.
func (idx *Index) Size() int { return idx.data.Rows() }

// KANN answers a (c,k)-ANN query. Safe for concurrent use.
func (idx *Index) KANN(q []float32, k int) []vec.Neighbor {
	if len(q) != idx.data.Dim() {
		panic(fmt.Sprintf("lsb: query dim %d, index dim %d", len(q), idx.data.Dim()))
	}
	if k <= 0 {
		panic("lsb: k must be positive")
	}
	n := idx.data.Rows()
	if n == 0 {
		return nil
	}

	type cursor struct {
		tr          *tree
		qcode       zorder.Code
		left, right int // next positions to consume
	}
	cursors := make([]cursor, len(idx.trees))
	coords := make([]uint32, idx.cfg.K)
	buckets := make([]int64, idx.cfg.K)
	for t, tr := range idx.trees {
		for j := 0; j < idx.cfg.K; j++ {
			buckets[j] = tr.fns[j].Hash(q)
		}
		limit := (int64(1) << uint(tr.enc.Bits()/idx.cfg.K)) - 1
		tr.coordsInto(coords, buckets, limit)
		qc := tr.enc.Encode(coords)
		pos := sort.Search(len(tr.codes), func(i int) bool {
			return zorder.Compare(tr.codes[i], qc) >= 0
		})
		cursors[t] = cursor{tr: tr, qcode: qc, left: pos - 1, right: pos}
	}

	visited := make(map[int32]struct{}, 4*k)
	cand := vec.NewTopK(k)
	budget := 2*idx.cfg.T*idx.cfg.L + k
	cnt := 0

	verify := func(id int32) {
		if _, seen := visited[id]; seen {
			return
		}
		visited[id] = struct{}{}
		cand.Push(int(id), vec.Dist(q, idx.data.Row(int(id))))
		cnt++
	}

	// Round-robin over trees; within a tree, step toward the side with the
	// larger LLCP. Stop on budget or when every cursor is exhausted.
	for cnt < budget {
		progressed := false
		for i := range cursors {
			cu := &cursors[i]
			tr := cu.tr
			lOK := cu.left >= 0
			rOK := cu.right < len(tr.codes)
			if !lOK && !rOK {
				continue
			}
			progressed = true
			var takeRight bool
			switch {
			case lOK && rOK:
				takeRight = tr.enc.LLCP(cu.qcode, tr.codes[cu.right]) >= tr.enc.LLCP(cu.qcode, tr.codes[cu.left])
			case rOK:
				takeRight = true
			}
			if takeRight {
				verify(tr.ids[cu.right])
				cu.right++
			} else {
				verify(tr.ids[cu.left])
				cu.left--
			}
			if cnt >= budget {
				break
			}
		}
		if !progressed {
			break
		}
	}
	return cand.Results()
}
