// Package e2lsh implements the classic static (K,L)-index method (E2LSH,
// Datar et al. 2004 / Andoni & Indyk) that DB-LSH generalizes. A c-ANN query
// walks the radius ladder r = r0, c·r0, c²·r0, …; each radius level owns an
// independent suite of L hash tables built from K-wise compound *bucketed*
// hashes h(o) = ⌊(a·o+b)/(w0·r)⌋ (Eq. 1). This is the "M indexes prepared
// ahead" design of Table I — the index cost that motivates DB-LSH. Levels
// are materialized lazily and cached so a query workload pays each level
// once; the paper's criticism (space grows with the number of radii) shows
// up here as the cache growing per level.
package e2lsh

import (
	"fmt"
	"math"
	"math/rand"

	"dblsh/internal/lsh"
	"dblsh/internal/vec"
)

// Config parameterizes the index.
type Config struct {
	C             float64 // approximation ratio, default 1.5
	W0            float64 // bucket width multiplier, default 4c²
	T             int     // candidate constant, default 100
	K             int     // hash functions per table (required)
	L             int     // tables per radius level (required)
	Seed          int64
	InitialRadius float64
}

// Index is a static multi-radius E2LSH index.
type Index struct {
	data *vec.Matrix
	cfg  Config
	r0   float64

	levels map[int]*level
}

type level struct {
	fns    [][]lsh.Bucketed     // L suites of K bucketed hashes
	tables []map[uint64][]int32 // L hash tables
}

// Build prepares the index shell; hash tables materialize per radius level
// on first use.
func Build(data *vec.Matrix, cfg Config) *Index {
	if cfg.C <= 1 {
		cfg.C = 1.5
	}
	if cfg.W0 <= 0 {
		cfg.W0 = 4 * cfg.C * cfg.C
	}
	if cfg.T <= 0 {
		cfg.T = 100
	}
	if cfg.K <= 0 || cfg.L <= 0 {
		panic(fmt.Sprintf("e2lsh: K and L required, got K=%d L=%d", cfg.K, cfg.L))
	}
	idx := &Index{data: data, cfg: cfg, levels: make(map[int]*level)}
	idx.r0 = cfg.InitialRadius
	if idx.r0 <= 0 {
		idx.r0 = estimateRadius(data, cfg.Seed)
	}
	return idx
}

func estimateRadius(data *vec.Matrix, seed int64) float64 {
	n := data.Rows()
	if n < 2 {
		return 1
	}
	rng := rand.New(rand.NewSource(seed ^ 0x7e1ab3c9))
	best := math.Inf(1)
	for s := 0; s < 24; s++ {
		qi := rng.Intn(n)
		nn := math.Inf(1)
		for p := 0; p < 512; p++ {
			oi := rng.Intn(n)
			if oi == qi {
				continue
			}
			if d := vec.SquaredDist(data.Row(qi), data.Row(oi)); d < nn {
				nn = d
			}
		}
		if nn < best {
			best = nn
		}
	}
	r := math.Sqrt(best) / 4
	if r <= 0 || math.IsInf(r, 1) {
		return 1
	}
	return r
}

// Size returns the number of indexed points.
func (idx *Index) Size() int { return idx.data.Rows() }

// Levels returns the number of radius levels materialized so far — the "M"
// of Table I's O(M·n^{1+ρ}) index size.
func (idx *Index) Levels() int { return len(idx.levels) }

func (idx *Index) level(li int, w float64) *level {
	if lv, ok := idx.levels[li]; ok {
		return lv
	}
	rng := rand.New(rand.NewSource(idx.cfg.Seed + int64(li)*7919))
	lv := &level{
		fns:    make([][]lsh.Bucketed, idx.cfg.L),
		tables: make([]map[uint64][]int32, idx.cfg.L),
	}
	d := idx.data.Dim()
	for t := 0; t < idx.cfg.L; t++ {
		fns := make([]lsh.Bucketed, idx.cfg.K)
		for j := range fns {
			fns[j] = lsh.NewBucketed(d, w, rng)
		}
		lv.fns[t] = fns
		table := make(map[uint64][]int32, idx.data.Rows()/4+1)
		for i := 0; i < idx.data.Rows(); i++ {
			key := bucketKey(fns, idx.data.Row(i))
			table[key] = append(table[key], int32(i))
		}
		lv.tables[t] = table
	}
	idx.levels[li] = lv
	return lv
}

// bucketKey hashes the K bucket indices of o into one table key.
func bucketKey(fns []lsh.Bucketed, o []float32) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, fn := range fns {
		u := uint64(fn.Hash(o))
		for s := 0; s < 64; s += 8 {
			h ^= (u >> uint(s)) & 0xff
			h *= prime
		}
	}
	return h
}

// KANN answers (c,k)-ANN by probing the query's bucket in each of the L
// tables at each radius level, with the shared 2tL+k verification budget.
//
// Index is not safe for concurrent queries (levels materialize lazily);
// clone per goroutine or serialize access.
func (idx *Index) KANN(q []float32, k int) []vec.Neighbor {
	if len(q) != idx.data.Dim() {
		panic(fmt.Sprintf("e2lsh: query dim %d, index dim %d", len(q), idx.data.Dim()))
	}
	if k <= 0 {
		panic("e2lsh: k must be positive")
	}
	n := idx.data.Rows()
	if n == 0 {
		return nil
	}
	visited := make(map[int32]struct{}, 4*k)
	cand := vec.NewTopK(k)
	budget := 2*idx.cfg.T*idx.cfg.L + k
	cnt := 0
	c := idx.cfg.C
	r := idx.r0
	const maxLevels = 64
	for li := 0; li < maxLevels; li++ {
		w := idx.cfg.W0 * r
		lv := idx.level(li, w)
		done := false
		for t := 0; t < idx.cfg.L && !done; t++ {
			key := bucketKey(lv.fns[t], q)
			for _, id := range lv.tables[t][key] {
				if _, seen := visited[id]; seen {
					continue
				}
				visited[id] = struct{}{}
				dist := vec.Dist(q, idx.data.Row(int(id)))
				cand.Push(int(id), dist)
				cnt++
				if cnt >= budget {
					done = true
					break
				}
				if worst, full := cand.Worst(); full && worst <= c*r {
					done = true
					break
				}
			}
		}
		if done {
			break
		}
		if worst, full := cand.Worst(); full && worst <= c*r {
			break
		}
		if cnt >= n {
			break
		}
		r *= c
	}
	return cand.Results()
}
