package e2lsh

import (
	"math/rand"
	"testing"

	"dblsh/internal/lsh"
	"dblsh/internal/vec"
)

func clustered(n, d int, seed int64) *vec.Matrix {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float32, 8)
	for i := range centers {
		c := make([]float32, d)
		for j := range c {
			c[j] = float32(rng.NormFloat64() * 10)
		}
		centers[i] = c
	}
	m := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		c := centers[rng.Intn(8)]
		for j := 0; j < d; j++ {
			m.Row(i)[j] = c[j] + float32(rng.NormFloat64())
		}
	}
	return m
}

func TestBucketKeyDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	fns := make([]lsh.Bucketed, 4)
	for i := range fns {
		fns[i] = lsh.NewBucketed(8, 4, rng)
	}
	o := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	if bucketKey(fns, o) != bucketKey(fns, o) {
		t.Fatal("bucketKey not deterministic")
	}
	// A far point should land in a different compound bucket.
	far := []float32{100, -100, 100, -100, 100, -100, 100, -100}
	if bucketKey(fns, o) == bucketKey(fns, far) {
		t.Fatal("far points share a compound bucket (possible but vanishingly unlikely)")
	}
}

func TestSelfQueryFindsSelf(t *testing.T) {
	data := clustered(2000, 16, 2)
	idx := Build(data, Config{C: 1.5, K: 6, L: 4, T: 50, Seed: 2})
	// A query identical to a data point shares every hash at every level.
	res := idx.KANN(data.Row(9), 1)
	if len(res) != 1 || res[0].Dist != 0 {
		t.Fatalf("self-query result %+v", res)
	}
}

func TestLevelsCachedAcrossQueries(t *testing.T) {
	data := clustered(1000, 8, 3)
	idx := Build(data, Config{C: 1.5, K: 4, L: 2, T: 20, Seed: 3})
	idx.KANN(data.Row(0), 3)
	after1 := idx.Levels()
	idx.KANN(data.Row(1), 3)
	after2 := idx.Levels()
	if after1 == 0 {
		t.Fatal("no levels after first query")
	}
	if after2 > after1+4 {
		t.Fatalf("levels keep growing: %d -> %d", after1, after2)
	}
}

func TestBuildPanicsWithoutKL(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build(vec.NewMatrix(1, 2), Config{})
}

func TestEmptyData(t *testing.T) {
	idx := Build(vec.NewMatrix(0, 8), Config{K: 4, L: 2, Seed: 4})
	if res := idx.KANN(make([]float32, 8), 3); len(res) != 0 {
		t.Fatalf("empty data returned %v", res)
	}
}
