// Package shard partitions a DB-LSH index across S independent core shards
// so that mutations never block searches globally. Each shard is a complete
// core.Index over a disjoint stripe of the dataset, guarded by its own
// RWMutex; an Insert or Delete takes the write lock of exactly one shard —
// the other S−1 keep answering.
//
// # Queries
//
// A (c,k)-ANN query runs the paper's radius ladder round-synchronized
// across shards: every shard executes the same round r, cr, c²r, … under
// its own read lock, the per-round candidates merge into one global top-k,
// and the candidate budget 2tL+k and the termination test apply to that
// merged state, the budget flowing through the shards in visit order
// exactly as a monolithic index spends it across its L trees. The query
// therefore does the same total work as against one monolithic index — S
// independent ladders would each pay the full budget against a sparser
// stripe — while holding each shard's lock only for its slice of a round,
// so a search never waits for more than one in-flight mutation per shard
// round.
//
// Within a round the per-shard traversals are independent, so a query can
// fan them out across a bounded set-level worker pool (SetParallelism /
// QueryParams.Parallelism): each shard gathers its verified (id, dist)
// candidates into a per-shard arena, pruning against the top-k bound frozen
// at round entry, and the coordinator then merges the arenas in fixed shard
// order, applying the dedup, budget and termination accounting candidate by
// candidate exactly as the sequential loop does. The frozen bound is only
// ever looser than the live one, so it admits extra candidates but never
// drops one, and every mid-round stop (budget exhausted, termination test)
// ends the whole query, so over-gathering past a stop can never influence a
// later round: the merged results are bit-identical to the sequential
// path's, which survives (parallelism 1) as the differential oracle.
//
// # Compaction
//
// Compaction rebuilds one shard from its live rows, dropping tombstone
// debt, while every shard — including the one being compacted — keeps
// serving: the shard is snapshotted under a read lock, rebuilt with no
// locks held, and swapped in under a write lock held just long enough to
// replay the mutations that raced the rebuild. This turns the paper's
// offline full rebuild into an online per-shard operation.
//
// # Identity
//
// Callers address points by global id; each shard stores points under dense
// local ids. Routing is arithmetic — global id g lives in shard g mod S —
// and never changes for the lifetime of a point, so the only mutable state
// is the local position, guarded by the owning shard's lock. Every shard
// keeps globals (local → global, append-ordered) and, lazily, a reverse map
// for when the initial stripe pattern is broken by out-of-order concurrent
// inserts or by a compaction.
//
// # Locking
//
// There is no global lock anywhere. The only cross-shard synchronization
// is the atomic global-id allocator; even persistence (SnapshotShard)
// copies one shard at a time. No goroutine ever holds two shard locks (a
// parallel round holds several read locks concurrently, but each on its own
// worker goroutine), so the lock graph is trivially acyclic.
//
// The locking discipline and the bit-identical-merge contract are enforced
// by dblsh-lint (guardedby and detorder analyzers).
//
// dblsh:deterministic
package shard

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dblsh/internal/core"
	"dblsh/internal/obs"
	"dblsh/internal/vec"
)

// autoCompactMinRows is the smallest shard auto-compaction bothers with:
// below this, a rebuild costs more than the tombstones it reclaims.
const autoCompactMinRows = 256

// Set is a sharded DB-LSH index. All methods are safe for concurrent use.
type Set struct {
	dim         int
	cfg         core.Config   // resolved against the build-time dataset size
	compactFrac atomic.Uint64 // auto-compaction threshold (float64 bits); 0 disables
	shards      []*state
	nextID      atomic.Int64 // global id allocator / id-space bound
	pool        sync.Pool    // of *Searcher, for the pooled entry points

	// par is the set-level per-query fan-out setting: 0 auto
	// (min(GOMAXPROCS, shards)), 1 sequential, n ≥ 1 explicit.
	par atomic.Int64
	// workers is the set-level helper-token pool for parallel rounds, sized
	// to GOMAXPROCS at build time. Every query's coordinator gathers inline
	// without a token, so rounds always make progress; helper goroutines
	// across all concurrent queries (and batch workers) are bounded by the
	// pool's capacity, which keeps intra-query and inter-query parallelism
	// from multiplying into oversubscription.
	workers chan struct{}
	// quantize, when non-nil, overrides cfg.Quantize: SetQuantize stores
	// here atomically so compaction's config read races with nothing.
	quantize atomic.Pointer[string]

	// metrics is the optional compaction observability hook set, swapped
	// in atomically so SetMetrics is safe while background auto-compaction
	// is already running.
	metrics atomic.Pointer[Metrics]
}

// Metrics reports the set's compaction activity. Fields are optional (obs
// metric types are nil-safe).
type Metrics struct {
	// CompactionRuns counts completed compactions that actually rebuilt a
	// shard (clean shards short-circuit and are not counted).
	CompactionRuns *obs.Counter
	// CompactionSeconds is the duration distribution of those rebuilds.
	CompactionSeconds *obs.Histogram
}

// SetMetrics installs (or replaces) the compaction metrics. Safe to call
// at any time, including while compactions are in flight.
func (s *Set) SetMetrics(m Metrics) {
	s.metrics.Store(&m)
}

// SetCompactFraction replaces the auto-compaction threshold: a Delete that
// pushes a shard's tombstoned fraction to f schedules a background rebuild
// of that shard. 0 disables. Safe to call at any time; a loaded index
// starts with the policy disabled because the threshold is an operational
// knob, not part of the persisted state.
func (s *Set) SetCompactFraction(f float64) {
	s.compactFrac.Store(math.Float64bits(f))
}

// CompactFraction returns the current auto-compaction threshold.
func (s *Set) CompactFraction() float64 {
	return math.Float64frombits(s.compactFrac.Load())
}

// state is one shard: a core index plus the id mapping and its lock.
type state struct {
	mu sync.RWMutex
	// compactMu serializes compactions of this shard. It is never taken
	// while holding mu (compaction acquires mu only in short windows), so a
	// waiting compaction never blocks traffic.
	compactMu sync.Mutex
	idx       *core.Index // dblsh:guardedby mu
	seed      int64       // this shard's hash seed (base seed + shard offset)

	// globals maps local id → global id in append order. localOf is the
	// reverse map, materialized lazily: while it is nil the mapping is the
	// pure stripe local j ↔ global j·S+offset and lookups are arithmetic.
	// The first out-of-order insert or compaction materializes the map.
	globals []int       // dblsh:guardedby mu
	localOf map[int]int // dblsh:guardedby mu
	offset  int         // this shard's index in the set

	compacting     atomic.Bool // single-flight guard for auto-compaction
	compactions    int         // dblsh:guardedby mu
	lastCompaction time.Time   // dblsh:guardedby mu
}

// local returns the local id of global g, or -1 when g is not resident
// (never routed here, or compacted away). Callers hold st.mu.
//
// dblsh:locked mu
func (st *state) local(g, stride int) int {
	if st.localOf != nil {
		if l, ok := st.localOf[g]; ok {
			return l
		}
		return -1
	}
	j := (g - st.offset) / stride
	if j >= 0 && j < len(st.globals) && st.globals[j] == g {
		return j
	}
	return -1
}

// materialize builds the explicit reverse map. Callers hold st.mu for
// writing.
//
// dblsh:locked mu
func (st *state) materialize() {
	if st.localOf != nil {
		return
	}
	st.localOf = make(map[int]int, len(st.globals))
	for j, g := range st.globals {
		st.localOf[g] = j
	}
}

// shardSeed derives shard i's hash seed from the set's base seed. Shard 0
// uses the base seed itself, so a single-shard set is bit-identical to an
// unsharded core build.
func shardSeed(base int64, i int) int64 { return base + int64(i) }

// Build constructs a set of `shards` shards over n vectors of dimension dim
// stored row-major in flat, striping rows round-robin: row g goes to shard
// g mod S. With shards == 1 the flat slice is wrapped without copying
// (preserving the library's zero-copy contract); with more shards each
// shard copies its stripe into a contiguous matrix. compactFrac > 0 enables
// automatic background compaction of a shard once its tombstoned fraction
// reaches the threshold.
//
// dblsh:exclusive the set is under construction and unpublished; the build
// goroutines partition the shards, so no state is shared
func Build(flat []float32, n, dim, shards int, compactFrac float64, cfg core.Config) *Set {
	if n > 0 && shards > n {
		shards = n // no empty shards when there is data to stripe
	}
	if shards < 1 {
		shards = 1
	}
	cfg = cfg.Resolved(n)
	s := &Set{
		dim:    dim,
		cfg:    cfg,
		shards: make([]*state, shards),
	}
	s.SetCompactFraction(compactFrac)
	s.nextID.Store(int64(n))

	if shards == 1 {
		st := &state{seed: cfg.Seed, offset: 0}
		st.idx = core.Build(vec.WrapMatrix(flat, n, dim), cfg)
		st.globals = identityGlobals(n, 0, 1)
		s.shards[0] = st
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		for i := 0; i < shards; i++ {
			rows := (n - i + shards - 1) / shards
			st := &state{seed: shardSeed(cfg.Seed, i), offset: i}
			m := vec.NewMatrix(rows, dim)
			for j := 0; j < rows; j++ {
				g := j*shards + i
				m.SetRow(j, flat[g*dim:(g+1)*dim])
			}
			st.globals = identityGlobals(rows, i, shards)
			s.shards[i] = st
			wg.Add(1)
			sem <- struct{}{}
			go func(st *state, m *vec.Matrix) {
				defer wg.Done()
				defer func() { <-sem }()
				c := s.cfg
				c.Seed = st.seed
				c.InitialRadius = 0 // estimated per shard from its own stripe
				st.idx = core.Build(m, c)
			}(st, m)
		}
		wg.Wait()
	}
	s.workers = make(chan struct{}, runtime.GOMAXPROCS(0))
	s.pool.New = func() interface{} { return s.NewSearcher() }
	return s
}

func identityGlobals(rows, offset, stride int) []int {
	g := make([]int, rows)
	for j := range g {
		g[j] = j*stride + offset
	}
	return g
}

// Part is one shard's serialized state, used to restore a persisted set.
type Part struct {
	Flat    []float32 // rows·dim vector payload, local-id order
	Rows    int
	Globals []int  // local id → global id
	Deleted []bool // tombstones by local id; may be nil or short
	R0      float64
}

// Restore rebuilds a set from persisted per-shard parts. cfg carries the
// stored structural parameters and base seed; nextID is the persisted
// global-id-space bound (ids ≥ nextID have never been allocated).
//
// dblsh:exclusive the set is under construction and unpublished; the
// restore goroutines partition the shards, so no state is shared
func Restore(dim int, nextID int, compactFrac float64, cfg core.Config, parts []Part) *Set {
	total := 0
	for _, p := range parts {
		total += p.Rows
	}
	cfg = cfg.Resolved(total)
	s := &Set{
		dim:    dim,
		cfg:    cfg,
		shards: make([]*state, len(parts)),
	}
	s.SetCompactFraction(compactFrac)
	s.nextID.Store(int64(nextID))
	stride := len(parts)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, p := range parts {
		st := &state{seed: shardSeed(cfg.Seed, i), offset: i}
		st.globals = append([]int(nil), p.Globals...)
		for j, g := range st.globals {
			if g != j*stride+i {
				st.materialize() // stripe pattern broken pre-persist
				break
			}
		}
		s.shards[i] = st
		wg.Add(1)
		sem <- struct{}{}
		go func(st *state, p Part) {
			defer wg.Done()
			defer func() { <-sem }()
			c := s.cfg
			c.Seed = st.seed
			c.InitialRadius = p.R0
			st.idx = core.Build(vec.WrapMatrix(p.Flat, p.Rows, dim), c)
			for local, dead := range p.Deleted {
				if dead && local < p.Rows {
					st.idx.Delete(local)
				}
			}
		}(st, p)
	}
	wg.Wait()
	s.workers = make(chan struct{}, runtime.GOMAXPROCS(0))
	s.pool.New = func() interface{} { return s.NewSearcher() }
	return s
}

// Shards returns the number of shards.
func (s *Set) Shards() int { return len(s.shards) }

// Dim returns the vector dimensionality.
func (s *Set) Dim() int { return s.dim }

// Params returns the resolved build configuration (base seed), reflecting
// any operational override applied since the build (SetQuantize).
func (s *Set) Params() core.Config {
	c := s.cfg
	c.Quantize = s.quantizeSetting()
	return c
}

// SetQuantize applies a quantized pre-filter setting to every shard and to
// the configuration future compactions rebuild from. The restore paths use
// it: the setting is operational, not persisted. Safe to call at any time,
// including under concurrent searches, mutations and compactions: the
// shared setting lives behind an atomic (compaction re-reads it at swap
// time, so a rebuild racing the change still installs the latest setting)
// and each shard's mirror flips under that shard's write lock.
func (s *Set) SetQuantize(q string) {
	s.quantize.Store(&q)
	for _, st := range s.shards {
		st.mu.Lock()
		st.idx.SetQuantize(q)
		st.mu.Unlock()
	}
}

// quantizeSetting returns the effective pre-filter setting: the last
// SetQuantize override, or the build-time configuration.
func (s *Set) quantizeSetting() string {
	if p := s.quantize.Load(); p != nil {
		return *p
	}
	return s.cfg.Quantize
}

// SetParallelism replaces the set-level per-query fan-out setting: 0 lets
// each query pick min(GOMAXPROCS, shards) (the auto policy), 1 forces the
// sequential reference path, n > 1 uses up to n workers per round. Safe to
// call at any time; in-flight queries keep the width they resolved at
// entry. Like the compaction threshold it is operational, not persisted.
func (s *Set) SetParallelism(n int) { s.par.Store(int64(n)) }

// Parallelism returns the set-level fan-out setting (0 = auto).
func (s *Set) Parallelism() int { return int(s.par.Load()) }

// EffectiveParallelism reports the fan-out width a query with no per-query
// override would use right now.
func (s *Set) EffectiveParallelism() int { return s.resolveParallelism(0) }

// resolveParallelism turns a per-query override (0 inherit, -1 auto, n ≥ 1
// explicit) into the effective fan-out width: at least 1, at most the shard
// count, defaulting to GOMAXPROCS under the auto policy.
func (s *Set) resolveParallelism(req int) int {
	v := req
	if v == 0 {
		v = int(s.par.Load())
	}
	if v <= 0 {
		v = runtime.GOMAXPROCS(0)
	}
	if v > len(s.shards) {
		v = len(s.shards)
	}
	if v < 1 {
		v = 1
	}
	return v
}

// NextID returns the global-id-space bound: every id ever returned by Add
// (and every build-time id) is below it.
func (s *Set) NextID() int { return int(s.nextID.Load()) }

// Len returns the number of resident vectors (live + tombstoned) across all
// shards. It never exceeds NextID but can fall short of it: compaction
// reclaims tombstoned rows, a snapshot taken while an Add was between id
// allocation and shard insertion reloads with that id as a hole, and WAL
// replay skips records whose rows were lost to an unsynced tail — in every
// case the missing ids stay unallocated forever rather than being reused.
func (s *Set) Len() int {
	n := 0
	for _, st := range s.shards {
		st.mu.RLock()
		n += st.idx.Size()
		st.mu.RUnlock()
	}
	return n
}

// Deleted returns the number of tombstoned vectors across all shards.
func (s *Set) Deleted() int {
	n := 0
	for _, st := range s.shards {
		st.mu.RLock()
		n += st.idx.Deleted()
		st.mu.RUnlock()
	}
	return n
}

// IndexSizeBytes sums the per-shard projection and tree footprints.
func (s *Set) IndexSizeBytes() int64 {
	var b int64
	for _, st := range s.shards {
		st.mu.RLock()
		b += st.idx.IndexSizeBytes()
		st.mu.RUnlock()
	}
	return b
}

// Add inserts a vector and returns its global id. Only the owning shard is
// write-locked; searches on the other shards proceed untouched.
func (s *Set) Add(v []float32) int {
	if len(v) != s.dim {
		panic(fmt.Sprintf("shard: insert dim %d, index dim %d", len(v), s.dim))
	}
	g := int(s.nextID.Add(1)) - 1
	stride := len(s.shards)
	st := s.shards[g%stride]
	st.mu.Lock()
	if st.localOf == nil && g != len(st.globals)*stride+st.offset {
		// A concurrent Add with a later id won the lock first: the stripe
		// pattern is broken for good, switch to the explicit map.
		st.materialize()
	}
	local := st.idx.Insert(v)
	st.globals = append(st.globals, g)
	if st.localOf != nil {
		st.localOf[g] = local
	}
	st.mu.Unlock()
	return g
}

// AddAt inserts v under the specific global id g, advancing the id
// allocator past g so no future Add can collide with it. It is the WAL
// replay primitive: a logged Add must land under the id it was acknowledged
// with, and replaying it twice (the record may describe a row the
// checkpoint already contains) must be a no-op, so AddAt reports false and
// inserts nothing when g is already resident. Like Add it write-locks only
// the owning shard.
func (s *Set) AddAt(g int, v []float32) bool {
	if len(v) != s.dim {
		panic(fmt.Sprintf("shard: insert dim %d, index dim %d", len(v), s.dim))
	}
	if g < 0 {
		panic(fmt.Sprintf("shard: negative global id %d", g))
	}
	for {
		cur := s.nextID.Load()
		if cur > int64(g) {
			break
		}
		if s.nextID.CompareAndSwap(cur, int64(g)+1) {
			break
		}
	}
	stride := len(s.shards)
	st := s.shards[g%stride]
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.local(g, stride) >= 0 {
		return false // already resident (live or tombstoned)
	}
	if st.localOf == nil && g != len(st.globals)*stride+st.offset {
		st.materialize()
	}
	local := st.idx.Insert(v)
	st.globals = append(st.globals, g)
	if st.localOf != nil {
		st.localOf[g] = local
	}
	return true
}

// Live reports whether global id g is resident and not tombstoned — i.e.
// whether a Delete of g would succeed. The durability layer consults it
// before logging a Delete record, so the op log never carries records for
// mutations that were going to be no-ops.
func (s *Set) Live(g int) bool {
	if g < 0 || g >= int(s.nextID.Load()) {
		return false
	}
	st := s.shards[g%len(s.shards)]
	st.mu.RLock()
	defer st.mu.RUnlock()
	l := st.local(g, len(s.shards))
	return l >= 0 && !st.idx.IsDeleted(l)
}

// Delete tombstones global id g, returning false when g was never
// allocated, is already tombstoned, or was reclaimed by a compaction. Only
// the owning shard is write-locked. When the set was built with a
// compaction threshold, crossing it schedules a background compaction of
// the affected shard.
func (s *Set) Delete(g int) bool {
	if g < 0 || g >= int(s.nextID.Load()) {
		return false
	}
	st := s.shards[g%len(s.shards)]
	st.mu.Lock()
	l := st.local(g, len(s.shards))
	deleted := l >= 0 && st.idx.Delete(l)
	var size, dead int
	if deleted {
		size, dead = st.idx.Size(), st.idx.Deleted()
	}
	st.mu.Unlock()
	if deleted {
		s.maybeAutoCompact(st, size, dead)
	}
	return deleted
}

func (s *Set) maybeAutoCompact(st *state, size, dead int) {
	frac := s.CompactFraction()
	if frac <= 0 || size < autoCompactMinRows {
		return
	}
	if float64(dead) < frac*float64(size) {
		return
	}
	if !st.compacting.CompareAndSwap(false, true) {
		return // one compaction of this shard at a time
	}
	go func() {
		defer st.compacting.Store(false)
		s.compactState(st)
	}()
}

// CompactShard rebuilds shard i from its live rows, dropping all tombstones
// while every shard — including i itself — keeps serving. Global ids are
// preserved. It returns the number of tombstones reclaimed (0 when the
// shard was clean).
//
// The rebuild is online: the shard is snapshotted under a read lock
// (searches unaffected, mutations to this shard wait only for the row
// copy), the replacement index is built with no locks held, and the write
// lock is taken just long enough to replay the mutations that raced the
// build and swap the index in.
func (s *Set) CompactShard(i int) int {
	return s.compactState(s.shards[i])
}

func (s *Set) compactState(st *state) int {
	st.compactMu.Lock()
	defer st.compactMu.Unlock()

	// Snapshot the live rows under the read lock.
	st.mu.RLock()
	old := st.idx
	if old.Deleted() == 0 {
		st.mu.RUnlock()
		return 0
	}
	start := time.Now()
	defer func() {
		if m := s.metrics.Load(); m != nil {
			m.CompactionRuns.Inc()
			m.CompactionSeconds.Observe(time.Since(start).Seconds())
		}
	}()
	live, oldLocals := old.LiveRows()
	snapGlobals := make([]int, len(oldLocals))
	for j, ol := range oldLocals {
		snapGlobals[j] = st.globals[ol]
	}
	snapSize := old.Size()
	st.mu.RUnlock()

	// Rebuild with no locks held; the shard serves reads and writes
	// throughout. compactMu keeps concurrent compactions of this shard
	// from racing each other, so old == st.idx still holds at swap time.
	c := s.cfg
	c.Seed = st.seed
	c.InitialRadius = 0 // re-estimate from the compacted content
	c.Quantize = s.quantizeSetting()
	fresh := core.Build(live, c)

	// Swap under the write lock, replaying whatever raced the build: rows
	// appended after the snapshot, and tombstones laid on snapshot rows.
	st.mu.Lock()
	defer st.mu.Unlock()
	if q := s.quantizeSetting(); q != c.Quantize {
		// A SetQuantize raced the rebuild: it already flipped (or is about
		// to flip, once we release the write lock) the index we are
		// discarding, so apply the latest setting to the replacement before
		// it becomes visible.
		fresh.SetQuantize(q)
	}
	for j, ol := range oldLocals {
		if old.IsDeleted(ol) {
			fresh.Delete(j)
		}
	}
	newGlobals := snapGlobals
	for local := snapSize; local < old.Size(); local++ {
		nl := fresh.Insert(old.Data().Row(local))
		newGlobals = append(newGlobals, st.globals[local])
		if old.IsDeleted(local) {
			fresh.Delete(nl)
		}
	}
	reclaimed := old.Size() - fresh.Size()
	st.idx = fresh
	st.globals = newGlobals
	st.localOf = nil
	st.materialize()
	st.compactions++
	st.lastCompaction = time.Now()
	return reclaimed
}

// Compact compacts every shard in turn and returns the total number of
// tombstones reclaimed. At most one shard is rebuilding at any moment, and
// even that shard keeps serving (see CompactShard).
func (s *Set) Compact() int {
	total := 0
	for _, st := range s.shards {
		total += s.compactState(st)
	}
	return total
}

// Info describes one shard's current state.
type Info struct {
	Shard          int
	Size           int // resident vectors (live + tombstoned)
	Live           int
	Deleted        int
	Compactions    int
	LastCompaction time.Time // zero until the first compaction
	IndexSizeBytes int64
}

// Infos reports per-shard statistics.
func (s *Set) Infos() []Info {
	out := make([]Info, len(s.shards))
	for i, st := range s.shards {
		st.mu.RLock()
		out[i] = Info{
			Shard:          i,
			Size:           st.idx.Size(),
			Live:           st.idx.Live(),
			Deleted:        st.idx.Deleted(),
			Compactions:    st.compactions,
			LastCompaction: st.lastCompaction,
			IndexSizeBytes: st.idx.IndexSizeBytes(),
		}
		st.mu.RUnlock()
	}
	return out
}

// SnapshotShard copies shard i's resident rows whose global id is below
// maxID into a self-contained Part. Persistence streams a snapshot one
// shard at a time — each copy holds only that shard's read lock, briefly,
// so serializing a large index never stalls traffic index-wide. Capturing
// maxID (NextID) before the first copy makes the resulting file a
// consistent cut of the id space: an Add racing the snapshot either has an
// id ≥ maxID and is filtered out everywhere, or is simply not yet resident
// and absent, which reads back as a benign id-space hole.
func (s *Set) SnapshotShard(i int, maxID int) Part {
	st := s.shards[i]
	st.mu.RLock()
	defer st.mu.RUnlock()
	data := st.idx.Data()
	bits := st.idx.DeletedBits()
	rows := 0
	for _, g := range st.globals {
		if g < maxID {
			rows++
		}
	}
	p := Part{
		Rows:    rows,
		R0:      st.idx.InitialRadius(),
		Flat:    make([]float32, 0, rows*s.dim),
		Globals: make([]int, 0, rows),
	}
	for j, g := range st.globals {
		if g >= maxID {
			continue
		}
		p.Flat = append(p.Flat, data.Row(j)...)
		p.Globals = append(p.Globals, g)
		if j < len(bits) && bits[j] {
			if p.Deleted == nil {
				p.Deleted = make([]bool, rows)
			}
			p.Deleted[len(p.Globals)-1] = true
		}
	}
	return p
}

// checkQuery enforces the library's panic contract for programmer errors.
func (s *Set) checkQuery(q []float32, k int) {
	if len(q) != s.dim {
		panic(fmt.Sprintf("shard: query dim %d, index dim %d", len(q), s.dim))
	}
	if k <= 0 {
		panic("shard: k must be positive")
	}
}

// withLocalFilter rewrites a global-id filter into the shard's local ids.
func withLocalFilter(p core.QueryParams, globals []int) core.QueryParams {
	if p.Filter == nil {
		return p
	}
	keep := p.Filter
	q := p
	q.Filter = func(local int) bool { return keep(globals[local]) }
	return q
}

// mapNeighbors translates local-id results to global ids into a new slice.
func mapNeighbors(nbs []vec.Neighbor, globals []int) []vec.Neighbor {
	out := make([]vec.Neighbor, len(nbs))
	for i, nb := range nbs {
		out[i] = vec.Neighbor{ID: globals[nb.ID], Dist: nb.Dist}
	}
	return out
}

// Searcher is a reusable query context holding one core searcher per shard.
// It must be used from one goroutine at a time. On a multi-shard set a
// query runs the radius ladder round-synchronized: every shard executes the
// same round r, cr, c²r, … under its own read lock, the per-round
// candidates merge into one global top-k, and the budget (2tL+k) and the
// termination test apply to that merged state — the paper's work profile,
// partitioned, instead of S independent full-cost ladders.
type Searcher struct {
	set  *Set
	per  []*core.Searcher
	seen []*core.Index // which core index each searcher is bound to
	last core.Stats

	// Per-query coordinator state, reused across queries. The per-shard
	// slices are indexed by shard and, during a parallel round, written
	// only by the single worker that drew that shard, so the round's
	// WaitGroup barrier is the only synchronization they need.
	began  []bool        // shard i's searcher saw Begin for this query
	seenG  map[int]bool  // global-id dedup across a mid-query index swap
	carry  []carryStats  // per shard: counters of searchers discarded mid-query
	arenas []gatherArena // per shard: parallel-round gather buffers
}

// carryStats holds the traversal counters of a core searcher that a
// mid-query compaction swap discarded, folded into the query's stats. Kept
// per shard so parallel gathers never write a shared counter.
type carryStats struct {
	nodes       int
	quantPruned int
	quantSwept  int
}

// gatherArena is one shard's per-round candidate buffer for the parallel
// fan-out, reused across rounds and queries.
type gatherArena struct {
	ids     []int     // global ids, shard emission order
	dists   []float64 // exact distances (or +Inf for pruned rows), parallel to ids
	covered bool      // the shard's next-radius window covers its whole stripe
	nanos   int64     // wall time of this shard's gather, lock wait included
}

// NewSearcher returns a searcher bound to the set. Per-shard core searchers
// are created lazily and transparently replaced when a compaction swaps a
// shard's underlying index. An idle searcher (e.g. parked in a pool) keeps
// the index it last touched reachable until its next use or until the pool
// is dropped by GC — a deliberate trade: releasing eagerly would need weak
// references threaded through the core searcher, and the retention is
// bounded by two GC cycles for pooled searchers.
func (s *Set) NewSearcher() *Searcher {
	return &Searcher{
		set:   s,
		per:   make([]*core.Searcher, len(s.shards)),
		seen:  make([]*core.Index, len(s.shards)),
		began: make([]bool, len(s.shards)),
		carry: make([]carryStats, len(s.shards)),
	}
}

// searcherFor returns the core searcher for shard i, rebinding it if a
// compaction replaced the shard's index. Callers hold the shard's lock.
//
// dblsh:locked mu
func (sr *Searcher) searcherFor(i int) *core.Searcher {
	st := sr.set.shards[i]
	if sr.seen[i] != st.idx {
		if sr.began[i] && sr.per[i] != nil {
			// A swap mid-query discards the old searcher; carry its
			// traversal and pre-filter counters so the query's stats stay
			// complete.
			old := sr.per[i].LastStats()
			sr.carry[i].nodes += old.NodesVisited
			sr.carry[i].quantPruned += old.QuantPruned
			sr.carry[i].quantSwept += old.QuantSwept
		}
		sr.per[i] = st.idx.NewSearcher()
		sr.seen[i] = st.idx
		sr.began[i] = false // a swapped index needs a fresh Begin
	}
	return sr.per[i]
}

// LastStats reports the most recent query's aggregated statistics:
// candidates verified across all shards, coordinated rounds run, and the
// final radius of the shared ladder.
func (sr *Searcher) LastStats() core.Stats { return sr.last }

// Search answers a (c,k)-ANN query. A non-nil error (context expiry) still
// comes with the best candidates found before cancellation.
func (sr *Searcher) Search(q []float32, k int, p core.QueryParams) ([]vec.Neighbor, error) {
	s := sr.set
	s.checkQuery(q, k)
	if len(s.shards) == 1 {
		// Single shard: the classic one-index ladder, bit-identical to the
		// unsharded library.
		st := s.shards[0]
		st.mu.RLock()
		cs := sr.searcherFor(0)
		nbs, err := cs.KANNParams(q, k, withLocalFilter(p, st.globals))
		sr.last = cs.LastStats()
		mapped := mapNeighbors(nbs, st.globals)
		st.mu.RUnlock()
		return mapped, err
	}
	return sr.searchCoordinated(q, k, p)
}

// searchCoordinated runs Algorithm 2 with the rounds fanned out across
// shards: one shared radius schedule, one merged top-k, one budget, one
// termination test. Shard locks are taken per round, so a mutation waits at
// most one round and a search waits at most one mutation per shard round.
func (sr *Searcher) searchCoordinated(q []float32, k int, p core.QueryParams) ([]vec.Neighbor, error) {
	s := sr.set
	t, stopFactor := p.Resolve(s.cfg)
	stopC := stopFactor * s.cfg.C
	budget := 2*t*s.cfg.L + k
	if p.Budget > 0 {
		budget = p.Budget // same absolute-override semantics as core
	}
	c := s.cfg.C

	sr.last = core.Stats{}
	for i := range sr.began {
		sr.began[i] = false
		sr.carry[i] = carryStats{}
	}
	if sr.seenG == nil {
		sr.seenG = make(map[int]bool)
	} else {
		clear(sr.seenG)
	}
	if p.Cancelled() {
		return nil, p.Ctx.Err()
	}

	// Start the ladder at the smallest per-shard radius estimate: starting
	// low only costs a few cheap extra rounds (cf. core's estimate).
	r := math.Inf(1)
	live, resident := 0, 0
	for _, st := range s.shards {
		st.mu.RLock()
		if r0 := st.idx.InitialRadius(); r0 < r {
			r = r0
		}
		live += st.idx.Live()
		resident += st.idx.Size()
		st.mu.RUnlock()
	}
	if resident == 0 {
		return nil, nil
	}

	cand := vec.NewTopK(k)
	cnt := 0
	par := s.resolveParallelism(p.Parallelism)
	round := func(r float64, sweep bool) (done, covered bool) {
		if par > 1 {
			cnt, done, covered = sr.runRoundParallel(q, r, p, cand, budget, cnt, stopC, sweep, par)
		} else {
			cnt, done, covered = sr.runRound(q, r, p, cand, budget, cnt, stopC, sweep)
		}
		return done, covered
	}
	for {
		if p.MaxRadius > 0 && r > p.MaxRadius {
			break
		}
		if p.Cancelled() {
			sr.last.Candidates = cnt
			sr.finishTraversalStats()
			return cand.Results(), p.Ctx.Err()
		}
		sr.last.Rounds++
		done, covered := round(r, false)
		sr.last.FinalR = r
		if done {
			break
		}
		if worst, full := cand.Worst(); full && worst <= stopC*r {
			break
		}
		if cnt >= live {
			break // every live point verified: the result is exact
		}
		r *= c
		if p.MaxRadius > 0 && r > p.MaxRadius {
			break
		}
		if covered {
			// The round just run reported (under the same lock holds) that
			// the next window contains every projected point everywhere;
			// run one final full sweep and stop.
			round(r, true)
			break
		}
	}
	sr.last.Candidates = cnt
	sr.finishTraversalStats()
	return cand.Results(), nil
}

// finishTraversalStats folds the per-shard searchers' traversal and
// pre-filter counters into the merged stats: nodes visited and quantized
// pre-filter activity across every shard's trees (including searchers a
// mid-query compaction swap discarded), and the residual frontier size of
// every cursor the query armed.
func (sr *Searcher) finishTraversalStats() {
	for i := range sr.set.shards {
		sr.last.NodesVisited += sr.carry[i].nodes
		sr.last.QuantPruned += sr.carry[i].quantPruned
		sr.last.QuantSwept += sr.carry[i].quantSwept
		if sr.began[i] && sr.per[i] != nil {
			st := sr.per[i].LastStats()
			sr.last.NodesVisited += st.NodesVisited
			sr.last.QuantPruned += st.QuantPruned
			sr.last.QuantSwept += st.QuantSwept
			sr.last.Frontier += sr.per[i].FrontierLen()
		}
	}
}

// runRound executes one ladder round (or the final sweep) across the
// shards in order, verifying candidates straight into the global top-k
// exactly as a monolithic index spends its budget across its L trees: the
// core hands candidates over in batched-kernel-verified blocks (pruned
// against the global k-th best via worst), and the budget and (for ladder
// rounds) the early-termination test are consulted per candidate within
// each block, so the round stops mid-block the moment either fires and no
// shard's share of the budget is wasted when the live data is skewed.
// Visit order is fixed, so results are deterministic; a shard's lock is
// held only for its slice of the round. This sequential path is the
// reference the parallel fan-out (runRoundParallel) must match
// bit-for-bit. It returns the updated candidate count, whether the query
// is finished, and whether every shard's window at the next radius r·C
// covers its whole projected stripe (checked under the same lock hold, so
// a round never takes a shard's lock twice; meaningful only when the query
// is not finished and the round was not a sweep).
func (sr *Searcher) runRound(q []float32, r float64, p core.QueryParams, cand *vec.TopK, budget, cnt int, stopC float64, sweep bool) (int, bool, bool) {
	s := sr.set
	done := false
	covered := !sweep
	worst := func() float64 {
		if w, full := cand.Worst(); full {
			return w
		}
		return math.Inf(1)
	}
	for i, st := range s.shards {
		if done {
			covered = false
			break
		}
		st.mu.RLock()
		cs := sr.searcherFor(i)
		if !sr.began[i] {
			cs.Begin(q)
			sr.began[i] = true
		}
		lp := withLocalFilter(p, st.globals)
		emit := func(ids []int, dists []float64) (int, bool) {
			for j, id := range ids {
				g := st.globals[id]
				if sr.seenG[g] {
					// A compaction swapping this shard mid-query reset its
					// visited stamps; don't count the same point twice.
					continue
				}
				sr.seenG[g] = true
				cand.Push(g, dists[j])
				cnt++
				if cnt >= budget {
					done = true
					return j + 1, true
				}
				if w, full := cand.Worst(); !sweep && full && w <= stopC*r {
					done = true
					return j + 1, true
				}
			}
			return len(ids), false
		}
		if sweep {
			cs.Sweep(q, lp.Filter, worst, emit)
		} else {
			cs.RunRound(q, r, lp.Filter, worst, emit)
			covered = covered && !done && cs.Covers(r*s.cfg.C)
		}
		st.mu.RUnlock()
	}
	return cnt, done, covered
}

// runRoundParallel executes one ladder round (or the final sweep) with the
// per-shard visits fanned out across the set's bounded worker pool, then
// merges the gathered candidates in fixed shard order. The merge applies
// the cross-swap dedup, the global budget and (for ladder rounds) the
// early-termination test candidate by candidate, exactly as runRound does,
// so it replays the sequential consume sequence and every downstream ladder
// decision — and therefore the result set — is bit-identical to the
// sequential path's. Each gather prunes against the top-k bound frozen at
// round entry (sound: a stale bound is only ever looser, see the package
// comment) and self-caps at the round's remaining budget in fresh
// candidates — the most the merge could possibly consume from one shard —
// which also keeps a parallel sweep from verifying whole stripes the
// budget could never pay for. Return values are runRound's.
func (sr *Searcher) runRoundParallel(q []float32, r float64, p core.QueryParams, cand *vec.TopK, budget, cnt int, stopC float64, sweep bool, par int) (int, bool, bool) {
	s := sr.set
	bound := math.Inf(1)
	if w, full := cand.Worst(); full {
		bound = w
	}
	remaining := budget - cnt
	if sr.arenas == nil {
		sr.arenas = make([]gatherArena, len(s.shards))
	}
	// Workers draw shard indices from a shared counter; which worker
	// gathers which shard is irrelevant, because only the merge order
	// below determines the outcome. seenG is read by the gathers and
	// written only by the merge, which the WaitGroup barrier orders after
	// every gather.
	var next atomic.Int64
	gather := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(s.shards) {
				return
			}
			sr.gatherShard(i, q, r, p, bound, remaining, sweep)
		}
	}
	// The coordinator gathers inline without a token, so the round makes
	// progress even when the set-level pool is drained by other queries.
	var wg sync.WaitGroup
	for h := 1; h < par; h++ {
		acquired := false
		select {
		case s.workers <- struct{}{}:
			acquired = true
		default:
		}
		if !acquired {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-s.workers }()
			gather()
		}()
	}
	gather()
	wg.Wait()

	done := false
	covered := !sweep
	var straggler int64
	for i := range s.shards {
		a := &sr.arenas[i]
		if a.nanos > straggler {
			straggler = a.nanos
		}
		covered = covered && a.covered
		if done {
			continue
		}
		for j, g := range a.ids {
			if sr.seenG[g] {
				continue
			}
			sr.seenG[g] = true
			cand.Push(g, a.dists[j])
			cnt++
			if cnt >= budget {
				done = true
				break
			}
			if w, full := cand.Worst(); !sweep && full && w <= stopC*r {
				done = true
				break
			}
		}
	}
	sr.last.ParallelRounds++
	sr.last.StragglerNanos += straggler
	return cnt, done, covered && !done
}

// gatherShard runs shard i's slice of one parallel round under the shard's
// read lock, collecting every emitted candidate into the shard's arena.
// The gather stops once it holds `limit` fresh (not yet merged) candidates:
// past that point the merge is guaranteed to exhaust the global budget
// before reaching them. Candidates handed back by a mid-block stop are
// un-consumed in the cursor (flushBlock's contract), and candidates left
// unmerged cannot leak into later rounds because any merge stop ends the
// whole query.
func (sr *Searcher) gatherShard(i int, q []float32, r float64, p core.QueryParams, bound float64, limit int, sweep bool) {
	s := sr.set
	st := s.shards[i]
	a := &sr.arenas[i]
	a.ids = a.ids[:0]
	a.dists = a.dists[:0]
	a.covered = false
	start := time.Now()
	st.mu.RLock()
	cs := sr.searcherFor(i)
	if !sr.began[i] {
		cs.Begin(q)
		sr.began[i] = true
	}
	lp := withLocalFilter(p, st.globals)
	fresh := 0
	emit := func(ids []int, dists []float64) (int, bool) {
		for j, id := range ids {
			g := st.globals[id]
			a.ids = append(a.ids, g)
			a.dists = append(a.dists, dists[j])
			if !sr.seenG[g] {
				if fresh++; fresh >= limit {
					return j + 1, true
				}
			}
		}
		return len(ids), false
	}
	worst := func() float64 { return bound }
	if sweep {
		cs.Sweep(q, lp.Filter, worst, emit)
	} else {
		cs.RunRound(q, r, lp.Filter, worst, emit)
		a.covered = cs.Covers(r * s.cfg.C)
	}
	st.mu.RUnlock()
	a.nanos = time.Since(start).Nanoseconds()
}

// SearchRadius answers a single (r,c)-NN round (Algorithm 1), probing the
// shards in order with one shared candidate budget (2tL+1 in total, not
// per shard) and returning the first qualifying point — the same "any
// point within c·r" contract, early exit and worst-case work profile as
// the single-index primitive.
func (sr *Searcher) SearchRadius(q []float32, r float64, p core.QueryParams) (vec.Neighbor, bool, error) {
	s := sr.set
	s.checkQuery(q, 1)
	t, _ := p.Resolve(s.cfg)
	remaining := 2*t*s.cfg.L + 1
	agg := core.Stats{Rounds: 1, FinalR: r}
	for i, st := range s.shards {
		if remaining <= 0 {
			break
		}
		st.mu.RLock()
		cs := sr.searcherFor(i)
		lp := withLocalFilter(p, st.globals)
		lp.Budget = remaining
		nb, ok, err := cs.RNearParams(q, r, lp)
		if ok {
			nb.ID = st.globals[nb.ID]
		}
		cst := cs.LastStats()
		spent := cst.Candidates
		agg.NodesVisited += cst.NodesVisited
		agg.QuantPruned += cst.QuantPruned
		agg.QuantSwept += cst.QuantSwept
		st.mu.RUnlock()
		agg.Candidates += spent
		remaining -= spent
		if err != nil || ok {
			sr.last = agg
			return nb, ok, err
		}
	}
	sr.last = agg
	return vec.Neighbor{}, false, nil
}

// Search answers a single (c,k)-ANN query through a pooled searcher.
func (s *Set) Search(q []float32, k int, p core.QueryParams) ([]vec.Neighbor, core.Stats, error) {
	sr := s.pool.Get().(*Searcher)
	defer s.pool.Put(sr)
	nbs, err := sr.Search(q, k, p)
	return nbs, sr.last, err
}

// SearchRadius answers a single (r,c)-NN query through a pooled searcher.
func (s *Set) SearchRadius(q []float32, r float64, p core.QueryParams) (vec.Neighbor, bool, core.Stats, error) {
	sr := s.pool.Get().(*Searcher)
	defer s.pool.Put(sr)
	nb, ok, err := sr.SearchRadius(q, r, p)
	return nb, ok, sr.last, err
}

// SearchBatch answers many queries across GOMAXPROCS workers, each with its
// own Searcher. results[i] and stats[i] correspond to queries[i]; a query
// skipped after a context expiry leaves a nil result. The first error
// encountered is returned alongside the queries already answered.
func (s *Set) SearchBatch(queries [][]float32, k int, p core.QueryParams) ([][]vec.Neighbor, []core.Stats, error) {
	out := make([][]vec.Neighbor, len(queries))
	stats := make([]core.Stats, len(queries))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers <= 1 {
		var firstErr error
		sr := s.pool.Get().(*Searcher)
		defer s.pool.Put(sr)
		for i := range queries {
			nbs, err := sr.Search(queries[i], k, p)
			if err != nil {
				// Keep answering the remaining queries, exactly like the
				// parallel path below: which queries a batch answers must
				// not depend on the worker count, and once a context is
				// cancelled the rest are near-free anyway.
				if firstErr == nil {
					firstErr = err
				}
				continue // out[i] stays nil: not answered
			}
			out[i] = nbs
			stats[i] = sr.last
		}
		return out, stats, firstErr
	}

	var firstErr error
	var mu sync.Mutex
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sr := s.NewSearcher()
			// Keep draining after an error so the feeder never blocks; once
			// a context is cancelled the remaining queries are near-free.
			for i := range next {
				nbs, err := sr.Search(queries[i], k, p)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				out[i] = nbs
				stats[i] = sr.last
			}
		}()
	}
	for i := range queries {
		next <- i
	}
	close(next)
	wg.Wait()
	return out, stats, firstErr
}
