package shard

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"dblsh/internal/core"
)

// corpus generates clustered data as a flat row-major slice plus queries.
func corpus(n, d int, seed int64) ([]float32, [][]float32) {
	rng := rand.New(rand.NewSource(seed))
	const clusters = 16
	centers := make([][]float32, clusters)
	for i := range centers {
		c := make([]float32, d)
		for j := range c {
			c[j] = float32(rng.NormFloat64() * 10)
		}
		centers[i] = c
	}
	flat := make([]float32, n*d)
	for i := 0; i < n; i++ {
		c := centers[rng.Intn(clusters)]
		for j := 0; j < d; j++ {
			flat[i*d+j] = c[j] + float32(rng.NormFloat64())
		}
	}
	queries := make([][]float32, 10)
	for qi := range queries {
		c := centers[rng.Intn(clusters)]
		q := make([]float32, d)
		for j := range q {
			q[j] = c[j] + float32(rng.NormFloat64())
		}
		queries[qi] = q
	}
	return flat, queries
}

func buildSet(n, d, shards int, seed int64) (*Set, []float32, [][]float32) {
	flat, queries := corpus(n, d, seed)
	s := Build(flat, n, d, shards, 0, core.Config{K: 6, L: 3, T: 40, Seed: seed})
	return s, flat, queries
}

func bruteNN(flat []float32, n, d int, q []float32, k int, skip func(int) bool) []int {
	type pair struct {
		id int
		dd float64
	}
	best := make([]pair, 0, n)
	for i := 0; i < n; i++ {
		if skip != nil && skip(i) {
			continue
		}
		var s float64
		for j := 0; j < d; j++ {
			dd := float64(q[j]) - float64(flat[i*d+j])
			s += dd * dd
		}
		best = append(best, pair{i, s})
	}
	for i := 0; i < k && i < len(best); i++ {
		minJ := i
		for j := i + 1; j < len(best); j++ {
			if best[j].dd < best[minJ].dd {
				minJ = j
			}
		}
		best[i], best[minJ] = best[minJ], best[i]
	}
	ids := make([]int, 0, k)
	for i := 0; i < k && i < len(best); i++ {
		ids = append(ids, best[i].id)
	}
	return ids
}

func TestStripedBuildRoutesIDs(t *testing.T) {
	const n, d, S = 900, 12, 4
	s, flat, _ := buildSet(n, d, S, 7)
	if s.Shards() != S || s.Len() != n || s.NextID() != n || s.Dim() != d {
		t.Fatalf("set shape: shards=%d len=%d next=%d dim=%d",
			s.Shards(), s.Len(), s.NextID(), s.Dim())
	}
	// Every original row must come back under its global id on self-query.
	for _, g := range []int{0, 1, 2, 3, 5, 123, 877, n - 1} {
		q := flat[g*d : (g+1)*d]
		nbs, _, err := s.Search(q, 1, core.QueryParams{})
		if err != nil || len(nbs) != 1 {
			t.Fatalf("self-query %d: %v %v", g, nbs, err)
		}
		if nbs[0].ID != g || nbs[0].Dist != 0 {
			t.Fatalf("self-query %d returned %+v", g, nbs[0])
		}
	}
}

func TestAddDeleteRouting(t *testing.T) {
	const n, d, S = 300, 8, 3
	s, _, _ := buildSet(n, d, S, 8)
	v := make([]float32, d)
	for j := range v {
		v[j] = 500
	}
	id := s.Add(v)
	if id != n {
		t.Fatalf("Add returned %d, want %d", id, n)
	}
	nbs, _, _ := s.Search(v, 1, core.QueryParams{})
	if len(nbs) != 1 || nbs[0].ID != id || nbs[0].Dist != 0 {
		t.Fatalf("added vector not found: %+v", nbs)
	}
	if !s.Delete(id) {
		t.Fatal("Delete of fresh id failed")
	}
	if s.Delete(id) {
		t.Fatal("double Delete succeeded")
	}
	if s.Delete(-1) || s.Delete(s.NextID()) {
		t.Fatal("out-of-range Delete succeeded")
	}
	if s.Deleted() != 1 {
		t.Fatalf("Deleted = %d", s.Deleted())
	}
	nbs, _, _ = s.Search(v, 1, core.QueryParams{})
	if len(nbs) == 1 && nbs[0].ID == id {
		t.Fatal("deleted vector still returned")
	}
}

// TestShardMergeMatchesSingleShard is the merge-correctness check: the same
// corpus indexed with 1 and with 5 shards must agree on exact self-hits and
// reach comparable recall against brute-force truth.
func TestShardMergeMatchesSingleShard(t *testing.T) {
	const n, d, k = 4000, 24, 10
	flat, queries := corpus(n, d, 21)
	cfg := core.Config{K: 8, L: 4, T: 100, Seed: 21}
	single := Build(flat, n, d, 1, 0, cfg)
	sharded := Build(flat, n, d, 5, 0, cfg)

	recall := func(s *Set) float64 {
		total := 0.0
		for _, q := range queries {
			truth := map[int]bool{}
			for _, id := range bruteNN(flat, n, d, q, k, nil) {
				truth[id] = true
			}
			nbs, _, err := s.Search(q, k, core.QueryParams{})
			if err != nil {
				t.Fatal(err)
			}
			if len(nbs) != k {
				t.Fatalf("%d results, want %d", len(nbs), k)
			}
			for i := 1; i < len(nbs); i++ {
				if nbs[i].Dist < nbs[i-1].Dist {
					t.Fatal("merged results not sorted")
				}
			}
			hit := 0
			for _, nb := range nbs {
				if truth[nb.ID] {
					hit++
				}
			}
			total += float64(hit) / float64(k)
		}
		return total / float64(len(queries))
	}

	rs, rm := recall(single), recall(sharded)
	if rm < rs-0.1 || rm < 0.8 {
		t.Fatalf("sharded recall %v too far below single-shard %v", rm, rs)
	}
	// Exact self-hits must agree bit-for-bit across layouts.
	for g := 0; g < n; g += 251 {
		q := flat[g*d : (g+1)*d]
		a, _, _ := single.Search(q, 1, core.QueryParams{})
		b, _, _ := sharded.Search(q, 1, core.QueryParams{})
		if len(a) != 1 || len(b) != 1 || a[0].ID != b[0].ID || a[0].Dist != 0 || b[0].Dist != 0 {
			t.Fatalf("self-hit %d diverges: %+v vs %+v", g, a, b)
		}
	}
}

func TestSearchBatchMatchesSingleQueries(t *testing.T) {
	const n, d, k = 2000, 16, 5
	s, _, queries := buildSet(n, d, 4, 31)
	batch, stats, err := s.SearchBatch(queries, k, core.QueryParams{})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		one, _, err := s.Search(q, k, core.QueryParams{})
		if err != nil {
			t.Fatal(err)
		}
		if len(batch[i]) != len(one) {
			t.Fatalf("query %d: batch %d vs single %d results", i, len(batch[i]), len(one))
		}
		for j := range one {
			if one[j] != batch[i][j] {
				t.Fatalf("query %d rank %d: %+v vs %+v", i, j, one[j], batch[i][j])
			}
		}
		if stats[i].Candidates == 0 {
			t.Fatalf("query %d: empty stats", i)
		}
	}
}

func TestGlobalFilterAcrossShards(t *testing.T) {
	const n, d = 1000, 8
	s, flat, _ := buildSet(n, d, 4, 41)
	q := flat[:d]
	p := core.QueryParams{Filter: func(g int) bool { return g%2 == 1 }}
	nbs, _, err := s.Search(q, 20, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbs) == 0 {
		t.Fatal("filtered search found nothing")
	}
	for _, nb := range nbs {
		if nb.ID%2 != 1 {
			t.Fatalf("filter leaked global id %d", nb.ID)
		}
	}
}

func TestCompactShardPreservesIDs(t *testing.T) {
	const n, d, S = 1200, 12, 3
	s, flat, _ := buildSet(n, d, S, 51)
	// Tombstone every id ≡ 0 (mod 6); they all route to shards 0..2.
	var dead []int
	for g := 0; g < n; g += 6 {
		if !s.Delete(g) {
			t.Fatalf("Delete(%d) failed", g)
		}
		dead = append(dead, g)
	}
	before := s.Len()
	reclaimed := s.Compact()
	if reclaimed != len(dead) {
		t.Fatalf("Compact reclaimed %d, want %d", reclaimed, len(dead))
	}
	if s.Deleted() != 0 {
		t.Fatalf("Deleted = %d after compaction", s.Deleted())
	}
	if got := s.Len(); got != before-len(dead) {
		t.Fatalf("Len = %d after compaction, want %d", got, before-len(dead))
	}
	if s.NextID() != n {
		t.Fatalf("NextID changed to %d", s.NextID())
	}
	// Survivors keep their global ids; the dead stay dead.
	for _, g := range []int{1, 7, 55, 1199} {
		q := flat[g*d : (g+1)*d]
		nbs, _, _ := s.Search(q, 1, core.QueryParams{})
		if len(nbs) != 1 || nbs[0].ID != g || nbs[0].Dist != 0 {
			t.Fatalf("survivor %d lost after compaction: %+v", g, nbs)
		}
	}
	for _, g := range dead[:5] {
		if s.Delete(g) {
			t.Fatalf("compacted-away id %d deletable again", g)
		}
		q := flat[g*d : (g+1)*d]
		nbs, _, _ := s.Search(q, 1, core.QueryParams{})
		if len(nbs) == 1 && nbs[0].ID == g {
			t.Fatalf("compacted-away id %d still returned", g)
		}
	}
	// New ids continue after the old id space.
	v := make([]float32, d)
	if id := s.Add(v); id != n {
		t.Fatalf("post-compaction Add returned %d, want %d", id, n)
	}
}

func TestCompactEmptiedShard(t *testing.T) {
	const n, d, S = 90, 6, 3
	s, _, _ := buildSet(n, d, S, 61)
	// Kill every vector of shard 1 (ids ≡ 1 mod 3), then compact it empty.
	for g := 1; g < n; g += 3 {
		if !s.Delete(g) {
			t.Fatalf("Delete(%d) failed", g)
		}
	}
	if got := s.CompactShard(1); got != n/3 {
		t.Fatalf("reclaimed %d, want %d", got, n/3)
	}
	if s.Len() != n-n/3 {
		t.Fatalf("Len = %d", s.Len())
	}
	// Searches and adds keep working; the next id that routes to the
	// emptied shard must be findable there. Filler vectors are distinct so
	// the final self-query has a unique zero-distance answer.
	var id int
	var v []float32
	for i := 0; ; i++ {
		v = make([]float32, d)
		v[0] = 77 + float32(i)
		id = s.Add(v)
		if id%S == 1 {
			break
		}
	}
	nbs, _, _ := s.Search(v, 1, core.QueryParams{})
	if len(nbs) != 1 || nbs[0].ID != id || nbs[0].Dist != 0 {
		t.Fatalf("vector added to emptied shard not found: %+v", nbs)
	}
}

func TestAutoCompaction(t *testing.T) {
	const n, d, S = 1200, 8, 2
	flat, _ := corpus(n, d, 71)
	s := Build(flat, n, d, S, 0.4, core.Config{K: 4, L: 2, T: 20, Seed: 71})
	// Delete 50% of shard 0's rows: crosses the 0.4 threshold.
	for g := 0; g < n; g += 4 {
		s.Delete(g)
	}
	// The policy's guarantee is that a background rebuild runs and drives
	// the shard's tombstoned fraction back below the threshold — not that
	// it reaches zero: a compaction whose snapshot raced the tail of the
	// delete loop legitimately replays those tombstones onto the fresh
	// index, and the leftovers sit below the threshold for good.
	deadline := time.Now().Add(10 * time.Second)
	for {
		infos := s.Infos()
		if infos[0].Compactions > 0 && !infos[0].LastCompaction.IsZero() &&
			float64(infos[0].Deleted) < 0.4*float64(infos[0].Size) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("auto-compaction never ran; %d tombstones left", s.Deleted())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if infos := s.Infos(); infos[1].Compactions != 0 {
		t.Fatalf("untouched shard 1 compacted: %+v", infos[1])
	}
	// A manual pass reclaims whatever raced the background rebuild.
	s.Compact()
	if got := s.Deleted(); got != 0 {
		t.Fatalf("tombstones after manual compaction: %d", got)
	}
}

func TestSnapshotCoversAllShards(t *testing.T) {
	const n, d, S = 600, 8, 3
	s, _, _ := buildSet(n, d, S, 81)
	s.Delete(5)
	rows, dead := 0, 0
	for i := 0; i < S; i++ {
		p := s.SnapshotShard(i, s.NextID())
		rows += p.Rows
		if len(p.Globals) != p.Rows || len(p.Flat) != p.Rows*d {
			t.Fatalf("shard %d: globals/flat/rows mismatch: %d/%d/%d",
				i, len(p.Globals), len(p.Flat), p.Rows)
		}
		if p.R0 <= 0 {
			t.Fatalf("non-positive r0 %v", p.R0)
		}
		for _, b := range p.Deleted {
			if b {
				dead++
			}
		}
	}
	if rows != n || dead != 1 {
		t.Fatalf("snapshots cover %d rows (%d dead), want %d (1 dead)", rows, dead, n)
	}
	// The id-space cut excludes rows at or above maxID.
	capped := s.SnapshotShard(0, 3)
	if capped.Rows != 1 || capped.Globals[0] != 0 {
		t.Fatalf("maxID cut kept %+v", capped.Globals)
	}
}

func TestRestoreRoundTrip(t *testing.T) {
	const n, d, S = 800, 10, 3
	s, flat, queries := buildSet(n, d, S, 91)
	s.Delete(10)
	s.Delete(11)
	s.CompactShard(10 % S) // id 10's shard loses its tombstone

	nextID := s.NextID()
	parts := make([]Part, S)
	for i := 0; i < S; i++ {
		parts[i] = s.SnapshotShard(i, nextID)
	}

	r := Restore(d, nextID, 0, s.Params(), parts)
	if r.Len() != s.Len() || r.Deleted() != s.Deleted() || r.NextID() != s.NextID() {
		t.Fatalf("restored shape len=%d del=%d next=%d, want len=%d del=%d next=%d",
			r.Len(), r.Deleted(), r.NextID(), s.Len(), s.Deleted(), s.NextID())
	}
	// Identical answers: the restored set rebuilds from the same seeds and
	// per-shard radii.
	for _, q := range queries {
		a, _, _ := s.Search(q, 5, core.QueryParams{})
		b, _, _ := r.Search(q, 5, core.QueryParams{})
		if len(a) != len(b) {
			t.Fatalf("result counts diverge: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("restored set diverges at rank %d: %+v vs %+v", i, a[i], b[i])
			}
		}
	}
	// Tombstone 11 survived the round-trip.
	q := flat[11*d : 12*d]
	nbs, _, _ := r.Search(q, 1, core.QueryParams{})
	if len(nbs) == 1 && nbs[0].ID == 11 {
		t.Fatal("tombstone resurrected by Restore")
	}
}

// TestConcurrentMutationsAndSearches is the shard-lock regression net: it
// must pass under -race.
func TestConcurrentMutationsAndSearches(t *testing.T) {
	const n, d, S = 2000, 8, 4
	flat, queries := corpus(n, d, 101)
	s := Build(flat, n, d, S, 0.45, core.Config{K: 4, L: 2, T: 20, Seed: 101})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 64)

	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) { // searchers
			defer wg.Done()
			sr := s.NewSearcher()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[(i+w)%len(queries)]
				nbs, err := sr.Search(q, 5, core.QueryParams{})
				if err != nil {
					errs <- err
					return
				}
				for j := 1; j < len(nbs); j++ {
					if nbs[j].Dist < nbs[j-1].Dist {
						errs <- errNotSorted
						return
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		v := make([]float32, d)
		for i := 0; i < 400; i++ {
			for j := range v {
				v[j] = float32(rng.NormFloat64())
			}
			s.Add(v)
		}
	}()
	wg.Add(1)
	go func() { // deleter
		defer wg.Done()
		for g := 0; g < 1200; g++ {
			s.Delete(g)
		}
	}()
	wg.Add(1)
	go func() { // explicit compactor racing the auto one
		defer wg.Done()
		for i := 0; i < 4; i++ {
			s.Compact()
		}
	}()

	done := make(chan struct{})
	go func() {
		// Writers, deleter and compactors finish; then stop the searchers.
		wg.Wait()
		close(done)
	}()
	time.Sleep(300 * time.Millisecond)
	close(stop)
	<-done

	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := s.NextID(); got != n+400 {
		t.Fatalf("NextID = %d, want %d", got, n+400)
	}
	// Every id the deleter removed that wasn't compacted must stay hidden.
	nbs, _, err := s.Search(queries[0], 10, core.QueryParams{})
	if err != nil || len(nbs) == 0 {
		t.Fatalf("post-stress search: %v %v", nbs, err)
	}
}

var errNotSorted = errFor("results not sorted")

type errFor string

func (e errFor) Error() string { return string(e) }

func TestMathSanity(t *testing.T) {
	// Guard the stripe arithmetic the lazy reverse map relies on.
	for _, S := range []int{1, 2, 3, 5, 8} {
		for n := 0; n < 40; n++ {
			counts := make([]int, S)
			for g := 0; g < n; g++ {
				sh := g % S
				local := g / S
				if counts[sh] != local {
					t.Fatalf("S=%d n=%d: id %d expects local %d, shard has %d rows",
						S, n, g, local, counts[sh])
				}
				counts[sh]++
			}
		}
	}
}
