package shard

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dblsh/internal/core"
	"dblsh/internal/vec"
)

// assertSameResults fails unless a and b are the same neighbor sequence,
// bit for bit — the parallel fan-out's contract against the sequential
// reference path.
func assertSameResults(t *testing.T, label string, a, b []vec.Neighbor) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d results", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: rank %d diverges: %+v vs %+v", label, i, a[i], b[i])
		}
	}
}

// TestParallelLadderEquivalence is the differential oracle for the parallel
// per-round fan-out: for every combination of shard count, k, candidate
// budget and filter — before and after deletes and an explicit compaction —
// the parallel path must return exactly the sequential path's results and
// ladder accounting (candidates consumed, rounds run, final radius).
func TestParallelLadderEquivalence(t *testing.T) {
	const n, d = 1500, 12
	for _, shards := range []int{1, 2, 3, 8} {
		s, flat, queries := buildSet(n, d, shards, 113)
		seq := s.NewSearcher()
		par := s.NewSearcher()

		check := func(t *testing.T, stage string) {
			for _, k := range []int{1, 7, 40} {
				for _, tb := range []int{0, 5} { // 0 = the build-time budget
					for _, withFilter := range []bool{false, true} {
						p := core.QueryParams{T: tb}
						if withFilter {
							p.Filter = func(g int) bool { return g%3 != 0 }
						}
						for qi, q := range queries {
							ps := p
							ps.Parallelism = 1
							a, err := seq.Search(q, k, ps)
							if err != nil {
								t.Fatal(err)
							}
							sst := seq.LastStats()

							pp := p
							pp.Parallelism = shards // full fan-out
							b, err := par.Search(q, k, pp)
							if err != nil {
								t.Fatal(err)
							}
							pst := par.LastStats()

							label := fmt.Sprintf("%s shards=%d k=%d t=%d filter=%v q=%d",
								stage, shards, k, tb, withFilter, qi)
							assertSameResults(t, label, a, b)
							if sst.Candidates != pst.Candidates ||
								sst.Rounds != pst.Rounds ||
								sst.FinalR != pst.FinalR {
								t.Fatalf("%s: ladder accounting diverges: seq{cand=%d rounds=%d r=%v} vs par{cand=%d rounds=%d r=%v}",
									label, sst.Candidates, sst.Rounds, sst.FinalR,
									pst.Candidates, pst.Rounds, pst.FinalR)
							}
							if shards > 1 && sst.ParallelRounds != 0 {
								t.Fatalf("%s: sequential path counted %d parallel rounds", label, sst.ParallelRounds)
							}
							if shards > 1 && pst.ParallelRounds == 0 {
								t.Fatalf("%s: parallel path counted no parallel rounds", label)
							}
							seen := make(map[int]bool, len(b))
							for _, nb := range b {
								if seen[nb.ID] {
									t.Fatalf("%s: duplicate id %d in results", label, nb.ID)
								}
								seen[nb.ID] = true
							}
						}
					}
				}
			}
		}

		t.Run(fmt.Sprintf("shards=%d/fresh", shards), func(t *testing.T) { check(t, "fresh") })

		// Tombstone a third of the corpus and re-verify: deleted points must
		// be skipped identically on both paths.
		for g := 0; g < n; g += 3 {
			s.Delete(g)
		}
		t.Run(fmt.Sprintf("shards=%d/deleted", shards), func(t *testing.T) { check(t, "deleted") })

		// Compact every shard (rebuilding indexes and breaking the stripe
		// pattern) and re-verify against the rebuilt layout.
		s.Compact()
		t.Run(fmt.Sprintf("shards=%d/compacted", shards), func(t *testing.T) { check(t, "compacted") })

		_ = flat
	}
}

// TestParallelEquivalenceUnderCompaction races parallel queries against
// background compactions and concurrent mutations. The corpus mutates while
// the queries run, so there is no sequential twin to compare against;
// instead every answer must satisfy the invariants both paths guarantee:
// sorted results, no duplicate ids, and sane ladder accounting. Run under
// -race this also nets any unsynchronized access between the round workers,
// the merge, and compaction's index swap.
func TestParallelEquivalenceUnderCompaction(t *testing.T) {
	const n, d, S = 2000, 8, 4
	flat, queries := corpus(n, d, 131)
	s := Build(flat, n, d, S, 0, core.Config{K: 4, L: 2, T: 20, Seed: 131})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 64)

	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sr := s.NewSearcher()
			p := core.QueryParams{Parallelism: S}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				nbs, err := sr.Search(queries[(i+w)%len(queries)], 10, p)
				if err != nil {
					errs <- err
					return
				}
				seen := map[int]bool{}
				for j, nb := range nbs {
					if j > 0 && nb.Dist < nbs[j-1].Dist {
						errs <- fmt.Errorf("results not sorted at rank %d", j)
						return
					}
					if seen[nb.ID] {
						errs <- fmt.Errorf("duplicate id %d", nb.ID)
						return
					}
					seen[nb.ID] = true
				}
				if st := sr.LastStats(); st.Rounds > 0 && st.ParallelRounds == 0 {
					errs <- fmt.Errorf("parallel query ran %d rounds, none fanned out", st.Rounds)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() { // deleter feeding the compactor tombstones
		defer wg.Done()
		for g := 0; g < n; g += 2 {
			s.Delete(g)
		}
	}()
	wg.Add(1)
	go func() { // compactor swapping indexes under the queries
		defer wg.Done()
		for i := 0; i < 6; i++ {
			for sh := 0; sh < S; sh++ {
				s.CompactShard(sh)
			}
		}
	}()
	wg.Add(1)
	go func() { // writer breaking the stripe pattern mid-flight
		defer wg.Done()
		rng := rand.New(rand.NewSource(11))
		v := make([]float32, d)
		for i := 0; i < 300; i++ {
			for j := range v {
				v[j] = float32(rng.NormFloat64())
			}
			s.Add(v)
		}
	}()

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	time.Sleep(300 * time.Millisecond)
	close(stop)
	<-done
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSetQuantizeConcurrentWithCompaction is the regression net for the
// SetQuantize data race: the override used to write s.cfg.Quantize bare
// while compaction read the config concurrently. Now the setting lives
// behind an atomic and compaction re-checks it at swap time, so toggling it
// under live compactions, mutations and searches must be clean under -race
// and the last toggle must win.
func TestSetQuantizeConcurrentWithCompaction(t *testing.T) {
	const n, d, S = 1200, 8, 2
	flat, queries := corpus(n, d, 151)
	s := Build(flat, n, d, S, 0, core.Config{K: 4, L: 2, T: 20, Seed: 151})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // quantize toggler
		defer wg.Done()
		for i := 0; i < 60; i++ {
			if i%2 == 0 {
				s.SetQuantize("int8")
			} else {
				s.SetQuantize("")
			}
		}
		s.SetQuantize("int8")
	}()
	wg.Add(1)
	go func() { // deleter keeps the compactor busy
		defer wg.Done()
		for g := 0; g < n; g += 2 {
			s.Delete(g)
		}
	}()
	wg.Add(1)
	go func() { // compactor reads the rebuild config the toggler writes
		defer wg.Done()
		for i := 0; i < 10; i++ {
			for sh := 0; sh < S; sh++ {
				s.CompactShard(sh)
			}
		}
	}()
	wg.Add(1)
	go func() { // searchers exercise the per-shard mirrors
		defer wg.Done()
		sr := s.NewSearcher()
		for i := 0; i < 200; i++ {
			if _, err := sr.Search(queries[i%len(queries)], 5, core.QueryParams{Parallelism: S}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	if got := s.Params().Quantize; got != "int8" {
		t.Fatalf("Params().Quantize = %q after final SetQuantize(\"int8\")", got)
	}
	// A compaction after the dust settles must rebuild with the surviving
	// setting, not the build-time one.
	s.Delete(1)
	s.CompactShard(1)
	if got := s.Params().Quantize; got != "int8" {
		t.Fatalf("Params().Quantize = %q after post-toggle compaction", got)
	}
}

// FuzzParallelLadderEquivalence feeds randomized corpus shapes and query
// knobs through both ladder paths and requires bit-identical answers. It is
// the differential fuzzer the CI fuzz-smoke job runs.
func FuzzParallelLadderEquivalence(f *testing.F) {
	f.Add(int64(1), uint16(200), uint8(3), uint8(5), uint8(0), uint8(0))
	f.Add(int64(42), uint16(400), uint8(2), uint8(1), uint8(10), uint8(3))
	f.Add(int64(7), uint16(90), uint8(8), uint8(40), uint8(4), uint8(2))
	f.Add(int64(99), uint16(333), uint8(4), uint8(7), uint8(0), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, rawN uint16, rawShards, rawK, rawT, delEvery uint8) {
		n := 60 + int(rawN)%500
		shards := 2 + int(rawShards)%7 // ≥ 2: single-shard bypasses the coordinator
		k := 1 + int(rawK)%20
		tb := int(rawT) % 30 // 0 inherits the build-time budget
		const d = 6

		flat, queries := corpus(n, d, seed)
		s := Build(flat, n, d, shards, 0, core.Config{K: 4, L: 2, T: 20, Seed: seed})
		if delEvery > 1 {
			for g := 0; g < n; g += int(delEvery) {
				s.Delete(g)
			}
		}

		seq := s.NewSearcher()
		par := s.NewSearcher()
		for qi, q := range queries[:3] {
			ps := core.QueryParams{T: tb, Parallelism: 1}
			a, err := seq.Search(q, k, ps)
			if err != nil {
				t.Fatal(err)
			}
			sst := seq.LastStats()

			pp := core.QueryParams{T: tb, Parallelism: shards}
			b, err := par.Search(q, k, pp)
			if err != nil {
				t.Fatal(err)
			}
			pst := par.LastStats()

			label := fmt.Sprintf("n=%d shards=%d k=%d t=%d del=%d q=%d", n, shards, k, tb, delEvery, qi)
			assertSameResults(t, label, a, b)
			if sst.Candidates != pst.Candidates || sst.Rounds != pst.Rounds || sst.FinalR != pst.FinalR {
				t.Fatalf("%s: accounting diverges: seq{%d %d %v} vs par{%d %d %v}",
					label, sst.Candidates, sst.Rounds, sst.FinalR,
					pst.Candidates, pst.Rounds, pst.FinalR)
			}
		}
	})
}
