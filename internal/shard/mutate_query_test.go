package shard

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"dblsh/internal/core"
)

// TestMutateDuringQuery hammers the cursor re-arm path: the coordinator
// releases each shard's lock between ladder rounds, so Adds land mid-query
// and the per-tree cursors must detect the mutation and re-arm instead of
// silently missing the appended points. Run under -race this doubles as
// the memory-safety net for cursors pinning tree snapshots across rounds.
func TestMutateDuringQuery(t *testing.T) {
	const dim = 8
	rng := rand.New(rand.NewSource(31))
	n := 4000
	flat := make([]float32, n*dim)
	for i := range flat {
		flat[i] = float32(rng.NormFloat64() * 5)
	}
	s := Build(flat, n, dim, 4, 0, core.Config{C: 1.5, K: 4, L: 3, T: 20, Seed: 31})

	stop := make(chan struct{})
	var added atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: a steady stream of appends across all shards
		defer wg.Done()
		wrng := rand.New(rand.NewSource(77))
		for {
			select {
			case <-stop:
				return
			default:
			}
			v := make([]float32, dim)
			for j := range v {
				v[j] = float32(wrng.NormFloat64() * 5)
			}
			s.Add(v)
			added.Add(1)
		}
	}()

	var qwg sync.WaitGroup
	for w := 0; w < 4; w++ {
		qwg.Add(1)
		go func(worker int) {
			defer qwg.Done()
			qrng := rand.New(rand.NewSource(int64(worker)))
			sr := s.NewSearcher()
			for it := 0; it < 150; it++ {
				q := make([]float32, dim)
				for j := range q {
					q[j] = float32(qrng.NormFloat64() * 5)
				}
				nbs, err := sr.Search(q, 10, core.QueryParams{})
				if err != nil {
					t.Errorf("worker %d: search error: %v", worker, err)
					return
				}
				if len(nbs) == 0 {
					t.Errorf("worker %d: empty result on a populated index", worker)
					return
				}
				bound := s.NextID()
				prev := -1.0
				for _, nb := range nbs {
					if nb.ID < 0 || nb.ID >= bound {
						t.Errorf("worker %d: id %d outside allocated id space [0,%d)", worker, nb.ID, bound)
						return
					}
					if nb.Dist < prev {
						t.Errorf("worker %d: results not sorted", worker)
						return
					}
					prev = nb.Dist
				}
			}
		}(w)
	}
	qwg.Wait()
	close(stop)
	wg.Wait()
	if added.Load() == 0 {
		t.Fatal("writer never ran; the interleaving was not exercised")
	}
}

// TestMidQueryAddIsFindable pins the observable contract the re-arm
// exists for: a vector added while queries are in flight is returned by a
// subsequent search through the same (already-armed) searcher.
func TestMidQueryAddIsFindable(t *testing.T) {
	const dim = 6
	rng := rand.New(rand.NewSource(8))
	n := 1000
	flat := make([]float32, n*dim)
	for i := range flat {
		flat[i] = float32(rng.NormFloat64() * 20)
	}
	s := Build(flat, n, dim, 2, 0, core.Config{C: 1.5, K: 4, L: 2, T: 20, Seed: 8})
	sr := s.NewSearcher()

	q := make([]float32, dim)
	if _, err := sr.Search(q, 5, core.QueryParams{}); err != nil {
		t.Fatal(err)
	}
	// The searcher's cursors are now armed against the pre-Add trees.
	id := s.Add(make([]float32, dim)) // exact match for q
	nbs, err := sr.Search(q, 5, core.QueryParams{})
	if err != nil {
		t.Fatal(err)
	}
	if len(nbs) == 0 || nbs[0].ID != id || nbs[0].Dist != 0 {
		t.Fatalf("added vector not found first: got %+v, want id %d at distance 0", nbs, id)
	}
}
