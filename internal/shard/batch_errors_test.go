package shard

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"dblsh/internal/core"
)

// failFirstPollCtx is a context test double whose Done channel reports
// cancellation on exactly the first poll and never again: precisely one
// query of a batch observes an expired context, deterministically the first
// one polled. (A real context never un-cancels; this drives the error path,
// nothing more.)
type failFirstPollCtx struct {
	polls  atomic.Int64
	closed chan struct{}
}

func newFailFirstPollCtx() *failFirstPollCtx {
	c := &failFirstPollCtx{closed: make(chan struct{})}
	close(c.closed)
	return c
}

func (c *failFirstPollCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *failFirstPollCtx) Err() error                  { return context.Canceled }
func (c *failFirstPollCtx) Value(interface{}) interface{} {
	return nil
}
func (c *failFirstPollCtx) Done() <-chan struct{} {
	if c.polls.Add(1) == 1 {
		return c.closed
	}
	return nil
}

// TestSearchBatchSequentialContinuesPastErrors pins the fix for the
// single-worker batch path: an error on one query must not abandon the
// queries after it — the parallel path answers them, so the sequential
// path must too, or a batch's answered set would depend on GOMAXPROCS.
func TestSearchBatchSequentialContinuesPastErrors(t *testing.T) {
	for _, shards := range []int{1, 3} {
		s, _, queries := buildSet(600, 8, shards, 77)
		prev := runtime.GOMAXPROCS(1)
		out, _, err := s.SearchBatch(queries, 3, core.QueryParams{Ctx: newFailFirstPollCtx()})
		runtime.GOMAXPROCS(prev)
		if err != context.Canceled {
			t.Fatalf("shards=%d: err = %v, want context.Canceled", shards, err)
		}
		if out[0] != nil {
			t.Fatalf("shards=%d: the cancelled first query was answered", shards)
		}
		for i := 1; i < len(out); i++ {
			if out[i] == nil {
				t.Fatalf("shards=%d: sequential path abandoned query %d after the error", shards, i)
			}
		}
	}
}

// TestSearchBatchAnsweredSetParityAcrossWorkers is the acceptance check:
// under an expiring context the set of answered queries must be identical
// at GOMAXPROCS=1 and GOMAXPROCS=8.
func TestSearchBatchAnsweredSetParityAcrossWorkers(t *testing.T) {
	s, _, queries := buildSet(600, 8, 2, 78)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()

	answered := func(workers int) []bool {
		prev := runtime.GOMAXPROCS(workers)
		out, _, err := s.SearchBatch(queries, 3, core.QueryParams{Ctx: ctx})
		runtime.GOMAXPROCS(prev)
		if err != context.DeadlineExceeded {
			t.Fatalf("workers=%d: err = %v, want context.DeadlineExceeded", workers, err)
		}
		set := make([]bool, len(out))
		for i, nbs := range out {
			set[i] = nbs != nil
		}
		return set
	}
	seq := answered(1)
	par := answered(8)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("query %d: answered=%v at 1 worker, %v at 8", i, seq[i], par[i])
		}
	}
	// Also pin the fail-once shape: one erroring query, all others
	// answered, at both worker counts.
	for _, workers := range []int{1, 8} {
		prev := runtime.GOMAXPROCS(workers)
		out, _, err := s.SearchBatch(queries, 3, core.QueryParams{Ctx: newFailFirstPollCtx()})
		runtime.GOMAXPROCS(prev)
		if err != context.Canceled {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		unanswered := 0
		for _, nbs := range out {
			if nbs == nil {
				unanswered++
			}
		}
		if unanswered != 1 {
			t.Fatalf("workers=%d: %d unanswered queries, want exactly 1", workers, unanswered)
		}
	}
}

// TestAddAt pins the WAL replay primitive: inserts land under their exact
// global id, advance the allocator, skip resident ids, and tolerate
// arbitrary arrival order.
func TestAddAt(t *testing.T) {
	flat, _ := corpus(30, 4, 79)
	s := Build(nil, 0, 4, 3, 0, core.Config{K: 4, L: 2, T: 20, Seed: 79})
	if s.Shards() != 3 {
		t.Fatalf("empty build collapsed to %d shards, want 3", s.Shards())
	}
	row := func(g int) []float32 { return flat[g*4 : (g+1)*4] }

	// Out-of-id-order arrival (ids 0..29 shuffled deterministically).
	order := []int{5, 0, 17, 3, 29, 11, 2, 23, 8, 1, 14, 26, 7, 4, 19, 6, 28, 9, 13, 10, 22, 12, 16, 15, 25, 18, 21, 20, 27, 24}
	for _, g := range order {
		if !s.AddAt(g, row(g)) {
			t.Fatalf("AddAt(%d) reported already-resident on first insert", g)
		}
	}
	if s.NextID() != 30 || s.Len() != 30 {
		t.Fatalf("NextID=%d Len=%d, want 30/30", s.NextID(), s.Len())
	}
	// Replaying any record again must be a no-op.
	for _, g := range []int{0, 17, 29} {
		if s.AddAt(g, row(g)) {
			t.Fatalf("AddAt(%d) inserted a duplicate", g)
		}
	}
	if s.Len() != 30 {
		t.Fatalf("idempotent AddAt grew the set to %d", s.Len())
	}
	// Every id must resolve to its own row (Delete proves residency and
	// routing).
	for g := 0; g < 30; g++ {
		if !s.Delete(g) {
			t.Fatalf("id %d not resident after AddAt", g)
		}
	}
	// A tombstoned id is still resident: replaying its Add stays a no-op.
	if s.AddAt(3, row(3)) {
		t.Fatal("AddAt resurrected a tombstoned id")
	}
	// The allocator never hands out a replayed id.
	if g := s.Add(row(0)); g != 30 {
		t.Fatalf("Add after replay allocated id %d, want 30", g)
	}
}
