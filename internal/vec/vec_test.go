package vec

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotZeroVector(t *testing.T) {
	a := []float32{0, 0, 0, 0}
	b := []float32{1, -2, 3, -4}
	if got := Dot(a, b); got != 0 {
		t.Fatalf("Dot with zero vector = %v, want 0", got)
	}
}

func TestDist(t *testing.T) {
	a := []float32{0, 0}
	b := []float32{3, 4}
	if got := Dist(a, b); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Dist = %v, want 5", got)
	}
}

func TestSquaredDistSymmetry(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) < 8 {
			return true
		}
		n := len(raw) / 2
		a := make([]float32, n)
		b := make([]float32, n)
		for i := 0; i < n; i++ {
			a[i] = float32(int8(raw[i])) / 16
			b[i] = float32(int8(raw[n+i])) / 16
		}
		return SquaredDist(a, b) == SquaredDist(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		d := 1 + rng.Intn(32)
		a, b, c := make([]float32, d), make([]float32, d), make([]float32, d)
		for i := 0; i < d; i++ {
			a[i] = float32(rng.NormFloat64())
			b[i] = float32(rng.NormFloat64())
			c[i] = float32(rng.NormFloat64())
		}
		ab, bc, ac := Dist(a, b), Dist(b, c), Dist(a, c)
		// Component differences round in float32 (relative ~2⁻²⁴), so a
		// nearly-collinear triple can overshoot by that relative error.
		if ac > (ab+bc)*(1+1e-6) {
			t.Fatalf("triangle inequality violated: %v > %v + %v", ac, ab, bc)
		}
	}
}

func TestNorm(t *testing.T) {
	if got := Norm([]float32{3, 4}); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Norm = %v, want 5", got)
	}
	if got := Norm(nil); got != 0 {
		t.Fatalf("Norm(nil) = %v, want 0", got)
	}
}

func TestScaleAdd(t *testing.T) {
	a := []float32{1, 2}
	Scale(a, 3)
	if a[0] != 3 || a[1] != 6 {
		t.Fatalf("Scale result %v", a)
	}
	Add(a, []float32{1, 1})
	if a[0] != 4 || a[1] != 7 {
		t.Fatalf("Add result %v", a)
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(3, 2)
	m.SetRow(0, []float32{1, 2})
	m.SetRow(2, []float32{5, 6})
	if m.Rows() != 3 || m.Dim() != 2 {
		t.Fatalf("shape = %d×%d", m.Rows(), m.Dim())
	}
	if r := m.Row(2); r[0] != 5 || r[1] != 6 {
		t.Fatalf("Row(2) = %v", r)
	}
	if r := m.Row(1); r[0] != 0 || r[1] != 0 {
		t.Fatalf("Row(1) should be zero, got %v", r)
	}
}

func TestMatrixAppendClone(t *testing.T) {
	m := NewMatrix(0, 3)
	id := m.Append([]float32{1, 2, 3})
	if id != 0 || m.Rows() != 1 {
		t.Fatalf("Append id=%d rows=%d", id, m.Rows())
	}
	c := m.Clone()
	c.Row(0)[0] = 99
	if m.Row(0)[0] == 99 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestMatrixSlice(t *testing.T) {
	m := NewMatrix(4, 1)
	for i := 0; i < 4; i++ {
		m.SetRow(i, []float32{float32(i)})
	}
	s := m.Slice(1, 3)
	if s.Rows() != 2 || s.Row(0)[0] != 1 || s.Row(1)[0] != 2 {
		t.Fatalf("Slice rows=%d first=%v", s.Rows(), s.Row(0))
	}
	// Views share storage.
	s.Row(0)[0] = 42
	if m.Row(1)[0] != 42 {
		t.Fatal("Slice should alias parent storage")
	}
}

// TestMatrixCloneIndependence pins the aliasing contract: a Clone owns its
// storage, so growth and writes on the parent — including Appends that
// reuse spare capacity in the parent's backing array — never reach it.
func TestMatrixCloneIndependence(t *testing.T) {
	m := NewMatrix(0, 2)
	for i := 0; i < 8; i++ {
		m.Append([]float32{float32(i), float32(i)})
	}
	c := m.Clone()
	for i := 0; i < 64; i++ {
		m.Append([]float32{99, 99})
		m.Row(0)[0] = 77
		if c.Rows() != 8 {
			t.Fatalf("clone grew to %d rows", c.Rows())
		}
		if c.Row(0)[0] != 0 || c.Row(7)[0] != 7 {
			t.Fatalf("Append/write after Clone mutated the clone: %v %v", c.Row(0), c.Row(7))
		}
		m.Row(0)[0] = 0
	}
}

// TestMatrixSliceAppendDoesNotClobberParent pins the capacity clip on Slice
// views: appending to a view must reallocate, not overwrite the parent's
// rows beyond the view.
func TestMatrixSliceAppendDoesNotClobberParent(t *testing.T) {
	m := NewMatrix(4, 1)
	for i := 0; i < 4; i++ {
		m.SetRow(i, []float32{float32(i)})
	}
	v := m.Slice(0, 2)
	v.Append([]float32{42})
	if m.Row(2)[0] != 2 {
		t.Fatalf("Append on a Slice view overwrote the parent: row 2 = %v", m.Row(2))
	}
	if v.Rows() != 3 || v.Row(2)[0] != 42 {
		t.Fatalf("view after Append: rows=%d last=%v", v.Rows(), v.Row(v.Rows()-1))
	}
}

func TestMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dim mismatch")
		}
	}()
	m := NewMatrix(1, 2)
	m.SetRow(0, []float32{1})
}

func TestWrapMatrix(t *testing.T) {
	data := []float32{1, 2, 3, 4, 5, 6}
	m := WrapMatrix(data, 2, 3)
	if m.Row(1)[2] != 6 {
		t.Fatalf("WrapMatrix Row(1) = %v", m.Row(1))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on size mismatch")
		}
	}()
	WrapMatrix(data, 2, 2)
}

func TestTopKBasic(t *testing.T) {
	tk := NewTopK(3)
	for i, d := range []float64{5, 1, 4, 2, 3} {
		tk.Push(i, d)
	}
	res := tk.Results()
	if len(res) != 3 {
		t.Fatalf("len = %d, want 3", len(res))
	}
	want := []float64{1, 2, 3}
	for i, n := range res {
		if n.Dist != want[i] {
			t.Fatalf("res[%d].Dist = %v, want %v", i, n.Dist, want[i])
		}
	}
}

func TestTopKFewerThanK(t *testing.T) {
	tk := NewTopK(10)
	tk.Push(1, 2.0)
	tk.Push(2, 1.0)
	if tk.Full() {
		t.Fatal("should not be full")
	}
	if _, ok := tk.Worst(); ok {
		t.Fatal("Worst should report not-ok when under capacity")
	}
	res := tk.Results()
	if len(res) != 2 || res[0].ID != 2 {
		t.Fatalf("results = %v", res)
	}
}

func TestTopKRejectsWorse(t *testing.T) {
	tk := NewTopK(2)
	tk.Push(0, 1)
	tk.Push(1, 2)
	if tk.Push(2, 3) {
		t.Fatal("should reject distance worse than current worst")
	}
	if !tk.Push(3, 0.5) {
		t.Fatal("should accept distance better than current worst")
	}
	if w, ok := tk.Worst(); !ok || w != 1 {
		t.Fatalf("Worst = %v, %v", w, ok)
	}
}

// TestTopKMatchesSort cross-checks the heap against a full sort on random
// input — the core invariant of the candidate verification path.
func TestTopKMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(200)
		k := 1 + rng.Intn(20)
		dists := make([]float64, n)
		tk := NewTopK(k)
		for i := range dists {
			dists[i] = rng.Float64()
			tk.Push(i, dists[i])
		}
		sorted := append([]float64(nil), dists...)
		sort.Float64s(sorted)
		res := tk.Results()
		wantLen := k
		if n < k {
			wantLen = n
		}
		if len(res) != wantLen {
			t.Fatalf("len = %d, want %d", len(res), wantLen)
		}
		for i, nb := range res {
			if nb.Dist != sorted[i] {
				t.Fatalf("trial %d: res[%d] = %v, want %v", trial, i, nb.Dist, sorted[i])
			}
		}
	}
}

func TestTopKPanicsOnZeroK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k=0")
		}
	}()
	NewTopK(0)
}

func BenchmarkSquaredDist128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float32, 128)
	y := make([]float32, 128)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
		y[i] = float32(rng.NormFloat64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SquaredDist(x, y)
	}
}
