package vec

import "math"

// Int8 scalar quantization for the verification pre-filter.
//
// A QuantMatrix mirrors a float32 Matrix as int8 codes under a single
// per-matrix affine map x ≈ off + scale·code, so a candidate row costs a
// quarter of the memory bandwidth of its float32 original — the dominant
// cost of verifying randomly-scattered candidate rows is pulling their
// cache lines, not the arithmetic. The mirror supports a squared-distance
// kernel that returns a *certain lower bound* on the exact float32 squared
// distance: rows whose bound already exceeds the caller's cut-off can be
// rejected without ever touching their float32 storage, and because a
// lower bound can never overshoot the true distance, the surviving set —
// and therefore the exact result set — is identical to what the exact
// kernel alone would produce.
//
// Bound derivation. The kernel is asymmetric: only the data row is
// quantized, the query is mapped to its exact (unrounded) position in
// code units, u = (q−off)/scale. Every in-range data value quantizes with
// absolute error at most scale/2 (round-to-nearest), so for one component
// |x−q| = scale·|c + e/scale − u| ≥ scale·max(0, |c−u| − ½) with
// |e| ≤ scale/2. Keeping the query exact instead of rounding it halves
// the per-component guard a symmetric code-vs-code kernel would need, and
// in high dimension that factor compounds: the assembled bound is
// dramatically tighter. unitGuard pads the ½ with headroom for the float
// evaluation of u and of the codes; the final product is deflated by
// quantSafety to absorb accumulation rounding. FuzzQuantBound pins the
// inequality (bound ≤ exact squared distance, always) on random data.

// quantSafety deflates the assembled lower bound to absorb the float
// rounding of the final scale²·acc product and the long accumulation. The
// per-component guard already donates headroom beyond the certain ½ code,
// so the remaining slop is a handful of ulps; 1e-5 covers it with orders
// of magnitude to spare at a negligible tightness cost.
const quantSafety = 1 - 1e-5

// unitClamp bounds query code units. It is far beyond any int8 code, so
// clamping only moves an absurdly distant query component toward the data
// codes — which shrinks |c−u| and keeps bounds on the sound (lower) side —
// while capping the magnitude the kernel's accumulator has to absorb.
const unitClamp = 1 << 20

// unitGuard is the per-component guard of the asymmetric kernel: half a
// code width for the data row's rounding error, plus generous headroom
// for the float evaluation of the unit position and of the codes
// themselves (both are computed in float64 from float32 inputs, so their
// slop is a few 1e-6 code units at most).
const unitGuard = 0.5002

// QuantMatrix is an int8 mirror of a Matrix's rows.
//
// Aliasing contract: the mirror copies by value, exactly like the per-leaf
// coordinate mirrors in the R*-tree. It does NOT alias the parent matrix —
// writes through Matrix.Row or Matrix.Data views update the float32
// storage only, leaving the corresponding codes stale (and a stale code
// breaks the lower-bound guarantee in both directions). After mutating row
// i in place, call UpdateRow(i); after appending rows, call Sync.
// CheckRow reports whether a row's codes are fresh.
type QuantMatrix struct {
	m     *Matrix
	codes []int8
	rows  int     // rows mirrored so far; Sync catches the mirror up to m.Rows()
	scale float32 // x ≈ off + scale·code
	off   float32
	lo    float32 // fitted range: values in [lo, hi] quantize without clamping
	hi    float32
}

// NewQuantMatrix builds the int8 mirror of m's current rows. The affine
// range is fitted to the data with headroom so that moderate future
// appends do not force a refit.
func NewQuantMatrix(m *Matrix) *QuantMatrix {
	qm := &QuantMatrix{m: m}
	qm.refit()
	return qm
}

// Rows returns the number of mirrored rows.
func (qm *QuantMatrix) Rows() int { return qm.rows }

// Scale returns the quantization step: the advertised per-component
// dequantization error bound is Scale()/2.
func (qm *QuantMatrix) Scale() float32 { return qm.scale }

// refit fits the affine range over all current rows (with 25% headroom per
// side) and requantizes everything. Called at construction and when an
// appended value falls outside the fitted range; the headroom makes the
// latter rare enough that the O(n·d) cost amortizes away.
func (qm *QuantMatrix) refit() {
	data := qm.m.Data()
	lo, hi := float32(0), float32(0)
	if len(data) > 0 {
		lo, hi = data[0], data[0]
		for _, v := range data {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	pad := (hi - lo) * 0.25
	if pad == 0 {
		pad = 1
	}
	qm.lo, qm.hi = lo-pad, hi+pad
	qm.off = qm.lo + (qm.hi-qm.lo)/2
	qm.scale = (qm.hi - qm.lo) / 254
	if qm.scale <= 0 {
		qm.scale = 1
	}
	if cap(qm.codes) < len(data) {
		qm.codes = make([]int8, len(data))
	}
	qm.codes = qm.codes[:len(data)]
	for i, v := range data {
		qm.codes[i] = qm.quantize(v)
	}
	qm.rows = qm.m.Rows()
}

// quantize maps an in-range value to its nearest code. Out-of-range values
// are clamped (callers refit instead of quantizing out of range; the clamp
// is a safety net, not a code path the bound relies on).
func (qm *QuantMatrix) quantize(v float32) int8 {
	r := math.Round(float64(v-qm.off) / float64(qm.scale))
	if r > 127 {
		return 127
	}
	if r < -127 {
		return -127
	}
	return int8(r)
}

// Sync appends codes for rows added to the parent matrix since the last
// Sync/NewQuantMatrix. If any new value falls outside the fitted range the
// whole mirror is refitted, keeping the error bound intact.
func (qm *QuantMatrix) Sync() {
	d := qm.m.Dim()
	data := qm.m.Data()
	for _, v := range data[qm.rows*d:] {
		if v < qm.lo || v > qm.hi || v != v {
			qm.refit()
			return
		}
	}
	for _, v := range data[qm.rows*d:] {
		qm.codes = append(qm.codes, qm.quantize(v))
	}
	qm.rows = qm.m.Rows()
}

// UpdateRow requantizes row i after an in-place mutation of the parent
// matrix (see the aliasing contract in the type documentation). Values
// pushed outside the fitted range force a full refit.
func (qm *QuantMatrix) UpdateRow(i int) {
	row := qm.m.Row(i)
	for _, v := range row {
		if v < qm.lo || v > qm.hi || v != v {
			qm.refit()
			return
		}
	}
	d := qm.m.Dim()
	for j, v := range row {
		qm.codes[i*d+j] = qm.quantize(v)
	}
}

// CheckRow reports whether row i's codes match a fresh quantization of the
// parent row — false after the row was mutated through an aliasing view
// without UpdateRow.
func (qm *QuantMatrix) CheckRow(i int) bool {
	row := qm.m.Row(i)
	d := qm.m.Dim()
	for j, v := range row {
		if qm.codes[i*d+j] != qm.quantize(v) {
			return false
		}
	}
	return true
}

// RowCodes returns row i's codes as a view into the mirror (read-only by
// convention).
func (qm *QuantMatrix) RowCodes(i int) []int8 {
	d := qm.m.Dim()
	return qm.codes[i*d : (i+1)*d : (i+1)*d]
}

// QuantizeQueryUnits maps a query into this mirror's code space WITHOUT
// rounding: dst[i] is the query's position in code units, (q[i]−off)/scale,
// clamped to ±unitClamp and with NaN components mapped to 0 (a NaN query
// component admits no sound per-axis bound, so it contributes a term that
// can only understate the distance). Reuses dst's storage when it has
// capacity. The returned units feed LowerBoundSq and
// SquaredDistsToBoundedQuant; recompute them whenever the mirror refits
// (scale/off change), i.e. derive them fresh per query.
func (qm *QuantMatrix) QuantizeQueryUnits(q []float32, dst []float64) []float64 {
	dst = dst[:0]
	inv := 1 / float64(qm.scale)
	off := float64(qm.off)
	for _, v := range q {
		u := (float64(v) - off) * inv
		switch {
		case u >= unitClamp:
			u = unitClamp
		case u <= -unitClamp:
			u = -unitClamp
		case u != u:
			u = 0
		}
		dst = append(dst, u)
	}
	return dst
}

// LowerBoundSq returns a certain lower bound on the exact squared
// Euclidean distance between the query behind u and row i. u must come
// from QuantizeQueryUnits on this mirror's current fit.
func (qm *QuantMatrix) LowerBoundSq(u []float64, i int) float64 {
	acc := activeKernel.quantLB(u, qm.RowCodes(i))
	return float64(qm.scale) * float64(qm.scale) * acc * quantSafety
}

// accLimit returns the accumulator threshold for one sweep against
// boundSq: rows whose kernel accumulator exceeds it satisfy
// LowerBoundSq > boundSq, hoisting the scale conversion out of the
// per-row loop.
func (qm *QuantMatrix) accLimit(boundSq float64) float64 {
	return boundSq / (float64(qm.scale) * float64(qm.scale) * quantSafety)
}

// quantLBScalar is the reference asymmetric lower-bound kernel: the oracle
// the dispatched variants are property-tested against. Per component it
// accumulates max(0, |c−u| − unitGuard)².
//
// dblsh:kernelimpl
func quantLBScalar(u []float64, codes []int8) float64 {
	var acc float64
	for i, ui := range u {
		t := math.Abs(float64(codes[i])-ui) - unitGuard
		if t > 0 {
			acc += t * t
		}
	}
	return acc
}

// quantLBWide is the 8×-unrolled int8-widening lower-bound kernel: eight
// independent accumulator chains so the widening loads, the abs, and the
// multiplies pipeline across iterations.
//
// dblsh:kernelimpl
func quantLBWide(u []float64, codes []int8) float64 {
	if len(u) == 0 {
		return 0
	}
	_ = codes[len(u)-1]
	var a0, a1, a2, a3, a4, a5, a6, a7 float64
	i := 0
	for ; i+8 <= len(u); i += 8 {
		t0 := lbTerm(float64(codes[i]) - u[i])
		t1 := lbTerm(float64(codes[i+1]) - u[i+1])
		t2 := lbTerm(float64(codes[i+2]) - u[i+2])
		t3 := lbTerm(float64(codes[i+3]) - u[i+3])
		t4 := lbTerm(float64(codes[i+4]) - u[i+4])
		t5 := lbTerm(float64(codes[i+5]) - u[i+5])
		t6 := lbTerm(float64(codes[i+6]) - u[i+6])
		t7 := lbTerm(float64(codes[i+7]) - u[i+7])
		a0 += t0 * t0
		a1 += t1 * t1
		a2 += t2 * t2
		a3 += t3 * t3
		a4 += t4 * t4
		a5 += t5 * t5
		a6 += t6 * t6
		a7 += t7 * t7
	}
	acc := ((a0 + a1) + (a2 + a3)) + ((a4 + a5) + (a6 + a7))
	for ; i < len(u); i++ {
		t := lbTerm(float64(codes[i]) - u[i])
		acc += t * t
	}
	return acc
}

// lbTerm computes max(0, |t|−unitGuard) branchlessly (abs compiles to a
// sign-mask AND; the max to a float max instruction).
func lbTerm(t float64) float64 {
	t = math.Abs(t) - unitGuard
	return max(t, 0)
}

// SquaredDistsToBoundedQuant is SquaredDistsToBounded with the int8
// pre-filter in front: each candidate's quantized lower bound is computed
// from the mirror first, and only rows whose bound does not already exceed
// bound are re-ranked with the exact float32 kernel — the rest report +Inf
// without touching their float32 rows, exactly the value the exact bounded
// kernel would report for them (their true squared distance provably
// exceeds bound). Returns the number of rows the pre-filter rejected.
// u must be qm.QuantizeQueryUnits(q, ...) under the mirror's current fit;
// an infinite bound disables both the pre-filter and early abandon
// (nothing can be rejected).
func SquaredDistsToBoundedQuant(q []float32, u []float64, m *Matrix, qm *QuantMatrix, ids []int, bound float64, out []float64) int {
	if math.IsInf(bound, 1) {
		SquaredDistsTo(q, m, ids, out)
		return 0
	}
	_ = out[:len(ids)]
	limit := qm.accLimit(bound)
	quantLB := activeKernel.quantLB
	distBounded := activeKernel.squaredDistBounded
	pruned := 0
	inf := math.Inf(1)
	for j, id := range ids {
		if quantLB(u, qm.RowCodes(id)) > limit {
			out[j] = inf
			pruned++
			continue
		}
		out[j] = distBounded(q, m.Row(id), bound)
	}
	return pruned
}
