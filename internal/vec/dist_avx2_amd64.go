package vec

import "dblsh/internal/vec/cpu"

// Declarations for the hand-written AVX2/FMA kernels in
// dist_avx2_amd64.s. Slice arguments must have len(b) >= len(a) (resp.
// len(codes) >= len(u)): like the pure-Go kernels the asm only reads
// len(a) components, but unlike them it does not bounds-check, so the
// caller contract enforced at the public entry points is load-bearing.

// dotAVX2 is the assembly dot kernel: float32 lanes are widened to
// float64 before multiplication and fused into four 256-bit accumulator
// chains (16 floats per iteration), reduced in a fixed tree.
// dblsh:kernelimpl
//
//go:noescape
func dotAVX2(a, b []float32) float64

// squaredDistAVX2 is the assembly squared-Euclidean kernel. Differences
// are taken after widening to float64 (exact), then fused-squared into
// four accumulator chains.
// dblsh:kernelimpl
//
//go:noescape
func squaredDistAVX2(a, b []float32) float64

// squaredDistBoundedAVX2 is the early-abandon variant: the running total
// is reduced and tested against bound once per 16-component stripe. The
// accumulators never depend on the bound, so a surviving row's value is
// bit-identical under every bound (the PR 8 bound-independence property).
// dblsh:kernelimpl
//
//go:noescape
func squaredDistBoundedAVX2(a, b []float32, bound float64) float64

// quantLBAVX2 is the int8 quantized-lower-bound kernel: VPMOVSXBD code
// widening, float64 max(0, |code−u|−unitGuard)² accumulation in eight
// chains. The guard constant is duplicated in the .s file as float64 bits
// and must track unitGuard in quant.go.
// dblsh:kernelimpl
//
//go:noescape
func quantLBAVX2(u []float64, codes []int8) float64

// registerArchKernels adds the hardware kernel rows this build can run.
// On amd64 the avx2 row requires AVX2 and FMA with OS-saved YMM state;
// without them the table keeps only the portable rows and auto-selection
// stays on the pure-Go default.
//
// dblsh:dispatch
func registerArchKernels() {
	f := cpu.Detect()
	if !f.AVX2 || !f.FMA {
		return
	}
	kernelTable["avx2"] = kernelImpl{
		name:               "avx2",
		dot:                dotAVX2,
		squaredDist:        squaredDistAVX2,
		squaredDistBounded: squaredDistBoundedAVX2,
		quantLB:            quantLBAVX2,
	}
	archKernel = "avx2"
}
