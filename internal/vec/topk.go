package vec

import "sort"

// Neighbor is a point id paired with its distance to some query.
type Neighbor struct {
	ID   int
	Dist float64
}

// TopK maintains the k smallest-distance neighbors seen so far using a
// bounded max-heap. The zero value is not usable; construct with NewTopK.
type TopK struct {
	k    int
	heap []Neighbor // max-heap on Dist
}

// NewTopK returns a collector for the k nearest neighbors.
func NewTopK(k int) *TopK {
	if k <= 0 {
		panic("vec: TopK requires k > 0")
	}
	return &TopK{k: k, heap: make([]Neighbor, 0, k)}
}

// Len returns the number of neighbors currently held (≤ k).
func (t *TopK) Len() int { return len(t.heap) }

// Full reports whether k neighbors have been collected.
func (t *TopK) Full() bool { return len(t.heap) == t.k }

// Worst returns the largest distance currently held, or +Inf semantics via
// ok=false when fewer than k neighbors have been seen.
func (t *TopK) Worst() (d float64, ok bool) {
	if len(t.heap) < t.k {
		return 0, false
	}
	return t.heap[0].Dist, true
}

// Push offers a neighbor. It is kept only if fewer than k neighbors are held
// or its distance beats the current worst. Returns true if kept.
func (t *TopK) Push(id int, dist float64) bool {
	if len(t.heap) < t.k {
		t.heap = append(t.heap, Neighbor{ID: id, Dist: dist})
		t.up(len(t.heap) - 1)
		return true
	}
	if dist >= t.heap[0].Dist {
		return false
	}
	t.heap[0] = Neighbor{ID: id, Dist: dist}
	t.down(0)
	return true
}

// Results returns the collected neighbors sorted by ascending distance
// (ties broken by id). The collector remains valid afterwards.
func (t *TopK) Results() []Neighbor {
	out := make([]Neighbor, len(t.heap))
	copy(out, t.heap)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

func (t *TopK) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if t.heap[parent].Dist >= t.heap[i].Dist {
			break
		}
		t.heap[parent], t.heap[i] = t.heap[i], t.heap[parent]
		i = parent
	}
}

func (t *TopK) down(i int) {
	n := len(t.heap)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && t.heap[l].Dist > t.heap[largest].Dist {
			largest = l
		}
		if r < n && t.heap[r].Dist > t.heap[largest].Dist {
			largest = r
		}
		if largest == i {
			return
		}
		t.heap[i], t.heap[largest] = t.heap[largest], t.heap[i]
		i = largest
	}
}
