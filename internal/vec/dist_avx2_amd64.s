// AVX2/FMA distance kernels (the "avx2" row of the dispatch table).
//
// Every kernel accumulates in float64 like the pure-Go kernels: float32
// inputs are widened with VCVTPS2PD before any arithmetic, products are
// fused into 256-bit float64 accumulators with VFMADD231PD, and each kernel
// has ONE fixed summation order — the vector lanes are independent
// accumulator chains (like the unrolled kernels' s0..s3), reduced at the
// end in a fixed tree: ((acc0+acc1)+(acc2+acc3)) vector-wise, then
// (lane0+lane2)+(lane1+lane3) horizontally, then the scalar tail terms in
// index order. The order depends only on len, never on data or bounds, so
// the kernel is internally deterministic and a surviving row's value is
// bound-independent (the bound only triggers the early +Inf return; it
// never reroutes accumulation).
//
// Unlike the Go kernels, differences are taken AFTER widening (float64
// subtraction of exactly-converted float32s is exact), which makes these
// kernels agree with the float64 scalar reference more closely than the
// float32-differencing Go kernels do. Scalar tails use unfused SSE mul+add
// after VZEROUPPER; fixed order, so still deterministic.
//
// squaredDistAVX2 and squaredDistBoundedAVX2 deliberately share the exact
// same accumulation structure — 16-component FMA stripes, the same
// reduction tree, the same unfused scalar tail for the len%16 remainder —
// so a surviving bounded row is bit-identical to the unbounded squared
// distance at EVERY length, not just stripe multiples. The ladder relies
// on that equality (a verified neighbor's reported distance must equal an
// exact recomputation with the same kernel); keep the two routines
// structurally in lockstep when editing either. dotAVX2 has no bounded
// counterpart, so it keeps an extra 4-wide cleanup loop before its tail.
//
// All memory accesses are unaligned-safe (VEX loads and VCVTPS2PD m128
// forms carry no alignment requirement), so gathered Matrix rows and
// arbitrary subslice views are fine.

#include "textflag.h"

DATA absmask<>+0(SB)/8, $0x7FFFFFFFFFFFFFFF
GLOBL absmask<>(SB), RODATA|NOPTR, $8

// unitGuard (0.5002) as float64 bits; keep in sync with quant.go.
DATA unitguard<>+0(SB)/8, $0x3FE001A36E2EB1C4
GLOBL unitguard<>(SB), RODATA|NOPTR, $8

// func dotAVX2(a, b []float32) float64
TEXT ·dotAVX2(SB), NOSPLIT, $0-56
	MOVQ a_base+0(FP), SI
	MOVQ b_base+24(FP), DX
	MOVQ a_len+8(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	CMPQ CX, $16
	JL   dot4
dot16:
	VCVTPS2PD (SI), Y4
	VCVTPS2PD (DX), Y5
	VFMADD231PD Y5, Y4, Y0
	VCVTPS2PD 16(SI), Y6
	VCVTPS2PD 16(DX), Y7
	VFMADD231PD Y7, Y6, Y1
	VCVTPS2PD 32(SI), Y4
	VCVTPS2PD 32(DX), Y5
	VFMADD231PD Y5, Y4, Y2
	VCVTPS2PD 48(SI), Y6
	VCVTPS2PD 48(DX), Y7
	VFMADD231PD Y7, Y6, Y3
	ADDQ $64, SI
	ADDQ $64, DX
	SUBQ $16, CX
	CMPQ CX, $16
	JGE  dot16
dot4:
	CMPQ CX, $4
	JL   dotreduce
	VCVTPS2PD (SI), Y4
	VCVTPS2PD (DX), Y5
	VFMADD231PD Y5, Y4, Y0
	ADDQ $16, SI
	ADDQ $16, DX
	SUBQ $4, CX
	JMP  dot4
dotreduce:
	VADDPD Y1, Y0, Y0
	VADDPD Y3, Y2, Y2
	VADDPD Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD X1, X0, X0
	VHADDPD X0, X0, X0
	VZEROUPPER
dottail:
	TESTQ CX, CX
	JZ    dotdone
	CVTSS2SD (SI), X4
	CVTSS2SD (DX), X5
	MULSD X5, X4
	ADDSD X4, X0
	ADDQ  $4, SI
	ADDQ  $4, DX
	DECQ  CX
	JMP   dottail
dotdone:
	MOVSD X0, ret+48(FP)
	RET

// func squaredDistAVX2(a, b []float32) float64
TEXT ·squaredDistAVX2(SB), NOSPLIT, $0-56
	MOVQ a_base+0(FP), SI
	MOVQ b_base+24(FP), DX
	MOVQ a_len+8(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	CMPQ CX, $16
	JL   sqreduce
sq16:
	VCVTPS2PD (SI), Y4
	VCVTPS2PD (DX), Y5
	VSUBPD Y5, Y4, Y4
	VFMADD231PD Y4, Y4, Y0
	VCVTPS2PD 16(SI), Y6
	VCVTPS2PD 16(DX), Y7
	VSUBPD Y7, Y6, Y6
	VFMADD231PD Y6, Y6, Y1
	VCVTPS2PD 32(SI), Y4
	VCVTPS2PD 32(DX), Y5
	VSUBPD Y5, Y4, Y4
	VFMADD231PD Y4, Y4, Y2
	VCVTPS2PD 48(SI), Y6
	VCVTPS2PD 48(DX), Y7
	VSUBPD Y7, Y6, Y6
	VFMADD231PD Y6, Y6, Y3
	ADDQ $64, SI
	ADDQ $64, DX
	SUBQ $16, CX
	CMPQ CX, $16
	JGE  sq16
sqreduce:
	VADDPD Y1, Y0, Y0
	VADDPD Y3, Y2, Y2
	VADDPD Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD X1, X0, X0
	VHADDPD X0, X0, X0
	VZEROUPPER
sqtail:
	TESTQ CX, CX
	JZ    sqdone
	CVTSS2SD (SI), X4
	CVTSS2SD (DX), X5
	SUBSD X5, X4
	MULSD X4, X4
	ADDSD X4, X0
	ADDQ  $4, SI
	ADDQ  $4, DX
	DECQ  CX
	JMP   sqtail
sqdone:
	MOVSD X0, ret+48(FP)
	RET

// func squaredDistBoundedAVX2(a, b []float32, bound float64) float64
//
// Early abandon is tested once per 16-component stripe: after each stripe's
// FMAs the four accumulators are reduced to a scalar running total and
// compared against bound — the accumulators themselves are never touched by
// the check, so abandoning is the ONLY effect the bound has and a surviving
// row's value is bit-identical under every bound, +Inf included.
TEXT ·squaredDistBoundedAVX2(SB), NOSPLIT, $0-64
	MOVQ  a_base+0(FP), SI
	MOVQ  b_base+24(FP), DX
	MOVQ  a_len+8(FP), CX
	MOVSD bound+48(FP), X15
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD X8, X8, X8
	CMPQ CX, $16
	JL   bdreduce
bdstripe:
	VCVTPS2PD (SI), Y4
	VCVTPS2PD (DX), Y5
	VSUBPD Y5, Y4, Y4
	VFMADD231PD Y4, Y4, Y0
	VCVTPS2PD 16(SI), Y6
	VCVTPS2PD 16(DX), Y7
	VSUBPD Y7, Y6, Y6
	VFMADD231PD Y6, Y6, Y1
	VCVTPS2PD 32(SI), Y4
	VCVTPS2PD 32(DX), Y5
	VSUBPD Y5, Y4, Y4
	VFMADD231PD Y4, Y4, Y2
	VCVTPS2PD 48(SI), Y6
	VCVTPS2PD 48(DX), Y7
	VSUBPD Y7, Y6, Y6
	VFMADD231PD Y6, Y6, Y3
	ADDQ $64, SI
	ADDQ $64, DX
	SUBQ $16, CX

	// Running total = reduce(acc0..acc3); abandon when it exceeds bound.
	VADDPD Y1, Y0, Y8
	VADDPD Y3, Y2, Y9
	VADDPD Y9, Y8, Y8
	VEXTRACTF128 $1, Y8, X9
	VADDPD X9, X8, X8
	VHADDPD X8, X8, X8
	VUCOMISD X15, X8
	JA   bdabandonv

	CMPQ CX, $16
	JGE  bdstripe
	JMP  bdtailentry
bdreduce:
	// len < 16 from the start: the accumulators are all zero, so the
	// running total is too; fall through to the scalar loop.
	VXORPD X8, X8, X8
bdtailentry:
	VZEROUPPER
bdtail:
	TESTQ CX, CX
	JZ    bdfinal
	CVTSS2SD (SI), X4
	CVTSS2SD (DX), X5
	SUBSD X5, X4
	MULSD X4, X4
	ADDSD X4, X8
	ADDQ  $4, SI
	ADDQ  $4, DX
	DECQ  CX
	JMP   bdtail
bdfinal:
	UCOMISD X15, X8
	JA    bdabandon
	MOVSD X8, ret+56(FP)
	RET
bdabandonv:
	VZEROUPPER
bdabandon:
	MOVQ $0x7FF0000000000000, AX // +Inf
	MOVQ AX, ret+56(FP)
	RET

// func quantLBAVX2(u []float64, codes []int8) float64
//
// The int8 path of the asymmetric quantized lower bound: 8 codes per
// iteration are sign-extended with VPMOVSXBD, widened to float64 with
// VCVTDQ2PD, and folded as max(0, |code−u| − unitGuard)² into two
// accumulator vectors (8 independent chains). abs is a sign-mask VANDPD;
// the clamp is VMAXPD against zero, which also maps a NaN term to 0 —
// sound for a lower bound (QuantizeQueryUnits already maps NaN query
// components to 0 anyway).
TEXT ·quantLBAVX2(SB), NOSPLIT, $0-56
	MOVQ u_base+0(FP), DI
	MOVQ codes_base+24(FP), SI
	MOVQ u_len+8(FP), CX
	VBROADCASTSD absmask<>(SB), Y12
	VBROADCASTSD unitguard<>(SB), Y13
	VXORPD Y14, Y14, Y14
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	CMPQ CX, $8
	JL   qreduce
qloop8:
	VPMOVSXBD (SI), Y4
	VEXTRACTI128 $1, Y4, X5
	VCVTDQ2PD X4, Y6
	VCVTDQ2PD X5, Y7
	VSUBPD (DI), Y6, Y6
	VSUBPD 32(DI), Y7, Y7
	VANDPD Y12, Y6, Y6
	VANDPD Y12, Y7, Y7
	VSUBPD Y13, Y6, Y6
	VSUBPD Y13, Y7, Y7
	VMAXPD Y14, Y6, Y6
	VMAXPD Y14, Y7, Y7
	VFMADD231PD Y6, Y6, Y0
	VFMADD231PD Y7, Y7, Y1
	ADDQ $8, SI
	ADDQ $64, DI
	SUBQ $8, CX
	CMPQ CX, $8
	JGE  qloop8
qreduce:
	VADDPD Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD X1, X0, X0
	VHADDPD X0, X0, X0
	VZEROUPPER
qtail:
	// X12/X13/X14 keep the low lanes of the mask/guard/zero vectors
	// across VZEROUPPER.
	TESTQ CX, CX
	JZ    qdone
	MOVBQSX (SI), AX
	CVTSQ2SD AX, X4
	MOVSD (DI), X5
	SUBSD X5, X4
	ANDPD X12, X4
	SUBSD X13, X4
	MAXSD X14, X4
	MULSD X4, X4
	ADDSD X4, X0
	ADDQ  $1, SI
	ADDQ  $8, DI
	DECQ  CX
	JMP   qtail
qdone:
	MOVSD X0, ret+48(FP)
	RET
