// Package vec provides dense float32 vector primitives used throughout the
// DB-LSH codebase: distance computation, dot products, and a flat row-major
// matrix representation that keeps point data contiguous in memory.
//
// All hot loops are written so the compiler can keep operands in registers;
// distances are accumulated in float64 to avoid catastrophic cancellation on
// high-dimensional data.
package vec

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b. The slices must have equal length.
func Dot(a, b []float32) float64 {
	_ = b[len(a)-1] // bounds-check hint
	var s float64
	for i, x := range a {
		s += float64(x) * float64(b[i])
	}
	return s
}

// SquaredDist returns the squared Euclidean distance between a and b.
func SquaredDist(a, b []float32) float64 {
	_ = b[len(a)-1]
	var s float64
	for i, x := range a {
		d := float64(x) - float64(b[i])
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between a and b.
func Dist(a, b []float32) float64 {
	return math.Sqrt(SquaredDist(a, b))
}

// Norm returns the Euclidean norm of a.
func Norm(a []float32) float64 {
	var s float64
	for _, x := range a {
		s += float64(x) * float64(x)
	}
	return math.Sqrt(s)
}

// Scale multiplies every component of a by f in place.
func Scale(a []float32, f float32) {
	for i := range a {
		a[i] *= f
	}
}

// Add adds b into a component-wise in place.
func Add(a, b []float32) {
	_ = b[len(a)-1]
	for i := range a {
		a[i] += b[i]
	}
}

// Matrix is an n×d row-major matrix of float32. Rows are points. The backing
// array is one contiguous allocation, which matters for cache behaviour when
// scanning millions of candidates.
type Matrix struct {
	data []float32
	n, d int
}

// NewMatrix allocates an n×d zero matrix.
func NewMatrix(n, d int) *Matrix {
	if n < 0 || d <= 0 {
		panic(fmt.Sprintf("vec: invalid matrix shape %d×%d", n, d))
	}
	return &Matrix{data: make([]float32, n*d), n: n, d: d}
}

// WrapMatrix wraps an existing flat slice as an n×d matrix without copying.
// len(data) must equal n*d.
func WrapMatrix(data []float32, n, d int) *Matrix {
	if len(data) != n*d {
		panic(fmt.Sprintf("vec: wrap size mismatch: len=%d want %d×%d", len(data), n, d))
	}
	return &Matrix{data: data, n: n, d: d}
}

// Rows returns the number of rows (points).
func (m *Matrix) Rows() int { return m.n }

// Dim returns the dimensionality of each row.
func (m *Matrix) Dim() int { return m.d }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float32 {
	return m.data[i*m.d : (i+1)*m.d : (i+1)*m.d]
}

// SetRow copies p into row i. len(p) must equal Dim().
func (m *Matrix) SetRow(i int, p []float32) {
	if len(p) != m.d {
		panic(fmt.Sprintf("vec: SetRow dim mismatch: %d want %d", len(p), m.d))
	}
	copy(m.Row(i), p)
}

// Data returns the backing slice (row-major).
func (m *Matrix) Data() []float32 { return m.data }

// Append adds a row to the matrix, growing storage as needed, and returns the
// new row index.
func (m *Matrix) Append(p []float32) int {
	if len(p) != m.d {
		panic(fmt.Sprintf("vec: Append dim mismatch: %d want %d", len(p), m.d))
	}
	m.data = append(m.data, p...)
	m.n++
	return m.n - 1
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	out := &Matrix{data: make([]float32, len(m.data)), n: m.n, d: m.d}
	copy(out.data, m.data)
	return out
}

// Slice returns a view of rows [lo,hi) sharing storage with m.
func (m *Matrix) Slice(lo, hi int) *Matrix {
	if lo < 0 || hi < lo || hi > m.n {
		panic(fmt.Sprintf("vec: slice [%d,%d) out of range n=%d", lo, hi, m.n))
	}
	return &Matrix{data: m.data[lo*m.d : hi*m.d], n: hi - lo, d: m.d}
}
