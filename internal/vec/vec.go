// Package vec provides dense float32 vector primitives used throughout the
// DB-LSH codebase: distance computation, dot products, and a flat row-major
// matrix representation that keeps point data contiguous in memory.
//
// All hot loops are written so the compiler can keep operands in registers;
// distances are accumulated in float64 to avoid catastrophic cancellation on
// high-dimensional data.
//
// The package is determinism-critical: candidate distances must be
// bit-identical across runs for the sharded fan-out merge to agree with the
// sequential reference path, so dblsh-lint's detorder analyzer patrols it.
//
// dblsh:deterministic
package vec

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b. The slices must have equal
// length; zero-length inputs return 0. The computation routes through the
// runtime-dispatched kernel table (see SetKernel); variants may differ in
// summation order and therefore in the last ulps of the result.
func Dot(a, b []float32) float64 {
	return activeKernel.dot(a, b)
}

// dotUnrolled is the 4×-unrolled dot kernel, the dispatch default.
//
// dblsh:kernelimpl
func dotUnrolled(a, b []float32) float64 {
	if len(a) == 0 {
		return 0
	}
	_ = b[len(a)-1] // bounds-check hint
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += float64(a[i]) * float64(b[i])
		s1 += float64(a[i+1]) * float64(b[i+1])
		s2 += float64(a[i+2]) * float64(b[i+2])
		s3 += float64(a[i+3]) * float64(b[i+3])
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(a); i++ {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

// SquaredDist returns the squared Euclidean distance between a and b. The
// slices must have equal length; zero-length inputs return 0.
//
// The loop is 4×-unrolled into independent accumulators so the four
// dependency chains retire in parallel — the verification hot path spends
// nearly all its time here. Component differences are taken in float32 (one
// conversion per element instead of two; the half-ulp it rounds away is at
// the input data's own precision), then squared and accumulated in float64
// so long sums never cancel catastrophically. Routes through the
// runtime-dispatched kernel table (see SetKernel).
func SquaredDist(a, b []float32) float64 {
	return activeKernel.squaredDist(a, b)
}

// squaredDistUnrolled is the 4×-unrolled squared-distance kernel, the
// dispatch default.
//
// dblsh:kernelimpl
func squaredDistUnrolled(a, b []float32) float64 {
	if len(a) == 0 {
		return 0
	}
	_ = b[len(a)-1] // bounds-check hint
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += float64(d0) * float64(d0)
		s1 += float64(d1) * float64(d1)
		s2 += float64(d2) * float64(d2)
		s3 += float64(d3) * float64(d3)
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s += float64(d) * float64(d)
	}
	return s
}

// Dist returns the Euclidean distance between a and b.
func Dist(a, b []float32) float64 {
	return math.Sqrt(SquaredDist(a, b))
}

// Norm returns the Euclidean norm of a.
func Norm(a []float32) float64 {
	var s float64
	for _, x := range a {
		s += float64(x) * float64(x)
	}
	return math.Sqrt(s)
}

// Scale multiplies every component of a by f in place.
func Scale(a []float32, f float32) {
	for i := range a {
		a[i] *= f
	}
}

// Add adds b into a component-wise in place.
func Add(a, b []float32) {
	if len(a) == 0 {
		return
	}
	_ = b[len(a)-1]
	for i := range a {
		a[i] += b[i]
	}
}

// Matrix is an n×d row-major matrix of float32. Rows are points. The backing
// array is one contiguous allocation, which matters for cache behaviour when
// scanning millions of candidates.
type Matrix struct {
	data []float32
	n, d int
}

// NewMatrix allocates an n×d zero matrix.
func NewMatrix(n, d int) *Matrix {
	if n < 0 || d <= 0 {
		panic(fmt.Sprintf("vec: invalid matrix shape %d×%d", n, d))
	}
	return &Matrix{data: make([]float32, n*d), n: n, d: d}
}

// WrapMatrix wraps an existing flat slice as an n×d matrix without copying.
// len(data) must equal n*d.
func WrapMatrix(data []float32, n, d int) *Matrix {
	if len(data) != n*d {
		panic(fmt.Sprintf("vec: wrap size mismatch: len=%d want %d×%d", len(data), n, d))
	}
	return &Matrix{data: data, n: n, d: d}
}

// Rows returns the number of rows (points).
func (m *Matrix) Rows() int { return m.n }

// Dim returns the dimensionality of each row.
func (m *Matrix) Dim() int { return m.d }

// Row returns row i as a view aliasing the matrix storage: writes through
// the returned slice are visible in the matrix and vice versa. The view's
// capacity is clipped to the row, so appending to it cannot clobber the
// following rows. A later Append to the matrix may reallocate the backing
// array, after which previously returned rows no longer alias it.
func (m *Matrix) Row(i int) []float32 {
	return m.data[i*m.d : (i+1)*m.d : (i+1)*m.d]
}

// SetRow copies p into row i. len(p) must equal Dim().
func (m *Matrix) SetRow(i int, p []float32) {
	if len(p) != m.d {
		panic(fmt.Sprintf("vec: SetRow dim mismatch: %d want %d", len(p), m.d))
	}
	copy(m.Row(i), p)
}

// Data returns the backing slice (row-major). It is a view, not a copy:
// mutations through it are visible in the matrix, and an Append that grows
// the matrix may move the storage, detaching previously returned slices.
// Use Clone for an independent copy.
func (m *Matrix) Data() []float32 { return m.data }

// Append adds a row to the matrix, growing storage as needed, and returns the
// new row index.
func (m *Matrix) Append(p []float32) int {
	if len(p) != m.d {
		panic(fmt.Sprintf("vec: Append dim mismatch: %d want %d", len(p), m.d))
	}
	m.data = append(m.data, p...)
	m.n++
	return m.n - 1
}

// Clone returns a deep copy of the matrix. The copy owns fresh storage:
// no later mutation or Append on either matrix can affect the other.
func (m *Matrix) Clone() *Matrix {
	out := &Matrix{data: make([]float32, len(m.data)), n: m.n, d: m.d}
	copy(out.data, m.data)
	return out
}

// Slice returns a view of rows [lo,hi) sharing storage with m: writes
// through the view are visible in the parent and vice versa. The view's
// capacity is clipped at hi, so an Append on the view reallocates instead
// of silently overwriting the parent's rows beyond it — after such an
// Append the view no longer aliases the parent. An Append on the parent
// may likewise move the parent's storage and detach the view.
func (m *Matrix) Slice(lo, hi int) *Matrix {
	if lo < 0 || hi < lo || hi > m.n {
		panic(fmt.Sprintf("vec: slice [%d,%d) out of range n=%d", lo, hi, m.n))
	}
	return &Matrix{data: m.data[lo*m.d : hi*m.d : hi*m.d], n: hi - lo, d: m.d}
}
