package vec

import (
	"fmt"
	"math"
	"os"
	"sort"
)

// Runtime kernel dispatch.
//
// The exported hot entry points (Dot, SquaredDist, the bounded sweeps and
// the quantized pre-filter) route through a process-wide kernel table so
// the implementation can be selected at startup — automatically from the
// detected CPU features, overridden by the DBLSH_KERNEL environment
// variable — or explicitly by SetKernel in tests, benchmarks and the
// server's -kernel flag. The portable rows are always present:
//
//	scalar    straight loops; the oracle every other variant is
//	          property-tested and fuzzed against
//	unrolled  4×-unrolled with four independent float64 accumulator
//	          chains (the portable default; the PR 3 kernels)
//	wide      8×-unrolled with eight chains, plus the 8×-widening int8
//	          path — written so the eight independent lanes pipeline on
//	          machines with enough FP ports, at identical memory traffic
//
// registerArchKernels (one per GOARCH) adds hardware rows when the running
// CPU supports them:
//
//	avx2      amd64 assembly: VCVTPS2PD widening + VFMADD231PD into four
//	          256-bit float64 accumulator chains; requires AVX2+FMA with
//	          OS-saved YMM state (internal/vec/cpu)
//	neon      arm64 assembly: Advanced SIMD, always available on arm64
//
// Selection priority is SetKernel (flag/forced) > DBLSH_KERNEL (env) >
// auto-detect; KernelSource reports which one decided. The variants differ
// in floating-point summation order, so their results may differ in the
// last ulps; each is internally deterministic, and all quantized lower
// bounds remain certain lower bounds under every variant. SetKernel must
// not race with running queries: select the kernel before serving
// traffic.

// kernelImpl bundles one implementation of every dispatched primitive.
type kernelImpl struct {
	name               string
	dot                func(a, b []float32) float64
	squaredDist        func(a, b []float32) float64
	squaredDistBounded func(a, b []float32, bound float64) float64
	quantLB            func(u []float64, codes []int8) float64
}

// kernelTable is the only place kernel implementations are named: every
// call routes through it so a runtime value can never pick a different
// summation order mid-query.
//
// dblsh:dispatch
var kernelTable = map[string]kernelImpl{
	"scalar": {
		name:               "scalar",
		dot:                dotScalar,
		squaredDist:        squaredDistScalar,
		squaredDistBounded: squaredDistBoundedScalar,
		quantLB:            quantLBScalar,
	},
	"unrolled": {
		name:               "unrolled",
		dot:                dotUnrolled,
		squaredDist:        squaredDistUnrolled,
		squaredDistBounded: squaredDistBounded,
		quantLB:            quantLBWide,
	},
	"wide": {
		name:               "wide",
		dot:                dotWide,
		squaredDist:        squaredDistWide,
		squaredDistBounded: squaredDistBoundedWide,
		quantLB:            quantLBWide,
	},
}

var activeKernel = kernelTable["unrolled"]

// archKernel names the best hardware kernel registerArchKernels added for
// this CPU, or "" when only the portable rows exist. Auto-selection prefers
// it over the portable default.
var archKernel string

// kernelSource records how the active kernel was chosen: "auto" (CPU
// feature detection, or the portable default), "env" (DBLSH_KERNEL) or
// "forced" (SetKernel — the server's -kernel flag, tests, benchmarks).
var kernelSource = "auto"

func init() {
	// Order matters: the arch rows must exist before auto-selection and
	// before a DBLSH_KERNEL value can name them. A per-file init in the
	// _amd64/_arm64 files would sort AFTER this one, so registration is an
	// explicit call instead.
	registerArchKernels()
	if archKernel != "" {
		activeKernel = kernelTable[archKernel]
	}
	if name := os.Getenv("DBLSH_KERNEL"); name != "" {
		if err := SetKernel(name); err != nil {
			fmt.Fprintf(os.Stderr, "dblsh: ignoring DBLSH_KERNEL, keeping %q: %v\n", KernelName(), err)
		} else {
			kernelSource = "env"
		}
	}
}

// SetKernel selects the active kernel implementation by name (see
// KernelNames for what this build/CPU registered). Not safe to call
// concurrently with queries.
func SetKernel(name string) error {
	impl, ok := kernelTable[name]
	if !ok {
		return fmt.Errorf("vec: unknown kernel %q (have %v)", name, KernelNames())
	}
	activeKernel = impl
	kernelSource = "forced"
	return nil
}

// KernelName returns the active kernel implementation's name.
func KernelName() string { return activeKernel.name }

// KernelSource reports how the active kernel was selected: "auto"
// (CPU-feature detection or the portable default), "env" (DBLSH_KERNEL
// environment override) or "forced" (an explicit SetKernel call, e.g. the
// server's -kernel flag). Lets operators distinguish "avx2 (auto)" from
// "scalar (forced)" in /stats and benchmark records.
func KernelSource() string { return kernelSource }

// KernelNames lists the available kernel implementations, sorted.
func KernelNames() []string {
	names := make([]string, 0, len(kernelTable))
	// dblsh:orderinvariant collected names are sorted below
	for name := range kernelTable {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ---- scalar oracle implementations ----

// dblsh:kernelimpl
func dotScalar(a, b []float32) float64 {
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

// dblsh:kernelimpl
func squaredDistScalar(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += float64(d) * float64(d)
	}
	return s
}

// dblsh:kernelimpl
func squaredDistBoundedScalar(a, b []float32, bound float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += float64(d) * float64(d)
		if s > bound {
			return math.Inf(1)
		}
	}
	if s > bound {
		return math.Inf(1)
	}
	return s
}

// ---- wide (8×-unrolled) implementations ----

// dblsh:kernelimpl
func dotWide(a, b []float32) float64 {
	if len(a) == 0 {
		return 0
	}
	_ = b[len(a)-1]
	var s0, s1, s2, s3, s4, s5, s6, s7 float64
	i := 0
	for ; i+8 <= len(a); i += 8 {
		s0 += float64(a[i]) * float64(b[i])
		s1 += float64(a[i+1]) * float64(b[i+1])
		s2 += float64(a[i+2]) * float64(b[i+2])
		s3 += float64(a[i+3]) * float64(b[i+3])
		s4 += float64(a[i+4]) * float64(b[i+4])
		s5 += float64(a[i+5]) * float64(b[i+5])
		s6 += float64(a[i+6]) * float64(b[i+6])
		s7 += float64(a[i+7]) * float64(b[i+7])
	}
	s := ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))
	for ; i < len(a); i++ {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

// dblsh:kernelimpl
func squaredDistWide(a, b []float32) float64 {
	if len(a) == 0 {
		return 0
	}
	_ = b[len(a)-1]
	var s0, s1, s2, s3, s4, s5, s6, s7 float64
	i := 0
	for ; i+8 <= len(a); i += 8 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		d4 := a[i+4] - b[i+4]
		d5 := a[i+5] - b[i+5]
		d6 := a[i+6] - b[i+6]
		d7 := a[i+7] - b[i+7]
		s0 += float64(d0) * float64(d0)
		s1 += float64(d1) * float64(d1)
		s2 += float64(d2) * float64(d2)
		s3 += float64(d3) * float64(d3)
		s4 += float64(d4) * float64(d4)
		s5 += float64(d5) * float64(d5)
		s6 += float64(d6) * float64(d6)
		s7 += float64(d7) * float64(d7)
	}
	s := ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s += float64(d) * float64(d)
	}
	return s
}

// dblsh:kernelimpl
func squaredDistBoundedWide(a, b []float32, bound float64) float64 {
	if len(a) == 0 {
		return 0
	}
	_ = b[len(a)-1]
	var s float64
	i := 0
	for i+abandonStride <= len(a) {
		var s0, s1, s2, s3, s4, s5, s6, s7 float64
		for k := i; k < i+abandonStride; k += 8 {
			d0 := a[k] - b[k]
			d1 := a[k+1] - b[k+1]
			d2 := a[k+2] - b[k+2]
			d3 := a[k+3] - b[k+3]
			d4 := a[k+4] - b[k+4]
			d5 := a[k+5] - b[k+5]
			d6 := a[k+6] - b[k+6]
			d7 := a[k+7] - b[k+7]
			s0 += float64(d0) * float64(d0)
			s1 += float64(d1) * float64(d1)
			s2 += float64(d2) * float64(d2)
			s3 += float64(d3) * float64(d3)
			s4 += float64(d4) * float64(d4)
			s5 += float64(d5) * float64(d5)
			s6 += float64(d6) * float64(d6)
			s7 += float64(d7) * float64(d7)
		}
		s += ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))
		i += abandonStride
		if s > bound {
			return math.Inf(1)
		}
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s += float64(d) * float64(d)
	}
	if s > bound {
		return math.Inf(1)
	}
	return s
}
