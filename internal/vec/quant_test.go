package vec

import (
	"math"
	"math/rand"
	"testing"
)

// quantMatrix builds a random matrix and its int8 mirror for the quant
// tests: rows×dim standard-normal values scaled by spread.
func quantMatrix(seed int64, rows, dim int, spread float64) (*Matrix, *QuantMatrix, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(rows, dim)
	for i := 0; i < rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = float32(rng.NormFloat64() * spread)
		}
	}
	return m, NewQuantMatrix(m), rng
}

// TestQuantBoundProperty is the central soundness property: across random
// data, queries and every dispatched kernel, the quantized lower bound must
// never exceed the exact squared distance — the inequality the two-stage
// verification path's result-identity rests on.
func TestQuantBoundProperty(t *testing.T) {
	defer SetKernel(KernelName())
	for _, spread := range []float64{0.01, 1, 1000} {
		m, qm, rng := quantMatrix(31, 200, 24, spread)
		for trial := 0; trial < 50; trial++ {
			q := make([]float32, m.Dim())
			for j := range q {
				q[j] = float32(rng.NormFloat64() * spread)
			}
			var u []float64
			u = qm.QuantizeQueryUnits(q, u)
			for _, name := range KernelNames() {
				if err := SetKernel(name); err != nil {
					t.Fatal(err)
				}
				for i := 0; i < m.Rows(); i++ {
					lb := qm.LowerBoundSq(u, i)
					exact := scalarSquaredDist(q, m.Row(i))
					if lb > exact {
						t.Fatalf("spread %v kernel %s row %d: lower bound %v exceeds exact %v",
							spread, name, i, lb, exact)
					}
				}
			}
		}
	}
}

// TestQuantDequantError pins the advertised reconstruction error: every
// mirrored in-range value dequantizes back to within Scale()/2 (plus float
// rounding) of the original.
func TestQuantDequantError(t *testing.T) {
	m, qm, _ := quantMatrix(7, 300, 16, 5)
	tol := float64(qm.Scale()) * 0.5001
	d := m.Dim()
	for i := 0; i < m.Rows(); i++ {
		row := m.Row(i)
		codes := qm.RowCodes(i)
		if len(codes) != d {
			t.Fatalf("row %d: %d codes for dim %d", i, len(codes), d)
		}
		for j, v := range row {
			back := float64(qm.off) + float64(qm.scale)*float64(codes[j])
			if diff := math.Abs(back - float64(v)); diff > tol {
				t.Fatalf("row %d[%d]: dequant error %v exceeds %v (scale %v)", i, j, diff, tol, qm.Scale())
			}
		}
	}
}

// TestQuantKernelsMatchScalar property-tests every registered row's
// lower-bound kernel against the scalar oracle across awkward dims.
func TestQuantKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for dim := 1; dim <= 40; dim++ {
		u := make([]float64, dim)
		codes := make([]int8, dim)
		for trial := 0; trial < 20; trial++ {
			for j := range u {
				u[j] = rng.NormFloat64() * 64
				codes[j] = int8(rng.Intn(255) - 127)
			}
			want := quantLBScalar(u, codes)
			for name, impl := range kernelTable {
				got := impl.quantLB(u, codes)
				if math.Abs(got-want) > 1e-9*(1+want) {
					t.Fatalf("dim %d kernel %s: quantLB = %v, scalar = %v", dim, name, got, want)
				}
			}
		}
	}
}

// TestQuantAliasingContract is the regression test for the mirror's
// copy-by-value contract: mutating a row through the parent matrix leaves
// its codes stale (CheckRow reports it), UpdateRow refreshes them, and Sync
// catches the mirror up after appends.
func TestQuantAliasingContract(t *testing.T) {
	m, qm, rng := quantMatrix(3, 50, 8, 5)
	if !qm.CheckRow(17) {
		t.Fatal("fresh mirror reports row 17 stale")
	}
	// In-place mutation through the aliasing Row view: the mirror must not
	// see it until UpdateRow.
	m.Row(17)[2] += 3
	if qm.CheckRow(17) {
		t.Fatal("mutated row 17 still reports fresh codes")
	}
	qm.UpdateRow(17)
	if !qm.CheckRow(17) {
		t.Fatal("UpdateRow did not refresh row 17")
	}
	// Appended rows are invisible until Sync.
	p := make([]float32, m.Dim())
	for j := range p {
		p[j] = float32(rng.NormFloat64() * 5)
	}
	id := m.Append(p)
	if qm.Rows() != 50 {
		t.Fatalf("mirror grew to %d rows without Sync", qm.Rows())
	}
	qm.Sync()
	if qm.Rows() != 51 || !qm.CheckRow(id) {
		t.Fatalf("Sync left %d rows, row %d fresh=%v", qm.Rows(), id, qm.CheckRow(id))
	}
	// A far-out-of-range mutation forces a refit that keeps every row's
	// bound guarantee intact.
	m.Row(5)[0] = 1e6
	qm.UpdateRow(5)
	for i := 0; i <= id; i++ {
		if !qm.CheckRow(i) {
			t.Fatalf("row %d stale after refit", i)
		}
	}
}

// TestQuantPrefilterIdentity is the result-identity test: on random data
// the pre-filtered bounded sweep must report, row for row, a value the
// plain bounded sweep could have reported — exact for every row under the
// bound, +Inf (or the exact above-bound value) for the rest — so a top-k
// built from either output is identical.
func TestQuantPrefilterIdentity(t *testing.T) {
	m, qm, rng := quantMatrix(41, 500, 32, 5)
	ids := make([]int, 128)
	for trial := 0; trial < 30; trial++ {
		q := make([]float32, m.Dim())
		for j := range q {
			q[j] = float32(rng.NormFloat64() * 5)
		}
		for j := range ids {
			ids[j] = rng.Intn(m.Rows())
		}
		var u []float64
		u = qm.QuantizeQueryUnits(q, u)
		exact := make([]float64, len(ids))
		SquaredDistsTo(q, m, ids, exact)
		bound := medianOf(exact)
		got := make([]float64, len(ids))
		pruned := SquaredDistsToBoundedQuant(q, u, m, qm, ids, bound, got)
		seen := 0
		for i := range got {
			switch {
			case math.Abs(exact[i]-bound) <= 1e-6*(1+bound):
				// Rounding at the bound itself may tip either way.
			case exact[i] < bound:
				if math.Abs(got[i]-exact[i]) > 1e-6*(1+exact[i]) {
					t.Fatalf("trial %d row %d: prefiltered %v, exact %v (bound %v)", trial, i, got[i], exact[i], bound)
				}
			default:
				if got[i] < bound*(1-1e-6) {
					t.Fatalf("trial %d row %d: prefiltered %v claims under bound %v, exact %v", trial, i, got[i], bound, exact[i])
				}
			}
			if math.IsInf(got[i], 1) {
				seen++
			}
		}
		if pruned < 0 || pruned > seen {
			t.Fatalf("trial %d: pruned count %d exceeds %d +Inf rows", trial, pruned, seen)
		}
		// An infinite bound disables the pre-filter entirely.
		if p := SquaredDistsToBoundedQuant(q, u, m, qm, ids, math.Inf(1), got); p != 0 {
			t.Fatalf("trial %d: infinite bound pruned %d rows", trial, p)
		}
		for i := range got {
			if math.Abs(got[i]-exact[i]) > 1e-6*(1+exact[i]) {
				t.Fatalf("trial %d row %d: unbounded prefiltered %v, exact %v", trial, i, got[i], exact[i])
			}
		}
	}
}

// FuzzQuantBound fuzzes the two quantization guarantees: the lower bound
// never exceeds the exact squared distance (under every kernel), and every
// mirrored value dequantizes within the advertised Scale()/2 epsilon.
func FuzzQuantBound(f *testing.F) {
	f.Add(uint8(4), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add(uint8(1), []byte{0, 255})
	f.Add(uint8(9), make([]byte, 9*4))
	f.Fuzz(func(t *testing.T, dimRaw uint8, raw []byte) {
		dim := int(dimRaw%32) + 1
		vals := make([]float32, len(raw))
		for i, b := range raw {
			vals[i] = float32(int8(b)) * 0.25
		}
		if len(vals) < 2*dim {
			return
		}
		q := vals[:dim]
		rows := (len(vals) - dim) / dim
		m := WrapMatrix(vals[dim:dim+rows*dim], rows, dim)
		qm := NewQuantMatrix(m)
		tol := float64(qm.Scale()) * 0.5001
		var u []float64
		u = qm.QuantizeQueryUnits(q, u)
		defer SetKernel(KernelName())
		for _, name := range KernelNames() {
			if err := SetKernel(name); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < rows; i++ {
				lb := qm.LowerBoundSq(u, i)
				exact := scalarSquaredDist(q, m.Row(i))
				if lb > exact {
					t.Fatalf("kernel %s row %d: lower bound %v exceeds exact %v", name, i, lb, exact)
				}
			}
		}
		for i := 0; i < rows; i++ {
			row := m.Row(i)
			codes := qm.RowCodes(i)
			for j, v := range row {
				back := float64(qm.off) + float64(qm.scale)*float64(codes[j])
				if diff := math.Abs(back - float64(v)); diff > tol {
					t.Fatalf("row %d[%d]: dequant error %v exceeds %v", i, j, diff, tol)
				}
			}
		}
	})
}

// BenchmarkQuantKernels times the quantized lower-bound kernel and the full
// pre-filtered sweep against the same verification block shape as
// BenchmarkDistKernels (64 candidates of dim 128 from a 4096-row matrix).
func BenchmarkQuantKernels(b *testing.B) {
	const (
		dim   = 128
		rows  = 4096
		block = 64
	)
	rng := rand.New(rand.NewSource(5))
	m := NewMatrix(rows, dim)
	for i := 0; i < rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = float32(rng.NormFloat64())
		}
	}
	qm := NewQuantMatrix(m)
	q := make([]float32, dim)
	for j := range q {
		q[j] = float32(rng.NormFloat64())
	}
	ids := make([]int, block)
	for i := range ids {
		ids[i] = rng.Intn(rows)
	}
	out := make([]float64, block)
	var u []float64
	u = qm.QuantizeQueryUnits(q, u)
	exact := make([]float64, block)
	SquaredDistsTo(q, m, ids, exact)
	bound := medianOf(exact) / 2

	defer SetKernel(KernelName())
	for _, name := range KernelNames() {
		if err := SetKernel(name); err != nil {
			b.Fatal(err)
		}
		b.Run(name+"/quantized-lb", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for j, id := range ids {
					out[j] = qm.LowerBoundSq(u, id)
				}
			}
		})
		b.Run(name+"/quantized-prefilter", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				SquaredDistsToBoundedQuant(q, u, m, qm, ids, bound, out)
			}
		})
		b.Run(name+"/bounded-no-prefilter", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				SquaredDistsToBounded(q, m, ids, bound, out)
			}
		})
	}
}
