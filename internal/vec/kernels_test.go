package vec

import (
	"math"
	"math/rand"
	"testing"
)

// scalarSquaredDist is the straight-line reference implementation the
// unrolled and blocked kernels are checked against (and benchmarked
// against): one component per iteration, one accumulator.
func scalarSquaredDist(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return s
}

func scalarDot(a, b []float32) float64 {
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

func TestZeroLengthKernels(t *testing.T) {
	// Regression: the bounds-check hint `_ = b[len(a)-1]` used to index -1
	// on zero-length input.
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil, nil) = %v, want 0", got)
	}
	if got := Dot([]float32{}, []float32{}); got != 0 {
		t.Fatalf("Dot of empty slices = %v, want 0", got)
	}
	if got := SquaredDist(nil, nil); got != 0 {
		t.Fatalf("SquaredDist(nil, nil) = %v, want 0", got)
	}
	if got := Dist(nil, nil); got != 0 {
		t.Fatalf("Dist(nil, nil) = %v, want 0", got)
	}
	Add(nil, nil) // must not panic
	if got := squaredDistBounded(nil, nil, 1); got != 0 {
		t.Fatalf("squaredDistBounded(nil) = %v, want 0", got)
	}
}

// TestKernelsMatchScalar is the property test for the dispatched and
// blocked kernels: across every registered kernel row (hardware rows
// included) and dims 1..64 — odd dims, non-multiple-of-4 dims, and dims
// around the early-abandon stride — every path must agree with the scalar
// reference within 1e-6.
func TestKernelsMatchScalar(t *testing.T) {
	defer SetKernel(KernelName())
	for _, name := range KernelNames() {
		if err := SetKernel(name); err != nil {
			t.Fatal(err)
		}
		t.Run(name, testKernelsMatchScalar)
	}
}

func testKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Differences are taken in float32 (the data's own precision), so the
	// comparison tolerance is relative.
	close := func(got, want float64) bool {
		return math.Abs(got-want) <= 1e-6*(1+math.Abs(want))
	}
	for dim := 1; dim <= 64; dim++ {
		const rows = 17 // not a multiple of any block size
		m := NewMatrix(rows, dim)
		for i := 0; i < rows; i++ {
			row := m.Row(i)
			for j := range row {
				row[j] = float32(rng.NormFloat64())
			}
		}
		q := make([]float32, dim)
		for j := range q {
			q[j] = float32(rng.NormFloat64())
		}
		ids := make([]int, rows)
		want := make([]float64, rows)
		for i := 0; i < rows; i++ {
			ids[i] = (i * 5) % rows // shuffled gather order
			want[i] = scalarSquaredDist(q, m.Row(ids[i]))
		}

		for i, id := range ids {
			if got := SquaredDist(q, m.Row(id)); !close(got, want[i]) {
				t.Fatalf("dim %d: SquaredDist = %v, scalar = %v", dim, got, want[i])
			}
			wd := scalarDot(q, m.Row(id))
			if got := Dot(q, m.Row(id)); !close(got, wd) {
				t.Fatalf("dim %d: Dot = %v, scalar = %v", dim, got, wd)
			}
		}

		out := make([]float64, rows)
		SquaredDistsTo(q, m, ids, out)
		for i := range out {
			if !close(out[i], want[i]) {
				t.Fatalf("dim %d: SquaredDistsTo[%d] = %v, scalar = %v", dim, i, out[i], want[i])
			}
		}

		DistsTo(q, m, ids, out)
		for i := range out {
			if !close(out[i], math.Sqrt(want[i])) {
				t.Fatalf("dim %d: DistsTo[%d] = %v, scalar = %v", dim, i, out[i], math.Sqrt(want[i]))
			}
		}

		// Bounded kernel: under a median bound, rows at or below it are
		// exact and rows above it report +Inf.
		bound := medianOf(want)
		SquaredDistsToBounded(q, m, ids, bound, out)
		for i := range out {
			switch {
			case math.Abs(want[i]-bound) <= 1e-6*(1+bound):
				// At the bound itself, accumulation-order rounding may tip
				// the row either way; both the exact value and +Inf are
				// correct (top-k callers reject distances ≥ bound anyway).
			case want[i] <= bound:
				if !close(out[i], want[i]) {
					t.Fatalf("dim %d: bounded[%d] = %v, scalar = %v (bound %v)", dim, i, out[i], want[i], bound)
				}
			default:
				if !math.IsInf(out[i], 1) && !close(out[i], want[i]) {
					t.Fatalf("dim %d: abandoned row reported %v, want +Inf or %v", dim, out[i], want[i])
				}
				if out[i] < bound*(1-1e-6) {
					t.Fatalf("dim %d: bounded[%d] = %v claims to beat bound %v but scalar is %v", dim, i, out[i], bound, want[i])
				}
			}
		}

		// An infinite bound must degenerate to the exact kernel.
		SquaredDistsToBounded(q, m, ids, math.Inf(1), out)
		for i := range out {
			if !close(out[i], want[i]) {
				t.Fatalf("dim %d: unbounded bounded-kernel[%d] = %v, scalar = %v", dim, i, out[i], want[i])
			}
		}
	}
}

func medianOf(xs []float64) float64 {
	best, n := 0.0, 0
	for _, x := range xs {
		var below int
		for _, y := range xs {
			if y < x {
				below++
			}
		}
		if below == len(xs)/2 {
			return x
		}
		if below > n {
			best, n = x, below
		}
	}
	return best
}

// FuzzDistsTo drives the batch kernel with arbitrary shapes and payloads
// and cross-checks every lane against the scalar reference, under every
// registered kernel row (hardware rows included).
func FuzzDistsTo(f *testing.F) {
	f.Add(uint8(4), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add(uint8(1), []byte{0})
	f.Add(uint8(17), make([]byte, 17*3))
	f.Fuzz(func(t *testing.T, dimRaw uint8, raw []byte) {
		dim := int(dimRaw%64) + 1
		vals := make([]float32, len(raw))
		for i, b := range raw {
			vals[i] = float32(int8(b)) / 8
		}
		if len(vals) < dim {
			return
		}
		q := vals[:dim]
		rows := (len(vals) - dim) / dim
		if rows == 0 {
			return
		}
		m := WrapMatrix(vals[dim:dim+rows*dim], rows, dim)
		ids := make([]int, rows)
		for i := range ids {
			ids[i] = rows - 1 - i
		}
		out := make([]float64, rows)
		bounded := make([]float64, rows)
		defer SetKernel(KernelName())
		for _, name := range KernelNames() {
			if err := SetKernel(name); err != nil {
				t.Fatal(err)
			}
			DistsTo(q, m, ids, out)
			SquaredDistsToBounded(q, m, ids, 1.5, bounded)
			for i, id := range ids {
				want := math.Sqrt(scalarSquaredDist(q, m.Row(id)))
				if math.Abs(out[i]-want) > 1e-5*(1+want) {
					t.Fatalf("kernel %s: DistsTo[%d] = %v, scalar = %v", name, i, out[i], want)
				}
				sq := scalarSquaredDist(q, m.Row(id))
				if sq <= 1.5-1e-5 && math.Abs(bounded[i]-sq) > 1e-5*(1+sq) {
					t.Fatalf("kernel %s: bounded[%d] = %v, scalar = %v", name, i, bounded[i], sq)
				}
				if sq > 1.5+1e-5 && bounded[i] <= 1.5-1e-5 {
					t.Fatalf("kernel %s: bounded[%d] = %v under bound, scalar %v above it", name, i, bounded[i], sq)
				}
			}
		}
	})
}

// BenchmarkDistKernels compares the per-row scalar path (what verification
// used before the blocked kernels) against the unrolled, blocked, and
// early-abandon kernels on a realistic verification block: 64 candidates of
// dim 128 gathered from a 4096-row matrix.
func BenchmarkDistKernels(b *testing.B) {
	const (
		dim   = 128
		rows  = 4096
		block = 64
	)
	rng := rand.New(rand.NewSource(5))
	m := NewMatrix(rows, dim)
	for i := 0; i < rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = float32(rng.NormFloat64())
		}
	}
	q := make([]float32, dim)
	for j := range q {
		q[j] = float32(rng.NormFloat64())
	}
	ids := make([]int, block)
	for i := range ids {
		ids[i] = rng.Intn(rows)
	}
	out := make([]float64, block)

	b.Run("scalar-per-row", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j, id := range ids {
				out[j] = scalarSquaredDist(q, m.Row(id))
			}
		}
	})
	// Per-kernel rows: dot and squared-dist on one cache-hot pair (pure
	// kernel throughput), plus the gathered blocked and bounded sweeps
	// (what verification actually runs, memory effects included).
	exact := make([]float64, block)
	SquaredDistsTo(q, m, ids, exact)
	// A tight bound ~ the 10th percentile: most rows abandon early, the
	// shape of a warmed-up top-k verification.
	bound := medianOf(exact) / 2
	hot := m.Row(ids[0])
	defer SetKernel(KernelName())
	for _, name := range KernelNames() {
		if err := SetKernel(name); err != nil {
			b.Fatal(err)
		}
		// No trailing -<number> in sub-benchmark names: scripts/bench.sh
		// strips one such suffix (the GOMAXPROCS tag Go appends when
		// GOMAXPROCS > 1), so a "-128" here would survive on some machines
		// and vanish on others. Both pairs are dim 128.
		b.Run(name+"/dot", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out[0] = Dot(q, hot)
			}
		})
		b.Run(name+"/squared-dist", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out[0] = SquaredDist(q, hot)
			}
		})
		b.Run(name+"/blocked", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				SquaredDistsTo(q, m, ids, out)
			}
		})
		b.Run(name+"/blocked-bounded", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				SquaredDistsToBounded(q, m, ids, bound, out)
			}
		})
	}
}
