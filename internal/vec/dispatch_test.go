package vec

import (
	"math"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"dblsh/internal/vec/cpu"
)

// lockstepKernels are the kernels whose bounded squared-distance routine is
// written in exact structural lockstep with the unbounded one, so a
// surviving bounded row must be BIT-identical to squaredDist at every
// length. The Go unrolled/wide kernels only guarantee the weaker
// bound-independence property (their bounded variants re-reduce per
// stripe), so they are excluded here.
func lockstepKernels() map[string]bool {
	return map[string]bool{"scalar": true, "avx2": true, "neon": true}
}

// TestAllKernelsVsOracle property-tests every registered kernel row —
// including hardware rows the running CPU registered — against the float64
// scalar oracle, across dims 1..129 (odd dims, stripe boundaries 16/32/128,
// and one past them) on unaligned subslice views, so asm tail paths and
// unaligned loads are exercised. Tolerances are per kernel: dot terms are
// identical across kernels (only association differs), and the avx2 kernel
// subtracts after widening so it tracks the float64 oracle much closer
// than the float32-differencing Go kernels.
func TestAllKernelsVsOracle(t *testing.T) {
	dotTol := func(string) float64 { return 1e-9 }
	sqTol := func(name string) float64 {
		if name == "avx2" {
			return 1e-12
		}
		return 1e-6
	}
	defer SetKernel(KernelName())
	for _, name := range KernelNames() {
		if err := SetKernel(name); err != nil {
			t.Fatal(err)
		}
		impl := activeKernel
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			for dim := 1; dim <= 129; dim++ {
				for trial := 0; trial < 8; trial++ {
					// Unaligned views: the leading element pushes the slice
					// base off any 8/16-byte alignment the allocator gave it.
					rawA := make([]float32, dim+1)
					rawB := make([]float32, dim+1)
					for i := range rawA {
						rawA[i] = float32(rng.NormFloat64())
						rawB[i] = float32(rng.NormFloat64())
					}
					a, b := rawA[1:1+dim], rawB[1:1+dim]

					wantDot := scalarDot(a, b)
					if got := impl.dot(a, b); math.Abs(got-wantDot) > dotTol(name)*(1+math.Abs(wantDot)) {
						t.Fatalf("dim %d: dot = %v, oracle = %v", dim, got, wantDot)
					}
					wantSq := scalarSquaredDist(a, b)
					sq := impl.squaredDist(a, b)
					if math.Abs(sq-wantSq) > sqTol(name)*(1+wantSq) {
						t.Fatalf("dim %d: squaredDist = %v, oracle = %v", dim, sq, wantSq)
					}

					// Bound-independence: a surviving row's value must be
					// bit-identical under every bound, +Inf included.
					unb := impl.squaredDistBounded(a, b, math.Inf(1))
					if math.IsInf(unb, 1) {
						t.Fatalf("dim %d: +Inf bound abandoned a row", dim)
					}
					bound := wantSq * (0.25 + 1.5*rng.Float64())
					if got := impl.squaredDistBounded(a, b, bound); !math.IsInf(got, 1) && got != unb {
						t.Fatalf("dim %d: bounded(%v) = %v but bounded(+Inf) = %v — bound changed a surviving value",
							dim, bound, got, unb)
					}
					// Abandonment must be sound: only rows truly over the
					// bound may report +Inf.
					if got := impl.squaredDistBounded(a, b, bound); math.IsInf(got, 1) && unb <= bound {
						t.Fatalf("dim %d: bounded(%v) abandoned a row whose value %v is under the bound", dim, bound, unb)
					}

					// Lockstep kernels: the surviving bounded value IS the
					// unbounded squared distance, bit for bit.
					if lockstepKernels()[name] && unb != sq {
						t.Fatalf("dim %d: bounded(+Inf) = %v != squaredDist = %v (lockstep kernel)", dim, unb, sq)
					}
				}
			}
			// Zero-length inputs must return exact zeros through every row.
			if impl.dot(nil, nil) != 0 || impl.squaredDist(nil, nil) != 0 ||
				impl.squaredDistBounded(nil, nil, 1) != 0 {
				t.Fatal("zero-length input did not return 0")
			}
		})
	}
}

// TestAllKernelsQuantLB checks every registered row's int8 lower-bound
// kernel against the scalar oracle, dims 1..129 on unaligned views.
func TestAllKernelsQuantLB(t *testing.T) {
	defer SetKernel(KernelName())
	for _, name := range KernelNames() {
		if err := SetKernel(name); err != nil {
			t.Fatal(err)
		}
		impl := activeKernel
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			for dim := 1; dim <= 129; dim++ {
				rawU := make([]float64, dim+1)
				rawC := make([]int8, dim+1)
				for i := range rawU {
					rawU[i] = rng.NormFloat64() * 64
					rawC[i] = int8(rng.Intn(255) - 127)
				}
				u, codes := rawU[1:1+dim], rawC[1:1+dim]
				want := quantLBScalar(u, codes)
				got := impl.quantLB(u, codes)
				if math.Abs(got-want) > 1e-9*(1+want) {
					t.Fatalf("dim %d: quantLB = %v, oracle = %v", dim, got, want)
				}
			}
			if impl.quantLB(nil, nil) != 0 {
				t.Fatal("zero-length quantLB != 0")
			}
		})
	}
}

// TestKernelSource pins the selection-provenance accessor: SetKernel always
// reports "forced", and the startup value is one of the three documented
// sources (which one depends on the environment and the CPU, both out of
// the test's control).
func TestKernelSource(t *testing.T) {
	switch KernelSource() {
	case "auto", "env", "forced":
	default:
		t.Fatalf("KernelSource() = %q, want auto/env/forced", KernelSource())
	}
	orig := KernelName()
	defer SetKernel(orig)
	if err := SetKernel("scalar"); err != nil {
		t.Fatal(err)
	}
	if KernelName() != "scalar" || KernelSource() != "forced" {
		t.Fatalf("after SetKernel: name %q source %q, want scalar/forced", KernelName(), KernelSource())
	}
	if err := SetKernel("no-such-kernel"); err == nil {
		t.Fatal("SetKernel accepted an unknown name")
	} else if !strings.Contains(err.Error(), "no-such-kernel") {
		t.Fatalf("error %v does not name the rejected kernel", err)
	}
	// A failed SetKernel must not disturb the active selection.
	if KernelName() != "scalar" {
		t.Fatalf("failed SetKernel changed the active kernel to %q", KernelName())
	}
}

// TestArchKernelRegistration ties the registered hardware rows to the
// detected CPU features: the avx2 row exists exactly when the CPU reports
// AVX2+FMA, the neon row always exists on arm64, and other architectures
// get only the portable rows.
func TestArchKernelRegistration(t *testing.T) {
	has := func(name string) bool {
		_, ok := kernelTable[name]
		return ok
	}
	f := cpu.Detect()
	switch runtime.GOARCH {
	case "amd64":
		want := f.AVX2 && f.FMA
		if has("avx2") != want {
			t.Fatalf("avx2 row registered=%v, features %+v", has("avx2"), f)
		}
		if want && archKernel != "avx2" {
			t.Fatalf("archKernel = %q, want avx2", archKernel)
		}
		if has("neon") {
			t.Fatal("neon row registered on amd64")
		}
	case "arm64":
		if !has("neon") || archKernel != "neon" {
			t.Fatalf("neon row registered=%v archKernel=%q on arm64", has("neon"), archKernel)
		}
		if has("avx2") {
			t.Fatal("avx2 row registered on arm64")
		}
	default:
		if archKernel != "" || has("avx2") || has("neon") {
			t.Fatalf("hardware rows on %s: archKernel=%q", runtime.GOARCH, archKernel)
		}
	}
}
