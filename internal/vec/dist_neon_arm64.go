package vec

import "dblsh/internal/vec/cpu"

// Declarations for the NEON kernels in dist_neon_arm64.s. As with the
// avx2 kernels, slice arguments must satisfy len(b) >= len(a): the asm
// reads len(a) components without bounds checks, relying on the contract
// enforced at the public entry points.

// dotNEON is the Advanced SIMD dot kernel: float32 lanes widened with
// FCVTL and fused into four 2-lane float64 accumulator chains.
// dblsh:kernelimpl
//
//go:noescape
func dotNEON(a, b []float32) float64

// squaredDistNEON is the Advanced SIMD squared-Euclidean kernel.
// Differences are taken in float32 (FSUB.4S, matching the pure-Go
// kernels) before widening and fused squaring.
// dblsh:kernelimpl
//
//go:noescape
func squaredDistNEON(a, b []float32) float64

// squaredDistBoundedNEON is the early-abandon variant: the running total
// is reduced and tested against bound once per 16-component stripe, with
// the same accumulation structure as squaredDistNEON so surviving rows
// are bit-identical to the unbounded value.
// dblsh:kernelimpl
//
//go:noescape
func squaredDistBoundedNEON(a, b []float32, bound float64) float64

// registerArchKernels adds the hardware kernel rows this build can run.
// Advanced SIMD is part of the ARMv8-A baseline, so on arm64 the neon row
// always registers. The int8 quantized lower bound stays on the pure-Go
// wide path: sign-extending byte→float64 conversion has no assembler
// support worth hand-encoding, and the verification sweep is dominated by
// the float kernels anyway.
//
// dblsh:dispatch
func registerArchKernels() {
	if !cpu.Detect().ASIMD {
		return
	}
	kernelTable["neon"] = kernelImpl{
		name:               "neon",
		dot:                dotNEON,
		squaredDist:        squaredDistNEON,
		squaredDistBounded: squaredDistBoundedNEON,
		quantLB:            quantLBWide,
	}
	archKernel = "neon"
}
