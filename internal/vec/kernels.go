package vec

import "math"

// Blocked batch verification kernels.
//
// DB-LSH spends nearly all query time verifying candidates — exact distance
// computations inside the 2tL+k budget. Verifying candidates one callback at
// a time keeps the query vector and the loop bookkeeping out of steady
// state; these kernels take a whole block of candidate row ids and sweep
// them against the contiguous Matrix storage in one pass, so q stays in
// cache, the per-candidate call overhead amortizes across the block, and
// the early-abandon variant can stop a row's scan the moment it provably
// cannot beat the current k-th best.

// DistsTo computes the Euclidean distance from q to each candidate row of m
// listed in ids, writing results into out. out must have len(ids) capacity;
// out[j] corresponds to ids[j]. len(q) must equal m.Dim().
func DistsTo(q []float32, m *Matrix, ids []int, out []float64) {
	SquaredDistsTo(q, m, ids, out)
	for j, s := range out {
		out[j] = math.Sqrt(s)
	}
}

// SquaredDistsTo is DistsTo without the final square root.
func SquaredDistsTo(q []float32, m *Matrix, ids []int, out []float64) {
	_ = out[:len(ids)]
	for j, id := range ids {
		out[j] = SquaredDist(q, m.Row(id))
	}
}

// abandonStride is how many components the bounded kernel accumulates
// between bound checks: large enough that the check cost is noise, small
// enough that a hopeless high-dimensional row is dropped after a fraction
// of its components.
const abandonStride = 16

// SquaredDistsToBounded is SquaredDistsTo with early-abandon pruning: rows
// whose partial squared distance already exceeds bound are reported as +Inf
// instead of being scanned to completion. Squared distances grow
// monotonically component by component, so a row abandoned at component c
// is guaranteed to have its true squared distance > bound — callers that
// only keep candidates strictly under the bound (a top-k heap whose worst
// is the bound) observe exactly the same result set as with the exact
// kernel. Rows strictly under the bound are computed exactly; a row within
// rounding of the bound itself may report either its value or +Inf.
func SquaredDistsToBounded(q []float32, m *Matrix, ids []int, bound float64, out []float64) {
	if math.IsInf(bound, 1) {
		SquaredDistsTo(q, m, ids, out)
		return
	}
	_ = out[:len(ids)]
	for j, id := range ids {
		out[j] = squaredDistBounded(q, m.Row(id), bound)
	}
}

// squaredDistBounded returns the squared distance between a and b, or +Inf
// as soon as the running sum exceeds bound.
func squaredDistBounded(a, b []float32, bound float64) float64 {
	if len(a) == 0 {
		return 0
	}
	_ = b[len(a)-1]
	var s float64
	i := 0
	for i+abandonStride <= len(a) {
		var s0, s1, s2, s3 float64
		for k := i; k < i+abandonStride; k += 4 {
			d0 := a[k] - b[k]
			d1 := a[k+1] - b[k+1]
			d2 := a[k+2] - b[k+2]
			d3 := a[k+3] - b[k+3]
			s0 += float64(d0) * float64(d0)
			s1 += float64(d1) * float64(d1)
			s2 += float64(d2) * float64(d2)
			s3 += float64(d3) * float64(d3)
		}
		s += (s0 + s1) + (s2 + s3)
		i += abandonStride
		if s > bound {
			return math.Inf(1)
		}
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s += float64(d) * float64(d)
	}
	if s > bound {
		return math.Inf(1)
	}
	return s
}
