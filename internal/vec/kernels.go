package vec

import "math"

// Blocked batch verification kernels.
//
// DB-LSH spends nearly all query time verifying candidates — exact distance
// computations inside the 2tL+k budget. Verifying candidates one callback at
// a time keeps the query vector and the loop bookkeeping out of steady
// state; these kernels take a whole block of candidate row ids and sweep
// them against the contiguous Matrix storage in one pass, so q stays in
// cache, the per-candidate call overhead amortizes across the block, and
// the early-abandon variant can stop a row's scan the moment it provably
// cannot beat the current k-th best.

// DistsTo computes the Euclidean distance from q to each candidate row of m
// listed in ids, writing results into out. out must have len(ids) capacity;
// out[j] corresponds to ids[j]. len(q) must equal m.Dim().
func DistsTo(q []float32, m *Matrix, ids []int, out []float64) {
	SquaredDistsTo(q, m, ids, out)
	for j, s := range out {
		out[j] = math.Sqrt(s)
	}
}

// SquaredDistsTo is DistsTo without the final square root.
func SquaredDistsTo(q []float32, m *Matrix, ids []int, out []float64) {
	_ = out[:len(ids)]
	for j, id := range ids {
		out[j] = SquaredDist(q, m.Row(id))
	}
}

// abandonStride is how many components the bounded kernel accumulates
// between bound checks: large enough that the check cost is noise, small
// enough that a hopeless high-dimensional row is dropped after a fraction
// of its components.
const abandonStride = 16

// SquaredDistsToBounded is SquaredDistsTo with early-abandon pruning: rows
// whose partial squared distance already exceeds bound are reported as +Inf
// instead of being scanned to completion. Squared distances grow
// monotonically component by component, so a row abandoned at component c
// is guaranteed to have its true squared distance > bound — callers that
// only keep candidates strictly under the bound (a top-k heap whose worst
// is the bound) observe exactly the same result set as with the exact
// kernel. Rows strictly under the bound are computed exactly; a row within
// rounding of the bound itself may report either its value or +Inf.
//
// A surviving row's value does not depend on the bound: every bound —
// including +Inf, which can never abandon — runs the same per-row
// accumulation order, so loosening the bound admits more rows but never
// changes a row's reported distance by even an ulp. The sharded
// coordinator's parallel fan-out relies on this: it verifies with a bound
// frozen at round entry while the sequential reference path tightens its
// bound candidate by candidate, and the two must emit bit-identical
// distances for every row both keep.
//
// dblsh:dispatch blessed blocked-sweep dispatch site: the pair/quad sweeps
// engage on the kernel name (a startup-frozen value), never on the bound
// or any other per-query runtime value
func SquaredDistsToBounded(q []float32, m *Matrix, ids []int, bound float64, out []float64) {
	_ = out[:len(ids)]
	// Candidate rows are scattered, so each one starts with a cache miss;
	// sweeping four rows per call keeps four independent miss streams in
	// flight (the rows share no data) instead of serializing on one row's
	// lines. The interleaved sweep's per-row accumulation order and abandon
	// checkpoints match the default 4×-unrolled single-row kernel, so it
	// only engages for that kernel — outputs stay bit-identical to the
	// one-row-at-a-time loop; scalar and wide keep their own per-row order.
	impl := activeKernel.squaredDistBounded
	j := 0
	if len(q) >= 2*abandonStride && activeKernel.name == "unrolled" {
		// Touch every candidate row's first cache line up front: the loads
		// are independent, so the out-of-order window overlaps their misses
		// across the whole block instead of the four-at-a-time the sweep
		// manages, and early-abandoned rows (the common case) rarely need
		// more than the lines warmed here. Reads only — results unchanged.
		var warm float32
		for _, id := range ids {
			warm += m.Row(id)[0]
		}
		_ = warm
		for ; j+4 <= len(ids); j += 4 {
			out[j], out[j+1] = squaredDistBoundedQuad(q,
				m.Row(ids[j]), m.Row(ids[j+1]), m.Row(ids[j+2]), m.Row(ids[j+3]),
				bound, out[j+2:])
		}
		for ; j+2 <= len(ids); j += 2 {
			out[j], out[j+1] = squaredDistBoundedPair(q, m.Row(ids[j]), m.Row(ids[j+1]), bound)
		}
	}
	for ; j < len(ids); j++ {
		out[j] = impl(q, m.Row(ids[j]), bound)
	}
}

// squaredDistBoundedQuad is squaredDistBoundedPair over four rows: the four
// scattered rows' stride blocks are interleaved so their memory fetches
// overlap. Each row's summation order and abandon checkpoints match the
// single-row kernel exactly. Results for c and d land in cd[0] and cd[1].
//
// dblsh:kernelimpl
func squaredDistBoundedQuad(q, a, b, cc, dd []float32, bound float64, cd []float64) (float64, float64) {
	n := len(q)
	_ = a[n-1]
	_ = b[n-1]
	_ = cc[n-1]
	_ = dd[n-1]
	var sa, sb, sc, sd float64
	doneA, doneB, doneC, doneD := false, false, false, false
	i := 0
	for i+abandonStride <= n && (!doneA || !doneB || !doneC || !doneD) {
		if !doneA {
			var s0, s1, s2, s3 float64
			for k := i; k < i+abandonStride; k += 4 {
				d0 := q[k] - a[k]
				d1 := q[k+1] - a[k+1]
				d2 := q[k+2] - a[k+2]
				d3 := q[k+3] - a[k+3]
				s0 += float64(d0) * float64(d0)
				s1 += float64(d1) * float64(d1)
				s2 += float64(d2) * float64(d2)
				s3 += float64(d3) * float64(d3)
			}
			sa += (s0 + s1) + (s2 + s3)
			if sa > bound {
				doneA, sa = true, math.Inf(1)
			}
		}
		if !doneB {
			var s0, s1, s2, s3 float64
			for k := i; k < i+abandonStride; k += 4 {
				d0 := q[k] - b[k]
				d1 := q[k+1] - b[k+1]
				d2 := q[k+2] - b[k+2]
				d3 := q[k+3] - b[k+3]
				s0 += float64(d0) * float64(d0)
				s1 += float64(d1) * float64(d1)
				s2 += float64(d2) * float64(d2)
				s3 += float64(d3) * float64(d3)
			}
			sb += (s0 + s1) + (s2 + s3)
			if sb > bound {
				doneB, sb = true, math.Inf(1)
			}
		}
		if !doneC {
			var s0, s1, s2, s3 float64
			for k := i; k < i+abandonStride; k += 4 {
				d0 := q[k] - cc[k]
				d1 := q[k+1] - cc[k+1]
				d2 := q[k+2] - cc[k+2]
				d3 := q[k+3] - cc[k+3]
				s0 += float64(d0) * float64(d0)
				s1 += float64(d1) * float64(d1)
				s2 += float64(d2) * float64(d2)
				s3 += float64(d3) * float64(d3)
			}
			sc += (s0 + s1) + (s2 + s3)
			if sc > bound {
				doneC, sc = true, math.Inf(1)
			}
		}
		if !doneD {
			var s0, s1, s2, s3 float64
			for k := i; k < i+abandonStride; k += 4 {
				d0 := q[k] - dd[k]
				d1 := q[k+1] - dd[k+1]
				d2 := q[k+2] - dd[k+2]
				d3 := q[k+3] - dd[k+3]
				s0 += float64(d0) * float64(d0)
				s1 += float64(d1) * float64(d1)
				s2 += float64(d2) * float64(d2)
				s3 += float64(d3) * float64(d3)
			}
			sd += (s0 + s1) + (s2 + s3)
			if sd > bound {
				doneD, sd = true, math.Inf(1)
			}
		}
		i += abandonStride
	}
	for ; i < n; i++ {
		dq := q[i]
		if !doneA {
			d := dq - a[i]
			sa += float64(d) * float64(d)
		}
		if !doneB {
			d := dq - b[i]
			sb += float64(d) * float64(d)
		}
		if !doneC {
			d := dq - cc[i]
			sc += float64(d) * float64(d)
		}
		if !doneD {
			d := dq - dd[i]
			sd += float64(d) * float64(d)
		}
	}
	if !doneA && sa > bound {
		sa = math.Inf(1)
	}
	if !doneB && sb > bound {
		sb = math.Inf(1)
	}
	if !doneC && sc > bound {
		sc = math.Inf(1)
	}
	if !doneD && sd > bound {
		sd = math.Inf(1)
	}
	cd[0], cd[1] = sc, sd
	return sa, sb
}

// squaredDistBoundedPair computes squaredDistBounded(q, a, bound) and
// squaredDistBounded(q, b, bound) together, interleaving the two rows'
// stride blocks so their memory fetches overlap. Each row's summation
// order and abandon checkpoints match the single-row kernel exactly.
//
// dblsh:kernelimpl
func squaredDistBoundedPair(q, a, b []float32, bound float64) (float64, float64) {
	n := len(q)
	_ = a[n-1]
	_ = b[n-1]
	var sa, sb float64
	doneA, doneB := false, false
	i := 0
	for i+abandonStride <= n && (!doneA || !doneB) {
		if !doneA {
			var s0, s1, s2, s3 float64
			for k := i; k < i+abandonStride; k += 4 {
				d0 := q[k] - a[k]
				d1 := q[k+1] - a[k+1]
				d2 := q[k+2] - a[k+2]
				d3 := q[k+3] - a[k+3]
				s0 += float64(d0) * float64(d0)
				s1 += float64(d1) * float64(d1)
				s2 += float64(d2) * float64(d2)
				s3 += float64(d3) * float64(d3)
			}
			sa += (s0 + s1) + (s2 + s3)
			if sa > bound {
				doneA, sa = true, math.Inf(1)
			}
		}
		if !doneB {
			var s0, s1, s2, s3 float64
			for k := i; k < i+abandonStride; k += 4 {
				d0 := q[k] - b[k]
				d1 := q[k+1] - b[k+1]
				d2 := q[k+2] - b[k+2]
				d3 := q[k+3] - b[k+3]
				s0 += float64(d0) * float64(d0)
				s1 += float64(d1) * float64(d1)
				s2 += float64(d2) * float64(d2)
				s3 += float64(d3) * float64(d3)
			}
			sb += (s0 + s1) + (s2 + s3)
			if sb > bound {
				doneB, sb = true, math.Inf(1)
			}
		}
		i += abandonStride
	}
	for ; i < n; i++ {
		dq := q[i]
		if !doneA {
			d := dq - a[i]
			sa += float64(d) * float64(d)
		}
		if !doneB {
			d := dq - b[i]
			sb += float64(d) * float64(d)
		}
	}
	if !doneA && sa > bound {
		sa = math.Inf(1)
	}
	if !doneB && sb > bound {
		sb = math.Inf(1)
	}
	return sa, sb
}

// squaredDistBounded returns the squared distance between a and b, or +Inf
// as soon as the running sum exceeds bound.
//
// dblsh:kernelimpl
func squaredDistBounded(a, b []float32, bound float64) float64 {
	if len(a) == 0 {
		return 0
	}
	_ = b[len(a)-1]
	var s float64
	i := 0
	for i+abandonStride <= len(a) {
		var s0, s1, s2, s3 float64
		for k := i; k < i+abandonStride; k += 4 {
			d0 := a[k] - b[k]
			d1 := a[k+1] - b[k+1]
			d2 := a[k+2] - b[k+2]
			d3 := a[k+3] - b[k+3]
			s0 += float64(d0) * float64(d0)
			s1 += float64(d1) * float64(d1)
			s2 += float64(d2) * float64(d2)
			s3 += float64(d3) * float64(d3)
		}
		s += (s0 + s1) + (s2 + s3)
		i += abandonStride
		if s > bound {
			return math.Inf(1)
		}
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s += float64(d) * float64(d)
	}
	if s > bound {
		return math.Inf(1)
	}
	return s
}
