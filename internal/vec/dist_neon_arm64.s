// NEON (Advanced SIMD) distance kernels — the "neon" row of the dispatch
// table. Mandatory in the ARMv8-A baseline, so registration never fails on
// arm64.
//
// Structure mirrors the avx2 kernels: float32 lanes are widened to float64
// (FCVTL/FCVTL2) and fused into four 2-lane float64 accumulator chains
// (VFMLA), reduced at the end in a fixed tree ((acc0+acc1)+(acc2+acc3),
// then lane0+lane1), then the unfused scalar tail in index order. The
// order depends only on len, never on data or bounds, so each kernel is
// internally deterministic and a surviving bounded row is
// bound-independent.
//
// Like the pure-Go kernels (and unlike avx2), squared-distance differences
// are taken in float32 (FSUB.4S / FSUBS) before widening.
//
// squaredDistNEON and squaredDistBoundedNEON share the exact same
// accumulation structure — 16-component stripes, the same reduction tree,
// the same scalar tail — so a surviving bounded row is bit-identical to
// the unbounded squared distance at every length (the ladder's
// verified-neighbor equality relies on this; keep them in lockstep).
//
// Go's arm64 assembler has no mnemonics for FCVTL/FCVTL2, vector FSUB.4S
// or vector FADD.2D, so those are WORD-encoded with fixed registers; each
// carries its decoded form in a comment and the cross-build objdump in CI
// keeps the encodings honest.

#include "textflag.h"

// func dotNEON(a, b []float32) float64
TEXT ·dotNEON(SB), NOSPLIT, $0-56
	MOVD a_base+0(FP), R0
	MOVD b_base+24(FP), R1
	MOVD a_len+8(FP), R2
	VEOR V0.B16, V0.B16, V0.B16
	VEOR V1.B16, V1.B16, V1.B16
	VEOR V2.B16, V2.B16, V2.B16
	VEOR V3.B16, V3.B16, V3.B16
	CMP  $8, R2
	BLT  dotreduce
dot8:
	VLD1.P 16(R0), [V4.S4]
	VLD1.P 16(R1), [V5.S4]
	WORD $0x0E617890 // FCVTL  V16.2D, V4.2S
	WORD $0x4E617891 // FCVTL2 V17.2D, V4.4S
	WORD $0x0E6178B2 // FCVTL  V18.2D, V5.2S
	WORD $0x4E6178B3 // FCVTL2 V19.2D, V5.4S
	VFMLA V18.D2, V16.D2, V0.D2
	VFMLA V19.D2, V17.D2, V1.D2
	VLD1.P 16(R0), [V6.S4]
	VLD1.P 16(R1), [V7.S4]
	WORD $0x0E6178D4 // FCVTL  V20.2D, V6.2S
	WORD $0x4E6178D5 // FCVTL2 V21.2D, V6.4S
	WORD $0x0E6178F6 // FCVTL  V22.2D, V7.2S
	WORD $0x4E6178F7 // FCVTL2 V23.2D, V7.4S
	VFMLA V22.D2, V20.D2, V2.D2
	VFMLA V23.D2, V21.D2, V3.D2
	SUB  $8, R2
	CMP  $8, R2
	BGE  dot8
dotreduce:
	WORD $0x4E61D400 // FADD V0.2D, V0.2D, V1.2D
	WORD $0x4E63D442 // FADD V2.2D, V2.2D, V3.2D
	WORD $0x4E62D400 // FADD V0.2D, V0.2D, V2.2D
	VMOV  V0.D[1], V4.D[0]
	FADDD F4, F0, F10
dottail:
	CBZ   R2, dotdone
	FMOVS (R0), F4
	FMOVS (R1), F5
	FCVTSD F4, F4
	FCVTSD F5, F5
	FMULD F5, F4, F4
	FADDD F4, F10, F10
	ADD   $4, R0
	ADD   $4, R1
	SUB   $1, R2
	B     dottail
dotdone:
	FMOVD F10, ret+48(FP)
	RET

// func squaredDistNEON(a, b []float32) float64
TEXT ·squaredDistNEON(SB), NOSPLIT, $0-56
	MOVD a_base+0(FP), R0
	MOVD b_base+24(FP), R1
	MOVD a_len+8(FP), R2
	VEOR V0.B16, V0.B16, V0.B16
	VEOR V1.B16, V1.B16, V1.B16
	VEOR V2.B16, V2.B16, V2.B16
	VEOR V3.B16, V3.B16, V3.B16
	CMP  $16, R2
	BLT  sqreduce
sq16:
	VLD1.P 16(R0), [V4.S4]
	VLD1.P 16(R1), [V5.S4]
	WORD $0x4EA5D484 // FSUB V4.4S, V4.4S, V5.4S
	WORD $0x0E617890 // FCVTL  V16.2D, V4.2S
	WORD $0x4E617891 // FCVTL2 V17.2D, V4.4S
	VFMLA V16.D2, V16.D2, V0.D2
	VFMLA V17.D2, V17.D2, V1.D2
	VLD1.P 16(R0), [V6.S4]
	VLD1.P 16(R1), [V7.S4]
	WORD $0x4EA7D4C6 // FSUB V6.4S, V6.4S, V7.4S
	WORD $0x0E6178D4 // FCVTL  V20.2D, V6.2S
	WORD $0x4E6178D5 // FCVTL2 V21.2D, V6.4S
	VFMLA V20.D2, V20.D2, V2.D2
	VFMLA V21.D2, V21.D2, V3.D2
	VLD1.P 16(R0), [V4.S4]
	VLD1.P 16(R1), [V5.S4]
	WORD $0x4EA5D484 // FSUB V4.4S, V4.4S, V5.4S
	WORD $0x0E617890 // FCVTL  V16.2D, V4.2S
	WORD $0x4E617891 // FCVTL2 V17.2D, V4.4S
	VFMLA V16.D2, V16.D2, V0.D2
	VFMLA V17.D2, V17.D2, V1.D2
	VLD1.P 16(R0), [V6.S4]
	VLD1.P 16(R1), [V7.S4]
	WORD $0x4EA7D4C6 // FSUB V6.4S, V6.4S, V7.4S
	WORD $0x0E6178D4 // FCVTL  V20.2D, V6.2S
	WORD $0x4E6178D5 // FCVTL2 V21.2D, V6.4S
	VFMLA V20.D2, V20.D2, V2.D2
	VFMLA V21.D2, V21.D2, V3.D2
	SUB  $16, R2
	CMP  $16, R2
	BGE  sq16
sqreduce:
	WORD $0x4E61D400 // FADD V0.2D, V0.2D, V1.2D
	WORD $0x4E63D442 // FADD V2.2D, V2.2D, V3.2D
	WORD $0x4E62D400 // FADD V0.2D, V0.2D, V2.2D
	VMOV  V0.D[1], V4.D[0]
	FADDD F4, F0, F10
sqtail:
	CBZ   R2, sqdone
	FMOVS (R0), F4
	FMOVS (R1), F5
	FSUBS F5, F4, F4
	FCVTSD F4, F4
	FMULD F4, F4, F4
	FADDD F4, F10, F10
	ADD   $4, R0
	ADD   $4, R1
	SUB   $1, R2
	B     sqtail
sqdone:
	FMOVD F10, ret+48(FP)
	RET

// func squaredDistBoundedNEON(a, b []float32, bound float64) float64
//
// Early abandon is tested once per 16-component stripe: the accumulators
// are reduced into scratch registers and the running total compared
// against bound. The accumulators themselves never depend on the bound,
// so abandoning is the bound's only effect.
TEXT ·squaredDistBoundedNEON(SB), NOSPLIT, $0-64
	MOVD  a_base+0(FP), R0
	MOVD  b_base+24(FP), R1
	MOVD  a_len+8(FP), R2
	FMOVD bound+48(FP), F15
	VEOR  V0.B16, V0.B16, V0.B16
	VEOR  V1.B16, V1.B16, V1.B16
	VEOR  V2.B16, V2.B16, V2.B16
	VEOR  V3.B16, V3.B16, V3.B16
	FMOVD ZR, F12
	CMP   $16, R2
	BLT   bdtail
bdstripe:
	VLD1.P 16(R0), [V4.S4]
	VLD1.P 16(R1), [V5.S4]
	WORD $0x4EA5D484 // FSUB V4.4S, V4.4S, V5.4S
	WORD $0x0E617890 // FCVTL  V16.2D, V4.2S
	WORD $0x4E617891 // FCVTL2 V17.2D, V4.4S
	VFMLA V16.D2, V16.D2, V0.D2
	VFMLA V17.D2, V17.D2, V1.D2
	VLD1.P 16(R0), [V6.S4]
	VLD1.P 16(R1), [V7.S4]
	WORD $0x4EA7D4C6 // FSUB V6.4S, V6.4S, V7.4S
	WORD $0x0E6178D4 // FCVTL  V20.2D, V6.2S
	WORD $0x4E6178D5 // FCVTL2 V21.2D, V6.4S
	VFMLA V20.D2, V20.D2, V2.D2
	VFMLA V21.D2, V21.D2, V3.D2
	VLD1.P 16(R0), [V4.S4]
	VLD1.P 16(R1), [V5.S4]
	WORD $0x4EA5D484 // FSUB V4.4S, V4.4S, V5.4S
	WORD $0x0E617890 // FCVTL  V16.2D, V4.2S
	WORD $0x4E617891 // FCVTL2 V17.2D, V4.4S
	VFMLA V16.D2, V16.D2, V0.D2
	VFMLA V17.D2, V17.D2, V1.D2
	VLD1.P 16(R0), [V6.S4]
	VLD1.P 16(R1), [V7.S4]
	WORD $0x4EA7D4C6 // FSUB V6.4S, V6.4S, V7.4S
	WORD $0x0E6178D4 // FCVTL  V20.2D, V6.2S
	WORD $0x4E6178D5 // FCVTL2 V21.2D, V6.4S
	VFMLA V20.D2, V20.D2, V2.D2
	VFMLA V21.D2, V21.D2, V3.D2
	SUB  $16, R2

	// Running total = reduce(acc0..acc3) into scratch; abandon if > bound.
	WORD $0x4E61D410 // FADD V16.2D, V0.2D, V1.2D
	WORD $0x4E63D451 // FADD V17.2D, V2.2D, V3.2D
	WORD $0x4E71D610 // FADD V16.2D, V16.2D, V17.2D
	VMOV  V16.D[1], V18.D[0]
	FADDD F18, F16, F12
	FCMPD F15, F12
	BGT   bdabandon

	CMP  $16, R2
	BGE  bdstripe
bdtail:
	CBZ   R2, bdfinal
	FMOVS (R0), F4
	FMOVS (R1), F5
	FSUBS F5, F4, F4
	FCVTSD F4, F4
	FMULD F4, F4, F4
	FADDD F4, F12, F12
	ADD   $4, R0
	ADD   $4, R1
	SUB   $1, R2
	B     bdtail
bdfinal:
	FCMPD F15, F12
	BGT   bdabandon
	FMOVD F12, ret+56(FP)
	RET
bdabandon:
	MOVD $0x7FF0000000000000, R3 // +Inf
	MOVD R3, ret+56(FP)
	RET
