//go:build !amd64 && !arm64

package vec

// registerArchKernels is a no-op on architectures without hand-written
// kernels: the dispatch table keeps its portable rows and auto-selection
// stays on the pure-Go default.
//
// dblsh:dispatch
func registerArchKernels() {}
