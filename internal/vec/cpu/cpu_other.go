//go:build !amd64 && !arm64

package cpu

// No hardware kernels exist for this architecture: report no features so
// the dispatch table keeps its pure-Go default.
func detect() Features {
	return Features{}
}
