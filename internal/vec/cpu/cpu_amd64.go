package cpu

// cpuid executes the CPUID instruction for (leaf, subleaf) and returns
// EAX/EBX/ECX/EDX. Implemented in cpu_amd64.s.
func cpuid(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (XCR0), which records the
// register state the OS saves on context switch. Only valid when CPUID
// reports OSXSAVE. Implemented in cpu_amd64.s.
func xgetbv() (eax, edx uint32)

const (
	// CPUID leaf 1 ECX bits.
	bitFMA     = 1 << 12
	bitOSXSAVE = 1 << 27
	bitAVX     = 1 << 28
	// CPUID leaf 7 subleaf 0 EBX bits.
	bitAVX2    = 1 << 5
	bitAVX512F = 1 << 16
	// XCR0 state-component bits.
	xcr0SSE    = 1 << 1
	xcr0AVX    = 1 << 2
	xcr0OpMask = 1 << 5
	xcr0ZMMHi  = 1 << 6
	xcr0HiZMM  = 1 << 7
)

func detect() Features {
	var f Features
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 1 {
		return f
	}
	_, _, ecx1, _ := cpuid(1, 0)
	// Without OSXSAVE the OS does not save YMM state, so AVX registers
	// would be silently corrupted across context switches: report nothing.
	if ecx1&bitOSXSAVE == 0 {
		return f
	}
	xcr0, _ := xgetbv()
	osAVX := xcr0&(xcr0SSE|xcr0AVX) == xcr0SSE|xcr0AVX
	if !osAVX {
		return f
	}
	f.AVX = ecx1&bitAVX != 0
	f.FMA = ecx1&bitFMA != 0
	if maxLeaf >= 7 {
		_, ebx7, _, _ := cpuid(7, 0)
		f.AVX2 = f.AVX && ebx7&bitAVX2 != 0
		osZMM := xcr0&(xcr0OpMask|xcr0ZMMHi|xcr0HiZMM) == xcr0OpMask|xcr0ZMMHi|xcr0HiZMM
		f.AVX512F = f.AVX && osZMM && ebx7&bitAVX512F != 0
	}
	return f
}
