package cpu

import (
	"runtime"
	"sort"
	"testing"
)

func TestDetectStable(t *testing.T) {
	if Detect() != Detect() {
		t.Fatal("Detect is not stable across calls")
	}
}

func TestFeatureConsistency(t *testing.T) {
	f := Detect()
	if f.AVX2 && !f.AVX {
		t.Fatal("AVX2 reported without AVX")
	}
	if f.AVX512F && !f.AVX2 {
		// Every AVX-512 part implements AVX2; a contrary report means the
		// OS-support masking went wrong.
		t.Fatal("AVX512F reported without AVX2")
	}
	switch runtime.GOARCH {
	case "arm64":
		if !f.ASIMD {
			t.Fatal("ASIMD must be reported on arm64 (ARMv8 baseline)")
		}
	case "amd64":
		if f.ASIMD {
			t.Fatal("ASIMD reported on amd64")
		}
	default:
		if f != (Features{}) {
			t.Fatalf("features %+v reported on %s", f, runtime.GOARCH)
		}
	}
}

func TestListSortedAndConsistent(t *testing.T) {
	f := Detect()
	names := f.List()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("List() not sorted: %v", names)
	}
	has := func(s string) bool {
		for _, n := range names {
			if n == s {
				return true
			}
		}
		return false
	}
	if has("avx2") != f.AVX2 || has("fma") != f.FMA || has("asimd") != f.ASIMD {
		t.Fatalf("List() %v inconsistent with %+v", names, f)
	}
}
