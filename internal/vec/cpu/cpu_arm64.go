package cpu

// Advanced SIMD (NEON) and the FP unit are mandatory in the ARMv8-A
// baseline every Go arm64 target assumes, so there is nothing to probe:
// the neon kernel is always usable.
func detect() Features {
	return Features{ASIMD: true}
}
