// Package cpu detects the CPU features the vec kernel dispatch table cares
// about, so init-time auto-selection can pick the fastest distance kernel
// the hardware actually supports.
//
// Detection is deliberately tiny and dependency-free: on amd64 it executes
// CPUID and XGETBV directly (an AVX2 kernel is only usable when the CPU has
// the instructions AND the OS saves the YMM state, which is what the XCR0
// check proves); on arm64 the ASIMD (NEON) and FP units are mandatory in the
// ARMv8-A baseline Go targets, so detection is a constant; every other
// architecture reports no features.
//
// The result never changes over a process lifetime, so Detect computes once
// and returns the cached value thereafter.
package cpu

import (
	"sort"
	"sync"
)

// Features reports the instruction-set extensions relevant to the vec
// kernels. Fields are only ever true when the running CPU and OS both
// support the extension.
type Features struct {
	// AVX reports AVX with OS support for the YMM state (XCR0 SSE+AVX
	// bits set) — the prerequisite shared by every VEX-encoded kernel.
	AVX bool
	// AVX2 reports the integer/FP 256-bit extensions the avx2 kernel uses.
	AVX2 bool
	// FMA reports FMA3 (VFMADD...): required by the avx2 kernel's fused
	// accumulation.
	FMA bool
	// AVX512F reports the AVX-512 foundation set with OS ZMM state
	// support. Informational: no kernel uses it yet.
	AVX512F bool
	// ASIMD reports Advanced SIMD (NEON): always true on arm64, where it
	// is part of the baseline.
	ASIMD bool
}

var (
	once     sync.Once
	detected Features
)

// Detect returns the running CPU's feature set. The first call probes the
// hardware; later calls return the cached result.
func Detect() Features {
	once.Do(func() { detected = detect() })
	return detected
}

// List returns the detected feature names in sorted order, for logs,
// /stats responses and benchmark records. Empty when nothing relevant is
// supported.
func (f Features) List() []string {
	var out []string
	if f.AVX {
		out = append(out, "avx")
	}
	if f.AVX2 {
		out = append(out, "avx2")
	}
	if f.AVX512F {
		out = append(out, "avx512f")
	}
	if f.ASIMD {
		out = append(out, "asimd")
	}
	if f.FMA {
		out = append(out, "fma")
	}
	sort.Strings(out)
	return out
}
