// Package eval computes the paper's quality metrics — overall ratio (Eq. 11)
// and recall (Eq. 12) — and aggregates per-query measurements into the
// averages Table IV reports.
package eval

import (
	"math"
	"time"

	"dblsh/internal/vec"
)

// OverallRatio computes Eq. 11:
//
//	(1/k) Σ_i ‖q,o_i‖ / ‖q,o*_i‖
//
// for a returned set and the exact k-NN, both sorted ascending by distance.
// A perfect result scores 1.0. When the returned set is shorter than the
// truth (an algorithm returned fewer than k points), the missing ranks are
// scored against the dataset's worst case by convention: they contribute the
// ratio of the farthest returned point, or 1.0 if nothing was returned.
// Exact zero distances in the truth are skipped to avoid division by zero
// (a query identical to a data point).
func OverallRatio(result, truth []vec.Neighbor) float64 {
	if len(truth) == 0 {
		return 1
	}
	var sum float64
	counted := 0
	for i, tr := range truth {
		if tr.Dist == 0 {
			continue
		}
		var got float64
		if i < len(result) {
			got = result[i].Dist
		} else if len(result) > 0 {
			got = result[len(result)-1].Dist
		} else {
			got = tr.Dist
		}
		sum += got / tr.Dist
		counted++
	}
	if counted == 0 {
		return 1
	}
	return sum / float64(counted)
}

// Recall computes Eq. 12: |R ∩ R*| / k, matching by point id.
func Recall(result, truth []vec.Neighbor) float64 {
	if len(truth) == 0 {
		return 1
	}
	truthIDs := make(map[int]struct{}, len(truth))
	for _, t := range truth {
		truthIDs[t.ID] = struct{}{}
	}
	hit := 0
	for _, r := range result {
		if _, ok := truthIDs[r.ID]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}

// QueryResult records one query's outcome.
type QueryResult struct {
	Time       time.Duration
	Recall     float64
	Ratio      float64
	Candidates int // exact distance computations performed
}

// Aggregate summarizes query results the way Table IV reports them.
type Aggregate struct {
	Queries       int
	AvgTime       time.Duration
	AvgRecall     float64
	AvgRatio      float64
	AvgCandidates float64
	P95Time       time.Duration
}

// Summarize folds per-query results into an Aggregate.
func Summarize(results []QueryResult) Aggregate {
	var a Aggregate
	a.Queries = len(results)
	if a.Queries == 0 {
		return a
	}
	times := make([]time.Duration, 0, len(results))
	var totalTime time.Duration
	var recall, ratio, cands float64
	for _, r := range results {
		totalTime += r.Time
		recall += r.Recall
		ratio += r.Ratio
		cands += float64(r.Candidates)
		times = append(times, r.Time)
	}
	n := float64(a.Queries)
	a.AvgTime = totalTime / time.Duration(a.Queries)
	a.AvgRecall = recall / n
	a.AvgRatio = ratio / n
	a.AvgCandidates = cands / n
	a.P95Time = percentileDuration(times, 0.95)
	return a
}

func percentileDuration(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
