package eval

import (
	"math"
	"testing"
	"time"

	"dblsh/internal/vec"
)

func nbs(pairs ...float64) []vec.Neighbor {
	out := make([]vec.Neighbor, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		out = append(out, vec.Neighbor{ID: int(pairs[i]), Dist: pairs[i+1]})
	}
	return out
}

func TestRecallPerfect(t *testing.T) {
	truth := nbs(1, 1.0, 2, 2.0, 3, 3.0)
	if r := Recall(truth, truth); r != 1 {
		t.Fatalf("Recall = %v", r)
	}
}

func TestRecallPartial(t *testing.T) {
	truth := nbs(1, 1.0, 2, 2.0, 3, 3.0, 4, 4.0)
	got := nbs(1, 1.0, 9, 1.5, 3, 3.0, 8, 9.0)
	if r := Recall(got, truth); r != 0.5 {
		t.Fatalf("Recall = %v, want 0.5", r)
	}
}

func TestRecallEmptyResult(t *testing.T) {
	truth := nbs(1, 1.0)
	if r := Recall(nil, truth); r != 0 {
		t.Fatalf("Recall = %v, want 0", r)
	}
	if r := Recall(nil, nil); r != 1 {
		t.Fatalf("Recall on empty truth = %v, want 1", r)
	}
}

func TestOverallRatioPerfect(t *testing.T) {
	truth := nbs(1, 1.0, 2, 2.0)
	if r := OverallRatio(truth, truth); r != 1 {
		t.Fatalf("ratio = %v", r)
	}
}

func TestOverallRatioApproximate(t *testing.T) {
	truth := nbs(1, 1.0, 2, 2.0)
	got := nbs(5, 1.5, 6, 2.0)
	want := (1.5/1.0 + 2.0/2.0) / 2
	if r := OverallRatio(got, truth); math.Abs(r-want) > 1e-12 {
		t.Fatalf("ratio = %v, want %v", r, want)
	}
}

func TestOverallRatioShortResult(t *testing.T) {
	truth := nbs(1, 1.0, 2, 2.0, 3, 4.0)
	got := nbs(1, 1.0)
	// Ranks 2 and 3 score the farthest returned distance 1.0:
	// (1/1 + 1/2 + 1/4) / 3
	want := (1.0 + 0.5 + 0.25) / 3
	if r := OverallRatio(got, truth); math.Abs(r-want) > 1e-12 {
		t.Fatalf("ratio = %v, want %v", r, want)
	}
}

func TestOverallRatioZeroTruthDistSkipped(t *testing.T) {
	truth := nbs(1, 0.0, 2, 2.0)
	got := nbs(1, 0.0, 2, 3.0)
	if r := OverallRatio(got, truth); math.Abs(r-1.5) > 1e-12 {
		t.Fatalf("ratio = %v, want 1.5", r)
	}
}

func TestOverallRatioNeverBelowOneForValidResults(t *testing.T) {
	// Result distances are ≥ truth distances rank by rank, so ratio ≥ 1.
	truth := nbs(1, 1.0, 2, 2.0, 3, 3.0)
	got := nbs(4, 1.1, 5, 2.5, 6, 3.0)
	if r := OverallRatio(got, truth); r < 1 {
		t.Fatalf("ratio = %v < 1", r)
	}
}

func TestSummarize(t *testing.T) {
	results := []QueryResult{
		{Time: 10 * time.Millisecond, Recall: 1.0, Ratio: 1.0, Candidates: 100},
		{Time: 20 * time.Millisecond, Recall: 0.5, Ratio: 1.5, Candidates: 300},
	}
	a := Summarize(results)
	if a.Queries != 2 {
		t.Fatalf("Queries = %d", a.Queries)
	}
	if a.AvgTime != 15*time.Millisecond {
		t.Fatalf("AvgTime = %v", a.AvgTime)
	}
	if a.AvgRecall != 0.75 || a.AvgRatio != 1.25 || a.AvgCandidates != 200 {
		t.Fatalf("bad aggregate %+v", a)
	}
	if a.P95Time != 20*time.Millisecond {
		t.Fatalf("P95Time = %v", a.P95Time)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	a := Summarize(nil)
	if a.Queries != 0 || a.AvgTime != 0 {
		t.Fatalf("empty aggregate %+v", a)
	}
}
