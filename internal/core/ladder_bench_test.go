package core

import (
	"testing"

	"dblsh/internal/dataset"
)

// BenchmarkLadderModes pits the incremental cursor ladder against the
// window re-scan oracle on the same index and queries — the head-to-head
// behind the traversal rework, on the same clustered corpus as the
// top-level Table 4 benchmark. Both modes verify identical candidates in
// identical order (see the ladder equivalence tests); only traversal cost
// differs.
func BenchmarkLadderModes(b *testing.B) {
	ds := dataset.Generate(dataset.Profile{
		Name: "bench", N: 20_000, Dim: 128, Queries: 50,
		Clusters: 50, Std: 1, Spread: 11, SubClusters: 20, Seed: 13,
	})
	idx := Build(ds.Data, Config{C: 1.5, K: 10, L: 5, T: 100, Seed: 13})
	for _, mode := range []struct {
		name   string
		rescan bool
	}{{"cursor", false}, {"rescan", true}} {
		b.Run(mode.name, func(b *testing.B) {
			s := idx.NewSearcher()
			s.SetWindowRescan(mode.rescan)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = s.KANN(ds.Queries.Row(i%ds.Queries.Rows()), 50)
			}
		})
	}
}
