package core

import (
	"math/rand"
	"testing"

	"dblsh/internal/dataset"
	"dblsh/internal/eval"
	"dblsh/internal/vec"
)

func testDataset(n, d int, seed int64) *dataset.Dataset {
	return dataset.Generate(dataset.Profile{
		Name: "t", N: n, Dim: d, Queries: 20, Clusters: 8, Std: 1, Spread: 10, Seed: seed,
	})
}

func TestBuildShapes(t *testing.T) {
	ds := testDataset(2000, 32, 1)
	idx := Build(ds.Data, Config{C: 1.5, K: 8, L: 4, T: 20, Seed: 1})
	if idx.Size() != 2000 || idx.Dim() != 32 {
		t.Fatalf("size=%d dim=%d", idx.Size(), idx.Dim())
	}
	p := idx.Params()
	if p.K != 8 || p.L != 4 {
		t.Fatalf("params %+v", p)
	}
	if p.W0 != 4*1.5*1.5 {
		t.Fatalf("default W0 = %v", p.W0)
	}
	if idx.InitialRadius() <= 0 {
		t.Fatalf("r0 = %v", idx.InitialRadius())
	}
	if idx.IndexSizeBytes() <= 0 {
		t.Fatal("IndexSizeBytes must be positive")
	}
}

func TestDerivedParams(t *testing.T) {
	ds := testDataset(5000, 16, 2)
	idx := Build(ds.Data, Config{Seed: 2})
	p := idx.Params()
	if p.K < 1 || p.L < 1 {
		t.Fatalf("derived params %+v", p)
	}
}

func TestEmptyIndex(t *testing.T) {
	idx := Build(vec.NewMatrix(0, 8), Config{K: 4, L: 2, Seed: 1})
	if res := idx.KANN(make([]float32, 8), 5); len(res) != 0 {
		t.Fatalf("KANN on empty index = %v", res)
	}
	if _, ok := idx.ANN(make([]float32, 8)); ok {
		t.Fatal("ANN on empty index should report !ok")
	}
}

func TestKANNRecallOnClusteredData(t *testing.T) {
	ds := testDataset(10_000, 64, 3)
	idx := Build(ds.Data, Config{C: 1.5, K: 10, L: 5, T: 100, Seed: 3})
	truth := dataset.GroundTruth(ds.Data, ds.Queries, 10)

	s := idx.NewSearcher()
	var recall, ratio float64
	for qi := 0; qi < ds.Queries.Rows(); qi++ {
		res := s.KANN(ds.Queries.Row(qi), 10)
		if len(res) == 0 {
			t.Fatalf("query %d: empty result", qi)
		}
		recall += eval.Recall(res, truth[qi])
		ratio += eval.OverallRatio(res, truth[qi])
	}
	recall /= float64(ds.Queries.Rows())
	ratio /= float64(ds.Queries.Rows())
	if recall < 0.8 {
		t.Fatalf("recall = %v, want ≥ 0.8", recall)
	}
	if ratio > 1.05 {
		t.Fatalf("overall ratio = %v, want ≤ 1.05", ratio)
	}
}

func TestANNApproximationGuarantee(t *testing.T) {
	// Theorem 1: the returned point is a c²-ANN with constant probability.
	// Over many queries the failure rate must be far below the 1/2+1/e bound
	// (in practice almost all queries succeed).
	ds := testDataset(5000, 32, 4)
	c := 1.5
	idx := Build(ds.Data, Config{C: c, K: 10, L: 5, T: 50, Seed: 4})
	truth := dataset.GroundTruth(ds.Data, ds.Queries, 1)
	s := idx.NewSearcher()
	fails := 0
	for qi := 0; qi < ds.Queries.Rows(); qi++ {
		res, ok := s.ANN(ds.Queries.Row(qi))
		if !ok {
			fails++
			continue
		}
		if res.Dist > c*c*truth[qi][0].Dist+1e-9 {
			fails++
		}
	}
	if fails > ds.Queries.Rows()/4 {
		t.Fatalf("%d/%d queries broke the c² guarantee", fails, ds.Queries.Rows())
	}
}

func TestKANNResultsSortedUnique(t *testing.T) {
	ds := testDataset(3000, 16, 5)
	idx := Build(ds.Data, Config{C: 1.5, K: 8, L: 4, T: 30, Seed: 5})
	s := idx.NewSearcher()
	for qi := 0; qi < 5; qi++ {
		res := s.KANN(ds.Queries.Row(qi), 20)
		seen := map[int]bool{}
		prev := -1.0
		for _, nb := range res {
			if seen[nb.ID] {
				t.Fatalf("duplicate id %d in results", nb.ID)
			}
			seen[nb.ID] = true
			if nb.Dist < prev {
				t.Fatal("results not sorted")
			}
			prev = nb.Dist
			// Distances must be genuine.
			if got := vec.Dist(ds.Queries.Row(qi), ds.Data.Row(nb.ID)); got != nb.Dist {
				t.Fatalf("stored dist %v, recomputed %v", nb.Dist, got)
			}
		}
	}
}

func TestKANNRespectsBudget(t *testing.T) {
	ds := testDataset(5000, 32, 6)
	cfgT := 10
	idx := Build(ds.Data, Config{C: 1.5, K: 10, L: 5, T: cfgT, Seed: 6})
	s := idx.NewSearcher()
	k := 5
	budget := 2*cfgT*5 + k
	for qi := 0; qi < 10; qi++ {
		s.KANN(ds.Queries.Row(qi), k)
		if got := s.LastStats().Candidates; got > budget {
			t.Fatalf("candidates %d exceed budget %d", got, budget)
		}
	}
}

func TestKANNSmallDatasetExact(t *testing.T) {
	// With n below the budget, KANN degenerates to exact search.
	ds := testDataset(150, 8, 7)
	idx := Build(ds.Data, Config{C: 2, K: 4, L: 3, T: 100, Seed: 7})
	truth := dataset.GroundTruth(ds.Data, ds.Queries, 5)
	s := idx.NewSearcher()
	for qi := 0; qi < ds.Queries.Rows(); qi++ {
		res := s.KANN(ds.Queries.Row(qi), 5)
		if r := eval.Recall(res, truth[qi]); r != 1 {
			t.Fatalf("query %d: recall %v on sub-budget dataset", qi, r)
		}
	}
}

func TestRNearContract(t *testing.T) {
	ds := testDataset(2000, 16, 8)
	c := 1.5
	idx := Build(ds.Data, Config{C: c, K: 8, L: 4, T: 50, Seed: 8})
	truth := dataset.GroundTruth(ds.Data, ds.Queries, 1)
	s := idx.NewSearcher()
	for qi := 0; qi < ds.Queries.Rows(); qi++ {
		rStar := truth[qi][0].Dist
		// Definition 2 case 1: points exist within r → must return one ≤ c·r
		// (with constant probability; we tolerate a small failure count).
		nb, ok := s.RNear(ds.Queries.Row(qi), rStar*1.01)
		if ok && nb.Dist > c*rStar*1.01+1e-9 {
			// Budget-exhaustion return may exceed cr; verify it was budget.
			if s.LastStats().Candidates < 2*50*4+1 {
				t.Fatalf("query %d: RNear returned dist %v > c·r without exhausting budget", qi, nb.Dist)
			}
		}
	}
}

func TestRNearTinyRadiusReturnsNothing(t *testing.T) {
	ds := testDataset(2000, 16, 9)
	idx := Build(ds.Data, Config{C: 1.5, K: 8, L: 4, T: 50, Seed: 9})
	s := idx.NewSearcher()
	found := 0
	for qi := 0; qi < ds.Queries.Rows(); qi++ {
		if _, ok := s.RNear(ds.Queries.Row(qi), 1e-9); ok {
			found++
		}
	}
	// At a vanishing radius the window is almost empty; (r,c)-NN should
	// nearly always return nothing (Definition 2 case 2).
	if found > 2 {
		t.Fatalf("%d queries returned points at radius 1e-9", found)
	}
}

func TestSearcherReuseAcrossQueries(t *testing.T) {
	ds := testDataset(1000, 16, 10)
	idx := Build(ds.Data, Config{C: 1.5, K: 6, L: 3, T: 30, Seed: 10})
	s := idx.NewSearcher()
	q := ds.Queries.Row(0)
	first := s.KANN(q, 5)
	for i := 0; i < 50; i++ {
		s.KANN(ds.Queries.Row(i%ds.Queries.Rows()), 5)
	}
	again := s.KANN(q, 5)
	if len(first) != len(again) {
		t.Fatalf("result size changed on reuse: %d vs %d", len(first), len(again))
	}
	for i := range first {
		if first[i] != again[i] {
			t.Fatalf("result changed on searcher reuse: %+v vs %+v", first[i], again[i])
		}
	}
}

func TestConcurrentQueries(t *testing.T) {
	ds := testDataset(3000, 32, 11)
	idx := Build(ds.Data, Config{C: 1.5, K: 8, L: 4, T: 30, Seed: 11})
	done := make(chan []vec.Neighbor, 8)
	for g := 0; g < 8; g++ {
		go func() {
			done <- idx.KANN(ds.Queries.Row(0), 5)
		}()
	}
	first := <-done
	for g := 1; g < 8; g++ {
		res := <-done
		if len(res) != len(first) {
			t.Fatalf("concurrent result size mismatch")
		}
		for i := range res {
			if res[i] != first[i] {
				t.Fatal("concurrent queries returned different results")
			}
		}
	}
}

func TestDeterministicAcrossBuilds(t *testing.T) {
	ds := testDataset(2000, 16, 12)
	a := Build(ds.Data, Config{C: 1.5, K: 8, L: 4, T: 30, Seed: 99})
	b := Build(ds.Data, Config{C: 1.5, K: 8, L: 4, T: 30, Seed: 99})
	ra := a.KANN(ds.Queries.Row(0), 10)
	rb := b.KANN(ds.Queries.Row(0), 10)
	if len(ra) != len(rb) {
		t.Fatal("sizes differ")
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatal("identically-seeded builds answered differently")
		}
	}
}

func TestQueryDimPanics(t *testing.T) {
	ds := testDataset(100, 8, 13)
	idx := Build(ds.Data, Config{K: 4, L: 2, Seed: 13})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	idx.KANN(make([]float32, 4), 1)
}

func TestKZeroPanics(t *testing.T) {
	ds := testDataset(100, 8, 14)
	idx := Build(ds.Data, Config{K: 4, L: 2, Seed: 14})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	idx.KANN(make([]float32, 8), 0)
}

func TestStatsPopulated(t *testing.T) {
	ds := testDataset(2000, 16, 15)
	idx := Build(ds.Data, Config{C: 1.5, K: 8, L: 4, T: 30, Seed: 15})
	s := idx.NewSearcher()
	s.KANN(ds.Queries.Row(0), 5)
	st := s.LastStats()
	if st.Candidates <= 0 || st.Rounds <= 0 || st.FinalR <= 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
}

func TestDuplicateHeavyData(t *testing.T) {
	// Many duplicated points must not break dedup or termination.
	data := vec.NewMatrix(1000, 8)
	rng := rand.New(rand.NewSource(16))
	proto := make([]float32, 8)
	for j := range proto {
		proto[j] = float32(rng.NormFloat64())
	}
	for i := 0; i < 1000; i++ {
		row := data.Row(i)
		copy(row, proto)
		if i%10 == 0 { // 10% unique points
			for j := range row {
				row[j] += float32(rng.NormFloat64() * 5)
			}
		}
	}
	idx := Build(data, Config{C: 1.5, K: 6, L: 3, T: 20, Seed: 16})
	res := idx.KANN(proto, 10)
	if len(res) != 10 {
		t.Fatalf("got %d results", len(res))
	}
	if res[0].Dist != 0 {
		t.Fatalf("nearest duplicate dist = %v", res[0].Dist)
	}
}

func BenchmarkBuild50k(b *testing.B) {
	ds := testDataset(50_000, 128, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Build(ds.Data, Config{C: 1.5, K: 10, L: 5, T: 100, Seed: 1})
	}
}

func BenchmarkKANN(b *testing.B) {
	ds := testDataset(50_000, 128, 1)
	idx := Build(ds.Data, Config{C: 1.5, K: 10, L: 5, T: 100, Seed: 1})
	s := idx.NewSearcher()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.KANN(ds.Queries.Row(i%ds.Queries.Rows()), 50)
	}
}
