package core

import (
	"math"
	"math/rand"
	"testing"

	"dblsh/internal/rstar"
	"dblsh/internal/vec"
)

// ladderIndex builds a small random index for the differential tests.
func ladderIndex(seed int64, n, d int) (*Index, *vec.Matrix, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	data := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			data.Row(i)[j] = float32(rng.NormFloat64() * 8)
		}
	}
	idx := Build(data, Config{C: 1.5, K: 5, L: 3, T: 12, Seed: seed})
	return idx, data, rng
}

// diffOneQuery runs one (c,k)-ANN query through both traversals and fails
// if anything observable differs: ids, distances, candidate count, round
// count, final radius, or the returned error.
func diffOneQuery(t *testing.T, idx *Index, q []float32, k int, p QueryParams) {
	t.Helper()
	cs := idx.NewSearcher()
	rs := idx.NewSearcher()
	rs.SetWindowRescan(true)

	got, gerr := cs.KANNParams(q, k, p)
	want, werr := rs.KANNParams(q, k, p)
	if (gerr == nil) != (werr == nil) {
		t.Fatalf("error mismatch: cursor %v, rescan %v", gerr, werr)
	}
	if len(got) != len(want) {
		t.Fatalf("result count mismatch: cursor %d, rescan %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID || got[i].Dist != want[i].Dist {
			t.Fatalf("result %d mismatch: cursor %+v, rescan %+v", i, got[i], want[i])
		}
	}
	gst, wst := cs.LastStats(), rs.LastStats()
	if gst.Candidates != wst.Candidates {
		t.Fatalf("candidate count mismatch: cursor %d, rescan %d", gst.Candidates, wst.Candidates)
	}
	if gst.Rounds != wst.Rounds {
		t.Fatalf("round count mismatch: cursor %d, rescan %d", gst.Rounds, wst.Rounds)
	}
	if gst.FinalR != wst.FinalR {
		t.Fatalf("final radius mismatch: cursor %v, rescan %v", gst.FinalR, wst.FinalR)
	}
}

// TestLadderEquivalence is the differential property test of the
// traversal rework: across random datasets, ks, filters, deletes and
// per-query overrides, the cursor ladder must answer every query exactly
// like the window re-scan ladder — same neighbors, same distances, same
// candidate and round counts.
func TestLadderEquivalence(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		n := 150 + int(seed%5)*80
		idx, data, rng := ladderIndex(seed, n, 6)

		// A random subset of deletes.
		for i := 0; i < n/10; i++ {
			idx.Delete(rng.Intn(n))
		}

		for trial := 0; trial < 4; trial++ {
			q := make([]float32, data.Dim())
			for j := range q {
				q[j] = float32(rng.NormFloat64() * 8)
			}
			k := 1 + rng.Intn(20)
			var p QueryParams
			switch trial {
			case 1:
				p.T = 1 + rng.Intn(5) // tight budget: mid-block stops
			case 2:
				mod := 2 + rng.Intn(3)
				p.Filter = func(id int) bool { return id%mod == 0 }
			case 3:
				p.EarlyStopFactor = 1 + rng.Float64()*2
				p.MaxRadius = 0.5 + rng.Float64()*20
			}
			diffOneQuery(t, idx, q, k, p)
		}
	}
}

// TestLadderEquivalenceSelfQueries hits the exact-match path (distance 0
// candidates, immediate termination tests) which stresses stop handling
// at block boundaries.
func TestLadderEquivalenceSelfQueries(t *testing.T) {
	idx, data, _ := ladderIndex(42, 300, 5)
	for i := 0; i < 25; i++ {
		diffOneQuery(t, idx, data.Row(i*7%300), 1+i%10, QueryParams{})
	}
}

// TestRNearEquivalentToScalarContract checks the blocked RNear path still
// honors Algorithm 1's contract on random instances (the scalar loop it
// replaced is gone; the property is the observable anchor).
func TestRNearBlockedContract(t *testing.T) {
	idx, data, rng := ladderIndex(77, 250, 5)
	s := idx.NewSearcher()
	for trial := 0; trial < 40; trial++ {
		q := make([]float32, data.Dim())
		for j := range q {
			q[j] = float32(rng.NormFloat64() * 8)
		}
		r := 0.5 + rng.Float64()*10
		nb, ok := s.RNear(q, r)
		if !ok {
			continue
		}
		budget := 2*idx.cfg.T*idx.cfg.L + 1
		if s.LastStats().Candidates < budget && nb.Dist > idx.cfg.C*r+1e-9 {
			t.Fatalf("RNear returned %v beyond c·r = %v without exhausting budget", nb.Dist, idx.cfg.C*r)
		}
		if vec.Dist(q, data.Row(nb.ID)) != nb.Dist {
			t.Fatalf("RNear distance %v is not the true distance", nb.Dist)
		}
	}
}

// TestCursorReArmMidQuery pins the mutate-during-query contract
// deterministically: a round-coordinated query paused between rounds (the
// shard coordinator's interleaving) observes points inserted in the pause
// through the explicit re-arm path, exactly as the window re-scan would.
func TestCursorReArmMidQuery(t *testing.T) {
	idx, data, _ := ladderIndex(5, 200, 4)
	q := make([]float32, data.Dim()) // query at the origin

	run := func(s *Searcher, r float64, seen map[int]bool) {
		emit := func(ids []int, dists []float64) (int, bool) {
			for _, id := range ids {
				seen[id] = true
			}
			return len(ids), false
		}
		s.RunRound(q, r, nil, nil, emit)
	}

	cs := idx.NewSearcher()
	rs := idx.NewSearcher()
	rs.SetWindowRescan(true)
	cseen := map[int]bool{}
	rseen := map[int]bool{}
	cs.Begin(q)
	rs.Begin(q)
	run(cs, 1.0, cseen)
	run(rs, 1.0, rseen)

	// Pause: a point lands exactly at the query. Both traversals must pick
	// it up in the next round.
	newID := idx.Insert(make([]float32, data.Dim()))
	if cs.CursorReArms() != 0 {
		t.Fatal("cursor re-armed before any mutation")
	}
	run(cs, 2.0, cseen)
	run(rs, 2.0, rseen)
	if cs.CursorReArms() != idx.cfg.L {
		t.Fatalf("expected %d cursor re-arms (one per tree), got %d", idx.cfg.L, cs.CursorReArms())
	}
	if !cseen[newID] {
		t.Fatal("cursor ladder missed the point inserted mid-query")
	}
	if !rseen[newID] {
		t.Fatal("re-scan ladder missed the point inserted mid-query")
	}
	if len(cseen) != len(rseen) {
		t.Fatalf("traversals diverged after mid-query insert: cursor saw %d, re-scan %d", len(cseen), len(rseen))
	}
	for id := range rseen {
		if !cseen[id] {
			t.Fatalf("cursor ladder missed id %d the re-scan reported", id)
		}
	}
}

// TestTraversalZeroAllocs pins the pooling contract: once warm, the
// round-coordinated traversal (Begin + RunRound + Covers + Sweep)
// allocates nothing per query.
func TestTraversalZeroAllocs(t *testing.T) {
	idx, data, _ := ladderIndex(3, 2000, 6)
	s := idx.NewSearcher()
	q := data.Row(1)
	emit := func(ids []int, dists []float64) (int, bool) { return len(ids), false }
	worst := func() float64 { return math.Inf(1) }
	query := func() {
		s.Begin(q)
		r := idx.InitialRadius()
		for round := 0; round < 6; round++ {
			s.RunRound(q, r, nil, worst, emit)
			if s.Covers(r) {
				break
			}
			r *= idx.cfg.C
		}
		s.Sweep(q, nil, worst, emit)
	}
	query() // warm buffers
	if allocs := testing.AllocsPerRun(50, query); allocs != 0 {
		t.Fatalf("traversal allocates %v times per query, want 0", allocs)
	}
}

// TestWideTreeFallsBackToRescan covers the exotic configuration the
// cursor bitmasks cannot represent (MaxEntries > 64): the searcher must
// silently run the window re-scan and still answer correctly.
func TestWideTreeFallsBackToRescan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := vec.NewMatrix(300, 5)
	for i := 0; i < 300; i++ {
		for j := 0; j < 5; j++ {
			data.Row(i)[j] = float32(rng.NormFloat64() * 8)
		}
	}
	idx := Build(data, Config{C: 1.5, K: 4, L: 2, T: 20, Seed: 2, Tree: rstar.Options{MaxEntries: 128}})
	s := idx.NewSearcher()
	s.SetWindowRescan(false) // must be a no-op: there are no cursors
	res := s.KANN(data.Row(3), 5)
	if len(res) != 5 || res[0].ID != 3 || res[0].Dist != 0 {
		t.Fatalf("wide-tree fallback broken: %+v", res)
	}
}

// FuzzLadderEquivalence drives the cursor/re-scan differential with
// fuzzer-chosen datasets, queries, k, budgets, filters and deletes.
func FuzzLadderEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(0), uint8(0), false)
	f.Add(int64(7), uint8(1), uint8(3), uint8(2), true)
	f.Add(int64(99), uint8(20), uint8(1), uint8(7), false)
	f.Fuzz(func(t *testing.T, seed int64, kRaw, tRaw, delRaw uint8, filter bool) {
		n := 120
		idx, data, rng := ladderIndex(seed, n, 4)
		for i := 0; i < int(delRaw)%40; i++ {
			idx.Delete(rng.Intn(n))
		}
		q := make([]float32, data.Dim())
		for j := range q {
			q[j] = float32(rng.NormFloat64() * 8)
		}
		p := QueryParams{T: int(tRaw) % 8}
		if filter {
			p.Filter = func(id int) bool { return id%3 != 1 }
		}
		k := 1 + int(kRaw)%25
		diffOneQuery(t, idx, q, k, p)
	})
}
