// Package core implements DB-LSH itself: the (K,L)-index with query-centric
// dynamic bucketing of Tian, Zhao and Zhou (ICDE 2022).
//
// Indexing phase (Section IV-B): every data point is mapped into L
// K-dimensional projected spaces by L×K independent 2-stable projections
// (Eq. 7) and each projected space is indexed with an R*-tree built by STR
// bulk loading.
//
// Query phase (Section IV-C): a c-ANN query runs a series of (r,c)-NN
// queries with geometrically growing radius (Algorithm 2). Each (r,c)-NN
// query materializes L query-centric hypercubic buckets W(G_i(q), w0·r)
// (Eq. 8) as window queries on the R*-trees and verifies the points found
// until either a point within c·r is known or 2tL+1 candidates have been
// inspected (Algorithm 1). The (c,k)-ANN generalization follows the rules at
// the end of Section IV-C: the candidate budget becomes 2tL+k and the
// distance test applies to the k-th best candidate so far.
//
// The package is determinism-critical — the candidate stream and result
// set must not depend on map order, select winners, or runtime kernel
// choices — and is patrolled by dblsh-lint's detorder analyzer.
//
// dblsh:deterministic
package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"dblsh/internal/lsh"
	"dblsh/internal/metric"
	"dblsh/internal/rstar"
	"dblsh/internal/vec"
)

// Config controls index construction.
type Config struct {
	// C is the approximation ratio (> 1). Default 1.5, the paper's default.
	C float64
	// W0 is the initial bucket width. Default 4c² (γ = 2), giving the
	// paper's headline bound ρ* ≤ 1/c^4.746.
	W0 float64
	// T is the candidate constant t: queries verify at most 2tL+k points.
	// Default 100.
	T int
	// K is the number of hash functions per projected space. 0 uses the
	// paper's experimental setting: 10, or 12 for n ≥ 1M (Section VI-A).
	K int
	// L is the number of projected spaces. 0 uses the paper's setting of 5.
	L int
	// Seed drives all hash-function sampling. A given (Seed, K, L, dim)
	// always produces the same index.
	Seed int64
	// InitialRadius is the starting search radius r of Algorithm 2.
	// 0 estimates it from a data sample (the paper assumes distances are
	// normalized so r=1 works; synthetic data is not, so we estimate).
	InitialRadius float64
	// EarlyStopFactor loosens the ladder's termination test: the query
	// stops once the k-th candidate is within EarlyStopFactor·c·r instead
	// of c·r. Values above 1 terminate earlier, trading recall for speed —
	// the "early termination conditions" direction the paper's conclusion
	// sketches (cf. I-LSH/EI-LSH). 0 or 1 reproduces the paper exactly.
	EarlyStopFactor float64
	// Metric records the boundary reduction under which the indexed
	// vectors were transformed. The core ladder itself always runs pure
	// Euclidean distance over the (already transformed) internal space —
	// Algorithm 2 is only correct for L2 — so the field is never consulted
	// here; it rides along so the shard and persistence layers can
	// reconstruct the boundary transform.
	Metric metric.Kind
	// MetricNormBound is the fitted norm bound M of the inner-product
	// reduction (0 for the other metrics); plumbing like Metric.
	MetricNormBound float64
	// Tree configures the R*-trees.
	Tree rstar.Options
	// Quantize controls the int8 quantized pre-filter of the verification
	// path: "" or "on" (the default) maintains an int8 mirror of the data
	// matrix and rejects candidates whose quantized lower bound already
	// exceeds the current k-th best before any exact distance computation;
	// "off" restores the exact single-stage path. The pre-filter bound is
	// a certain lower bound on the exact distance, so the result set is
	// identical either way (rejected rows report +Inf exactly as the
	// early-abandon kernel would).
	Quantize string
}

// quantizeOn reports whether the quantized pre-filter is enabled.
func (c Config) quantizeOn() bool { return c.Quantize != "off" }

func (c Config) withDefaults(n int) Config {
	if c.C <= 1 {
		c.C = 1.5
	}
	if c.W0 <= 0 {
		c.W0 = 4 * c.C * c.C
	}
	if c.T <= 0 {
		c.T = 100
	}
	// The paper's experiments fix K and L rather than deriving them from
	// Lemma 1: at the default width w0 = 4c² the far-collision probability
	// p2 is so close to 1 that the theoretical K = log_{1/p2}(n/t) runs into
	// the thousands (Section V-B discusses exactly this trade-off). Follow
	// the paper's Section VI-A settings: K = 10 (12 for n ≥ 1M), L = 5.
	if c.K == 0 {
		c.K = 10
		if n >= 1_000_000 {
			c.K = 12
		}
	}
	if c.L == 0 {
		c.L = 5
	}
	if c.EarlyStopFactor <= 0 {
		c.EarlyStopFactor = 1
	}
	return c
}

// Resolved returns the configuration after defaulting and derivation for a
// dataset of n points — the parameters Build would actually use. It is
// idempotent: resolving an already-resolved configuration changes nothing,
// so a caller (such as the shard layer) can resolve once against the full
// dataset size and hand the result to several smaller Builds without the
// size-dependent K derivation diverging per shard.
func (c Config) Resolved(n int) Config { return c.withDefaults(n) }

// Index is an immutable DB-LSH index over a dataset. Concurrent queries are
// safe; each goroutine should use its own Searcher.
type Index struct {
	data      *vec.Matrix // dblsh:guardedby caller
	cfg       Config
	family    *lsh.Family
	projected []*vec.Matrix // dblsh:guardedby caller — L matrices, n×K
	trees     []*rstar.Tree // dblsh:guardedby caller — L R*-trees
	r0        float64
	pool      sync.Pool

	// quant is the int8 mirror of data feeding the verification
	// pre-filter; nil when Config.Quantize is "off". It mirrors the
	// metric-transformed rows (data is already transformed), so cosine and
	// inner-product indexes get the pre-filter for free. Not persisted:
	// checkpoint reload rebuilds it from the restored matrix.
	quant *vec.QuantMatrix // dblsh:guardedby caller

	// Tombstones: deleted points stay in the trees but are filtered from
	// query results. Rebuild the index when the deleted fraction grows
	// large; LSH indexes are cheap to rebuild (bulk loading).
	deleted      []bool // dblsh:guardedby caller
	deletedCount int    // dblsh:guardedby caller
}

// Build constructs the index: L projections of the dataset and L bulk-loaded
// R*-trees. Projection and tree construction run in parallel across the L
// spaces.
//
// dblsh:exclusive the index is under construction and unpublished; the
// build goroutines partition the L projected spaces, so no state is shared
func Build(data *vec.Matrix, cfg Config) *Index {
	n := data.Rows()
	cfg = cfg.withDefaults(n)
	cfg.Tree.Quantize = cfg.quantizeOn()
	idx := &Index{
		data:      data,
		cfg:       cfg,
		family:    lsh.NewFamily(cfg.L, cfg.K, data.Dim(), cfg.Seed),
		projected: make([]*vec.Matrix, cfg.L),
		trees:     make([]*rstar.Tree, cfg.L),
	}

	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := 0; i < cfg.L; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			idx.projected[i] = idx.family.Compound(i).Project(data)
			idx.trees[i] = rstar.BulkLoad(idx.projected[i], cfg.Tree)
		}(i)
	}
	wg.Wait()

	if cfg.quantizeOn() {
		idx.quant = vec.NewQuantMatrix(data)
	}

	idx.r0 = cfg.InitialRadius
	if idx.r0 <= 0 {
		idx.r0 = estimateInitialRadius(data, cfg.Seed)
	}
	idx.pool.New = func() interface{} { return newSearcher(idx) }
	return idx
}

// estimateInitialRadius picks a starting radius well below the typical
// nearest-neighbor distance so Algorithm 2's geometric ladder brackets r*.
// Starting too low only costs a handful of cheap extra rounds. Each sample
// query verifies its pool through the blocked batch kernel rather than one
// scalar distance at a time; the id sequence (and therefore the result) is
// identical to the scalar formulation.
func estimateInitialRadius(data *vec.Matrix, seed int64) float64 {
	n := data.Rows()
	if n < 2 {
		return 1
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5bf03635))
	const samples = 24
	const pool = 512
	ids := make([]int, 0, pool)
	dists := make([]float64, pool)
	best := math.Inf(1)
	for s := 0; s < samples; s++ {
		qi := rng.Intn(n)
		q := data.Row(qi)
		ids = ids[:0]
		for p := 0; p < pool; p++ {
			if oi := rng.Intn(n); oi != qi {
				ids = append(ids, oi)
			}
		}
		vec.SquaredDistsTo(q, data, ids, dists[:len(ids)])
		for _, d := range dists[:len(ids)] {
			if d < best {
				best = d
			}
		}
	}
	r := math.Sqrt(best) / 4
	if r <= 0 || math.IsInf(r, 1) {
		return 1
	}
	return r
}

// Insert adds a point to the index and returns its id, extending the paper's
// static design with the incremental maintenance its R*-trees natively
// support (the paper's Section VII lists this direction as future work).
// Insert must not run concurrently with queries or other Inserts.
func (idx *Index) Insert(p []float32) int {
	if len(p) != idx.data.Dim() {
		panic(fmt.Sprintf("core: insert dim %d, index dim %d", len(p), idx.data.Dim()))
	}
	id := idx.data.Append(p)
	for i := 0; i < idx.cfg.L; i++ {
		pid := idx.projected[i].Append(idx.family.Compound(i).Hash(nil, p))
		if pid != id {
			panic("core: projected matrix out of sync with data")
		}
		idx.trees[i].Insert(id)
	}
	if idx.quant != nil {
		idx.quant.Sync()
	}
	if idx.deleted != nil {
		idx.deleted = append(idx.deleted, false)
	}
	return id
}

// QuantEnabled reports whether the int8 verification pre-filter is active.
func (idx *Index) QuantEnabled() bool { return idx.quant != nil }

// SetQuantize applies a pre-filter setting to a built index — the
// operational toggle for restore paths, since the setting is not persisted
// (checkpoints rebuild the mirrors from the restored vectors with the
// default). Enabling builds the mirrors; disabling drops them and restores
// the exact single-stage verification path. Must not run concurrently with
// queries or mutations.
func (idx *Index) SetQuantize(q string) {
	idx.cfg.Quantize = q
	on := idx.cfg.quantizeOn()
	for _, tr := range idx.trees {
		tr.SetQuantize(on)
	}
	if !on {
		idx.quant = nil
	} else if idx.quant == nil {
		idx.quant = vec.NewQuantMatrix(idx.data)
	}
}

// Delete tombstones a point: it stays in the trees but is excluded from all
// subsequent query results. Returns false if id is out of range or already
// deleted. Delete must not run concurrently with queries or mutations.
// Deletion is O(1); reclaim space by rebuilding when Deleted() grows large.
func (idx *Index) Delete(id int) bool {
	if id < 0 || id >= idx.data.Rows() {
		return false
	}
	if idx.deleted == nil {
		idx.deleted = make([]bool, idx.data.Rows())
	}
	for len(idx.deleted) < idx.data.Rows() {
		idx.deleted = append(idx.deleted, false)
	}
	if idx.deleted[id] {
		return false
	}
	idx.deleted[id] = true
	idx.deletedCount++
	return true
}

// Deleted returns the number of tombstoned points.
func (idx *Index) Deleted() int { return idx.deletedCount }

// IsDeleted reports whether id is tombstoned.
func (idx *Index) IsDeleted(id int) bool { return idx.isDeleted(id) }

// DeletedBits returns the tombstone bitmap: bit i is true when point i is
// deleted. The slice may be nil (no deletions yet) or shorter than Size()
// (points appended since the last Delete are live). Callers must treat it
// as read-only; it aliases the index's own state.
func (idx *Index) DeletedBits() []bool { return idx.deleted }

// LiveRows returns a compacted copy of the live (non-tombstoned) rows
// together with each copied row's current id: row j of the returned matrix
// is the point that was ids[j] in this index. It is the rebuild primitive
// for compaction — Build over the returned matrix yields an equivalent
// index with zero tombstone debt.
func (idx *Index) LiveRows() (*vec.Matrix, []int) {
	m := vec.NewMatrix(idx.Live(), idx.data.Dim())
	ids := make([]int, 0, idx.Live())
	for i := 0; i < idx.data.Rows(); i++ {
		if idx.isDeleted(i) {
			continue
		}
		m.SetRow(len(ids), idx.data.Row(i))
		ids = append(ids, i)
	}
	return m, ids
}

// Live returns the number of points that queries can still return.
func (idx *Index) Live() int { return idx.data.Rows() - idx.deletedCount }

// isDeleted reports whether id is tombstoned.
func (idx *Index) isDeleted(id int) bool {
	return idx.deleted != nil && id < len(idx.deleted) && idx.deleted[id]
}

// Params reports the effective configuration.
func (idx *Index) Params() Config { return idx.cfg }

// Data returns the index's point matrix. Callers must treat it as read-only.
func (idx *Index) Data() *vec.Matrix { return idx.data }

// Size returns the number of indexed points.
func (idx *Index) Size() int { return idx.data.Rows() }

// Dim returns the dimensionality of the original space.
func (idx *Index) Dim() int { return idx.data.Dim() }

// InitialRadius returns the starting radius of the query ladder.
func (idx *Index) InitialRadius() float64 { return idx.r0 }

// IndexSizeBytes approximates the memory footprint of the projections and
// trees (excluding the original data), the quantity Table IV compares.
func (idx *Index) IndexSizeBytes() int64 {
	var b int64
	for i, p := range idx.projected {
		b += int64(p.Rows()) * int64(p.Dim()) * 4
		b += idx.trees[i].ComputeStats().BytesApprox
	}
	return b
}

// Stats describes a completed query.
type Stats struct {
	Candidates int     // points verified with an exact distance computation
	Rounds     int     // (r,c)-NN rounds executed
	FinalR     float64 // radius at termination

	// NodesVisited counts R*-tree nodes examined by the query's traversal,
	// summed across trees and rounds. Under the incremental cursor ladder
	// each node is examined at most once per query (plus re-arms); under the
	// window re-scan oracle every round re-examines the covered region, so
	// the two modes report very different values for identical results —
	// this counter is how the difference is measured.
	NodesVisited int
	// Frontier is the number of items (subtrees and points) still parked in
	// the traversal cursors when the query finished — the residual work the
	// incremental ladder never had to touch. Zero under the re-scan oracle.
	Frontier int
	// QuantPruned counts candidates the int8 quantized pre-filter rejected
	// before any exact float32 work (a subset of Candidates: pruned rows
	// still consume budget, exactly like early-abandoned rows). Zero when
	// the pre-filter is off.
	QuantPruned int
	// QuantSwept counts candidates the pre-filter actually swept
	// (QuantPruned's denominator): the adaptive gate stops sweeping — and
	// QuantSwept stops growing — while the observed prune rate is too low
	// to pay for the sweep.
	QuantSwept int
	// ParallelRounds counts the coordinated ladder rounds that fanned out
	// across shards concurrently, including the final covering sweep (which
	// Rounds does not count, so this can reach Rounds+1). Zero on a
	// single-shard index and whenever the query ran the sequential path.
	ParallelRounds int
	// StragglerNanos sums, over the parallel rounds, the wall time of each
	// round's slowest shard gather — the critical path of the fan-out.
	// Comparing it against total query latency shows how much of the query
	// was spent waiting on the per-round barrier.
	StragglerNanos int64
}

// QueryParams carries per-query overrides of the knobs Config freezes at
// build time. The zero value reproduces the index's build-time behavior
// exactly, so every query path threads a QueryParams and the legacy entry
// points pass the zero value.
type QueryParams struct {
	// T overrides Config.T for this query: the verification budget becomes
	// 2·T·L+k exact distance computations. 0 keeps the build-time value.
	T int
	// EarlyStopFactor overrides Config.EarlyStopFactor for this query.
	// 0 keeps the build-time value; 1 reproduces Algorithm 2 exactly.
	EarlyStopFactor float64
	// MaxRadius caps Algorithm 2's radius ladder: rounds whose radius would
	// exceed it are not executed and the query returns whatever candidates
	// it has. 0 leaves the ladder unbounded.
	MaxRadius float64
	// Budget, when positive, replaces the derived candidate budget (2tL+k
	// for the ladder, 2tL+1 for a fixed-radius round) with an absolute cap
	// on exact distance computations. The shard coordinator uses it to
	// share one budget across per-shard probes.
	Budget int
	// Ctx, when non-nil, is polled between radius rounds; once it is done
	// the query stops and returns the best candidates found so far together
	// with Ctx.Err().
	Ctx context.Context
	// Filter, when non-nil, restricts results to ids it accepts. Rejected
	// points are skipped inside the verification loop before the exact
	// distance computation — the same path tombstoned points take — so they
	// consume none of the candidate budget.
	Filter func(id int) bool
	// Parallelism overrides the shard coordinator's per-round fan-out width
	// for this query: 0 inherits the set-level setting, -1 forces the auto
	// policy (min(GOMAXPROCS, shards)), n ≥ 1 uses exactly n workers, with
	// 1 selecting the sequential reference path. A single-index query
	// ignores it — rounds on one core.Index have nothing to fan out over.
	Parallelism int
}

// Resolve merges the per-query overrides with the build-time configuration,
// returning the effective candidate constant and early-stop factor. It is
// the single source of the knob-defaulting rules; the shard coordinator
// uses it so the multi-shard ladder terminates exactly like the
// single-shard one.
func (p QueryParams) Resolve(cfg Config) (t int, stopFactor float64) {
	return p.resolve(cfg)
}

// Cancelled reports whether the query's context has expired.
func (p QueryParams) Cancelled() bool { return p.cancelled() }

// resolve merges the per-query overrides with the build-time configuration.
func (p QueryParams) resolve(cfg Config) (t int, stopFactor float64) {
	t = cfg.T
	if p.T > 0 {
		t = p.T
	}
	stopFactor = cfg.EarlyStopFactor
	if p.EarlyStopFactor > 0 {
		stopFactor = p.EarlyStopFactor
	}
	if stopFactor <= 0 {
		stopFactor = 1
	}
	return t, stopFactor
}

// cancelled reports whether the query's context has expired.
func (p QueryParams) cancelled() bool {
	if p.Ctx == nil {
		return false
	}
	select {
	case <-p.Ctx.Done():
		return true
	default:
		return false
	}
}

// Searcher holds per-goroutine query scratch state (visited stamps, the
// query's L hash vectors, the L persistent traversal cursors, and the
// candidate block buffers of the batched verification path). Obtain one with
// NewSearcher; a Searcher must not be used concurrently.
type Searcher struct {
	idx     *Index
	visited []uint32
	epoch   uint32
	qhash   [][]float32
	qunits  []float64 // current query in the pre-filter's code units
	last    Stats

	// Adaptive pre-filter gate. The int8 sweep only pays for itself when
	// it actually prunes: every swept block updates a hit counter, and
	// once a full window shows the prune rate below quantGateRate the gate
	// opens — subsequent blocks skip straight to the exact kernel, with
	// every quantGateProbe-th block still swept so the gate can close
	// again when the workload changes (e.g. a looser bound after the heap
	// refills on a new query). Skipping the sweep never changes results:
	// the rows it would have pruned are exactly those the bounded kernel
	// reports as +Inf anyway.
	quantOff   bool
	quantBlock int // blocks seen since the gate state last mattered
	quantSweep int // rows swept in the current window
	quantHits  int // rows pruned in the current window

	// Candidate block scratch: ids gathered from the traversal, and the
	// distances the batch kernel writes for them. In cursor mode bmeta runs
	// parallel to bids, recording which cursor surfaced each candidate (and
	// where in its shell) so an unconsumed candidate can be returned to its
	// frontier instead of relying on a re-scan to rediscover it.
	bids   []int
	bmeta  []blockMeta
	bdists []float64
	ebuf   []int32 // cursor emission batch buffer

	// cursors are the L per-tree incremental frontiers of the ladder; Begin
	// seeds them and each round advances them by one shell, so the query
	// touches every tree node at most once instead of re-walking the covered
	// region every round. rescan switches the searcher back to the
	// root-to-leaf window re-scan of the original Algorithm 2 formulation —
	// kept alive as the differential oracle the cursor ladder is tested
	// against, verifying the same candidates in the same order.
	cursors []*rstar.Cursor
	rescan  bool
	rearms  int // cursor re-arms triggered by mid-query tree mutations
}

// blockMeta locates a gathered candidate in its cursor's current shell:
// cursors[tree].Unpop(pos) hands it back to the frontier.
type blockMeta struct {
	tree int32
	pos  int32
}

func newSearcher(idx *Index) *Searcher {
	s := &Searcher{
		idx:     idx,
		visited: make([]uint32, idx.data.Rows()),
		qhash:   make([][]float32, idx.cfg.L),
		bids:    make([]int, 0, verifyBlockSize),
		bmeta:   make([]blockMeta, 0, verifyBlockSize),
		bdists:  make([]float64, verifyBlockSize),
		ebuf:    make([]int32, verifyBlockSize),
	}
	for i := range s.qhash {
		s.qhash[i] = make([]float32, 0, idx.cfg.K)
	}
	if idx.cfg.Tree.MaxEntries <= 64 {
		// The cursors' per-leaf bitmasks need MaxEntries ≤ 64 (default 32);
		// an exotic wider tree falls back to the window re-scan traversal,
		// which answers identically (see SetWindowRescan).
		s.cursors = make([]*rstar.Cursor, idx.cfg.L)
		for i := range s.cursors {
			s.cursors[i] = rstar.NewCursor(idx.trees[i])
		}
	} else {
		s.rescan = true
	}
	return s
}

// SetWindowRescan switches the searcher between the incremental cursor
// ladder (the default, on = false) and the per-round window re-scan of the
// paper's literal Algorithm 2 formulation. The two traversals verify the
// same candidate set in the same order — re-scan mode exists as the
// differential oracle the equivalence tests and fuzzers compare against,
// and as an escape hatch while the cursor path is load-bearing.
func (s *Searcher) SetWindowRescan(on bool) {
	if s.cursors == nil {
		on = true // no cursors to switch to (tree too wide; see newSearcher)
	}
	s.rescan = on
}

// FrontierLen returns the total number of items parked across the
// searcher's cursors — Stats.Frontier for callers (the shard coordinator)
// that drive rounds themselves.
func (s *Searcher) FrontierLen() int {
	n := 0
	for _, c := range s.cursors {
		n += c.FrontierLen()
	}
	return n
}

// CursorReArms returns how many cursor re-arms mid-query tree mutations have
// forced since the searcher was created. Test hook for the mutate-during-
// query interleaving.
func (s *Searcher) CursorReArms() int { return s.rearms }

// verifyBlockSize is the candidate block the verification path gathers
// before calling the batch distance kernels: large enough to amortize the
// per-block bookkeeping and keep q's cache lines hot across rows. The
// cursor ladder always gathers full blocks — a stop mid-block hands the
// unconsumed candidates back to the frontiers exactly, so over-gathering
// never costs more than one block of traversal per query. The window
// re-scan oracle has no hand-back: once the caller's top-k heap is full a
// stop can fire at any flush, and every fresh candidate gathered past the
// stop is traversal the pre-blocking code never paid (late-round windows
// are dense with already-visited points), so there the gather shrinks to
// verifyBlockHot.
const (
	verifyBlockSize = 64
	verifyBlockHot  = 2
)

// flushBlock verifies the gathered candidate block with the batched kernels
// and reports the candidates to emit in gather order. worst, when non-nil,
// bounds the early-abandon kernel: candidates whose exact distance provably
// exceeds worst() are reported as +Inf — by construction they cannot enter
// the top-k heap that worst came from, so results are identical to exact
// verification. emit returns how many candidates it consumed and whether
// to stop the traversal (consuming fewer than the block stops regardless,
// so a stop exactly at the block's last candidate is still exact); the
// unconsumed candidates get their visited stamps cleared so a later round
// can rediscover them (stamp 0 never matches a live epoch). Returns false
// on stop.
func (s *Searcher) flushBlock(q []float32, worst func() float64, emit emitFunc) bool {
	if len(s.bids) == 0 {
		return true
	}
	if cap(s.bdists) < len(s.bids) {
		s.bdists = make([]float64, len(s.bids))
	}
	dists := s.bdists[:len(s.bids)]
	bound := math.Inf(1)
	if worst != nil {
		bound = worst()
	}
	if s.idx.quant != nil && !math.IsInf(bound, 1) && s.quantGate() {
		// Two-stage verification: sweep the block's int8 codes first and
		// only re-rank rows whose quantized lower bound does not already
		// beat the k-th best. A pruned row reports +Inf — the exact value
		// the bounded kernel would report, since its true distance provably
		// exceeds the bound — so the emitted stream is bit-identical to the
		// single-stage path.
		pruned := vec.SquaredDistsToBoundedQuant(
			q, s.qunits, s.idx.data, s.idx.quant, s.bids, bound*bound, dists)
		s.last.QuantPruned += pruned
		s.last.QuantSwept += len(s.bids)
		s.quantNote(len(s.bids), pruned)
	} else {
		vec.SquaredDistsToBounded(q, s.idx.data, s.bids, bound*bound, dists)
	}
	for j := range dists {
		dists[j] = math.Sqrt(dists[j])
	}
	n, stop := emit(s.bids, dists)
	stop = stop || n < len(s.bids)
	withMeta := len(s.bmeta) == len(s.bids)
	for k, id := range s.bids[n:] {
		s.visited[id] = 0
		if withMeta {
			// Cursor mode: a re-scan would rediscover the candidate next
			// round; the frontier has to get it back explicitly.
			m := s.bmeta[n+k]
			s.cursors[m.tree].Unpop(int(m.pos))
		}
	}
	s.bids = s.bids[:0]
	s.bmeta = s.bmeta[:0]
	return !stop
}

// Adaptive gate tuning. The sweep reads a quarter of the bandwidth of the
// exact kernel, but candidate rows are cold — measured cost per swept row
// is a large fraction of the exact kernel's — so it only breaks even when
// a substantial fraction of swept rows actually gets pruned. Below that
// the gate opens and only every quantGateProbe-th block is swept, keeping
// the measurement alive at negligible cost so the gate can close again on
// workloads (or query phases) where the bound bites.
const (
	quantGateWindow = 256 // rows per measurement window
	quantGateRate   = 3   // keep sweeping while pruned ≥ swept/quantGateRate
	quantGateProbe  = 64  // while open, sweep 1 block in quantGateProbe
)

// quantGate reports whether the next block should run the quantized
// pre-filter sweep.
func (s *Searcher) quantGate() bool {
	if !s.quantOff {
		return true
	}
	s.quantBlock++
	return s.quantBlock%quantGateProbe == 0
}

// quantNote records a swept block's outcome and flips the gate when a full
// window's prune rate crosses the break-even threshold.
func (s *Searcher) quantNote(swept, pruned int) {
	s.quantSweep += swept
	s.quantHits += pruned
	if s.quantSweep < quantGateWindow {
		return
	}
	s.quantOff = s.quantHits*quantGateRate < s.quantSweep
	s.quantSweep, s.quantHits = 0, 0
}

// emitFunc receives one verified candidate block in gather order: ids[j]'s
// exact distance is dists[j] (or +Inf when the early-abandon kernel proved
// it cannot beat the caller's bound). It returns how many candidates it
// consumed and whether the traversal should stop; consumed < len(ids)
// implies stop.
type emitFunc = func(ids []int, dists []float64) (consumed int, stop bool)

// NewSearcher returns a dedicated searcher bound to the index.
func (idx *Index) NewSearcher() *Searcher { return newSearcher(idx) }

// KANN answers a (c,k)-ANN query using a pooled searcher. For repeated
// queries from one goroutine, prefer an explicit Searcher.
func (idx *Index) KANN(q []float32, k int) []vec.Neighbor {
	s := idx.pool.Get().(*Searcher)
	defer idx.pool.Put(s)
	return s.KANN(q, k)
}

// KANNParams answers a (c,k)-ANN query with per-query overrides using a
// pooled searcher, returning the query's statistics alongside the results.
// A non-nil error (the context's) still comes with the best candidates
// found before cancellation.
func (idx *Index) KANNParams(q []float32, k int, p QueryParams) ([]vec.Neighbor, Stats, error) {
	s := idx.pool.Get().(*Searcher)
	defer idx.pool.Put(s)
	nbs, err := s.KANNParams(q, k, p)
	return nbs, s.last, err
}

// ANN answers a c-ANN query (k = 1). ok is false only on an empty index.
func (idx *Index) ANN(q []float32) (vec.Neighbor, bool) {
	s := idx.pool.Get().(*Searcher)
	defer idx.pool.Put(s)
	return s.ANN(q)
}

// LastStats returns statistics for the searcher's most recent query.
func (s *Searcher) LastStats() Stats { return s.last }

// freshEpoch starts a new visited-stamp epoch, clearing stamps on wraparound
// and growing the stamp array if the index gained points since the searcher
// was created.
func (s *Searcher) freshEpoch() {
	s.ensureStamps()
	s.epoch++
	if s.epoch == 0 {
		for i := range s.visited {
			s.visited[i] = 0
		}
		s.epoch = 1
	}
}

// ANN answers a c-ANN query with this searcher.
func (s *Searcher) ANN(q []float32) (vec.Neighbor, bool) {
	res := s.KANN(q, 1)
	if len(res) == 0 {
		return vec.Neighbor{}, false
	}
	return res[0], true
}

// KANN answers a (c,k)-ANN query with the index's build-time parameters.
func (s *Searcher) KANN(q []float32, k int) []vec.Neighbor {
	nbs, _ := s.KANNParams(q, k, QueryParams{})
	return nbs
}

// KANNParams answers a (c,k)-ANN query (Algorithm 2 with the Section IV-C
// (c,k) termination rules): radius grows r, cr, c²r, …; at each radius L
// window queries materialize query-centric buckets of width w0·r; candidates
// are verified by exact distance — in blocks, through the batched kernels
// with early-abandon pruning against the current k-th best — until the
// budget 2tL+k is exhausted or the k-th best candidate is within c·r. The
// QueryParams override the build-time knobs for this query only; the zero
// value is KANN. The returned error is non-nil only when p.Ctx expires, and
// even then the candidates verified before cancellation are returned.
func (s *Searcher) KANNParams(q []float32, k int, p QueryParams) ([]vec.Neighbor, error) {
	idx := s.idx
	if len(q) != idx.data.Dim() {
		panic(fmt.Sprintf("core: query dim %d, index dim %d", len(q), idx.data.Dim()))
	}
	if k <= 0 {
		panic("core: k must be positive")
	}
	s.last = Stats{}
	if idx.data.Rows() == 0 {
		return nil, nil
	}
	// Checked before the per-query hashing as well as per round, so the
	// queries behind a dead context in a large batch are near-free.
	if p.cancelled() {
		return nil, p.Ctx.Err()
	}

	s.Begin(q)

	t, stopFactor := p.resolve(idx.cfg)
	cand := vec.NewTopK(k)
	budget := 2*t*idx.cfg.L + k
	if p.Budget > 0 {
		budget = p.Budget
	}
	cnt := 0
	live := idx.Live()
	c := idx.cfg.C
	stopC := stopFactor * c
	w0 := idx.cfg.W0
	r := idx.r0

	worst := func() float64 {
		if w, full := cand.Worst(); full {
			return w
		}
		return math.Inf(1)
	}
	done := false
	// The budget and the termination test apply per candidate in gather
	// order, exactly as the pre-blocking per-id loop did; a mid-block stop
	// hands the unconsumed tail back to the traversal (see flushBlock), so
	// blocking never changes which candidates are verified.
	emit := func(ids []int, dists []float64) (int, bool) {
		for j, id := range ids {
			cand.Push(id, dists[j])
			cnt++
			if cnt >= budget {
				done = true
				return j + 1, true
			}
			if w, full := cand.Worst(); full && w <= stopC*r {
				done = true
				return j + 1, true
			}
		}
		return len(ids), false
	}

	for {
		if p.MaxRadius > 0 && r > p.MaxRadius {
			break
		}
		if p.cancelled() {
			s.last.Candidates = cnt
			s.finishTraversal()
			return cand.Results(), p.Ctx.Err()
		}
		s.last.Rounds++
		s.runWindows(q, r, p.Filter, worst, emit)
		s.last.FinalR = r
		if done {
			break
		}
		if w, full := cand.Worst(); full && w <= stopC*r {
			break
		}
		if cnt >= live {
			break // every live point verified: the result is exact
		}
		r *= c
		if p.MaxRadius > 0 && r > p.MaxRadius {
			// Checked here as well as at the loop top so the full-corpus
			// sweep below can never run past the cap.
			break
		}
		if s.coversAllTrees(w0 * r) {
			// The next window contains every projected point in every tree;
			// run one final full sweep — bounded by the budget but not the
			// termination test — and stop.
			sweepEmit := func(ids []int, dists []float64) (int, bool) {
				for j, id := range ids {
					cand.Push(id, dists[j])
					cnt++
					if cnt >= budget {
						return j + 1, true
					}
				}
				return len(ids), false
			}
			s.Sweep(q, p.Filter, worst, sweepEmit)
			break
		}
	}
	s.last.Candidates = cnt
	s.finishTraversal()
	return cand.Results(), nil
}

// finishTraversal records the cursors' end-of-query state into the stats.
func (s *Searcher) finishTraversal() {
	if !s.rescan {
		s.last.Frontier = s.FrontierLen()
	}
}

// coversAllTrees reports whether a window of width w centred at the query
// hash would contain the entire bounding box of every tree.
func (s *Searcher) coversAllTrees(w float64) bool {
	for i, tr := range s.idx.trees {
		if !tr.Covered(s.qhash[i], w/2) {
			return false
		}
	}
	return true
}

// Round-level query primitives.
//
// KANNParams runs the whole radius ladder against one index. A sharded
// index needs the ladder *split across indexes*: every shard executes the
// same round r, cr, c²r, … and a coordinator merges candidates, applies the
// global budget and the global termination test — otherwise each shard
// re-runs the full ladder against its sparser stripe and a fanned-out query
// costs S× the paper's work profile. Begin/RunRound/Covers/Sweep expose one
// round as the unit of work so the shard layer can be that coordinator.
//
// Candidates flow to the caller in verified blocks, not per-id callbacks:
// the traversal gathers up to verifyBlockSize ids, the batch kernels verify
// the whole block against the contiguous matrix storage (early-abandoning
// rows that provably cannot beat the caller's current k-th best), and emit
// receives the block. emit's consumed-count return keeps the caller's
// budget exact across the block boundary.

// Begin prepares the searcher for a round-coordinated query: it starts a
// fresh visited epoch, hashes q into each projected space, and seeds the L
// traversal cursors at their roots (cursor mode; seeding is O(1) per tree —
// traversal happens lazily as rounds advance). Call it once per query
// before the first RunRound.
func (s *Searcher) Begin(q []float32) {
	if len(q) != s.idx.data.Dim() {
		panic(fmt.Sprintf("core: query dim %d, index dim %d", len(q), s.idx.data.Dim()))
	}
	s.last = Stats{}
	s.freshEpoch()
	for i := 0; i < s.idx.cfg.L; i++ {
		s.qhash[i] = s.idx.family.Compound(i).Hash(s.qhash[i][:0], q)
	}
	if s.idx.quant != nil {
		s.qunits = s.idx.quant.QuantizeQueryUnits(q, s.qunits)
	}
	if !s.rescan {
		for i, cur := range s.cursors {
			cur.Reset(s.qhash[i])
		}
	}
}

// ensureStamps grows the visited-stamp array if the index gained points
// since the previous round (the coordinator releases the index's lock
// between rounds, so appends can interleave).
func (s *Searcher) ensureStamps() {
	if n := s.idx.data.Rows(); n > len(s.visited) {
		grown := make([]uint32, n)
		copy(grown, s.visited)
		s.visited = grown
	}
}

// RunRound executes one (r,c)-NN round: every previously-unvisited, live
// point inside a query-centric bucket of width w0·r that passes filter is
// verified in blocks and reported to emit with its exact Euclidean distance
// — or +Inf for candidates the early-abandon kernel pruned because they
// provably cannot beat worst() (see flushBlock). worst, when non-nil,
// should return the caller's current k-th best distance (+Inf while the
// heap is under capacity). emit (see emitFunc) stops the round mid-block;
// unconsumed candidates are handed back for later rounds. The caller owns
// the candidate heap, the budget and the termination test.
//
// In the default cursor mode the round advances the L persistent frontiers
// by one shell instead of re-scanning each window from the root; a tree
// mutated since the previous round (the shard coordinator releases its lock
// between rounds, so appends can interleave) is detected by version and its
// cursor re-armed, so mid-query inserts are picked up exactly as a re-scan
// would pick them up rather than silently missed.
func (s *Searcher) RunRound(q []float32, r float64, filter func(int) bool, worst func() float64, emit emitFunc) {
	s.ensureStamps()
	s.runWindows(q, r, filter, worst, emit)
}

// runWindows is RunRound without the stamp-growth check (KANNParams has
// already run freshEpoch when it calls this).
func (s *Searcher) runWindows(q []float32, r float64, filter func(int) bool, worst func() float64, emit emitFunc) {
	if s.rescan {
		s.runWindowsRescan(q, r, filter, worst, emit)
		return
	}
	half := s.idx.cfg.W0 * r / 2
	s.bids = s.bids[:0]
	s.bmeta = s.bmeta[:0]
	for i := 0; i < s.idx.cfg.L; i++ {
		if !s.advanceCursor(i, half, q, filter, worst, emit) {
			return // stopped: flushBlock already handed back unconsumed work
		}
	}
	s.flushBlock(q, worst, emit)
}

// advanceCursor widens cursor i's window to Chebyshev half-width half and
// gathers the newly-exposed shell into the verification block, flushing at
// full blocks (cursor mode always gathers verifyBlockSize; see
// blockLimit). A stale cursor (tree mutated since it was seeded) is
// re-armed first. Returns false when a flush stopped the traversal — the
// unexamined shell remainder stays in the frontier so later rounds can
// still surface it.
func (s *Searcher) advanceCursor(i int, half float64, q []float32, filter func(int) bool, worst func() float64, emit emitFunc) bool {
	cur := s.cursors[i]
	if !cur.Synced() {
		cur.ReArm()
		s.rearms++
	}
	before := cur.NodesVisited()
	cur.BeginRound(half)
	base := 0 // emission ordinal of ebuf[0] within this cursor's round
	stopped := false
outer:
	for {
		m := cur.NextBatch(s.ebuf)
		if m == 0 {
			break
		}
		for j := 0; j < m; j++ {
			id := int(s.ebuf[j])
			if s.visited[id] == s.epoch {
				continue
			}
			s.visited[id] = s.epoch
			if s.idx.isDeleted(id) {
				continue
			}
			if filter != nil && !filter(id) {
				continue
			}
			s.bids = append(s.bids, id)
			s.bmeta = append(s.bmeta, blockMeta{tree: int32(i), pos: int32(base + j)})
			if len(s.bids) >= verifyBlockSize {
				if !s.flushBlock(q, worst, emit) {
					// Hand back the batch tail the gather never examined;
					// flushBlock handed back its own unconsumed candidates.
					for u := j + 1; u < m; u++ {
						cur.Unpop(base + u)
					}
					stopped = true
					break outer
				}
			}
		}
		base += m
	}
	if stopped {
		// The stop ends the query; skip the O(frontier) round teardown.
		// Were another round driven anyway, the cursor re-arms and the
		// visited stamps keep the re-walk equivalent to a window re-scan.
		cur.Abandon()
	} else {
		cur.EndRound()
	}
	s.last.NodesVisited += cur.NodesVisited() - before
	return !stopped
}

// runWindowsRescan is the window re-scan formulation: each round runs every
// window query root-to-leaf, re-walking the already-covered region and
// relying on the visited stamps to skip re-verification. Kept as the
// differential oracle for the cursor ladder (see SetWindowRescan).
func (s *Searcher) runWindowsRescan(q []float32, r float64, filter func(int) bool, worst func() float64, emit emitFunc) {
	idx := s.idx
	s.bids = s.bids[:0]
	s.bmeta = s.bmeta[:0]
	aborted := false
	limit := s.blockLimit(worst)
	for i := 0; i < idx.cfg.L && !aborted; i++ {
		w := rstar.WindowRect(s.qhash[i], idx.cfg.W0*r)
		s.last.NodesVisited += idx.trees[i].WindowVisits(w, func(id int) bool {
			if s.visited[id] == s.epoch {
				return true
			}
			s.visited[id] = s.epoch
			if idx.isDeleted(id) {
				return true
			}
			if filter != nil && !filter(id) {
				return true
			}
			s.bids = append(s.bids, id)
			if len(s.bids) >= limit {
				if !s.flushBlock(q, worst, emit) {
					aborted = true
					return false
				}
				limit = s.blockLimit(worst)
			}
			return true
		})
	}
	if !aborted {
		s.flushBlock(q, worst, emit)
	}
}

// blockLimit picks the gather size for the re-scan oracle's next block:
// full-size while the caller's heap is still filling (no stop can fire),
// verifyBlockHot once it is full — the re-scan has no way to hand back
// over-gathered candidates, so a stop must not over-run traversal by more
// than a few entries. The cursor ladder never consults this: it always
// gathers full blocks, because a stop mid-block hands the unconsumed tail
// back to the frontiers exactly (see Cursor.Unpop) and over-gathering
// costs at most one block of traversal once per query.
func (s *Searcher) blockLimit(worst func() float64) int {
	if worst != nil && !math.IsInf(worst(), 1) {
		return verifyBlockHot
	}
	return verifyBlockSize
}

// Covers reports whether the next round at radius r would materialize
// buckets containing every indexed point — the ladder's natural end.
func (s *Searcher) Covers(r float64) bool { return s.coversAllTrees(s.idx.cfg.W0 * r) }

// Sweep verifies all remaining unvisited live points, for the final
// full-coverage round, through the first tree (every point appears in every
// tree, so one suffices). Blocks, worst and emit behave as in RunRound. In
// cursor mode the sweep simply drains the first frontier — everything not
// yet popped — instead of re-walking the whole tree.
func (s *Searcher) Sweep(q []float32, filter func(int) bool, worst func() float64, emit emitFunc) {
	idx := s.idx
	if idx.data.Rows() == 0 {
		return
	}
	s.ensureStamps()
	s.bids = s.bids[:0]
	s.bmeta = s.bmeta[:0]
	if !s.rescan {
		if s.advanceCursor(0, math.Inf(1), q, filter, worst, emit) {
			s.flushBlock(q, worst, emit)
		}
		return
	}
	limit := s.blockLimit(worst)
	aborted := false
	tr := idx.trees[0]
	s.last.NodesVisited += tr.WindowVisits(tr.Bounds(), func(id int) bool {
		if s.visited[id] == s.epoch {
			return true
		}
		s.visited[id] = s.epoch
		if idx.isDeleted(id) {
			return true
		}
		if filter != nil && !filter(id) {
			return true
		}
		s.bids = append(s.bids, id)
		if len(s.bids) >= limit {
			if !s.flushBlock(q, worst, emit) {
				aborted = true
				return false
			}
			limit = s.blockLimit(worst)
		}
		return true
	})
	if !aborted {
		s.flushBlock(q, worst, emit)
	}
}

// RNear answers a single (r,c)-NN query (Algorithm 1): it returns a point
// within c·r of q if one is found before the 2tL+1 candidate budget runs
// out, the budget-exhausting candidate otherwise, or ok = false when the L
// window queries complete without either condition triggering.
func (s *Searcher) RNear(q []float32, r float64) (vec.Neighbor, bool) {
	nb, ok, _ := s.RNearParams(q, r, QueryParams{})
	return nb, ok
}

// RNearParams is RNear with per-query overrides: the candidate budget uses
// p.T when set, p.Filter excludes points before verification, and p.Ctx is
// checked once at entry (a single (r,c)-NN round is the unit of cancellation
// in the ladder). p.EarlyStopFactor and p.MaxRadius do not apply to a
// fixed-radius query and are ignored.
func (s *Searcher) RNearParams(q []float32, r float64, p QueryParams) (vec.Neighbor, bool, error) {
	idx := s.idx
	if len(q) != idx.data.Dim() {
		panic(fmt.Sprintf("core: query dim %d, index dim %d", len(q), idx.data.Dim()))
	}
	s.last = Stats{Rounds: 1, FinalR: r}
	if idx.data.Rows() == 0 {
		return vec.Neighbor{}, false, nil
	}
	if p.cancelled() {
		s.last = Stats{FinalR: r}
		return vec.Neighbor{}, false, p.Ctx.Err()
	}
	s.freshEpoch()
	for i := 0; i < idx.cfg.L; i++ {
		s.qhash[i] = idx.family.Compound(i).Hash(s.qhash[i][:0], q)
	}
	if idx.quant != nil {
		s.qunits = idx.quant.QuantizeQueryUnits(q, s.qunits)
	}

	t, _ := p.resolve(idx.cfg)
	budget := 2*t*idx.cfg.L + 1
	if p.Budget > 0 {
		budget = p.Budget
	}
	cnt := 0
	c := idx.cfg.C
	var found vec.Neighbor
	ok := false
	// Verification runs through the blocked batch kernels like the ladder's
	// rounds: candidates gather into blocks and the budget and the c·r test
	// apply per candidate in gather order, so the answer is the one the
	// scalar per-id loop produced. No early-abandon bound applies — the
	// budget-exhausting candidate is returned with its distance, so every
	// distance must be exact.
	emit := func(ids []int, dists []float64) (int, bool) {
		for j, id := range ids {
			cnt++
			if cnt >= budget || dists[j] <= c*r {
				found, ok = vec.Neighbor{ID: id, Dist: dists[j]}, true
				return j + 1, true
			}
		}
		return len(ids), false
	}
	s.bids = s.bids[:0]
	s.bmeta = s.bmeta[:0]
	aborted := false
	for i := 0; i < idx.cfg.L && !aborted; i++ {
		w := rstar.WindowRect(s.qhash[i], idx.cfg.W0*r)
		s.last.NodesVisited += idx.trees[i].WindowVisits(w, func(id int) bool {
			if s.visited[id] == s.epoch {
				return true
			}
			s.visited[id] = s.epoch
			if idx.isDeleted(id) {
				return true
			}
			if p.Filter != nil && !p.Filter(id) {
				return true
			}
			s.bids = append(s.bids, id)
			if len(s.bids) >= verifyBlockSize {
				if !s.flushBlock(q, nil, emit) {
					aborted = true
					return false
				}
			}
			return true
		})
		// Flush at each tree boundary as well as at full blocks: a
		// qualifying candidate in an early tree's window must stop the
		// query before the remaining windows are traversed, matching the
		// pre-blocking per-id loop's early exit to within one window.
		if !aborted && !s.flushBlock(q, nil, emit) {
			aborted = true
		}
	}
	s.last.Candidates = cnt
	return found, ok, nil
}
