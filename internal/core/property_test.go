package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dblsh/internal/vec"
)

// quickCfg pins quick.Check's input generator — the default is time-seeded,
// which makes failures unreproducible across runs.
func quickCfg(maxCount int) *quick.Config {
	return &quick.Config{MaxCount: maxCount, Rand: rand.New(rand.NewSource(1))}
}

// buildRandom builds a small index over uniformly random points derived from
// a property-test seed.
func buildRandom(seed int64, n, d int) (*Index, *vec.Matrix, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	data := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			data.Row(i)[j] = float32(rng.NormFloat64() * 5)
		}
	}
	idx := Build(data, Config{C: 1.5, K: 4, L: 2, T: 20, Seed: seed})
	return idx, data, rng
}

// Property: KANN results are sorted, deduplicated, carry true distances, and
// never exceed min(k, n) entries — for any seed, any k, any query.
func TestKANNContractProperty(t *testing.T) {
	f := func(seed int64, kRaw, qRaw uint8) bool {
		n := 120
		d := 6
		idx, data, rng := buildRandom(seed, n, d)
		_ = qRaw
		k := 1 + int(kRaw)%30
		q := make([]float32, d)
		for j := range q {
			q[j] = float32(rng.NormFloat64() * 5)
		}
		res := idx.KANN(q, k)
		if len(res) > k || len(res) > n || len(res) == 0 {
			return false
		}
		seen := make(map[int]bool, len(res))
		prev := -1.0
		for _, nb := range res {
			if nb.ID < 0 || nb.ID >= n || seen[nb.ID] {
				return false
			}
			seen[nb.ID] = true
			if nb.Dist < prev {
				return false
			}
			prev = nb.Dist
			if vec.Dist(q, data.Row(nb.ID)) != nb.Dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(30)); err != nil {
		t.Fatal(err)
	}
}

// Property: with the budget covering the whole dataset, KANN returns k
// results that are per-rank c²-approximate against exact k-NN for any random
// instance. Exact equality does NOT hold universally — the ladder may
// terminate on the c·r test with an unverified closer point — so asserting
// it would make the suite flaky on inputs no code change touched; the c²
// bound is the contract Theorem 1 actually gives.
func TestKANNApproxWhenBudgetCoversAll(t *testing.T) {
	f := func(seed int64) bool {
		n := 80
		d := 5
		idx, data, rng := buildRandom(seed, n, d)
		q := make([]float32, d)
		for j := range q {
			q[j] = float32(rng.NormFloat64() * 5)
		}
		k := 10
		res := idx.KANN(q, k)

		tk := vec.NewTopK(k)
		for i := 0; i < n; i++ {
			tk.Push(i, vec.Dist(q, data.Row(i)))
		}
		want := tk.Results()
		if len(res) != len(want) {
			return false
		}
		c2 := idx.cfg.C * idx.cfg.C
		for i := range res {
			if res[i].Dist > c2*want[i].Dist+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(30)); err != nil {
		t.Fatal(err)
	}
}

// Property: RNear honors Definition 2's structure — whenever it returns a
// point without exhausting its budget, that point is within c·r.
func TestRNearContractProperty(t *testing.T) {
	f := func(seed int64, rRaw uint8) bool {
		n := 100
		d := 5
		idx, _, rng := buildRandom(seed, n, d)
		q := make([]float32, d)
		for j := range q {
			q[j] = float32(rng.NormFloat64() * 5)
		}
		r := 0.5 + float64(rRaw)/16
		s := idx.NewSearcher()
		nb, ok := s.RNear(q, r)
		if !ok {
			return true
		}
		budget := 2*idx.cfg.T*idx.cfg.L + 1
		if s.LastStats().Candidates >= budget {
			return true // budget-exhaustion return may exceed c·r by contract
		}
		return nb.Dist <= idx.cfg.C*r+1e-9
	}
	if err := quick.Check(f, quickCfg(40)); err != nil {
		t.Fatal(err)
	}
}

// Property: inserting points never makes previous points unreachable.
func TestInsertPreservesReachabilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		idx, data, rng := buildRandom(seed, 60, 4)
		for i := 0; i < 40; i++ {
			p := make([]float32, 4)
			for j := range p {
				p[j] = float32(rng.NormFloat64() * 5)
			}
			idx.Insert(p)
		}
		// Every original point remains its own nearest neighbor.
		for i := 0; i < 5; i++ {
			res := idx.KANN(data.Row(i), 1)
			if len(res) != 1 || res[0].Dist != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(20)); err != nil {
		t.Fatal(err)
	}
}

// Property: deleting a random subset removes exactly that subset from
// results, regardless of order.
func TestDeleteProperty(t *testing.T) {
	f := func(seed int64, mask uint16) bool {
		idx, data, _ := buildRandom(seed, 40, 4)
		deleted := make(map[int]bool)
		for b := 0; b < 16; b++ {
			if mask&(1<<uint(b)) != 0 {
				idx.Delete(b)
				deleted[b] = true
			}
		}
		res := idx.KANN(data.Row(0), 40)
		for _, nb := range res {
			if deleted[nb.ID] {
				return false
			}
		}
		return len(res) == 40-len(deleted)
	}
	if err := quick.Check(f, quickCfg(30)); err != nil {
		t.Fatal(err)
	}
}
