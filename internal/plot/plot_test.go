package plot

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestAddValidation(t *testing.T) {
	var c Chart
	if err := c.Add("bad", []float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch must error")
	}
	if err := c.Add("bad", nil, nil); err == nil {
		t.Fatal("empty series must error")
	}
	if err := c.Add("bad", []float64{1}, []float64{math.NaN()}); err == nil {
		t.Fatal("NaN must error")
	}
	if err := c.Add("ok", []float64{1, 2}, []float64{3, 4}); err != nil {
		t.Fatal(err)
	}
}

func TestRenderBasic(t *testing.T) {
	c := Chart{Title: "test chart", XLabel: "n", YLabel: "time"}
	if err := c.Add("DB-LSH", []float64{1, 2, 3, 4}, []float64{1, 2, 4, 8}); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("QALSH", []float64{1, 2, 3, 4}, []float64{2, 4, 8, 16}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"test chart", "DB-LSH", "QALSH", "*", "o", "(y: time)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Plot area has the requested default height of 16 rows plus axes/legend.
	if lines := strings.Count(out, "\n"); lines < 18 {
		t.Fatalf("only %d lines rendered", lines)
	}
}

func TestRenderEmptyChart(t *testing.T) {
	c := Chart{Title: "empty"}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "empty\n" {
		t.Fatalf("empty chart rendered %q", got)
	}
}

func TestRenderLogScale(t *testing.T) {
	c := Chart{Title: "log", LogY: true}
	if err := c.Add("s", []float64{1, 2, 3}, []float64{1, 100, 10000}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "1e+04") && !strings.Contains(out, "10000") {
		t.Fatalf("log chart missing max label:\n%s", out)
	}
	// With log scale the three points are evenly spaced vertically: the
	// middle label is 100.
	if !strings.Contains(out, "100") {
		t.Fatalf("log midpoint missing:\n%s", out)
	}
}

func TestRenderLogRejectsNonPositive(t *testing.T) {
	c := Chart{LogY: true}
	if err := c.Add("s", []float64{1}, []float64{0}); err != nil {
		t.Fatal(err)
	}
	if err := c.Render(&bytes.Buffer{}); err == nil {
		t.Fatal("log chart with y=0 must fail at render")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	c := Chart{}
	if err := c.Add("flat", []float64{1, 1, 1}, []float64{5, 5, 5}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "*") {
		t.Fatal("constant series not plotted")
	}
}

func TestMarkersCycle(t *testing.T) {
	c := Chart{}
	for i := 0; i < 10; i++ {
		if err := c.Add("s", []float64{0, 1}, []float64{0, 1}); err != nil {
			t.Fatal(err)
		}
	}
	if c.series[0].marker != c.series[8].marker {
		t.Fatal("markers should cycle after 8 series")
	}
	if c.series[0].marker == c.series[1].marker {
		t.Fatal("first two series share a marker")
	}
}

func TestInterpolationDots(t *testing.T) {
	c := Chart{Width: 40, Height: 10}
	if err := c.Add("s", []float64{0, 100}, []float64{0, 100}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), ".") {
		t.Fatal("expected interpolation dots between distant points")
	}
}
