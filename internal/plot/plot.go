// Package plot renders simple ASCII line charts for the benchmark CLI, so
// the "figures" of the paper can be eyeballed directly in a terminal:
// multiple named series over a shared x-axis, down-sampled onto a fixed
// character grid.
package plot

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	Name   string
	X, Y   []float64
	marker byte
}

// Chart is a collection of series with axis labels.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot area columns (default 60)
	Height int // plot area rows (default 16)
	LogY   bool

	series []Series
}

// markers are assigned to series in order.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Add appends a series. X and Y must have equal nonzero length.
func (c *Chart) Add(name string, x, y []float64) error {
	if len(x) != len(y) || len(x) == 0 {
		return fmt.Errorf("plot: series %q has %d x and %d y values", name, len(x), len(y))
	}
	for _, v := range append(append([]float64(nil), x...), y...) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("plot: series %q contains a non-finite value", name)
		}
	}
	s := Series{Name: name, X: x, Y: y, marker: markers[len(c.series)%len(markers)]}
	c.series = append(c.series, s)
	return nil
}

// Render writes the chart. Rendering an empty chart writes only the title.
func (c *Chart) Render(w io.Writer) error {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 60
	}
	if height <= 0 {
		height = 16
	}
	if c.Title != "" {
		if _, err := fmt.Fprintln(w, c.Title); err != nil {
			return err
		}
	}
	if len(c.series) == 0 {
		return nil
	}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range c.series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			y := s.Y[i]
			if c.LogY {
				if y <= 0 {
					return fmt.Errorf("plot: log-scale chart %q has y ≤ 0", c.Title)
				}
				y = math.Log10(y)
			}
			minY = math.Min(minY, y)
			maxY = math.Max(maxY, y)
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range c.series {
		c.rasterize(grid, s, minX, maxX, minY, maxY, width, height)
	}

	// Y-axis labels on the first, middle and last rows.
	unlog := func(v float64) float64 {
		if c.LogY {
			return math.Pow(10, v)
		}
		return v
	}
	for r := 0; r < height; r++ {
		label := "          "
		switch r {
		case 0:
			label = fmt.Sprintf("%10.3g", unlog(maxY))
		case height / 2:
			label = fmt.Sprintf("%10.3g", unlog((minY+maxY)/2))
		case height - 1:
			label = fmt.Sprintf("%10.3g", unlog(minY))
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, grid[r]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", 10), strings.Repeat("-", width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s  %-*.3g%*.3g  %s\n",
		strings.Repeat(" ", 10), width/2, minX, width-width/2, maxX, c.XLabel); err != nil {
		return err
	}

	// Legend, in insertion order.
	var legend []string
	for _, s := range c.series {
		legend = append(legend, fmt.Sprintf("%c %s", s.marker, s.Name))
	}
	sort.Strings(legend[1:]) // keep the first (usually the headline series) first
	if _, err := fmt.Fprintf(w, "%s  %s\n", strings.Repeat(" ", 10), strings.Join(legend, "   ")); err != nil {
		return err
	}
	if c.YLabel != "" {
		if _, err := fmt.Fprintf(w, "%s  (y: %s", strings.Repeat(" ", 10), c.YLabel); err != nil {
			return err
		}
		if c.LogY {
			if _, err := io.WriteString(w, ", log scale"); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, ")\n"); err != nil {
			return err
		}
	}
	return nil
}

func (c *Chart) rasterize(grid [][]byte, s Series, minX, maxX, minY, maxY float64, width, height int) {
	order := make([]int, len(s.X))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return s.X[order[a]] < s.X[order[b]] })

	toCol := func(x float64) int {
		col := int((x - minX) / (maxX - minX) * float64(width-1))
		if col < 0 {
			col = 0
		}
		if col >= width {
			col = width - 1
		}
		return col
	}
	toRow := func(y float64) int {
		if c.LogY {
			y = math.Log10(y)
		}
		row := int((maxY - y) / (maxY - minY) * float64(height-1))
		if row < 0 {
			row = 0
		}
		if row >= height {
			row = height - 1
		}
		return row
	}

	prevCol, prevRow := -1, -1
	for _, i := range order {
		col, row := toCol(s.X[i]), toRow(s.Y[i])
		if prevCol >= 0 {
			// Linear interpolation between consecutive points with '.'.
			steps := col - prevCol
			for step := 1; step < steps; step++ {
				ic := prevCol + step
				ir := prevRow + (row-prevRow)*step/steps
				if grid[ir][ic] == ' ' {
					grid[ir][ic] = '.'
				}
			}
		}
		grid[row][col] = s.marker
		prevCol, prevRow = col, row
	}
}
