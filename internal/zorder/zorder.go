// Package zorder implements Morton (Z-order) codes over K-dimensional
// unsigned grid coordinates, plus the LLCP (length of the longest common
// prefix) primitive. It is the substrate for the LSB-Forest baseline
// (Tao et al., SIGMOD 2009): LSB quantizes each point's K bucketed hash
// values to a grid cell, interleaves the bits into a Z-order value, sorts
// the dataset by that value, and answers queries by bidirectional expansion
// around the query's Z-order position guided by LLCP.
package zorder

import (
	"fmt"
	"math/bits"
)

// Code is a Z-order value of arbitrary bit length, stored most-significant
// word first so lexicographic word comparison equals numeric comparison.
type Code []uint64

// Encoder interleaves K coordinates of bitsPerDim bits each.
type Encoder struct {
	k       int
	bits    int
	words   int
	totBits int
}

// NewEncoder returns an encoder for k dimensions at bitsPerDim bits each.
func NewEncoder(k, bitsPerDim int) *Encoder {
	if k <= 0 || bitsPerDim <= 0 || bitsPerDim > 32 {
		panic(fmt.Sprintf("zorder: invalid shape k=%d bits=%d", k, bitsPerDim))
	}
	tot := k * bitsPerDim
	return &Encoder{k: k, bits: bitsPerDim, words: (tot + 63) / 64, totBits: tot}
}

// Bits returns the total number of bits in a code.
func (e *Encoder) Bits() int { return e.totBits }

// Words returns the number of 64-bit words per code.
func (e *Encoder) Words() int { return e.words }

// Encode interleaves coords (length k, each < 2^bitsPerDim) into a Z-order
// code. Bit b of dimension j lands at global position b*k + j counted from
// the most significant interleaved bit, so higher-order bits of all
// dimensions come first — the property LLCP-based search relies on.
func (e *Encoder) Encode(coords []uint32) Code {
	if len(coords) != e.k {
		panic(fmt.Sprintf("zorder: got %d coords, want %d", len(coords), e.k))
	}
	code := make(Code, e.words)
	pos := 0 // global bit position from the MSB of the code
	for b := e.bits - 1; b >= 0; b-- {
		for j := 0; j < e.k; j++ {
			bit := (coords[j] >> uint(b)) & 1
			if bit != 0 {
				word := pos / 64
				off := 63 - pos%64
				// The first totBits of the words are used; trailing bits stay 0.
				code[word] |= 1 << uint(off)
			}
			pos++
		}
	}
	return code
}

// Compare returns -1, 0, or 1 as a is less than, equal to, or greater than b.
func Compare(a, b Code) int {
	for i := range a {
		if a[i] < b[i] {
			return -1
		}
		if a[i] > b[i] {
			return 1
		}
	}
	return 0
}

// LLCP returns the length in bits of the longest common prefix of a and b,
// capped at totBits.
func (e *Encoder) LLCP(a, b Code) int {
	common := 0
	for i := range a {
		x := a[i] ^ b[i]
		if x == 0 {
			common += 64
			continue
		}
		common += bits.LeadingZeros64(x)
		break
	}
	if common > e.totBits {
		common = e.totBits
	}
	return common
}

// LevelOfLLCP converts an LLCP in bits to the number of complete "levels"
// shared: with k dims interleaved, a prefix of u bits pins ⌊u/k⌋ full rounds
// of per-dimension bits, which is the bucket-granularity LSB reasons about.
func (e *Encoder) LevelOfLLCP(llcpBits int) int { return llcpBits / e.k }
