package zorder

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEncodeSimple2D(t *testing.T) {
	e := NewEncoder(2, 2)
	// coords (x=0b10, y=0b01): interleave MSB-first: x1 y1 x0 y0 = 1 0 0 1.
	// Stored left-aligned in a 64-bit word.
	code := e.Encode([]uint32{0b10, 0b01})
	want := uint64(0b1001) << 60
	if code[0] != want {
		t.Fatalf("code = %064b, want %064b", code[0], want)
	}
}

func TestCompare(t *testing.T) {
	e := NewEncoder(3, 4)
	a := e.Encode([]uint32{1, 2, 3})
	b := e.Encode([]uint32{1, 2, 4})
	if Compare(a, a) != 0 {
		t.Fatal("Compare(a,a) != 0")
	}
	if Compare(a, b) == 0 {
		t.Fatal("distinct coords compare equal")
	}
	if Compare(a, b)+Compare(b, a) != 0 {
		t.Fatal("Compare not antisymmetric")
	}
}

func TestLLCPSelf(t *testing.T) {
	e := NewEncoder(4, 8)
	c := e.Encode([]uint32{10, 20, 30, 40})
	if got := e.LLCP(c, c); got != e.Bits() {
		t.Fatalf("LLCP(c,c) = %d, want %d", got, e.Bits())
	}
}

func TestLLCPNeighbors(t *testing.T) {
	e := NewEncoder(2, 8)
	// Coordinates that differ only in the lowest bit of one dim share all
	// but the last interleaving round.
	a := e.Encode([]uint32{0b10101010, 0b01010101})
	b := e.Encode([]uint32{0b10101010, 0b01010100})
	llcp := e.LLCP(a, b)
	if llcp != e.Bits()-1 {
		t.Fatalf("LLCP = %d, want %d", llcp, e.Bits()-1)
	}
	if lvl := e.LevelOfLLCP(llcp); lvl != (e.Bits()-1)/2 {
		t.Fatalf("level = %d", lvl)
	}
}

func TestLLCPDisjoint(t *testing.T) {
	e := NewEncoder(2, 4)
	a := e.Encode([]uint32{0b1000, 0})
	b := e.Encode([]uint32{0b0000, 0})
	if got := e.LLCP(a, b); got != 0 {
		t.Fatalf("LLCP = %d, want 0", got)
	}
}

func TestMultiWordCodes(t *testing.T) {
	// 12 dims × 10 bits = 120 bits = 2 words.
	e := NewEncoder(12, 10)
	if e.Words() != 2 {
		t.Fatalf("Words = %d", e.Words())
	}
	rng := rand.New(rand.NewSource(1))
	a := make([]uint32, 12)
	b := make([]uint32, 12)
	for i := range a {
		a[i] = uint32(rng.Intn(1024))
		b[i] = a[i]
	}
	ca := e.Encode(a)
	cb := e.Encode(b)
	if Compare(ca, cb) != 0 {
		t.Fatal("equal coords compare unequal")
	}
	// Change the lowest bit of one dim: LLCP must stay high.
	b[11] ^= 1
	cb = e.Encode(b)
	if got := e.LLCP(ca, cb); got < e.Bits()-12 {
		t.Fatalf("LLCP = %d too small", got)
	}
}

// Property: Z-order preserves equality and is injective on the grid.
func TestEncodeInjective(t *testing.T) {
	e := NewEncoder(3, 6)
	f := func(x1, y1, z1, x2, y2, z2 uint8) bool {
		c1 := []uint32{uint32(x1) & 63, uint32(y1) & 63, uint32(z1) & 63}
		c2 := []uint32{uint32(x2) & 63, uint32(y2) & 63, uint32(z2) & 63}
		same := c1[0] == c2[0] && c1[1] == c2[1] && c1[2] == c2[2]
		return (Compare(e.Encode(c1), e.Encode(c2)) == 0) == same
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: sorting by Z-order groups cells sharing high-order bits — the
// LLCP of adjacent sorted codes is no smaller than the LLCP of codes far
// apart in the sorted order... verified statistically via monotone pairs.
func TestSortedOrderLocality(t *testing.T) {
	e := NewEncoder(2, 8)
	rng := rand.New(rand.NewSource(3))
	codes := make([]Code, 200)
	for i := range codes {
		codes[i] = e.Encode([]uint32{uint32(rng.Intn(256)), uint32(rng.Intn(256))})
	}
	sort.Slice(codes, func(i, j int) bool { return Compare(codes[i], codes[j]) < 0 })
	// Adjacent LLCP in sorted order must be ≥ LLCP to any further element:
	// llcp(codes[i], codes[i+1]) ≥ llcp(codes[i], codes[j]) for j > i+1.
	for i := 0; i+2 < len(codes); i++ {
		adj := e.LLCP(codes[i], codes[i+1])
		for j := i + 2; j < len(codes); j += 37 {
			if far := e.LLCP(codes[i], codes[j]); far > adj {
				t.Fatalf("LLCP not monotone in sorted order: adj=%d far=%d", adj, far)
			}
		}
	}
}

func TestLLCPBitExact(t *testing.T) {
	// Cross-check LLCP against a naive bit-by-bit scan.
	e := NewEncoder(5, 9)
	rng := rand.New(rand.NewSource(17))
	naive := func(a, b Code) int {
		n := 0
		for i := 0; i < e.Bits(); i++ {
			word, off := i/64, uint(63-i%64)
			if (a[word]>>off)&1 != (b[word]>>off)&1 {
				break
			}
			n++
		}
		return n
	}
	for trial := 0; trial < 100; trial++ {
		ca := make([]uint32, 5)
		cb := make([]uint32, 5)
		for i := range ca {
			ca[i] = uint32(rng.Intn(512))
			cb[i] = uint32(rng.Intn(512))
		}
		a, b := e.Encode(ca), e.Encode(cb)
		if got, want := e.LLCP(a, b), naive(a, b); got != want {
			t.Fatalf("LLCP = %d, want %d", got, want)
		}
	}
}

func TestEncoderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEncoder(0, 4)
}

func TestEncodeWrongArity(t *testing.T) {
	e := NewEncoder(2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Encode([]uint32{1})
}

func BenchmarkEncodeK12B10(b *testing.B) {
	e := NewEncoder(12, 10)
	coords := make([]uint32, 12)
	for i := range coords {
		coords[i] = uint32(i * 37)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Encode(coords)
	}
}
