// Package mathx implements the probabilistic machinery behind DB-LSH:
// the standard normal distribution, the collision probabilities of the
// static (Eq. 2) and dynamic (Eq. 4) p-stable LSH families, the exponent
// ρ* = ln(1/p1)/ln(1/p2), and the bound α = ξ(γ) from Lemma 3 of the paper.
package mathx

import "math"

// NormalPDF is the probability density function f(x) of N(0,1).
func NormalPDF(x float64) float64 {
	return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
}

// NormalCDF is the cumulative distribution function Φ(x) of N(0,1).
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalTail returns the upper tail ∫_x^∞ f(t) dt = 1 − Φ(x).
func NormalTail(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// CollisionProbDynamic computes p(τ;w) for the dynamic LSH family
// h(o) = a·o (Eq. 3), where two points collide when |h(o1)−h(o2)| ≤ w/2:
//
//	p(τ;w) = ∫_{−w/2τ}^{w/2τ} f(t) dt   (Eq. 4)
//
// τ is the original-space distance and w the bucket width. For τ=0 the
// probability is 1.
func CollisionProbDynamic(tau, w float64) float64 {
	if tau <= 0 {
		return 1
	}
	if w <= 0 {
		return 0
	}
	s := w / (2 * tau)
	return math.Erf(s / math.Sqrt2)
}

// CollisionProbStatic computes p(τ;w) for the classic E2LSH family
// h(o) = ⌊(a·o+b)/w⌋ (Eq. 1):
//
//	p(τ;w) = 2 ∫_0^w (1/τ) f(t/τ) (1 − t/w) dt   (Eq. 2)
//
// The closed form (Datar et al. 2004), with s = w/τ, is
//
//	p = 1 − 2Φ(−s) − (2/(√(2π)·s))·(1 − e^{−s²/2}).
func CollisionProbStatic(tau, w float64) float64 {
	if tau <= 0 {
		return 1
	}
	if w <= 0 {
		return 0
	}
	s := w / tau
	return 1 - 2*NormalCDF(-s) - 2/(math.Sqrt(2*math.Pi)*s)*(1-math.Exp(-s*s/2))
}

// CollisionProbStaticNumeric evaluates Eq. 2 by adaptive Simpson quadrature.
// It exists to cross-check the closed form in tests and for families where no
// closed form is available.
func CollisionProbStaticNumeric(tau, w float64) float64 {
	if tau <= 0 {
		return 1
	}
	if w <= 0 {
		return 0
	}
	f := func(t float64) float64 {
		return 2 / tau * NormalPDF(t/tau) * (1 - t/w)
	}
	return SimpsonAdaptive(f, 0, w, 1e-10, 24)
}

// SimpsonAdaptive integrates f over [a,b] with tolerance tol using adaptive
// Simpson's rule, recursing at most maxDepth levels.
func SimpsonAdaptive(f func(float64) float64, a, b, tol float64, maxDepth int) float64 {
	c := (a + b) / 2
	fa, fb, fc := f(a), f(b), f(c)
	whole := (b - a) / 6 * (fa + 4*fc + fb)
	return simpsonAux(f, a, b, fa, fb, fc, whole, tol, maxDepth)
}

func simpsonAux(f func(float64) float64, a, b, fa, fb, fc, whole, tol float64, depth int) float64 {
	c := (a + b) / 2
	l, r := (a+c)/2, (c+b)/2
	fl, fr := f(l), f(r)
	left := (c - a) / 6 * (fa + 4*fl + fc)
	right := (b - c) / 6 * (fc + 4*fr + fb)
	if depth <= 0 || math.Abs(left+right-whole) <= 15*tol {
		return left + right + (left+right-whole)/15
	}
	return simpsonAux(f, a, c, fa, fc, fl, left, tol/2, depth-1) +
		simpsonAux(f, c, b, fc, fb, fr, right, tol/2, depth-1)
}

// Rho computes ρ* = ln(1/p1) / ln(1/p2) for the dynamic family with initial
// bucket width w0 and approximation ratio c: p1 = p(1;w0), p2 = p(c;w0).
func Rho(c, w0 float64) float64 {
	p1 := CollisionProbDynamic(1, w0)
	p2 := CollisionProbDynamic(c, w0)
	return math.Log(1/p1) / math.Log(1/p2)
}

// RhoStatic computes the classic exponent ρ = ln(1/p1)/ln(1/p2) for the
// static E2LSH family at width w0: p1 = p(1;w0), p2 = p(c;w0).
func RhoStatic(c, w0 float64) float64 {
	p1 := CollisionProbStatic(1, w0)
	p2 := CollisionProbStatic(c, w0)
	return math.Log(1/p1) / math.Log(1/p2)
}

// Xi computes ξ(v) = v·f(v) / ∫_v^∞ f(x) dx, the function whose value at γ
// gives the exponent α in Lemma 3. ξ is monotonically increasing for v > 0.
func Xi(v float64) float64 {
	tail := NormalTail(v)
	if tail == 0 {
		return math.Inf(1)
	}
	return v * NormalPDF(v) / tail
}

// Alpha returns the bound exponent α = ξ(γ) such that ρ* ≤ 1/c^α when the
// initial bucket width is w0 = 2γc² (Lemma 3). At γ = 2 (w0 = 4c²) this is
// 4.746, the headline constant of the paper.
func Alpha(gamma float64) float64 { return Xi(gamma) }

// GammaForWidth inverts w0 = 2γc², returning γ for a given w0 and c.
func GammaForWidth(w0, c float64) float64 { return w0 / (2 * c * c) }

// Params bundles the derived (K,L) configuration for a DB-LSH index.
type Params struct {
	K    int     // hash functions per projected space
	L    int     // number of projected spaces / indexes
	P1   float64 // collision probability at distance 1 with width w0
	P2   float64 // collision probability at distance c with width w0
	Rho  float64 // ρ* = ln(1/p1)/ln(1/p2)
	T    int     // candidate multiplier: a query verifies at most 2tL+1 points
	W0   float64 // initial bucket width
	C    float64 // approximation ratio
	N    int     // dataset cardinality the parameters were derived for
	Auto bool    // true when K and L were derived rather than forced
}

// DeriveParams computes K = ⌈log_{1/p2}(n/t)⌉ and L = ⌈(n/t)^ρ*⌉ per
// Observation 1 / Lemma 1 of the paper, for a dataset of n points,
// approximation ratio c, initial width w0 and candidate constant t.
// K and L are clamped to at least 1.
func DeriveParams(n int, c, w0 float64, t int) Params {
	if n < 1 {
		n = 1
	}
	if t < 1 {
		t = 1
	}
	p1 := CollisionProbDynamic(1, w0)
	p2 := CollisionProbDynamic(c, w0)
	rho := math.Log(1/p1) / math.Log(1/p2)
	ratio := float64(n) / float64(t)
	if ratio < 1 {
		ratio = 1
	}
	k := int(math.Ceil(math.Log(ratio) / math.Log(1/p2)))
	l := int(math.Ceil(math.Pow(ratio, rho)))
	if k < 1 {
		k = 1
	}
	if l < 1 {
		l = 1
	}
	return Params{K: k, L: l, P1: p1, P2: p2, Rho: rho, T: t, W0: w0, C: c, N: n, Auto: true}
}
