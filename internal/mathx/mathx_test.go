package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNormalPDF(t *testing.T) {
	if !approx(NormalPDF(0), 1/math.Sqrt(2*math.Pi), 1e-15) {
		t.Fatalf("pdf(0) = %v", NormalPDF(0))
	}
	if NormalPDF(1) >= NormalPDF(0) {
		t.Fatal("pdf should decrease away from 0")
	}
	if !approx(NormalPDF(2), 0.05399096651, 1e-9) {
		t.Fatalf("pdf(2) = %v", NormalPDF(2))
	}
}

func TestNormalCDF(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447461},
		{-1, 0.1586552539},
		{2, 0.9772498681},
		{-5, 2.866515719e-07},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); !approx(got, c.want, 1e-9) {
			t.Errorf("Φ(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalTailComplementsCDF(t *testing.T) {
	f := func(x float64) bool {
		x = math.Mod(x, 10)
		return approx(NormalTail(x)+NormalCDF(x), 1, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCollisionProbDynamicEdges(t *testing.T) {
	if got := CollisionProbDynamic(0, 1); got != 1 {
		t.Fatalf("p(0;1) = %v, want 1", got)
	}
	if got := CollisionProbDynamic(1, 0); got != 0 {
		t.Fatalf("p(1;0) = %v, want 0", got)
	}
	// p(τ;w) = 2Φ(w/2τ) − 1.
	want := 2*NormalCDF(1) - 1
	if got := CollisionProbDynamic(1, 2); !approx(got, want, 1e-12) {
		t.Fatalf("p(1;2) = %v, want %v", got, want)
	}
}

// Observation 1: the family is scale-invariant — p(r; w0·r) = p(1; w0).
func TestObservation1ScaleInvariance(t *testing.T) {
	f := func(rRaw, wRaw uint8) bool {
		r := 0.1 + float64(rRaw)/16  // r ∈ [0.1, 16)
		w0 := 0.5 + float64(wRaw)/16 // w0 ∈ [0.5, 16.5)
		return approx(CollisionProbDynamic(r, w0*r), CollisionProbDynamic(1, w0), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCollisionProbDynamicMonotoneInTau(t *testing.T) {
	prev := 1.0
	for tau := 0.1; tau < 20; tau += 0.1 {
		p := CollisionProbDynamic(tau, 4)
		if p > prev+1e-15 {
			t.Fatalf("p(τ;4) increased at τ=%v", tau)
		}
		prev = p
	}
}

func TestCollisionProbStaticClosedFormMatchesNumeric(t *testing.T) {
	for _, tau := range []float64{0.25, 0.5, 1, 1.5, 2, 4, 8} {
		for _, w := range []float64{0.5, 1, 4, 9, 16} {
			cf := CollisionProbStatic(tau, w)
			num := CollisionProbStaticNumeric(tau, w)
			if !approx(cf, num, 1e-7) {
				t.Errorf("τ=%v w=%v: closed=%v numeric=%v", tau, w, cf, num)
			}
		}
	}
}

func TestCollisionProbStaticRange(t *testing.T) {
	f := func(tauRaw, wRaw uint8) bool {
		tau := 0.1 + float64(tauRaw)/8
		w := 0.1 + float64(wRaw)/8
		p := CollisionProbStatic(tau, w)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// The paper's headline constant: α = ξ(2) = 4.746 at γ=2 (w0 = 4c²).
func TestAlphaHeadlineConstant(t *testing.T) {
	a := Alpha(2)
	if !approx(a, 4.746, 5e-4) {
		t.Fatalf("α(γ=2) = %v, want ≈4.746", a)
	}
}

// ξ(γ) > 1 iff γ > 0.7518 (Section V-B).
func TestXiCrossoverAtGamma0751(t *testing.T) {
	if Xi(0.7518) > 1.001 || Xi(0.7518) < 0.999 {
		t.Fatalf("ξ(0.7518) = %v, want ≈1", Xi(0.7518))
	}
	if Xi(0.70) >= 1 {
		t.Fatalf("ξ(0.70) = %v, want < 1", Xi(0.70))
	}
	if Xi(0.80) <= 1 {
		t.Fatalf("ξ(0.80) = %v, want > 1", Xi(0.80))
	}
}

func TestXiMonotone(t *testing.T) {
	prev := 0.0
	for v := 0.05; v < 6; v += 0.05 {
		x := Xi(v)
		if x <= prev {
			t.Fatalf("ξ not increasing at v=%v: %v ≤ %v", v, x, prev)
		}
		prev = x
	}
}

// Lemma 3: ρ* ≤ 1/c^α with α = ξ(γ) when w0 = 2γc².
func TestRhoBoundedByAlpha(t *testing.T) {
	for _, gamma := range []float64{0.8, 1, 1.5, 2, 3} {
		alpha := Alpha(gamma)
		for c := 1.1; c <= 4.0; c += 0.1 {
			w0 := 2 * gamma * c * c
			rho := Rho(c, w0)
			bound := math.Pow(c, -alpha)
			if rho > bound+1e-9 {
				t.Errorf("γ=%v c=%v: ρ*=%v exceeds 1/c^α=%v", gamma, c, rho, bound)
			}
		}
	}
}

// ρ* is smaller than the classic static ρ at the paper's operating point
// w = 4c² (Fig. 4b).
func TestRhoStarBeatsStaticRho(t *testing.T) {
	for c := 1.2; c <= 4.0; c += 0.2 {
		w0 := 4 * c * c
		rhoStar := Rho(c, w0)
		rhoStatic := RhoStatic(c, w0)
		if rhoStar >= rhoStatic {
			t.Errorf("c=%v: ρ*=%v not smaller than static ρ=%v", c, rhoStar, rhoStatic)
		}
		if rhoStar >= 1/c {
			t.Errorf("c=%v: ρ*=%v not below 1/c=%v", c, rhoStar, 1/c)
		}
	}
}

func TestGammaForWidth(t *testing.T) {
	if got := GammaForWidth(4*1.5*1.5, 1.5); !approx(got, 2, 1e-12) {
		t.Fatalf("γ = %v, want 2", got)
	}
}

func TestDeriveParams(t *testing.T) {
	p := DeriveParams(1_000_000, 1.5, 4*1.5*1.5, 100)
	if p.K < 1 || p.L < 1 {
		t.Fatalf("invalid params %+v", p)
	}
	if p.P1 <= p.P2 {
		t.Fatalf("p1=%v must exceed p2=%v", p.P1, p.P2)
	}
	if p.Rho <= 0 || p.Rho >= 1 {
		t.Fatalf("ρ*=%v out of (0,1)", p.Rho)
	}
	// Sanity: (1/p2)^K ≥ n/t so expected far-point collisions ≤ t per space.
	if math.Pow(1/p.P2, float64(p.K)) < float64(p.N)/float64(p.T)*0.999 {
		t.Fatalf("K=%d too small for n/t", p.K)
	}
}

func TestDeriveParamsSmallN(t *testing.T) {
	p := DeriveParams(1, 2, 16, 100)
	if p.K != 1 || p.L != 1 {
		t.Fatalf("expected clamped params, got K=%d L=%d", p.K, p.L)
	}
	p = DeriveParams(0, 2, 16, 0)
	if p.K < 1 || p.L < 1 || p.T < 1 {
		t.Fatalf("invalid clamps %+v", p)
	}
}

func TestDeriveParamsMonotoneInN(t *testing.T) {
	prevK, prevL := 0, 0
	for _, n := range []int{1000, 10_000, 100_000, 1_000_000, 10_000_000} {
		p := DeriveParams(n, 1.5, 9, 50)
		if p.K < prevK || p.L < prevL {
			t.Fatalf("K,L should not decrease with n: n=%d K=%d L=%d", n, p.K, p.L)
		}
		prevK, prevL = p.K, p.L
	}
}

func TestSimpsonAdaptive(t *testing.T) {
	// ∫_0^π sin = 2
	got := SimpsonAdaptive(math.Sin, 0, math.Pi, 1e-12, 30)
	if !approx(got, 2, 1e-9) {
		t.Fatalf("∫sin = %v, want 2", got)
	}
	// ∫_0^1 x² = 1/3
	got = SimpsonAdaptive(func(x float64) float64 { return x * x }, 0, 1, 1e-12, 30)
	if !approx(got, 1.0/3, 1e-12) {
		t.Fatalf("∫x² = %v", got)
	}
}

func BenchmarkCollisionProbDynamic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = CollisionProbDynamic(1.5, 9)
	}
}

func BenchmarkDeriveParams(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = DeriveParams(1_000_000, 1.5, 9, 100)
	}
}
