package dataset

import (
	"testing"

	"dblsh/internal/vec"
)

func tinyProfile() Profile {
	return Profile{Name: "tiny", N: 500, Dim: 16, Queries: 10, Clusters: 5, Std: 1, Spread: 10, Seed: 42}
}

func TestGenerateShapes(t *testing.T) {
	ds := Generate(tinyProfile())
	if ds.Data.Rows() != 500 || ds.Data.Dim() != 16 {
		t.Fatalf("data shape %d×%d", ds.Data.Rows(), ds.Data.Dim())
	}
	if ds.Queries.Rows() != 10 || ds.Queries.Dim() != 16 {
		t.Fatalf("query shape %d×%d", ds.Queries.Rows(), ds.Queries.Dim())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(tinyProfile())
	b := Generate(tinyProfile())
	for i := 0; i < a.Data.Rows(); i++ {
		ra, rb := a.Data.Row(i), b.Data.Row(i)
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("row %d differs between identical seeds", i)
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	p1 := tinyProfile()
	p2 := tinyProfile()
	p2.Seed = 43
	a, b := Generate(p1), Generate(p2)
	same := true
	for j := 0; j < a.Data.Dim(); j++ {
		if a.Data.Row(0)[j] != b.Data.Row(0)[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical first rows")
	}
}

// Cluster structure must produce the LSH-relevant property: nearest-neighbor
// distance ≪ average pairwise distance.
func TestClusterContrast(t *testing.T) {
	ds := Generate(Profile{Name: "c", N: 2000, Dim: 32, Queries: 20, Clusters: 10, Std: 1, Spread: 10, Seed: 7})
	truth := GroundTruth(ds.Data, ds.Queries, 1)
	var nnSum float64
	for _, tr := range truth {
		nnSum += tr[0].Dist
	}
	nnAvg := nnSum / float64(len(truth))

	var pairSum float64
	count := 0
	for i := 0; i < 100; i++ {
		for j := i + 1; j < 100; j++ {
			pairSum += vec.Dist(ds.Data.Row(i), ds.Data.Row(j))
			count++
		}
	}
	pairAvg := pairSum / float64(count)
	if nnAvg*2 > pairAvg {
		t.Fatalf("contrast too low: nnAvg=%v pairAvg=%v", nnAvg, pairAvg)
	}
}

func TestGroundTruthSortedAndExact(t *testing.T) {
	ds := Generate(tinyProfile())
	truth := GroundTruth(ds.Data, ds.Queries, 10)
	if len(truth) != 10 {
		t.Fatalf("truth for %d queries", len(truth))
	}
	for qi, tr := range truth {
		if len(tr) != 10 {
			t.Fatalf("query %d: %d neighbors", qi, len(tr))
		}
		q := ds.Queries.Row(qi)
		prev := -1.0
		for _, nb := range tr {
			if nb.Dist < prev {
				t.Fatalf("query %d: truth not sorted", qi)
			}
			prev = nb.Dist
			if got := vec.Dist(q, ds.Data.Row(nb.ID)); got != nb.Dist {
				t.Fatalf("query %d: stored dist %v, recomputed %v", qi, nb.Dist, got)
			}
		}
		// No data point may be closer than the k-th reported.
		kth := tr[len(tr)-1].Dist
		closer := 0
		for i := 0; i < ds.Data.Rows(); i++ {
			if vec.Dist(q, ds.Data.Row(i)) < kth {
				closer++
			}
		}
		if closer > 10 {
			t.Fatalf("query %d: %d points closer than reported k-th", qi, closer)
		}
	}
}

func TestScaled(t *testing.T) {
	p := tinyProfile().Scaled(0.5)
	if p.N != 250 {
		t.Fatalf("scaled N = %d", p.N)
	}
	ds := Generate(p)
	if ds.Data.Rows() != 250 {
		t.Fatalf("rows = %d", ds.Data.Rows())
	}
}

func TestProfileTables(t *testing.T) {
	if len(All()) != 10 {
		t.Fatalf("All() has %d profiles, want 10 (Table III)", len(All()))
	}
	seen := map[string]bool{}
	for _, p := range All() {
		if p.N <= 0 || p.Dim <= 0 {
			t.Fatalf("invalid profile %+v", p)
		}
		if seen[p.Name] {
			t.Fatalf("duplicate profile %s", p.Name)
		}
		seen[p.Name] = true
	}
	for _, p := range Small() {
		if p.N > 20_000 {
			t.Fatalf("Small profile too big: %+v", p)
		}
	}
}

func BenchmarkGenerate(b *testing.B) {
	p := Profile{Name: "bench", N: 50_000, Dim: 128, Queries: 10, Clusters: 50, Std: 1, Spread: 10, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Generate(p)
	}
}
