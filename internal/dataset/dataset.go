// Package dataset generates the synthetic workloads used to reproduce the
// paper's experiments and computes exact ground truth for them.
//
// The paper evaluates on ten real corpora (Table III: Audio … SIFT100M).
// Those corpora are not available offline, so this package simulates them:
// each Profile mirrors a corpus's cardinality/dimensionality (scaled down by
// default) and generates a seeded Gaussian-mixture point set. Mixture data
// preserves the property every LSH method exploits — query-to-neighbor
// distances are much smaller than query-to-random-point distances — so the
// relative behaviour of the algorithms (who wins, where curves cross) is
// preserved even though absolute numbers differ from the paper's testbed.
// See DESIGN.md ("Substitutions").
package dataset

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"dblsh/internal/vec"
)

// Profile describes a synthetic corpus.
//
// Generation is a two-level Gaussian mixture: Clusters top-level components
// whose centres have standard deviation Spread, each containing SubClusters
// sub-components offset by Std, with points scattered SubStd around their
// sub-centre. The sub-level gives queries genuinely close neighbors (their
// sub-cluster mates), reproducing the multi-scale local structure of real
// feature corpora (SIFT, GIST, …) that ANN recall measurements depend on.
// SubClusters = 0 disables the second level (flat mixture).
type Profile struct {
	Name        string
	N           int     // dataset cardinality
	Dim         int     // dimensionality
	Queries     int     // number of query points (removed from the data)
	Clusters    int     // top-level mixture components
	Std         float64 // std of sub-centres around their cluster centre
	Spread      float64 // std of cluster centres
	SubClusters int     // sub-components per cluster (0 = flat mixture)
	SubStd      float64 // std of points around their sub-centre (default Std/3)
	Seed        int64
}

// The default profiles mirror Table III of the paper with cardinalities
// scaled to laptop-class budgets; dimensionality is kept faithful except for
// Trevi (4096 → 1024) to keep ground-truth computation tractable.
var (
	Audio   = Profile{Name: "Audio", N: 20_000, Dim: 192, Queries: 50, Clusters: 40, Std: 1, Spread: 12, SubClusters: 25, Seed: 1}
	MNIST   = Profile{Name: "MNIST", N: 20_000, Dim: 784, Queries: 50, Clusters: 10, Std: 1, Spread: 10, SubClusters: 80, Seed: 2}
	Cifar   = Profile{Name: "Cifar", N: 20_000, Dim: 1024, Queries: 50, Clusters: 100, Std: 1, Spread: 8, SubClusters: 10, Seed: 3}
	Trevi   = Profile{Name: "Trevi", N: 25_000, Dim: 1024, Queries: 50, Clusters: 200, Std: 1, Spread: 10, SubClusters: 6, Seed: 4}
	NUS     = Profile{Name: "NUS", N: 40_000, Dim: 500, Queries: 50, Clusters: 8, Std: 2.5, Spread: 3, SubClusters: 40, SubStd: 1.8, Seed: 5} // intrinsically hard: overlapping structure
	Deep1M  = Profile{Name: "Deep1M", N: 100_000, Dim: 256, Queries: 50, Clusters: 150, Std: 1, Spread: 10, SubClusters: 30, Seed: 6}
	Gist    = Profile{Name: "Gist", N: 100_000, Dim: 960, Queries: 50, Clusters: 120, Std: 1, Spread: 9, SubClusters: 35, Seed: 7}
	SIFT10M = Profile{Name: "SIFT10M", N: 200_000, Dim: 128, Queries: 50, Clusters: 250, Std: 1, Spread: 11, SubClusters: 35, Seed: 8}
	Tiny80M = Profile{Name: "TinyImages80M", N: 150_000, Dim: 384, Queries: 50, Clusters: 180, Std: 1, Spread: 10, SubClusters: 35, Seed: 9}
	SIFT1HM = Profile{Name: "SIFT100M", N: 250_000, Dim: 128, Queries: 50, Clusters: 300, Std: 1, Spread: 11, SubClusters: 35, Seed: 10}
)

// All lists the default profiles in the order of Table III/IV.
func All() []Profile {
	return []Profile{Audio, MNIST, Cifar, Trevi, NUS, Deep1M, Gist, SIFT10M, Tiny80M, SIFT1HM}
}

// Small lists reduced-size profiles for fast tests and CI-scale benches.
func Small() []Profile {
	out := []Profile{Audio, MNIST, SIFT10M}
	for i := range out {
		out[i].N /= 10
		out[i].Name += "-small"
	}
	return out
}

// Scaled returns a copy of p with cardinality scaled by factor (queries and
// everything else unchanged). Used by the "varying n" experiments (Fig. 5-7).
func (p Profile) Scaled(factor float64) Profile {
	q := p
	q.N = int(float64(p.N) * factor)
	q.Name = fmt.Sprintf("%s×%.1f", p.Name, factor)
	return q
}

// Dataset is a generated corpus with its query workload.
type Dataset struct {
	Profile Profile
	Data    *vec.Matrix // N×Dim points
	Queries *vec.Matrix // Queries×Dim points, disjoint from Data
}

// Generate builds the corpus for a profile. Generation is deterministic in
// the profile's seed and parallel across points.
func Generate(p Profile) *Dataset {
	if p.N <= 0 || p.Dim <= 0 {
		panic(fmt.Sprintf("dataset: invalid profile %+v", p))
	}
	if p.Clusters <= 0 {
		p.Clusters = 1
	}
	if p.Queries <= 0 {
		p.Queries = 1
	}
	if p.Std <= 0 {
		p.Std = 1
	}

	if p.SubStd <= 0 {
		p.SubStd = p.Std / 3
	}

	// Sub-cluster centres from the profile seed: subCenters[c*SubClusters+s]
	// = cluster centre c plus a Std-scale offset. With SubClusters == 0 each
	// cluster has one "sub-centre" equal to its centre and points scatter
	// with Std (flat mixture).
	rng := rand.New(rand.NewSource(p.Seed))
	subPer := p.SubClusters
	pointStd := p.SubStd
	if subPer <= 0 {
		subPer = 1
		pointStd = p.Std
	}
	subCenters := vec.NewMatrix(p.Clusters*subPer, p.Dim)
	for c := 0; c < p.Clusters; c++ {
		center := make([]float64, p.Dim)
		for j := range center {
			center[j] = rng.NormFloat64() * p.Spread
		}
		for s := 0; s < subPer; s++ {
			row := subCenters.Row(c*subPer + s)
			for j := range row {
				off := 0.0
				if p.SubClusters > 0 {
					off = rng.NormFloat64() * p.Std
				}
				row[j] = float32(center[j] + off)
			}
		}
	}

	total := p.N + p.Queries
	data := vec.NewMatrix(total, p.Dim)

	// Points in parallel; each shard has an independent derived seed so the
	// result does not depend on scheduling.
	workers := runtime.GOMAXPROCS(0)
	if workers > total {
		workers = total
	}
	var wg sync.WaitGroup
	chunk := (total + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > total {
			hi = total
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi, shard int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(p.Seed*1_000_003 + int64(shard)))
			for i := lo; i < hi; i++ {
				c := subCenters.Row(r.Intn(subCenters.Rows()))
				row := data.Row(i)
				for j := range row {
					row[j] = c[j] + float32(r.NormFloat64()*pointStd)
				}
			}
		}(lo, hi, w)
	}
	wg.Wait()

	return &Dataset{
		Profile: p,
		Data:    data.Slice(0, p.N),
		Queries: data.Slice(p.N, total),
	}
}

// GroundTruth computes the exact k nearest neighbors in data for every query,
// by parallel brute force. Result[i] is sorted ascending by distance.
func GroundTruth(data, queries *vec.Matrix, k int) [][]vec.Neighbor {
	nq := queries.Rows()
	out := make([][]vec.Neighbor, nq)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for qi := 0; qi < nq; qi++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(qi int) {
			defer wg.Done()
			defer func() { <-sem }()
			q := queries.Row(qi)
			tk := vec.NewTopK(k)
			for i := 0; i < data.Rows(); i++ {
				tk.Push(i, vec.Dist(q, data.Row(i)))
			}
			out[qi] = tk.Results()
		}(qi)
	}
	wg.Wait()
	return out
}
