package dblsh_test

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"dblsh"
)

// normalizedData generates n unit-normalized clustered vectors plus nq unit
// queries, the embedding-search workload shape.
func normalizedData(n, dim, nq int, seed int64) ([][]float32, [][]float32) {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float32, 16)
	for i := range centers {
		centers[i] = make([]float32, dim)
		for j := range centers[i] {
			centers[i][j] = float32(rng.NormFloat64() * 4)
		}
	}
	mk := func(count int) [][]float32 {
		out := make([][]float32, count)
		for i := range out {
			c := centers[rng.Intn(len(centers))]
			v := make([]float32, dim)
			var norm float64
			for j := range v {
				v[j] = c[j] + float32(rng.NormFloat64())
				norm += float64(v[j]) * float64(v[j])
			}
			norm = math.Sqrt(norm)
			for j := range v {
				v[j] = float32(float64(v[j]) / norm)
			}
			out[i] = v
		}
		return out
	}
	return mk(n), mk(nq)
}

// TestCosineRecallParity is the acceptance check for the cosine reduction:
// over already-normalized vectors, cosine search and Euclidean search rank
// identically (for unit vectors ‖x−q‖² = 2(1−cos θ)), so the same queries
// must return the same neighbor sets, and the reported cosine distances
// must match 1−cos θ computed directly.
func TestCosineRecallParity(t *testing.T) {
	data, queries := normalizedData(3000, 24, 40, 71)
	euc, err := dblsh.New(data, dblsh.Options{K: 8, L: 4, T: 50, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cos, err := dblsh.New(data, dblsh.Options{K: 8, L: 4, T: 50, Seed: 7, Metric: dblsh.Cosine})
	if err != nil {
		t.Fatal(err)
	}
	if cos.Metric() != dblsh.Cosine {
		t.Fatalf("Metric() = %v, want Cosine", cos.Metric())
	}
	const k = 10
	for qi, q := range queries {
		he := euc.Search(q, k)
		hc := cos.Search(q, k)
		if len(he) != k || len(hc) != k {
			t.Fatalf("query %d: got %d euclidean, %d cosine hits", qi, len(he), len(hc))
		}
		gotIDs := make(map[int]bool, k)
		for _, h := range hc {
			gotIDs[h.ID] = true
		}
		for _, h := range he {
			if !gotIDs[h.ID] {
				t.Fatalf("query %d: euclidean neighbor %d missing from cosine results\neuc: %v\ncos: %v",
					qi, h.ID, he, hc)
			}
		}
		prev := -1.0
		for _, h := range hc {
			if h.Dist < prev {
				t.Fatalf("query %d: cosine results not sorted", qi)
			}
			prev = h.Dist
			want := 1 - dot(q, data[h.ID])
			if math.Abs(h.Dist-want) > 1e-5 {
				t.Fatalf("query %d: cosine dist %v, want 1−cos = %v", qi, h.Dist, want)
			}
		}
	}
}

func dot(a, b []float32) float64 {
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

// TestInnerProductTop1Exact is the acceptance check for the MIPS reduction:
// on a dataset small enough that the candidate budget covers every point,
// the search degenerates to exhaustive verification, so top-1 must equal
// the brute-force inner-product argmax exactly.
func TestInnerProductTop1Exact(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	const n, dim = 400, 16
	data := make([][]float32, n)
	for i := range data {
		data[i] = make([]float32, dim)
		for j := range data[i] {
			data[i][j] = float32(rng.NormFloat64() * 3)
		}
	}
	idx, err := dblsh.New(data, dblsh.Options{Seed: 4, Metric: dblsh.InnerProduct})
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 50; qi++ {
		q := make([]float32, dim)
		for j := range q {
			q[j] = float32(rng.NormFloat64() * 3)
		}
		bestID, bestIP := -1, math.Inf(-1)
		for id, v := range data {
			if ip := dot(q, v); ip > bestIP {
				bestID, bestIP = id, ip
			}
		}
		hit, ok := idx.SearchOne(q)
		if !ok {
			t.Fatalf("query %d: no result", qi)
		}
		if hit.ID != bestID {
			t.Fatalf("query %d: top-1 id %d (ip %v), brute-force argmax %d (ip %v)",
				qi, hit.ID, -hit.Dist, bestID, bestIP)
		}
		// Dist is the negated inner product.
		if math.Abs(-hit.Dist-bestIP) > 1e-3*(1+math.Abs(bestIP)) {
			t.Fatalf("query %d: recovered ip %v, want %v", qi, -hit.Dist, bestIP)
		}
	}
}

// TestInnerProductRanking checks that a top-k inner-product search comes
// back ranked by descending ⟨q,x⟩ and matches the brute-force top-k on an
// exhaustively-verifiable dataset.
func TestInnerProductRanking(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const n, dim, k = 300, 12, 5
	data := make([][]float32, n)
	for i := range data {
		data[i] = make([]float32, dim)
		for j := range data[i] {
			data[i][j] = float32(rng.NormFloat64())
		}
	}
	idx, err := dblsh.New(data, dblsh.Options{Seed: 3, Metric: dblsh.InnerProduct})
	if err != nil {
		t.Fatal(err)
	}
	q := make([]float32, dim)
	for j := range q {
		q[j] = float32(rng.NormFloat64())
	}
	hits := idx.Search(q, k)
	if len(hits) != k {
		t.Fatalf("got %d hits", len(hits))
	}
	prev := math.Inf(1)
	for _, h := range hits {
		ip := -h.Dist
		if ip > prev+1e-9 {
			t.Fatalf("results not ranked by descending inner product: %v after %v", ip, prev)
		}
		prev = ip
	}
	type pair struct {
		id int
		ip float64
	}
	best := make([]pair, 0, n)
	for id, v := range data {
		best = append(best, pair{id, dot(q, v)})
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < n; j++ {
			if best[j].ip > best[i].ip {
				best[i], best[j] = best[j], best[i]
			}
		}
		if hits[i].ID != best[i].id {
			t.Fatalf("rank %d: id %d, brute force %d", i, hits[i].ID, best[i].id)
		}
	}
}

func TestMetricIngestValidation(t *testing.T) {
	if _, err := dblsh.New([][]float32{{0, 0}, {1, 0}}, dblsh.Options{Metric: dblsh.Cosine}); err == nil {
		t.Fatal("cosine build over a zero vector must fail")
	}
	idx, err := dblsh.New([][]float32{{1, 0}, {0, 1}}, dblsh.Options{Metric: dblsh.Cosine})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.Add([]float32{0, 0}); err == nil {
		t.Fatal("cosine Add of the zero vector must fail")
	}
	if id, err := idx.Add([]float32{3, 4}); err != nil || id != 2 {
		t.Fatalf("Add = %d, %v", id, err)
	}

	ip, err := dblsh.New([][]float32{{3, 4}, {1, 0}}, dblsh.Options{Metric: dblsh.InnerProduct})
	if err != nil {
		t.Fatal(err)
	}
	if p := ip.Params(); p.NormBound != 5 {
		t.Fatalf("fitted NormBound = %v, want 5", p.NormBound)
	}
	if _, err := ip.Add([]float32{6, 0}); err == nil {
		t.Fatal("Add above the norm bound must fail")
	}
	if _, err := ip.Add([]float32{0, 5}); err != nil {
		t.Fatalf("Add at the norm bound failed: %v", err)
	}

	// Headroom via Options.NormBound.
	ip2, err := dblsh.New([][]float32{{3, 4}}, dblsh.Options{Metric: dblsh.InnerProduct, NormBound: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ip2.Add([]float32{6, 0}); err != nil {
		t.Fatalf("Add within the widened bound failed: %v", err)
	}
	if _, err := dblsh.New([][]float32{{1}}, dblsh.Options{NormBound: 2}); err == nil {
		t.Fatal("NormBound without InnerProduct must fail")
	}
	if _, err := dblsh.New([][]float32{{3, 4}}, dblsh.Options{Metric: dblsh.InnerProduct, NormBound: 2}); err == nil {
		t.Fatal("NormBound below the data's max norm must fail at build")
	}
}

func TestMetricRadiusSemantics(t *testing.T) {
	data, queries := normalizedData(500, 8, 4, 5)
	cos, err := dblsh.New(data, dblsh.Options{Metric: dblsh.Cosine, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := cos.NewSearcher()
	// A cosine-distance radius of 2 spans all directions: with an
	// exhaustive budget the round must find something.
	if _, ok := s.SearchRadius(queries[0], 2); !ok {
		t.Fatal("cosine radius 2 found nothing")
	}
	if _, _, err := s.SearchRadiusOpts(queries[0], 3); err == nil {
		t.Fatal("cosine radius above 2 must error")
	}
	if _, err := cos.SearchOpts(queries[0], 3, dblsh.WithMaxRadius(5)); err == nil {
		t.Fatal("WithMaxRadius above 2 must error under cosine")
	}
	// Under cosine, WithMaxRadius is interpreted in cosine distance.
	hits, err := cos.SearchOpts(queries[0], 3, dblsh.WithMaxRadius(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hits {
		if h.Dist > 2 {
			t.Fatalf("cosine distance %v above the radius cap", h.Dist)
		}
	}

	ip, err := dblsh.New(data, dblsh.Options{Metric: dblsh.InnerProduct, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	si := ip.NewSearcher()
	if _, _, err := si.SearchRadiusOpts(queries[0], 1); err == nil {
		t.Fatal("inner product must reject radius queries")
	}
	if _, err := ip.SearchOpts(queries[0], 3, dblsh.WithMaxRadius(1)); err == nil {
		t.Fatal("inner product must reject WithMaxRadius")
	}
	if _, err := ip.SearchBatchOpts(queries, 3, dblsh.WithMaxRadius(1)); err == nil {
		t.Fatal("inner product must reject WithMaxRadius on batches")
	}
}

// TestMetricPersistRoundTrip checks that cosine and inner-product indexes
// survive WriteTo/Read with their metric, norm bound and answers intact.
func TestMetricPersistRoundTrip(t *testing.T) {
	for _, m := range []dblsh.Metric{dblsh.Cosine, dblsh.InnerProduct} {
		t.Run(m.String(), func(t *testing.T) {
			data, queries := normalizedData(800, 12, 8, int64(10+m))
			idx, err := dblsh.New(data, dblsh.Options{Seed: 6, Shards: 3, Metric: m})
			if err != nil {
				t.Fatal(err)
			}
			idx.Delete(5)
			var buf bytes.Buffer
			if _, err := idx.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			loaded, err := dblsh.Read(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if loaded.Metric() != m {
				t.Fatalf("loaded metric %v, want %v", loaded.Metric(), m)
			}
			if loaded.Dim() != idx.Dim() {
				t.Fatalf("loaded dim %d, want %d", loaded.Dim(), idx.Dim())
			}
			if loaded.Params() != idx.Params() {
				t.Fatalf("params changed: %+v vs %+v", loaded.Params(), idx.Params())
			}
			for _, q := range queries {
				a, b := idx.Search(q, 5), loaded.Search(q, 5)
				if len(a) != len(b) {
					t.Fatalf("result count changed: %d vs %d", len(a), len(b))
				}
				for i := range a {
					if a[i].ID != b[i].ID || math.Abs(a[i].Dist-b[i].Dist) > 1e-9 {
						t.Fatalf("result %d changed: %+v vs %+v", i, a[i], b[i])
					}
				}
			}
			// The metric state must survive: Adds still validate against the
			// restored norm bound.
			if m == dblsh.InnerProduct {
				big := make([]float32, loaded.Dim())
				big[0] = float32(loaded.Params().NormBound * 2)
				if _, err := loaded.Add(big); err == nil {
					t.Fatal("restored index lost its norm bound")
				}
			}
		})
	}
}

func TestParseMetric(t *testing.T) {
	m, err := dblsh.ParseMetric("cosine")
	if err != nil || m != dblsh.Cosine {
		t.Fatalf("ParseMetric(cosine) = %v, %v", m, err)
	}
	if _, err := dblsh.ParseMetric("hamming"); err == nil {
		t.Fatal("unknown metric must error")
	}
	if dblsh.InnerProduct.String() != "ip" || dblsh.Euclidean.String() != "euclidean" {
		t.Fatal("metric names changed")
	}
}
