package dblsh_test

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"dblsh"
)

// optsIndex builds one shared index over a dense Gaussian cloud — the
// regime where the per-query knobs visibly change the work a query does —
// plus a handful of probe queries.
func optsIndex(t testing.TB) (*dblsh.Index, [][]float32) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	const n, dim, probes = 4000, 24, 8
	mk := func(count int) [][]float32 {
		out := make([][]float32, count)
		for i := range out {
			v := make([]float32, dim)
			for j := range v {
				v[j] = float32(rng.NormFloat64())
			}
			out[i] = v
		}
		return out
	}
	data := mk(n)
	idx, err := dblsh.New(data, dblsh.Options{K: 8, L: 4, T: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return idx, mk(probes)
}

// Two SearchOpts calls on one index with different per-query budgets must do
// observably different amounts of work — the point of the options API.
func TestPerQueryBudgetOverridesBuildConfig(t *testing.T) {
	idx, probes := optsIndex(t)
	const k = 10
	for _, q := range probes {
		var small, large dblsh.Stats
		if _, err := idx.SearchOpts(q, k, dblsh.WithCandidateBudget(2), dblsh.WithStats(&small)); err != nil {
			t.Fatal(err)
		}
		if _, err := idx.SearchOpts(q, k, dblsh.WithCandidateBudget(400), dblsh.WithStats(&large)); err != nil {
			t.Fatal(err)
		}
		// Budget 2·t·L+k with t=2, L=4, k=10 caps verification at 26 points.
		if small.Candidates > 26 {
			t.Fatalf("budget t=2 verified %d candidates, cap is 26", small.Candidates)
		}
		if small.Candidates >= large.Candidates {
			t.Fatalf("t=2 vs t=400 candidates: %d vs %d, want strictly fewer",
				small.Candidates, large.Candidates)
		}
	}
}

func TestPerQueryEarlyStopOverridesBuildConfig(t *testing.T) {
	idx, probes := optsIndex(t)
	const k = 10
	looserWins := 0
	for _, q := range probes {
		var exact, loose dblsh.Stats
		if _, err := idx.SearchOpts(q, k, dblsh.WithCandidateBudget(400), dblsh.WithStats(&exact)); err != nil {
			t.Fatal(err)
		}
		if _, err := idx.SearchOpts(q, k, dblsh.WithCandidateBudget(400),
			dblsh.WithEarlyStop(4), dblsh.WithStats(&loose)); err != nil {
			t.Fatal(err)
		}
		if loose.Rounds > exact.Rounds || loose.Candidates > exact.Candidates {
			t.Fatalf("early-stop did more work: rounds %d vs %d, candidates %d vs %d",
				loose.Rounds, exact.Rounds, loose.Candidates, exact.Candidates)
		}
		if loose.Candidates < exact.Candidates {
			looserWins++
		}
	}
	if looserWins == 0 {
		t.Fatal("early-stop factor 4 never reduced candidate count on any probe")
	}
}

func TestWithFilterExcludesIDs(t *testing.T) {
	idx, probes := optsIndex(t)
	const k = 5
	for _, q := range probes {
		res, err := idx.SearchOpts(q, k, dblsh.WithFilter(func(id int) bool { return id%2 == 1 }))
		if err != nil {
			t.Fatal(err)
		}
		if len(res) == 0 {
			t.Fatal("filtered search found nothing")
		}
		for _, h := range res {
			if h.ID%2 == 0 {
				t.Fatalf("filter leaked excluded id %d", h.ID)
			}
		}
	}
	// Self-exclusion: whatever id an unfiltered query ranks first, a filter
	// rejecting exactly that id must keep it out of the results.
	s := idx.NewSearcher()
	for _, q := range probes {
		res := s.Search(q, 1)
		if len(res) != 1 {
			t.Fatal("unfiltered search found nothing")
		}
		nearest := res[0].ID
		fres, err := s.SearchOpts(q, 1, dblsh.WithFilter(func(id int) bool { return id != nearest }))
		if err != nil {
			t.Fatal(err)
		}
		if len(fres) == 1 && fres[0].ID == nearest {
			t.Fatalf("filter leaked excluded id %d", nearest)
		}
	}
}

func TestWithContextCancellation(t *testing.T) {
	idx, probes := optsIndex(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: the query must give up at the first round check
	start := time.Now()
	res, err := idx.SearchOpts(probes[0], 10, dblsh.WithContext(ctx))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(res) != 0 {
		t.Fatalf("cancelled-before-start query returned %d results", len(res))
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("cancelled query took %v", d)
	}

	// Batch: cancellation surfaces the context error.
	if _, err := idx.SearchBatchOpts(probes, 10, dblsh.WithContext(ctx)); !errors.Is(err, context.Canceled) {
		t.Fatalf("batch err = %v, want context.Canceled", err)
	}

	// A live context passes through untouched.
	if _, err := idx.SearchOpts(probes[0], 10, dblsh.WithContext(context.Background())); err != nil {
		t.Fatal(err)
	}
}

func TestWithMaxRadiusCapsLadder(t *testing.T) {
	idx, probes := optsIndex(t)
	var unbounded dblsh.Stats
	if _, err := idx.SearchOpts(probes[0], 10, dblsh.WithStats(&unbounded)); err != nil {
		t.Fatal(err)
	}
	// A cap below the initial radius runs zero rounds and finds nothing.
	var st dblsh.Stats
	res, err := idx.SearchOpts(probes[0], 10, dblsh.WithMaxRadius(1e-12), dblsh.WithStats(&st))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 || st.Rounds != 0 {
		t.Fatalf("tiny max radius: %d results, %d rounds", len(res), st.Rounds)
	}
	// A cap at the unbounded query's own final radius leaves it unchanged;
	// anything it reports must respect the cap.
	var capped dblsh.Stats
	if _, err := idx.SearchOpts(probes[0], 10,
		dblsh.WithMaxRadius(unbounded.FinalRadius), dblsh.WithStats(&capped)); err != nil {
		t.Fatal(err)
	}
	if capped.FinalRadius > unbounded.FinalRadius {
		t.Fatalf("capped FinalRadius %v exceeds cap %v", capped.FinalRadius, unbounded.FinalRadius)
	}
}

// The cap must also hold on the full-corpus sweep path: a tiny clustered
// index whose ladder quickly covers every tree used to fall into finalSweep
// and verify the whole corpus past the cap.
func TestWithMaxRadiusCapsFinalSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n, dim = 50, 8
	data := make([][]float32, n)
	for i := range data {
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		data[i] = v
	}
	idx, err := dblsh.New(data, dblsh.Options{K: 4, L: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// A query far from the cluster: nothing lies within the cap, so a
	// correctly capped ladder must verify zero candidates and return empty.
	far := make([]float32, dim)
	for j := range far {
		far[j] = 100
	}
	var st dblsh.Stats
	res, err := idx.SearchOpts(far, 1, dblsh.WithMaxRadius(32), dblsh.WithStats(&st))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 || st.Candidates != 0 {
		t.Fatalf("cap 32 leaked through final sweep: %d results, %d candidates", len(res), st.Candidates)
	}
}

// The legacy entry points must stay exact wrappers: no options means
// identical output.
func TestWrappersMatchOpts(t *testing.T) {
	idx, probes := optsIndex(t)
	const k = 10
	for _, q := range probes {
		plain := idx.Search(q, k)
		via, err := idx.SearchOpts(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, via) {
			t.Fatalf("Search %v != SearchOpts %v", plain, via)
		}
	}
	batchPlain := idx.SearchBatch(probes, k)
	batchVia, err := idx.SearchBatchOpts(probes, k)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batchPlain, batchVia) {
		t.Fatal("SearchBatch != SearchBatchOpts")
	}
	s := idx.NewSearcher()
	for _, q := range probes {
		plain := s.Search(q, k)
		via, err := s.SearchOpts(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, via) {
			t.Fatal("Searcher.Search != Searcher.SearchOpts")
		}
		rPlain, okPlain := s.SearchRadius(q, 2)
		rVia, okVia, err := s.SearchRadiusOpts(q, 2)
		if err != nil {
			t.Fatal(err)
		}
		if okPlain != okVia || rPlain != rVia {
			t.Fatal("SearchRadius != SearchRadiusOpts")
		}
	}
}

func TestSearchBatchOptsStats(t *testing.T) {
	idx, probes := optsIndex(t)
	var per []dblsh.Stats
	var agg dblsh.Stats
	res, err := idx.SearchBatchOpts(probes, 10,
		dblsh.WithBatchStats(&per), dblsh.WithStats(&agg))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(probes) || len(per) != len(probes) {
		t.Fatalf("got %d results, %d stats for %d queries", len(res), len(per), len(probes))
	}
	sum := 0
	for i, st := range per {
		if st.Candidates == 0 || st.Rounds == 0 {
			t.Fatalf("query %d reported empty stats %+v", i, st)
		}
		sum += st.Candidates
	}
	if agg.Candidates != sum {
		t.Fatalf("aggregate candidates %d, sum of per-query %d", agg.Candidates, sum)
	}
}

func TestOptionValidation(t *testing.T) {
	idx, probes := optsIndex(t)
	bad := []dblsh.SearchOption{
		dblsh.WithCandidateBudget(0),
		dblsh.WithCandidateBudget(-3),
		dblsh.WithEarlyStop(0.5),
		dblsh.WithMaxRadius(-1),
		dblsh.WithContext(nil),
		dblsh.WithFilter(nil),
		dblsh.WithStats(nil),
		dblsh.WithBatchStats(nil),
	}
	for i, opt := range bad {
		if _, err := idx.SearchOpts(probes[0], 5, opt); err == nil {
			t.Fatalf("bad option %d accepted", i)
		}
	}
	// WithBatchStats is batch-only.
	var per []dblsh.Stats
	if _, err := idx.SearchOpts(probes[0], 5, dblsh.WithBatchStats(&per)); err == nil {
		t.Fatal("WithBatchStats accepted by SearchOpts")
	}
	s := idx.NewSearcher()
	if _, _, err := s.SearchRadiusOpts(probes[0], 1, dblsh.WithBatchStats(&per)); err == nil {
		t.Fatal("WithBatchStats accepted by SearchRadiusOpts")
	}
}

func TestSearchRadiusOptsFilter(t *testing.T) {
	idx, probes := optsIndex(t)
	s := idx.NewSearcher()
	// A huge radius always finds something; the filter constrains which ids
	// qualify.
	hit, ok, err := s.SearchRadiusOpts(probes[0], 1e6,
		dblsh.WithFilter(func(id int) bool { return id >= 2000 }))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("huge radius found nothing")
	}
	if hit.ID < 2000 {
		t.Fatalf("radius filter leaked id %d", hit.ID)
	}
}
