// The durability subsystem: Open / Close / Checkpoint / Save.
//
// A durable index lives in a directory holding a v3 snapshot
// ("checkpoint.dblsh", the exact WriteTo format) and a write-ahead op log
// ("wal.log", see internal/wal) of every Add and Delete applied since that
// snapshot was cut. Open loads the newest checkpoint, replays the log on
// top of it, and resumes; a crash therefore loses at most the log records
// the sync policy had not yet fsynced.
//
// Checkpointing rotates the active log segment aside (to "wal.<seq>.old"),
// streams a fresh snapshot through the lock-light per-shard WriteTo path to
// a temp file, fsyncs it, renames it over the old checkpoint, fsyncs the
// directory, and only then deletes the rotated segments. Every record in a
// rotated segment was applied to the in-memory index before rotation (both
// happen under the log mutex) and rotation precedes the snapshot's id-space
// cut, so the new checkpoint contains all of them; a crash at any point in
// the sequence leaves either the old checkpoint plus every segment, or the
// new checkpoint plus segments whose replay is idempotent. Replay
// idempotence comes from the op set itself: ids are never reused, an Add
// re-applied over a checkpoint that already holds its row is skipped by
// residency (shard.Set.AddAt), and a Delete of an absent or
// already-tombstoned id is a no-op.
//
// Mutations are true write-ahead, append-then-apply under one mutex: the
// record is logged (and fsynced, under SyncAlways) before the in-memory
// index is touched, so a logging failure applies nothing and the caller's
// rejection is honest, while a crash between append and apply merely leaves
// a record replay will apply. Holding the mutex across both steps makes
// append+apply atomic with respect to log rotation, which takes the same
// mutex — that is what makes the containment argument above hold. The
// in-memory write path of a durable index is therefore serialized by the
// log mutex; the log is a single append stream anyway, so shard-parallel
// application would only reorder acknowledgments, not speed them up.

package dblsh

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"dblsh/internal/obs"
	"dblsh/internal/wal"
)

// SyncPolicy selects when a durable index fsyncs logged mutations; it
// bounds what a crash (process or machine) can lose.
type SyncPolicy int

const (
	// SyncAlways fsyncs the op log before every mutation returns: an
	// acknowledged Add or Delete survives any crash. The default.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs in the background every Options.SyncEvery
	// (default 100ms): a crash loses at most the last interval's
	// acknowledged mutations.
	SyncInterval
	// SyncNever leaves flushing to the operating system: a process crash
	// loses nothing (the records are in the page cache), a machine crash
	// can lose everything since the last checkpoint.
	SyncNever
)

// String returns "always", "interval" or "never".
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ErrClosed is returned by mutations and durability operations on an index
// after Close.
var ErrClosed = errors.New("dblsh: index is closed")

// ErrDurability wraps an op-log write or sync failure on a durable
// mutation. The mutation was NOT applied — the in-memory index and the log
// never diverge — so retrying after the underlying condition clears (a
// full disk, say) is safe.
var ErrDurability = errors.New("dblsh: durable write failed")

// errNotDurable is returned by durability operations on a purely in-memory
// index.
var errNotDurable = errors.New("dblsh: index is not durable (build it with Open)")

// Durable-directory layout.
const (
	checkpointName    = "checkpoint.dblsh"
	checkpointTmpName = "checkpoint.dblsh.tmp"
	walName           = "wal.log"
	walOldPattern     = "wal.*.old"
)

func walOldName(seq uint64) string { return fmt.Sprintf("wal.%08d.old", seq) }

// DurabilityStats describes a durable index's recovery state.
type DurabilityStats struct {
	// LogBytes is the total size of the op log not yet absorbed by a
	// checkpoint: the active segment plus any rotated segments a checkpoint
	// has not finished retiring.
	LogBytes int64
	// OpsSinceCheckpoint is the number of logged mutations a reopen would
	// have to replay on top of the newest checkpoint.
	OpsSinceCheckpoint int64
	// Checkpoints counts checkpoints completed since Open.
	Checkpoints int64
	// LastCheckpoint is when the newest checkpoint became durable (the
	// checkpoint file's mtime at Open, refreshed on every completed
	// checkpoint). Zero when the directory has never been checkpointed.
	LastCheckpoint time.Time
}

// durable is the per-index durability state behind Open.
type durable struct {
	dir       string
	policy    SyncPolicy
	syncEvery time.Duration
	ckptEvery time.Duration

	// mu guards the active log segment and everything that must stay
	// consistent with its record boundary: apply+append of mutations,
	// rotation, the op counter, and the rotated-segment list.
	mu       sync.Mutex
	log      *wal.Writer // dblsh:guardedby mu
	ops      int64       // dblsh:guardedby mu — logged mutations since the last completed checkpoint
	oldPaths []string    // dblsh:guardedby mu — rotated segments not yet retired by a checkpoint
	oldBytes int64       // dblsh:guardedby mu
	nextSeq  uint64      // dblsh:guardedby mu
	closed   bool        // dblsh:guardedby mu
	firstErr error       // dblsh:guardedby mu — first background/logging failure, surfaced by Close

	// ckptMu serializes checkpoints. It is always taken before mu, never
	// the other way around.
	ckptMu      sync.Mutex
	checkpoints int64     // dblsh:guardedby ckptMu
	lastCkpt    time.Time // dblsh:guardedby ckptMu

	// Replay statistics, written once during Open (before the index is
	// published) and read-only afterwards — scrape-time gauge funcs read
	// them without a lock.
	replaySegments int // log segments replayed at Open (rotated + active)
	replayRecords  int // records re-applied on top of the checkpoint
	replayTorn     int // segments whose torn tail was dropped

	// walM is copied onto every log segment writer (the active one and
	// each rotation's replacement) so append/fsync metrics survive
	// rotation. ckptSeconds times complete checkpoints. Guarded by mu.
	walM        wal.Metrics    // dblsh:guardedby mu
	ckptSeconds *obs.Histogram // dblsh:guardedby mu

	stop      chan struct{}
	bg        sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

// IsStore reports whether dir holds a durable store's checkpoint — i.e.
// whether Open would resume existing data rather than create a fresh
// store. Tools that seed a directory before opening it (the server's
// -data-dir flag) use it so "is there a store here?" cannot drift from the
// library's own layout.
func IsStore(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, checkpointName))
	return err == nil
}

// Open opens (or creates) a durable index in directory dir. If dir holds a
// checkpoint it is loaded — the stored structural parameters, shard layout
// and metric win over opts, and a non-zero opts.Dim or opts.Metric that
// disagrees with the store is an error — and the op log is replayed on top
// of it, dropping a torn final record if the process died mid-append.
// Otherwise a fresh, empty index is built from opts (opts.Dim is required;
// an InnerProduct store also requires opts.NormBound, having no data to fit
// it from) and an initial checkpoint is written so the directory is
// self-describing from the start.
//
// The returned index logs every Add and Delete under opts.Sync and, when
// opts.CheckpointEvery is set, checkpoints in the background. Call Close
// before discarding it; a directory must not be open in more than one
// process at a time.
func Open(dir string, opts Options) (*Index, error) {
	if opts.Sync < SyncAlways || opts.Sync > SyncNever {
		return nil, fmt.Errorf("dblsh: unknown sync policy %d", opts.Sync)
	}
	if opts.SyncEvery < 0 || opts.CheckpointEvery < 0 {
		return nil, errors.New("dblsh: SyncEvery and CheckpointEvery must be non-negative")
	}
	if opts.Dim < 0 {
		return nil, fmt.Errorf("dblsh: Dim must be non-negative, got %d", opts.Dim)
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("dblsh: create %s: %w", dir, err)
	}

	idx, lastCkpt, fresh, err := loadOrInitCheckpoint(dir, opts)
	if err != nil {
		return nil, err
	}

	// Replay the op log on top of the checkpoint: rotated segments first,
	// in rotation order, then the active segment. The rows in the log are
	// already metric-transformed, so they re-insert verbatim.
	idim := idx.set.Dim()
	apply := func(rec wal.Record) error {
		if rec.ID >= maxVectors {
			return fmt.Errorf("dblsh: implausible id %d in op log", rec.ID)
		}
		switch rec.Op {
		case wal.OpAdd:
			if len(rec.Row) != idim {
				return fmt.Errorf("dblsh: op log row has dim %d, index dim %d", len(rec.Row), idim)
			}
			idx.set.AddAt(int(rec.ID), rec.Row)
		case wal.OpDelete:
			idx.set.Delete(int(rec.ID))
		}
		return nil
	}

	olds, nextSeq, oldBytes, err := oldSegments(dir)
	if err != nil {
		return nil, err
	}
	replayed, replaySegments, replayTorn := 0, 0, 0
	for _, p := range olds {
		// A torn tail here is the unsynced end of a segment orphaned by a
		// crash mid-checkpoint: the lost records were never acknowledged
		// durable, and every op of a given id in later segments (only ever
		// Deletes — ids are not reused) degrades to a no-op, so continuing
		// with the next segment is safe.
		res, err := wal.Replay(p, idim, apply)
		if err != nil {
			return nil, fmt.Errorf("dblsh: replay %s: %w", p, err)
		}
		replayed += res.Records
		replaySegments++
		if res.Torn {
			replayTorn++
		}
	}
	walPath := filepath.Join(dir, walName)
	var goodOffset int64
	if res, err := wal.Replay(walPath, idim, apply); err == nil {
		goodOffset = res.GoodOffset
		replayed += res.Records
		replaySegments++
		if res.Torn {
			replayTorn++
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("dblsh: replay %s: %w", walPath, err)
	}
	// Truncate the torn tail (if any) so new frames append after the last
	// intact record.
	log, err := wal.OpenWriter(walPath, goodOffset)
	if err != nil {
		return nil, fmt.Errorf("dblsh: open op log: %w", err)
	}

	d := &durable{
		dir:            dir,
		policy:         opts.Sync,
		syncEvery:      opts.SyncEvery,
		ckptEvery:      opts.CheckpointEvery,
		log:            log,
		ops:            int64(replayed),
		oldPaths:       olds,
		oldBytes:       oldBytes,
		nextSeq:        nextSeq,
		lastCkpt:       lastCkpt,
		replaySegments: replaySegments,
		replayRecords:  replayed,
		replayTorn:     replayTorn,
		stop:           make(chan struct{}),
	}
	idx.dur = d

	// A fresh directory gets its initial (empty) checkpoint; leftover
	// rotated segments mean a crash interrupted a checkpoint — finish that
	// job now so the log stops accreting history.
	if fresh || len(olds) > 0 {
		if err := idx.Checkpoint(); err != nil {
			idx.Close()
			return nil, err
		}
	}
	d.start(idx)
	return idx, nil
}

// loadOrInitCheckpoint loads dir's checkpoint, or builds the fresh empty
// index a checkpoint-less directory starts from.
func loadOrInitCheckpoint(dir string, opts Options) (idx *Index, lastCkpt time.Time, fresh bool, err error) {
	path := filepath.Join(dir, checkpointName)
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		if opts.Dim == 0 {
			return nil, time.Time{}, false, fmt.Errorf("dblsh: %s has no checkpoint; creating a store requires Options.Dim", dir)
		}
		if Metric(opts.Metric) == InnerProduct && opts.NormBound == 0 {
			return nil, time.Time{}, false, errors.New("dblsh: creating an empty InnerProduct store requires Options.NormBound (no data to fit it from)")
		}
		idx, err := newIndex(nil, 0, opts.Dim, opts)
		if err != nil {
			return nil, time.Time{}, false, err
		}
		return idx, time.Time{}, true, nil
	}
	if err != nil {
		return nil, time.Time{}, false, err
	}
	defer f.Close()
	idx, err = Read(f)
	if err != nil {
		return nil, time.Time{}, false, fmt.Errorf("dblsh: load checkpoint %s: %w", path, err)
	}
	if opts.Dim != 0 && opts.Dim != idx.Dim() {
		return nil, time.Time{}, false, fmt.Errorf("dblsh: Options.Dim is %d but the store holds %d-dimensional vectors", opts.Dim, idx.Dim())
	}
	if opts.Metric != 0 && Metric(opts.Metric) != idx.Metric() {
		return nil, time.Time{}, false, fmt.Errorf("dblsh: Options.Metric is %s but the store was built with %s", Metric(opts.Metric), idx.Metric())
	}
	// The compaction threshold is operational, not persisted state: apply
	// the caller's.
	if opts.CompactFraction != 0 {
		if err := idx.SetCompactFraction(opts.CompactFraction); err != nil {
			return nil, time.Time{}, false, err
		}
	}
	// So is the quantized pre-filter flag: the checkpoint rebuilds the int8
	// mirrors with the default (on); apply the caller's setting.
	if opts.Quantize != "" {
		idx.set.SetQuantize(opts.Quantize)
	}
	// And the query fan-out setting (0 is already the auto default a loaded
	// set starts with).
	if opts.Parallelism != 0 {
		if err := idx.SetParallelism(opts.Parallelism); err != nil {
			return nil, time.Time{}, false, err
		}
	}
	if fi, err := os.Stat(path); err == nil {
		lastCkpt = fi.ModTime()
	}
	return idx, lastCkpt, false, nil
}

// oldSegments lists dir's rotated log segments in rotation order, the next
// free sequence number, and their total size.
func oldSegments(dir string) (paths []string, nextSeq uint64, bytes int64, err error) {
	paths, err = filepath.Glob(filepath.Join(dir, walOldPattern))
	if err != nil {
		return nil, 0, 0, err
	}
	sort.Strings(paths) // zero-padded sequence numbers sort lexically
	for _, p := range paths {
		var seq uint64
		if _, err := fmt.Sscanf(filepath.Base(p), "wal.%d.old", &seq); err == nil && seq >= nextSeq {
			nextSeq = seq + 1
		}
		if fi, err := os.Stat(p); err == nil {
			bytes += fi.Size()
		}
	}
	return paths, nextSeq, bytes, nil
}

// start launches the policy's background goroutines.
func (d *durable) start(idx *Index) {
	if d.policy == SyncInterval {
		every := d.syncEvery
		if every <= 0 {
			every = 100 * time.Millisecond
		}
		d.bg.Add(1)
		go func() {
			defer d.bg.Done()
			t := time.NewTicker(every)
			defer t.Stop()
			for {
				select {
				case <-d.stop:
					return
				case <-t.C:
					d.mu.Lock()
					if !d.closed {
						d.note(d.log.Sync())
					}
					d.mu.Unlock()
				}
			}
		}()
	}
	if d.ckptEvery > 0 {
		d.bg.Add(1)
		go func() {
			defer d.bg.Done()
			t := time.NewTicker(d.ckptEvery)
			defer t.Stop()
			for {
				select {
				case <-d.stop:
					return
				case <-t.C:
					d.mu.Lock()
					pending := d.ops > 0
					d.mu.Unlock()
					if pending {
						if err := d.checkpoint(idx); err != nil && !errors.Is(err, ErrClosed) {
							d.mu.Lock()
							d.note(err)
							d.mu.Unlock()
						}
					}
				}
			}
		}()
	}
}

// setMetrics installs the durability layer's observability hooks: the WAL
// metrics carry over to every future log segment (and are attached to the
// active one), and ckptSeconds times completed checkpoints.
func (d *durable) setMetrics(wm wal.Metrics, ckptSeconds *obs.Histogram) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.walM = wm
	d.ckptSeconds = ckptSeconds
	if !d.closed {
		d.log.M = wm
	}
}

// note records the first logging/background failure. Callers hold d.mu.
//
// dblsh:locked mu
func (d *durable) note(err error) {
	if err != nil && d.firstErr == nil {
		d.firstErr = err
	}
}

// appendLocked logs one record under the active sync policy. Callers hold
// d.mu and apply the mutation to the in-memory index only after it
// returns nil — write-ahead order, so an error here means the mutation
// simply did not happen. (A failed append is rolled back, or latches the
// log; see wal.Writer.)
//
// dblsh:locked mu
func (d *durable) appendLocked(rec wal.Record) error {
	if err := d.log.Append(rec); err != nil {
		d.note(err)
		return err
	}
	d.ops++
	if d.policy == SyncAlways {
		if err := d.log.Sync(); err != nil {
			d.note(err)
			return err
		}
	}
	return nil
}

// add logs then applies an insertion; row is already metric-transformed.
// The id is read off the allocator before logging: every allocation path of
// a durable index runs under d.mu, so the subsequent Add is guaranteed to
// hand out exactly that id.
func (d *durable) add(idx *Index, row []float32) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, ErrClosed
	}
	g := idx.set.NextID()
	if err := d.appendLocked(wal.Record{Op: wal.OpAdd, ID: uint64(g), Row: row}); err != nil {
		return 0, fmt.Errorf("%w: %w", ErrDurability, err)
	}
	if got := idx.set.Add(row); got != g {
		panic(fmt.Sprintf("dblsh: durable add logged id %d but allocated %d", g, got))
	}
	return g, nil
}

// delete logs then applies a tombstone. The liveness pre-check under d.mu
// keeps no-op deletes out of the log and lets a logging failure report
// honestly: nothing was applied, nothing was logged.
func (d *durable) delete(idx *Index, g int) (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return false, ErrClosed
	}
	if !idx.set.Live(g) {
		return false, nil
	}
	if err := d.appendLocked(wal.Record{Op: wal.OpDelete, ID: uint64(g)}); err != nil {
		return false, fmt.Errorf("%w: %w", ErrDurability, err)
	}
	if !idx.set.Delete(g) {
		panic(fmt.Sprintf("dblsh: durable delete of live id %d failed to apply", g))
	}
	return true, nil
}

// Durability reports the index's recovery state; ok is false for a purely
// in-memory index.
func (idx *Index) Durability() (st DurabilityStats, ok bool) {
	d := idx.dur
	if d == nil {
		return DurabilityStats{}, false
	}
	d.mu.Lock()
	st = DurabilityStats{
		LogBytes:           d.log.Size() + d.oldBytes,
		OpsSinceCheckpoint: d.ops,
	}
	d.mu.Unlock()
	d.ckptMu.Lock()
	st.Checkpoints = d.checkpoints
	st.LastCheckpoint = d.lastCkpt
	d.ckptMu.Unlock()
	return st, true
}

// Checkpoint rewrites the durable snapshot and truncates the op log. The
// index serves reads and writes throughout: the snapshot streams one shard
// at a time under that shard's read lock (the WriteTo path), and the log
// only pauses for the rotation instant. It is a no-op when nothing changed
// since the last checkpoint. On a purely in-memory index it returns an
// error; use Save to snapshot one into a directory.
func (idx *Index) Checkpoint() error {
	if idx.dur == nil {
		return errNotDurable
	}
	return idx.dur.checkpoint(idx)
}

func (d *durable) checkpoint(idx *Index) error {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	start := time.Now()

	// Rotate the active segment aside so the log from here on belongs to
	// the next checkpoint. Everything rotated out was applied before this
	// instant and is therefore contained in the snapshot cut below.
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrClosed
	}
	opsRotated := d.ops
	if d.log.Size() > 0 {
		// The rotation is ordered so that any single transient failure
		// leaves the active log fully usable and the checkpoint retryable:
		// rename the still-open segment first (the fd follows the inode, so
		// d.log keeps working whichever name the file has), and only commit
		// to the rotation once the fresh segment exists — rolling the
		// rename back otherwise.
		walPath := filepath.Join(d.dir, walName)
		oldPath := filepath.Join(d.dir, walOldName(d.nextSeq))
		size := d.log.Size()
		if err := os.Rename(walPath, oldPath); err != nil {
			d.note(err)
			d.mu.Unlock()
			return err
		}
		fresh, err := wal.OpenWriter(walPath, 0)
		if err == nil {
			fresh.M = d.walM
		}
		if err != nil {
			d.note(err)
			if rerr := os.Rename(oldPath, walPath); rerr != nil {
				// Appends keep landing in the mis-named segment; an open-time
				// glob recovers it after restart, and nothing deletes it in
				// this process (it is not in oldPaths).
				d.note(rerr)
			}
			d.mu.Unlock()
			return err
		}
		old := d.log
		d.log = fresh
		d.nextSeq++
		d.oldPaths = append(d.oldPaths, oldPath)
		d.oldBytes += size
		if err := old.Close(); err != nil {
			// The rotated segment's tail may not be fsynced; its ops are in
			// the snapshot below regardless, so this only narrows the
			// crash-before-checkpoint window the sync policy already allows.
			d.note(err)
		}
	}
	hasOld := len(d.oldPaths) > 0
	d.mu.Unlock()

	if opsRotated == 0 && !hasOld {
		if _, err := os.Stat(filepath.Join(d.dir, checkpointName)); err == nil {
			return nil // nothing new since the last checkpoint
		}
	}

	if err := writeCheckpoint(idx, d.dir); err != nil {
		return err
	}

	// The snapshot is durable: the rotated segments' history is absorbed.
	d.mu.Lock()
	for _, p := range d.oldPaths {
		if err := os.Remove(p); err != nil {
			d.note(err)
		}
	}
	d.oldPaths = nil
	d.oldBytes = 0
	d.ops -= opsRotated
	ckptSeconds := d.ckptSeconds
	d.mu.Unlock()
	d.checkpoints++
	d.lastCkpt = time.Now()
	ckptSeconds.Observe(time.Since(start).Seconds())
	return nil
}

// writeCheckpoint streams idx's v3 snapshot into dir's checkpoint slot:
// write to a temp file, fsync it, rename it over the previous checkpoint,
// fsync the directory — a crash at any point leaves one intact checkpoint.
func writeCheckpoint(idx *Index, dir string) error {
	tmp := filepath.Join(dir, checkpointTmpName)
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("dblsh: checkpoint: %w", err)
	}
	if _, err := idx.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("dblsh: checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("dblsh: checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("dblsh: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, checkpointName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("dblsh: checkpoint: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable.
func syncDir(dir string) error {
	df, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer df.Close()
	return df.Sync()
}

// Save writes the index as the checkpoint of directory dir (created if
// needed), making dir openable with Open — the bridge from an in-memory
// index (New, NewFromFlat, Read) to a durable store, and a way to seed or
// migrate one. The write is atomic: temp file, fsync, rename. Save does not
// attach durability to the receiver; reopen the directory with Open for
// that.
func (idx *Index) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return fmt.Errorf("dblsh: create %s: %w", dir, err)
	}
	return writeCheckpoint(idx, dir)
}

// Close flushes and closes a durable index's op log and stops its
// background goroutines, then returns the first logging or checkpointing
// failure encountered over the index's lifetime, if any. The index remains
// searchable, but mutations return ErrClosed (Add) or false (Delete). On a
// purely in-memory index Close is a no-op. Close is idempotent.
func (idx *Index) Close() error {
	d := idx.dur
	if d == nil {
		return nil
	}
	d.closeOnce.Do(func() {
		close(d.stop)
		d.bg.Wait()
		d.mu.Lock()
		d.closed = true
		err := d.log.Close() // syncs pending frames first
		if err == nil {
			err = d.firstErr
		}
		d.mu.Unlock()
		d.closeErr = err
	})
	return d.closeErr
}
