// Quickstart: build a DB-LSH index over random clustered vectors and run a
// few approximate nearest neighbor queries.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"dblsh"
)

func main() {
	const (
		n   = 20_000
		dim = 64
	)
	rng := rand.New(rand.NewSource(7))

	// Synthetic corpus: 50 clusters of similar vectors.
	centers := make([][]float32, 50)
	for i := range centers {
		centers[i] = randVec(rng, dim, 10)
	}
	data := make([][]float32, n)
	for i := range data {
		c := centers[rng.Intn(len(centers))]
		data[i] = jitter(rng, c, 1)
	}

	// Build with the paper's defaults (c = 1.5, w0 = 4c², L = 5).
	idx, err := dblsh.New(data, dblsh.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	p := idx.Params()
	fmt.Printf("indexed %d vectors of dim %d (K=%d, L=%d, c=%.1f, w0=%.1f)\n",
		idx.Len(), idx.Dim(), p.K, p.L, p.C, p.W0)
	fmt.Printf("index size ≈ %.1f MiB\n\n", float64(idx.IndexSizeBytes())/(1<<20))

	// Query with a perturbed copy of a data point; its source should come
	// back at the top.
	for trial := 0; trial < 3; trial++ {
		target := rng.Intn(n)
		q := jitter(rng, data[target], 0.2)
		hits := idx.Search(q, 5)
		fmt.Printf("query near point %d:\n", target)
		for rank, h := range hits {
			marker := ""
			if h.ID == target {
				marker = "   <- planted target"
			}
			fmt.Printf("  #%d id=%-6d dist=%.3f%s\n", rank+1, h.ID, h.Dist, marker)
		}
		// Sanity: compare against the exact nearest neighbor.
		bestID, bestDist := exactNN(data, q)
		fmt.Printf("  exact NN: id=%d dist=%.3f\n\n", bestID, bestDist)
	}
}

func randVec(rng *rand.Rand, dim int, scale float64) []float32 {
	v := make([]float32, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64() * scale)
	}
	return v
}

func jitter(rng *rand.Rand, base []float32, std float64) []float32 {
	v := make([]float32, len(base))
	for i := range v {
		v[i] = base[i] + float32(rng.NormFloat64()*std)
	}
	return v
}

func exactNN(data [][]float32, q []float32) (int, float64) {
	bestID, bestDist := -1, math.Inf(1)
	for i, p := range data {
		var s float64
		for j := range p {
			d := float64(p[j]) - float64(q[j])
			s += d * d
		}
		if s < bestDist {
			bestID, bestDist = i, s
		}
	}
	return bestID, math.Sqrt(bestDist)
}
