// Imagesearch: similar-image retrieval over simulated CNN embeddings — the
// workload class (SIFT/GIST/DEEP descriptors) the paper's evaluation uses.
//
// A photo library is simulated as 512-dimensional unit-norm embeddings:
// "scenes" produce groups of near-identical shots (bursts, edits, crops),
// plus unrelated singletons. Given a probe image, the index retrieves the
// other shots of its scene. The example also measures recall against exact
// search and shows the accuracy/latency effect of the candidate budget T.
//
//	go run ./examples/imagesearch
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"
	"time"

	"dblsh"
)

const (
	dim        = 512
	scenes     = 400
	shotsEach  = 12 // shots per scene (burst photos)
	singletons = 15_000
)

func main() {
	rng := rand.New(rand.NewSource(2024))

	// Build the library: scene bursts + unrelated singletons.
	var library [][]float32
	var sceneOf []int
	for s := 0; s < scenes; s++ {
		base := randUnit(rng)
		for i := 0; i < shotsEach; i++ {
			// Per-coordinate jitter of 0.02 puts burst-mates at distance
			// ≈ 0.02·√(2·512) ≈ 0.64, versus ≈ √2 for unrelated images.
			library = append(library, perturbUnit(rng, base, 0.02))
			sceneOf = append(sceneOf, s)
		}
	}
	for i := 0; i < singletons; i++ {
		library = append(library, randUnit(rng))
		sceneOf = append(sceneOf, -1)
	}

	fmt.Printf("library: %d embeddings (%d scenes × %d shots + %d singletons)\n\n",
		len(library), scenes, shotsEach, singletons)

	for _, budget := range []int{2, 50} {
		idx, err := dblsh.New(library, dblsh.Options{T: budget, Seed: 5})
		if err != nil {
			log.Fatal(err)
		}
		s := idx.NewSearcher()

		const probes = 40
		k := shotsEach - 1
		var hits, total int
		var exactAgree float64
		start := time.Now()
		for p := 0; p < probes; p++ {
			probeID := rng.Intn(scenes * shotsEach) // probe a scene shot
			probe := library[probeID]
			res := s.Search(probe, k+1) // +1: the probe itself is in the library

			// Scene recall: how many burst-mates did we retrieve?
			for _, h := range res {
				if h.ID != probeID && sceneOf[h.ID] == sceneOf[probeID] {
					hits++
				}
			}
			total += k

			exactAgree += overlap(res, exactTopK(library, probe, k+1))
		}
		elapsed := time.Since(start)
		fmt.Printf("T=%-4d scene-recall=%.3f  exact-overlap=%.3f  avg-latency=%v\n",
			budget, float64(hits)/float64(total), exactAgree/probes,
			(elapsed / probes).Round(time.Microsecond))
	}
	fmt.Println("\nLarger T verifies more candidates: higher recall, higher latency —")
	fmt.Println("the accuracy/efficiency dial of Section V (budget 2tL+k).")
}

func randUnit(rng *rand.Rand) []float32 {
	v := make([]float32, dim)
	var norm float64
	for i := range v {
		x := rng.NormFloat64()
		v[i] = float32(x)
		norm += x * x
	}
	norm = math.Sqrt(norm)
	for i := range v {
		v[i] = float32(float64(v[i]) / norm)
	}
	return v
}

func perturbUnit(rng *rand.Rand, base []float32, eps float64) []float32 {
	v := make([]float32, dim)
	var norm float64
	for i := range v {
		x := float64(base[i]) + rng.NormFloat64()*eps
		v[i] = float32(x)
		norm += x * x
	}
	norm = math.Sqrt(norm)
	for i := range v {
		v[i] = float32(float64(v[i]) / norm)
	}
	return v
}

func exactTopK(data [][]float32, q []float32, k int) []int {
	type pair struct {
		id int
		d  float64
	}
	ps := make([]pair, len(data))
	for i, p := range data {
		var s float64
		for j := range p {
			d := float64(p[j]) - float64(q[j])
			s += d * d
		}
		ps[i] = pair{i, s}
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].d < ps[b].d })
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = ps[i].id
	}
	return out
}

func overlap(res []dblsh.Result, exact []int) float64 {
	set := make(map[int]bool, len(exact))
	for _, id := range exact {
		set[id] = true
	}
	n := 0
	for _, h := range res {
		if set[h.ID] {
			n++
		}
	}
	return float64(n) / float64(len(exact))
}
