// Embeddings: cosine similarity search over normalized embedding vectors —
// the semantic-search workload every modern embedding model produces
// (sentence or image encoders emit vectors whose direction carries the
// meaning and whose magnitude is noise).
//
// The corpus simulates an embedding space: topic centroids on the unit
// sphere with documents scattered tightly around them, unit-normalized —
// the geometry text encoders produce. The index is built with
// Metric: Cosine, so ingest normalizes (a no-op here), the DB-LSH radius
// ladder runs unchanged in L2 (for unit vectors L2 and angular order
// coincide), and results come back as cosine distance 1−cos θ. The demo
// retrieves nearest documents for held-out queries, reports how often the
// top hit shares the query's topic, and shows the similarity values.
//
//	go run ./examples/embeddings
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"dblsh"
)

const (
	docsN  = 50_000
	topics = 200
	dim    = 96
	qCount = 500
)

// unitVec samples a random direction on the unit sphere.
func unitVec(rng *rand.Rand, dim int) []float32 {
	v := make([]float32, dim)
	var n float64
	for j := range v {
		x := rng.NormFloat64()
		v[j] = float32(x)
		n += x * x
	}
	inv := float32(1 / math.Sqrt(n))
	for j := range v {
		v[j] *= inv
	}
	return v
}

// embed scatters a document around its topic centroid and normalizes — the
// shape of real encoder output.
func embed(rng *rand.Rand, center []float32, noise float64) []float32 {
	v := make([]float32, len(center))
	var n float64
	for j := range v {
		x := float64(center[j]) + rng.NormFloat64()*noise
		v[j] = float32(x)
		n += x * x
	}
	inv := float32(1 / math.Sqrt(n))
	for j := range v {
		v[j] *= inv
	}
	return v
}

func main() {
	rng := rand.New(rand.NewSource(17))

	centers := make([][]float32, topics)
	for t := range centers {
		centers[t] = unitVec(rng, dim)
	}
	docs := make([][]float32, docsN)
	topicOf := make([]int, docsN)
	for i := range docs {
		topicOf[i] = rng.Intn(topics)
		docs[i] = embed(rng, centers[topicOf[i]], 0.05)
	}

	idx, err := dblsh.New(docs, dblsh.Options{Metric: dblsh.Cosine, Seed: 17})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d embeddings of dim %d under the %s metric\n",
		idx.Len(), idx.Dim(), idx.Metric())

	correct := 0
	var simSum float64
	s := idx.NewSearcher()
	for qi := 0; qi < qCount; qi++ {
		topic := rng.Intn(topics)
		q := embed(rng, centers[topic], 0.05)
		hits := s.Search(q, 5)
		if len(hits) == 0 {
			log.Fatal("no hits")
		}
		if topicOf[hits[0].ID] == topic {
			correct++
		}
		simSum += 1 - hits[0].Dist // cosine similarity of the top hit
		if qi < 3 {
			fmt.Printf("query %d (topic %d):\n", qi, topic)
			for _, h := range hits {
				fmt.Printf("  doc %-6d topic %-4d cos-sim %.4f (cos-dist %.4f)\n",
					h.ID, topicOf[h.ID], 1-h.Dist, h.Dist)
			}
		}
	}
	fmt.Printf("\ntop-1 topic accuracy: %.1f%% over %d queries\n",
		100*float64(correct)/qCount, qCount)
	fmt.Printf("mean top-1 cosine similarity: %.4f\n", simSum/qCount)
}
