// Concurrent serving: a sharded index under simultaneous search, insert
// and delete traffic, with online compaction reclaiming tombstone debt
// while queries keep flowing — the workload the single-lock design of a
// classic index cannot serve.
//
//	go run ./examples/concurrent
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dblsh"
)

func main() {
	const (
		n      = 50_000
		dim    = 64
		shards = 8
	)
	rng := rand.New(rand.NewSource(3))
	centers := make([][]float32, 40)
	for i := range centers {
		centers[i] = randVec(rng, dim, 10)
	}
	data := make([][]float32, n)
	for i := range data {
		data[i] = jitter(rng, centers[rng.Intn(len(centers))], 1)
	}

	idx, err := dblsh.New(data, dblsh.Options{
		Seed:            3,
		Shards:          shards,
		CompactFraction: 0.25, // auto-rebuild a shard at 25% tombstones
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d vectors of dim %d across %d shards\n\n",
		idx.Len(), idx.Dim(), idx.Shards())

	// Three kinds of traffic share the index for two seconds with no
	// coordination: every operation below is safe to overlap with every
	// other one.
	var searches, adds, deletes atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for w := 0; w < 4; w++ { // searchers
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := idx.NewSearcher()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := jitter(rng, centers[rng.Intn(len(centers))], 0.5)
				s.Search(q, 10)
				searches.Add(1)
			}
		}(w)
	}
	wg.Add(1)
	go func() { // writer: locks one shard per insert
		defer wg.Done()
		rng := rand.New(rand.NewSource(200))
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := idx.Add(jitter(rng, centers[rng.Intn(len(centers))], 1)); err != nil {
				log.Fatal(err)
			}
			adds.Add(1)
		}
	}()
	wg.Add(1)
	go func() { // deleter: tombstones trigger background compaction
		defer wg.Done()
		rng := rand.New(rand.NewSource(300))
		tick := time.NewTicker(200 * time.Microsecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			if idx.Delete(rng.Intn(n)) {
				deletes.Add(1)
			}
		}
	}()

	time.Sleep(2 * time.Second)
	close(stop)
	wg.Wait()

	fmt.Printf("2s of mixed traffic: %d searches, %d adds, %d deletes\n",
		searches.Load(), adds.Load(), deletes.Load())
	fmt.Printf("tombstones remaining before final compact: %d\n", idx.Deleted())
	reclaimed := idx.Compact() // one shard write-locked at a time
	fmt.Printf("final Compact() reclaimed %d rows\n\n", reclaimed)

	fmt.Println("per-shard state:")
	for _, st := range idx.ShardStats() {
		auto := "never compacted"
		if !st.LastCompaction.IsZero() {
			auto = fmt.Sprintf("%d compaction(s), last %s ago",
				st.Compactions, time.Since(st.LastCompaction).Round(time.Millisecond))
		}
		fmt.Printf("  shard %d: %6d live / %6d resident — %s\n",
			st.Shard, st.Live, st.Size, auto)
	}
}

func randVec(rng *rand.Rand, dim int, scale float64) []float32 {
	v := make([]float32, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64() * scale)
	}
	return v
}

func jitter(rng *rand.Rand, base []float32, std float64) []float32 {
	v := make([]float32, len(base))
	for i := range v {
		v[i] = base[i] + float32(rng.NormFloat64()*std)
	}
	return v
}
