// Tuning: how DB-LSH's knobs trade accuracy for work, measured empirically —
// the practitioner's view of the paper's Section V analysis.
//
// The example sweeps the approximation ratio c, the candidate constant T and
// the number of projected spaces L over one corpus, reporting recall against
// exact search, candidates verified (the 2tL+k budget in action) and query
// latency.
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	"dblsh"
)

const (
	n       = 30_000
	dim     = 96
	queries = 30
	k       = 10
)

func main() {
	rng := rand.New(rand.NewSource(11))
	data, probes := corpus(rng)
	truth := make([][]int, len(probes))
	for i, q := range probes {
		truth[i] = exactTopK(data, q, k)
	}

	fmt.Println("sweep c (approximation ratio) — smaller c: later termination, more accuracy")
	fmt.Printf("  %4s %8s %12s %12s\n", "c", "recall", "candidates", "latency")
	for _, c := range []float64{1.2, 1.5, 2.0, 3.0} {
		report(data, probes, truth, dblsh.Options{C: c, Seed: 8})
	}

	fmt.Println("\nsweep T (candidate constant) — budget 2·T·L+k exact distance checks")
	fmt.Printf("  %4s %8s %12s %12s\n", "T", "recall", "candidates", "latency")
	for _, t := range []int{5, 25, 100, 400} {
		report(data, probes, truth, dblsh.Options{T: t, Seed: 8})
	}

	fmt.Println("\nsweep L (projected spaces) — more independent views, fewer misses")
	fmt.Printf("  %4s %8s %12s %12s\n", "L", "recall", "candidates", "latency")
	for _, l := range []int{1, 3, 5, 8} {
		report(data, probes, truth, dblsh.Options{L: l, Seed: 8})
	}
}

func report(data [][]float32, probes [][]float32, truth [][]int, opts dblsh.Options) {
	idx, err := dblsh.New(data, opts)
	if err != nil {
		log.Fatal(err)
	}
	s := idx.NewSearcher()
	var recall float64
	var cands int
	start := time.Now()
	for i, q := range probes {
		res := s.Search(q, k)
		cands += s.LastStats().Candidates
		set := map[int]bool{}
		for _, id := range truth[i] {
			set[id] = true
		}
		hit := 0
		for _, h := range res {
			if set[h.ID] {
				hit++
			}
		}
		recall += float64(hit) / float64(k)
	}
	lat := time.Since(start) / time.Duration(len(probes))
	p := idx.Params()
	label := p.C
	switch {
	case opts.T != 0:
		label = float64(p.T)
	case opts.L != 0:
		label = float64(p.L)
	}
	fmt.Printf("  %4.1f %8.3f %12.1f %12v\n",
		label, recall/float64(len(probes)), float64(cands)/float64(len(probes)),
		lat.Round(time.Microsecond))
}

func corpus(rng *rand.Rand) (data, probes [][]float32) {
	// Heavily overlapping groups: centre spread comparable to point spread,
	// so the true top-k is only marginally closer than the next few hundred
	// points. This is the hard regime where the knobs visibly matter.
	const groups = 100
	centers := make([][]float32, groups)
	for g := range centers {
		c := make([]float32, dim)
		for j := range c {
			c[j] = float32(rng.NormFloat64() * 1.2)
		}
		centers[g] = c
	}
	mk := func(count int) [][]float32 {
		out := make([][]float32, count)
		for i := range out {
			c := centers[rng.Intn(groups)]
			p := make([]float32, dim)
			for j := range p {
				p[j] = c[j] + float32(rng.NormFloat64())
			}
			out[i] = p
		}
		return out
	}
	return mk(n), mk(queries)
}

func exactTopK(data [][]float32, q []float32, k int) []int {
	type pair struct {
		id int
		d  float64
	}
	ps := make([]pair, len(data))
	for i, p := range data {
		var s float64
		for j := range p {
			d := float64(p[j]) - float64(q[j])
			s += d * d
		}
		ps[i] = pair{i, s}
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].d < ps[b].d })
	out := make([]int, k)
	for i := range out {
		out[i] = ps[i].id
	}
	return out
}
