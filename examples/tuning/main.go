// Tuning: how DB-LSH's knobs trade accuracy for work, measured empirically —
// the practitioner's view of the paper's Section V analysis.
//
// The structural parameters (c, L, K) are frozen at index-build time, but
// the query-phase knobs — candidate budget t and the early-stop factor — are
// per-query options. The example builds ONE index and sweeps both knobs with
// SearchOpts on that single shared instance, the way a production server
// answers cheap low-recall and expensive high-recall queries side by side.
// A build-time sweep of c closes the loop for contrast.
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	"dblsh"
)

const (
	n       = 30_000
	dim     = 96
	queries = 30
	k       = 10
)

func main() {
	rng := rand.New(rand.NewSource(11))
	data, probes := corpus(rng)
	truth := make([][]int, len(probes))
	for i, q := range probes {
		truth[i] = exactTopK(data, q, k)
	}

	// One index serves every per-query sweep below.
	idx, err := dblsh.New(data, dblsh.Options{Seed: 8})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("per-query sweep t (candidate budget) — one shared index, WithCandidateBudget")
	fmt.Printf("  %6s %8s %12s %12s\n", "t", "recall", "candidates", "latency")
	for _, t := range []int{5, 25, 100, 400} {
		reportOpts(idx, probes, truth, float64(t), dblsh.WithCandidateBudget(t))
	}

	fmt.Println("\nper-query sweep early-stop factor — same index, WithEarlyStop")
	fmt.Printf("  %6s %8s %12s %12s\n", "factor", "recall", "candidates", "latency")
	for _, f := range []float64{1, 1.5, 2, 4} {
		reportOpts(idx, probes, truth, f, dblsh.WithEarlyStop(f))
	}

	fmt.Println("\nbuild-time sweep c (approximation ratio) — needs a rebuild per point")
	fmt.Printf("  %6s %8s %12s %12s\n", "c", "recall", "candidates", "latency")
	for _, c := range []float64{1.2, 1.5, 2.0, 3.0} {
		rebuilt, err := dblsh.New(data, dblsh.Options{C: c, Seed: 8})
		if err != nil {
			log.Fatal(err)
		}
		reportOpts(rebuilt, probes, truth, c)
	}
}

// reportOpts measures recall, candidates verified and latency of one knob
// setting, applied per query via SearchOpts on the given index.
func reportOpts(idx *dblsh.Index, probes [][]float32, truth [][]int, label float64, opts ...dblsh.SearchOption) {
	s := idx.NewSearcher()
	var st dblsh.Stats
	withStats := append(append([]dblsh.SearchOption{}, opts...), dblsh.WithStats(&st))
	var recall float64
	var cands int
	start := time.Now()
	for i, q := range probes {
		res, err := s.SearchOpts(q, k, withStats...)
		if err != nil {
			log.Fatal(err)
		}
		cands += st.Candidates
		set := map[int]bool{}
		for _, id := range truth[i] {
			set[id] = true
		}
		hit := 0
		for _, h := range res {
			if set[h.ID] {
				hit++
			}
		}
		recall += float64(hit) / float64(k)
	}
	lat := time.Since(start) / time.Duration(len(probes))
	fmt.Printf("  %6.1f %8.3f %12.1f %12v\n",
		label, recall/float64(len(probes)), float64(cands)/float64(len(probes)),
		lat.Round(time.Microsecond))
}

func corpus(rng *rand.Rand) (data, probes [][]float32) {
	// Heavily overlapping groups: centre spread comparable to point spread,
	// so the true top-k is only marginally closer than the next few hundred
	// points. This is the hard regime where the knobs visibly matter.
	const groups = 100
	centers := make([][]float32, groups)
	for g := range centers {
		c := make([]float32, dim)
		for j := range c {
			c[j] = float32(rng.NormFloat64() * 1.2)
		}
		centers[g] = c
	}
	mk := func(count int) [][]float32 {
		out := make([][]float32, count)
		for i := range out {
			c := centers[rng.Intn(groups)]
			p := make([]float32, dim)
			for j := range p {
				p[j] = c[j] + float32(rng.NormFloat64())
			}
			out[i] = p
		}
		return out
	}
	return mk(n), mk(queries)
}

func exactTopK(data [][]float32, q []float32, k int) []int {
	type pair struct {
		id int
		d  float64
	}
	ps := make([]pair, len(data))
	for i, p := range data {
		var s float64
		for j := range p {
			d := float64(p[j]) - float64(q[j])
			s += d * d
		}
		ps[i] = pair{i, s}
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].d < ps[b].d })
	out := make([]int, k)
	for i := range out {
		out[i] = ps[i].id
	}
	return out
}
