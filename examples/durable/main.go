// Example: a durable vector store that survives process death.
//
// The program runs twice over the same directory. The first run creates the
// store, inserts vectors, deletes a few, and exits WITHOUT calling Close —
// simulating a crash. The second run reopens the directory: the checkpoint
// loads, the write-ahead op log replays on top of it, and every
// acknowledged mutation is back under its original id.
//
//	go run ./examples/durable            # uses a temp directory, runs both phases
//	go run ./examples/durable -dir ./db  # or point it at a real directory
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"dblsh"
)

const (
	dim = 32
	n   = 2000
)

func main() {
	dirFlag := flag.String("dir", "", "store directory (empty: fresh temp dir)")
	flag.Parse()

	dir := *dirFlag
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "dblsh-durable-*"); err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
	}

	fmt.Println("=== phase 1: create, mutate, crash ===")
	phase1(dir)
	fmt.Println("\n=== phase 2: recover ===")
	phase2(dir)
}

func phase1(dir string) {
	idx, err := dblsh.Open(dir, dblsh.Options{
		Dim:  dim,
		Sync: dblsh.SyncAlways, // every mutation is durable before Add/Delete returns
		// CheckpointEvery could bound log growth in a long-lived process;
		// this run is short enough to recover purely from the log.
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	start := time.Now()
	for i := 0; i < n; i++ {
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64() * 10)
		}
		if _, err := idx.Add(v); err != nil {
			log.Fatal(err)
		}
	}
	for id := 0; id < n; id += 10 {
		idx.Delete(id)
	}
	fmt.Printf("inserted %d and deleted %d vectors in %v\n",
		n, idx.Deleted(), time.Since(start).Round(time.Millisecond))

	st, _ := idx.Durability()
	fmt.Printf("op log: %d bytes, %d ops awaiting the next checkpoint\n",
		st.LogBytes, st.OpsSinceCheckpoint)

	// Crash: the process "dies" here — no Close, no Checkpoint. Everything
	// rides on the op log.
	fmt.Println("exiting without Close (simulated crash)")
}

func phase2(dir string) {
	start := time.Now()
	idx, err := dblsh.Open(dir, dblsh.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()
	fmt.Printf("recovered %d vectors (%d tombstoned) in %v\n",
		idx.Len(), idx.Deleted(), time.Since(start).Round(time.Millisecond))

	if idx.Len() != n || idx.NextID() != n {
		log.Fatalf("recovery mismatch: Len=%d NextID=%d, want %d", idx.Len(), idx.NextID(), n)
	}

	// The recovered store answers queries and accepts new mutations
	// immediately.
	rng := rand.New(rand.NewSource(42))
	v0 := make([]float32, dim)
	for j := range v0 {
		v0[j] = float32(rng.NormFloat64() * 10)
	}
	res := idx.Search(v0, 3)
	fmt.Printf("query for the first inserted vector (id 0 was deleted): top hit id=%d dist=%.3f\n",
		res[0].ID, res[0].Dist)

	id, err := idx.Add(v0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("new insert continues the id space at %d\n", id)

	// A checkpoint absorbs the replayed history so the next open is pure
	// snapshot load.
	if err := idx.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	st, _ := idx.Durability()
	fmt.Printf("after checkpoint: log %d bytes, %d pending ops\n", st.LogBytes, st.OpsSinceCheckpoint)
}
